package scoop

import (
	"testing"
	"time"
)

func quickExperiment() ExperimentConfig {
	cfg := DefaultExperiment()
	cfg.Duration = 20 * time.Minute
	cfg.Warmup = 6 * time.Minute
	cfg.Trials = 1
	return cfg
}

func TestRunExperimentScoop(t *testing.T) {
	res, err := RunExperiment(quickExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Total() == 0 {
		t.Fatal("no messages counted")
	}
	if res.Produced == 0 || res.StoredUnique == 0 {
		t.Fatal("no data produced/stored")
	}
	if res.DataSuccess < 0.7 {
		t.Fatalf("data success %.2f too low", res.DataSuccess)
	}
	if res.IndexesBuilt == 0 {
		t.Fatal("no indexes built")
	}
}

func TestRunExperimentPolicies(t *testing.T) {
	for _, p := range []Policy{PolicyLocal, PolicyBase, PolicyHash} {
		cfg := quickExperiment()
		cfg.Policy = p
		res, err := RunExperiment(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Breakdown.Total() == 0 {
			t.Fatalf("%s produced no traffic", p)
		}
	}
}

func TestRunExperimentValidation(t *testing.T) {
	cfg := quickExperiment()
	cfg.Nodes = 1
	if _, err := RunExperiment(cfg); err == nil {
		t.Fatal("accepted 1-node network")
	}
	cfg = quickExperiment()
	cfg.Nodes = 2000 // above the scale-tier bound (netsim.MaxNodes = 1024)
	if _, err := RunExperiment(cfg); err == nil {
		t.Fatal("accepted oversized network")
	}
	cfg = quickExperiment()
	cfg.Warmup = cfg.Duration
	if _, err := RunExperiment(cfg); err == nil {
		t.Fatal("accepted warmup >= duration")
	}
	cfg = quickExperiment()
	cfg.Source = "bogus"
	if _, err := RunExperiment(cfg); err == nil {
		t.Fatal("accepted unknown source")
	}
}

func TestSimulationLifecycle(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{
		Nodes:  20,
		Seed:   7,
		Warmup: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Nodes() != 20 {
		t.Fatalf("nodes = %d", sim.Nodes())
	}
	sim.Run(12 * time.Minute)
	if sim.Elapsed() != 12*time.Minute {
		t.Fatalf("elapsed = %v", sim.Elapsed())
	}
	st := sim.Stats()
	if st.Produced == 0 {
		t.Fatal("no samples taken")
	}
	if len(sim.IndexRanges()) == 0 {
		t.Fatal("no index ranges after 12 minutes")
	}
	res := sim.QueryValues(0, 150, 5*time.Minute, time.Minute)
	if res.Targets == 0 {
		t.Fatal("full-domain query targeted nobody")
	}
	if res.Tuples == 0 {
		t.Fatal("no tuples returned")
	}
	if len(res.Readings) == 0 {
		t.Fatal("no readings carried back")
	}
	for _, r := range res.Readings {
		if r.Value < 0 || r.Value > 150 {
			t.Fatalf("reading value %d outside domain", r.Value)
		}
		if r.Node < 0 || r.Node >= 20 {
			t.Fatalf("reading from unknown node %d", r.Node)
		}
	}
}

func TestSimulationNodeQuery(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{Nodes: 12, Seed: 9, Warmup: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(10 * time.Minute)
	res := sim.QueryNodes([]int{3, 4}, 5*time.Minute, time.Minute)
	if res.Targets != 2 {
		t.Fatalf("targets = %d", res.Targets)
	}
	// Queried nodes scan their own buffers (paper §5.5), which may
	// hold readings they store on behalf of other producers — so the
	// producer set is unconstrained, but values must be in-domain.
	for _, r := range res.Readings {
		if r.Value < 0 || r.Value > 150 {
			t.Fatalf("reading value %d outside domain", r.Value)
		}
	}
}

func TestSimulationQueryMax(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{Nodes: 12, Seed: 11, Warmup: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(10 * time.Minute)
	before := sim.Messages().Total()
	max, ok := sim.QueryMax(8 * time.Minute)
	if !ok {
		t.Fatal("QueryMax failed")
	}
	if max <= 0 || max > 150 {
		t.Fatalf("max = %d outside REAL domain", max)
	}
	if sim.Messages().Total() != before {
		t.Fatal("summary-based query cost messages")
	}
}

func TestSimulationCustomSampler(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{
		Nodes:  10,
		Seed:   13,
		Warmup: 2 * time.Minute,
		Sampler: func(node int, _ time.Duration) int {
			return node * 2
		},
		DomainLo: 0,
		DomainHi: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(10 * time.Minute)
	res := sim.QueryValues(0, 20, 5*time.Minute, time.Minute)
	for _, r := range res.Readings {
		if r.Value != r.Node*2 {
			t.Fatalf("node %d reported %d, want %d", r.Node, r.Value, r.Node*2)
		}
	}
}

func TestSimulationCustomSamplerNeedsDomain(t *testing.T) {
	_, err := NewSimulation(SimulationConfig{
		Nodes:   10,
		Sampler: func(int, time.Duration) int { return 1 },
	})
	if err == nil {
		t.Fatal("accepted sampler without domain")
	}
}

func TestSimulationKillRevive(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{Nodes: 15, Seed: 17, Warmup: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(6 * time.Minute)
	sim.KillNode(5)
	sim.Run(6 * time.Minute)
	st := sim.Stats()
	if st.DataSuccess < 0.5 {
		t.Fatalf("network collapsed after one failure: %.2f", st.DataSuccess)
	}
	sim.ReviveNode(5)
	sim.Run(4 * time.Minute)
}

func TestBreakdownTotalExcludesBeacons(t *testing.T) {
	b := Breakdown{Data: 1, Summary: 2, Mapping: 3, Query: 4, Reply: 5, AggReply: 6, Beacon: 100}
	if b.Total() != 21 {
		t.Fatalf("total = %f", b.Total())
	}
}

func TestRunExperimentAggregates(t *testing.T) {
	cfg := quickExperiment()
	cfg.Nodes = 16
	cfg.AggregateRatio = 1
	cfg.AggregateErrBudget = 0.25
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggIssued == 0 {
		t.Fatal("no aggregates issued")
	}
	if res.AggAnswered < res.AggIssued/2 {
		t.Fatalf("only %d of %d aggregates answered", res.AggAnswered, res.AggIssued)
	}
	if res.AggMeanErr > 1 {
		t.Fatalf("mean aggregate error %.2f implausible", res.AggMeanErr)
	}
}
