package scoop

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§6), plus ablation benches for the design choices
// DESIGN.md calls out. Each iteration runs the figure's full set of
// simulations at Quick scale (shortened single trials); the custom
// "msgs" metric reports the headline message totals so `go test
// -bench` output doubles as a results table. Run cmd/scoopbench
// -scale full for paper-scale numbers.

import (
	"testing"

	"scoop/internal/core"
	"scoop/internal/exp"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
	"scoop/internal/sweep"
)

// reportTotals attaches per-case message totals to the benchmark.
func reportTotals(b *testing.B, labels []string, results []exp.Result) {
	b.Helper()
	for i, r := range results {
		if i < len(labels) {
			b.ReportMetric(r.Breakdown.Total(), "msgs_"+labels[i])
		}
	}
}

// BenchmarkFigure3Left regenerates Figure 3 (left): testbed message
// breakdowns for scoop/unique, scoop/gaussian, local/gaussian,
// base/gaussian.
func BenchmarkFigure3Left(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := exp.Figure3Left(exp.Quick, int64(i)+1)
		reportTotals(b, []string{"scoop_unique", "scoop_gauss", "local_gauss", "base_gauss"}, results)
	}
}

// BenchmarkFigure3Middle regenerates Figure 3 (middle): SCOOP vs
// LOCAL vs HASH vs BASE over the REAL trace.
func BenchmarkFigure3Middle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := exp.Figure3Middle(exp.Quick, int64(i)+1)
		reportTotals(b, []string{"scoop", "local", "hash", "base"}, results)
	}
}

// BenchmarkFigure3Right regenerates Figure 3 (right): SCOOP across
// the five data sources.
func BenchmarkFigure3Right(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := exp.Figure3Right(exp.Quick, int64(i)+1)
		reportTotals(b, []string{"unique", "equal", "real", "gaussian", "random"}, results)
	}
}

// BenchmarkFigure4 regenerates Figure 4: cost vs % nodes queried.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, byPolicy := exp.Figure4(exp.Quick, int64(i)+1)
		for _, p := range []policy.Name{policy.Scoop, policy.Local, policy.Base} {
			series := byPolicy[p]
			if len(series) > 0 {
				b.ReportMetric(series[0].Breakdown.Total(), "msgs_"+string(p)+"_lo")
				b.ReportMetric(series[len(series)-1].Breakdown.Total(), "msgs_"+string(p)+"_hi")
			}
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5: cost vs query interval.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, byPolicy := exp.Figure5(exp.Quick, int64(i)+1)
		for _, p := range []policy.Name{policy.Scoop, policy.Local, policy.Base} {
			series := byPolicy[p]
			if len(series) > 0 {
				b.ReportMetric(series[0].Breakdown.Total(), "msgs_"+string(p)+"_fast")
				b.ReportMetric(series[len(series)-1].Breakdown.Total(), "msgs_"+string(p)+"_slow")
			}
		}
	}
}

// BenchmarkSampleInterval regenerates the sample-interval sweep from
// the paper's "other experiments".
func BenchmarkSampleInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, bySource := exp.SampleIntervalSweep(exp.Quick, int64(i)+1)
		for src, series := range bySource {
			if len(series) > 0 {
				b.ReportMetric(series[0].Breakdown.Total(), "msgs_"+src+"_15s")
				b.ReportMetric(series[len(series)-1].Breakdown.Total(), "msgs_"+src+"_120s")
			}
		}
	}
}

// BenchmarkLossRates regenerates the delivery measurements (93% data
// stored / 78% query results / 85% owner-found in the paper).
func BenchmarkLossRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, r := exp.LossRates(exp.Quick, int64(i)+1)
		b.ReportMetric(100*r.Stats.DataSuccessRate(), "pct_data_stored")
		b.ReportMetric(100*r.Stats.QuerySuccessRate(), "pct_replies")
		b.ReportMetric(100*r.Stats.OwnerHitRate(), "pct_owner_hit")
	}
}

// BenchmarkRootSkew regenerates the root-load comparison.
func BenchmarkRootSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := exp.RootSkew(exp.Quick, int64(i)+1)
		labels := []string{"scoop", "base", "local"}
		for j, r := range results {
			b.ReportMetric(r.RootSent, "rootsent_"+labels[j])
			b.ReportMetric(r.RootRecv, "rootrecv_"+labels[j])
		}
	}
}

// BenchmarkScaling regenerates the network-size experiment (up to 100
// nodes).
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, bySource := exp.Scaling(exp.Quick, int64(i)+1)
		for src, series := range bySource {
			if len(series) > 0 {
				b.ReportMetric(series[len(series)-1].Breakdown.Total(), "msgs_"+src+"_100n")
			}
		}
	}
}

// ---- Ablation benches: the design choices DESIGN.md calls out. ----

func ablate(b *testing.B, seed int64, modify func(*core.Config)) float64 {
	b.Helper()
	cfg := exp.Default()
	cfg.Trials = 1
	cfg.Duration = 22 * netsim.Minute
	cfg.Warmup = 6 * netsim.Minute
	cfg.Seed = seed
	cfg.Modify = modify
	res, err := exp.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.Breakdown.Total()
}

// BenchmarkAblationBatching compares reading batching on (paper
// default, n=5) vs off.
func BenchmarkAblationBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := ablate(b, int64(i)+1, nil)
		off := ablate(b, int64(i)+1, func(c *core.Config) { c.BatchSize = 1 })
		b.ReportMetric(on, "msgs_batch5")
		b.ReportMetric(off, "msgs_batch1")
	}
}

// BenchmarkAblationNeighborShortcut compares routing rule 3 on vs off.
func BenchmarkAblationNeighborShortcut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := ablate(b, int64(i)+1, nil)
		off := ablate(b, int64(i)+1, func(c *core.Config) { c.NeighborShortcut = false })
		b.ReportMetric(on, "msgs_shortcut")
		b.ReportMetric(off, "msgs_noshortcut")
	}
}

// BenchmarkAblationSuppression compares index-similarity suppression
// on (paper §5.3) vs off.
func BenchmarkAblationSuppression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := ablate(b, int64(i)+1, nil)
		off := ablate(b, int64(i)+1, func(c *core.Config) { c.SimilaritySuppress = 1.1 })
		b.ReportMetric(on, "msgs_suppress")
		b.ReportMetric(off, "msgs_nosuppress")
	}
}

// BenchmarkAblationHistogramBins sweeps the summary histogram
// resolution (paper default nBins=10).
func BenchmarkAblationHistogramBins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bins := range []int{5, 10, 20} {
			bins := bins
			tot := ablate(b, int64(i)+1, func(c *core.Config) { c.NBins = bins })
			b.ReportMetric(tot, "msgs_bins"+itoa(bins))
		}
	}
}

// BenchmarkAblationDescendantCap sweeps the descendants-list bound
// (paper: 32).
func BenchmarkAblationDescendantCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cap := range []int{8, 32, 127} {
			cap := cap
			tot := ablate(b, int64(i)+1, func(c *core.Config) { c.Tree.DescendantCap = cap })
			b.ReportMetric(tot, "msgs_desc"+itoa(cap))
		}
	}
}

// BenchmarkAblationStoreLocalFallback enables the paper's store-local
// cost comparison (disabled in its experiments).
func BenchmarkAblationStoreLocalFallback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := ablate(b, int64(i)+1, nil)
		on := ablate(b, int64(i)+1, func(c *core.Config) { c.StoreLocalFallback = true })
		b.ReportMetric(off, "msgs_nofallback")
		b.ReportMetric(on, "msgs_fallback")
	}
}

// BenchmarkIndexConstruction measures the basestation's O(V·n²)
// index-build algorithm in isolation at paper scale (V≈150, n=63).
func BenchmarkIndexConstruction(b *testing.B) {
	cfg := exp.Default()
	cfg.Trials = 1
	cfg.Duration = 14 * netsim.Minute
	cfg.Warmup = 6 * netsim.Minute
	// One run to warm statistics, then rebuild repeatedly via the
	// Modify hook is not possible post-run; instead measure a full
	// short trial which is dominated by simulation, and separately the
	// pure algorithm below in internal/index benches.
	if _, err := exp.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---- Sweep benches: the netsim event-loop hot paths the parameter
// sweep engine spends its time in, plus the sweep layer itself. ----

// BenchmarkSweepEventLoop measures the raw simulator event loop —
// heap scheduling plus callback dispatch — the innermost hot path of
// every sweep cell. Reported as events/op via b.N.
func BenchmarkSweepEventLoop(b *testing.B) {
	sim := netsim.NewSimulator(1)
	// A self-rescheduling callback per virtual "node" keeps a realistic
	// heap depth (64 pending events) instead of a degenerate single
	// chain.
	var tick func()
	pending := 0
	tick = func() {
		pending--
		if pending < 64 {
			pending++
			sim.After(netsim.Time(1+pending%7), tick)
		}
	}
	for i := 0; i < 64; i++ {
		pending++
		sim.After(netsim.Time(i%13), tick)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sim.Step() {
			b.Fatal("event queue drained")
		}
	}
}

// chatterApp broadcasts a frame per timer tick: the MAC/radio fan-out
// path (CSMA backoff, collision checks, per-neighbour delivery) that
// dominates sweep cell wall time.
type chatterApp struct {
	api    *netsim.NodeAPI
	period netsim.Time
}

func (a *chatterApp) Init(api *netsim.NodeAPI) {
	a.api = api
	api.SetTimer(0, a.period+netsim.Time(api.ID()))
}

func (a *chatterApp) Receive(*netsim.Packet) {}
func (a *chatterApp) Snoop(*netsim.Packet)   {}

func (a *chatterApp) Timer(int) {
	a.api.Broadcast(&netsim.Packet{Class: metrics.Data, Size: 36})
	a.api.SetTimer(0, a.period)
}

// BenchmarkSweepTransmitHotPath measures one virtual second of a
// 25-node broadcast-saturated network per iteration: the transmit /
// collision / snoop fan-out inner loop.
func BenchmarkSweepTransmitHotPath(b *testing.B) {
	const n = 25
	sim := netsim.NewSimulator(1)
	topo := netsim.UniformTopology(n, 5, 3.5, 1)
	net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
	for i := 0; i < n; i++ {
		net.Attach(netsim.NodeID(i), &chatterApp{period: 50 * netsim.Millisecond})
	}
	net.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(sim.Now() + netsim.Second)
	}
	b.ReportMetric(float64(net.Counters.TotalWithBeacons())/float64(b.N), "msgs/op")
}

// BenchmarkSweepCell measures one full sweep cell (topology build,
// protocol stack, simulation, metric capture) end to end.
func BenchmarkSweepCell(b *testing.B) {
	g := sweep.Default()
	g.Policies = []policy.Name{policy.Scoop}
	g.Sizes = []int{24}
	g.LossRates = []float64{0.1}
	g.Duration = 8 * netsim.Minute
	g.Warmup = 2 * netsim.Minute
	for i := 0; i < b.N; i++ {
		g.Seed = int64(i) + 1
		rep, err := sweep.Run(g, sweep.Options{Parallel: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Cells[0].Msgs, "msgs_cell")
	}
}

// BenchmarkSweepGrid8 measures an 8-cell grid on the worker pool —
// the sweep engine's parallel throughput, cells racing on all cores.
func BenchmarkSweepGrid8(b *testing.B) {
	g := sweep.Default()
	g.Policies = []policy.Name{policy.Scoop, policy.Base}
	g.Sizes = []int{16, 24}
	g.LossRates = []float64{0, 0.2}
	g.Duration = 6 * netsim.Minute
	g.Warmup = 2 * netsim.Minute
	for i := 0; i < b.N; i++ {
		g.Seed = int64(i) + 1
		rep, err := sweep.Run(g, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, c := range rep.Cells {
			total += c.Msgs
		}
		b.ReportMetric(total, "msgs_grid")
	}
}

// BenchmarkEnergy regenerates the lifetime comparison (§6's "one
// month vs three months" discussion).
func BenchmarkEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := exp.EnergyTable(exp.Quick, int64(i)+1)
		labels := []string{"scoop", "local", "base"}
		for j, r := range results {
			b.ReportMetric(r.Energy.AvgNodeDays, "days_node_"+labels[j])
			b.ReportMetric(r.Energy.RootDays, "days_root_"+labels[j])
		}
	}
}
