package scoop

// Scale-tier hot-path benchmarks: the same measurements cmd/scoopperf
// records into BENCH_scale.json, exposed to `go test -bench` so local
// work gets allocs/op feedback without running the artifact tool.
//
//	go test -bench 'HotPaths' -benchtime 1x .

import (
	"testing"

	"scoop/internal/perfbench"
)

func BenchmarkHotPaths(b *testing.B) {
	for _, be := range perfbench.Benches() {
		b.Run(be.Name, be.Fn)
	}
}
