package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// identityGrid is the pinned N=65 grid whose artifact is committed at
// testdata/sweep-identity-n65.json. The artifact was generated BEFORE
// the scale-tier hot-path overhaul (object pooling, dense node
// indices, flattened link tables), so regenerating it byte-identically
// proves the overhaul changed no simulated behaviour at the paper's
// scale — the determinism constraint of DESIGN.md §2/§12, asserted
// directly rather than via the 10%-tolerance CI gates.
func identityGrid() Grid {
	return Grid{
		Name:           "identity-n65",
		Policies:       []policy.Name{policy.Scoop, policy.Local},
		Topologies:     []string{"uniform"},
		Sizes:          []int{65},
		LossRates:      []float64{0, 0.2},
		Sources:        []string{"real"},
		Duration:       10 * netsim.Minute,
		Warmup:         3 * netsim.Minute,
		SampleInterval: 15 * netsim.Second,
		QueryInterval:  15 * netsim.Second,
		Trials:         1,
		Seed:           42,
	}
}

// TestCellResultIdentityN65 regenerates the pinned cells and requires
// byte-for-byte equality with the committed artifact — not "within
// tolerance". If an intentional protocol change fails this test,
// regenerate the artifact (see the committed file's grid above) in the
// same commit and say why in the message.
func TestCellResultIdentityN65(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "sweep-identity-n65.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(identityGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "identity.json")
	if err := WriteFile(tmp, rep); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("N=65 cells are not byte-identical to the pre-overhaul artifact.\n"+
			"If this change to simulated behaviour is intentional, regenerate "+
			"testdata/sweep-identity-n65.json and justify it in the commit.\n"+
			"got %d bytes, want %d bytes", len(got), len(want))
	}
}

// identityGrid250 is the scale-tier pin: one N=250 Scoop cell on the
// grid topology, its artifact committed at
// testdata/sweep-identity-n250.json. It exists because the N=65 pin
// cannot see scale-only code paths (dense index rebuild batching,
// region partitioning overheads) — and it regenerates under the
// REGION-PARALLEL engine (Regions=4), so the committed bytes are
// themselves a standing proof that the parallel event loop reproduces
// the serial artifact (TestCellResultIdentityN250 checks both engines
// against the same file).
func identityGrid250() Grid {
	return Grid{
		Name:           "identity-n250",
		Policies:       []policy.Name{policy.Scoop},
		Topologies:     []string{"grid"},
		Sizes:          []int{250},
		LossRates:      []float64{0.1},
		Sources:        []string{"real"},
		Duration:       8 * netsim.Minute,
		Warmup:         3 * netsim.Minute,
		SampleInterval: 15 * netsim.Second,
		QueryInterval:  15 * netsim.Second,
		Trials:         1,
		Seed:           42,
	}
}

// TestCellResultIdentityN250 regenerates the pinned N=250 cell on BOTH
// engines — serial and 4-region parallel — and requires byte-for-byte
// equality with the committed artifact for each. A failure on one
// engine only is a parallel-determinism bug; a failure on both is a
// (possibly intentional) protocol change — regenerate the artifact in
// the same commit and say why in the message.
func TestCellResultIdentityN250(t *testing.T) {
	if testing.Short() {
		t.Skip("N=250 cell is too slow for -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "sweep-identity-n250.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, regions := range []int{0, 4} {
		g := identityGrid250()
		g.Regions = regions
		rep, err := Run(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tmp := filepath.Join(t.TempDir(), "identity250.json")
		if err := WriteFile(tmp, rep); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(tmp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("N=250 cell (regions=%d) is not byte-identical to the committed artifact.\n"+
				"If this change to simulated behaviour is intentional, regenerate "+
				"testdata/sweep-identity-n250.json and justify it in the commit.\n"+
				"got %d bytes, want %d bytes", regions, len(got), len(want))
		}
	}
}

// TestRunRegionsIdentical pins the sweep-level guarantee behind the
// Grid.Regions knob: the artifact is a pure function of the grid —
// running every cell on the 4-region parallel engine must reproduce
// the serial bytes exactly.
func TestRunRegionsIdentical(t *testing.T) {
	serial, err := Run(identityGrid(), Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := identityGrid()
	g.Regions = 4
	par, err := Run(g, Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	pa := filepath.Join(t.TempDir(), "serial.json")
	pb := filepath.Join(t.TempDir(), "regions.json")
	if err := WriteFile(pa, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(pb, par); err != nil {
		t.Fatal(err)
	}
	ba, err := os.ReadFile(pa)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(pb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("same grid, different artifacts between the serial and 4-region engines")
	}
}

// TestRegenerateIdentityArtifacts rewrites the committed identity
// artifacts in place when SCOOP_REGEN_IDENTITY=1 is set — the blessed
// regeneration path after an intentional protocol change. The N=65
// artifact is produced by the serial engine; the N=250 artifact is
// deliberately produced by the 4-region parallel engine, so the
// committed bytes double as a cross-engine identity witness.
func TestRegenerateIdentityArtifacts(t *testing.T) {
	if os.Getenv("SCOOP_REGEN_IDENTITY") != "1" {
		t.Skip("set SCOOP_REGEN_IDENTITY=1 to rewrite testdata artifacts")
	}
	rep, err := Run(identityGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join("testdata", "sweep-identity-n65.json"), rep); err != nil {
		t.Fatal(err)
	}
	g := identityGrid250()
	g.Regions = 4
	rep, err = Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join("testdata", "sweep-identity-n250.json"), rep); err != nil {
		t.Fatal(err)
	}
}

// TestRunRepeatable runs the identity grid twice in-process and
// requires equal artifacts — determinism independent of the committed
// file (catches map-iteration or scheduling nondeterminism even after
// an intentional regeneration).
func TestRunRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("identity test already covers one regeneration")
	}
	a, err := Run(identityGrid(), Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(identityGrid(), Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	pa := filepath.Join(t.TempDir(), "a.json")
	pb := filepath.Join(t.TempDir(), "b.json")
	if err := WriteFile(pa, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(pb, b); err != nil {
		t.Fatal(err)
	}
	ba, err := os.ReadFile(pa)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(pb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("same grid, different artifacts across parallelism levels")
	}
}
