package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// identityGrid is the pinned N=65 grid whose artifact is committed at
// testdata/sweep-identity-n65.json. The artifact was generated BEFORE
// the scale-tier hot-path overhaul (object pooling, dense node
// indices, flattened link tables), so regenerating it byte-identically
// proves the overhaul changed no simulated behaviour at the paper's
// scale — the determinism constraint of DESIGN.md §2/§12, asserted
// directly rather than via the 10%-tolerance CI gates.
func identityGrid() Grid {
	return Grid{
		Name:           "identity-n65",
		Policies:       []policy.Name{policy.Scoop, policy.Local},
		Topologies:     []string{"uniform"},
		Sizes:          []int{65},
		LossRates:      []float64{0, 0.2},
		Sources:        []string{"real"},
		Duration:       10 * netsim.Minute,
		Warmup:         3 * netsim.Minute,
		SampleInterval: 15 * netsim.Second,
		QueryInterval:  15 * netsim.Second,
		Trials:         1,
		Seed:           42,
	}
}

// TestCellResultIdentityN65 regenerates the pinned cells and requires
// byte-for-byte equality with the committed artifact — not "within
// tolerance". If an intentional protocol change fails this test,
// regenerate the artifact (see the committed file's grid above) in the
// same commit and say why in the message.
func TestCellResultIdentityN65(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "sweep-identity-n65.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(identityGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "identity.json")
	if err := WriteFile(tmp, rep); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("N=65 cells are not byte-identical to the pre-overhaul artifact.\n"+
			"If this change to simulated behaviour is intentional, regenerate "+
			"testdata/sweep-identity-n65.json and justify it in the commit.\n"+
			"got %d bytes, want %d bytes", len(got), len(want))
	}
}

// TestRunRepeatable runs the identity grid twice in-process and
// requires equal artifacts — determinism independent of the committed
// file (catches map-iteration or scheduling nondeterminism even after
// an intentional regeneration).
func TestRunRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("identity test already covers one regeneration")
	}
	a, err := Run(identityGrid(), Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(identityGrid(), Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	pa := filepath.Join(t.TempDir(), "a.json")
	pb := filepath.Join(t.TempDir(), "b.json")
	if err := WriteFile(pa, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(pb, b); err != nil {
		t.Fatal(err)
	}
	ba, err := os.ReadFile(pa)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(pb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("same grid, different artifacts across parallelism levels")
	}
}
