// Package sweep turns the one-figure-at-a-time experiment harness into
// a grid engine: it expands the full cross-product of storage policy ×
// topology × network size × link-loss rate × churn rate × drift ×
// reindexing × query mix × workload source into independent cells,
// runs them on a bounded worker pool, and captures per-cell message
// counts, delivery rates, aggregate answer quality, transition metrics
// and wall-clock timing.
//
// Every cell derives its own seed from (base seed, cell index), so a
// sweep is reproducible regardless of how many workers run it or in
// which order cells are scheduled: the same base seed always yields a
// byte-identical JSON artifact. Committed artifacts double as
// performance baselines — Gate compares a fresh sweep against one and
// fails on >tolerance regressions, giving the repo a CI-enforced
// performance trajectory.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"scoop/internal/dynamics"
	"scoop/internal/exp"
	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// Grid declares a parameter sweep: the axes whose cross-product forms
// the cells, plus the run parameters every cell shares. The zero value
// is unusable; start from Default.
type Grid struct {
	Name string // artifact label ("ci", "nightly", ...)

	// Axes. Cells are enumerated with Policies outermost and Sources
	// innermost; an empty axis means "the single default value".
	Policies   []policy.Name
	Topologies []string
	Sizes      []int     // network sizes including the basestation
	LossRates  []float64 // network-wide link degradation, each in [0,1)
	ChurnRates []float64 // fraction of nodes cycled per churn round (0: static membership)
	DriftRates []float64 // total data-distribution walk, as a domain fraction (0: stationary)
	// Reindex toggles periodic index rebuilds (empty: on). The "off"
	// value applies to the Scoop policy only — comparators have no
	// adaptive loop to freeze, so those cells are omitted.
	Reindex []bool
	// QueryMixes is the aggregate-query fraction axis (0: pure tuple
	// workload, the pre-agg default). Non-zero mixes apply to the
	// Scoop policy only — BASE answers at the basestation for free and
	// the analytical HASH has no simulation — so other cells are
	// omitted.
	QueryMixes []float64
	// Faults is the fault-scenario axis: each non-empty name resolves
	// through dynamics.FaultScenario ("blackout", "partition", "burst",
	// "baserestart", "campaign"); "" is the fault-free default. Fault
	// cells apply to the Scoop policy only — the comparators have no
	// reliability layer to exercise — so other cells are omitted.
	Faults []string
	// Retry toggles the query reliability layer (deadline retries plus
	// summary degradation, DESIGN.md §19) per cell. Scoop-only, like
	// Faults; the off value is the pre-§19 default.
	Retry   []bool
	Sources []string // workload skews ("unique", "real", "random", ...)

	// ScaleSizes is the scale-tier axis: for each size it appends
	// scoop/hash/local cells on the multi-hop "grid" topology at zero
	// injected loss over the first Source — the GHT/TAG regime up to
	// netsim.MaxNodes (1024). Kept separate from Sizes so the paper's
	// dense cross-product is not multiplied by thousand-node cells.
	ScaleSizes []int

	// Shared per-cell run parameters (see exp.Config).
	Duration       netsim.Time
	Warmup         netsim.Time
	SampleInterval netsim.Time
	QueryInterval  netsim.Time
	// ReindexInterval is the adaptive epoch length for every cell
	// (0: the protocol default, 240 s).
	ReindexInterval netsim.Time
	Trials          int

	// Seed is the base seed; each cell runs with a seed mixed from it
	// and the cell's index.
	Seed int64

	// Regions partitions every cell's network into this many parallel
	// regions (exp.Config.Regions). A run-mode knob, not an axis:
	// results are bit-identical for every value (DESIGN.md §18), so it
	// enters neither cell keys nor the JSON artifact — the identity
	// tests hold sweeps at Regions=4 to byte-equality with serial
	// baselines.
	Regions int
}

// Default returns a 24-cell quick-scale grid: the paper's four
// policies × two network sizes × three loss rates over the REAL
// workload on the uniform topology.
func Default() Grid {
	return Grid{
		Name:           "default",
		Policies:       policy.Names(),
		Topologies:     []string{"uniform"},
		Sizes:          []int{32, 63},
		LossRates:      []float64{0, 0.1, 0.2},
		Sources:        []string{"real"},
		Duration:       22 * netsim.Minute,
		Warmup:         6 * netsim.Minute,
		SampleInterval: 15 * netsim.Second,
		QueryInterval:  15 * netsim.Second,
		Trials:         1,
		Seed:           1,
	}
}

// Cell is one grid point.
type Cell struct {
	Index    int
	Policy   policy.Name
	Topology string
	N        int
	Loss     float64
	Churn    float64
	Drift    float64
	// NoReindex freezes the first index (negative polarity so the
	// zero value — and every pre-dynamics baseline artifact — means
	// "reindexing on", the protocol default).
	NoReindex bool
	// AggMix is the aggregate fraction of the query stream (0: pure
	// tuple workload, the pre-agg default).
	AggMix float64
	// Faults names the injected fault scenario ("": fault-free).
	Faults string
	// Retry arms the query reliability layer (deadline retries plus
	// summary degradation); false is the pre-§19 default.
	Retry  bool
	Source string
}

// Key returns the cell's stable identity, independent of its index —
// the join key Gate matches baseline cells on. Dynamics components
// appear only when non-default, so keys from pre-dynamics baseline
// artifacts still match their cells.
func (c Cell) Key() string {
	k := fmt.Sprintf("%s/%s/n%d/loss%g/%s", c.Policy, c.Topology, c.N, c.Loss, c.Source)
	if c.Churn > 0 {
		k += fmt.Sprintf("/churn%g", c.Churn)
	}
	if c.Drift != 0 {
		k += fmt.Sprintf("/drift%g", c.Drift)
	}
	if c.NoReindex {
		k += "/noreindex"
	}
	if c.AggMix > 0 {
		k += fmt.Sprintf("/agg%g", c.AggMix)
	}
	if c.Faults != "" {
		k += "/faults-" + c.Faults
	}
	if c.Retry {
		k += "/retry"
	}
	return k
}

func orDefault[T any](axis []T, def T) []T {
	if len(axis) == 0 {
		return []T{def}
	}
	return axis
}

// Cells expands the grid's cross-product in deterministic order
// (Policies outermost, then topology, size, loss, churn, drift,
// reindex, query mix, faults, retry, with Sources innermost).
func (g Grid) Cells() []Cell {
	policies := orDefault(g.Policies, policy.Scoop)
	topos := orDefault(g.Topologies, "uniform")
	sizes := orDefault(g.Sizes, 63)
	losses := orDefault(g.LossRates, 0)
	churns := orDefault(g.ChurnRates, 0)
	drifts := orDefault(g.DriftRates, 0)
	reindex := orDefault(g.Reindex, true)
	mixes := orDefault(g.QueryMixes, 0)
	faults := orDefault(g.Faults, "")
	retries := orDefault(g.Retry, false)
	sources := orDefault(g.Sources, "real")
	total := len(policies)*len(topos)*len(sizes)*len(losses)*
		len(churns)*len(drifts)*len(reindex)*len(mixes)*
		len(faults)*len(retries)*len(sources) +
		3*len(g.ScaleSizes)
	cells := make([]Cell, 0, total)
	appendScaleCells := func() {
		seen := make(map[string]bool, len(cells))
		for _, c := range cells {
			seen[c.Key()] = true
		}
		for _, n := range g.ScaleSizes {
			for _, p := range []policy.Name{policy.Scoop, policy.Hash, policy.Local} {
				c := Cell{Index: len(cells), Policy: p, Topology: "grid",
					N: n, Source: sources[0]}
				if seen[c.Key()] {
					continue // already covered by the main grid
				}
				cells = append(cells, c)
			}
		}
	}
	for _, p := range policies {
		for _, topo := range topos {
			for _, n := range sizes {
				for _, loss := range losses {
					for _, churn := range churns {
						for _, drift := range drifts {
							if p == policy.Hash && (churn > 0 || drift != 0) {
								// Analytical HASH has no simulation to
								// perturb; exp.Run rejects the combination,
								// so the grid omits it (hashsim covers it).
								continue
							}
							for _, ri := range reindex {
								if !ri && p != policy.Scoop {
									// Only Scoop has an adaptive loop to
									// freeze; a comparator "noreindex" cell
									// would duplicate the normal cell under
									// a misleading key.
									continue
								}
								for _, mix := range mixes {
									if mix > 0 && p != policy.Scoop {
										// Aggregate mixes exercise the query
										// planner, which only Scoop runs:
										// BASE answers for free at the
										// basestation and analytical HASH has
										// no simulation.
										continue
									}
									for _, flt := range faults {
										if flt != "" && p != policy.Scoop {
											// Fault scenarios exercise the query
											// reliability layer, which only Scoop
											// carries.
											continue
										}
										for _, rty := range retries {
											if rty && p != policy.Scoop {
												continue
											}
											for _, src := range sources {
												cells = append(cells, Cell{
													Index: len(cells), Policy: p, Topology: topo,
													N: n, Loss: loss, Churn: churn, Drift: drift,
													NoReindex: !ri, AggMix: mix,
													Faults: flt, Retry: rty, Source: src,
												})
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	appendScaleCells()
	return cells
}

// CellSeed derives the seed for cell index from the base seed with a
// splitmix64 finalizer, so neighbouring cells get decorrelated RNG
// streams and the mapping is independent of scheduling order.
func CellSeed(base int64, index int) int64 {
	z := uint64(base) + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	// Keep seeds positive: the trial-seed arithmetic in exp assumes
	// nothing, but readable artifacts do.
	return int64(z &^ (1 << 63))
}

// config assembles the exp.Config for one cell.
func (g Grid) config(c Cell) exp.Config {
	cfg := exp.Default()
	cfg.Policy = c.Policy
	cfg.Topology = c.Topology
	cfg.N = c.N
	cfg.LinkLoss = c.Loss
	cfg.Source = c.Source
	if g.Duration > 0 {
		cfg.Duration = g.Duration
	}
	if g.Warmup > 0 {
		cfg.Warmup = g.Warmup
	}
	if g.SampleInterval > 0 {
		cfg.SampleInterval = g.SampleInterval
	}
	cfg.QueryInterval = g.QueryInterval
	if g.Trials > 0 {
		cfg.Trials = g.Trials
	} else {
		cfg.Trials = 1
	}
	cfg.Seed = CellSeed(g.Seed, c.Index)
	cfg.Regions = g.Regions
	cfg.ReindexInterval = g.ReindexInterval
	cfg.DisableReindex = c.NoReindex
	cfg.AggRatio = c.AggMix
	if c.AggMix > 0 {
		// A moderate budget lets the planner exercise summary answers
		// alongside the network plans.
		cfg.AggErrBudget = 0.25
	}
	if c.Churn > 0 || c.Drift != 0 {
		script := dynamics.Standard(c.N, cfg.Warmup, cfg.Duration,
			c.Churn, c.Drift, cfg.Seed+101)
		cfg.Dynamics = &script
	}
	cfg.Faults = c.Faults
	if c.Retry {
		// The campaign's reference reliability tuning: an 8 s initial
		// deadline doubling across up to 7 re-asks spans every scripted
		// fault window (see TestReliabilityAcceptance in internal/exp).
		cfg.QueryDeadline = 8 * netsim.Second
		cfg.QueryRetryMax = 7
	}
	return cfg
}

// CellResult captures one finished cell. All fields serialised to JSON
// are deterministic for a given base seed; wall-clock timing is
// captured for operator visibility but excluded from artifacts so
// committed baselines stay byte-stable.
type CellResult struct {
	Index     int     `json:"index"`
	Policy    string  `json:"policy"`
	Topology  string  `json:"topology"`
	N         int     `json:"n"`
	Loss      float64 `json:"loss"`
	Churn     float64 `json:"churn,omitempty"`
	Drift     float64 `json:"drift,omitempty"`
	NoReindex bool    `json:"noReindex,omitempty"`
	AggMix    float64 `json:"aggMix,omitempty"`
	Faults    string  `json:"faults,omitempty"`
	Retry     bool    `json:"retry,omitempty"`
	Source    string  `json:"source"`
	Seed      int64   `json:"seed"`

	// Message counts (mean per trial, beacons excluded from Msgs), the
	// paper's cost metric and the gate's headline number.
	Msgs     float64 `json:"msgs"`
	Data     float64 `json:"data"`
	Summary  float64 `json:"summary"`
	Mapping  float64 `json:"mapping"`
	Query    float64 `json:"query"`
	Reply    float64 `json:"reply"`
	AggReply float64 `json:"aggReply,omitempty"`
	Beacon   float64 `json:"beacon"`

	// Delivery quality.
	DataSuccess  float64 `json:"dataSuccess"`
	QuerySuccess float64 `json:"querySuccess"`
	OwnerHit     float64 `json:"ownerHit"`

	// Aggregate-engine quality (aggMix > 0 cells only): answered
	// fraction, mean absolute relative answer error, and the planner's
	// decision mix.
	AggAnswered float64 `json:"aggAnswered,omitempty"`
	AggErr      float64 `json:"aggErr,omitempty"`
	PlanSummary float64 `json:"planSummary,omitempty"`
	PlanAgg     float64 `json:"planAgg,omitempty"`
	PlanTuple   float64 `json:"planTuple,omitempty"`
	PlanFlood   float64 `json:"planFlood,omitempty"`

	// Query reliability (fault or retry cells only): the fraction of
	// settled queries with a usable answer (complete + bounded
	// degraded), the verdict census, and the deadline re-issue count.
	// Overhead lives in the per-class byte columns above; latency for
	// aggregate mixes in AggFirstMS (summed virtual ms to first
	// partial, over answered aggregates).
	Completeness    float64 `json:"completeness,omitempty"`
	VerdictComplete int64   `json:"verdictComplete,omitempty"`
	VerdictPartial  int64   `json:"verdictPartial,omitempty"`
	VerdictDegraded int64   `json:"verdictDegraded,omitempty"`
	VerdictFailed   int64   `json:"verdictFailed,omitempty"`
	Retries         int64   `json:"retries,omitempty"`
	AggFirstMS      float64 `json:"aggFirstMS,omitempty"`

	// Transition metrics (perturbed cells only; means across trials).
	// Perturbed marks cells whose trials recorded a transition
	// timeline, so a legitimate zero (e.g. instant reconvergence) is
	// distinguishable from "no metrics". ReconvS is the virtual
	// seconds from the last perturbation until delivery stays within
	// 5% of its pre-perturbation level; -1 when a trial never
	// reconverged.
	Perturbed      bool    `json:"perturbed,omitempty"`
	ReconvS        float64 `json:"reconvS,omitempty"`
	DeliveryDuring float64 `json:"deliveryDuring,omitempty"`
	DeliveryAfter  float64 `json:"deliveryAfter,omitempty"`

	// WallMS is the cell's wall-clock run time in milliseconds. It is
	// scheduling- and machine-dependent, so it never enters the JSON
	// artifact.
	WallMS float64 `json:"-"`

	// Reindex cost probe (index.BuildStats via core.RunStats, summed
	// across the cell's trials): how much index-construction work the
	// basestation did, and what the incremental pipeline skipped.
	// Operator visibility only — like WallMS these stay out of the
	// JSON artifact, both because ReindexWallMS is machine-dependent
	// and so pre-overhaul baselines remain byte-comparable.
	ReindexBuilds     int64   `json:"-"`
	ReindexValues     int64   `json:"-"`
	ReindexRecomputed int64   `json:"-"`
	ReindexSPT        int64   `json:"-"`
	ReindexWallMS     float64 `json:"-"`
}

// Key returns the cell identity key (see Cell.Key).
func (r CellResult) Key() string {
	return Cell{Policy: policy.Name(r.Policy), Topology: r.Topology,
		N: r.N, Loss: r.Loss, Churn: r.Churn, Drift: r.Drift,
		NoReindex: r.NoReindex, AggMix: r.AggMix,
		Faults: r.Faults, Retry: r.Retry, Source: r.Source}.Key()
}

// Report is a finished sweep: the artifact WriteFile persists and Gate
// consumes.
type Report struct {
	Name  string       `json:"name"`
	Seed  int64        `json:"seed"`
	Cells []CellResult `json:"cells"`
}

// Options tunes Run.
type Options struct {
	// Parallel bounds concurrently running cells; <=0 means NumCPU.
	// Note each cell may itself run Trials goroutines (exp.Run).
	Parallel int
	// Progress, when non-nil, is called once per finished cell, from
	// the worker goroutine that ran it.
	Progress func(CellResult)
}

// Run executes every cell of the grid on a bounded worker pool and
// returns the results ordered by cell index. The report is identical
// whatever Parallel is: each cell's seed depends only on (base seed,
// index), and cells share no mutable state.
func Run(g Grid, opts Options) (Report, error) {
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cells := g.Cells()
	if len(cells) == 0 {
		return Report{}, fmt.Errorf("sweep: empty grid")
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))
	work := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				results[c.Index], errs[c.Index] = runCell(g, c)
				if errs[c.Index] == nil && opts.Progress != nil {
					opts.Progress(results[c.Index])
				}
			}
		}()
	}
	for _, c := range cells {
		work <- c
	}
	close(work)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return Report{}, fmt.Errorf("sweep: cell %d (%s): %w", i, cells[i].Key(), err)
		}
	}
	return Report{Name: g.Name, Seed: g.Seed, Cells: results}, nil
}

func runCell(g Grid, c Cell) (CellResult, error) {
	cfg := g.config(c)
	start := time.Now()
	res, err := exp.Run(cfg)
	if err != nil {
		return CellResult{}, err
	}
	b := res.Breakdown
	out := CellResult{
		Index:     c.Index,
		Policy:    string(c.Policy),
		Topology:  c.Topology,
		N:         c.N,
		Loss:      c.Loss,
		Churn:     c.Churn,
		Drift:     c.Drift,
		NoReindex: c.NoReindex,
		AggMix:    c.AggMix,
		Faults:    c.Faults,
		Retry:     c.Retry,
		Source:    c.Source,
		Seed:      cfg.Seed,

		Msgs:     b.Total(),
		Data:     b.Data,
		Summary:  b.Summary,
		Mapping:  b.Mapping,
		Query:    b.Query,
		Reply:    b.Reply,
		AggReply: b.AggReply,
		Beacon:   b.Beacon,

		DataSuccess:  res.Stats.DataSuccessRate(),
		QuerySuccess: res.Stats.QuerySuccessRate(),
		OwnerHit:     res.Stats.OwnerHitRate(),

		WallMS: float64(time.Since(start)) / float64(time.Millisecond),

		ReindexBuilds:     res.Stats.IndexesBuilt,
		ReindexValues:     res.Stats.ReindexValues,
		ReindexRecomputed: res.Stats.ReindexRecomputed,
		ReindexSPT:        res.Stats.ReindexSPTSources,
		ReindexWallMS:     float64(res.Stats.ReindexWallNanos) / 1e6,
	}
	if c.Faults != "" || c.Retry {
		s := &res.Stats
		out.VerdictComplete = s.QueryVerdictComplete
		out.VerdictPartial = s.QueryVerdictPartial
		out.VerdictDegraded = s.QueryVerdictDegraded
		out.VerdictFailed = s.QueryVerdictFailed
		out.Retries = s.QueryRetries
		if settled := s.QueryVerdictComplete + s.QueryVerdictPartial +
			s.QueryVerdictDegraded + s.QueryVerdictFailed; settled > 0 {
			out.Completeness = float64(s.QueryVerdictComplete+s.QueryVerdictDegraded) /
				float64(settled)
		}
		out.AggFirstMS = float64(s.AggFirstAnswerMS)
	}
	if res.Agg.Issued > 0 {
		out.AggAnswered = float64(res.Agg.Answered) / float64(res.Agg.Issued)
		out.AggErr = res.Agg.MeanErr()
		out.PlanSummary = float64(res.Agg.PlanSummary)
		out.PlanAgg = float64(res.Agg.PlanAgg)
		out.PlanTuple = float64(res.Agg.PlanTuple)
		out.PlanFlood = float64(res.Agg.PlanFlood)
	}

	// Transition metrics: mean across trials that recorded a
	// perturbed timeline; ReconvS is -1 as soon as one trial never
	// reconverged (the pessimistic read a gate wants).
	var reconv, during, after float64
	summarized, failed := 0, false
	for _, t := range res.PerTrial {
		s, ok := t.Timeline.Summarize(0.05)
		if !ok {
			continue
		}
		summarized++
		during += s.DeliveryDuring
		after += s.DeliveryAfter
		if s.ReconvergenceMS < 0 {
			failed = true
		} else {
			reconv += float64(s.ReconvergenceMS) / 1000
		}
	}
	if summarized > 0 {
		out.Perturbed = true
		out.DeliveryDuring = during / float64(summarized)
		out.DeliveryAfter = after / float64(summarized)
		if failed {
			out.ReconvS = -1
		} else {
			out.ReconvS = reconv / float64(summarized)
		}
	}
	return out, nil
}
