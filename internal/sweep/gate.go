package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// DefaultTolerance is the relative regression Gate permits before
// failing: a cell may cost up to 10% more messages (or deliver 10%
// worse) than its committed baseline.
const DefaultTolerance = 0.10

// WriteFile persists the report as an indented JSON artifact
// (conventionally sweep-<name>.json). For a fixed base seed the bytes
// are identical across runs and parallelism levels, so artifacts can
// be committed and diffed.
func WriteFile(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report previously written by WriteFile.
func ReadFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("sweep: parsing %s: %w", path, err)
	}
	return r, nil
}

// Violation is one gate failure: a cell that regressed past the
// tolerance, or a baseline cell the current sweep no longer covers.
type Violation struct {
	Cell     string // cell key
	Metric   string // "msgs", "dataSuccess", "aggAnswered", or "missing"
	Baseline float64
	Current  float64
	Delta    float64 // relative change, signed (+ = worse for msgs)
}

func (v Violation) String() string {
	if v.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but not in current sweep", v.Cell)
	}
	return fmt.Sprintf("%s: %s %.1f -> %.1f (%+.1f%%)",
		v.Cell, v.Metric, v.Baseline, v.Current, 100*v.Delta)
}

// Gate compares a fresh sweep against a committed baseline and returns
// every regression beyond tol (relative). A cell regresses when its
// message cost rises more than tol above the baseline, or its data
// delivery rate falls more than tol below it; improvements pass.
// Baseline cells absent from the current report are violations too —
// shrinking the grid must not silently retire a gate. tol == 0 gates
// strictly (any regression fails); tol < 0 uses DefaultTolerance.
func Gate(current, baseline Report, tol float64) []Violation {
	if tol < 0 {
		tol = DefaultTolerance
	}
	byKey := make(map[string]CellResult, len(current.Cells))
	for _, c := range current.Cells {
		byKey[c.Key()] = c
	}
	var out []Violation
	for _, base := range baseline.Cells {
		key := base.Key()
		cur, ok := byKey[key]
		if !ok {
			out = append(out, Violation{Cell: key, Metric: "missing"})
			continue
		}
		if base.Msgs > 0 && cur.Msgs > base.Msgs*(1+tol) {
			out = append(out, Violation{
				Cell: key, Metric: "msgs",
				Baseline: base.Msgs, Current: cur.Msgs,
				Delta: cur.Msgs/base.Msgs - 1,
			})
		}
		if base.DataSuccess > 0 && cur.DataSuccess < base.DataSuccess*(1-tol) {
			out = append(out, Violation{
				Cell: key, Metric: "dataSuccess",
				Baseline: base.DataSuccess, Current: cur.DataSuccess,
				Delta: cur.DataSuccess/base.DataSuccess - 1,
			})
		}
		if base.AggAnswered > 0 && cur.AggAnswered < base.AggAnswered*(1-tol) {
			out = append(out, Violation{
				Cell: key, Metric: "aggAnswered",
				Baseline: base.AggAnswered, Current: cur.AggAnswered,
				Delta: cur.AggAnswered/base.AggAnswered - 1,
			})
		}
	}
	return out
}

// GateError folds violations into a single error (nil when the gate
// passes), for callers that just need pass/fail.
func GateError(violations []Violation) error {
	if len(violations) == 0 {
		return nil
	}
	msgs := make([]string, len(violations))
	for i, v := range violations {
		msgs[i] = v.String()
	}
	return fmt.Errorf("sweep gate: %d regression(s):\n  %s",
		len(violations), strings.Join(msgs, "\n  "))
}
