package sweep

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// tinyGrid is a fast 8-cell grid for unit tests: short runs over small
// networks, two policies × two sizes × two loss rates.
func tinyGrid() Grid {
	g := Default()
	g.Name = "tiny"
	g.Policies = []policy.Name{policy.Scoop, policy.Base}
	g.Sizes = []int{12, 16}
	g.LossRates = []float64{0, 0.15}
	g.Duration = 6 * netsim.Minute
	g.Warmup = 2 * netsim.Minute
	g.Seed = 7
	return g
}

func TestCellsCrossProduct(t *testing.T) {
	g := Default()
	cells := g.Cells()
	want := len(g.Policies) * len(g.Topologies) * len(g.Sizes) * len(g.LossRates) * len(g.Sources)
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	if want < 24 {
		t.Fatalf("default grid has %d cells; the policy×N×loss grid must cover >=24", want)
	}
	seen := map[string]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d carries index %d", i, c.Index)
		}
		if seen[c.Key()] {
			t.Fatalf("duplicate cell %s", c.Key())
		}
		seen[c.Key()] = true
	}
}

func TestEmptyAxesGetDefaults(t *testing.T) {
	cells := Grid{}.Cells()
	if len(cells) != 1 {
		t.Fatalf("zero grid expands to %d cells, want 1", len(cells))
	}
	if cells[0].Policy != policy.Scoop || cells[0].N != 63 {
		t.Fatalf("unexpected default cell: %+v", cells[0])
	}
}

func TestCellSeedsDistinctAndStable(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := CellSeed(1, i)
		if s < 0 {
			t.Fatalf("cell %d: negative seed %d", i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("cells %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if CellSeed(1, 0) == CellSeed(2, 0) {
		t.Fatal("different base seeds map cell 0 to the same seed")
	}
	if CellSeed(1, 5) != CellSeed(1, 5) {
		t.Fatal("CellSeed is not a pure function")
	}
}

// The acceptance property: the artifact bytes depend only on the grid
// and base seed, never on worker count or scheduling order.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	g := tinyGrid()
	serial, err := Run(g, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(g, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.MarshalIndent(serial, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(parallel, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("serial and 8-way sweeps differ:\n%s\n----\n%s", a, b)
	}
	for _, c := range serial.Cells {
		if c.Msgs <= 0 {
			t.Fatalf("cell %s ran but moved no messages", c.Key())
		}
		if c.WallMS <= 0 {
			t.Fatalf("cell %s captured no timing", c.Key())
		}
	}
}

// Loss is not a no-op: degraded links must change the simulated
// outcome (more retries, fewer deliveries).
func TestLossAxisAffectsResults(t *testing.T) {
	g := tinyGrid()
	g.Policies = []policy.Name{policy.Scoop}
	g.Sizes = []int{16}
	g.LossRates = []float64{0, 0.3}
	rep, err := Run(g, Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	clean, lossy := rep.Cells[0], rep.Cells[1]
	if clean.Loss != 0 || lossy.Loss != 0.3 {
		t.Fatalf("unexpected cell order: %+v / %+v", clean, lossy)
	}
	// Degraded links force retransmissions (more messages for the
	// same workload) and lose query replies. Per-trial data-delivery
	// noise makes DataSuccess unreliable at this tiny scale, so the
	// robust signals are asserted instead.
	if lossy.Msgs <= clean.Msgs {
		t.Fatalf("30%% link loss did not raise message cost: %.0f -> %.0f",
			clean.Msgs, lossy.Msgs)
	}
	if lossy.QuerySuccess >= clean.QuerySuccess {
		t.Fatalf("query success did not fall under loss: %.2f -> %.2f",
			clean.QuerySuccess, lossy.QuerySuccess)
	}
}

func TestRunRejectsBadCells(t *testing.T) {
	g := tinyGrid()
	g.Sources = []string{"no-such-source"}
	if _, err := Run(g, Options{Parallel: 2}); err == nil {
		t.Fatal("unknown workload source accepted")
	}
	g = tinyGrid()
	g.LossRates = []float64{1.5}
	if _, err := Run(g, Options{Parallel: 2}); err == nil {
		t.Fatal("loss rate 1.5 accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rep := Report{Name: "rt", Seed: 3, Cells: []CellResult{{
		Index: 0, Policy: "scoop", Topology: "uniform", N: 12,
		Loss: 0.1, Source: "real", Seed: 42, Msgs: 100, DataSuccess: 0.9,
	}}}
	path := filepath.Join(t.TempDir(), "sweep-rt.json")
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != rep.Name || got.Seed != rep.Seed || len(got.Cells) != 1 ||
		got.Cells[0] != rep.Cells[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func baselinePair() (Report, Report) {
	base := Report{Name: "b", Cells: []CellResult{
		{Policy: "scoop", Topology: "uniform", N: 63, Loss: 0, Source: "real",
			Msgs: 1000, DataSuccess: 0.90},
		{Policy: "base", Topology: "uniform", N: 63, Loss: 0, Source: "real",
			Msgs: 4000, DataSuccess: 0.95},
	}}
	cur := Report{Name: "c", Cells: append([]CellResult(nil), base.Cells...)}
	return cur, base
}

// The acceptance property for the gate: a synthetic >10% message
// regression in one cell must fail, while <=10% drift passes.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	cur, base := baselinePair()
	cur.Cells[0].Msgs = 1250 // +25%: well past the 10% tolerance
	v := Gate(cur, base, 0.10)
	if len(v) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(v), v)
	}
	if v[0].Metric != "msgs" || v[0].Cell != base.Cells[0].Key() {
		t.Fatalf("wrong violation: %+v", v[0])
	}
	if err := GateError(v); err == nil {
		t.Fatal("GateError passed a regression")
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	cur, base := baselinePair()
	cur.Cells[0].Msgs = 1080 // +8%: inside tolerance
	cur.Cells[1].Msgs = 2500 // improvement: always fine
	cur.Cells[1].DataSuccess = 0.99
	if v := Gate(cur, base, 0.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	if err := GateError(nil); err != nil {
		t.Fatalf("GateError failed a clean gate: %v", err)
	}
}

func TestGateCatchesDeliveryRegression(t *testing.T) {
	cur, base := baselinePair()
	cur.Cells[1].DataSuccess = 0.70 // -26%
	v := Gate(cur, base, 0.10)
	if len(v) != 1 || v[0].Metric != "dataSuccess" {
		t.Fatalf("delivery regression not caught: %v", v)
	}
}

func TestGateCatchesMissingCell(t *testing.T) {
	cur, base := baselinePair()
	cur.Cells = cur.Cells[:1]
	v := Gate(cur, base, 0.10)
	if len(v) != 1 || v[0].Metric != "missing" {
		t.Fatalf("missing cell not caught: %v", v)
	}
}

func TestGateDefaultTolerance(t *testing.T) {
	cur, base := baselinePair()
	cur.Cells[0].Msgs = 1090 // +9% passes under the default 10%
	if v := Gate(cur, base, -1); len(v) != 0 {
		t.Fatalf("default tolerance rejected +9%%: %v", v)
	}
	cur.Cells[0].Msgs = 1150 // +15% fails
	if v := Gate(cur, base, -1); len(v) != 1 {
		t.Fatalf("default tolerance passed +15%%: %v", v)
	}
}

// tol == 0 means what it says: strict gating, not the default.
func TestGateZeroToleranceIsStrict(t *testing.T) {
	cur, base := baselinePair()
	cur.Cells[0].Msgs = 1001 // +0.1%
	if v := Gate(cur, base, 0); len(v) != 1 {
		t.Fatalf("zero tolerance passed a +0.1%% regression: %v", v)
	}
}
