package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"scoop/internal/dynamics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// faultsGrid is the committed fault campaign
// (testdata/sweep-faults-baseline.json): every scripted fault scenario
// (plus the fault-free reference) × reliability layer off/on, at 40%
// ambient link loss over a mixed tuple/aggregate workload. Each cell
// records completeness, the verdict census, retry count and the
// per-class byte overheads, so the artifact is the one-file answer to
// "what does each fault do to query answering, and what does the
// recovery cost".
func faultsGrid() Grid {
	return Grid{
		Name:           "faults-campaign",
		Policies:       []policy.Name{policy.Scoop},
		Topologies:     []string{"uniform"},
		Sizes:          []int{20},
		LossRates:      []float64{0.4},
		QueryMixes:     []float64{0.5},
		Faults:         append([]string{""}, dynamics.FaultScenarios()...),
		Retry:          []bool{false, true},
		Sources:        []string{"real"},
		Duration:       30 * netsim.Minute,
		Warmup:         2 * netsim.Minute,
		SampleInterval: 15 * netsim.Second,
		QueryInterval:  15 * netsim.Second,
		Trials:         1,
		Seed:           17,
	}
}

// TestFaultCampaignBaseline regenerates the fault campaign and
// requires byte-for-byte equality with the committed artifact, then
// asserts the campaign's headline acceptance numbers on the fresh
// report: under 40% loss plus the regional blackout, the reliability
// layer lifts completeness to >= 0.95 over the no-retry baseline at no
// more than 2x the fault-free query-class bytes.
func TestFaultCampaignBaseline(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "sweep-faults-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(faultsGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "faults.json")
	if err := WriteFile(tmp, rep); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fault campaign is not byte-identical to the committed artifact.\n"+
			"If this change to simulated behaviour is intentional, regenerate "+
			"testdata/sweep-faults-baseline.json (SCOOP_REGEN_FAULTS=1) and "+
			"justify it in the commit.\ngot %d bytes, want %d bytes", len(got), len(want))
	}

	byKey := map[string]CellResult{}
	for _, c := range rep.Cells {
		byKey[c.Key()] = c
	}
	cell := func(key string) CellResult {
		c, ok := byKey[key]
		if !ok {
			t.Fatalf("campaign artifact has no cell %q", key)
		}
		return c
	}
	lifted := cell("scoop/uniform/n20/loss0.4/real/agg0.5/faults-blackout/retry")
	bare := cell("scoop/uniform/n20/loss0.4/real/agg0.5/faults-blackout")
	cleanRef := cell("scoop/uniform/n20/loss0.4/real/agg0.5/retry")
	if lifted.Completeness < 0.95 {
		t.Errorf("blackout+retry completeness %.3f, want >= 0.95", lifted.Completeness)
	}
	if lifted.Retries == 0 {
		t.Error("blackout+retry cell recorded no retries")
	}
	if bare.Retries != 0 || bare.Completeness != 0 {
		t.Errorf("no-retry cell should have no reliability state, got %d retries, completeness %.3f",
			bare.Retries, bare.Completeness)
	}
	if cleanRef.Query <= 0 {
		t.Fatal("fault-free reference sent no query bytes")
	}
	if ratio := lifted.Query / cleanRef.Query; ratio > 2 {
		t.Errorf("blackout+retry query bytes %.0f are %.2fx the fault-free %.0f, budget is 2x",
			lifted.Query, ratio, cleanRef.Query)
	}
}

// TestFaultCampaignRegionsIdentical holds the fault campaign to the
// same cross-engine bar as every other artifact: the 4-region parallel
// engine must reproduce the serial campaign bytes exactly, fault
// injection and all.
func TestFaultCampaignRegionsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign twice is too slow for -short")
	}
	serial, err := Run(faultsGrid(), Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := faultsGrid()
	g.Regions = 4
	par, err := Run(g, Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	pa := filepath.Join(t.TempDir(), "serial.json")
	pb := filepath.Join(t.TempDir(), "regions.json")
	if err := WriteFile(pa, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(pb, par); err != nil {
		t.Fatal(err)
	}
	ba, err := os.ReadFile(pa)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(pb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("same fault campaign, different artifacts between the serial and 4-region engines")
	}
}

// TestRegenerateFaultsBaseline rewrites the committed campaign
// artifact in place when SCOOP_REGEN_FAULTS=1 is set — the blessed
// regeneration path after an intentional protocol change.
func TestRegenerateFaultsBaseline(t *testing.T) {
	if os.Getenv("SCOOP_REGEN_FAULTS") != "1" {
		t.Skip("set SCOOP_REGEN_FAULTS=1 to rewrite testdata artifacts")
	}
	rep, err := Run(faultsGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join("testdata", "sweep-faults-baseline.json"), rep); err != nil {
		t.Fatal(err)
	}
}
