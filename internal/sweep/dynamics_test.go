package sweep

import (
	"strings"
	"testing"

	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// Dynamics key components appear only when non-default, so keys from
// pre-dynamics baseline artifacts keep matching their cells.
func TestCellKeyBackwardCompatible(t *testing.T) {
	static := Cell{Policy: policy.Scoop, Topology: "uniform", N: 16, Loss: 0, Source: "real"}
	if got, want := static.Key(), "scoop/uniform/n16/loss0/real"; got != want {
		t.Fatalf("static key = %q, want %q", got, want)
	}
	dyn := Cell{Policy: policy.Scoop, Topology: "uniform", N: 16, Loss: 0,
		Churn: 0.15, Drift: 0.4, NoReindex: true, Source: "real"}
	want := "scoop/uniform/n16/loss0/real/churn0.15/drift0.4/noreindex"
	if got := dyn.Key(); got != want {
		t.Fatalf("dynamic key = %q, want %q", got, want)
	}
	// CellResult computes the identical key.
	r := CellResult{Policy: "scoop", Topology: "uniform", N: 16,
		Churn: 0.15, Drift: 0.4, NoReindex: true, Source: "real"}
	if r.Key() != want {
		t.Fatalf("result key = %q", r.Key())
	}
}

// The analytical HASH policy cannot simulate perturbations, so the
// cross-product omits hash×(churn|drift) cells rather than labelling
// unperturbed numbers as perturbed.
func TestCellsSkipAnalyticalHashDynamics(t *testing.T) {
	g := Default()
	g.Policies = []policy.Name{policy.Scoop, policy.Hash}
	g.Sizes = []int{16}
	g.LossRates = []float64{0}
	g.ChurnRates = []float64{0, 0.1}
	cells := g.Cells()
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3 (scoop×2 churn + hash static)", len(cells))
	}
	for _, c := range cells {
		if c.Policy == policy.Hash && c.Churn > 0 {
			t.Fatalf("hash churn cell generated: %s", c.Key())
		}
		if err := g.config(c).Validate(); err != nil {
			t.Fatalf("cell %s invalid: %v", c.Key(), err)
		}
	}
}

// The frozen-index ablation only exists for Scoop; comparator
// policies have no adaptive loop, so reindex-off cells for them would
// duplicate the normal cell under a misleading key.
func TestCellsSkipComparatorNoReindex(t *testing.T) {
	g := Default()
	g.Policies = []policy.Name{policy.Scoop, policy.Hash, policy.Base, policy.Local, policy.HashSim}
	g.Sizes = []int{16}
	g.LossRates = []float64{0}
	g.Reindex = []bool{true, false}
	cells := g.Cells()
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6 (5 policies + scoop noreindex)", len(cells))
	}
	for _, c := range cells {
		if c.NoReindex && c.Policy != policy.Scoop {
			t.Fatalf("comparator noreindex cell generated: %s", c.Key())
		}
	}
}

func TestCellsExpandDynamicsAxes(t *testing.T) {
	g := Default()
	g.Policies = []policy.Name{policy.Scoop}
	g.Sizes = []int{16}
	g.LossRates = []float64{0}
	g.ChurnRates = []float64{0, 0.1}
	g.DriftRates = []float64{0, 0.4}
	g.Reindex = []bool{true, false}
	cells := g.Cells()
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key()] {
			t.Fatalf("duplicate key %q", c.Key())
		}
		seen[c.Key()] = true
	}
	// A perturbed, no-reindex cell builds a dynamics config.
	for _, c := range cells {
		cfg := g.config(c)
		if (c.Churn > 0 || c.Drift != 0) != !cfg.Dynamics.Empty() {
			t.Fatalf("cell %s: dynamics script presence mismatch", c.Key())
		}
		if cfg.DisableReindex != c.NoReindex {
			t.Fatalf("cell %s: reindex mapping wrong", c.Key())
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("cell %s: invalid config: %v", c.Key(), err)
		}
	}
}

// A one-cell churn+drift sweep runs end to end and reports transition
// metrics; rerunning reproduces the identical result.
func TestChurnCellRunsDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweep cell")
	}
	g := Grid{
		Name:            "dyn",
		Policies:        []policy.Name{policy.Scoop},
		Sizes:           []int{16},
		ChurnRates:      []float64{0.15},
		DriftRates:      []float64{0.3},
		Sources:         []string{"unique"},
		Duration:        14 * netsim.Minute,
		Warmup:          3 * netsim.Minute,
		ReindexInterval: 2 * netsim.Minute,
		Trials:          1,
		Seed:            5,
	}
	run := func() Report {
		rep, err := Run(g, Options{Parallel: 2})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Cells) != 1 {
		t.Fatalf("cells = %d", len(a.Cells))
	}
	c := a.Cells[0]
	if !strings.Contains(c.Key(), "churn0.15/drift0.3") {
		t.Fatalf("key = %q", c.Key())
	}
	if c.Msgs <= 0 || c.DataSuccess <= 0 {
		t.Fatalf("degenerate cell result: %+v", c)
	}
	if c.DeliveryDuring == 0 && c.DeliveryAfter == 0 {
		t.Fatal("transition metrics missing for a perturbed cell")
	}
	if c.ReindexBuilds == 0 || c.ReindexValues == 0 {
		t.Fatal("reindex cost probe missing for a scoop cell")
	}
	// Wall-clock fields are the only legitimately nondeterministic ones.
	a.Cells[0].WallMS, b.Cells[0].WallMS = 0, 0
	a.Cells[0].ReindexWallMS, b.Cells[0].ReindexWallMS = 0, 0
	if a.Cells[0] != b.Cells[0] {
		t.Fatalf("sweep cell not deterministic:\n%+v\n%+v", a.Cells[0], b.Cells[0])
	}
}
