package sweep

import (
	"testing"

	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// The agg-mix key component appears only when non-zero, so keys from
// pre-agg baseline artifacts keep matching their cells.
func TestCellKeyAggMixBackwardCompatible(t *testing.T) {
	static := Cell{Policy: policy.Scoop, Topology: "uniform", N: 16, Loss: 0, Source: "real"}
	if got, want := static.Key(), "scoop/uniform/n16/loss0/real"; got != want {
		t.Fatalf("static key = %q, want %q", got, want)
	}
	mixed := Cell{Policy: policy.Scoop, Topology: "uniform", N: 16, Loss: 0,
		AggMix: 0.5, Source: "real"}
	want := "scoop/uniform/n16/loss0/real/agg0.5"
	if got := mixed.Key(); got != want {
		t.Fatalf("mixed key = %q, want %q", got, want)
	}
	r := CellResult{Policy: "scoop", Topology: "uniform", N: 16,
		AggMix: 0.5, Source: "real"}
	if r.Key() != want {
		t.Fatalf("result key = %q", r.Key())
	}
}

// Aggregate mixes only make sense for the Scoop policy: BASE answers
// at the basestation for free and analytical HASH has no simulation,
// so the cross-product omits their mixed cells.
func TestCellsSkipComparatorAggMix(t *testing.T) {
	g := Default()
	g.Policies = []policy.Name{policy.Scoop, policy.Base, policy.Hash}
	g.Sizes = []int{16}
	g.LossRates = []float64{0}
	g.QueryMixes = []float64{0, 0.5}
	cells := g.Cells()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4 (scoop×2 mixes + base + hash)", len(cells))
	}
	for _, c := range cells {
		if c.AggMix > 0 && c.Policy != policy.Scoop {
			t.Fatalf("comparator agg cell generated: %s", c.Key())
		}
		if err := g.config(c).Validate(); err != nil {
			t.Fatalf("cell %s invalid: %v", c.Key(), err)
		}
	}
}

// An agg-mix cell records aggregate answer quality and planner
// decisions into the artifact, and its key gates against itself.
func TestAggMixCellEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation cell")
	}
	g := Default()
	g.Policies = []policy.Name{policy.Scoop}
	g.Sizes = []int{12}
	g.LossRates = []float64{0}
	g.QueryMixes = []float64{0.5}
	g.Duration = 10 * netsim.Minute
	g.Warmup = 3 * netsim.Minute
	rep, err := Run(g, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("cells = %d", len(rep.Cells))
	}
	c := rep.Cells[0]
	if c.AggMix != 0.5 {
		t.Fatalf("aggMix = %v", c.AggMix)
	}
	if c.AggAnswered <= 0 || c.AggAnswered > 1 {
		t.Fatalf("aggAnswered = %v", c.AggAnswered)
	}
	if c.PlanSummary+c.PlanAgg+c.PlanTuple+c.PlanFlood == 0 {
		t.Fatal("no planner decisions recorded")
	}
	if v := Gate(rep, rep, 0); len(v) != 0 {
		t.Fatalf("self-gate violations: %v", v)
	}
	// A doctored baseline demanding better answer delivery trips the
	// aggAnswered gate.
	doctored := rep
	doctored.Cells = append([]CellResult(nil), rep.Cells...)
	doctored.Cells[0].AggAnswered *= 1.5
	if v := Gate(rep, doctored, 0.1); len(v) == 0 {
		t.Fatal("aggAnswered regression not gated")
	}
}
