// Package policy provides the comparator storage policies from the
// paper's evaluation (§6): LOCAL (store locally, flood queries), BASE
// (send everything to the basestation), and HASH (static uniform
// value→node hash, the GHT-style data-centric storage baseline).
//
// LOCAL and BASE are expressed as configurations of the full Scoop
// protocol stack with a preloaded fixed index and statistics traffic
// disabled, so all policies share identical radio, routing and
// query-dissemination machinery — exactly the paper's setup, where all
// policies ran on the same TinyOS networking stack.
//
// HASH exists in two forms. AnalyticalHash reproduces the paper's
// treatment ("because we did not have a working implementation of
// HASH … we evaluate the cost of this HASH approach analytically").
// HashConfig additionally provides a fully simulated HASH as an
// extension, which the paper could not run.
package policy

import (
	"fmt"

	"scoop/internal/core"
	"scoop/internal/index"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
)

// Name identifies a storage policy.
type Name string

// The four policies of the paper's evaluation, plus the simulated-HASH
// extension.
const (
	Scoop   Name = "scoop"
	Local   Name = "local"
	Base    Name = "base"
	Hash    Name = "hash"    // analytical, as in the paper
	HashSim Name = "hashsim" // extension: actually simulated
)

// Names lists the policies in the paper's display order.
func Names() []Name { return []Name{Scoop, Local, Hash, Base} }

// Config returns the core protocol configuration implementing the
// named policy over an n-node network and the value domain [lo,hi].
// The analytical Hash policy has no runnable configuration; use
// AnalyticalHash instead.
func Config(p Name, n, lo, hi int) (core.Config, error) {
	cfg := core.DefaultConfig(lo, hi)
	switch p {
	case Scoop:
		// Figure 3's SCOOP disables the store-local fallback (paper
		// §6); DefaultConfig already does.
		return cfg, nil
	case Local:
		cfg.Preload = index.NewLocal(1)
		cfg.DisableSummaries = true
		cfg.DisableRemap = true
		return cfg, nil
	case Base:
		owners := make([]netsim.NodeID, hi-lo+1) // all zero: the base
		cfg.Preload = index.New(1, lo, owners)
		cfg.DisableSummaries = true
		cfg.DisableRemap = true
		// TinyDB-style collection ships every sample as it is taken;
		// reading batching is Scoop's optimisation (paper §5.4), not
		// the baseline's.
		cfg.BatchSize = 1
		return cfg, nil
	case HashSim:
		cfg.Preload = HashIndex(1, n, lo, hi)
		cfg.DisableSummaries = true
		cfg.DisableRemap = true
		return cfg, nil
	}
	return core.Config{}, fmt.Errorf("policy: no runnable config for %q", p)
}

// HashIndex builds the static uniform value→node index the HASH
// policy uses: value v lives on node (hash(v) mod n-1)+1, never the
// basestation.
func HashIndex(id uint16, n, lo, hi int) *index.Index {
	owners := make([]netsim.NodeID, hi-lo+1)
	for i := range owners {
		owners[i] = hashOwner(lo+i, n)
	}
	return index.New(id, lo, owners)
}

// hashOwner is the Fibonacci-style integer hash assigning values to
// non-base nodes.
func hashOwner(v, n int) netsim.NodeID {
	h := uint32(v) * 2654435761
	return netsim.NodeID(h%uint32(n-1)) + 1
}

// HashWorkload summarises what the analytical HASH model needs to
// know about a run.
type HashWorkload struct {
	SamplesPerNode float64 // readings each non-base node produces
	Queries        float64 // queries issued
	QueryWidth     float64 // mean values per query range
}

// AnalyticalHash evaluates the HASH policy the way the paper does:
// expected transmissions over the true topology's ETX metric, with no
// summary or mapping overhead.
//
//   - Every reading travels from its producer to a uniformly random
//     node: expected cost is the producer's mean ETX distance to all
//     non-base nodes. (Consecutive values hash apart, so the paper's
//     5-reading batching never engages, as with RANDOM under Scoop.)
//   - Every query contacts the owners of its value range directly:
//     one base→owner→base round trip per distinct owner.
func AnalyticalHash(topo *netsim.Topology, w HashWorkload) metrics.Breakdown {
	g := index.NewGraph(topo.N)
	for i := 0; i < topo.N; i++ {
		for j := 0; j < topo.N; j++ {
			if i != j {
				g.Report(netsim.NodeID(i), netsim.NodeID(j), topo.Quality[i][j])
			}
		}
	}
	x := g.Xmits()
	var data float64
	for p := 1; p < topo.N; p++ {
		var mean float64
		cnt := 0
		for o := 1; o < topo.N; o++ {
			if o == p {
				cnt++ // storing on yourself costs nothing
				continue
			}
			if x[p][o] >= index.Inf {
				continue
			}
			mean += x[p][o]
			cnt++
		}
		if cnt > 0 {
			data += w.SamplesPerNode * mean / float64(cnt)
		}
	}
	query := 0.0
	// Mean round trip from the base to a uniformly random owner.
	var rt float64
	cnt := 0
	for o := 1; o < topo.N; o++ {
		r := index.RoundTrip(x, 0, netsim.NodeID(o))
		if r >= index.Inf {
			continue
		}
		rt += r
		cnt++
	}
	if cnt > 0 {
		rt /= float64(cnt)
	}
	// A width-w range hashes to ~min(w, n-1) distinct owners.
	owners := w.QueryWidth
	if max := float64(topo.N - 1); owners > max {
		owners = max
	}
	query = w.Queries * owners * rt
	// Half the round-trip messages are outbound queries, half replies.
	return metrics.Breakdown{Data: data, Query: query / 2, Reply: query / 2}
}

// AnalyticalBaseData evaluates the send-to-base policy's data cost
// under the same pure-ETX model AnalyticalHash uses: every reading
// travels producer→base. Dividing a *measured* BASE run by this number
// yields the radio-inflation factor (retries, collisions, queue
// drops) that the analytical HASH numbers must be scaled by to be
// comparable with simulated policies — the paper evaluated HASH
// "analytically in our simulator", i.e. under the simulator's cost
// conditions.
func AnalyticalBaseData(topo *netsim.Topology, w HashWorkload) float64 {
	g := index.NewGraph(topo.N)
	for i := 0; i < topo.N; i++ {
		for j := 0; j < topo.N; j++ {
			if i != j {
				g.Report(netsim.NodeID(i), netsim.NodeID(j), topo.Quality[i][j])
			}
		}
	}
	x := g.Xmits()
	var data float64
	for p := 1; p < topo.N; p++ {
		if x[p][0] >= index.Inf {
			continue
		}
		data += w.SamplesPerNode * x[p][0]
	}
	return data
}
