package policy

import (
	"testing"
	"testing/quick"

	"scoop/internal/netsim"
)

func TestConfigScoop(t *testing.T) {
	cfg, err := Config(Scoop, 63, 0, 150)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Preload != nil || cfg.DisableSummaries || cfg.DisableRemap {
		t.Fatal("scoop config must run the full protocol")
	}
	if cfg.StoreLocalFallback {
		t.Fatal("experiments disable the store-local fallback (paper §6)")
	}
}

func TestConfigLocal(t *testing.T) {
	cfg, err := Config(Local, 63, 0, 150)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Preload == nil || !cfg.Preload.Local {
		t.Fatal("local config must preload a store-local index")
	}
	if !cfg.DisableSummaries || !cfg.DisableRemap {
		t.Fatal("local config must disable statistics traffic")
	}
}

func TestConfigBase(t *testing.T) {
	cfg, err := Config(Base, 63, 0, 150)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Preload == nil {
		t.Fatal("no preload")
	}
	for v := 0; v <= 150; v += 10 {
		if o, ok := cfg.Preload.Owner(v); !ok || o != 0 {
			t.Fatalf("value %d owned by %d, want base", v, o)
		}
	}
	if cfg.BatchSize != 1 {
		t.Fatal("BASE must ship unbatched, TinyDB-style")
	}
}

func TestConfigHashSim(t *testing.T) {
	cfg, err := Config(HashSim, 63, 0, 150)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[netsim.NodeID]bool{}
	for v := 0; v <= 150; v++ {
		o, ok := cfg.Preload.Owner(v)
		if !ok {
			t.Fatalf("value %d unmapped", v)
		}
		if o == 0 {
			t.Fatalf("hash assigned value %d to the basestation", v)
		}
		owners[o] = true
	}
	if len(owners) < 20 {
		t.Fatalf("hash used only %d distinct owners; should spread", len(owners))
	}
}

func TestConfigHashNotRunnable(t *testing.T) {
	if _, err := Config(Hash, 63, 0, 150); err == nil {
		t.Fatal("analytical hash must not yield a runnable config")
	}
	if _, err := Config("bogus", 63, 0, 150); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// Property: the hash index is deterministic and never picks the base.
func TestHashOwnerProperty(t *testing.T) {
	f := func(v int16, nSeed uint8) bool {
		n := int(nSeed%100) + 3
		a := hashOwner(int(v), n)
		b := hashOwner(int(v), n)
		return a == b && a != 0 && int(a) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyticalHashScalesWithWorkload(t *testing.T) {
	topo := netsim.UniformTopology(40, 7, 3.5, 3)
	w := HashWorkload{SamplesPerNode: 100, Queries: 50, QueryWidth: 4}
	b1 := AnalyticalHash(topo, w)
	w2 := w
	w2.SamplesPerNode = 200
	b2 := AnalyticalHash(topo, w2)
	if b2.Data <= b1.Data*1.9 {
		t.Fatalf("doubling samples did not double data cost: %f vs %f", b1.Data, b2.Data)
	}
	if b2.Query != b1.Query {
		t.Fatal("sample rate changed query cost")
	}
	w3 := w
	w3.Queries = 100
	b3 := AnalyticalHash(topo, w3)
	if b3.Query <= b1.Query*1.9 {
		t.Fatalf("doubling queries did not double query cost")
	}
}

func TestAnalyticalHashQueryWidthCapped(t *testing.T) {
	topo := netsim.UniformTopology(10, 4, 3.5, 4)
	w := HashWorkload{SamplesPerNode: 1, Queries: 1, QueryWidth: 500}
	b := AnalyticalHash(topo, w)
	wCap := HashWorkload{SamplesPerNode: 1, Queries: 1, QueryWidth: 9}
	bCap := AnalyticalHash(topo, wCap)
	if b.Query != bCap.Query {
		t.Fatalf("query width not capped at n-1 owners: %f vs %f", b.Query, bCap.Query)
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if len(names) != 4 || names[0] != Scoop || names[3] != Base {
		t.Fatalf("names = %v", names)
	}
}

func TestHashIndexMatchesHashOwner(t *testing.T) {
	ix := HashIndex(3, 20, 0, 50)
	for v := 0; v <= 50; v++ {
		o, ok := ix.Owner(v)
		if !ok || o != hashOwner(v, 20) {
			t.Fatalf("index owner %d != hash owner %d for value %d", o, hashOwner(v, 20), v)
		}
	}
}
