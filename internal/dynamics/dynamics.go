// Package dynamics injects mid-run perturbations into a running
// simulation: node death and (re)join, network-wide and per-link loss
// ramps, and workload drift (the data distribution walking across the
// value domain, the query hot-range migrating). A Script is a timeline
// of such events; Attach schedules them onto the simulator against a
// set of Targets (the radio network, a driftable data source, a
// driftable query generator).
//
// The point of the package is to exercise Scoop's adaptive loop over
// time. The paper's central claim (§5) is that the basestation
// periodically re-collects statistics and redistributes the
// value→node index as distributions, workloads and membership change;
// a static 40-minute run never stresses that loop. Scripts are pure
// data, built deterministically from a seed, so perturbed runs remain
// exactly reproducible. See DESIGN.md §8 for the design rationale.
package dynamics

import (
	"fmt"
	"math/rand"
	"sort"

	"scoop/internal/netsim"
	"scoop/internal/trace"
)

// Kind discriminates perturbation events.
type Kind uint8

// Event kinds.
const (
	// NodeDown kills Node: it stops sending, receiving and firing
	// timers, mid-air frames to it are lost.
	NodeDown Kind = iota
	// NodeUp reboots Node: it rejoins with fresh protocol state (a
	// rebooted mote loses its RAM: routing table, index, send queue).
	NodeUp
	// NetLoss sets the network-wide interference floor to Value (a
	// loss fraction in [0,1)), on top of the run's base link loss.
	// It rewrites every link's scale, so it overrides any earlier
	// LinkLoss adjustments; schedule per-link events after the last
	// network-wide one they must survive.
	NetLoss
	// LinkLoss sets the directed link Src→Dst's extra loss to Value.
	LinkLoss
	// DataShift sets the data-distribution offset to Value, a signed
	// fraction of the value domain (0.4 = every sample shifted up by
	// 40% of the domain, clamped at the edges).
	DataShift
	// QueryShift moves the query hot-range center to Value, a fraction
	// of the value domain in [0,1].
	QueryShift
	// BlackoutStart blocks every directed link into or out of the node
	// stripe [Src, Dst] — a regional blackout. BlackoutEnd lifts it.
	// Windows over the same stripe must not overlap.
	BlackoutStart
	// BlackoutEnd ends the blackout over [Src, Dst].
	BlackoutEnd
	// PartitionStart blocks every directed link between {id < Node} and
	// {id >= Node} — a clean network partition at the boundary.
	// PartitionEnd heals it. Cut windows must not overlap.
	PartitionStart
	// PartitionEnd heals the partition at boundary Node.
	PartitionEnd
	// BurstStart begins a correlated burst-loss window: every link's
	// delivery probability is multiplied by (1 - Value) until BurstEnd.
	// Burst windows must not overlap.
	BurstStart
	// BurstEnd ends the burst-loss window.
	BurstEnd
	// BaseRestart reboots the basestation process: node 0 loses its RAM
	// (pending query state, send queue) and recovers from its durable
	// query log. Distinct from NodeDown/NodeUp, which must never target
	// the base.
	BaseRestart
)

// String returns the kind's report name (also the metrics mark label).
func (k Kind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	case NetLoss:
		return "net-loss"
	case LinkLoss:
		return "link-loss"
	case DataShift:
		return "data-shift"
	case QueryShift:
		return "query-shift"
	case BlackoutStart:
		return "blackout-start"
	case BlackoutEnd:
		return "blackout-end"
	case PartitionStart:
		return "partition-start"
	case PartitionEnd:
		return "partition-end"
	case BurstStart:
		return "burst-start"
	case BurstEnd:
		return "burst-end"
	case BaseRestart:
		return "base-restart"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled perturbation. Which fields matter depends on
// Kind; the rest stay zero.
type Event struct {
	At       netsim.Time
	Kind     Kind
	Node     netsim.NodeID // NodeDown, NodeUp
	Src, Dst netsim.NodeID // LinkLoss
	Value    float64       // NetLoss, LinkLoss, DataShift, QueryShift
}

// Script is a timeline of perturbations. The zero value is an empty,
// valid script. Events need not be pre-sorted; Attach orders them.
type Script struct {
	Events []Event
}

// Empty reports whether the script schedules nothing.
func (s *Script) Empty() bool { return s == nil || len(s.Events) == 0 }

// HasData reports whether the script contains data-distribution
// shifts (the harness then wraps the source in a workload.Drift).
func (s *Script) HasData() bool { return s.has(DataShift) }

// HasQuery reports whether the script contains query hot-range
// migrations.
func (s *Script) HasQuery() bool { return s.has(QueryShift) }

// HasChurn reports whether the script kills or revives nodes.
func (s *Script) HasChurn() bool { return s.has(NodeDown) || s.has(NodeUp) }

func (s *Script) has(k Kind) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// Append merges other's events into s (order is irrelevant; Attach
// sorts). It returns s for chaining.
func (s *Script) Append(other Script) *Script {
	s.Events = append(s.Events, other.Events...)
	return s
}

// Validate checks every event against a run of n nodes (including the
// basestation, node 0) lasting duration. The basestation must never
// die: the paper's protocol has a single, well-provisioned root.
func (s *Script) Validate(n int, duration netsim.Time) error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if e.At < 0 || e.At > duration {
			return fmt.Errorf("dynamics: event %d (%s) at %v outside run [0,%v]", i, e.Kind, e.At, duration)
		}
		switch e.Kind {
		case NodeDown, NodeUp:
			if e.Node <= 0 || int(e.Node) >= n {
				return fmt.Errorf("dynamics: event %d (%s) targets node %d; must be a non-base node in [1,%d)", i, e.Kind, e.Node, n)
			}
		case NetLoss:
			if e.Value < 0 || e.Value >= 1 {
				return fmt.Errorf("dynamics: event %d net-loss %v outside [0,1)", i, e.Value)
			}
		case LinkLoss:
			if e.Value < 0 || e.Value >= 1 {
				return fmt.Errorf("dynamics: event %d link-loss %v outside [0,1)", i, e.Value)
			}
			if int(e.Src) >= n || int(e.Dst) >= n || e.Src == e.Dst {
				return fmt.Errorf("dynamics: event %d link-loss on invalid link %d->%d", i, e.Src, e.Dst)
			}
		case DataShift:
			if e.Value < -1 || e.Value > 1 {
				return fmt.Errorf("dynamics: event %d data-shift %v outside [-1,1]", i, e.Value)
			}
		case QueryShift:
			if e.Value < 0 || e.Value > 1 {
				return fmt.Errorf("dynamics: event %d query-shift %v outside [0,1]", i, e.Value)
			}
		case BlackoutStart, BlackoutEnd:
			if e.Src < 1 || e.Src > e.Dst || int(e.Dst) >= n {
				return fmt.Errorf("dynamics: event %d (%s) stripe [%d,%d] not within the non-base nodes [1,%d)", i, e.Kind, e.Src, e.Dst, n)
			}
		case PartitionStart, PartitionEnd:
			if e.Node < 1 || int(e.Node) >= n {
				return fmt.Errorf("dynamics: event %d (%s) boundary %d outside [1,%d)", i, e.Kind, e.Node, n)
			}
		case BurstStart:
			if e.Value <= 0 || e.Value >= 1 {
				return fmt.Errorf("dynamics: event %d burst-start loss %v outside (0,1)", i, e.Value)
			}
		case BurstEnd, BaseRestart:
			// No parameters beyond the timestamp.
		default:
			return fmt.Errorf("dynamics: event %d has unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// DataShifter is a workload source whose distribution can be walked
// across the domain mid-run (workload.Drift implements it).
type DataShifter interface {
	SetShift(frac float64)
}

// QueryShifter is a query generator whose hot range can migrate
// (workload.RangeGen implements it).
type QueryShifter interface {
	SetHotCenter(frac float64)
}

// Targets binds a script to one trial's mutable pieces. Net is
// required; the rest are optional — events without a matching target
// are silently skipped (a churn-only run needs no DataShifter).
type Targets struct {
	Net *netsim.Network
	// LossBase is the run's standing network-wide link scale (1 minus
	// the configured base link loss); NetLoss events compose with it.
	// 0 is treated as 1 (no standing degradation).
	LossBase float64
	Data     DataShifter
	Query    QueryShifter
	// Observer, when non-nil, is called as each event is applied —
	// the hook the experiment harness uses to mark perturbations on
	// its transition-metrics timeline.
	Observer func(Event)
	// Trace, when non-nil, receives a Perturb event for every applied
	// loss or drift perturbation (Flag: the Kind, Value: the knob
	// scaled by 1e6). Churn is not re-emitted here: netsim's
	// Kill/Restart already record NodeDown/NodeRestart.
	Trace *trace.Recorder
}

// Attach schedules every event onto sim. Events are applied in (time,
// script order); ties at the same instant keep their relative order.
// Call after Network.Start and before Simulator.Run.
func (s *Script) Attach(sim *netsim.Simulator, t Targets) {
	if s.Empty() {
		return
	}
	if t.Net == nil {
		panic("dynamics: Attach with nil Targets.Net")
	}
	base := t.LossBase
	if base <= 0 {
		base = 1
	}
	evs := make([]Event, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, e := range evs {
		e := e
		sim.At(e.At, func() {
			if !apply(e, t, base) {
				return
			}
			if e.Kind != NodeDown && e.Kind != NodeUp && e.Kind != BaseRestart {
				t.Trace.Emit(trace.Event{Kind: trace.Perturb, Node: uint16(e.Src),
					Flag: uint8(e.Kind), Value: int64(e.Value * 1e6)})
			}
			if t.Observer != nil {
				t.Observer(e)
			}
		})
	}
}

// apply executes one event, reporting whether it had a target.
func apply(e Event, t Targets, lossBase float64) bool {
	switch e.Kind {
	case NodeDown:
		t.Net.Kill(e.Node)
	case NodeUp:
		t.Net.Restart(e.Node)
	case NetLoss:
		t.Net.ScaleAllLinks(lossBase * (1 - e.Value))
	case LinkLoss:
		t.Net.ScaleLink(e.Src, e.Dst, lossBase*(1-e.Value))
	case DataShift:
		if t.Data == nil {
			return false
		}
		t.Data.SetShift(e.Value)
	case QueryShift:
		if t.Query == nil {
			return false
		}
		t.Query.SetHotCenter(e.Value)
	case BlackoutStart:
		t.Net.SetBlackout(e.Src, e.Dst, true)
	case BlackoutEnd:
		t.Net.SetBlackout(e.Src, e.Dst, false)
	case PartitionStart:
		t.Net.SetPartition(e.Node, true)
	case PartitionEnd:
		t.Net.SetPartition(e.Node, false)
	case BurstStart:
		t.Net.SetBurst(e.Value)
	case BurstEnd:
		t.Net.SetBurst(0)
	case BaseRestart:
		// Restart re-runs the base app's Init: RAM state (pending
		// queries, send queue) is lost; durable state (records, query
		// log) survives and drives recovery. netsim emits the
		// NodeRestart/PacketPurge trace events itself.
		t.Net.Restart(0)
	}
	return true
}

// Churn builds a membership-churn timeline for an n-node network:
// every `every` from start to stop, frac of the n-1 non-base nodes
// (at least one) go down, each rebooting after downFor. Victims are
// drawn deterministically from seed; a node already down is never
// re-picked, so down/up pairs nest cleanly.
func Churn(n int, start, stop, every, downFor netsim.Time, frac float64, seed int64) Script {
	if n < 2 || frac <= 0 || every <= 0 || downFor <= 0 || stop < start {
		return Script{}
	}
	k := int(frac*float64(n-1) + 0.5)
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	upAt := make(map[netsim.NodeID]netsim.Time)
	var s Script
	for t := start; t <= stop; t += every {
		var candidates []netsim.NodeID
		for id := 1; id < n; id++ {
			if upAt[netsim.NodeID(id)] <= t {
				candidates = append(candidates, netsim.NodeID(id))
			}
		}
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		kk := k
		if kk > len(candidates) {
			kk = len(candidates)
		}
		for _, id := range candidates[:kk] {
			s.Events = append(s.Events,
				Event{At: t, Kind: NodeDown, Node: id},
				Event{At: t + downFor, Kind: NodeUp, Node: id})
			upAt[id] = t + downFor
		}
	}
	return s
}

// DataDrift builds a data-distribution ramp: the shift offset walks
// from 0 to total (a fraction of the domain) in `steps` equal
// increments between start and stop. steps==1 is an abrupt shift at
// stop.
func DataDrift(start, stop netsim.Time, steps int, total float64) Script {
	return ramp(DataShift, start, stop, steps, 0, total)
}

// QueryDrift builds a query hot-range migration from the `from`
// center to the `to` center (fractions of the domain) in `steps`
// moves between start and stop. The first event also switches the
// generator from uniform placement to hot-range placement.
func QueryDrift(start, stop netsim.Time, steps int, from, to float64) Script {
	return ramp(QueryShift, start, stop, steps, from, to)
}

func ramp(k Kind, start, stop netsim.Time, steps int, from, to float64) Script {
	if steps < 1 {
		steps = 1
	}
	if stop < start {
		stop = start
	}
	var s Script
	for i := 1; i <= steps; i++ {
		at := start + netsim.Time(int64(stop-start)*int64(i)/int64(steps))
		v := from + (to-from)*float64(i)/float64(steps)
		s.Events = append(s.Events, Event{At: at, Kind: k, Value: v})
	}
	return s
}

// LossRamp builds a network-wide interference ramp from loss fraction
// `from` to `to` in `steps` increments between start and stop, then
// restores the base loss at clearAt (clearAt <= stop disables the
// restore).
func LossRamp(start, stop netsim.Time, steps int, from, to float64, clearAt netsim.Time) Script {
	s := ramp(NetLoss, start, stop, steps, from, to)
	if clearAt > stop {
		s.Events = append(s.Events, Event{At: clearAt, Kind: NetLoss, Value: 0})
	}
	return s
}

// Standard is the sweep engine's canonical perturbation script for a
// run of the given shape: churn cycles an eighth into the active
// period through an eighth before the end (90 s cadence, 45 s
// downtime, churnFrac of the nodes per cycle), and the data
// distribution ramps by driftFrac of the domain across the middle
// quarter of the active period in four steps. Either knob at 0
// disables that perturbation.
func Standard(n int, warmup, duration netsim.Time, churnFrac, driftFrac float64, seed int64) Script {
	active := duration - warmup
	var s Script
	if churnFrac > 0 && active > 0 {
		const every, down = 90 * netsim.Second, 45 * netsim.Second
		start := warmup + active/8
		stop := duration - active/8
		// Reboots happen `down` after each kill; keep the last round
		// early enough that every NodeUp lands inside the run.
		if latest := duration - down; stop > latest {
			stop = latest
		}
		s.Append(Churn(n, start, stop, every, down, churnFrac, seed))
	}
	if driftFrac != 0 && active > 0 {
		start := warmup + active*3/8
		stop := warmup + active*5/8
		s.Append(DataDrift(start, stop, 4, driftFrac))
	}
	return s
}
