package dynamics

import (
	"reflect"
	"testing"

	"scoop/internal/metrics"
	"scoop/internal/netsim"
)

// bootApp counts Init calls so restarts are observable.
type bootApp struct{ inits int }

func (a *bootApp) Init(*netsim.NodeAPI)   { a.inits++ }
func (a *bootApp) Receive(*netsim.Packet) {}
func (a *bootApp) Snoop(*netsim.Packet)   {}
func (a *bootApp) Timer(int)              {}

// shifter records the sequence of shift values it was set to.
type shifter struct{ got []float64 }

func (s *shifter) SetShift(f float64)     { s.got = append(s.got, f) }
func (s *shifter) SetHotCenter(f float64) { s.got = append(s.got, f) }

func testNetwork(n int) (*netsim.Simulator, *netsim.Network, []*bootApp) {
	topo := netsim.NewTopology(n)
	topo.Pos = make([]netsim.Point, n)
	sim := netsim.NewSimulator(1)
	net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
	apps := make([]*bootApp, n)
	for i := range apps {
		apps[i] = &bootApp{}
		net.Attach(netsim.NodeID(i), apps[i])
	}
	net.Start()
	return sim, net, apps
}

func TestAttachAppliesEventsInOrder(t *testing.T) {
	sim, net, apps := testNetwork(3)
	data, query := &shifter{}, &shifter{}
	var marks []string
	s := Script{Events: []Event{
		{At: 3 * netsim.Second, Kind: NodeUp, Node: 2},
		{At: netsim.Second, Kind: NodeDown, Node: 2},
		{At: 2 * netsim.Second, Kind: DataShift, Value: 0.25},
		{At: 2 * netsim.Second, Kind: QueryShift, Value: 0.75},
	}}
	s.Attach(sim, Targets{Net: net, Data: data, Query: query,
		Observer: func(e Event) { marks = append(marks, e.Kind.String()) }})

	sim.Run(1500 * netsim.Millisecond)
	if !net.Dead(2) {
		t.Fatal("node 2 should be dead after the down event")
	}
	sim.Run(4 * netsim.Second)
	if net.Dead(2) {
		t.Fatal("node 2 should be restarted")
	}
	if apps[2].inits != 2 {
		t.Fatalf("node 2 inits = %d, want 2 (start + restart)", apps[2].inits)
	}
	if !reflect.DeepEqual(data.got, []float64{0.25}) {
		t.Fatalf("data shifts = %v", data.got)
	}
	if !reflect.DeepEqual(query.got, []float64{0.75}) {
		t.Fatalf("query shifts = %v", query.got)
	}
	want := []string{"node-down", "data-shift", "query-shift", "node-up"}
	if !reflect.DeepEqual(marks, want) {
		t.Fatalf("marks = %v, want %v", marks, want)
	}
}

func TestAttachSkipsEventsWithoutTargets(t *testing.T) {
	sim, net, _ := testNetwork(2)
	var marks []string
	s := Script{Events: []Event{{At: netsim.Second, Kind: DataShift, Value: 0.5}}}
	s.Attach(sim, Targets{Net: net,
		Observer: func(e Event) { marks = append(marks, e.Kind.String()) }})
	sim.Run(2 * netsim.Second)
	if len(marks) != 0 {
		t.Fatalf("unapplied events must not be marked, got %v", marks)
	}
}

func TestNetLossComposesWithBase(t *testing.T) {
	sim, net, _ := testNetwork(2)
	s := Script{Events: []Event{
		{At: netsim.Second, Kind: NetLoss, Value: 0.5},
		{At: 2 * netsim.Second, Kind: NetLoss, Value: 0},
	}}
	s.Attach(sim, Targets{Net: net, LossBase: 0.8})
	sim.Run(1500 * netsim.Millisecond)
	// No direct accessor for link scale; rely on Validate + no panic,
	// and check the restore event runs.
	sim.Run(3 * netsim.Second)
}

func TestChurnPairsAndBounds(t *testing.T) {
	s := Churn(10, netsim.Minute, 5*netsim.Minute, netsim.Minute, 30*netsim.Second, 0.2, 42)
	if len(s.Events) == 0 || len(s.Events)%2 != 0 {
		t.Fatalf("churn events = %d, want a positive even count", len(s.Events))
	}
	down := make(map[netsim.NodeID]netsim.Time)
	for _, e := range s.Events {
		if e.Node <= 0 || e.Node >= 10 {
			t.Fatalf("churn touched node %d", e.Node)
		}
		switch e.Kind {
		case NodeDown:
			if up, ok := down[e.Node]; ok && up > e.At {
				t.Fatalf("node %d re-killed at %v while still down until %v", e.Node, e.At, up)
			}
			down[e.Node] = e.At + 30*netsim.Second
		case NodeUp:
			if want := down[e.Node]; want != e.At {
				t.Fatalf("node %d up at %v, want %v", e.Node, e.At, want)
			}
		default:
			t.Fatalf("unexpected kind %v", e.Kind)
		}
	}
	// Deterministic for a seed; different for another.
	again := Churn(10, netsim.Minute, 5*netsim.Minute, netsim.Minute, 30*netsim.Second, 0.2, 42)
	if !reflect.DeepEqual(s, again) {
		t.Fatal("churn script not deterministic for a fixed seed")
	}
	other := Churn(10, netsim.Minute, 5*netsim.Minute, netsim.Minute, 30*netsim.Second, 0.2, 43)
	if reflect.DeepEqual(s, other) {
		t.Fatal("churn script identical across seeds")
	}
}

func TestDataDriftRamp(t *testing.T) {
	s := DataDrift(10*netsim.Minute, 14*netsim.Minute, 4, 0.4)
	if len(s.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(s.Events))
	}
	last := s.Events[3]
	if last.At != 14*netsim.Minute || last.Value != 0.4 {
		t.Fatalf("final step = %+v", last)
	}
	for i, e := range s.Events {
		if e.Kind != DataShift {
			t.Fatalf("event %d kind = %v", i, e.Kind)
		}
		if i > 0 && e.Value <= s.Events[i-1].Value {
			t.Fatalf("ramp not increasing at %d", i)
		}
	}
	// steps=1 collapses to one abrupt shift.
	one := DataDrift(10*netsim.Minute, 10*netsim.Minute, 1, 0.4)
	if len(one.Events) != 1 || one.Events[0].Value != 0.4 {
		t.Fatalf("abrupt shift = %+v", one.Events)
	}
}

func TestValidate(t *testing.T) {
	dur := 10 * netsim.Minute
	cases := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"good-down", Event{At: netsim.Minute, Kind: NodeDown, Node: 3}, true},
		{"base-kill", Event{At: netsim.Minute, Kind: NodeDown, Node: 0}, false},
		{"node-oob", Event{At: netsim.Minute, Kind: NodeUp, Node: 9}, false},
		{"late", Event{At: dur + 1, Kind: NodeDown, Node: 1}, false},
		{"negative-time", Event{At: -1, Kind: NodeDown, Node: 1}, false},
		{"loss-oob", Event{At: 0, Kind: NetLoss, Value: 1}, false},
		{"link-self", Event{At: 0, Kind: LinkLoss, Src: 2, Dst: 2, Value: 0.1}, false},
		{"shift-oob", Event{At: 0, Kind: DataShift, Value: 1.5}, false},
		{"query-oob", Event{At: 0, Kind: QueryShift, Value: -0.1}, false},
		{"good-query", Event{At: 0, Kind: QueryShift, Value: 0.9}, true},
	}
	for _, c := range cases {
		s := Script{Events: []Event{c.ev}}
		err := s.Validate(9, dur)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}
	var nilScript *Script
	if err := nilScript.Validate(9, dur); err != nil {
		t.Fatalf("nil script must validate: %v", err)
	}
	if !nilScript.Empty() || nilScript.HasData() || nilScript.HasChurn() {
		t.Fatal("nil script predicates must be false")
	}
}

func TestStandardScript(t *testing.T) {
	s := Standard(20, 5*netsim.Minute, 25*netsim.Minute, 0.1, 0.4, 7)
	if !s.HasChurn() || !s.HasData() {
		t.Fatal("standard script with both knobs must churn and drift")
	}
	if err := s.Validate(20, 25*netsim.Minute); err != nil {
		t.Fatalf("standard script invalid: %v", err)
	}
	if s := Standard(20, 5*netsim.Minute, 25*netsim.Minute, 0, 0, 7); !s.Empty() {
		t.Fatal("zero knobs must yield an empty script")
	}
	// Short runs: every generated reboot must still land inside the
	// run (the last churn round is pulled forward if needed).
	for _, dur := range []netsim.Time{5 * netsim.Minute, 3 * netsim.Minute, 90 * netsim.Second} {
		s := Standard(16, netsim.Minute, dur, 0.15, 0, 9)
		if err := s.Validate(16, dur); err != nil {
			t.Fatalf("standard script for %v run invalid: %v", dur, err)
		}
	}
}
