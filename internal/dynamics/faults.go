package dynamics

import (
	"fmt"
	"math/rand"

	"scoop/internal/netsim"
)

// This file builds the scripted fault primitives behind the query
// reliability campaign (DESIGN.md §19): regional blackouts, network
// partitions, correlated burst loss and basestation restarts. Like
// every other script builder they are pure functions of their
// parameters plus a seed, so a fault run is exactly reproducible and
// byte-identical across region counts — all fault events are
// control-plane (applied at barriers), never mid-window.

// Blackout scripts one regional blackout: every link into or out of
// the node stripe [lo, hi] is blocked from start to end.
func Blackout(lo, hi netsim.NodeID, start, end netsim.Time) Script {
	return Script{Events: []Event{
		{At: start, Kind: BlackoutStart, Src: lo, Dst: hi},
		{At: end, Kind: BlackoutEnd, Src: lo, Dst: hi},
	}}
}

// Partition scripts one network partition at the given node-ID
// boundary from start to end: no frame crosses between {id < boundary}
// and {id >= boundary} while the cut is active.
func Partition(boundary netsim.NodeID, start, end netsim.Time) Script {
	return Script{Events: []Event{
		{At: start, Kind: PartitionStart, Node: boundary},
		{At: end, Kind: PartitionEnd, Node: boundary},
	}}
}

// Bursts scripts periodic correlated burst-loss windows: every `every`
// from start to stop, all links lose an extra `loss` fraction for
// `width`. Windows never overlap (width is clamped below every).
func Bursts(start, stop, every, width netsim.Time, loss float64) Script {
	if every <= 0 || width <= 0 || loss <= 0 {
		return Script{}
	}
	if width >= every {
		width = every - netsim.Second
		if width <= 0 {
			return Script{}
		}
	}
	var s Script
	for t := start; t+width <= stop; t += every {
		s.Events = append(s.Events,
			Event{At: t, Kind: BurstStart, Value: loss},
			Event{At: t + width, Kind: BurstEnd})
	}
	return s
}

// BaseRestartAt scripts one basestation restart: at t the base loses
// its RAM (pending query state) and recovers from its durable query
// log.
func BaseRestartAt(t netsim.Time) Script {
	return Script{Events: []Event{{At: t, Kind: BaseRestart}}}
}

// FaultScenarios lists the named scenarios FaultScenario resolves, in
// campaign order.
func FaultScenarios() []string {
	return []string{"blackout", "partition", "burst", "baserestart", "campaign"}
}

// FaultScenario resolves a named fault scenario into a script shaped
// for a run of n nodes with the given warmup and duration. Window
// starts are jittered by up to 15 s from the seed so a multi-seed
// campaign does not always hit the protocol at the same phase; the
// script remains a pure function of (name, n, warmup, duration, seed).
func FaultScenario(name string, n int, warmup, duration netsim.Time, seed int64) (Script, error) {
	active := duration - warmup
	if n < 4 || active <= 0 {
		return Script{}, fmt.Errorf("dynamics: fault scenario %q needs n >= 4 and duration > warmup", name)
	}
	rng := rand.New(rand.NewSource(seed))
	jitter := func() netsim.Time { return netsim.Time(rng.Int63n(int64(15 * netsim.Second))) }

	// The blackout stripe is the second quarter of the non-base IDs;
	// the partition boundary splits the ID space in half.
	lo := netsim.NodeID(1 + (n-1)/4)
	hi := netsim.NodeID(1 + (n-1)/2)
	if int(hi) >= n {
		hi = netsim.NodeID(n - 1)
	}
	boundary := netsim.NodeID(n / 2)
	if boundary < 1 {
		boundary = 1
	}

	blackout := func() Script {
		start := warmup + active/4 + jitter()
		return Blackout(lo, hi, start, start+active/4)
	}
	partition := func() Script {
		start := warmup + active*3/8 + jitter()
		return Partition(boundary, start, start+active/4)
	}
	burst := func() Script {
		start := warmup + active/8 + jitter()
		return Bursts(start, warmup+active*7/8, 60*netsim.Second, 10*netsim.Second, 0.6)
	}
	baserestart := func() Script {
		return BaseRestartAt(warmup + active/2 + jitter())
	}

	var s Script
	switch name {
	case "blackout":
		s = blackout()
	case "partition":
		s = partition()
	case "burst":
		s = burst()
	case "baserestart":
		s = baserestart()
	case "campaign":
		// Everything at once, staggered so same-primitive windows never
		// overlap: bursts run through the active period while the
		// blackout, partition and a base restart land mid-run.
		s.Append(burst())
		s.Append(blackout())
		s.Append(partition())
		s.Append(baserestart())
	default:
		return Script{}, fmt.Errorf("dynamics: unknown fault scenario %q (want one of %v)", name, FaultScenarios())
	}
	if err := s.Validate(n, duration); err != nil {
		return Script{}, err
	}
	return s, nil
}
