// Package prof is the simulator's wall-clock attribution profiler: it
// answers "where does the wall time of a run actually go" with a
// per-phase breakdown of the netsim event loop, the instrument
// ROADMAP item 1 (the parallel event engine) needs before any
// optimisation claim is checkable.
//
// Attribution model: while a profiled Simulator.Run is executing,
// every instant belongs to exactly one Phase. The event loop opens
// each popped event with BeginEvent (attributing the pop/dispatch gap
// to PhaseHeap and the event body to the phase recorded at schedule
// time), and instrumented inner spans — reindex inside a timer event,
// the planner inside a harness closure, trace emission anywhere —
// re-attribute nested work with Enter/Exit. Phase wall times therefore
// sum to the loop wall time by construction: coverage is structural,
// not sampled. BeginEvent also feeds the heap-shape histograms: queue
// depth at pop and sim-time dwell (scheduled→fired lag) per phase.
//
// Quarantine contract (DESIGN.md §17): this package is the only
// simulation-adjacent code allowed to read the wall clock (scooplint's
// walltime allowlist names it explicitly, next to perfbench and
// sweep). Wall time flows out of it exclusively through Snapshot —
// into the operator-facing BENCH_profile.json artifact — and never
// into simulation behaviour or committed sweep artifacts: a profiled
// run is byte-identical to an unprofiled one.
//
// Cost contract: a nil *Profiler is valid and means "profiling off".
// Every method nil-checks and returns immediately — zero allocations,
// one predictable branch — so instrumentation sites stay in the hot
// path unconditionally (the trace.Recorder pattern, gated by the
// prof/emit/* entries in BENCH_scale.json).
package prof

import (
	"time"

	"scoop/internal/histogram"
)

// Phase identifies one attribution bucket of the event loop.
type Phase uint8

// The phase taxonomy. PhaseHeap is the zero value on purpose: an
// event scheduled without an explicit phase, and the loop's own
// pop/dispatch bookkeeping, both land in it rather than in a protocol
// bucket.
const (
	// PhaseHeap is event-loop bookkeeping: heap pop/sift, dispatch,
	// and any instant not claimed by another phase.
	PhaseHeap Phase = iota
	// PhaseRadio is radio delivery fan-out: end-of-airtime delivery
	// tasks handing frames to Receive/Snoop callbacks.
	PhaseRadio
	// PhaseMAC is MAC attempt steps (backoff, carrier sense, retry)
	// and protocol timer dispatch.
	PhaseMAC
	// PhaseNodeRecv is node-side packet handling.
	PhaseNodeRecv
	// PhaseBaseRecv is basestation-side packet handling.
	PhaseBaseRecv
	// PhaseReindex is basestation index recomputation (core.Base.Remap).
	PhaseReindex
	// PhasePlanner is aggregate-query planning (statistics snapshots,
	// estimates, query.Choose).
	PhasePlanner
	// PhaseAggCombine is in-network aggregation: partial merging,
	// flushing and base-side folding.
	PhaseAggCombine
	// PhaseChunk is mapping-chunk dissemination (Trickle sends and
	// node-side chunk assembly).
	PhaseChunk
	// PhaseTraceEmit is flight-recorder emission and sink fan-out.
	PhaseTraceEmit
	// PhaseHarness is experiment-harness closures scheduled through
	// the public At/After API: query ticks, dynamics events, window
	// sampling.
	PhaseHarness

	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseHeap:       "heap",
	PhaseRadio:      "radio",
	PhaseMAC:        "mac-timer",
	PhaseNodeRecv:   "node-recv",
	PhaseBaseRecv:   "base-recv",
	PhaseReindex:    "reindex",
	PhasePlanner:    "planner",
	PhaseAggCombine: "agg-combine",
	PhaseChunk:      "chunk",
	PhaseTraceEmit:  "trace-emit",
	PhaseHarness:    "harness",
}

// String returns the phase's wire name (stable: part of the
// BENCH_profile.json schema).
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "invalid"
}

// ParsePhase maps a wire name back to its Phase.
func ParsePhase(s string) (Phase, bool) {
	for p := Phase(0); p < NumPhases; p++ {
		if phaseNames[p] == s {
			return p, true
		}
	}
	return 0, false
}

// Profiler accumulates wall-clock attribution for one simulation run.
// It belongs to the run's single event-loop goroutine (not safe for
// concurrent use). The nil Profiler is the disabled state: every
// method returns immediately.
type Profiler struct {
	wall  [NumPhases]int64          // attributed wall ns per phase
	count [NumPhases]int64          // attributed spans per phase
	max   [NumPhases]int64          // longest single attributed span, ns
	dwell [NumPhases]histogram.Log2 // scheduled→fired lag per event phase, virtual ms
	depth histogram.Log2            // heap depth at pop (popped event included)

	loopNs  int64 // wall ns between LoopBegin and LoopEnd, summed
	events  int64 // events popped under profiling
	base    time.Time
	mark    int64 // nanotime of the last attribution boundary
	loopAt  int64 // nanotime of the current LoopBegin
	cur     Phase
	running bool
}

// New returns an enabled profiler.
func New() *Profiler {
	return &Profiler{base: time.Now()}
}

// nanotime returns monotonic ns since the profiler was created.
// time.Since reads the runtime's monotonic clock; no allocation.
func (p *Profiler) nanotime() int64 { return int64(time.Since(p.base)) }

// flush attributes the wall time since the last boundary to the
// current phase and advances the boundary.
func (p *Profiler) flush(now int64) {
	d := now - p.mark
	p.wall[p.cur] += d
	if d > p.max[p.cur] {
		p.max[p.cur] = d
	}
	p.mark = now
}

// LoopBegin marks the start of a profiled event-loop section. The
// section opens in PhaseHeap.
func (p *Profiler) LoopBegin() {
	if p == nil || p.running {
		return
	}
	p.running = true
	p.cur = PhaseHeap
	now := p.nanotime()
	p.mark = now
	p.loopAt = now
}

// LoopEnd closes the profiled section, flushing the tail into the
// current phase and accumulating the section's total wall time.
func (p *Profiler) LoopEnd() {
	if p == nil || !p.running {
		return
	}
	now := p.nanotime()
	p.flush(now)
	p.loopNs += now - p.loopAt
	p.running = false
}

// BeginEvent opens one popped heap event: the time since the previous
// boundary goes to PhaseHeap (or whatever phase was current), the
// event body will accrue to ph, and the heap-shape histograms record
// the queue depth at pop and the event's sim-time dwell in virtual ms.
func (p *Profiler) BeginEvent(ph Phase, depth int, dwellMS int64) {
	if p == nil || !p.running {
		return
	}
	p.flush(p.nanotime())
	p.cur = ph
	p.count[ph]++
	p.events++
	p.depth.Record(int64(depth))
	p.dwell[ph].Record(dwellMS)
}

// EndEvent closes the current event, returning attribution to
// PhaseHeap for the next pop.
func (p *Profiler) EndEvent() {
	if p == nil || !p.running {
		return
	}
	p.flush(p.nanotime())
	p.cur = PhaseHeap
}

// Enter re-attributes a nested span to ph (reindex inside a timer
// event, trace emission inside anything) and returns the phase to
// restore with Exit. Instrumentation sites call it unconditionally;
// on a nil or idle profiler it is a branch and nothing else.
func (p *Profiler) Enter(ph Phase) Phase {
	if p == nil || !p.running {
		return PhaseHeap
	}
	prev := p.cur
	p.flush(p.nanotime())
	p.cur = ph
	p.count[ph]++
	return prev
}

// Exit closes an Enter span, restoring the surrounding phase.
func (p *Profiler) Exit(prev Phase) {
	if p == nil || !p.running {
		return
	}
	p.flush(p.nanotime())
	p.cur = prev
}

// Snapshot is the Profiler's accumulated state, copied out for
// reporting. Plain data: safe to hand across goroutines.
type Snapshot struct {
	LoopNs int64 // total profiled loop wall time, ns
	Events int64 // heap events popped under profiling
	Wall   [NumPhases]int64
	Count  [NumPhases]int64
	Max    [NumPhases]int64
	Dwell  [NumPhases]histogram.Log2
	Depth  histogram.Log2
}

// Snapshot copies the accumulated attribution out of the profiler.
// Valid any time the loop is not mid-event (exp takes it after Run).
func (p *Profiler) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	return Snapshot{
		LoopNs: p.loopNs,
		Events: p.events,
		Wall:   p.wall,
		Count:  p.count,
		Max:    p.max,
		Dwell:  p.dwell,
		Depth:  p.depth,
	}
}

// Merge folds another snapshot into s: wall, counts, event totals and
// histograms sum; per-phase maxima take the max. Region-parallel runs
// merge every region's profiler (and the control plane's) into the one
// attribution artifact the serial engine would have produced — wall
// totals then reflect aggregate CPU time across worker goroutines, not
// elapsed wall-clock time.
func (s *Snapshot) Merge(o Snapshot) {
	s.LoopNs += o.LoopNs
	s.Events += o.Events
	for p := 0; p < int(NumPhases); p++ {
		s.Wall[p] += o.Wall[p]
		s.Count[p] += o.Count[p]
		if o.Max[p] > s.Max[p] {
			s.Max[p] = o.Max[p]
		}
		s.Dwell[p].Merge(o.Dwell[p])
	}
	s.Depth.Merge(o.Depth)
}

// AttributedNs returns the summed per-phase wall time. By
// construction it equals LoopNs up to clock granularity.
func (s *Snapshot) AttributedNs() int64 {
	var t int64
	for _, w := range s.Wall {
		t += w
	}
	return t
}

// Coverage returns the fraction of loop wall time attributed to named
// phases (1.0 structurally; the artifact records it as evidence).
func (s *Snapshot) Coverage() float64 {
	if s.LoopNs == 0 {
		return 0
	}
	return float64(s.AttributedNs()) / float64(s.LoopNs)
}

// TopPhases returns every phase with attributed time, heaviest first
// (ties broken by phase order for determinism).
func (s *Snapshot) TopPhases() []Phase {
	var out []Phase
	for p := Phase(0); p < NumPhases; p++ {
		if s.Wall[p] > 0 || s.Count[p] > 0 {
			out = append(out, p)
		}
	}
	// Insertion sort by wall desc: NumPhases is tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && s.Wall[out[j]] > s.Wall[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
