package prof

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleProfile(n int, wall map[string]int64) Profile {
	p := Profile{N: n, VirtualS: 600, Events: 1000, Coverage: 1.0,
		DepthP50: 8, DepthP99: 32, DepthMax: 64}
	var total int64
	for _, w := range wall {
		total += w
	}
	p.LoopNs = total
	for _, ph := range []string{"radio", "mac-timer", "heap"} {
		w, ok := wall[ph]
		if !ok {
			continue
		}
		p.Phases = append(p.Phases, PhaseResult{
			Phase: ph, WallNs: w, Share: float64(w) / float64(total), Events: 100,
		})
	}
	return p
}

func TestArtifactRoundTripAndValidate(t *testing.T) {
	a := Artifact{Profiles: []Profile{
		sampleProfile(65, map[string]int64{"radio": 600, "mac-timer": 300, "heap": 100}),
	}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.json")
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Profiles) != 1 || got.Profiles[0].N != 65 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Artifact)
		want string
	}{
		{"empty", func(a *Artifact) { a.Profiles = nil }, "no profiles"},
		{"badPhase", func(a *Artifact) { a.Profiles[0].Phases[0].Phase = "warp" }, "unknown phase"},
		{"lowCoverage", func(a *Artifact) { a.Profiles[0].Coverage = 0.5 }, "coverage"},
		{"badShare", func(a *Artifact) { a.Profiles[0].Phases[0].Share = 9 }, "shares sum"},
		{"noEvents", func(a *Artifact) { a.Profiles[0].Events = 0 }, "no profiled events"},
	}
	for _, tc := range cases {
		a := Artifact{Profiles: []Profile{
			sampleProfile(65, map[string]int64{"radio": 600, "mac-timer": 300, "heap": 100}),
		}}
		tc.mut(&a)
		err := a.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: Validate = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	old := Artifact{Profiles: []Profile{
		sampleProfile(65, map[string]int64{"radio": 1000, "mac-timer": 1000, "heap": 100}),
	}}
	// Radio regressed 50%, mac improved: only radio (and the loop,
	// which grew 24%) may fire at a 10% threshold.
	fresh := Artifact{Profiles: []Profile{
		sampleProfile(65, map[string]int64{"radio": 1500, "mac-timer": 1000, "heap": 100}),
	}}
	v := Diff(old, fresh, 10)
	if len(v) != 2 {
		t.Fatalf("violations = %q, want loop + radio", v)
	}
	joined := strings.Join(v, "\n")
	if !strings.Contains(joined, "phase radio") || !strings.Contains(joined, "loop") {
		t.Fatalf("violations = %q", v)
	}
	if err := DiffError(v); err == nil {
		t.Fatal("DiffError = nil on regressions")
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	old := Artifact{Profiles: []Profile{
		sampleProfile(65, map[string]int64{"radio": 1000, "mac-timer": 1000, "heap": 100}),
	}}
	fresh := Artifact{Profiles: []Profile{
		sampleProfile(65, map[string]int64{"radio": 1050, "mac-timer": 990, "heap": 105}),
	}}
	if v := Diff(old, fresh, 10); len(v) != 0 {
		t.Fatalf("violations = %q, want none", v)
	}
	if err := DiffError(nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiffIgnoresTinyPhasesAndNewSizes(t *testing.T) {
	old := Artifact{Profiles: []Profile{
		sampleProfile(65, map[string]int64{"radio": 100000, "mac-timer": 100000, "heap": 100}),
	}}
	// heap share ~0.05% in old: a 10x swing must stay silent; a
	// brand-new profile size must be skipped, not compared.
	fresh := Artifact{Profiles: []Profile{
		sampleProfile(65, map[string]int64{"radio": 100000, "mac-timer": 100000, "heap": 1000}),
		sampleProfile(250, map[string]int64{"radio": 1, "mac-timer": 1, "heap": 1}),
	}}
	if v := Diff(old, fresh, 10); len(v) != 0 {
		t.Fatalf("violations = %q, want none", v)
	}
}
