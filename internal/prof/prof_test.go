package prof

import (
	"strings"
	"testing"
)

func TestPhaseNamesRoundTrip(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, ok := ParsePhase(p.String())
		if !ok || got != p {
			t.Fatalf("ParsePhase(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := ParsePhase("nope"); ok {
		t.Fatal("ParsePhase accepted an unknown name")
	}
}

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	p.LoopBegin()
	p.BeginEvent(PhaseRadio, 3, 10)
	prev := p.Enter(PhaseReindex)
	p.Exit(prev)
	p.EndEvent()
	p.LoopEnd()
	s := p.Snapshot()
	if s.Events != 0 || s.LoopNs != 0 {
		t.Fatalf("nil profiler accumulated state: %+v", s)
	}
}

func TestIdleProfilerIgnoresSpans(t *testing.T) {
	p := New()
	// Enter/Exit outside LoopBegin..LoopEnd (e.g. a test driving
	// core.Base.Remap directly) must not attribute garbage.
	prev := p.Enter(PhaseReindex)
	p.Exit(prev)
	s := p.Snapshot()
	if s.Count[PhaseReindex] != 0 || s.AttributedNs() != 0 {
		t.Fatalf("idle profiler accumulated state: %+v", s)
	}
}

func TestAttributionStructure(t *testing.T) {
	p := New()
	p.LoopBegin()
	p.BeginEvent(PhaseMAC, 5, 100)
	prev := p.Enter(PhaseReindex)
	p.Exit(prev)
	p.EndEvent()
	p.BeginEvent(PhaseRadio, 2, 3)
	p.EndEvent()
	p.LoopEnd()

	s := p.Snapshot()
	if s.Events != 2 {
		t.Fatalf("Events = %d, want 2", s.Events)
	}
	if s.Count[PhaseMAC] != 1 || s.Count[PhaseRadio] != 1 || s.Count[PhaseReindex] != 1 {
		t.Fatalf("counts = %v", s.Count)
	}
	if s.Depth.Total() != 2 || s.Depth.Max() != 5 {
		t.Fatalf("depth histogram: total=%d max=%d", s.Depth.Total(), s.Depth.Max())
	}
	if s.Dwell[PhaseMAC].Max() != 100 || s.Dwell[PhaseRadio].Max() != 3 {
		t.Fatalf("dwell histograms: mac=%d radio=%d",
			s.Dwell[PhaseMAC].Max(), s.Dwell[PhaseRadio].Max())
	}
	if s.LoopNs <= 0 {
		t.Fatalf("LoopNs = %d, want > 0", s.LoopNs)
	}
	// Attribution is continuous: phase walls sum to the loop wall.
	if got := s.AttributedNs(); got != s.LoopNs {
		t.Fatalf("attributed %d ns != loop %d ns", got, s.LoopNs)
	}
	if c := s.Coverage(); c < 0.999 || c > 1.001 {
		t.Fatalf("coverage = %f, want ~1", c)
	}
}

func TestLoopAccumulatesAcrossSections(t *testing.T) {
	p := New()
	for i := 0; i < 3; i++ {
		p.LoopBegin()
		p.BeginEvent(PhaseHarness, 1, 0)
		p.EndEvent()
		p.LoopEnd()
	}
	s := p.Snapshot()
	if s.Events != 3 {
		t.Fatalf("Events = %d, want 3", s.Events)
	}
	if s.AttributedNs() != s.LoopNs {
		t.Fatalf("attributed %d != loop %d", s.AttributedNs(), s.LoopNs)
	}
}

func TestDisabledHotPathZeroAlloc(t *testing.T) {
	var p *Profiler
	allocs := testing.AllocsPerRun(1000, func() {
		p.BeginEvent(PhaseRadio, 4, 1)
		prev := p.Enter(PhaseTraceEmit)
		p.Exit(prev)
		p.EndEvent()
	})
	if allocs != 0 {
		t.Fatalf("disabled hot path allocates %.1f/op, want 0", allocs)
	}
}

func TestEnabledHotPathZeroAlloc(t *testing.T) {
	p := New()
	p.LoopBegin()
	allocs := testing.AllocsPerRun(1000, func() {
		p.BeginEvent(PhaseRadio, 4, 1)
		prev := p.Enter(PhaseTraceEmit)
		p.Exit(prev)
		p.EndEvent()
	})
	p.LoopEnd()
	if allocs != 0 {
		t.Fatalf("enabled hot path allocates %.1f/op, want 0", allocs)
	}
}

func TestProfileAndTable(t *testing.T) {
	p := New()
	p.LoopBegin()
	for i := 0; i < 10; i++ {
		p.BeginEvent(PhaseMAC, i+1, int64(i))
		p.EndEvent()
	}
	p.LoopEnd()
	pr := p.Snapshot()
	profile := pr.Profile(65, 600)
	if profile.N != 65 || profile.Events != 10 {
		t.Fatalf("profile = %+v", profile)
	}
	var share float64
	for _, r := range profile.Phases {
		share += r.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("shares sum to %f", share)
	}
	var sb strings.Builder
	if err := profile.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mac-timer") || !strings.Contains(sb.String(), "n=65") {
		t.Fatalf("table:\n%s", sb.String())
	}
}
