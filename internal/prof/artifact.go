package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// PhaseResult is one phase's row in a committed profile.
type PhaseResult struct {
	Phase      string  `json:"phase"`
	WallNs     int64   `json:"wallNs"`
	Share      float64 `json:"share"` // fraction of attributed loop time
	Events     int64   `json:"events"`
	MaxNs      int64   `json:"maxNs"`      // longest single attributed span
	DwellP50MS int64   `json:"dwellP50Ms"` // scheduled→fired lag quantiles,
	DwellP99MS int64   `json:"dwellP99Ms"` // virtual ms (event phases only)
}

// Profile is one network size's attribution breakdown.
type Profile struct {
	N        int           `json:"n"`
	VirtualS float64       `json:"virtualS"`
	LoopNs   int64         `json:"loopNs"`
	Events   int64         `json:"events"`
	Coverage float64       `json:"coverage"` // attributed / loop wall time
	DepthP50 int64         `json:"depthP50"` // heap depth at pop
	DepthP99 int64         `json:"depthP99"`
	DepthMax int64         `json:"depthMax"`
	Phases   []PhaseResult `json:"phases"` // descending wallNs
}

// Artifact is the committed BENCH_profile.json: the per-N phase
// breakdown the parallel-engine work (ROADMAP item 1) is targeted and
// regression-checked against. Unlike every sweep artifact it contains
// wall-clock numbers by design — it is machine-dependent, regenerated
// with cmd/scoopprof, and never feeds back into simulation behaviour.
type Artifact struct {
	Profiles []Profile `json:"profiles"`
}

// Profile renders the snapshot as one artifact entry.
func (s *Snapshot) Profile(n int, virtualS float64) Profile {
	p := Profile{
		N:        n,
		VirtualS: virtualS,
		LoopNs:   s.LoopNs,
		Events:   s.Events,
		Coverage: s.Coverage(),
		DepthP50: s.Depth.Quantile(0.50),
		DepthP99: s.Depth.Quantile(0.99),
		DepthMax: s.Depth.Max(),
	}
	attributed := s.AttributedNs()
	for _, ph := range s.TopPhases() {
		share := 0.0
		if attributed > 0 {
			share = float64(s.Wall[ph]) / float64(attributed)
		}
		p.Phases = append(p.Phases, PhaseResult{
			Phase:      ph.String(),
			WallNs:     s.Wall[ph],
			Share:      share,
			Events:     s.Count[ph],
			MaxNs:      s.Max[ph],
			DwellP50MS: s.Dwell[ph].Quantile(0.50),
			DwellP99MS: s.Dwell[ph].Quantile(0.99),
		})
	}
	return p
}

// WriteTable renders the profile as the scoopprof attribution table.
func (p *Profile) WriteTable(out io.Writer) error {
	if _, err := fmt.Fprintf(out,
		"n=%d virtual=%.0fs loop=%.3fs events=%d coverage=%.1f%% depth p50=%d p99=%d max=%d\n",
		p.N, p.VirtualS, float64(p.LoopNs)/1e9, p.Events, 100*p.Coverage,
		p.DepthP50, p.DepthP99, p.DepthMax); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(out, "  %-12s %10s %7s %12s %12s %10s %10s\n",
		"phase", "wall ms", "share", "events", "max µs", "dwell p50", "dwell p99"); err != nil {
		return err
	}
	for _, r := range p.Phases {
		if _, err := fmt.Fprintf(out, "  %-12s %10.1f %6.1f%% %12d %12.1f %8dms %8dms\n",
			r.Phase, float64(r.WallNs)/1e6, 100*r.Share, r.Events,
			float64(r.MaxNs)/1e3, r.DwellP50MS, r.DwellP99MS); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile persists the artifact as indented JSON.
func WriteFile(path string, a Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a committed artifact.
func ReadFile(path string) (Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Artifact{}, fmt.Errorf("prof: parsing %s: %w", path, err)
	}
	return a, nil
}

// MinCoverage is the schema's floor on attributed loop wall time. The
// attribution model yields ~1.0 structurally; anything below this
// means an instrumentation hole.
const MinCoverage = 0.95

// Validate schema-checks the artifact: non-empty, known phase names,
// shares summing to ~1, coverage above MinCoverage, sane counters.
// It is the CI `profile` job's check on the committed file.
func (a Artifact) Validate() error {
	if len(a.Profiles) == 0 {
		return fmt.Errorf("prof: artifact has no profiles")
	}
	for _, p := range a.Profiles {
		if p.N <= 0 || p.VirtualS <= 0 {
			return fmt.Errorf("prof: n=%d: non-positive size or duration", p.N)
		}
		if p.Events <= 0 || p.LoopNs <= 0 {
			return fmt.Errorf("prof: n=%d: no profiled events", p.N)
		}
		if p.Coverage < MinCoverage {
			return fmt.Errorf("prof: n=%d: coverage %.3f below %.2f", p.N, p.Coverage, MinCoverage)
		}
		if len(p.Phases) == 0 {
			return fmt.Errorf("prof: n=%d: no phases", p.N)
		}
		var share float64
		for _, r := range p.Phases {
			if _, ok := ParsePhase(r.Phase); !ok {
				return fmt.Errorf("prof: n=%d: unknown phase %q", p.N, r.Phase)
			}
			if r.WallNs < 0 || r.Events < 0 {
				return fmt.Errorf("prof: n=%d phase %s: negative counters", p.N, r.Phase)
			}
			share += r.Share
		}
		if share < 0.98 || share > 1.02 {
			return fmt.Errorf("prof: n=%d: phase shares sum to %.3f, want ~1", p.N, share)
		}
	}
	return nil
}

// DiffMinShare is the per-phase share below which Diff stays silent:
// a 30% swing on a 0.1%-share phase is scheduler noise, not a
// regression worth failing CI over.
const DiffMinShare = 0.01

// Diff compares two artifacts per (N, phase) and returns a violation
// line for every phase whose wall time per virtual second regressed
// by more than thresholdPct, plus one for the whole loop. Profiles
// present on only one side are skipped (sizes are added freely).
func Diff(old, fresh Artifact, thresholdPct float64) []string {
	limit := 1 + thresholdPct/100
	byN := make(map[int]Profile, len(fresh.Profiles))
	for _, p := range fresh.Profiles {
		byN[p.N] = p
	}
	var out []string
	for _, op := range old.Profiles {
		np, ok := byN[op.N]
		if !ok || op.VirtualS <= 0 || np.VirtualS <= 0 {
			continue
		}
		oldLoop := float64(op.LoopNs) / op.VirtualS
		newLoop := float64(np.LoopNs) / np.VirtualS
		if oldLoop > 0 && newLoop > oldLoop*limit {
			out = append(out, fmt.Sprintf("n=%d loop: %.0f -> %.0f ns/virtual-s (%+.1f%%, gate %.0f%%)",
				op.N, oldLoop, newLoop, 100*(newLoop/oldLoop-1), thresholdPct))
		}
		newPhases := make(map[string]PhaseResult, len(np.Phases))
		for _, r := range np.Phases {
			newPhases[r.Phase] = r
		}
		for _, or := range op.Phases {
			nr, ok := newPhases[or.Phase]
			if !ok || or.Share < DiffMinShare || or.WallNs <= 0 {
				continue
			}
			oldRate := float64(or.WallNs) / op.VirtualS
			newRate := float64(nr.WallNs) / np.VirtualS
			if newRate > oldRate*limit {
				out = append(out, fmt.Sprintf("n=%d phase %s: %.0f -> %.0f ns/virtual-s (%+.1f%%, gate %.0f%%)",
					op.N, or.Phase, oldRate, newRate, 100*(newRate/oldRate-1), thresholdPct))
			}
		}
	}
	return out
}

// DiffError folds violations into one error (nil when the diff is
// within threshold).
func DiffError(violations []string) error {
	if len(violations) == 0 {
		return nil
	}
	return fmt.Errorf("profile diff: %d regression(s):\n  %s",
		len(violations), strings.Join(violations, "\n  "))
}
