// Package index implements Scoop's storage index: the value→owner
// mapping the basestation computes from collected statistics (paper
// §4), its compaction into value ranges, its split into mapping-message
// chunks for Trickle dissemination and reassembly on nodes (paper
// §5.3), and the expected-transmissions (xmits) estimator the
// cost-based construction algorithm uses.
package index

import (
	"fmt"
	"sort"

	"scoop/internal/netsim"
)

// Entry maps the value range [Lo,Hi] (inclusive) to one owner node.
type Entry struct {
	Lo, Hi int
	Owner  netsim.NodeID
}

// Index is one storage index generation: a compacted, sorted,
// non-overlapping set of value-range→owner mappings covering
// [MinValue, MaxValue]. IDs increase monotonically; nodes always
// prefer the index with the highest ID they have fully assembled.
//
// Local marks the degenerate "store-local" policy index the
// basestation may choose when its expected cost beats every
// single-owner mapping (paper §4); it carries no entries.
type Index struct {
	ID       uint16
	MinValue int
	MaxValue int
	Local    bool
	Entries  []Entry
}

// New builds a compacted index from a dense owner slice: owners[i] is
// the owner of value minValue+i. Consecutive values with the same
// owner coalesce into a single range entry (paper §5.3).
func New(id uint16, minValue int, owners []netsim.NodeID) *Index {
	if len(owners) == 0 {
		panic("index: empty owner assignment")
	}
	ix := &Index{ID: id, MinValue: minValue, MaxValue: minValue + len(owners) - 1}
	lo := 0
	for i := 1; i <= len(owners); i++ {
		if i == len(owners) || owners[i] != owners[lo] {
			ix.Entries = append(ix.Entries, Entry{
				Lo:    minValue + lo,
				Hi:    minValue + i - 1,
				Owner: owners[lo],
			})
			lo = i
		}
	}
	return ix
}

// NewLocal returns a store-local index generation.
func NewLocal(id uint16) *Index { return &Index{ID: id, Local: true} }

// Owner returns the node responsible for storing value v. ok is false
// for values outside the index domain or for store-local indices
// (every node is its own owner then).
func (ix *Index) Owner(v int) (netsim.NodeID, bool) {
	if ix.Local || len(ix.Entries) == 0 || v < ix.MinValue || v > ix.MaxValue {
		return 0, false
	}
	// Binary search over sorted, non-overlapping ranges.
	i := sort.Search(len(ix.Entries), func(i int) bool { return ix.Entries[i].Hi >= v })
	if i < len(ix.Entries) && ix.Entries[i].Lo <= v && v <= ix.Entries[i].Hi {
		return ix.Entries[i].Owner, true
	}
	return 0, false
}

// Owners returns the distinct owners of values in [lo,hi], the node
// set a query for that range must contact.
func (ix *Index) Owners(lo, hi int) []netsim.NodeID {
	seen := make(map[netsim.NodeID]bool)
	var out []netsim.NodeID
	for _, e := range ix.Entries {
		if e.Hi < lo || e.Lo > hi {
			continue
		}
		if !seen[e.Owner] {
			seen[e.Owner] = true
			out = append(out, e.Owner)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumValues returns the size of the value domain the index covers.
func (ix *Index) NumValues() int {
	if ix.Local || len(ix.Entries) == 0 {
		return 0
	}
	return ix.MaxValue - ix.MinValue + 1
}

// Similarity returns the fraction of the value domain mapped to the
// same owner by both indices. The basestation suppresses dissemination
// of a new index that is very similar to the previous one (paper §5.3).
func Similarity(a, b *Index) float64 {
	if a == nil || b == nil {
		return 0
	}
	if a.Local || b.Local {
		if a.Local && b.Local {
			return 1
		}
		return 0
	}
	lo := a.MinValue
	if b.MinValue < lo {
		lo = b.MinValue
	}
	hi := a.MaxValue
	if b.MaxValue > hi {
		hi = b.MaxValue
	}
	if hi < lo {
		return 0
	}
	same, total := 0, 0
	for v := lo; v <= hi; v++ {
		oa, oka := a.Owner(v)
		ob, okb := b.Owner(v)
		total++
		if oka && okb && oa == ob {
			same++
		}
	}
	return float64(same) / float64(total)
}

// String renders the index compactly for logs and debugging.
func (ix *Index) String() string {
	if ix.Local {
		return fmt.Sprintf("index#%d(store-local)", ix.ID)
	}
	return fmt.Sprintf("index#%d[%d..%d] %d ranges", ix.ID, ix.MinValue, ix.MaxValue, len(ix.Entries))
}

// Chunk is one mapping message: a slice of a storage index small
// enough to fit a radio packet (paper §5.3). Chunks of one index share
// IndexID; Num runs 0..Total-1.
type Chunk struct {
	IndexID  uint16
	Num      uint8
	Total    uint8
	MinValue int
	MaxValue int
	Local    bool
	Entries  []Entry
}

// MaxEntriesPerChunk is how many range entries fit one mapping message:
// a TinyOS payload of ~24 usable bytes at 5 bytes per entry (2+2 value
// bounds, 1 owner) after the chunk header.
const MaxEntriesPerChunk = 4

// Chunks splits the index into mapping messages of at most perChunk
// entries each. A store-local index yields a single header-only chunk.
func (ix *Index) Chunks(perChunk int) []Chunk {
	if perChunk <= 0 {
		panic("index: non-positive chunk size")
	}
	if ix.Local {
		return []Chunk{{IndexID: ix.ID, Num: 0, Total: 1, Local: true}}
	}
	n := (len(ix.Entries) + perChunk - 1) / perChunk
	if n > 255 {
		panic("index: too many chunks for uint8 numbering")
	}
	chunks := make([]Chunk, 0, n)
	for i := 0; i < n; i++ {
		lo := i * perChunk
		hi := lo + perChunk
		if hi > len(ix.Entries) {
			hi = len(ix.Entries)
		}
		chunks = append(chunks, Chunk{
			IndexID:  ix.ID,
			Num:      uint8(i),
			Total:    uint8(n),
			MinValue: ix.MinValue,
			MaxValue: ix.MaxValue,
			Entries:  append([]Entry(nil), ix.Entries[lo:hi]...),
		})
	}
	return chunks
}

// Assembler reassembles chunks into complete indices on a node. Nodes
// may receive chunks from multiple index generations interleaved; only
// a fully assembled generation becomes usable, and older generations
// are discarded once a newer complete one exists (paper §5.3: nodes
// with incomplete storage indices continue to use the older complete
// one).
type Assembler struct {
	partial map[uint16]map[uint8]Chunk
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{partial: make(map[uint16]map[uint8]Chunk)}
}

// Offer adds one received chunk. It returns the completed index when
// this chunk was the last missing piece of its generation, else nil.
func (a *Assembler) Offer(c Chunk) *Index {
	m, ok := a.partial[c.IndexID]
	if !ok {
		m = make(map[uint8]Chunk)
		a.partial[c.IndexID] = m
	}
	m[c.Num] = c
	if len(m) < int(c.Total) {
		return nil
	}
	// Complete: stitch entries back together in chunk order.
	ix := &Index{ID: c.IndexID, MinValue: c.MinValue, MaxValue: c.MaxValue, Local: c.Local}
	for num := uint8(0); num < c.Total; num++ {
		part, ok := m[num]
		if !ok {
			return nil // Total mismatch across generations; keep waiting
		}
		ix.Entries = append(ix.Entries, part.Entries...)
	}
	delete(a.partial, c.IndexID)
	// Drop stale partial generations.
	for id := range a.partial {
		if id <= c.IndexID {
			delete(a.partial, id)
		}
	}
	return ix
}

// HasChunk reports whether the assembler already holds chunk num of
// generation id (used for Trickle suppression decisions).
func (a *Assembler) HasChunk(id uint16, num uint8) bool {
	m, ok := a.partial[id]
	if !ok {
		return false
	}
	_, ok = m[num]
	return ok
}

// Pending reports how many generations have partial state.
func (a *Assembler) Pending() int { return len(a.partial) }
