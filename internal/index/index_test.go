package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scoop/internal/netsim"
)

func TestNewCompaction(t *testing.T) {
	owners := []netsim.NodeID{2, 2, 2, 1, 5, 5, 2}
	ix := New(7, 20, owners)
	if len(ix.Entries) != 4 {
		t.Fatalf("entries = %d, want 4 (compaction)", len(ix.Entries))
	}
	want := []Entry{{20, 22, 2}, {23, 23, 1}, {24, 25, 5}, {26, 26, 2}}
	for i, e := range want {
		if ix.Entries[i] != e {
			t.Fatalf("entry %d = %+v, want %+v", i, ix.Entries[i], e)
		}
	}
	if ix.MinValue != 20 || ix.MaxValue != 26 {
		t.Fatalf("domain [%d,%d]", ix.MinValue, ix.MaxValue)
	}
}

func TestOwnerLookup(t *testing.T) {
	ix := New(1, 0, []netsim.NodeID{3, 3, 7, 7, 7, 1})
	cases := []struct {
		v    int
		want netsim.NodeID
		ok   bool
	}{
		{0, 3, true}, {1, 3, true}, {2, 7, true}, {4, 7, true}, {5, 1, true},
		{-1, 0, false}, {6, 0, false},
	}
	for _, c := range cases {
		got, ok := ix.Owner(c.v)
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("Owner(%d) = %d,%v, want %d,%v", c.v, got, ok, c.want, c.ok)
		}
	}
}

// Property: compaction round-trips — Owner(v) equals the dense
// assignment for every v, for arbitrary assignments.
func TestCompactionRoundTripProperty(t *testing.T) {
	f := func(raw []uint8, minSeed int8) bool {
		if len(raw) == 0 {
			return true
		}
		minV := int(minSeed)
		owners := make([]netsim.NodeID, len(raw))
		for i, r := range raw {
			owners[i] = netsim.NodeID(r % 16)
		}
		ix := New(1, minV, owners)
		for i, want := range owners {
			got, ok := ix.Owner(minV + i)
			if !ok || got != want {
				return false
			}
		}
		_, ok := ix.Owner(minV - 1)
		_, ok2 := ix.Owner(minV + len(owners))
		return !ok && !ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: entries are sorted, non-overlapping and cover the domain.
func TestEntriesCoverDomainProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		owners := make([]netsim.NodeID, len(raw))
		for i, r := range raw {
			owners[i] = netsim.NodeID(r % 8)
		}
		ix := New(1, 0, owners)
		next := 0
		for _, e := range ix.Entries {
			if e.Lo != next || e.Hi < e.Lo {
				return false
			}
			next = e.Hi + 1
		}
		return next == len(owners)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnersRange(t *testing.T) {
	ix := New(1, 0, []netsim.NodeID{3, 3, 7, 7, 1, 3})
	got := ix.Owners(1, 4)
	want := []netsim.NodeID{1, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("owners = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("owners = %v, want %v", got, want)
		}
	}
	if got := ix.Owners(100, 200); len(got) != 0 {
		t.Fatalf("out-of-domain owners = %v", got)
	}
}

func TestSimilarity(t *testing.T) {
	a := New(1, 0, []netsim.NodeID{1, 1, 2, 2})
	b := New(2, 0, []netsim.NodeID{1, 1, 2, 3})
	if s := Similarity(a, b); s != 0.75 {
		t.Fatalf("similarity = %f, want 0.75", s)
	}
	if s := Similarity(a, a); s != 1 {
		t.Fatalf("self similarity = %f", s)
	}
	if Similarity(a, nil) != 0 {
		t.Fatal("nil similarity nonzero")
	}
	if Similarity(NewLocal(1), NewLocal(2)) != 1 {
		t.Fatal("two local indices must be identical")
	}
	if Similarity(a, NewLocal(3)) != 0 {
		t.Fatal("local vs range index must differ")
	}
}

func TestChunksRoundTrip(t *testing.T) {
	owners := make([]netsim.NodeID, 150)
	r := rand.New(rand.NewSource(1))
	for i := range owners {
		owners[i] = netsim.NodeID(r.Intn(10))
	}
	ix := New(42, 0, owners)
	chunks := ix.Chunks(MaxEntriesPerChunk)
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
	// Deliver in a shuffled order with duplicates.
	asm := NewAssembler()
	order := r.Perm(len(chunks))
	var got *Index
	for _, i := range order {
		if g := asm.Offer(chunks[i]); g != nil {
			got = g
		}
		asm.Offer(chunks[i]) // duplicate must be harmless
	}
	if got == nil {
		t.Fatal("assembly never completed")
	}
	if got.ID != 42 || got.MinValue != ix.MinValue || got.MaxValue != ix.MaxValue {
		t.Fatalf("assembled header mismatch: %v vs %v", got, ix)
	}
	for v := 0; v < 150; v++ {
		a, _ := ix.Owner(v)
		b, ok := got.Owner(v)
		if !ok || a != b {
			t.Fatalf("assembled index differs at %d: %d vs %d", v, a, b)
		}
	}
}

// Property: chunk/assemble round-trips for arbitrary assignments and
// chunk sizes, regardless of delivery order.
func TestChunkAssembleProperty(t *testing.T) {
	f := func(raw []uint8, perChunkSeed uint8, permSeed int64) bool {
		if len(raw) == 0 {
			return true
		}
		owners := make([]netsim.NodeID, len(raw))
		for i, r := range raw {
			owners[i] = netsim.NodeID(r % 5)
		}
		ix := New(9, 0, owners)
		per := int(perChunkSeed%6) + 1
		chunks := ix.Chunks(per)
		asm := NewAssembler()
		r := rand.New(rand.NewSource(permSeed))
		var got *Index
		for _, i := range r.Perm(len(chunks)) {
			if g := asm.Offer(chunks[i]); g != nil {
				got = g
			}
		}
		if got == nil {
			return false
		}
		for v := 0; v < len(owners); v++ {
			a, _ := ix.Owner(v)
			b, ok := got.Owner(v)
			if !ok || a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAssemblerIncomplete(t *testing.T) {
	ix := New(3, 0, make([]netsim.NodeID, 40)) // 40 values → 1 entry... force more
	owners := make([]netsim.NodeID, 40)
	for i := range owners {
		owners[i] = netsim.NodeID(i % 7)
	}
	ix = New(3, 0, owners)
	chunks := ix.Chunks(2)
	asm := NewAssembler()
	for _, c := range chunks[:len(chunks)-1] {
		if asm.Offer(c) != nil {
			t.Fatal("completed without all chunks")
		}
	}
	if asm.Pending() != 1 {
		t.Fatalf("pending = %d", asm.Pending())
	}
	if !asm.HasChunk(3, 0) {
		t.Fatal("HasChunk lost a chunk")
	}
	if asm.HasChunk(3, chunks[len(chunks)-1].Num) {
		t.Fatal("HasChunk invented the missing chunk")
	}
}

func TestAssemblerDropsStaleGenerations(t *testing.T) {
	old := New(5, 0, []netsim.NodeID{1, 2, 1, 2, 1, 2, 1, 2})
	cur := New(6, 0, []netsim.NodeID{3, 4, 3, 4, 3, 4, 3, 4})
	asm := NewAssembler()
	// Partial old generation...
	asm.Offer(old.Chunks(2)[0])
	// ...then the new generation completes.
	for _, c := range cur.Chunks(2) {
		asm.Offer(c)
	}
	if asm.Pending() != 0 {
		t.Fatalf("stale partial generation retained (pending=%d)", asm.Pending())
	}
}

func TestLocalIndexChunks(t *testing.T) {
	ix := NewLocal(9)
	chunks := ix.Chunks(4)
	if len(chunks) != 1 || !chunks[0].Local {
		t.Fatalf("local chunks = %+v", chunks)
	}
	asm := NewAssembler()
	got := asm.Offer(chunks[0])
	if got == nil || !got.Local || got.ID != 9 {
		t.Fatalf("assembled local = %+v", got)
	}
	if _, ok := got.Owner(5); ok {
		t.Fatal("local index resolved an owner")
	}
}

func TestChunksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 0, []netsim.NodeID{1}).Chunks(0)
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 0, nil)
}
