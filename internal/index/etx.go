package index

import (
	"math"

	"scoop/internal/netsim"
)

// Inf is the xmits value for unreachable pairs.
const Inf = math.MaxFloat64 / 4

// Graph holds the basestation's view of link qualities, built from the
// topology section of summary messages (each node's best-connected
// neighbors with estimated inbound quality) plus the origin/parent
// fields in Scoop packet headers (paper §5.2). Quality[i][j] estimates
// the delivery probability of one transmission i→j.
type Graph struct {
	N       int
	Quality [][]float64
}

// NewGraph returns an n-node graph with no links.
func NewGraph(n int) *Graph {
	g := &Graph{N: n, Quality: make([][]float64, n)}
	for i := range g.Quality {
		g.Quality[i] = make([]float64, n)
	}
	return g
}

// Report records a link-quality observation: node `to` reported
// hearing `from` with the given delivery probability. Newer reports
// overwrite older ones (the basestation keeps the last summary per
// node).
func (g *Graph) Report(from, to netsim.NodeID, quality float64) {
	if int(from) >= g.N || int(to) >= g.N || from == to {
		return
	}
	if quality < 0 {
		quality = 0
	}
	if quality > 1 {
		quality = 1
	}
	g.Quality[from][to] = quality
}

// minUsableQuality guards the ETX metric against wildly expensive
// links: links below this estimated quality are not considered usable
// edges (they would imply >8 expected transmissions per hop).
const minUsableQuality = 0.125

// Xmits computes the all-pairs expected-transmission-count matrix
// xmits(x→y) from the current link estimates, the quantity the
// indexing algorithm in Figure 2 of the paper consumes. Edge cost is
// the ETX of the hop, 1/quality; unusable pairs get Inf.
//
// The O(n³) Floyd–Warshall pass is the basestation's job in Scoop —
// "the Scoop basestation requires more memory and CPU power than
// current mote hardware can provide" — and is trivially affordable at
// n ≤ 128.
func (g *Graph) Xmits() [][]float64 {
	n := g.N
	// One flat backing array: row slices share it, so the O(n²) matrix
	// is a single allocation and the k-loop walks contiguous memory —
	// this pass runs on every index rebuild and is O(n³) at n = 1000.
	flat := make([]float64, n*n)
	d := make([][]float64, n)
	for i := range d {
		d[i] = flat[i*n : (i+1)*n : (i+1)*n]
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case g.Quality[i][j] >= minUsableQuality:
				d[i][j] = 1.0 / g.Quality[i][j]
			default:
				d[i][j] = Inf
			}
		}
	}
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if dik >= Inf {
				continue
			}
			di := d[i]
			for j := 0; j < n; j++ {
				if alt := dik + dk[j]; alt < di[j] {
					di[j] = alt
				}
			}
		}
	}
	return d
}

// RoundTrip returns xmits(base→o→base) given a precomputed matrix:
// the cost of delivering a query to owner o and routing the reply
// back (paper Figure 2).
func RoundTrip(xmits [][]float64, base, o netsim.NodeID) float64 {
	return xmits[base][o] + xmits[o][base]
}
