package index

import (
	"math"

	"scoop/internal/netsim"
)

// Inf is the xmits value for unreachable pairs.
const Inf = math.MaxFloat64 / 4

// Graph holds the basestation's view of link qualities, built from the
// topology section of summary messages (each node's best-connected
// neighbors with estimated inbound quality) plus the origin/parent
// fields in Scoop packet headers (paper §5.2). Quality[i][j] estimates
// the delivery probability of one transmission i→j.
//
// Quality's row slices share one flat backing array (the same trick
// the xmits matrix uses), so an n-node graph is two allocations and
// Reset can recycle it across index rebuilds without churning the
// allocator.
type Graph struct {
	N       int
	Quality [][]float64
	flat    []float64
}

// NewGraph returns an n-node graph with no links.
func NewGraph(n int) *Graph {
	g := &Graph{N: n, Quality: make([][]float64, n), flat: make([]float64, n*n)}
	for i := range g.Quality {
		g.Quality[i] = g.flat[i*n : (i+1)*n : (i+1)*n]
	}
	return g
}

// Reset clears every link observation so the graph can be rebuilt from
// the next batch of summaries. The basestation keeps one Graph alive
// across rebuilds instead of reallocating an n×n matrix each epoch.
func (g *Graph) Reset() {
	for i := range g.flat {
		g.flat[i] = 0
	}
}

// Report records a link-quality observation: node `to` reported
// hearing `from` with the given delivery probability. Newer reports
// overwrite older ones (the basestation keeps the last summary per
// node).
func (g *Graph) Report(from, to netsim.NodeID, quality float64) {
	if int(from) >= g.N || int(to) >= g.N || from == to {
		return
	}
	if quality < 0 {
		quality = 0
	}
	if quality > 1 {
		quality = 1
	}
	g.Quality[from][to] = quality
}

// minUsableQuality guards the ETX metric against wildly expensive
// links: links below this estimated quality are not considered usable
// edges (they would imply >8 expected transmissions per hop).
const minUsableQuality = 0.125

// Xmits computes the all-pairs expected-transmission-count matrix
// xmits(x→y) from the current link estimates, the quantity the
// indexing algorithm in Figure 2 of the paper consumes. Edge cost is
// the ETX of the hop, 1/quality; unusable pairs get Inf.
//
// Nodes report only their ~12 best neighbors (paper §5.2), so the
// graph is sparse: per-source Dijkstra over a CSR adjacency is
// O(n·(E + n log n)) instead of the dense Floyd–Warshall's O(n³),
// which is what keeps 1000-node index rebuilds off the simulation's
// critical path. Convenience wrapper over a throwaway solver; the
// basestation's Builder keeps a warm solver with reusable scratch.
func (g *Graph) Xmits() [][]float64 {
	var s spSolver
	return s.allPairs(g)
}

// XmitsDense is the original dense Floyd–Warshall pass, kept as the
// reference implementation the sparse solver is equivalence-tested
// against (and for ablation benches). Its results agree with Xmits up
// to floating-point association: both compute shortest-path sums of
// the same edge costs, but FW may round a different parenthesisation
// of the same path.
func (g *Graph) XmitsDense() [][]float64 {
	n := g.N
	// One flat backing array: row slices share it, so the O(n²) matrix
	// is a single allocation and the k-loop walks contiguous memory.
	flat := make([]float64, n*n)
	d := make([][]float64, n)
	for i := range d {
		d[i] = flat[i*n : (i+1)*n : (i+1)*n]
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case g.Quality[i][j] >= minUsableQuality:
				d[i][j] = 1.0 / g.Quality[i][j]
			default:
				d[i][j] = Inf
			}
		}
	}
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if dik >= Inf {
				continue
			}
			di := d[i]
			for j := 0; j < n; j++ {
				if alt := dik + dk[j]; alt < di[j] {
					di[j] = alt
				}
			}
		}
	}
	return d
}

// RoundTrip returns xmits(base→o→base) given a precomputed matrix:
// the cost of delivering a query to owner o and routing the reply
// back (paper Figure 2).
func RoundTrip(xmits [][]float64, base, o netsim.NodeID) float64 {
	return xmits[base][o] + xmits[o][base]
}
