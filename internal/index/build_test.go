package index

import (
	mrand "math/rand"
	"testing"
	"testing/quick"

	"scoop/internal/histogram"
	"scoop/internal/netsim"
)

// chainGraph builds a 4-node chain 0—1—2—3 with uniform link quality q.
func chainGraph(q float64) *Graph {
	g := NewGraph(4)
	for i := 0; i < 3; i++ {
		g.Report(netsim.NodeID(i), netsim.NodeID(i+1), q)
		g.Report(netsim.NodeID(i+1), netsim.NodeID(i), q)
	}
	return g
}

func TestXmitsChain(t *testing.T) {
	x := chainGraph(0.5).Xmits()
	if x[0][0] != 0 {
		t.Fatalf("self distance %f", x[0][0])
	}
	// Each hop costs 1/0.5 = 2 expected transmissions.
	if x[0][1] != 2 || x[0][2] != 4 || x[0][3] != 6 {
		t.Fatalf("chain xmits = %v", x[0])
	}
	if x[3][0] != 6 {
		t.Fatalf("reverse xmits = %f", x[3][0])
	}
}

func TestXmitsPrefersGoodDetour(t *testing.T) {
	// Direct 0→2 link is terrible (0.15 → ETX 6.7); the detour through
	// 1 at 0.9 each (ETX 2.2) must win.
	g := NewGraph(3)
	g.Report(0, 2, 0.15)
	g.Report(2, 0, 0.15)
	g.Report(0, 1, 0.9)
	g.Report(1, 0, 0.9)
	g.Report(1, 2, 0.9)
	g.Report(2, 1, 0.9)
	x := g.Xmits()
	if x[0][2] > 3 {
		t.Fatalf("xmits(0→2) = %f; detour not taken", x[0][2])
	}
}

func TestXmitsUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.Report(0, 1, 0.9)
	g.Report(1, 0, 0.9)
	x := g.Xmits()
	if x[0][2] < Inf {
		t.Fatalf("unreachable pair has finite xmits %f", x[0][2])
	}
}

func TestXmitsIgnoresUnusableLinks(t *testing.T) {
	g := NewGraph(2)
	g.Report(0, 1, 0.05) // below minUsableQuality
	x := g.Xmits()
	if x[0][1] < Inf {
		t.Fatalf("unusable link used: %f", x[0][1])
	}
}

func TestGraphReportClamps(t *testing.T) {
	g := NewGraph(2)
	g.Report(0, 1, 1.5)
	if g.Quality[0][1] != 1 {
		t.Fatalf("quality not clamped: %f", g.Quality[0][1])
	}
	g.Report(0, 1, -0.5)
	if g.Quality[0][1] != 0 {
		t.Fatalf("negative quality kept: %f", g.Quality[0][1])
	}
	g.Report(0, 0, 0.9) // self-report ignored
	if g.Quality[0][0] != 0 {
		t.Fatal("self link recorded")
	}
	g.Report(7, 1, 0.9) // out of range ignored
}

// Property: the xmits matrix satisfies the triangle inequality (it is
// a shortest-path metric) and has a zero diagonal.
func TestXmitsTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		n := 6
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && r.Float64() < 0.6 {
					g.Report(netsim.NodeID(i), netsim.NodeID(j), 0.2+0.8*r.Float64())
				}
			}
		}
		x := g.Xmits()
		for i := 0; i < n; i++ {
			if x[i][i] != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if x[i][k] >= Inf || x[k][j] >= Inf {
						continue
					}
					if x[i][j] > x[i][k]+x[k][j]+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// buildInput constructs a 4-node-chain scenario. Node `producer`
// produces values 10..19 at the given rate; queries cover the whole
// domain uniformly at qRate.
func buildInput(producer netsim.NodeID, dataRate, qRate float64) BuildInput {
	hist := histogram.Build([]int{10, 12, 14, 16, 18, 19}, 10)
	prob := make([]float64, 30)
	for i := range prob {
		prob[i] = 1.0 / 30
	}
	return BuildInput{
		N:        4,
		Base:     0,
		Nodes:    nodeStats(4, producer, NodeStat{Hist: hist, Rate: dataRate}),
		Query:    QueryProfile{Rate: qRate, MinValue: 0, Prob: prob},
		Xmits:    chainGraph(0.8).Xmits(),
		MinValue: 0,
		MaxValue: 29,
	}
}

// Paper property P1: if the data rate goes up (query rate fixed), data
// moves toward the source.
func TestBuildP1DataRatePullsTowardSource(t *testing.T) {
	slow := Build(1, buildInput(3, 0.01, 1.0))
	fast := Build(2, buildInput(3, 10.0, 1.0))
	// With a slow producer and frequent queries, produced values live
	// near the base; with a fast producer they live on the producer.
	oSlow, _ := slow.Owner(14)
	oFast, _ := fast.Owner(14)
	x := chainGraph(0.8).Xmits()
	if x[oFast][3] > x[oSlow][3] {
		t.Fatalf("fast-producer owner %d further from source than slow-producer owner %d", oFast, oSlow)
	}
	if oFast != 3 {
		t.Fatalf("dominant data rate should make the producer own its values; owner = %d", oFast)
	}
}

// Paper property P2: if the query rate goes up (data rate fixed), data
// moves toward the basestation.
func TestBuildP2QueryRatePullsTowardBase(t *testing.T) {
	quiet := Build(1, buildInput(3, 1.0, 0.001))
	busy := Build(2, buildInput(3, 1.0, 50.0))
	oQuiet, _ := quiet.Owner(14)
	oBusy, _ := busy.Owner(14)
	x := chainGraph(0.8).Xmits()
	if x[0][oBusy] > x[0][oQuiet] {
		t.Fatalf("busy-query owner %d further from base than quiet owner %d", oBusy, oQuiet)
	}
	if oBusy != 0 {
		t.Fatalf("dominant query rate should send values to the base; owner = %d", oBusy)
	}
}

// Paper property P3: the likely producer of a value is preferred as
// its owner, all else equal.
func TestBuildP3ProducerPreferred(t *testing.T) {
	// Two producers with equal rates; node 1 produces low values and
	// node 3 high values. No queries.
	in := BuildInput{
		N:    4,
		Base: 0,
		Nodes: func() []NodeStat {
			ns := make([]NodeStat, 4)
			ns[1] = NodeStat{Hist: histogram.Build([]int{0, 1, 2, 3, 4}, 5), Rate: 1}
			ns[3] = NodeStat{Hist: histogram.Build([]int{20, 21, 22, 23, 24}, 5), Rate: 1}
			return ns
		}(),
		Query:    QueryProfile{MinValue: 0},
		Xmits:    chainGraph(0.8).Xmits(),
		MinValue: 0,
		MaxValue: 24,
	}
	ix := Build(1, in)
	if o, _ := ix.Owner(2); o != 1 {
		t.Fatalf("low values owned by %d, want producer 1", o)
	}
	if o, _ := ix.Owner(22); o != 3 {
		t.Fatalf("high values owned by %d, want producer 3", o)
	}
}

// Paper property P4: lossy links are avoided — between two otherwise
// identical candidate owners, the one behind a better link wins.
func TestBuildP4NetworkAware(t *testing.T) {
	// Star: producer 1 at center; candidates 2 (good link) and 3 (bad
	// link). Queries force data off the producer: make producer's own
	// storage expensive by querying hard, while base link is poor.
	g := NewGraph(4)
	g.Report(1, 2, 0.9)
	g.Report(2, 1, 0.9)
	g.Report(1, 3, 0.2)
	g.Report(3, 1, 0.2)
	g.Report(0, 1, 0.5)
	g.Report(1, 0, 0.5)
	x := g.Xmits()
	if x[1][2] >= x[1][3] {
		t.Skip("graph did not produce intended asymmetry")
	}
	in := BuildInput{
		N:        4,
		Base:     0,
		Nodes:    nodeStats(4, 1, NodeStat{Hist: histogram.Build([]int{5, 5, 5}, 5), Rate: 1}),
		Query:    QueryProfile{MinValue: 0},
		Xmits:    x,
		MinValue: 0,
		MaxValue: 9,
	}
	// With no queries the producer owns its value; costs for 2 vs 3
	// differ only by link quality.
	c2 := in.Cost(2, 5)
	c3 := in.Cost(3, 5)
	if c2 >= c3 {
		t.Fatalf("good-link owner cost %f not below lossy-link owner cost %f", c2, c3)
	}
}

func TestBuildUnknownNodesDefaultToBase(t *testing.T) {
	// No statistics at all: every value's cost is 0 for every owner,
	// ties break to the base → send-to-base index.
	in := BuildInput{
		N:        4,
		Base:     0,
		Nodes:    make([]NodeStat, 4),
		Query:    QueryProfile{MinValue: 0},
		Xmits:    chainGraph(0.8).Xmits(),
		MinValue: 0,
		MaxValue: 9,
	}
	ix := Build(1, in)
	if len(ix.Entries) != 1 || ix.Entries[0].Owner != 0 {
		t.Fatalf("expected single base-owned range, got %v", ix.Entries)
	}
}

func TestChooseIndexPrefersLocalWhenQueriesRare(t *testing.T) {
	// Strong data rates, almost no queries → store-local beats any
	// single-owner mapping when producers are spread out.
	in := BuildInput{
		N:    4,
		Base: 0,
		Nodes: func() []NodeStat {
			ns := make([]NodeStat, 4)
			ns[1] = NodeStat{Hist: histogram.Build([]int{0, 5, 9}, 5), Rate: 10}
			ns[2] = NodeStat{Hist: histogram.Build([]int{10, 15, 19}, 5), Rate: 10}
			ns[3] = NodeStat{Hist: histogram.Build([]int{20, 25, 29}, 5), Rate: 10}
			return ns
		}(),
		Query:    QueryProfile{Rate: 0.0001, MinValue: 0, Prob: uniformProb(30)},
		Xmits:    chainGraph(0.8).Xmits(),
		MinValue: 0,
		MaxValue: 29,
	}
	// The optimal mapping assigns each producer its own values, which
	// costs ~0 — so the cost-based index should actually win here.
	ix := ChooseIndex(1, in)
	if ix.Local {
		t.Fatal("per-producer mapping costs nothing; local should not win")
	}
	// Now destroy locality: every node produces every value.
	all := histogram.Build([]int{0, 10, 20, 29}, 5)
	in.Nodes = []NodeStat{{}, {Hist: all, Rate: 10}, {Hist: all, Rate: 10}, {Hist: all, Rate: 10}}
	ix = ChooseIndex(2, in)
	if !ix.Local {
		t.Fatal("with no locality and no queries, store-local must win")
	}
}

func TestStoreLocalCostScalesWithQueryRate(t *testing.T) {
	in := buildInput(3, 1, 1)
	c1 := StoreLocalCost(in)
	in.Query.Rate = 2
	c2 := StoreLocalCost(in)
	if c2 <= c1 || c2 < 1.9*c1 {
		t.Fatalf("store-local cost %f → %f; should scale linearly", c1, c2)
	}
	in.Query.Rate = 0
	if StoreLocalCost(in) != 0 {
		t.Fatal("store-local costs nothing without queries")
	}
}

func TestEvaluateIndexCostConsistentWithBuild(t *testing.T) {
	in := buildInput(3, 1, 1)
	best := Build(1, in)
	// The built index must cost no more than send-to-base or any
	// single-owner alternative.
	base := New(2, in.MinValue, ownersAll(in.domainSize(), 0))
	n2 := New(3, in.MinValue, ownersAll(in.domainSize(), 2))
	cb := EvaluateIndexCost(best, in)
	if cb > EvaluateIndexCost(base, in)+1e-9 {
		t.Fatal("built index costs more than send-to-base")
	}
	if cb > EvaluateIndexCost(n2, in)+1e-9 {
		t.Fatal("built index costs more than a fixed owner")
	}
}

// Property: BuildOwners is optimal per value — no single-owner swap
// can reduce the cost of any value.
func TestBuildPerValueOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		n := 5
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && r.Float64() < 0.7 {
					g.Report(netsim.NodeID(i), netsim.NodeID(j), 0.2+0.8*r.Float64())
				}
			}
		}
		nodes := make([]NodeStat, n)
		for i := 1; i < n; i++ {
			vals := make([]int, 8)
			for k := range vals {
				vals[k] = r.Intn(20)
			}
			nodes[i] = NodeStat{
				Hist: histogram.Build(vals, 5),
				Rate: r.Float64() * 2,
			}
		}
		in := BuildInput{
			N: n, Base: 0, Nodes: nodes,
			Query:    QueryProfile{Rate: r.Float64(), MinValue: 0, Prob: uniformProb(20)},
			Xmits:    g.Xmits(),
			MinValue: 0, MaxValue: 19,
		}
		owners := BuildOwners(in)
		for i, o := range owners {
			v := in.MinValue + i
			c := in.Cost(o, v)
			for alt := 0; alt < n; alt++ {
				// The contiguity preference may keep the previous
				// owner when it is within the documented tolerance of
				// the optimum — never worse than that.
				if in.Cost(netsim.NodeID(alt), v)*(1+contiguityTolerance) < c-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func uniformProb(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1.0 / float64(n)
	}
	return p
}

func ownersAll(n int, o netsim.NodeID) []netsim.NodeID {
	out := make([]netsim.NodeID, n)
	for i := range out {
		out[i] = o
	}
	return out
}

// nodeStats builds a dense stats slice with one populated entry.
func nodeStats(n int, id netsim.NodeID, st NodeStat) []NodeStat {
	ns := make([]NodeStat, n)
	ns[id] = st
	return ns
}

// newRand gives property tests a seeded random stream.
func newRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
