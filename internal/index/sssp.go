package index

import (
	"runtime"
	"sync"
)

// This file implements the sparse all-pairs shortest-path pass that
// replaced the dense Floyd–Warshall: a CSR adjacency built from the
// Graph's link observations, per-source Dijkstra over a reusable
// binary heap, fanned out across a bounded worker pool.
//
// Determinism rules (DESIGN.md, reindex pipeline):
//   - Each source's distance row depends only on the CSR arrays, which
//     are built by a row-major scan of the quality matrix — workers
//     write disjoint rows, so the result is bit-identical whatever
//     GOMAXPROCS is (pinned by TestXmitsGOMAXPROCSDeterminism).
//   - The heap orders by (distance, node ID): floating-point distance
//     ties pop the lower node ID first, so even the relaxation order —
//     not just the final distances — is fully specified.
//   - Path sums are left folds from the source (dist[u] + w(u,v)),
//     which FW does not guarantee; the two passes agree exactly on
//     exactly-representable edge costs and to ~1 ulp otherwise.

// csr is a compressed-sparse-row adjacency: edges of row i live in
// to[head[i]:head[i+1]] (ascending target order) with cost w (ETX,
// 1/quality). All slices are reused across rebuilds.
type csr struct {
	n    int
	head []int32
	to   []int32
	w    []float64
}

// build fills the CSR from the graph's quality matrix, reusing the
// receiver's slices. Only links at or above minUsableQuality become
// edges (the same rule the dense pass applies).
func (c *csr) build(g *Graph) {
	n := g.N
	c.n = n
	if cap(c.head) < n+1 {
		c.head = make([]int32, n+1)
	}
	c.head = c.head[:n+1]
	edges := 0
	for i := 0; i < n; i++ {
		c.head[i] = int32(edges)
		row := g.Quality[i]
		for j := 0; j < n; j++ {
			if row[j] >= minUsableQuality {
				edges++
			}
		}
	}
	c.head[n] = int32(edges)
	if cap(c.to) < edges {
		c.to = make([]int32, edges)
		c.w = make([]float64, edges)
	}
	c.to = c.to[:edges]
	c.w = c.w[:edges]
	e := 0
	for i := 0; i < n; i++ {
		row := g.Quality[i]
		for j := 0; j < n; j++ {
			if q := row[j]; q >= minUsableQuality {
				c.to[e] = int32(j)
				c.w[e] = 1.0 / q
				e++
			}
		}
	}
}

// equal reports whether two CSR snapshots describe the same weighted
// graph (exact float comparison: the dirty-tracking layer treats any
// changed edge as a changed graph).
func (c *csr) equal(o *csr) bool {
	if c.n != o.n || len(c.to) != len(o.to) {
		return false
	}
	for i := range c.head {
		if c.head[i] != o.head[i] {
			return false
		}
	}
	for i := range c.to {
		if c.to[i] != o.to[i] || c.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

// spItem is one heap entry: a tentative distance to a node.
type spItem struct {
	d  float64
	id int32
}

// spLess is the heap order: distance, then node ID — the explicit
// FP-tie rule that makes the relaxation order deterministic.
func spLess(a, b spItem) bool {
	return a.d < b.d || (a.d == b.d && a.id < b.id)
}

// spHeap is a hand-rolled binary min-heap over spItems (no interface
// boxing; the slice is per-worker scratch reused across sources).
type spHeap []spItem

func (h *spHeap) push(it spItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !spLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *spHeap) pop() spItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && spLess(s[l], s[min]) {
			min = l
		}
		if r < last && spLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// dijkstra fills dist (one row of the all-pairs matrix, length c.n)
// with left-fold shortest-path sums from src, leaving unreachable
// nodes at exactly Inf. Lazy-deletion variant: stale heap entries are
// skipped on pop. heap is caller-owned scratch.
func dijkstra(c *csr, src int32, dist []float64, heap *spHeap) {
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	*heap = (*heap)[:0]
	heap.push(spItem{d: 0, id: src})
	for len(*heap) > 0 {
		it := heap.pop()
		if it.d > dist[it.id] {
			continue // stale entry superseded by a shorter path
		}
		for e := c.head[it.id]; e < c.head[it.id+1]; e++ {
			v := c.to[e]
			if nd := it.d + c.w[e]; nd < dist[v] {
				dist[v] = nd
				heap.push(spItem{d: nd, id: v})
			}
		}
	}
}

// parallelGrain is the minimum amount of per-item work (in rough
// "inner operations" units) below which parallelFor stays serial: the
// paper-scale 63-node rebuilds that dominate sweep grids must not pay
// goroutine scheduling for microsecond loops.
const parallelGrain = 1 << 17

// maxWorkers is the widest fan-out parallelFor will use, so callers
// can pre-size per-worker scratch before spawning anything. Callers
// must pass the same value to parallelFor rather than re-reading
// GOMAXPROCS there — a concurrent GOMAXPROCS change between sizing
// and fan-out would otherwise hand workers out-of-range indices.
func maxWorkers() int { return runtime.GOMAXPROCS(0) }

// parallelFor splits [0,items) into one contiguous chunk per worker
// and runs fn(worker, lo, hi) concurrently with worker < workers
// (the caller's scratch bound). totalWork below parallelGrain (or a
// single worker) runs inline. fn must write only to item-indexed
// state, which makes the result independent of scheduling.
func parallelFor(workers, items, totalWork int, fn func(worker, lo, hi int)) {
	if workers > items {
		workers = items
	}
	if workers <= 1 || totalWork < parallelGrain {
		fn(0, 0, items)
		return
	}
	chunk := (items + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= items {
			break
		}
		hi := lo + chunk
		if hi > items {
			hi = items
		}
		wg.Add(1)
		//scoop:allow goroutine fork-join over disjoint row ranges; wg.Wait joins before any result is read
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// solveAllPairs runs per-source Dijkstra for every row of the matrix.
// rows must hold adj.n slices of length adj.n; heaps grows to one
// scratch heap per worker. Workers write disjoint rows, so the result
// is scheduling-independent.
func solveAllPairs(adj *csr, rows [][]float64, heaps *[]spHeap) {
	n := adj.n
	maxW := maxWorkers()
	if cap(*heaps) < maxW {
		*heaps = make([]spHeap, maxW)
	}
	*heaps = (*heaps)[:maxW]
	// Rough per-source cost: one heap operation per edge plus the row
	// init; n sources total.
	work := n * (len(adj.to) + n)
	parallelFor(maxW, n, work, func(worker, lo, hi int) {
		heap := &(*heaps)[worker]
		for src := lo; src < hi; src++ {
			dijkstra(adj, int32(src), rows[src], heap)
		}
	})
}

// xbuf is one all-pairs distance matrix: a flat backing array plus its
// row views. The Builder double-buffers two of these so the previous
// rebuild's matrix survives for dirty-row comparison.
type xbuf struct {
	flat []float64
	rows [][]float64
}

// ensure sizes the buffer for an n-node matrix, reusing backing
// storage when possible.
func (x *xbuf) ensure(n int) {
	if cap(x.flat) < n*n {
		x.flat = make([]float64, n*n)
	}
	x.flat = x.flat[:n*n]
	if cap(x.rows) < n {
		x.rows = make([][]float64, n)
	}
	x.rows = x.rows[:n]
	for i := 0; i < n; i++ {
		x.rows[i] = x.flat[i*n : (i+1)*n : (i+1)*n]
	}
}

// spSolver runs the sparse all-pairs pass with reusable scratch: the
// CSR arrays, the flat distance matrix, and one heap per worker.
type spSolver struct {
	adj   csr
	buf   xbuf
	heaps []spHeap
}

// allPairs computes the full xmits matrix for g. The returned row
// slices view the solver's flat buffer and are invalidated by the next
// call.
func (s *spSolver) allPairs(g *Graph) [][]float64 {
	s.adj.build(g)
	s.buf.ensure(g.N)
	solveAllPairs(&s.adj, s.buf.rows, &s.heaps)
	return s.buf.rows
}
