package index

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"scoop/internal/dynamics"
	"scoop/internal/histogram"
	"scoop/internal/netsim"
)

// naiveOwners is the pre-overhaul reference: the paper's Figure 2 loop
// over BuildInput.Cost with no contributor table, no incremental state
// and no parallelism. The incremental Builder must reproduce it bit
// for bit (same xmits matrix in, same owners out).
func naiveOwners(in BuildInput) []netsim.NodeID {
	owners := make([]netsim.NodeID, in.domainSize())
	prev := netsim.NodeID(0)
	hasPrev := false
	for i := range owners {
		v := in.MinValue + i
		best := in.Base
		bestCost := in.Cost(in.Base, v)
		for o := 0; o < in.N; o++ {
			oid := netsim.NodeID(o)
			if oid == in.Base {
				continue
			}
			if c := in.Cost(oid, v); c < bestCost {
				best, bestCost = oid, c
			}
		}
		if hasPrev && prev != best {
			if c := in.Cost(prev, v); c <= bestCost*(1+contiguityTolerance) {
				best = prev
			}
		}
		owners[i] = best
		prev, hasPrev = best, true
	}
	return owners
}

// world is the mutable scenario the property test evolves: per-node
// sampling stats and a live link-quality map, from which each step's
// Graph and BuildInput are regenerated.
type world struct {
	n        int
	domain   int
	rates    []float64
	centers  []int // histogram centers; -1 = node down
	links    map[[2]int]float64
	qCenter  float64
	qRate    float64
	r        *rand.Rand
	g        *Graph // reused across steps, like the basestation's
	hists    []histogram.Histogram
	histDirt []bool
}

func newWorld(n, domain int, seed int64) *world {
	w := &world{
		n: n, domain: domain,
		rates:    make([]float64, n),
		centers:  make([]int, n),
		links:    make(map[[2]int]float64),
		qCenter:  0.5,
		qRate:    1.0 / 15,
		r:        rand.New(rand.NewSource(seed)),
		g:        NewGraph(n),
		hists:    make([]histogram.Histogram, n),
		histDirt: make([]bool, n),
	}
	for i := 1; i < n; i++ {
		w.rates[i] = 1.0 / 15
		w.centers[i] = w.r.Intn(domain)
		w.histDirt[i] = true
	}
	for i := 0; i < n; i++ {
		deg := 3 + w.r.Intn(4)
		for d := 0; d < deg; d++ {
			j := w.r.Intn(n)
			if j != i {
				w.links[[2]int{i, j}] = 0.2 + 0.75*w.r.Float64()
			}
		}
	}
	return w
}

// input regenerates the Graph (via Reset, like core.Base) and the
// BuildInput for the current world state.
func (w *world) input() BuildInput {
	w.g.Reset()
	// Deterministic link order (map iteration is randomized).
	keys := make([][2]int, 0, len(w.links))
	for k := range w.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		return keys[a][0] < keys[b][0] ||
			(keys[a][0] == keys[b][0] && keys[a][1] < keys[b][1])
	})
	for _, k := range keys {
		if w.centers[k[0]] < 0 || w.centers[k[1]] < 0 {
			continue // dead endpoints report no links
		}
		w.g.Report(netsim.NodeID(k[0]), netsim.NodeID(k[1]), w.links[k])
	}
	nodes := make([]NodeStat, w.n)
	for i := 1; i < w.n; i++ {
		if w.centers[i] < 0 {
			continue
		}
		if w.histDirt[i] {
			vals := make([]int, 20)
			for k := range vals {
				v := w.centers[i] + k%11 - 5
				if v < 0 {
					v = 0
				}
				if v >= w.domain {
					v = w.domain - 1
				}
				vals[k] = v
			}
			w.hists[i] = histogram.Build(vals, 10)
			w.histDirt[i] = false
		}
		nodes[i] = NodeStat{Hist: w.hists[i], Rate: w.rates[i]}
	}
	prob := make([]float64, w.domain)
	lo := int(w.qCenter*float64(w.domain)) - w.domain/10
	for v := lo; v < lo+w.domain/5; v++ {
		if v >= 0 && v < w.domain {
			prob[v] = 5.0 / float64(w.domain)
		}
	}
	return BuildInput{
		N: w.n, Base: 0,
		Nodes:    nodes,
		Query:    QueryProfile{Rate: w.qRate, MinValue: 0, Prob: prob},
		MinValue: 0, MaxValue: w.domain - 1,
	}
}

// apply maps a dynamics event onto the world, the same perturbation
// vocabulary the churn/drift engine injects into live runs.
func (w *world) apply(e dynamics.Event) {
	switch e.Kind {
	case dynamics.NodeDown:
		if int(e.Node) < w.n {
			w.centers[e.Node] = -1
		}
	case dynamics.NodeUp:
		if int(e.Node) < w.n {
			w.centers[e.Node] = w.r.Intn(w.domain)
			w.histDirt[e.Node] = true
		}
	case dynamics.DataShift:
		shift := int(e.Value * float64(w.domain))
		for i := 1; i < w.n; i++ {
			if w.centers[i] < 0 {
				continue
			}
			c := w.centers[i] + shift
			if c < 0 {
				c = 0
			}
			if c >= w.domain {
				c = w.domain - 1
			}
			if c != w.centers[i] {
				w.centers[i] = c
				w.histDirt[i] = true
			}
		}
	case dynamics.QueryShift:
		w.qCenter = e.Value
	case dynamics.NetLoss:
		for k, q := range w.links {
			w.links[k] = q * (1 - e.Value)
		}
	case dynamics.LinkLoss:
		k := [2]int{int(e.Src) % w.n, int(e.Dst) % w.n}
		if q, ok := w.links[k]; ok {
			w.links[k] = q * (1 - e.Value)
		}
	}
}

// TestBuilderMatchesScratch is the incremental-rebuild property test:
// across randomized churn/drift event sequences (built by the
// internal/dynamics script generator), every rebuild of a warm Builder
// must produce exactly the owners a from-scratch naive build computes
// from the same inputs — including the steps where nothing changed at
// all and the builder recomputes nothing.
func TestBuilderMatchesScratch(t *testing.T) {
	sawIncremental, sawZeroDirty, sawSPTSkip := false, false, false
	for seed := int64(1); seed <= 6; seed++ {
		n := 16 + int(seed)*7
		w := newWorld(n, 60, seed)
		script := dynamics.Standard(n, 60_000, 1_200_000, 0.2, 0.5, seed)
		var b Builder
		events := script.Events
		// Process events in batches, with repeated no-change rebuilds
		// interleaved so the zero-dirty fast path is exercised too.
		step := 0
		for len(events) > 0 || step < 3 {
			batch := 0
			if len(events) > 0 {
				batch = 1 + w.r.Intn(3)
				if batch > len(events) {
					batch = len(events)
				}
				for _, e := range events[:batch] {
					w.apply(e)
				}
				events = events[batch:]
			}
			step++

			in := w.input()
			in.Graph = w.g
			got := append([]netsim.NodeID(nil), b.BuildOwners(&in)...)
			st := b.LastStats()

			ref := in
			ref.Graph = nil
			ref.Xmits = copyRows(in.Xmits)
			want := naiveOwners(ref)

			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d step %d: incremental owner[%d] = %d, scratch = %d (recomputed %d/%d, full=%v)",
						seed, step, i, got[i], want[i], st.Recomputed, st.Values, st.FullRebuild)
				}
			}
			if !st.FullRebuild && st.Recomputed < st.Values {
				sawIncremental = true
			}
			if st.Recomputed == 0 {
				sawZeroDirty = true
			}
			if st.SPTSources == 0 {
				sawSPTSkip = true
			}
		}
	}
	if !sawIncremental {
		t.Error("no step exercised a partial (incremental) recompute")
	}
	if !sawZeroDirty {
		t.Error("no step exercised the zero-dirty fast path")
	}
	if !sawSPTSkip {
		t.Error("no step skipped the shortest-path pass on an unchanged graph")
	}
}

// TestBuilderFullRebuildOnShapeChange: a network-size or domain change
// must abandon incremental state.
func TestBuilderFullRebuildOnShapeChange(t *testing.T) {
	w := newWorld(20, 40, 3)
	var b Builder
	in := w.input()
	in.Graph = w.g
	b.BuildOwners(&in)
	if !b.LastStats().FullRebuild {
		t.Fatal("first build must be full")
	}
	in2 := w.input()
	in2.Graph = w.g
	b.BuildOwners(&in2)
	if b.LastStats().FullRebuild {
		t.Fatal("unchanged rebuild reported full")
	}
	w2 := newWorld(24, 40, 4)
	in3 := w2.input()
	in3.Graph = w2.g
	got := append([]netsim.NodeID(nil), b.BuildOwners(&in3)...)
	if !b.LastStats().FullRebuild {
		t.Fatal("network-size change did not force a full rebuild")
	}
	ref := in3
	ref.Graph = nil
	ref.Xmits = copyRows(in3.Xmits)
	want := naiveOwners(ref)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("owner[%d] after shape change = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestBuilderChooseIndexMatchesPackage: the builder's fused
// choose-index path must agree with the package-level one.
func TestBuilderChooseIndexMatchesPackage(t *testing.T) {
	for seed := int64(10); seed < 16; seed++ {
		w := newWorld(14, 30, seed)
		in := w.input()
		in.Graph = w.g
		var b Builder
		got := b.ChooseIndex(5, &in)

		ref := w.input()
		ref.Xmits = copyRows(w.g.Xmits())
		want := ChooseIndex(5, ref)
		if got.Local != want.Local || len(got.Entries) != len(want.Entries) {
			t.Fatalf("seed %d: builder ChooseIndex %v, package %v", seed, got, want)
		}
		for i := range want.Entries {
			if got.Entries[i] != want.Entries[i] {
				t.Fatalf("seed %d: entry %d differs: %v vs %v", seed, i, got.Entries[i], want.Entries[i])
			}
		}
	}
}

// TestBuilderDirtyEpsilon: with a loose epsilon, sub-threshold weight
// jitter must not dirty any value's argmin search (the contiguity
// pass still re-runs against fresh costs, so individual range borders
// may shift — the documented approximation), while a structural change
// must still dirty its values.
func TestBuilderDirtyEpsilon(t *testing.T) {
	w := newWorld(20, 40, 9)
	var b Builder
	b.DirtyEpsilon = 0.05
	in := w.input()
	in.Graph = w.g
	b.BuildOwners(&in)

	// Jitter every rate by 1% — far below the 5% epsilon.
	for i := 1; i < w.n; i++ {
		w.rates[i] *= 1.01
	}
	in2 := w.input()
	in2.Graph = w.g
	second := append([]netsim.NodeID(nil), b.BuildOwners(&in2)...)
	if st := b.LastStats(); st.Recomputed != 0 {
		t.Fatalf("sub-epsilon jitter recomputed %d values", st.Recomputed)
	}
	for i, o := range second {
		if int(o) >= w.n {
			t.Fatalf("value %d assigned to nonexistent owner %d", i, o)
		}
	}

	// A structural change (node death) must still dirty its values.
	w.centers[3] = -1
	in3 := w.input()
	in3.Graph = w.g
	b.BuildOwners(&in3)
	if st := b.LastStats(); st.Recomputed == 0 {
		t.Fatal("node death dirtied nothing")
	}
}

// TestBuilderGOMAXPROCSDeterminism pins the parallel owner search: a
// scenario big enough that both the SPT fan-out and the dirty-value
// argmin clear the parallel grain must build bit-identical owners at
// GOMAXPROCS=1 and GOMAXPROCS=8 (forced, so single-core CI still
// exercises the concurrent path).
func TestBuilderGOMAXPROCSDeterminism(t *testing.T) {
	run := func(procs int) []netsim.NodeID {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		w := newWorld(300, 151, 21)
		var b Builder
		in := w.input()
		in.Graph = w.g
		first := append([]netsim.NodeID(nil), b.BuildOwners(&in)...)
		// One incremental step too, so the dirty argmin path is pinned
		// as well as the full one.
		for i := 1; i < 20; i++ {
			w.centers[i] = (w.centers[i] + 30) % w.domain
			w.histDirt[i] = true
		}
		in2 := w.input()
		in2.Graph = w.g
		return append(first, b.BuildOwners(&in2)...)
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("owner %d differs across GOMAXPROCS: %d vs %d", i, serial[i], parallel[i])
		}
	}
}

func copyRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), r...)
	}
	return out
}
