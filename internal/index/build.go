package index

import (
	"scoop/internal/histogram"
	"scoop/internal/netsim"
)

// NodeStat is the basestation's last-known statistics for one node:
// the summary histogram over its recent readings and its data
// production rate (paper §5.2). Nodes whose summaries were all lost
// keep the zero value; the algorithm then knows nothing about what
// they produce, exactly as in the paper.
type NodeStat struct {
	Hist histogram.Histogram
	Rate float64 // readings produced per second
}

// QueryProfile models the query workload the basestation has observed:
// the query rate and, per value, the probability that a query's range
// covers that value (paper §5.5: "the basestation updates its
// statistics that keep track of the query rate, and which attributes
// and what value ranges get queried").
type QueryProfile struct {
	Rate     float64   // queries issued per second
	MinValue int       // domain start for Prob
	Prob     []float64 // Prob[v-MinValue] = P(user queries v)
}

// ProbOf returns P(user queries v).
func (q QueryProfile) ProbOf(v int) float64 {
	i := v - q.MinValue
	if i < 0 || i >= len(q.Prob) {
		return 0
	}
	return q.Prob[i]
}

// BuildInput carries everything the indexing algorithm consumes.
type BuildInput struct {
	N    int           // network size including base
	Base netsim.NodeID // basestation (node 0 in Scoop)
	// Nodes holds the last-known statistics, indexed by NodeID; a
	// zero entry means no summary has arrived from that node. A dense
	// slice (not a map) keeps cost summation order deterministic.
	Nodes []NodeStat
	Query QueryProfile
	// Xmits is the all-pairs expected-transmission matrix. Callers
	// may leave it nil and set Graph instead; the build then runs the
	// sparse shortest-path pass itself (with a Builder, reusing its
	// scratch) and fills Xmits in.
	Xmits    [][]float64
	Graph    *Graph
	MinValue int // attribute value domain, inclusive
	MaxValue int
}

// domainSize returns the number of values under consideration.
func (in BuildInput) domainSize() int { return in.MaxValue - in.MinValue + 1 }

// Cost returns the expected number of messages per second if value v
// is stored at owner o — the inner computation of the paper's Figure 2:
//
//	cost(o,v) = Σ_p P(p produces v)·rate_p·xmits(p→o)
//	          + P(user queries v)·queryRate·xmits(base→o→base)
func (in BuildInput) Cost(o netsim.NodeID, v int) float64 {
	cost := 0.0
	for p := range in.Nodes {
		st := &in.Nodes[p]
		prob := st.Hist.Prob(v)
		if prob == 0 || st.Rate == 0 || netsim.NodeID(p) == o {
			continue
		}
		x := in.Xmits[p][o]
		if x >= Inf {
			return Inf
		}
		cost += prob * st.Rate * x
	}
	if qp := in.Query.ProbOf(v); qp > 0 && in.Query.Rate > 0 && o != in.Base {
		x := RoundTrip(in.Xmits, in.Base, o)
		if x >= Inf {
			return Inf
		}
		cost += qp * in.Query.Rate * x
	}
	return cost
}

// contiguityTolerance lets the previous value's owner keep the next
// value when it is within this fraction of the optimum. Neighbouring
// values usually have near-identical costs (the same nodes produce
// them), and breaking those ties arbitrarily fragments the index into
// many tiny ranges — defeating range compaction (paper §5.3), data
// batching (§5.4) and single-owner range queries (§4, "range
// extensions"). A small tolerance yields the compact contiguous
// indices shown in the paper's Figure 1 at negligible cost.
const contiguityTolerance = 0.08

// contribTable is BuildOwners' precomputed view of who produces what:
// for each value, the producers with non-zero probability and rate, in
// ascending producer order, with weight prob·rate. The naive algorithm
// rescans every node's histogram for every (owner, value) pair —
// O(V·n²) histogram probes — which is what made 1000-node index
// builds the simulation bottleneck. Since term order and the
// prob·rate·x association are preserved, the computed costs are
// floating-point identical to the naive scan.
type contribTable struct {
	off     []int32 // CSR offsets per value index
	prods   []int32
	weights []float64 // prob(v)·rate per (value, producer)
}

// build fills the table from the input's histograms, reusing the
// receiver's slices across rebuilds (the Builder double-buffers two
// tables so the previous build's weights survive for dirty diffing).
func (t *contribTable) build(in *BuildInput) {
	V := in.domainSize()
	if cap(t.off) < V+1 {
		t.off = make([]int32, V+1)
	}
	t.off = t.off[:V+1]
	t.off[0] = 0
	t.prods = t.prods[:0]
	t.weights = t.weights[:0]
	for i := 0; i < V; i++ {
		v := in.MinValue + i
		for p := range in.Nodes {
			st := &in.Nodes[p]
			prob := st.Hist.Prob(v)
			if prob == 0 || st.Rate == 0 {
				continue
			}
			t.prods = append(t.prods, int32(p))
			t.weights = append(t.weights, prob*st.Rate)
		}
		t.off[i+1] = int32(len(t.prods))
	}
}

// cost mirrors BuildInput.Cost over the precomputed contributors.
func (t *contribTable) cost(in *BuildInput, o netsim.NodeID, vi int) float64 {
	c := 0.0
	for k := t.off[vi]; k < t.off[vi+1]; k++ {
		p := t.prods[k]
		if netsim.NodeID(p) == o {
			continue
		}
		x := in.Xmits[p][o]
		if x >= Inf {
			return Inf
		}
		c += t.weights[k] * x
	}
	if qp := in.Query.ProbOf(in.MinValue + vi); qp > 0 && in.Query.Rate > 0 && o != in.Base {
		x := RoundTrip(in.Xmits, in.Base, o)
		if x >= Inf {
			return Inf
		}
		c += qp * in.Query.Rate * x
	}
	return c
}

// BuildOwners runs the paper's indexing algorithm: for every value in
// the domain, try every node (including the basestation) as owner and
// keep the cheapest. Exact ties break toward the previous value's
// owner, then toward the lower node ID, so results are deterministic
// and compact.
//
// The paper's complexity is O(V·n²) (V values, n owners, n
// producers); the implementation visits only producers that actually
// emit each value (contribTable) and, through a Builder, only values
// whose cost inputs changed since the last build. This one-shot form
// runs a throwaway Builder; the basestation keeps a warm one.
func BuildOwners(in BuildInput) []netsim.NodeID {
	var b Builder
	return append([]netsim.NodeID(nil), b.BuildOwners(&in)...)
}

// Build runs BuildOwners and compacts the result into an Index with
// the given generation ID.
func Build(id uint16, in BuildInput) *Index {
	var b Builder
	return b.Build(id, &in)
}

// EvaluateIndexCost returns the total expected messages per second of
// an arbitrary (non-local) index under the observed statistics —
// used to compare against the store-local alternative, to cost the
// analytical HASH baseline, and in ablation benches. The contributor
// table is built once for the whole evaluation instead of re-scanning
// every node's histogram per (owner, value) pair.
func EvaluateIndexCost(ix *Index, in BuildInput) float64 {
	in.fillXmits()
	var ct contribTable
	ct.build(&in)
	return evalIndexCost(&ct, ix, &in)
}

// fillXmits honors the BuildInput contract for direct cost queries:
// when the caller set Graph instead of Xmits, run the sparse pass.
func (in *BuildInput) fillXmits() {
	if in.Xmits == nil && in.Graph != nil {
		in.Xmits = in.Graph.Xmits()
	}
}

// evalIndexCost sums the per-value cost of the index's owner choices
// over a precomputed contributor table (FP-identical to the naive
// BuildInput.Cost scan).
func evalIndexCost(ct *contribTable, ix *Index, in *BuildInput) float64 {
	total := 0.0
	for i := 0; i < in.domainSize(); i++ {
		o, ok := ix.Owner(in.MinValue + i)
		if !ok {
			o = in.Base // unmapped values default to the base
		}
		c := ct.cost(in, o, i)
		if c >= Inf {
			return Inf
		}
		total += c
	}
	return total
}

// StoreLocalCost estimates the expected messages per second of the
// degenerate "store-local" policy: data costs nothing, but every query
// floods the network (≈ one broadcast per node under Trickle) and
// every node sends a reply up the tree (paper §4 and §6, LOCAL).
func StoreLocalCost(in BuildInput) float64 {
	if in.Query.Rate == 0 {
		return 0
	}
	in.fillXmits()
	flood := float64(in.N - 1) // every non-base node re-broadcasts once
	replies := 0.0
	for p := 0; p < in.N; p++ {
		if netsim.NodeID(p) == in.Base {
			continue
		}
		x := in.Xmits[p][in.Base]
		if x >= Inf {
			continue // unreachable nodes answer nothing
		}
		replies += x
	}
	return in.Query.Rate * (flood + replies)
}

// ChooseIndex builds the cost-optimal index and then compares it with
// the store-local alternative, returning the cheaper of the two
// (paper §4: "the basestation, therefore, also evaluates the expected
// cost of a 'store-local' storage index and uses it if the expected
// cost is lower"). Experiments that disable the fallback call Build
// directly. The evaluation shares the contributor table the owner
// search already built, so the comparison is free of redundant
// histogram scans.
func ChooseIndex(id uint16, in BuildInput) *Index {
	var b Builder
	return b.ChooseIndex(id, &in)
}
