package index

import (
	"sort"

	"scoop/internal/netsim"
)

// This file implements the extensions sketched in §4 of the paper:
//
//   - Owner sets: "pick multiple owners, i.e., an owner set, per
//     value, thus allowing nodes to pick one nearby node from multiple
//     owner candidates to store their data … a more feasible approach
//     is to consider only small owner sets." Producers store at their
//     cheapest member; queries must visit every member.
//   - Range placement: "modify the outer loop of the placement
//     algorithm to consider a fixed set of ranges rather than a fixed
//     set of values", trading per-value optimality for one-stop range
//     queries and bounded index size.

// OwnerSetCost returns the expected messages per second when value v
// is replicated on the owner set: each producer routes to its cheapest
// member, while a query must do a round trip to every member.
func OwnerSetCost(in BuildInput, set []netsim.NodeID, v int) float64 {
	if len(set) == 0 {
		return Inf
	}
	cost := 0.0
	for p := range in.Nodes {
		st := &in.Nodes[p]
		prob := st.Hist.Prob(v)
		if prob == 0 || st.Rate == 0 {
			continue
		}
		best := Inf
		for _, o := range set {
			if netsim.NodeID(p) == o {
				best = 0
				break
			}
			if x := in.Xmits[p][o]; x < best {
				best = x
			}
		}
		if best >= Inf {
			return Inf
		}
		cost += prob * st.Rate * best
	}
	if qp := in.Query.ProbOf(v); qp > 0 && in.Query.Rate > 0 {
		for _, o := range set {
			if o == in.Base {
				continue
			}
			x := RoundTrip(in.Xmits, in.Base, o)
			if x >= Inf {
				return Inf
			}
			cost += qp * in.Query.Rate * x
		}
	}
	return cost
}

// BuildOwnerSets runs the owner-set extension: for every value, start
// from the single cost-optimal owner and greedily add owners (up to
// maxOwners) while each addition strictly reduces the expected cost.
// Complexity O(V·n²·k) — the "small owner sets" restriction that keeps
// the naive exponential search tractable.
func BuildOwnerSets(in BuildInput, maxOwners int) [][]netsim.NodeID {
	if maxOwners < 1 {
		maxOwners = 1
	}
	owners := BuildOwners(in)
	sets := make([][]netsim.NodeID, len(owners))
	for i, first := range owners {
		v := in.MinValue + i
		set := []netsim.NodeID{first}
		cost := OwnerSetCost(in, set, v)
		for len(set) < maxOwners {
			bestCost := cost
			var bestAdd netsim.NodeID
			found := false
			for o := 0; o < in.N; o++ {
				oid := netsim.NodeID(o)
				if contains(set, oid) {
					continue
				}
				if c := OwnerSetCost(in, append(append([]netsim.NodeID(nil), set...), oid), v); c < bestCost {
					bestCost, bestAdd, found = c, oid, true
				}
			}
			if !found {
				break
			}
			set = append(set, bestAdd)
			cost = bestCost
		}
		sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
		sets[i] = set
	}
	return sets
}

// OwnerSetsTotalCost sums the expected cost over the domain for a
// BuildOwnerSets result, for comparison against the single-owner plan.
func OwnerSetsTotalCost(in BuildInput, sets [][]netsim.NodeID) float64 {
	total := 0.0
	for i, set := range sets {
		c := OwnerSetCost(in, set, in.MinValue+i)
		if c >= Inf {
			return Inf
		}
		total += c
	}
	return total
}

func contains(set []netsim.NodeID, id netsim.NodeID) bool {
	for _, s := range set {
		if s == id {
			return true
		}
	}
	return false
}

// BuildRangeOwners runs the range-placement extension: the domain is
// cut into fixed-width segments and each segment gets the single owner
// minimising the segment's summed cost. The result is an index with at
// most ⌈V/width⌉ entries, so any query narrower than width touches at
// most two nodes — at the price of concentrating a whole range's
// storage burden on one node (the trade-off §4 calls out).
func BuildRangeOwners(id uint16, in BuildInput, width int) *Index {
	if width < 1 {
		width = 1
	}
	owners := make([]netsim.NodeID, in.domainSize())
	for lo := 0; lo < len(owners); lo += width {
		hi := lo + width
		if hi > len(owners) {
			hi = len(owners)
		}
		best := in.Base
		bestCost := rangeCost(in, in.Base, lo, hi)
		for o := 0; o < in.N; o++ {
			oid := netsim.NodeID(o)
			if oid == in.Base {
				continue
			}
			if c := rangeCost(in, oid, lo, hi); c < bestCost {
				best, bestCost = oid, c
			}
		}
		for i := lo; i < hi; i++ {
			owners[i] = best
		}
	}
	return New(id, in.MinValue, owners)
}

func rangeCost(in BuildInput, o netsim.NodeID, lo, hi int) float64 {
	c := 0.0
	for i := lo; i < hi; i++ {
		vc := in.Cost(o, in.MinValue+i)
		if vc >= Inf {
			return Inf
		}
		c += vc
	}
	return c
}
