package index

import (
	"math/rand"
	"testing"

	"scoop/internal/histogram"
	"scoop/internal/netsim"
)

// paperScaleInput builds the index algorithm's input at the paper's
// scale: V≈150 values, n=63 nodes, full statistics.
func paperScaleInput(seed int64) BuildInput {
	r := rand.New(rand.NewSource(seed))
	n := 63
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && r.Float64() < 0.2 {
				g.Report(netsim.NodeID(i), netsim.NodeID(j), 0.2+0.7*r.Float64())
			}
		}
	}
	nodes := make([]NodeStat, n)
	for i := 1; i < n; i++ {
		vals := make([]int, 30)
		center := r.Intn(150)
		for k := range vals {
			vals[k] = clampInt(center+r.Intn(21)-10, 0, 150)
		}
		nodes[i] = NodeStat{Hist: histogram.Build(vals, 10), Rate: 1.0 / 15}
	}
	return BuildInput{
		N: n, Base: 0, Nodes: nodes,
		Query:    QueryProfile{Rate: 1.0 / 15, MinValue: 0, Prob: uniformProb(151)},
		Xmits:    g.Xmits(),
		MinValue: 0, MaxValue: 150,
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BenchmarkBuildPaperScale measures the O(V·n²) index construction at
// the paper's dimensions (V≈150, n=63) — the basestation's periodic
// workload, which the paper calls "very practical".
func BenchmarkBuildPaperScale(b *testing.B) {
	in := paperScaleInput(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(uint16(i+1), in)
	}
}

// BenchmarkBuild128Nodes measures construction at the protocol's hard
// network-size cap.
func BenchmarkBuild128Nodes(b *testing.B) {
	in := paperScaleInput(2)
	// Widen to 128 nodes by padding stats.
	r := rand.New(rand.NewSource(3))
	g := NewGraph(128)
	for i := 0; i < 128; i++ {
		for j := 0; j < 128; j++ {
			if i != j && r.Float64() < 0.15 {
				g.Report(netsim.NodeID(i), netsim.NodeID(j), 0.2+0.7*r.Float64())
			}
		}
	}
	nodes := make([]NodeStat, 128)
	copy(nodes, in.Nodes)
	for i := len(in.Nodes); i < 128; i++ {
		nodes[i] = in.Nodes[1+i%62]
	}
	in.N = 128
	in.Nodes = nodes
	in.Xmits = g.Xmits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(uint16(i+1), in)
	}
}

// rebuildBenchScenario builds an n-node ~12-degree graph plus full
// statistics, the reindex-pipeline comparison scenario (mirrors the
// perfbench index/rebuild shape).
func rebuildBenchScenario(n int, seed int64) (*Graph, BuildInput) {
	r := rand.New(rand.NewSource(seed))
	domain := 151
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for d := 0; d < 12; d++ {
			if j := r.Intn(n); j != i {
				g.Report(netsim.NodeID(i), netsim.NodeID(j), 0.2+0.75*r.Float64())
			}
		}
	}
	nodes := make([]NodeStat, n)
	for i := 1; i < n; i++ {
		vals := make([]int, 30)
		center := r.Intn(domain)
		for k := range vals {
			vals[k] = clampInt(center+k%21-10, 0, domain-1)
		}
		nodes[i] = NodeStat{Hist: histogram.Build(vals, 10), Rate: 1.0 / 15}
	}
	in := BuildInput{
		N: n, Base: 0, Nodes: nodes,
		Query:    QueryProfile{Rate: 1.0 / 15, MinValue: 0, Prob: uniformProb(domain)},
		MinValue: 0, MaxValue: domain - 1,
	}
	return g, in
}

// BenchmarkRebuildPipelineDense1000 measures the pre-overhaul
// basestation pipeline at the scale tier: dense Floyd–Warshall plus
// the naive per-(owner,value) cost scan — the baseline the ≥5×
// index/rebuild/n1000 speedup claim is measured against.
//
//	go test -bench 'RebuildPipeline' -benchtime 3x ./internal/index
func BenchmarkRebuildPipelineDense1000(b *testing.B) {
	g, in := rebuildBenchScenario(1000, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := in
		in.Xmits = g.XmitsDense()
		naiveOwners(in)
	}
}

// BenchmarkRebuildPipelineSparse1000 is the same full (cold) rebuild
// through the new pipeline — sparse SPT plus the contributor-table
// owner search — without incremental credit (fresh Builder per op;
// the steady-state warm path is perfbench's index/rebuild/n1000).
func BenchmarkRebuildPipelineSparse1000(b *testing.B) {
	g, in := rebuildBenchScenario(1000, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bl Builder
		in := in
		in.Graph = g
		bl.BuildOwners(&in)
	}
}

// BenchmarkXmitsAllPairs measures the Floyd–Warshall ETX pass alone.
func BenchmarkXmitsAllPairs(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	g := NewGraph(63)
	for i := 0; i < 63; i++ {
		for j := 0; j < 63; j++ {
			if i != j && r.Float64() < 0.2 {
				g.Report(netsim.NodeID(i), netsim.NodeID(j), 0.2+0.7*r.Float64())
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Xmits()
	}
}

// BenchmarkOwnerLookup measures the binary-search owner resolution on
// a realistic compacted index.
func BenchmarkOwnerLookup(b *testing.B) {
	ix := Build(1, paperScaleInput(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Owner(i % 151)
	}
}

// BenchmarkChunksAndAssemble measures the dissemination round trip.
func BenchmarkChunksAndAssemble(b *testing.B) {
	ix := Build(1, paperScaleInput(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		asm := NewAssembler()
		for _, c := range ix.Chunks(6) {
			asm.Offer(c)
		}
	}
}

// BenchmarkBuildOwnerSets measures the §4 owner-set extension (k=2).
func BenchmarkBuildOwnerSets(b *testing.B) {
	in := paperScaleInput(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildOwnerSets(in, 2)
	}
}

// BenchmarkBuildRangeOwners measures the §4 range-placement extension.
func BenchmarkBuildRangeOwners(b *testing.B) {
	in := paperScaleInput(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildRangeOwners(uint16(i+1), in, 10)
	}
}
