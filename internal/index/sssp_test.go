package index

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"scoop/internal/netsim"
)

// sparseGraph builds an n-node graph where each node reports roughly
// degree out-links — the shape real summaries produce (paper §5.2:
// ~12 best neighbors per node).
func sparseGraph(n, degree int, r *rand.Rand, quality func() float64) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for d := 0; d < degree; d++ {
			j := r.Intn(n)
			if j == i {
				continue
			}
			g.Report(netsim.NodeID(i), netsim.NodeID(j), quality())
		}
	}
	return g
}

// exactQuality draws qualities whose ETX edge costs are powers of two
// (1, 2, 4, 8): every path sum is exactly representable, so any
// parenthesisation of the same sum — Floyd–Warshall's or Dijkstra's —
// yields the same float64 bit pattern.
func exactQuality(r *rand.Rand) func() float64 {
	vals := []float64{1.0, 0.5, 0.25, 0.125}
	return func() float64 { return vals[r.Intn(len(vals))] }
}

// TestXmitsMatchesDenseExact: on graphs with exactly-representable
// edge costs the sparse pass must be bit-identical to Floyd–Warshall,
// including exact Inf for unreachable pairs and 0 diagonals.
func TestXmitsMatchesDenseExact(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(60)
		g := sparseGraph(n, 2+r.Intn(6), r, exactQuality(r))
		sparse := g.Xmits()
		dense := g.XmitsDense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if sparse[i][j] != dense[i][j] {
					t.Fatalf("seed %d: xmits[%d][%d] sparse %v != dense %v",
						seed, i, j, sparse[i][j], dense[i][j])
				}
			}
		}
	}
}

// TestXmitsMatchesDenseFloat: with arbitrary float qualities the two
// passes may parenthesise a path sum differently, so they are required
// to agree only to within a few ulps (1e-12 relative) — and exactly on
// reachability.
func TestXmitsMatchesDenseFloat(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(80)
		q := func() float64 { return 0.13 + 0.87*r.Float64() }
		g := sparseGraph(n, 2+r.Intn(8), r, q)
		sparse := g.Xmits()
		dense := g.XmitsDense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s, d := sparse[i][j], dense[i][j]
				if (s >= Inf) != (d >= Inf) {
					t.Fatalf("seed %d: reachability of [%d][%d] differs: sparse %v dense %v",
						seed, i, j, s, d)
				}
				if s >= Inf {
					continue
				}
				if diff := math.Abs(s - d); diff > 1e-12*math.Max(s, 1) {
					t.Fatalf("seed %d: xmits[%d][%d] sparse %v vs dense %v (diff %g)",
						seed, i, j, s, d, diff)
				}
			}
		}
	}
}

// TestXmitsDegenerate covers the edge shapes the solver must not trip
// on: an empty graph, a single node, and a fully unusable link set.
func TestXmitsDegenerate(t *testing.T) {
	if x := NewGraph(1).Xmits(); x[0][0] != 0 {
		t.Fatalf("single node self distance %v", x[0][0])
	}
	g := NewGraph(3)
	g.Report(0, 1, 0.05) // below minUsableQuality: no edge
	x := g.Xmits()
	if x[0][1] < Inf || x[1][2] < Inf {
		t.Fatal("unusable links produced finite distances")
	}
	if x[0][0] != 0 || x[1][1] != 0 || x[2][2] != 0 {
		t.Fatal("non-zero diagonal")
	}
}

// TestXmitsGOMAXPROCSDeterminism pins the parallel fan-out: the same
// graph must produce a bit-identical matrix at GOMAXPROCS=1 (serial)
// and GOMAXPROCS=8. GOMAXPROCS is forced to 8 — not left at the host
// default — so the concurrent path runs even on single-core CI. The
// graph is big enough to clear the parallel grain so the pool
// actually engages.
func TestXmitsGOMAXPROCSDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 400
	q := func() float64 { return 0.13 + 0.87*r.Float64() }
	g := sparseGraph(n, 12, r, q)

	prev := runtime.GOMAXPROCS(1)
	serial := snapshot(g.Xmits())
	runtime.GOMAXPROCS(8)
	parallel := snapshot(g.Xmits())
	runtime.GOMAXPROCS(prev)

	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("entry %d differs across GOMAXPROCS: serial %v parallel %v",
				i, serial[i], parallel[i])
		}
	}
}

// TestGraphReset verifies the reuse contract: a Reset graph behaves
// exactly like a fresh one.
func TestGraphReset(t *testing.T) {
	g := NewGraph(4)
	g.Report(0, 1, 0.9)
	g.Report(1, 2, 0.8)
	g.Reset()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if g.Quality[i][j] != 0 {
				t.Fatalf("Quality[%d][%d] = %v after Reset", i, j, g.Quality[i][j])
			}
		}
	}
	g.Report(0, 1, 0.5)
	if x := g.Xmits(); x[0][1] != 2 {
		t.Fatalf("xmits after Reset+Report = %v, want 2", x[0][1])
	}
}

func snapshot(rows [][]float64) []float64 {
	var out []float64
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}
