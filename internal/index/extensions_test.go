package index

import (
	"testing"
	"testing/quick"

	"scoop/internal/histogram"
	"scoop/internal/netsim"
)

// twoRegionInput models the case the owner-set extension targets:
// "multiple regions in the network exhibit similar data distributions".
// Nodes 1 and 3 sit at opposite ends of a chain and both produce the
// same values; replicating ownership at both ends should beat any
// single owner when queries are rare.
func twoRegionInput(qRate float64) BuildInput {
	h := histogram.Build([]int{5, 5, 6, 6, 7}, 5)
	nodes := make([]NodeStat, 4)
	nodes[1] = NodeStat{Hist: h, Rate: 2}
	nodes[3] = NodeStat{Hist: h, Rate: 2}
	return BuildInput{
		N: 4, Base: 0,
		Nodes:    nodes,
		Query:    QueryProfile{Rate: qRate, MinValue: 0, Prob: uniformProb(10)},
		Xmits:    chainGraph(0.8).Xmits(),
		MinValue: 0, MaxValue: 9,
	}
}

func TestOwnerSetsReplicateAcrossRegions(t *testing.T) {
	in := twoRegionInput(0.001)
	sets := BuildOwnerSets(in, 2)
	// Value 5 is produced equally at both ends; the 2-owner set should
	// contain both producers.
	set := sets[5]
	if len(set) != 2 || set[0] != 1 || set[1] != 3 {
		t.Fatalf("owner set for value 5 = %v, want [1 3]", set)
	}
	// And the replicated plan must be cheaper than the single-owner one.
	single := Build(1, in)
	singleCost := EvaluateIndexCost(single, in)
	setCost := OwnerSetsTotalCost(in, sets)
	if setCost >= singleCost {
		t.Fatalf("owner sets cost %.3f not below single-owner %.3f", setCost, singleCost)
	}
}

func TestOwnerSetsCollapseUnderHeavyQueries(t *testing.T) {
	// With frequent queries, each extra owner adds a query round trip;
	// the greedy search must stop at one owner.
	in := twoRegionInput(50)
	sets := BuildOwnerSets(in, 3)
	for v, set := range sets {
		if len(set) != 1 {
			t.Fatalf("value %d replicated to %v despite heavy queries", v, set)
		}
	}
}

func TestOwnerSetsRespectMax(t *testing.T) {
	in := twoRegionInput(0)
	for _, k := range []int{0, 1, 2} {
		sets := BuildOwnerSets(in, k)
		want := k
		if want < 1 {
			want = 1
		}
		for _, set := range sets {
			if len(set) > want {
				t.Fatalf("set %v exceeds max %d", set, want)
			}
		}
	}
}

// Property: adding owners via the greedy search never increases cost
// versus the single-owner optimum.
func TestOwnerSetsNeverWorseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		n := 5
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && r.Float64() < 0.7 {
					g.Report(netsim.NodeID(i), netsim.NodeID(j), 0.3+0.7*r.Float64())
				}
			}
		}
		nodes := make([]NodeStat, n)
		for i := 1; i < n; i++ {
			vals := make([]int, 6)
			for k := range vals {
				vals[k] = r.Intn(12)
			}
			nodes[i] = NodeStat{Hist: histogram.Build(vals, 4), Rate: r.Float64()}
		}
		in := BuildInput{
			N: n, Base: 0, Nodes: nodes,
			Query:    QueryProfile{Rate: r.Float64() * 0.1, MinValue: 0, Prob: uniformProb(12)},
			Xmits:    g.Xmits(),
			MinValue: 0, MaxValue: 11,
		}
		single := EvaluateIndexCost(Build(1, in), in)
		sets := OwnerSetsTotalCost(in, BuildOwnerSets(in, 3))
		if single >= Inf {
			return true
		}
		// Allow the contiguity tolerance plus float slack.
		return sets <= single*(1+contiguityTolerance)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRangePlacementBoundsEntries(t *testing.T) {
	in := buildInput(3, 1, 1)
	ix := BuildRangeOwners(1, in, 10)
	if len(ix.Entries) > 3 { // 30 values / width 10
		t.Fatalf("range placement produced %d entries, want ≤3", len(ix.Entries))
	}
	// Every 10-wide aligned range maps to a single owner.
	for lo := 0; lo < 30; lo += 10 {
		owners := ix.Owners(lo, lo+9)
		if len(owners) != 1 {
			t.Fatalf("range [%d,%d] has owners %v, want exactly one", lo, lo+9, owners)
		}
	}
}

func TestRangePlacementCostWithinFactorOfPerValue(t *testing.T) {
	in := buildInput(3, 1, 1)
	perValue := EvaluateIndexCost(Build(1, in), in)
	ranged := EvaluateIndexCost(BuildRangeOwners(2, in, 10), in)
	if ranged < perValue-1e-9 {
		t.Fatalf("range placement cheaper (%.4f) than per-value optimum (%.4f)?", ranged, perValue)
	}
	if ranged > perValue*3 {
		t.Fatalf("range placement cost %.4f blows up vs per-value %.4f", ranged, perValue)
	}
}

func TestRangePlacementWidthOne(t *testing.T) {
	// Width 1 degenerates to the per-value algorithm without the
	// contiguity preference.
	in := buildInput(3, 1, 1)
	ix := BuildRangeOwners(1, in, 1)
	for v := 0; v <= 29; v++ {
		o, ok := ix.Owner(v)
		if !ok {
			t.Fatalf("value %d unmapped", v)
		}
		c := in.Cost(o, v)
		for alt := 0; alt < in.N; alt++ {
			if in.Cost(netsim.NodeID(alt), v) < c-1e-12 {
				t.Fatalf("width-1 range placement suboptimal at %d", v)
			}
		}
	}
}

func TestOwnerSetCostEmptySet(t *testing.T) {
	in := twoRegionInput(1)
	if OwnerSetCost(in, nil, 5) < Inf {
		t.Fatal("empty owner set has finite cost")
	}
}
