package index

import (
	"math"
	"time"

	"scoop/internal/netsim"
	"scoop/internal/trace"
)

// BuildStats describes what one index rebuild actually did — the
// probe the basestation surfaces through core.RunStats so sweeps and
// perf tooling can report reindex cost.
type BuildStats struct {
	Values      int   // value-domain size of the build
	Recomputed  int   // values whose best-owner search re-ran
	SPTSources  int   // Dijkstra sources relaxed (0: link graph unchanged)
	Edges       int   // usable links in the sparse adjacency
	FullRebuild bool  // no usable previous state (or caller-provided xmits)
	WallNanos   int64 // wall-clock cost of the rebuild
}

// Builder is the basestation's reusable index-construction pipeline:
// the sparse shortest-path solver, the contributor tables and the
// per-value best-owner cache all live in scratch buffers that survive
// across rebuilds, so a steady-state reindex allocates (almost)
// nothing and recomputes only what changed.
//
// Between rebuilds the Builder tracks dirty values: a value's
// best-owner search re-runs only when its contributor weights, its
// query-profile entry, the query round-trip table, or the xmits row of
// one of its contributors changed beyond DirtyEpsilon. With the
// default epsilon of 0 ("changed at all"), the incremental result is
// bit-identical to a from-scratch BuildOwners — the property
// TestBuilderMatchesScratch pins. The sequential contiguity pass
// (which couples value i to value i-1's owner) always re-runs over the
// whole domain; only the parallelizable argmin search is skipped.
//
// The zero value is ready to use. A Builder must not be shared between
// goroutines.
type Builder struct {
	// DirtyEpsilon is the relative change below which contributor
	// weights, query probabilities and xmits entries count as
	// unchanged for dirty tracking. 0 means exact: any bit change
	// dirties the value, and incremental output is identical to a
	// full rebuild. Positive values trade exactness for fewer
	// recomputations under noisy link estimators; committed sweep
	// baselines all run with 0.
	DirtyEpsilon float64

	// Trace, when non-nil, receives ReindexBegin/ReindexEnd events
	// for every BuildOwners call. The wall-clock probe in BuildStats
	// never enters the trace (DESIGN.md §16): ReindexEnd carries only
	// the deterministic counters (Values, Recomputed, SPTSources,
	// FullRebuild).
	Trace *trace.Recorder

	// Sparse shortest-path state, double-buffered so the previous
	// matrix survives for row comparison.
	adj      [2]csr
	bufs     [2]xbuf
	cur      int // index of the buffer holding the latest xmits
	heaps    []spHeap
	haveAdj  bool // adj[cur] holds the previous build's graph
	external bool // last build used caller-provided xmits (no CSR state)

	// Cost-model state, double-buffered for dirty diffing.
	cts   [2]contribTable
	qprob [2][]float64
	qrate [2]float64
	rt    [2][]float64 // RoundTrip(base, o) per candidate owner

	// Per-value cache: the argmin owner and its cost from the last
	// build (pre-contiguity), and the final owner assignment.
	best     []netsim.NodeID
	bestCost []float64
	owners   []netsim.NodeID

	prevValid bool
	prevN     int
	prevBase  netsim.NodeID
	prevMin   int
	prevMax   int

	// Rebuild scratch.
	rowChanged []bool
	dirtyIdx   []int32
	costsW     [][]float64 // per-worker cost accumulators
	infsW      [][]bool    // per-worker unreachability flags
	ctFlip     int         // which cost-model buffer is current

	stats BuildStats
}

// LastStats reports what the most recent rebuild did.
func (b *Builder) LastStats() BuildStats { return b.stats }

// Build runs the incremental pipeline and compacts the result into an
// Index. in.Xmits may be nil when in.Graph is set; the builder then
// computes the matrix itself (and fills in.Xmits for the caller's
// follow-up cost evaluations).
func (b *Builder) Build(id uint16, in *BuildInput) *Index {
	return New(id, in.MinValue, b.BuildOwners(in))
}

// ChooseIndex builds the cost-optimal index and compares it with the
// store-local alternative (paper §4), like the package-level
// ChooseIndex but with every cost drawn from the builder's precomputed
// contributor table.
func (b *Builder) ChooseIndex(id uint16, in *BuildInput) *Index {
	ix := b.Build(id, in)
	if StoreLocalCost(*in) < b.evaluate(ix, in) {
		return NewLocal(id)
	}
	return ix
}

// evaluate is EvaluateIndexCost over the builder's current contributor
// table (valid until the next BuildOwners call).
func (b *Builder) evaluate(ix *Index, in *BuildInput) float64 {
	return evalIndexCost(&b.cts[b.ctCur()], ix, in)
}

// BuildOwners computes the owner assignment for the current input,
// recomputing only dirty values when previous state is compatible.
// The returned slice is builder-owned scratch, invalidated by the
// next call.
func (b *Builder) BuildOwners(in *BuildInput) []netsim.NodeID {
	start := time.Now() //scoop:allow walltime BuildStats wall probe, json:"-" everywhere — never enters artifacts (DESIGN.md §14)
	n := in.N
	V := in.domainSize()
	b.stats = BuildStats{Values: V}
	b.Trace.Emit(trace.Event{Kind: trace.ReindexBegin, Node: uint16(in.Base), Value: int64(V)})

	full := !b.prevValid || b.prevN != n || b.prevBase != in.Base ||
		b.prevMin != in.MinValue || b.prevMax != in.MaxValue

	// 1. Shortest paths. Caller-provided matrices bypass the sparse
	// solver entirely (one-shot use from tests and the analytical
	// policies); row history is then unusable, so everything dirties.
	rowsChangedAny := false
	if in.Xmits == nil && in.Graph == nil {
		panic("index: BuildInput needs either Xmits or Graph")
	}
	if in.Xmits != nil {
		full = true
		b.external = true
		b.haveAdj = false
	} else {
		if b.external {
			full = true
			b.external = false
		}
		next := 1 - b.cur
		b.adj[next].build(in.Graph)
		b.stats.Edges = len(b.adj[next].to)
		if !full && b.haveAdj && b.adj[next].equal(&b.adj[b.cur]) {
			// Link graph unchanged: the previous matrix is still
			// exact, every xmits row is clean, no SPT work.
		} else {
			b.bufs[next].ensure(n)
			solveAllPairs(&b.adj[next], b.bufs[next].rows, &b.heaps)
			b.stats.SPTSources = n
			if !full {
				rowsChangedAny = b.diffRows(n)
			}
			b.cur = next
		}
		b.haveAdj = true
		in.Xmits = b.bufs[b.cur].rows
	}

	// 2. Cost-model inputs: contributor table, query profile, query
	// round trips — all double-buffered for the dirty diff.
	b.swapCostModel(in, n, V)

	// 3. Dirty set. A topology-scale change — more than half the
	// domain dirty — is promoted to a full rebuild: the bookkeeping
	// buys nothing and the result is identical either way.
	b.dirtyIdx = b.dirtyIdx[:0]
	if !full {
		b.collectDirty(V, rowsChangedAny)
		if 2*len(b.dirtyIdx) > V {
			full = true
			b.dirtyIdx = b.dirtyIdx[:0]
		}
	}
	if full {
		for i := 0; i < V; i++ {
			b.dirtyIdx = append(b.dirtyIdx, int32(i))
		}
	}
	b.stats.FullRebuild = full
	b.stats.Recomputed = len(b.dirtyIdx)

	// 4. Parallel per-value best-owner search over the dirty set.
	if cap(b.best) < V {
		b.best = make([]netsim.NodeID, V)
		b.bestCost = make([]float64, V)
		b.owners = make([]netsim.NodeID, V)
	}
	b.best, b.bestCost, b.owners = b.best[:V], b.bestCost[:V], b.owners[:V]
	b.argminDirty(in, n)

	// 5. Sequential contiguity pass (paper §5.3 range compaction).
	ct := &b.cts[b.ctCur()]
	prev := netsim.NodeID(0)
	hasPrev := false
	for i := 0; i < V; i++ {
		best, bestCost := b.best[i], b.bestCost[i]
		if hasPrev && prev != best {
			if c := ct.cost(in, prev, i); c <= bestCost*(1+contiguityTolerance) {
				best = prev
			}
		}
		b.owners[i] = best
		prev, hasPrev = best, true
	}

	b.prevValid, b.prevN, b.prevBase = true, n, in.Base
	b.prevMin, b.prevMax = in.MinValue, in.MaxValue
	b.stats.WallNanos = time.Since(start).Nanoseconds() //scoop:allow walltime BuildStats wall probe, json:"-" everywhere — never enters artifacts (DESIGN.md §14)
	if b.Trace != nil {
		flag := uint8(0)
		if full {
			flag = 1
		}
		b.Trace.Emit(trace.Event{Kind: trace.ReindexEnd, Node: uint16(in.Base), Flag: flag,
			Size: int32(V), Value: int64(b.stats.Recomputed), Aux: int64(b.stats.SPTSources)})
	}
	return b.owners
}

// diffRows compares the fresh xmits matrix against the previous one
// row by row, filling rowChanged and reporting whether anything
// changed at all.
func (b *Builder) diffRows(n int) bool {
	if cap(b.rowChanged) < n {
		b.rowChanged = make([]bool, n)
	}
	b.rowChanged = b.rowChanged[:n]
	next, old := b.bufs[1-b.cur].flat, b.bufs[b.cur].flat
	any := false
	for p := 0; p < n; p++ {
		changed := false
		row, prow := next[p*n:(p+1)*n], old[p*n:(p+1)*n]
		for j := range row {
			if changedBeyond(row[j], prow[j], b.DirtyEpsilon) {
				changed = true
				break
			}
		}
		b.rowChanged[p] = changed
		any = any || changed
	}
	return any
}

// swapCostModel rebuilds the contributor table, query-probability row
// and round-trip table into the spare buffers, making the previous
// build's versions available for the dirty diff.
func (b *Builder) swapCostModel(in *BuildInput, n, V int) {
	k := b.ctCur() ^ 1
	b.cts[k].build(in)
	if cap(b.qprob[k]) < V {
		b.qprob[k] = make([]float64, V)
	}
	b.qprob[k] = b.qprob[k][:V]
	for i := 0; i < V; i++ {
		b.qprob[k][i] = in.Query.ProbOf(in.MinValue + i)
	}
	b.qrate[k] = in.Query.Rate
	if cap(b.rt[k]) < n {
		b.rt[k] = make([]float64, n)
	}
	b.rt[k] = b.rt[k][:n]
	for o := 0; o < n; o++ {
		b.rt[k][o] = RoundTrip(in.Xmits, in.Base, netsim.NodeID(o))
	}
	b.ctFlip ^= 1
}

// collectDirty appends every value whose cost inputs changed since the
// previous build. rtAll short-circuits the per-owner round-trip check:
// the argmin scans every candidate owner, so any changed round trip
// dirties every queried value.
func (b *Builder) collectDirty(V int, rowsChangedAny bool) {
	k := b.ctCur()
	cur, old := &b.cts[k], &b.cts[k^1]
	qp, qpOld := b.qprob[k], b.qprob[k^1]
	rateChanged := changedBeyond(b.qrate[k], b.qrate[k^1], b.DirtyEpsilon)
	rtChanged := false
	if len(b.rt[k]) != len(b.rt[k^1]) {
		rtChanged = true
	} else {
		for o := range b.rt[k] {
			if changedBeyond(b.rt[k][o], b.rt[k^1][o], b.DirtyEpsilon) {
				rtChanged = true
				break
			}
		}
	}
	for i := 0; i < V; i++ {
		if b.valueDirty(i, cur, old, qp, qpOld, rateChanged, rtChanged, rowsChangedAny) {
			b.dirtyIdx = append(b.dirtyIdx, int32(i))
		}
	}
}

func (b *Builder) valueDirty(i int, cur, old *contribTable, qp, qpOld []float64,
	rateChanged, rtChanged, rowsChangedAny bool) bool {
	// Query-profile entry changed (including appearing/disappearing).
	if changedBeyond(qp[i], qpOld[i], b.DirtyEpsilon) {
		return true
	}
	queried := qp[i] > 0 && b.qrate[b.ctCur()] > 0
	if queried && (rateChanged || rtChanged) {
		return true
	}
	if !queried && rateChanged && qp[i] > 0 {
		// Rate flipped between zero and non-zero: the query term
		// appeared or vanished.
		return true
	}
	// Contributor list or weights changed.
	clo, chi := cur.off[i], cur.off[i+1]
	olo, ohi := old.off[i], old.off[i+1]
	if chi-clo != ohi-olo {
		return true
	}
	for k := int32(0); k < chi-clo; k++ {
		if cur.prods[clo+k] != old.prods[olo+k] ||
			changedBeyond(cur.weights[clo+k], old.weights[olo+k], b.DirtyEpsilon) {
			return true
		}
	}
	// A contributor's xmits row changed: its term moves for some owner.
	if rowsChangedAny {
		for k := clo; k < chi; k++ {
			if b.rowChanged[cur.prods[k]] {
				return true
			}
		}
	}
	return false
}

// argminDirty runs the per-value best-owner search for every dirty
// value, fanned out across the worker pool. For each value the cost of
// all candidate owners accumulates simultaneously (one contiguous
// xmits row per contributor), which both vectorises well and preserves
// the exact floating-point accumulation order of the scalar
// contribTable.cost: contributors in ascending producer order, query
// term last.
func (b *Builder) argminDirty(in *BuildInput, n int) {
	dirty := b.dirtyIdx
	if len(dirty) == 0 {
		return
	}
	k := b.ctCur()
	ct := &b.cts[k]
	qp, qrate, rt := b.qprob[k], b.qrate[k], b.rt[k]
	rows := in.Xmits
	base := int(in.Base)

	avgContribs := 1 + len(ct.prods)/b.stats.Values
	work := len(dirty) * n * (1 + avgContribs)
	// Per-worker scratch is sized serially, before the fan-out.
	maxW := maxWorkers()
	for len(b.costsW) < maxW {
		b.costsW = append(b.costsW, nil)
		b.infsW = append(b.infsW, nil)
	}
	for w := 0; w < maxW; w++ {
		if cap(b.costsW[w]) < n {
			b.costsW[w] = make([]float64, n)
			b.infsW[w] = make([]bool, n)
		}
	}
	parallelFor(maxW, len(dirty), work, func(worker, lo, hi int) {
		costs := b.costsW[worker][:n]
		infs := b.infsW[worker][:n]
		for di := lo; di < hi; di++ {
			vi := int(dirty[di])
			for o := 0; o < n; o++ {
				costs[o], infs[o] = 0, false
			}
			// Data terms: one axpy over each contributor's xmits row.
			// X[p][p] is exactly 0, so the scalar path's "producer
			// stores its own value for free" skip needs no special
			// case — adding w·0 is a floating-point no-op.
			for e := ct.off[vi]; e < ct.off[vi+1]; e++ {
				row := rows[ct.prods[e]]
				w := ct.weights[e]
				for o := 0; o < n; o++ {
					if x := row[o]; x >= Inf {
						infs[o] = true
					} else {
						costs[o] += w * x
					}
				}
			}
			// Query term (paper Figure 2's round trip), owners != base.
			if p := qp[vi]; p > 0 && qrate > 0 {
				f := p * qrate
				for o := 0; o < n; o++ {
					if o == base {
						continue
					}
					if rt[o] >= Inf {
						infs[o] = true
					} else {
						costs[o] += f * rt[o]
					}
				}
			}
			// Argmin with the documented tie-break: the base wins
			// exact ties, then the lower node ID.
			best := base
			bestCost := costs[base]
			if infs[base] {
				bestCost = Inf
			}
			for o := 0; o < n; o++ {
				if o == base {
					continue
				}
				c := costs[o]
				if infs[o] {
					c = Inf
				}
				if c < bestCost {
					best, bestCost = o, c
				}
			}
			b.best[vi] = netsim.NodeID(best)
			b.bestCost[vi] = bestCost
		}
	})
}

// ctCur is the current cost-model buffer index (independent of the
// xmits buffer index, which only advances when the graph changes).
func (b *Builder) ctCur() int { return b.ctFlip }

// changedBeyond reports whether two cost inputs differ by more than
// the relative epsilon. Any two unreachable (≥ Inf) values count as
// equal; with eps == 0 any bit difference counts as changed.
func changedBeyond(a, c, eps float64) bool {
	if a == c {
		return false
	}
	if a >= Inf && c >= Inf {
		return false
	}
	if eps == 0 {
		return true
	}
	d := math.Abs(a - c)
	m := math.Abs(a)
	if ac := math.Abs(c); ac > m {
		m = ac
	}
	return d > eps*m
}
