package histogram

import (
	"fmt"
	"io"
	"math/bits"
)

// Log2Buckets is the fixed bucket count of a Log2 histogram: bucket 0
// holds the value 0 (and clamped negatives), bucket k ≥ 1 holds values
// in [2^(k-1), 2^k). An int64 sample can never reach past bucket 63.
const Log2Buckets = 64

// Log2 is a power-of-two-bucket histogram for non-negative integer
// samples (heap depths, dwell times, span lengths). Unlike Histogram —
// whose equal-width bins need the value range up front — Log2 covers
// the whole int64 range with a fixed array, so Record is a single
// increment with no allocation and no rescaling: safe on the
// simulator's per-event hot path.
//
// The zero value is an empty histogram ready for use.
type Log2 struct {
	counts [Log2Buckets]int64
	total  int64
	max    int64
}

// Record adds one sample. Negative samples clamp to 0.
func (h *Log2) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Merge folds another histogram into h (bucket-wise sum; max of max).
// Used to combine per-region profiler shards into one artifact.
func (h *Log2) Merge(o Log2) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// Total returns the number of recorded samples.
func (h *Log2) Total() int64 { return h.total }

// Max returns the largest recorded sample (0 when empty).
func (h *Log2) Max() int64 { return h.max }

// Log2Bound returns the inclusive upper bound of bucket k: 0 for
// bucket 0, 2^k − 1 otherwise.
func Log2Bound(k int) int64 {
	if k <= 0 {
		return 0
	}
	if k >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<uint(k) - 1
}

// Quantile returns the inclusive upper bound of the bucket containing
// the q-quantile sample (q clamped to [0,1]; 0 when empty). The bound
// is a guaranteed "≤" statement: at least a q fraction of samples are
// no larger than the returned value.
func (h *Log2) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for k, c := range h.counts {
		seen += c
		if seen >= rank {
			return Log2Bound(k)
		}
	}
	return h.max
}

// Log2Bucket is one non-empty bucket of a Log2 histogram.
type Log2Bucket struct {
	Lo, Hi int64 // inclusive sample range
	Count  int64
}

// Buckets returns the non-empty buckets in ascending range order.
func (h *Log2) Buckets() []Log2Bucket {
	var out []Log2Bucket
	for k, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := int64(0)
		if k > 0 {
			lo = Log2Bound(k-1) + 1
		}
		out = append(out, Log2Bucket{Lo: lo, Hi: Log2Bound(k), Count: c})
	}
	return out
}

// log2BarWidth is the widest count bar WriteTable renders.
const log2BarWidth = 40

// WriteTable renders the non-empty buckets as an aligned text table
// with proportional count bars; unit labels the sample dimension
// (e.g. "ms"). Rendering is deterministic: fixed bucket order, integer
// counts only.
func (h *Log2) WriteTable(out io.Writer, unit string) error {
	if h.total == 0 {
		_, err := fmt.Fprintf(out, "  (no samples)\n")
		return err
	}
	var peak int64
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	for _, b := range h.Buckets() {
		bar := int(b.Count * log2BarWidth / peak)
		if bar < 1 {
			bar = 1
		}
		if _, err := fmt.Fprintf(out, "  %12d..%-12d %s %10d  %s\n",
			b.Lo, b.Hi, unit, b.Count, strings40(bar)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(out, "  samples=%d max=%d%s p50≤%d%s p99≤%d%s\n",
		h.total, h.max, unit, h.Quantile(0.50), unit, h.Quantile(0.99), unit)
	return err
}

// log2Bar backs the proportional bars without per-call allocation.
const log2Bar = "########################################"

func strings40(n int) string {
	if n > len(log2Bar) {
		n = len(log2Bar)
	}
	return log2Bar[:n]
}
