package histogram

import (
	"strings"
	"testing"
)

func TestLog2Record(t *testing.T) {
	var h Log2
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, -5} {
		h.Record(v)
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %d, want 10", h.Total())
	}
	if h.Max() != 1024 {
		t.Fatalf("Max = %d, want 1024", h.Max())
	}
	bs := h.Buckets()
	// 0 and -5 → [0,0]; 1 → [1,1]; 2,3 → [2,3]; 4,7 → [4,7];
	// 8 → [8,15]; 1023 → [512,1023]; 1024 → [1024,2047].
	want := []Log2Bucket{
		{0, 0, 2}, {1, 1, 1}, {2, 3, 2}, {4, 7, 2},
		{8, 15, 1}, {512, 1023, 1}, {1024, 2047, 1},
	}
	if len(bs) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", bs, want)
	}
	for i, b := range bs {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestLog2Quantile(t *testing.T) {
	var h Log2
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %d, want 0", h.Quantile(0.5))
	}
	for i := 0; i < 99; i++ {
		h.Record(1) // bucket [1,1]
	}
	h.Record(1 << 20)
	if got := h.Quantile(0.50); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := h.Quantile(0.99); got != 1 {
		t.Fatalf("p99 = %d, want 1 (99 of 100 samples are 1)", got)
	}
	if got := h.Quantile(1.0); got != Log2Bound(21) {
		t.Fatalf("p100 = %d, want %d", got, Log2Bound(21))
	}
}

func TestLog2Bound(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 1, 2: 3, 10: 1023, 63: int64(^uint64(0) >> 1)}
	for k, want := range cases {
		if got := Log2Bound(k); got != want {
			t.Fatalf("Log2Bound(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestLog2RecordNoAlloc(t *testing.T) {
	var h Log2
	allocs := testing.AllocsPerRun(1000, func() { h.Record(12345) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
}

func TestLog2WriteTable(t *testing.T) {
	var h Log2
	h.Record(3)
	h.Record(3)
	h.Record(100)
	var sb strings.Builder
	if err := h.WriteTable(&sb, "ms"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2..3", "64..127", "samples=3", "max=100ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
