// Package histogram implements the equal-width summary histograms
// Scoop nodes report to the basestation (paper §5.2), and the
// probability estimator P(p→v) the index-construction algorithm
// derives from them.
//
// A histogram has nBins fixed-width bins spanning [Min, Max], the
// smallest and largest values the attribute took on during the node's
// recent history. Bin n counts readings in
//
//	[Min + n·w, Min + (n+1)·w)  with  w = (Max-Min+1)/nBins
//
// using integer arithmetic exactly as a mote would.
package histogram

// DefaultBins is the paper's histogram resolution (nBins = 10).
const DefaultBins = 10

// Histogram is a coarse fixed-width histogram over one node's recent
// readings. It is the payload of a summary message.
type Histogram struct {
	Min, Max int      // observed value range (inclusive)
	Counts   []uint16 // per-bin reading counts
}

// Build constructs a histogram with nBins bins from the given readings.
// It returns the zero Histogram (Counts == nil) when values is empty.
func Build(values []int, nBins int) Histogram {
	if nBins <= 0 {
		panic("histogram: non-positive bin count")
	}
	if len(values) == 0 {
		return Histogram{}
	}
	min, max := values[0], values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	h := Histogram{Min: min, Max: max, Counts: make([]uint16, nBins)}
	w := h.binWidth()
	for _, v := range values {
		bin := (v - min) / w
		if bin >= nBins {
			bin = nBins - 1 // integer-width rounding can spill past the end
		}
		h.Counts[bin]++
	}
	return h
}

// Empty reports whether the histogram summarises no readings.
func (h Histogram) Empty() bool { return len(h.Counts) == 0 }

// binWidth returns the integer bin width the paper's formula yields;
// always at least 1.
func (h Histogram) binWidth() int {
	w := (h.Max - h.Min + 1) / len(h.Counts)
	if w < 1 {
		w = 1
	}
	return w
}

// BinWidth exposes the integer bin width (for tests and diagnostics).
func (h Histogram) BinWidth() int {
	if h.Empty() {
		return 0
	}
	return h.binWidth()
}

// Total returns the number of readings summarised.
func (h Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += int(c)
	}
	return t
}

// Prob estimates P(node produces value v) from the histogram, using
// the paper's estimator: P(v|bin)·P(bin), where values within a bin
// are assumed uniformly distributed. Values outside every bin have
// probability 0.
func (h Histogram) Prob(v int) float64 {
	if h.Empty() {
		return 0
	}
	total := h.Total()
	if total == 0 {
		return 0
	}
	w := h.binWidth()
	bin := (v - h.Min) / w
	if v < h.Min || bin < 0 {
		return 0
	}
	if bin >= len(h.Counts) {
		// The last bin absorbs the integer-rounding spill, but values
		// beyond Max are outside the observed range.
		if v > h.Max {
			return 0
		}
		bin = len(h.Counts) - 1
	}
	pBin := float64(h.Counts[bin]) / float64(total)
	pInBin := 1.0 / float64(w)
	return pInBin * pBin
}

// Clone returns a deep copy (summaries are retained by the basestation
// after the node reuses its buffers).
func (h Histogram) Clone() Histogram {
	c := h
	if h.Counts != nil {
		c.Counts = append([]uint16(nil), h.Counts...)
	}
	return c
}
