package histogram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuildPaperExample(t *testing.T) {
	// Paper §5.2: min=1, max=100, nBins=10 → 8 readings between 50 and
	// 60 land in the 6th bin (n=5).
	values := []int{1, 100}
	for i := 0; i < 8; i++ {
		values = append(values, 51+i) // 51..58, inside [51,60]
	}
	h := Build(values, 10)
	if h.Min != 1 || h.Max != 100 {
		t.Fatalf("min=%d max=%d", h.Min, h.Max)
	}
	if h.BinWidth() != 10 {
		t.Fatalf("bin width = %d, want 10", h.BinWidth())
	}
	if h.Counts[5] != 8 {
		t.Fatalf("bin 5 = %d, want 8", h.Counts[5])
	}
}

func TestBuildEmpty(t *testing.T) {
	h := Build(nil, 10)
	if !h.Empty() {
		t.Fatal("empty build not Empty")
	}
	if h.Prob(5) != 0 {
		t.Fatal("empty histogram has nonzero probability")
	}
	if h.Total() != 0 || h.BinWidth() != 0 {
		t.Fatal("empty histogram has mass")
	}
}

func TestBuildSingleValue(t *testing.T) {
	h := Build([]int{42, 42, 42}, 10)
	if h.Min != 42 || h.Max != 42 {
		t.Fatalf("min=%d max=%d", h.Min, h.Max)
	}
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
	// Width clamps to 1; all mass in bin 0, P(42) = 1.
	if p := h.Prob(42); math.Abs(p-1) > 1e-9 {
		t.Fatalf("P(42) = %f, want 1", p)
	}
	if h.Prob(41) != 0 || h.Prob(43) != 0 {
		t.Fatal("probability leaked outside observed value")
	}
}

func TestProbOutsideRange(t *testing.T) {
	h := Build([]int{10, 20, 30}, 5)
	if h.Prob(9) != 0 {
		t.Fatal("P below min nonzero")
	}
	if h.Prob(31) != 0 {
		t.Fatal("P above max nonzero")
	}
}

func TestTotalCountsAllReadings(t *testing.T) {
	vals := []int{3, 3, 7, 9, 100, 42, 42}
	h := Build(vals, DefaultBins)
	if h.Total() != len(vals) {
		t.Fatalf("total = %d, want %d", h.Total(), len(vals))
	}
}

func TestBuildPanicsOnBadBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build([]int{1}, 0)
}

func TestClone(t *testing.T) {
	h := Build([]int{1, 2, 3}, 4)
	c := h.Clone()
	c.Counts[0] = 99
	if h.Counts[0] == 99 {
		t.Fatal("clone shares storage")
	}
}

// Property: probability mass integrates to ~1 over the observed domain.
// Summing P(v) for every integer v in [Min, Min+nBins*w) must give 1
// because each bin contributes (count/total) spread uniformly over w
// integer values.
func TestProbMassProperty(t *testing.T) {
	f := func(raw []uint8, binSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		nBins := int(binSeed%16) + 1
		vals := make([]int, len(raw))
		for i, r := range raw {
			vals[i] = int(r)
		}
		h := Build(vals, nBins)
		w := h.BinWidth()
		mass := 0.0
		for v := h.Min; v < h.Min+w*nBins; v++ {
			mass += h.Prob(v)
		}
		return math.Abs(mass-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every observed value has nonzero probability.
func TestObservedValuesHaveMass(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int, len(raw))
		for i, r := range raw {
			vals[i] = int(r)
		}
		h := Build(vals, DefaultBins)
		for _, v := range vals {
			if h.Prob(v) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Total equals len(input); counts never lose readings to
// rounding at the top bin.
func TestNoReadingLostProperty(t *testing.T) {
	f := func(raw []uint8, binSeed uint8) bool {
		nBins := int(binSeed%16) + 1
		vals := make([]int, len(raw))
		for i, r := range raw {
			vals[i] = int(r)
		}
		h := Build(vals, nBins)
		if len(vals) == 0 {
			return h.Empty()
		}
		return h.Total() == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProbUniformWithinBin(t *testing.T) {
	// 10 readings of value 5 with range [0,99]: bin 0 spans 0..9, so
	// P(v) = 1/10 for v in 0..9 and 0 elsewhere.
	vals := []int{0, 99}
	for i := 0; i < 98; i++ {
		vals = append(vals, 5)
	}
	h := Build(vals, 10)
	p5 := h.Prob(5)
	p7 := h.Prob(7)
	if math.Abs(p5-p7) > 1e-12 {
		t.Fatalf("within-bin probabilities differ: %f vs %f", p5, p7)
	}
	if p5 <= h.Prob(50) {
		t.Fatal("dense bin not more probable than sparse bin")
	}
}
