package perfbench

import "testing"

// Wrappers so `go test -bench` can drive the trace benches directly
// (scoopperf runs them via Benches()).
func BenchmarkTraceEmitDisabled(b *testing.B) { benchTraceDisabled(b) }
func BenchmarkTraceEmitRing(b *testing.B)     { benchTraceRing(b) }
