package perfbench

import (
	"path/filepath"
	"strings"
	"testing"
)

func art(allocs int64) Artifact {
	return Artifact{Benches: []BenchResult{{Name: "x", AllocsPerOp: allocs}}}
}

func TestGateTolerates15Percent(t *testing.T) {
	base := art(1000)
	if v := Gate(art(1140), base); len(v) != 0 {
		t.Fatalf("within-tolerance regression flagged: %v", v)
	}
	if v := Gate(art(1200), base); len(v) != 1 {
		t.Fatalf("20%% regression not flagged: %v", v)
	}
	if v := Gate(art(300), base); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
}

func TestGateHoldsZeroAllocBaselines(t *testing.T) {
	// A fully pooled (0 allocs/op) baseline must still catch
	// regressions — 15% of zero is zero, so the gate adds a small
	// absolute slack instead of skipping the comparison.
	base := art(0)
	if v := Gate(art(500), base); len(v) != 1 {
		t.Fatalf("regression from zero-alloc baseline not flagged: %v", v)
	}
	if v := Gate(art(2), base); len(v) != 0 {
		t.Fatalf("one-allocation jitter flagged against zero baseline: %v", v)
	}
}

func TestGateFailsOnMissingBench(t *testing.T) {
	base := art(1000)
	v := Gate(Artifact{}, base)
	if len(v) != 1 || !strings.Contains(v[0], "not measured") {
		t.Fatalf("retired gate not flagged: %v", v)
	}
	// New benches without baseline entries pass (forward compatible).
	if v := Gate(art(5), Artifact{}); len(v) != 0 {
		t.Fatalf("new bench flagged: %v", v)
	}
}

func nsArt(name string, ns int64) Artifact {
	return Artifact{Benches: []BenchResult{{Name: name, NsPerOp: ns, AllocsPerOp: 10}}}
}

func TestGateNsForRebuildBenches(t *testing.T) {
	name := NsGatedPrefix + "n1000"
	base := nsArt(name, 1_000_000)
	if v := Gate(nsArt(name, 1_150_000), base); len(v) != 0 {
		t.Fatalf("within-tolerance ns regression flagged: %v", v)
	}
	if v := Gate(nsArt(name, 1_300_000), base); len(v) != 1 ||
		!strings.Contains(v[0], "ns/op") {
		t.Fatalf("30%% ns regression not flagged: %v", v)
	}
	if v := Gate(nsArt(name, 400_000), base); len(v) != 0 {
		t.Fatalf("ns improvement flagged: %v", v)
	}
	// Benches outside the prefix stay ungated on ns/op (machine
	// dependence would make the gate flaky for simulator-heavy loops).
	other := nsArt("core/scoop/n65", 1_000_000)
	if v := Gate(nsArt("core/scoop/n65", 5_000_000), other); len(v) != 0 {
		t.Fatalf("non-rebuild bench ns-gated: %v", v)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	a := Artifact{
		Benches:  []BenchResult{{Name: "n", NsPerOp: 1, BytesPerOp: 2, AllocsPerOp: 3}},
		SimRates: []RateResult{{N: 65, VirtualS: 600, SimSecPerWallSec: 1234}},
	}
	p := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteFile(p, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benches) != 1 || got.Benches[0] != a.Benches[0] ||
		len(got.SimRates) != 1 || got.SimRates[0] != a.SimRates[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestBenchesRunnable executes each registered bench, so a broken
// bench fails tests rather than CI's perf job. Skipped under -short
// (the 1000-node bench alone is seconds of work).
func TestBenchesRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every hot-path bench")
	}
	for _, be := range Benches() {
		be := be
		t.Run(be.Name, func(t *testing.T) {
			r := testing.Benchmark(be.Fn)
			if r.N < 1 {
				t.Fatal("bench did not run")
			}
		})
	}
}
