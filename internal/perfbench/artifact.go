package perfbench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
)

// BenchResult is one micro-bench measurement. AllocsPerOp is the gated
// number: it is a property of the code, not the machine, so CI can
// hold a committed baseline to it. NsPerOp and BytesPerOp are recorded
// for trend reading only.
type BenchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"nsPerOp"`
	BytesPerOp  int64  `json:"bytesPerOp"`
	AllocsPerOp int64  `json:"allocsPerOp"`
}

// RateResult is one end-to-end sim-rate probe. Regions 0 is the serial
// engine; > 1 is the region-parallel event loop at that K (identical
// simulated behaviour, different wall-clock).
type RateResult struct {
	N                int     `json:"n"`
	Regions          int     `json:"regions,omitempty"`
	VirtualS         float64 `json:"virtualS"`
	SimSecPerWallSec float64 `json:"simSecPerWallSec"`
}

// Artifact is the committed BENCH_scale.json: the first point of the
// repo's performance trajectory (ROADMAP "BENCH"). Regenerate with
// cmd/scoopperf after an intentional hot-path change.
type Artifact struct {
	Benches  []BenchResult `json:"benches"`
	SimRates []RateResult  `json:"simRates"`
}

// Collect runs every micro bench and sim-rate probe and assembles the
// artifact. progress, when non-nil, receives one line per finished
// measurement.
func Collect(progress func(string)) (Artifact, error) {
	var a Artifact
	note := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	for _, be := range Benches() {
		r := testing.Benchmark(be.Fn)
		br := BenchResult{
			Name:        be.Name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		a.Benches = append(a.Benches, br)
		note("%-20s %12d ns/op %12d B/op %10d allocs/op", br.Name, br.NsPerOp, br.BytesPerOp, br.AllocsPerOp)
	}
	rates, err := CollectRates(progress)
	if err != nil {
		return Artifact{}, err
	}
	a.SimRates = rates
	return a, nil
}

// CollectRates runs only the end-to-end sim-rate probes — the quick
// subset behind scoopperf -rates-only, for refreshing the throughput
// trajectory without re-measuring the micro benches.
func CollectRates(progress func(string)) ([]RateResult, error) {
	var out []RateResult
	for _, p := range SimRates() {
		rate, err := RunSimRate(p)
		if err != nil {
			return nil, err
		}
		rr := RateResult{N: p.N, Regions: p.Regions, VirtualS: float64(p.Duration) / 1000, SimSecPerWallSec: rate}
		out = append(out, rr)
		if progress != nil {
			tag := ""
			if rr.Regions > 1 {
				tag = fmt.Sprintf(" k=%d", rr.Regions)
			}
			progress(fmt.Sprintf("simrate n=%-5d%-5s %33.0f sim-s/wall-s", rr.N, tag, rr.SimSecPerWallSec))
		}
	}
	return out, nil
}

// WriteFile persists the artifact as indented JSON.
func WriteFile(path string, a Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a committed artifact.
func ReadFile(path string) (Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Artifact{}, fmt.Errorf("perfbench: parsing %s: %w", path, err)
	}
	return a, nil
}

// GateTolerance is the relative allocs/op regression the CI gate
// permits before failing (matching the issue's 15% contract — alloc
// counts jitter slightly with growth-reallocation boundaries, never by
// 15%, so real pooling regressions are caught).
const GateTolerance = 0.15

// NsGateTolerance is the relative ns/op regression permitted for the
// benches under NsGatedPrefix. ns/op is machine-dependent, which is
// why most benches only gate allocs/op — but the index/rebuild loops
// pin GOMAXPROCS=1 (no core-count scaling), do uniform per-op work
// (a fixed four-epoch cycle), and are cache-resident CPU loops whose
// run-to-run jitter is a few percent, so a 20% ceiling catches a real
// algorithmic regression (an accidental fall back to the dense O(n³)
// pass costs >5×) without flagging scheduler noise. Clock-speed
// differences between the baselining machine and CI remain — after a
// legitimate hardware change, re-baseline from the uploaded artifact.
const NsGateTolerance = 0.20

// NsGatedPrefix selects the benches whose ns/op is gated in addition
// to allocs/op.
const NsGatedPrefix = "index/rebuild/"

// Gate compares fresh measurements against the committed baseline:
// allocs/op for every bench, plus ns/op for the NsGatedPrefix set. A
// missing baseline bench passes (new benches are added freely); a
// missing current bench fails (a gate must not silently retire).
// Returns human-readable violations.
func Gate(current, baseline Artifact) []string {
	cur := make(map[string]BenchResult, len(current.Benches))
	for _, b := range current.Benches {
		cur[b.Name] = b
	}
	var out []string
	for _, base := range baseline.Benches {
		c, ok := cur[base.Name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline but not measured", base.Name))
			continue
		}
		// The +2 absolute slack keeps zero-alloc baselines gated (15%
		// of zero is zero) without flagging one-allocation jitter.
		if float64(c.AllocsPerOp) > float64(base.AllocsPerOp)*(1+GateTolerance)+2 {
			pct := "from zero"
			if base.AllocsPerOp > 0 {
				pct = fmt.Sprintf("%+.1f%%", 100*(float64(c.AllocsPerOp)/float64(base.AllocsPerOp)-1))
			}
			out = append(out, fmt.Sprintf("%s: allocs/op %d -> %d (%s, gate %.0f%%)",
				base.Name, base.AllocsPerOp, c.AllocsPerOp, pct, 100*GateTolerance))
		}
		if strings.HasPrefix(base.Name, NsGatedPrefix) && base.NsPerOp > 0 &&
			float64(c.NsPerOp) > float64(base.NsPerOp)*(1+NsGateTolerance) {
			out = append(out, fmt.Sprintf("%s: ns/op %d -> %d (%+.1f%%, gate %.0f%%)",
				base.Name, base.NsPerOp, c.NsPerOp,
				100*(float64(c.NsPerOp)/float64(base.NsPerOp)-1), 100*NsGateTolerance))
		}
	}
	return out
}

// GateError folds violations into one error (nil when the gate passes).
func GateError(violations []string) error {
	if len(violations) == 0 {
		return nil
	}
	return fmt.Errorf("perf gate: %d regression(s):\n  %s", len(violations), strings.Join(violations, "\n  "))
}
