// Package perfbench defines the repo's hot-path performance
// benchmarks as plain functions, so the same code runs both as `go
// test -bench` benchmarks (netsim/core/root bench files wrap them) and
// inside cmd/scoopperf, which records the numbers into the committed
// BENCH_scale.json artifact and gates CI on allocs/op regressions.
//
// Two kinds of measurements exist:
//
//   - Micro benches (Benches): per-simulated-event cost of the netsim
//     radio fan-out and the full core protocol stack, at several
//     network sizes. allocs/op is machine-independent and gated;
//     ns/op and bytes/op are recorded for trend reading only.
//   - Sim-rate probes (SimRates): end-to-end virtual-time-per-
//     wallclock-time of a full SCOOP experiment at N ∈ {65, 250,
//     1000}, the scale-tier headline number. Wall-clock dependent, so
//     recorded but never gated.
package perfbench

import (
	"fmt"
	"testing"
	"time"

	"scoop/internal/core"
	"scoop/internal/exp"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
	"scoop/internal/workload"
)

// Bench is one named micro-benchmark.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// Benches returns the gated hot-path micro benches in artifact order.
func Benches() []Bench {
	return []Bench{
		{"netsim/flood/n65", func(b *testing.B) { benchNetsimFlood(b, 65) }},
		{"netsim/flood/n250", func(b *testing.B) { benchNetsimFlood(b, 250) }},
		{"netsim/flood/n1000", func(b *testing.B) { benchNetsimFlood(b, 1000) }},
		{"core/scoop/n65", func(b *testing.B) { benchCoreScoop(b, 65) }},
		{"core/scoop/n250", func(b *testing.B) { benchCoreScoop(b, 250) }},
	}
}

// floodApp is a minimal netsim application that keeps the radio busy:
// every node broadcasts a beacon-sized frame on a jittered timer for
// the whole run, exercising the transmit fan-out, carrier sense,
// collision checks and delivery scheduling with no protocol logic on
// top.
type floodApp struct {
	api *netsim.NodeAPI
}

func (f *floodApp) Init(api *netsim.NodeAPI) {
	f.api = api
	api.SetTimer(0, netsim.Time(1+api.RandIntn(1000)))
}
func (f *floodApp) Receive(p *netsim.Packet) {}
func (f *floodApp) Snoop(p *netsim.Packet)   {}
func (f *floodApp) Timer(id int) {
	f.api.Broadcast(&netsim.Packet{Class: metrics.Beacon, Size: 24})
	f.api.SetTimer(0, netsim.Second+netsim.Time(f.api.RandIntn(500)))
}

// benchNetsimFlood measures the bare radio/event loop: n nodes
// broadcasting once a second for one virtual minute. The reported
// per-op numbers are per virtual minute of simulation.
func benchNetsimFlood(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo := netsim.GridTopology(n, 2.5, 7)
		sim := netsim.NewSimulator(11)
		net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
		for id := 0; id < n; id++ {
			net.Attach(netsim.NodeID(id), &floodApp{})
		}
		net.Start()
		sim.Run(netsim.Minute)
	}
}

// benchCoreScoop measures the full protocol stack end to end: a SCOOP
// network (base + nodes, sampling, summaries, index dissemination,
// data routing) over four virtual minutes. Per-op numbers are per
// four-virtual-minute run.
func benchCoreScoop(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo := netsim.GridTopology(n, 2.5, 7)
		sim := netsim.NewSimulator(13)
		net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
		src, err := workload.NewSource("real", n, 17)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := src.Domain()
		ccfg, err := policy.Config(policy.Scoop, n, lo, hi)
		if err != nil {
			b.Fatal(err)
		}
		stats := &core.RunStats{}
		warm := netsim.Minute
		net.Attach(0, core.NewBase(ccfg, stats, warm))
		for id := 1; id < n; id++ {
			net.Attach(netsim.NodeID(id), core.NewNode(ccfg, stats, src.Next, warm))
		}
		net.Start()
		sim.Run(4 * netsim.Minute)
	}
}

// SimRate is one end-to-end throughput probe: how many virtual
// milliseconds of a full SCOOP experiment one wall-clock second buys.
type SimRate struct {
	N        int
	Duration netsim.Time
}

// SimRates returns the scale-tier probe points. Durations shrink as N
// grows so the whole artifact regenerates in well under a CI minute;
// the 40-virtual-minute 1000-node acceptance run lives in
// TestScaleTier1000 instead.
func SimRates() []SimRate {
	return []SimRate{
		{N: 65, Duration: 10 * netsim.Minute},
		{N: 250, Duration: 6 * netsim.Minute},
		{N: 1000, Duration: 4 * netsim.Minute},
	}
}

// RunSimRate executes one probe and returns virtual-seconds simulated
// per wall-clock second.
func RunSimRate(p SimRate) (float64, error) {
	cfg := exp.Default()
	cfg.N = p.N
	cfg.Topology = "grid"
	cfg.Duration = p.Duration
	cfg.Warmup = p.Duration / 4
	cfg.Trials = 1
	cfg.Seed = 3
	start := time.Now()
	if _, err := exp.Run(cfg); err != nil {
		return 0, fmt.Errorf("perfbench: sim-rate N=%d: %w", p.N, err)
	}
	wall := time.Since(start).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	return float64(p.Duration) / 1000 / wall, nil
}
