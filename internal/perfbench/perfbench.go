// Package perfbench defines the repo's hot-path performance
// benchmarks as plain functions, so the same code runs both as `go
// test -bench` benchmarks (netsim/core/root bench files wrap them) and
// inside cmd/scoopperf, which records the numbers into the committed
// BENCH_scale.json artifact and gates CI on allocs/op regressions.
//
// Two kinds of measurements exist:
//
//   - Micro benches (Benches): per-simulated-event cost of the netsim
//     radio fan-out and the full core protocol stack, at several
//     network sizes. allocs/op is machine-independent and gated;
//     ns/op and bytes/op are recorded for trend reading only.
//   - Sim-rate probes (SimRates): end-to-end virtual-time-per-
//     wallclock-time of a full SCOOP experiment at N ∈ {65, 250,
//     1000}, the scale-tier headline number. Wall-clock dependent, so
//     recorded but never gated.
package perfbench

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"scoop/internal/core"
	"scoop/internal/exp"
	"scoop/internal/histogram"
	"scoop/internal/index"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
	"scoop/internal/prof"
	"scoop/internal/trace"
	"scoop/internal/workload"
)

// Bench is one named micro-benchmark.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// Benches returns the gated hot-path micro benches in artifact order.
// The index/rebuild/* entries are additionally gated on ns/op (20%
// tolerance); they pin GOMAXPROCS=1 so the measurement is pure serial
// CPU work — a baseline from a many-core machine would otherwise be
// unreachable for a small CI runner (and vice versa) through the
// builder's parallel fan-out.
func Benches() []Bench {
	return []Bench{
		{"netsim/flood/n65", func(b *testing.B) { benchNetsimFlood(b, 65) }},
		{"netsim/flood/n250", func(b *testing.B) { benchNetsimFlood(b, 250) }},
		{"netsim/flood/n1000", func(b *testing.B) { benchNetsimFlood(b, 1000) }},
		{"core/scoop/n65", func(b *testing.B) { benchCoreScoop(b, 65) }},
		{"core/scoop/n250", func(b *testing.B) { benchCoreScoop(b, 250) }},
		{"core/scoop/n1000", func(b *testing.B) { benchCoreScoop(b, 1000) }},
		{"core/reply/rel-off", benchReplyRelOff},
		{"core/reply/rel-settled", benchReplyRelSettled},
		{"index/rebuild/n65", func(b *testing.B) { benchIndexRebuild(b, 65) }},
		{"index/rebuild/n250", func(b *testing.B) { benchIndexRebuild(b, 250) }},
		{"index/rebuild/n1000", func(b *testing.B) { benchIndexRebuild(b, 1000) }},
		{"trace/emit/disabled", benchTraceDisabled},
		{"trace/emit/ring", benchTraceRing},
		{"prof/emit/disabled", benchProfDisabled},
		{"prof/emit/enabled", benchProfEnabled},
	}
}

// benchTraceDisabled pins the flight recorder's disabled-path cost:
// Emit on a nil Recorder must stay zero allocs/op (the hot netsim
// sites additionally skip Event construction behind a nil check; this
// measures the protocol-layer sites that call Emit unconditionally).
func benchTraceDisabled(b *testing.B) {
	b.ReportAllocs()
	var rec *trace.Recorder
	for i := 0; i < b.N; i++ {
		rec.Emit(trace.Event{Kind: trace.PacketSend, Node: 1, Peer: 2,
			Class: metrics.Data, Size: 30})
	}
}

// benchTraceRing pins the enabled-path cost with the default ring
// sink: stamping, fan-out and ring insertion must stay zero allocs/op
// so tracing never perturbs the allocation behaviour it observes.
func benchTraceRing(b *testing.B) {
	b.ReportAllocs()
	var now int64
	rec := trace.New(func() int64 { now++; return now }, trace.NewRing(4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Emit(trace.Event{Kind: trace.PacketSend, Node: 1, Peer: 2,
			Class: metrics.Data, Size: 30})
	}
}

// benchProfDisabled pins the profiler's disabled-path cost: the full
// per-event call sequence (BeginEvent, a nested Enter/Exit span,
// EndEvent) on a nil Profiler must stay zero allocs/op — it is one nil
// branch per call, cheap enough to leave unconditionally in the event
// loop and protocol hot paths.
func benchProfDisabled(b *testing.B) {
	b.ReportAllocs()
	var p *prof.Profiler
	for i := 0; i < b.N; i++ {
		p.BeginEvent(prof.PhaseRadio, 5, 12)
		prev := p.Enter(prof.PhaseNodeRecv)
		p.Exit(prev)
		p.EndEvent()
	}
}

// benchProfEnabled pins the enabled-path cost of the same sequence:
// attribution flushes, counter updates and histogram records must stay
// zero allocs/op so profiling never perturbs the allocation behaviour
// it observes.
func benchProfEnabled(b *testing.B) {
	b.ReportAllocs()
	p := prof.New()
	p.LoopBegin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BeginEvent(prof.PhaseRadio, 5, 12)
		prev := p.Enter(prof.PhaseNodeRecv)
		p.Exit(prev)
		p.EndEvent()
	}
	b.StopTimer()
	p.LoopEnd()
}

// floodApp is a minimal netsim application that keeps the radio busy:
// every node broadcasts a beacon-sized frame on a jittered timer for
// the whole run, exercising the transmit fan-out, carrier sense,
// collision checks and delivery scheduling with no protocol logic on
// top.
type floodApp struct {
	api *netsim.NodeAPI
}

func (f *floodApp) Init(api *netsim.NodeAPI) {
	f.api = api
	api.SetTimer(0, netsim.Time(1+api.RandIntn(1000)))
}
func (f *floodApp) Receive(p *netsim.Packet) {}
func (f *floodApp) Snoop(p *netsim.Packet)   {}
func (f *floodApp) Timer(id int) {
	f.api.Broadcast(&netsim.Packet{Class: metrics.Beacon, Size: 24})
	f.api.SetTimer(0, netsim.Second+netsim.Time(f.api.RandIntn(500)))
}

// benchNetsimFlood measures the bare radio/event loop: n nodes
// broadcasting once a second for one virtual minute. The reported
// per-op numbers are per virtual minute of simulation.
func benchNetsimFlood(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo := netsim.GridTopology(n, 2.5, 7)
		sim := netsim.NewSimulator(11)
		net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
		for id := 0; id < n; id++ {
			net.Attach(netsim.NodeID(id), &floodApp{})
		}
		net.Start()
		sim.Run(netsim.Minute)
	}
}

// benchCoreScoop measures the full protocol stack end to end: a SCOOP
// network (base + nodes, sampling, summaries, index dissemination,
// data routing) over four virtual minutes. Per-op numbers are per
// four-virtual-minute run.
func benchCoreScoop(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo := netsim.GridTopology(n, 2.5, 7)
		sim := netsim.NewSimulator(13)
		net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
		src, err := workload.NewSource("real", n, 17)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := src.Domain()
		ccfg, err := policy.Config(policy.Scoop, n, lo, hi)
		if err != nil {
			b.Fatal(err)
		}
		stats := &core.RunStats{}
		warm := netsim.Minute
		net.Attach(0, core.NewBase(ccfg, stats, warm))
		for id := 1; id < n; id++ {
			net.Attach(netsim.NodeID(id), core.NewNode(ccfg, stats, src.Next, warm))
		}
		net.Start()
		sim.Run(4 * netsim.Minute)
	}
}

// replyBenchBase builds a warmed 20-node SCOOP network, issues one
// wide tuple query, runs `settle` more virtual time, and returns the
// base plus the query's last wire ID — the fixture for the per-reply
// hot-path benches below.
func replyBenchBase(b *testing.B, deadline netsim.Time, retryMax int, settle netsim.Time) (*core.Base, uint16) {
	const n = 20
	topo := netsim.GridTopology(n, 2.5, 7)
	sim := netsim.NewSimulator(13)
	net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
	src, err := workload.NewSource("real", n, 17)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := src.Domain()
	ccfg, err := policy.Config(policy.Scoop, n, lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	ccfg.QueryDeadline = deadline
	ccfg.QueryRetryMax = retryMax
	stats := &core.RunStats{}
	base := core.NewBase(ccfg, stats, netsim.Minute)
	net.Attach(0, base)
	for id := 1; id < n; id++ {
		net.Attach(netsim.NodeID(id), core.NewNode(ccfg, stats, src.Next, netsim.Minute))
	}
	net.Start()
	sim.Run(4 * netsim.Minute)
	sim.At(sim.Now()+1, func() {
		base.IssueQuery(workload.Query{ValueLo: lo, ValueHi: hi, TimeLo: 0, TimeHi: 4 * netsim.Minute})
	})
	sim.Run(sim.Now() + 1 + settle)
	return base, base.LastQueryID()
}

// benchReplyRelOff pins the reliability layer's disabled-path cost on
// the per-reply hot path: with Config.QueryDeadline zero (the §19
// layer off) a duplicate reply through Base.Receive must stay zero
// allocs/op — the layer adds only the wire-ID resolve and the nil
// deadline check to pre-reliability reply handling.
func benchReplyRelOff(b *testing.B) {
	base, qid := replyBenchBase(b, 0, 0, 10*netsim.Second)
	pkt := &netsim.Packet{Class: metrics.Reply, Src: 1, Origin: 1,
		Payload: &core.ReplyMsg{QueryID: qid, Node: 1}}
	base.Receive(pkt) // mark node 1 replied; every timed op is then a duplicate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.Receive(pkt)
	}
}

// benchReplyRelSettled pins the enabled layer's post-settlement cost:
// once a query's verdict is journalled and its collection state
// evicted, a late reply must be dropped by the eviction guard at zero
// allocs/op — straggler traffic after a retry storm cannot tax the
// base.
func benchReplyRelSettled(b *testing.B) {
	// 8s deadline, one retry: settled (and evicted) well inside the
	// extra virtual minute the fixture runs.
	base, qid := replyBenchBase(b, 8*netsim.Second, 1, netsim.Minute)
	pkt := &netsim.Packet{Class: metrics.Reply, Src: 1, Origin: 1,
		Payload: &core.ReplyMsg{QueryID: qid, Node: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.Receive(pkt)
	}
}

// rebuildScenario is the steady-state reindex workload the
// index/rebuild/* benches measure: an n-node network whose nodes each
// report ~12 neighbors (the paper's summary shape), a 151-value
// domain, and a mutation schedule that touches ~3% of the node
// statistics per epoch plus an occasional link-quality change — the
// kind of inter-epoch delta a live basestation sees between remaps.
type rebuildScenario struct {
	n       int
	domain  int
	r       *rand.Rand
	g       *index.Graph
	links   [][2]netsim.NodeID
	linkQ   []float64
	centers []int
	hists   []histogram.Histogram
	nodes   []index.NodeStat
	prob    []float64
}

func newRebuildScenario(n int) *rebuildScenario {
	s := &rebuildScenario{
		n: n, domain: 151,
		r:       rand.New(rand.NewSource(int64(n) * 7)),
		g:       index.NewGraph(n),
		centers: make([]int, n),
		hists:   make([]histogram.Histogram, n),
		nodes:   make([]index.NodeStat, n),
	}
	for i := 0; i < n; i++ {
		for d := 0; d < 12; d++ {
			j := netsim.NodeID(s.r.Intn(n))
			if int(j) != i {
				s.links = append(s.links, [2]netsim.NodeID{netsim.NodeID(i), j})
				s.linkQ = append(s.linkQ, 0.2+0.75*s.r.Float64())
			}
		}
		s.centers[i] = s.r.Intn(s.domain)
		s.refreshHist(i)
	}
	s.prob = make([]float64, s.domain)
	for i := range s.prob {
		s.prob[i] = 1.0 / float64(s.domain)
	}
	return s
}

func (s *rebuildScenario) refreshHist(i int) {
	vals := make([]int, 30)
	for k := range vals {
		v := s.centers[i] + k%21 - 10
		if v < 0 {
			v = 0
		}
		if v >= s.domain {
			v = s.domain - 1
		}
		vals[k] = v
	}
	s.hists[i] = histogram.Build(vals, 10)
}

// step applies one epoch's worth of drift and returns the rebuild
// input (graph mode, so the builder runs the sparse SPT pass).
// moveLink additionally shifts one link-quality estimate, which
// forces the shortest-path pass to re-run that epoch.
func (s *rebuildScenario) step(moveLink bool) index.BuildInput {
	// ~3% of nodes report a shifted distribution.
	for k := 0; k < 1+s.n/32; k++ {
		i := 1 + s.r.Intn(s.n-1)
		s.centers[i] = (s.centers[i] + 5 + s.r.Intn(11)) % s.domain
		s.refreshHist(i)
	}
	if moveLink {
		e := s.r.Intn(len(s.links))
		s.linkQ[e] = 0.2 + 0.75*s.r.Float64()
	}
	s.g.Reset()
	for e, l := range s.links {
		s.g.Report(l[0], l[1], s.linkQ[e])
	}
	for i := 1; i < s.n; i++ {
		s.nodes[i] = index.NodeStat{Hist: s.hists[i], Rate: 1.0 / 15}
	}
	return index.BuildInput{
		N: s.n, Base: 0,
		Nodes:    s.nodes,
		Query:    index.QueryProfile{Rate: 1.0 / 15, MinValue: 0, Prob: s.prob},
		Graph:    s.g,
		MinValue: 0, MaxValue: s.domain - 1,
	}
}

// rebuildEpochsPerOp makes every benchmark op an identical unit of
// work — three stats-only epochs (SPT skipped or cheap dirty subset)
// plus one link-moving epoch (full SPT) — so ns/op and allocs/op do
// not depend on which b.N the harness happens to pick. A modulo
// schedule instead ("every 4th op moves a link") made the measured
// epoch mix a function of b.N and the gate machine-dependent.
const rebuildEpochsPerOp = 4

// benchIndexRebuild measures steady-state basestation reindexing:
// sparse shortest paths (when links moved), dirty-value tracking and
// the incremental owner search, via a warm Builder exactly as
// core.Base drives it. Per-op numbers are per four-epoch cycle —
// three stats-drift rebuilds plus one link-move rebuild. GOMAXPROCS
// is pinned to 1 for the duration: the ns/op gate needs a number
// that does not scale with the measuring machine's core count
// (parallel-path correctness is pinned separately by the GOMAXPROCS
// determinism tests in internal/index).
func benchIndexRebuild(b *testing.B, n int) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	b.ReportAllocs()
	s := newRebuildScenario(n)
	var bl index.Builder
	// Warm cycle outside the timer: first (full) build, plus one
	// link-move epoch so both xmits buffers and all worker scratch
	// reach steady-state size.
	for e := 0; e < rebuildEpochsPerOp; e++ {
		in := s.step(e == rebuildEpochsPerOp-1)
		bl.BuildOwners(&in)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for e := 0; e < rebuildEpochsPerOp; e++ {
			in := s.step(e == rebuildEpochsPerOp-1)
			bl.BuildOwners(&in)
		}
	}
}

// SimRate is one end-to-end throughput probe: how many virtual
// milliseconds of a full SCOOP experiment one wall-clock second buys.
// Regions > 1 runs the trial on the region-parallel event loop —
// results are bit-identical to serial by construction (the
// differential harness pins this), so the probe measures pure engine
// overhead/speedup at that K.
type SimRate struct {
	N        int
	Duration netsim.Time
	Regions  int
}

// SimRates returns the scale-tier probe points. Durations shrink as N
// grows so the whole artifact regenerates in well under a CI minute;
// the 40-virtual-minute 1000-node acceptance run lives in
// TestScaleTier1000 instead. The 1000-node cell is additionally probed
// on the parallel engine at K ∈ {2, 4}: on a single-core runner these
// record the coordination overhead, on a multi-core machine the
// speedup — either way the committed number is the honest one for the
// machine that produced the artifact.
func SimRates() []SimRate {
	return []SimRate{
		{N: 65, Duration: 10 * netsim.Minute},
		{N: 250, Duration: 6 * netsim.Minute},
		{N: 1000, Duration: 4 * netsim.Minute},
		{N: 1000, Duration: 4 * netsim.Minute, Regions: 2},
		{N: 1000, Duration: 4 * netsim.Minute, Regions: 4},
	}
}

// simRateSamples is how many times RunSimRate repeats each probe; the
// median is reported, so one GC pause or scheduler hiccup in a single
// run cannot skew the recorded trajectory point.
const simRateSamples = 3

// RunSimRate executes one probe simRateSamples times and returns the
// median virtual-seconds simulated per wall-clock second. Each sample
// starts from a collected heap: when the probes run after the micro
// benches in one scoopperf process, the benches' residual garbage and
// inflated GC goal otherwise tax the probe by integer factors and the
// artifact records the process history instead of the engine.
func RunSimRate(p SimRate) (float64, error) {
	cfg := exp.Default()
	cfg.N = p.N
	cfg.Topology = "grid"
	cfg.Duration = p.Duration
	cfg.Warmup = p.Duration / 4
	cfg.Trials = 1
	cfg.Seed = 3
	cfg.Regions = p.Regions
	rates := make([]float64, 0, simRateSamples)
	for s := 0; s < simRateSamples; s++ {
		runtime.GC()
		debug.FreeOSMemory()
		start := time.Now()
		if _, err := exp.Run(cfg); err != nil {
			return 0, fmt.Errorf("perfbench: sim-rate N=%d: %w", p.N, err)
		}
		wall := time.Since(start).Seconds()
		if wall <= 0 {
			wall = 1e-9
		}
		rates = append(rates, float64(p.Duration)/1000/wall)
	}
	sort.Float64s(rates)
	return rates[len(rates)/2], nil
}
