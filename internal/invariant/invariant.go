// Package invariant is a test-only, whole-run correctness checker for
// Scoop simulations. It watches every reading's life through the
// storage pipeline (via core.ReadingProbe) and, at run end, asserts
// the system-level invariants that individual unit tests cannot see:
//
//   - Conservation of readings: every generated reading is stored at
//     least once, dropped with a loss-accounted reason (radio loss,
//     no-route, TTL, reboot), or demonstrably in flight at run end
//     (batch buffers, send queues, frames on the air). Nothing
//     vanishes silently.
//   - Stored-exactly-once accounting: the deduplicated StoredUnique
//     count equals the number of distinct readings with a storage
//     event, and no "ghost" reading is stored that was never produced.
//   - No aggregate double-count: for every issued in-network aggregate
//     query, the contributors folded into the basestation's answer
//     never exceed the targeted node set — seq-dedup'd resends must
//     not count a subtree twice.
//   - Index-generation monotonicity: the basestation's disseminated
//     index generations have strictly increasing IDs.
//
// The checker is wired into experiment runs by exp (Config
// CheckInvariants, or force-enabled for the whole test binary); it is
// plain bookkeeping on the trial goroutine and is never active in
// benchmark or sweep-artifact runs.
package invariant

import (
	"fmt"
	"sort"
)

type readingKey struct {
	Producer uint16
	T        int64
}

type readingState struct {
	produced int
	stored   int
	lost     int
	inflight bool
}

// Checker accumulates per-reading and per-query evidence for one
// trial. Not safe for concurrent use; each trial owns one.
type Checker struct {
	readings map[readingKey]*readingState
	extra    []string // non-conservation violations, in detection order
}

// New returns an empty checker.
func New() *Checker {
	return &Checker{readings: make(map[readingKey]*readingState)}
}

func (c *Checker) state(p uint16, t int64) *readingState {
	k := readingKey{p, t}
	s := c.readings[k]
	if s == nil {
		s = &readingState{}
		c.readings[k] = s
	}
	return s
}

// ProducedReading implements core.ReadingProbe.
func (c *Checker) ProducedReading(p uint16, t int64) {
	s := c.state(p, t)
	s.produced++
	if s.produced > 1 {
		c.extra = append(c.extra,
			fmt.Sprintf("reading (node %d, t=%d) produced %d times (sample identity collision)", p, t, s.produced))
	}
}

// StoredReading implements core.ReadingProbe. Called on every storage
// event including at-least-once duplicates.
func (c *Checker) StoredReading(p uint16, t int64) { c.state(p, t).stored++ }

// LostReading implements core.ReadingProbe.
func (c *Checker) LostReading(p uint16, t int64, reason string) { c.state(p, t).lost++ }

// InFlightReading marks a reading observed in a batch buffer, send
// queue or in-air frame at run end.
func (c *Checker) InFlightReading(p uint16, t int64) { c.state(p, t).inflight = true }

// RecordIndexIDs checks the basestation's disseminated generations for
// strictly increasing IDs.
func (c *Checker) RecordIndexIDs(ids []uint16) {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			c.extra = append(c.extra,
				fmt.Sprintf("index generation %d follows %d: IDs must increase strictly", ids[i], ids[i-1]))
		}
	}
}

// AggResult checks one aggregate query's answer assembly: contributors
// folded at the basestation must not exceed the targeted node count.
func (c *Checker) AggResult(qid uint16, contribs, expected int) {
	if contribs > expected {
		c.extra = append(c.extra,
			fmt.Sprintf("agg query %d: %d contributors folded for %d targeted nodes (double count)", qid, contribs, expected))
	}
}

// VerdictInfo is one query's terminal state as the reliability layer
// recorded it (adapted from core.VerdictRecord by the harness).
type VerdictInfo struct {
	QID          uint16
	Terminal     bool    // reached a terminal verdict
	Degraded     bool    // settled degraded (summary-estimate answer)
	ErrBound     float64 // reported bound of the served degraded answer
	SummaryBound float64 // raw summary bound before degradation widening
}

// QueryVerdicts checks the reliability layer's two contracts
// (DESIGN.md §19): every issued query reaches a terminal verdict
// exactly once, and a degraded answer never reports a tighter error
// bound than the summary math allows.
func (c *Checker) QueryVerdicts(issued int, recs []VerdictInfo) {
	seen := make(map[uint16]int, len(recs))
	for _, r := range recs {
		seen[r.QID]++
		if !r.Terminal {
			c.extra = append(c.extra,
				fmt.Sprintf("query %d: settled with non-terminal verdict", r.QID))
		}
		if seen[r.QID] == 2 {
			c.extra = append(c.extra,
				fmt.Sprintf("query %d: settled more than once", r.QID))
		}
		if r.Degraded && r.ErrBound < r.SummaryBound {
			c.extra = append(c.extra, fmt.Sprintf(
				"query %d: degraded answer reports bound %.4f tighter than the summary bound %.4f",
				r.QID, r.ErrBound, r.SummaryBound))
		}
	}
	if len(seen) != issued {
		c.extra = append(c.extra, fmt.Sprintf(
			"%d queries issued but %d reached a verdict: every query must settle exactly once",
			issued, len(seen)))
	}
}

// maxReported bounds the violation list so a systemic failure reads as
// a handful of examples plus a count, not megabytes of log.
const maxReported = 12

// Violations returns every invariant breach found, deterministically
// ordered, or nil. Call once, after the run (and after the in-flight
// sweep).
func (c *Checker) Violations() []string {
	out := append([]string(nil), c.extra...)

	keys := make([]readingKey, 0, len(c.readings))
	for k := range c.readings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Producer != keys[j].Producer {
			return keys[i].Producer < keys[j].Producer
		}
		return keys[i].T < keys[j].T
	})
	conservation := 0
	for _, k := range keys {
		s := c.readings[k]
		switch {
		case s.produced == 0 && s.stored > 0:
			out = append(out, fmt.Sprintf(
				"ghost reading (node %d, t=%d): stored %d times but never produced", k.Producer, k.T, s.stored))
		case s.produced > 0 && s.stored == 0 && s.lost == 0 && !s.inflight:
			conservation++
			if conservation <= maxReported {
				out = append(out, fmt.Sprintf(
					"reading (node %d, t=%d) vanished: not stored, not loss-accounted, not in flight", k.Producer, k.T))
			}
		}
	}
	if conservation > maxReported {
		out = append(out, fmt.Sprintf("… and %d more vanished readings", conservation-maxReported))
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Stats reports bookkeeping totals (tests of the checker itself).
func (c *Checker) Stats() (produced, stored, lost, inflight int) {
	for _, s := range c.readings {
		if s.produced > 0 {
			produced++
		}
		if s.stored > 0 {
			stored++
		}
		if s.lost > 0 {
			lost++
		}
		if s.inflight {
			inflight++
		}
	}
	return
}
