package core

import (
	"testing"

	"scoop/internal/netsim"
	"scoop/internal/query"
	"scoop/internal/workload"
)

func TestVerdictStringsRoundTrip(t *testing.T) {
	for _, v := range AllVerdicts() {
		got, ok := ParseVerdict(v.String())
		if !ok || got != v {
			t.Fatalf("ParseVerdict(%q) = %v, %v; want %v", v.String(), got, ok, v)
		}
	}
	if _, ok := ParseVerdict("bogus"); ok {
		t.Fatal("ParseVerdict accepted a bogus name")
	}
}

func TestBitmapSetOps(t *testing.T) {
	var a, b Bitmap
	if !a.Empty() {
		t.Fatal("fresh bitmap not empty")
	}
	a.Set(3)
	a.Set(70)
	b.Set(70)
	b.Set(200)
	if a.Empty() || !a.Intersects(&b) {
		t.Fatal("Intersects missed the shared node")
	}
	diff := a.AndNot(&b)
	if diff.Count() != 1 || !diff.Has(3) || diff.Has(70) {
		t.Fatalf("AndNot = %v, want {3}", diff.IDs())
	}
	a.Or(&b)
	if a.Count() != 3 || !a.Has(200) {
		t.Fatalf("Or = %v, want {3,70,200}", a.IDs())
	}
	var c Bitmap
	d := c.AndNot(&a)
	if c.Intersects(&a) || !d.Empty() {
		t.Fatal("empty-bitmap set ops misbehaved")
	}
}

// relConfig is testConfig plus an enabled reliability layer.
func relConfig() Config {
	cfg := testConfig()
	cfg.QueryDeadline = 10 * netsim.Second
	cfg.QueryRetryMax = 2
	return cfg
}

// TestPendingEvictsUnderTotalReplyLoss is the regression test for the
// unbounded pending-state growth the pre-§19 base suffered: queries
// whose replies never arrive now settle to a terminal verdict when the
// retry budget runs out, and their collection state is evicted.
func TestPendingEvictsUnderTotalReplyLoss(t *testing.T) {
	tn := newTestNet(t, meshTopo(6, 0.9), relConfig(), nil, 11)
	tn.sim.At(5*netsim.Minute, func() {
		tn.net.SetBlackout(1, 5, true) // total silence: nothing gets through
	})
	for i := 0; i < 3; i++ {
		at := 5*netsim.Minute + netsim.Time(i+1)*netsim.Second
		tn.sim.At(at, func() {
			tn.base.IssueQuery(workload.Query{ValueLo: 0, ValueHi: 20, TimeLo: 0, TimeHi: at})
		})
	}
	tn.sim.Run(10 * netsim.Minute)
	if n := tn.base.QueryJournalLen(); n != 3 {
		t.Fatalf("journalled %d queries, want 3", n)
	}
	if got := len(tn.base.VerdictLog()); got != 3 {
		t.Fatalf("%d verdicts for 3 queries: every query must settle exactly once", got)
	}
	terminal := tn.stats.QueryVerdictComplete + tn.stats.QueryVerdictPartial +
		tn.stats.QueryVerdictDegraded + tn.stats.QueryVerdictFailed
	if terminal != 3 {
		t.Fatalf("verdict counters sum to %d, want 3", terminal)
	}
	if tn.stats.QueryRetries == 0 {
		t.Fatal("no retries under total loss: deadline machinery never fired")
	}
	if open := tn.base.PendingOpen(); open != 0 {
		t.Fatalf("%d pending queries still hold collection state after settling", open)
	}
}

// TestRetryRecoversAfterBlackout: a query issued into a blackout is
// lost, but once the blackout lifts the deadline retry re-asks the
// silent owners and the query completes.
func TestRetryRecoversAfterBlackout(t *testing.T) {
	tn := newTestNet(t, meshTopo(6, 0.95), relConfig(), nil, 12)
	tn.sim.At(5*netsim.Minute-10*netsim.Second, func() { tn.net.SetBlackout(1, 5, true) })
	tn.sim.At(5*netsim.Minute, func() {
		tn.base.IssueQuery(workload.Query{ValueLo: 0, ValueHi: 20, TimeLo: 0, TimeHi: 5 * netsim.Minute})
	})
	tn.sim.At(5*netsim.Minute+5*netsim.Second, func() { tn.net.SetBlackout(1, 5, false) })
	tn.sim.Run(10 * netsim.Minute)
	if tn.stats.QueryRetries == 0 {
		t.Fatal("no retry was issued")
	}
	if tn.stats.QueryVerdictComplete != 1 {
		t.Fatalf("verdicts: complete=%d partial=%d degraded=%d failed=%d; want 1 complete",
			tn.stats.QueryVerdictComplete, tn.stats.QueryVerdictPartial,
			tn.stats.QueryVerdictDegraded, tn.stats.QueryVerdictFailed)
	}
	if tn.stats.RepliesReceived != tn.stats.RepliesExpected {
		t.Fatalf("received %d of %d expected replies after retry",
			tn.stats.RepliesReceived, tn.stats.RepliesExpected)
	}
}

// TestDegradedAggAnswerFromSummaries: an in-network aggregate whose
// owners all go dark settles degraded — answered from the retained
// summaries with an error bound no tighter than the summary math.
func TestDegradedAggAnswerFromSummaries(t *testing.T) {
	cfg := relConfig()
	cfg.AggForcePlan = query.PlanAgg
	tn := newTestNet(t, meshTopo(6, 0.95), cfg, nil, 13)
	tn.sim.At(6*netsim.Minute, func() { tn.net.SetBlackout(1, 5, true) })
	var qid uint16
	tn.sim.At(6*netsim.Minute+netsim.Second, func() {
		tn.base.IssueAgg(query.AggQuery{
			Op: query.OpCount, ValueLo: 0, ValueHi: 20,
			TimeLo: 2 * netsim.Minute, TimeHi: 6 * netsim.Minute,
		})
		qid = tn.base.LastQueryID()
	})
	tn.sim.Run(10 * netsim.Minute)
	if tn.stats.QueryVerdictDegraded != 1 || tn.stats.DegradedAnswers != 1 {
		t.Fatalf("verdicts: complete=%d partial=%d degraded=%d failed=%d; want 1 degraded",
			tn.stats.QueryVerdictComplete, tn.stats.QueryVerdictPartial,
			tn.stats.QueryVerdictDegraded, tn.stats.QueryVerdictFailed)
	}
	if _, _, ok := tn.base.AggAnswer(qid); !ok {
		t.Fatal("degraded aggregate has no answer")
	}
	var rec *VerdictRecord
	for i := range tn.base.VerdictLog() {
		if tn.base.VerdictLog()[i].QID == qid {
			rec = &tn.base.VerdictLog()[i]
		}
	}
	if rec == nil || rec.Verdict != VerdictDegraded {
		t.Fatalf("no degraded verdict record for query %d", qid)
	}
	if rec.ErrBound < rec.SummaryBound {
		t.Fatalf("degraded bound %v tighter than summary bound %v", rec.ErrBound, rec.SummaryBound)
	}
	if open := tn.base.PendingOpen(); open != 0 {
		t.Fatalf("%d pending aggregates still open after settling", open)
	}
}

// TestBaseRestartRecoversOpenQueries: a basestation restart wipes the
// pending RAM, but the durable journal re-registers the open query and
// the deadline machinery re-asks its owners.
func TestBaseRestartRecoversOpenQueries(t *testing.T) {
	tn := newTestNet(t, meshTopo(6, 0.95), relConfig(), nil, 14)
	tn.sim.At(5*netsim.Minute-10*netsim.Second, func() { tn.net.SetBlackout(1, 5, true) })
	tn.sim.At(5*netsim.Minute, func() {
		tn.base.IssueQuery(workload.Query{ValueLo: 0, ValueHi: 20, TimeLo: 0, TimeHi: 5 * netsim.Minute})
	})
	tn.sim.At(5*netsim.Minute+2*netsim.Second, func() { tn.net.Restart(0) })
	tn.sim.At(5*netsim.Minute+5*netsim.Second, func() { tn.net.SetBlackout(1, 5, false) })
	tn.sim.Run(12 * netsim.Minute)
	if n := tn.base.QueryJournalLen(); n != 1 {
		t.Fatalf("journal holds %d queries, want the 1 issued pre-restart", n)
	}
	if got := len(tn.base.VerdictLog()); got != 1 {
		t.Fatalf("%d verdicts after restart recovery, want exactly 1", got)
	}
	rec := tn.base.VerdictLog()[0]
	if rec.Verdict == VerdictOpen || rec.Verdict == VerdictFailed {
		t.Fatalf("recovered query settled %v; want it re-asked and answered", rec.Verdict)
	}
	if open := tn.base.PendingOpen(); open != 0 {
		t.Fatalf("%d pending queries open after recovery settled", open)
	}
}
