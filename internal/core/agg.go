package core

import (
	"sort"

	"scoop/internal/dense"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/prof"
	"scoop/internal/query"
	"scoop/internal/storage"
	"scoop/internal/trace"
	"scoop/internal/trickle"
	"scoop/internal/workload"
)

// aggCombine is one query's in-network combining buffer on a node:
// the merged partial state, how many targeted nodes it folds in, the
// deepest hop count any merged partial travelled (loop TTL), and —
// for targeted nodes — the deadline for folding in the local scan.
type aggCombine struct {
	part     query.Partial
	contribs int
	hops     uint8
	wantOwn  bool
	dueOwn   netsim.Time
	q        *AggQueryMsg // set while wantOwn, for the local scan
	retries  int          // flush attempts deferred for lack of a route
	nodes    Bitmap       // contributor bitmap (Track queries only)
}

// Retry budgets. A combined partial folds a whole subtree, so unlike
// fire-and-forget tuple replies a routeless node holds it and retries
// rather than losing it, and a launched one gets one app-level resend
// after the MAC gives up. Resends go to the SAME parent the first
// attempt used: the frame may have been delivered with only the ack
// lost, and per-receiver (sender,query,seq) dedup only protects
// against double counting when the duplicate lands on the same
// receiver. More resends would stack full MAC retry cycles onto
// hopeless links and burn the very bytes combining saves.
const (
	aggRouteRetries = 12 // flush deferrals while no parent is known
	aggSendRetries  = 1  // app-level resends of one launched partial
)

// aggPartKey builds the per-sender (query, seq) dedup key for combined
// partial-aggregate messages (the sender is the seenTable row).
func aggPartKey(qid uint16, seq uint8) uint64 {
	return uint64(qid)<<8 | uint64(seq)
}

// scanPartial folds every stored reading matching the value and time
// ranges into a partial aggregate.
func scanPartial(store *storage.DataBuffer, vlo, vhi int, tlo, thi netsim.Time) query.Partial {
	var p query.Partial
	store.Scan(func(r storage.Reading) bool {
		if r.Time < int64(tlo) || r.Time > int64(thi) {
			return true
		}
		if r.Value < vlo || r.Value > vhi {
			return true
		}
		p.Add(r.Value)
		return true
	})
	return p
}

// onAggQuery processes an aggregate query packet: feed Trickle
// suppression, relay selectively (same bitmap rule as tuple queries),
// and — when targeted — schedule the local scan so that deep nodes
// answer before their ancestors flush (paper-lineage TAG epoch
// scheduling, adapted to Scoop's jittered timers).
func (n *Node) onAggQuery(q *AggQueryMsg) {
	key := queryKey(q.ID)
	if int(q.ID) < len(n.aggQueries) && n.aggQueries[q.ID] != nil {
		n.qGos.Heard(key)
		return
	}
	n.aggQueries = dense.Grow(n.aggQueries, int(q.ID))
	n.aggQueries[q.ID] = q
	if n.shouldRelay(&q.Bitmap) {
		n.qGos.Add(key)
	}
	n.aggAnswered = dense.Grow(n.aggAnswered, int(q.ID))
	if !q.Bitmap.Has(n.api.ID()) || n.aggAnswered[q.ID] {
		return
	}
	n.aggAnswered[q.ID] = true
	n.stats.AggQueriesHeard++
	e := n.aggEntry(q.ID)
	e.wantOwn = true
	e.q = q
	hops := int(n.tree.Hops())
	if hops > n.cfg.MaxHops {
		hops = 1 // routeless nodes answer early; the reply drops anyway
	}
	// Deep nodes answer first so ancestors can combine; the wide
	// random spread desynchronises siblings, whose simultaneous
	// partials would otherwise collide like a reply storm.
	hold := n.cfg.AggCombineWindow / netsim.Time(1+hops)
	jitter := netsim.Time(50 + n.api.RandIntn(int(n.cfg.AggCombineWindow/2)))
	e.dueOwn = n.api.Now() + hold + jitter
	n.armAggFlush(e.dueOwn)
}

// onAggPartial merges a descendant's combined partial into the local
// buffer and holds it briefly for further combining — the in-network
// aggregation step that replaces per-hop tuple forwarding.
func (n *Node) onAggPartial(m *AggReplyMsg) {
	prev := n.cfg.Prof.Enter(prof.PhaseAggCombine)
	n.aggPartial(m)
	n.cfg.Prof.Exit(prev)
}

func (n *Node) aggPartial(m *AggReplyMsg) {
	if int(m.Hops) > n.cfg.MaxHops {
		return
	}
	if n.seenAggParts.Seen(m.Node, aggPartKey(m.QueryID, m.Seq)) {
		return
	}
	e := n.aggEntry(m.QueryID)
	e.part.Merge(m.Part)
	e.contribs += int(m.Contribs)
	e.nodes.Or(&m.Nodes)
	if h := m.Hops + 1; h > e.hops {
		e.hops = h
	}
	n.stats.AggCombined++
	n.cfg.Trace.Emit(trace.Event{Kind: trace.AggCombined, Node: uint16(n.api.ID()),
		Peer: uint16(m.Node), ID: m.QueryID, Value: int64(e.contribs)})
	n.armAggFlush(n.api.Now() + n.cfg.AggFlushDelay)
}

// aggEntry returns (allocating if needed) the combine buffer for qid.
func (n *Node) aggEntry(qid uint16) *aggCombine {
	n.aggPending = dense.Grow(n.aggPending, int(qid))
	if n.aggPending[qid] == nil {
		n.aggPending[qid] = &aggCombine{}
	}
	return n.aggPending[qid]
}

// armAggFlush arms (or pulls forward) the shared flush timer.
func (n *Node) armAggFlush(at netsim.Time) {
	if n.aggFlushAt != 0 && n.aggFlushAt <= at {
		return
	}
	n.aggFlushAt = at
	n.api.SetTimer(timerAggFlush, at-n.api.Now())
}

// flushAgg runs when the flush timer fires: fold in due local scans,
// launch every ready combine buffer toward the basestation, and
// re-arm for entries still waiting on their own scan deadline.
func (n *Node) flushAgg() {
	prev := n.cfg.Prof.Enter(prof.PhaseAggCombine)
	n.flushAggNow()
	n.cfg.Prof.Exit(prev)
}

func (n *Node) flushAggNow() {
	now := n.api.Now()
	n.aggFlushAt = 0
	var next netsim.Time
	// The dense buffer is walked in ascending query-ID order — the
	// same order the pre-scale-tier map-and-sort produced.
	for id := range n.aggPending {
		e := n.aggPending[id]
		if e == nil {
			continue
		}
		qid := uint16(id)
		if e.wantOwn {
			if now < e.dueOwn {
				// Hold the whole buffer until the local scan folds in.
				if next == 0 || e.dueOwn < next {
					next = e.dueOwn
				}
				continue
			}
			e.part.Merge(scanPartial(n.store, e.q.ValueLo, e.q.ValueHi, e.q.TimeLo, e.q.TimeHi))
			e.contribs++
			if e.q.Track {
				e.nodes.Set(n.api.ID())
			}
			e.wantOwn = false
			e.q = nil
		}
		if !n.tree.HasRoute() && e.retries < aggRouteRetries {
			// The partial folds a whole subtree; hold it until the
			// parent comes back rather than losing it.
			e.retries++
			retry := now + n.cfg.AggFlushDelay
			if next == 0 || retry < next {
				next = retry
			}
			continue
		}
		n.aggPending[qid] = nil
		n.sendAggReply(qid, e)
	}
	if next != 0 {
		n.armAggFlush(next)
	}
}

// sendAggReply launches one combined partial toward the parent. Like
// tuple replies, a targeted node reports even when nothing matched,
// so the basestation can account for coverage.
func (n *Node) sendAggReply(qid uint16, e *aggCombine) {
	if e.contribs == 0 && e.part.Empty() {
		return
	}
	if !n.tree.HasRoute() {
		return // retries exhausted; the partial is lost
	}
	n.aggSeq = dense.Grow(n.aggSeq, int(qid))
	seq := n.aggSeq[qid]
	n.aggSeq[qid] = seq + 1
	m := &AggReplyMsg{
		QueryID:  qid,
		Node:     n.api.ID(),
		Seq:      seq,
		Contribs: uint16(e.contribs),
		Part:     e.part,
		// onAggPartial already counted one hop per merge; a fresh
		// local partial starts at zero.
		Hops:  e.hops,
		Nodes: e.nodes,
	}
	n.stats.AggRepliesSent++
	n.transmitAggReply(m, n.tree.Parent(), 0)
}

// transmitAggReply sends one partial to the parent chosen at launch,
// re-sending the identical message to the SAME destination on
// link-layer failure: per-receiver (sender, query, seq) dedup then
// makes duplicates idempotent, so at-least-once delivery cannot
// double count. (Re-routing a resend to a new parent could double
// count: the first frame may have been delivered with only its ack
// lost.)
func (n *Node) transmitAggReply(m *AggReplyMsg, to netsim.NodeID, attempt int) {
	n.api.Send(&netsim.Packet{
		Class:        metrics.AggReply,
		Dst:          to,
		Origin:       n.api.ID(),
		OriginParent: n.tree.Parent(),
		Size:         aggReplySize(m),
		Payload:      m,
	}, func(ok bool) {
		if !ok && attempt < aggSendRetries {
			n.cfg.Trace.Emit(trace.Event{Kind: trace.AggResent, Node: uint16(n.api.ID()),
				ID: m.QueryID, Aux: int64(attempt + 1)})
			n.transmitAggReply(m, to, attempt+1)
		}
	})
}

// ---------------------------------------------------------------------
// Basestation side: plan selection, dissemination, answer assembly.

// pendingAgg tracks one issued aggregate query at the basestation.
type pendingAgg struct {
	q        query.AggQuery
	plan     query.Plan
	est      query.Estimate
	part     query.Partial
	contribs int
	expected int
	issued   netsim.Time
	answered bool

	// Reliability layer state (DESIGN.md §19); all zero when
	// Config.QueryDeadline is 0.
	targets  Bitmap      // the issued target set
	nodes    Bitmap      // contributors heard so far (across attempts)
	deadline netsim.Time // next retry/settle point
	attempt  int         // re-issues so far
	verdict  Verdict     // terminal verdict once settled
	wires    []uint16    // retry wire IDs mapping back to this query
	logIdx   int         // 1+index into the durable journal; 0 = none
}

// IssueAgg plans and executes one aggregate query, returning the
// planner's decision. Depending on the plan the answer is available
// immediately (summary), or assembles as partials / tuple replies
// arrive; AggAnswer reads it.
func (b *Base) IssueAgg(q query.AggQuery) query.Decision {
	b.stats.AggQueriesIssued++
	// Aggregate value ranges feed the same query-statistics profile
	// that drives index construction.
	b.queryLog = append(b.queryLog, loggedQuery{
		at: b.api.Now(), lo: q.ValueLo, hi: q.ValueHi, ranged: true,
	})

	// Planning — target resolution, summary snapshots, estimates and
	// the plan decision — attributes to the planner phase.
	profPrev := b.cfg.Prof.Enter(prof.PhasePlanner)
	targets, covered := b.rangeTargets(q.ValueLo, q.ValueHi, q.TimeLo, q.TimeHi)
	snaps := b.summarySnapshots()
	est := query.EstimateFromSummaries(q, snaps)
	countEst := est
	if q.Op != query.OpCount {
		countQ := q
		countQ.Op = query.OpCount
		countEst = query.EstimateFromSummaries(countQ, snaps)
	}
	expTuples := float64(len(targets)) * 8 // fallback guess
	if countEst.Valid {
		expTuples = countEst.Value
	}
	dec := query.Choose(query.PlanInput{
		Op:                q.Op,
		N:                 b.api.N(),
		Targets:           len(targets),
		Covered:           covered,
		AvgDepth:          b.avgDepth(targets),
		ExpTuples:         expTuples,
		MaxTuplesPerReply: b.cfg.ReplyMaxReadings,
		Est:               est,
		ErrBudget:         q.ErrBudget,
		Force:             b.cfg.AggForcePlan,
		Trace:             b.cfg.Trace,
	})
	b.cfg.Prof.Exit(profPrev)

	switch dec.Plan {
	case query.PlanSummary:
		b.stats.PlanSummaryChosen++
		b.stats.SummaryAnswered++
		b.qidNext++
		pa := &pendingAgg{
			q: q, plan: dec.Plan, est: est,
			issued: b.api.Now(), answered: true,
		}
		b.pendingAgg = dense.Grow(b.pendingAgg, int(b.qidNext))
		b.pendingAgg[b.qidNext] = pa
		b.stats.AggAnswered++
		b.relRegisterAgg(b.qidNext, pa)

	case query.PlanTuple:
		b.stats.PlanTupleChosen++
		wq := workload.Query{
			ValueLo: q.ValueLo, ValueHi: q.ValueHi,
			TimeLo: q.TimeLo, TimeHi: q.TimeHi,
		}
		b.issueTupleQuery(wq, targets)
		// The tuple pendingQuery owns the verdict; the agg wrapper just
		// carries the operator and the estimate degradation falls back
		// to.
		b.pendingAgg = dense.Grow(b.pendingAgg, int(b.qidNext))
		b.pendingAgg[b.qidNext] = &pendingAgg{
			q: q, plan: dec.Plan, est: est, issued: b.api.Now(),
		}

	case query.PlanAgg, query.PlanFlood:
		if dec.Plan == query.PlanAgg {
			b.stats.PlanAggChosen++
		} else {
			b.stats.PlanFloodChosen++
			if covered {
				// Forced flood over a covered window still asks everyone.
				targets = b.allNodes()
			}
		}
		b.qidNext++
		msg := &AggQueryMsg{
			ID: b.qidNext, Op: q.Op,
			ValueLo: q.ValueLo, ValueHi: q.ValueHi,
			TimeLo: q.TimeLo, TimeHi: q.TimeHi,
			Track: b.relOn(),
		}
		pa := &pendingAgg{q: q, plan: dec.Plan, est: est, issued: b.api.Now()}
		for _, id := range targets {
			if id == b.api.ID() {
				continue
			}
			msg.Bitmap.Set(id)
			if msg.Track {
				pa.targets.Set(id)
			}
			pa.expected++
		}
		// The base folds in its own store (owned plus washed-up
		// readings) at zero radio cost.
		pa.part = scanPartial(b.store, q.ValueLo, q.ValueHi, q.TimeLo, q.TimeHi)
		b.pendingAgg = dense.Grow(b.pendingAgg, int(msg.ID))
		b.pendingAgg[msg.ID] = pa
		b.cfg.Trace.Emit(trace.Event{Kind: trace.QueryIssued, Node: uint16(b.api.ID()),
			Flag: uint8(dec.Plan), ID: msg.ID, Value: int64(pa.expected)})
		if pa.expected > 0 {
			b.aggOut = dense.Grow(b.aggOut, int(msg.ID))
			b.aggOut[msg.ID] = msg
			b.qGos.Add(queryKey(msg.ID))
			b.sendAggQuery(queryKey(msg.ID))
			b.qGos.Heard(queryKey(msg.ID)) // count our own broadcast
		} else {
			pa.answered = true
			b.stats.AggAnswered++
		}
		b.relRegisterAgg(msg.ID, pa)
	}
	return dec
}

// onAggReply folds one partial-aggregate message into its pending
// query at the basestation.
func (b *Base) onAggReply(m *AggReplyMsg) {
	prev := b.cfg.Prof.Enter(prof.PhaseAggCombine)
	b.aggReply(m)
	b.cfg.Prof.Exit(prev)
}

func (b *Base) aggReply(m *AggReplyMsg) {
	qid := b.resolveWire(m.QueryID)
	if int(qid) >= len(b.pendingAgg) {
		return
	}
	pa := b.pendingAgg[qid]
	if pa == nil || pa.verdict != VerdictOpen {
		return // settled (reliability layer): late partials are dropped
	}
	// The per-sender (query, seq) dedup stays keyed on the wire ID:
	// node flush sequence numbers are per wire query.
	if b.seenAggParts.Seen(m.Node, aggPartKey(m.QueryID, m.Seq)) {
		return
	}
	if !m.Nodes.Empty() {
		if pa.nodes.Intersects(&m.Nodes) {
			// A retry re-scanned owners an earlier attempt already
			// folded in; merging would double count, so the whole
			// partial is dropped (conservative — a combined partial
			// mixing new and seen owners is discarded with them).
			return
		}
		pa.nodes.Or(&m.Nodes)
	}
	pa.part.Merge(m.Part)
	pa.contribs += int(m.Contribs)
	b.stats.AggPartialsReceived++
	b.stats.AggContributors += int64(m.Contribs)
	if !pa.answered {
		pa.answered = true
		b.stats.AggAnswered++
		b.stats.AggFirstAnswerMS += int64(b.api.Now() - pa.issued)
		b.cfg.Trace.Emit(trace.Event{Kind: trace.QueryAnswered, Node: uint16(b.api.ID()),
			ID: qid, Value: int64(pa.contribs)})
	}
	if pa.deadline != 0 && pa.nodes.Count() >= pa.expected {
		// Every targeted owner accounted for: settle complete now.
		b.settleAgg(qid, pa, true)
	}
}

// AggAnswer evaluates the current answer of an issued aggregate
// query. ok is false while nothing has arrived (or the plan cannot
// answer the operator yet).
func (b *Base) AggAnswer(qid uint16) (float64, query.Plan, bool) {
	if int(qid) >= len(b.pendingAgg) || b.pendingAgg[qid] == nil {
		return 0, query.PlanAuto, false
	}
	pa := b.pendingAgg[qid]
	if pa.verdict == VerdictDegraded {
		// Settled degraded: the answer is the widened summary estimate
		// (query.Degrade), not the partial result.
		return pa.est.Value, pa.plan, true
	}
	switch pa.plan {
	case query.PlanSummary:
		return pa.est.Value, pa.plan, true
	case query.PlanTuple:
		if int(qid) >= len(b.pending) || b.pending[qid] == nil {
			return 0, pa.plan, false
		}
		pq := b.pending[qid]
		if pa.q.Op == query.OpCount {
			return float64(pq.total), pa.plan, true
		}
		if pa.q.Op == query.OpQuantile {
			// Quantiles cannot merge into partials; the tuple plan
			// computes them at the base over the (possibly truncated)
			// returned set.
			vals := make([]int, 0, len(pq.readings))
			for _, r := range pq.readings {
				vals = append(vals, r.Value)
			}
			if len(vals) == 0 {
				return 0, pa.plan, false
			}
			sort.Ints(vals)
			idx := int(pa.q.Quantile * float64(len(vals)))
			if idx >= len(vals) {
				idx = len(vals) - 1
			}
			return float64(vals[idx]), pa.plan, true
		}
		var p query.Partial
		for _, r := range pq.readings {
			p.Add(r.Value)
		}
		v, ok := p.Answer(pa.q.Op)
		return v, pa.plan, ok
	default:
		v, ok := pa.part.Answer(pa.q.Op)
		return v, pa.plan, ok
	}
}

// AggContribs reports how many nodes (plus the base's own scan, not
// counted) contributed to an aggregate answer, and how many were
// expected. Diagnostics/tests.
func (b *Base) AggContribs(qid uint16) (got, expected int) {
	if int(qid) < len(b.pendingAgg) && b.pendingAgg[qid] != nil {
		return b.pendingAgg[qid].contribs, b.pendingAgg[qid].expected
	}
	return 0, 0
}

// summarySnapshots adapts the retained summary history to the
// estimator's view.
func (b *Base) summarySnapshots() []query.SummarySnapshot {
	out := make([]query.SummarySnapshot, 0, len(b.history))
	for _, s := range b.history {
		out = append(out, query.SummarySnapshot{
			Node: uint16(s.Node), SentAt: s.SentAt,
			Min: s.Min, Max: s.Max, Sum: s.Sum,
			Rate: s.Rate, Hist: s.Hist,
		})
	}
	return out
}

// avgDepth estimates the mean routing-tree depth of the target set
// from the hop counts summaries travelled; nodes with no summary yet
// count at the fallback depth 2.
func (b *Base) avgDepth(targets []netsim.NodeID) float64 {
	if len(targets) == 0 {
		return 1
	}
	total := 0.0
	for _, id := range targets {
		if s := b.latest[id]; s != nil {
			total += float64(s.Hops) + 1
		} else {
			total += 2
		}
	}
	return total / float64(len(targets))
}

// sendAggQuery is the aggregate branch of the base's query-Trickle
// transmit callback.
func (b *Base) sendAggQuery(key trickle.Key) {
	if int(key) >= len(b.aggOut) || b.aggOut[key] == nil {
		return
	}
	q := b.aggOut[key]
	b.api.Broadcast(&netsim.Packet{
		Class:        metrics.Query,
		Origin:       b.api.ID(),
		OriginParent: netsim.NoNode,
		Size:         aggQuerySize(q),
		Payload:      q,
	})
}
