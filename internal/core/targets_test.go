package core

import (
	"fmt"
	"testing"

	"scoop/internal/index"
	"scoop/internal/netsim"
	"scoop/internal/workload"
)

// ownersSplit maps values [0,10] to a and [11,20] to b.
func ownersSplit(a, b netsim.NodeID) []netsim.NodeID {
	out := make([]netsim.NodeID, 21)
	for i := range out {
		if i <= 10 {
			out[i] = a
		} else {
			out[i] = b
		}
	}
	return out
}

// TestTargetsAcrossGenerations drives Base.targets through hand-built
// index history: pre-index windows, the 30s adoption-slack overlap
// between generations, store-local generations, and multi-generation
// owner unions.
func TestTargetsAcrossGenerations(t *testing.T) {
	sec := netsim.Second
	gen1 := index.New(1, 0, ownersSplit(1, 3)) // 0-10 → 1, 11-20 → 3
	gen2 := index.New(2, 0, ownersSplit(2, 4)) // 0-10 → 2, 11-20 → 4
	local := index.NewLocal(3)

	cases := []struct {
		name    string
		records []indexRecord
		q       workload.Query
		want    []netsim.NodeID
		covered bool
	}{
		{
			name: "no index yet floods all",
			q:    workload.Query{ValueLo: 0, ValueHi: 20, TimeLo: 50 * sec, TimeHi: 80 * sec},
			want: []netsim.NodeID{1, 2, 3, 4},
		},
		{
			name:    "window predating the first generation floods all",
			records: []indexRecord{{ix: gen1, at: 100 * sec}},
			q:       workload.Query{ValueLo: 0, ValueHi: 20, TimeLo: 50 * sec, TimeHi: 150 * sec},
			want:    []netsim.NodeID{1, 2, 3, 4},
		},
		{
			name:    "single generation, low half of the domain",
			records: []indexRecord{{ix: gen1, at: 100 * sec}},
			q:       workload.Query{ValueLo: 0, ValueHi: 10, TimeLo: 110 * sec, TimeHi: 150 * sec},
			want:    []netsim.NodeID{1},
			covered: true,
		},
		{
			name: "window inside the 30s adoption slack unions both generations",
			records: []indexRecord{
				{ix: gen1, at: 100 * sec},
				{ix: gen2, at: 200 * sec},
			},
			// Gen2 active, but data placed up to 230s may still follow
			// gen1 on laggard nodes.
			q:       workload.Query{ValueLo: 0, ValueHi: 10, TimeLo: 210 * sec, TimeHi: 225 * sec},
			want:    []netsim.NodeID{1, 2},
			covered: true,
		},
		{
			name: "window past the slack uses only the newer generation",
			records: []indexRecord{
				{ix: gen1, at: 100 * sec},
				{ix: gen2, at: 200 * sec},
			},
			q:       workload.Query{ValueLo: 0, ValueHi: 10, TimeLo: 240 * sec, TimeHi: 300 * sec},
			want:    []netsim.NodeID{2},
			covered: true,
		},
		{
			name: "store-local generation in range floods all",
			records: []indexRecord{
				{ix: gen1, at: 100 * sec},
				{ix: local, at: 200 * sec},
			},
			q:    workload.Query{ValueLo: 0, ValueHi: 10, TimeLo: 240 * sec, TimeHi: 300 * sec},
			want: []netsim.NodeID{1, 2, 3, 4},
		},
		{
			name: "store-local generation out of range is ignored",
			records: []indexRecord{
				{ix: gen1, at: 100 * sec},
				{ix: local, at: 200 * sec},
			},
			q:       workload.Query{ValueLo: 0, ValueHi: 10, TimeLo: 110 * sec, TimeHi: 150 * sec},
			want:    []netsim.NodeID{1},
			covered: true,
		},
		{
			name: "multi-generation, whole-domain union",
			records: []indexRecord{
				{ix: gen1, at: 100 * sec},
				{ix: gen2, at: 200 * sec},
			},
			q:       workload.Query{ValueLo: 0, ValueHi: 20, TimeLo: 110 * sec, TimeHi: 300 * sec},
			want:    []netsim.NodeID{1, 2, 3, 4},
			covered: true,
		},
	}

	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tn := newTestNet(t, meshTopo(5, 0.95), testConfig(), nil, int64(40+i))
			tn.base.records = c.records
			got := tn.base.targets(c.q)
			if fmt.Sprint(got) != fmt.Sprint(c.want) {
				t.Fatalf("targets = %v, want %v", got, c.want)
			}
			_, covered := tn.base.rangeTargets(c.q.ValueLo, c.q.ValueHi, c.q.TimeLo, c.q.TimeHi)
			if covered != c.covered {
				t.Fatalf("covered = %v, want %v", covered, c.covered)
			}
		})
	}

	// Node-list queries bypass generation resolution entirely.
	tn := newTestNet(t, meshTopo(5, 0.95), testConfig(), nil, 60)
	got := tn.base.targets(workload.Query{Nodes: []netsim.NodeID{3, 1}})
	if fmt.Sprint(got) != "[3 1]" {
		t.Fatalf("node query targets = %v", got)
	}
}
