package core

import (
	"math/bits"
	"sort"

	"scoop/internal/dense"
	"scoop/internal/histogram"
	"scoop/internal/index"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/prof"
	"scoop/internal/routing"
	"scoop/internal/storage"
	"scoop/internal/trace"
	"scoop/internal/trickle"
)

// Sampler produces the sensor value node id reads at virtual time now.
// The experiment harness adapts a workload.Source to this.
type Sampler func(id netsim.NodeID, now netsim.Time) int

// mapKey encodes a mapping chunk's identity for Trickle.
func mapKey(indexID uint16, num uint8) trickle.Key {
	return trickle.Key(indexID)<<8 | trickle.Key(num)
}

// queryKey encodes a query's identity for Trickle.
func queryKey(id uint16) trickle.Key { return trickle.Key(id) }

// Node is the Scoop application running on every non-base mote.
type Node struct {
	api    *netsim.NodeAPI
	cfg    Config
	stats  *RunStats
	sample Sampler
	start  netsim.Time // when sampling begins (after tree warm-up)

	tree   *routing.Tree
	recent *storage.RecentBuffer
	store  *storage.DataBuffer

	asm    *index.Assembler
	cur    *index.Index // newest complete storage index (nil: none yet)
	chunks map[trickle.Key]index.Chunk
	mapGos *trickle.Trickle

	// Query state is indexed by dense query ID (the basestation issues
	// IDs sequentially), replacing the per-delivery hash maps of the
	// pre-scale-tier code (DESIGN.md §12).
	queries  []*QueryMsg
	answered []bool
	qGos     *trickle.Trickle

	// Aggregate query engine (in-network partial-aggregate combining):
	// known agg queries, answered-once marks, the per-query combine
	// buffer, per-query flush sequence numbers, and the shared flush
	// deadline (0 when the timer is unarmed). All dense by query ID.
	aggQueries  []*AggQueryMsg
	aggAnswered []bool
	aggPending  []*aggCombine
	aggSeq      []uint8
	aggFlushAt  netsim.Time

	// Pending data batches, one per destination owner (paper §5.4
	// batches "up to n readings destined for the same node"; keeping
	// one open batch per owner instead of flushing on every owner
	// change preserves the batching win when consecutive samples
	// straddle a range boundary — see DESIGN.md §6). batchq is dense
	// by owner ID; batchOwners counts owners with a pending batch.
	batchq      [][]storage.Reading
	batchOwners int
	batchSID    uint16

	pendingAnswers []*QueryMsg // queries awaiting the jittered reply

	// Forwarding dedup: ack loss makes upstream senders retransmit
	// packets we already relayed; re-forwarding every copy amplifies
	// exponentially along the path.
	seenSummaries seenTable
	seenReplies   seenTable
	seenAggParts  seenTable

	samplesSinceSummary int
}

// NewNode creates a Scoop node that begins sampling at the absolute
// virtual time startAt (the paper spends the first 10 minutes
// stabilising the routing tree before sampling starts).
func NewNode(cfg Config, stats *RunStats, sample Sampler, startAt netsim.Time) *Node {
	return &Node{cfg: cfg, stats: stats, sample: sample, start: startAt}
}

// CurrentIndex exposes the node's active storage index (nil before the
// first complete one arrives). Test/diagnostic accessor.
func (n *Node) CurrentIndex() *index.Index { return n.cur }

// Store exposes the node's data buffer for tests.
func (n *Node) Store() *storage.DataBuffer { return n.store }

// PendingBatchReadings returns the readings currently held in this
// node's per-owner batch buffers — "in flight at run end" for the
// conservation invariant. Test/diagnostic accessor.
func (n *Node) PendingBatchReadings() []storage.Reading {
	var out []storage.Reading
	for _, rs := range n.batchq {
		out = append(out, rs...)
	}
	return out
}

// Tree exposes the node's routing state for tests.
func (n *Node) Tree() *routing.Tree { return n.tree }

// Init implements netsim.App.
func (n *Node) Init(api *netsim.NodeAPI) {
	// Reboot accounting: readings batched in RAM when the mote loses
	// power are gone for good — tell the conservation probe and the
	// flight recorder before the buffers are recreated. (LostData
	// itself counts only radio-path losses, as before.)
	if n.stats.probeActive() || n.cfg.Trace != nil {
		for _, rs := range n.batchq {
			for _, r := range rs {
				n.stats.probeLostReading(r.Producer, r.Time, metrics.DropReboot.String())
				n.cfg.Trace.Emit(trace.Event{Kind: trace.ReadingLost,
					Node: uint16(api.ID()), Cause: metrics.DropReboot,
					Producer: r.Producer, SampleT: r.Time, Value: int64(r.Value)})
			}
		}
	}
	n.api = api
	n.tree = routing.NewTree(api, false, n.cfg.Tree)
	n.recent = storage.NewRecentBuffer(n.cfg.RecentBufSize)
	n.store = storage.NewDataBuffer(n.cfg.DataBufCap)
	n.asm = index.NewAssembler()
	n.chunks = make(map[trickle.Key]index.Chunk)
	n.queries = nil
	n.answered = nil
	n.aggQueries = nil
	n.aggAnswered = nil
	n.aggPending = nil
	n.aggSeq = nil
	n.aggFlushAt = 0
	n.seenSummaries.reset()
	n.seenReplies.reset()
	n.seenAggParts.reset()
	n.batchq = make([][]storage.Reading, api.N())
	n.batchOwners = 0
	n.mapGos = trickle.New(api, timerMapping, n.cfg.MappingTrickle, n.sendChunk)
	n.qGos = trickle.New(api, timerQuery, n.cfg.QueryTrickle, n.sendQuery)

	// Init doubles as the reboot path (Network.Restart): a rebooted
	// mote loses every piece of RAM state, including its assembled
	// storage index and any pending replies — it is index-less until
	// Trickle redissemination reaches it (or a Preload applies).
	n.cur = n.cfg.Preload
	n.pendingAnswers = nil
	n.batchSID = 0
	n.samplesSinceSummary = 0
	n.tree.Start(timerTree)
	// A node rebooted mid-run (start already past) re-jitters from
	// now: otherwise every node restarted at the same churn instant
	// would sample and summarise in lockstep, nullifying the
	// desynchronisation the jitter exists for.
	start := n.start
	if now := api.Now(); now > start {
		start = now
	}
	jitter := netsim.Time(api.RandIntn(int(n.cfg.SampleInterval)))
	api.SetTimer(timerSample, start+jitter-api.Now())
	if !n.cfg.DisableSummaries {
		sjitter := netsim.Time(api.RandIntn(int(n.cfg.SummaryInterval)))
		api.SetTimer(timerSummary, start+sjitter-api.Now())
	}
}

// Timer implements netsim.App.
func (n *Node) Timer(id int) {
	switch id {
	case timerTree:
		n.tree.OnTimer()
	case timerSample:
		n.takeSample()
		n.api.SetTimer(timerSample, n.cfg.SampleInterval)
	case timerSummary:
		n.sendSummary()
		n.api.SetTimer(timerSummary, n.cfg.SummaryInterval)
	case timerMapping:
		n.mapGos.OnTimer()
	case timerQuery:
		n.qGos.OnTimer()
	case timerBatch:
		n.flushBatch()
	case timerReply:
		for _, q := range n.pendingAnswers {
			n.answer(q)
		}
		n.pendingAnswers = nil
	case timerAggFlush:
		n.flushAgg()
	}
}

// Receive implements netsim.App. Wall time spent here attributes to
// the node-recv phase (nested agg-combine/chunk spans re-attribute
// themselves).
func (n *Node) Receive(p *netsim.Packet) {
	prev := n.cfg.Prof.Enter(prof.PhaseNodeRecv)
	n.receive(p)
	n.cfg.Prof.Exit(prev)
}

func (n *Node) receive(p *netsim.Packet) {
	n.tree.Observe(p)
	switch m := p.Payload.(type) {
	case *SummaryMsg:
		n.learnDescendant(p)
		// A descendant advertising an outdated index (a rebooted node
		// reports 0) is a Trickle inconsistency: resume fast gossip of
		// our current generation so it catches up (mapping chunks
		// retire after MaxRounds and would otherwise stay silent).
		if n.cur != nil && !n.cur.Local && m.LastIndexID < n.cur.ID {
			resetChunks(n.chunks, n.cur.ID, n.mapGos)
		}
		if int(m.Hops) <= n.cfg.MaxHops && !n.seenSummaries.Seen(m.Node, uint64(m.SentAt)) {
			fwd := *m
			fwd.Hops++
			n.forwardUp(p, &fwd, metrics.Summary, summarySize(m))
		}
	case *ReplyMsg:
		n.learnDescendant(p)
		if int(m.Hops) <= n.cfg.MaxHops && !n.seenReplies.Seen(m.Node, uint64(m.QueryID)) {
			fwd := *m
			fwd.Hops++
			n.stats.RepliesForwarded++
			n.forwardUp(p, &fwd, metrics.Reply, replySize(m))
		}
	case *AggReplyMsg:
		n.learnDescendant(p)
		n.onAggPartial(m)
	case *DataMsg:
		n.learnDescendant(p)
		n.handleData(m)
	case *MappingMsg:
		n.onChunk(m.Chunk)
	case *QueryMsg:
		n.onQuery(m)
	case *AggQueryMsg:
		n.onAggQuery(m)
	}
}

// Snoop implements netsim.App: overheard traffic still feeds link
// estimation.
func (n *Node) Snoop(p *netsim.Packet) { n.tree.Observe(p) }

// learnDescendant records the packet's origin as reachable via the
// link-layer sender, feeding the descendants list used by routing
// rule 5. Traffic arriving from our own parent teaches us nothing
// about our subtree.
func (n *Node) learnDescendant(p *netsim.Packet) {
	if p.Src != n.tree.Parent() && p.Origin != n.api.ID() {
		n.tree.RecordUpstream(p.Origin, p.Src)
	}
}

// forwardUp relays a summary or reply one hop toward the basestation.
func (n *Node) forwardUp(p *netsim.Packet, payload any, class metrics.Class, size int) {
	if !n.tree.HasRoute() {
		return // nowhere to go; the message is lost
	}
	fwd := &netsim.Packet{
		Class:        class,
		Dst:          n.tree.Parent(),
		Origin:       p.Origin,
		OriginParent: p.OriginParent,
		Size:         size,
		Payload:      payload,
	}
	n.api.Send(fwd, nil)
}

// takeSample reads the sensor and routes the reading per the current
// storage index (paper §5.4).
func (n *Node) takeSample() {
	now := n.api.Now()
	v := n.sample(n.api.ID(), now)
	n.stats.noteProduced(uint16(n.api.ID()), int64(now))
	n.cfg.Trace.Emit(trace.Event{Kind: trace.ReadingSampled, Node: uint16(n.api.ID()),
		Producer: uint16(n.api.ID()), SampleT: int64(now), Value: int64(v)})
	n.recent.Add(v)
	n.samplesSinceSummary++
	r := storage.Reading{Producer: uint16(n.api.ID()), Value: v, Time: int64(now)}

	owner, sid, ok := n.lookupOwner(v)
	if !ok || owner == n.api.ID() {
		// No (usable) index yet → store-local default; or we own v.
		n.store.Store(r)
		n.stats.StoredLocal++
		n.stats.MarkStored(r.Producer, r.Time)
		n.cfg.Trace.Emit(trace.Event{Kind: trace.ReadingStored, Node: uint16(n.api.ID()),
			Flag: trace.StoreLocal, Producer: r.Producer, SampleT: r.Time, Value: int64(r.Value)})
		return
	}
	// Batch readings destined for the same owner (paper: up to 5).
	if n.batchOwners == 0 {
		n.api.SetTimer(timerBatch, n.cfg.BatchTimeout)
	}
	n.batchSID = sid
	if len(n.batchq[owner]) == 0 {
		n.batchOwners++
	}
	n.batchq[owner] = append(n.batchq[owner], r)
	if len(n.batchq[owner]) >= n.cfg.BatchSize {
		n.flushOwner(owner)
	}
}

// lookupOwner resolves v through the node's current index. ok is false
// when the node has no index or a store-local index.
func (n *Node) lookupOwner(v int) (netsim.NodeID, uint16, bool) {
	if n.cur == nil || n.cur.Local {
		return 0, 0, false
	}
	o, ok := n.cur.Owner(v)
	if !ok {
		return 0, 0, false
	}
	return o, n.cur.ID, true
}

// flushOwner launches the pending batch for one owner.
func (n *Node) flushOwner(owner netsim.NodeID) {
	rs := n.batchq[owner]
	if len(rs) == 0 {
		return
	}
	n.batchq[owner] = nil
	n.batchOwners--
	n.routeData(&DataMsg{Readings: rs, Owner: owner, SID: n.batchSID})
}

// flushBatch launches every pending batch (timeout path). The dense
// per-owner array is walked in ascending owner order — the same order
// the pre-scale-tier map-and-sort produced.
func (n *Node) flushBatch() {
	for o := range n.batchq {
		if len(n.batchq[o]) > 0 {
			n.flushOwner(netsim.NodeID(o))
		}
	}
	n.api.CancelTimer(timerBatch)
}

// loseReadings accounts a batch of readings as lost in RunStats and
// emits one reading-lost trace event per reading.
func (n *Node) loseReadings(rs []storage.Reading, cause metrics.DropCause) {
	n.stats.loseReadings(rs, cause)
	if rec := n.cfg.Trace; rec != nil {
		me := uint16(n.api.ID())
		for _, r := range rs {
			rec.Emit(trace.Event{Kind: trace.ReadingLost, Node: me, Cause: cause,
				Producer: r.Producer, SampleT: r.Time, Value: int64(r.Value)})
		}
	}
}

// handleData applies the paper's six routing rules to a received (or
// locally produced) data message.
func (n *Node) handleData(m *DataMsg) {
	// TTL guard against transient routing loops.
	if int(m.Hops) > n.cfg.MaxHops {
		n.loseReadings(m.Readings, metrics.DropTTL)
		return
	}
	// Rule 1: a newer index here rewrites the destination. Readings in
	// one batch may now map to different owners; regroup (in owner
	// order, so runs are reproducible).
	if n.cur != nil && !n.cur.Local && n.cur.ID > m.SID {
		groups := make(map[netsim.NodeID][]storage.Reading)
		var order []netsim.NodeID
		for _, r := range m.Readings {
			o, ok := n.cur.Owner(r.Value)
			if !ok {
				o = 0 // out-of-domain values head for the base
			}
			if _, seen := groups[o]; !seen {
				order = append(order, o)
			}
			groups[o] = append(groups[o], r)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, o := range order {
			n.routeData(&DataMsg{Readings: groups[o], Owner: o, SID: n.cur.ID, Hops: m.Hops})
		}
		return
	}
	n.routeData(m)
}

// routeData applies rules 2–6 (rule 4 lives in the basestation app).
func (n *Node) routeData(m *DataMsg) {
	me := n.api.ID()
	// Rule 2: we are the owner.
	if m.Owner == me {
		for _, r := range m.Readings {
			n.store.Store(r)
			n.stats.MarkStored(r.Producer, r.Time)
			site := trace.StoreOwner
			if netsim.NodeID(r.Producer) == me {
				n.stats.StoredLocal++
				site = trace.StoreLocal
			} else {
				n.stats.StoredAtOwner++
			}
			n.cfg.Trace.Emit(trace.Event{Kind: trace.ReadingStored, Node: uint16(me),
				Flag: site, Producer: r.Producer, SampleT: r.Time, Value: int64(r.Value)})
		}
		return
	}
	// Rule 3: the owner is a direct neighbor — shortcut the tree.
	// Only links of reasonable quality qualify: shortcutting over a
	// barely-audible link wastes a full retransmission budget before
	// falling back (property P4: avoid lossy links).
	if n.cfg.NeighborShortcut && n.tree.OutQuality(m.Owner) >= 0.4 {
		n.sendData(m, m.Owner, func(ok bool) {
			if !ok {
				// Shortcut failed; fall back to tree routing.
				n.treeRouteData(m)
			}
		})
		return
	}
	n.treeRouteData(m)
}

// treeRouteData applies rules 5 and 6.
func (n *Node) treeRouteData(m *DataMsg) {
	// Rule 5: owner is a known descendant — route down that branch.
	if child, ok := n.tree.Descendants.NextHop(m.Owner); ok && child != n.tree.Parent() {
		n.sendData(m, child, func(ok bool) {
			if !ok {
				n.tree.Descendants.Forget(m.Owner)
				n.sendToParent(m)
			}
		})
		return
	}
	// Rule 6: send toward the basestation.
	n.sendToParent(m)
}

func (n *Node) sendToParent(m *DataMsg) {
	if !n.tree.HasRoute() {
		n.loseReadings(m.Readings, metrics.DropNoRoute)
		return
	}
	n.sendData(m, n.tree.Parent(), func(ok bool) {
		if !ok {
			n.loseReadings(m.Readings, metrics.DropRadio)
		}
	})
}

func (n *Node) sendData(m *DataMsg, to netsim.NodeID, done func(bool)) {
	fwd := *m
	fwd.Hops++
	n.api.Send(&netsim.Packet{
		Class:        metrics.Data,
		Dst:          to,
		Origin:       n.api.ID(),
		OriginParent: n.tree.Parent(),
		Size:         dataSize(&fwd),
		Payload:      &fwd,
	}, done)
}

// sendSummary builds and launches this node's periodic summary message
// (paper §5.2).
func (n *Node) sendSummary() {
	if n.recent.Len() == 0 || !n.tree.HasRoute() {
		n.samplesSinceSummary = 0
		return
	}
	min, max, sum, _ := n.recent.MinMaxSum()
	lastID := uint16(0)
	if n.cur != nil {
		lastID = n.cur.ID
	}
	m := &SummaryMsg{
		Node:        n.api.ID(),
		Hist:        histogram.Build(n.recent.Values(), n.cfg.NBins),
		Min:         min,
		Max:         max,
		Sum:         sum,
		Rate:        float64(n.samplesSinceSummary) / (float64(n.cfg.SummaryInterval) / float64(netsim.Second)),
		Neighbors:   n.tree.Neighbors.Best(n.cfg.NeighborReport),
		LastIndexID: lastID,
		SentAt:      n.api.Now(),
	}
	n.samplesSinceSummary = 0
	n.stats.SummariesSent++
	n.api.Send(&netsim.Packet{
		Class:        metrics.Summary,
		Dst:          n.tree.Parent(),
		Origin:       n.api.ID(),
		OriginParent: n.tree.Parent(),
		Size:         summarySize(m),
		Payload:      m,
	}, nil)
}

// onChunk processes one received mapping message (paper §5.3).
// onChunk assembles received mapping chunks into a fresh index. Wall
// time attributes to the chunk-dissemination phase.
func (n *Node) onChunk(c index.Chunk) {
	prev := n.cfg.Prof.Enter(prof.PhaseChunk)
	n.handleChunk(c)
	n.cfg.Prof.Exit(prev)
}

func (n *Node) handleChunk(c index.Chunk) {
	key := mapKey(c.IndexID, c.Num)
	if _, held := n.chunks[key]; held {
		n.mapGos.Heard(key)
		return
	}
	if n.cur != nil && c.IndexID < n.cur.ID {
		// A neighbor is gossiping a stale generation: speed up our own
		// gossip so it catches up (Trickle inconsistency rule).
		resetChunks(n.chunks, n.cur.ID, n.mapGos)
		return
	}
	n.chunks[key] = c
	n.mapGos.Add(key)
	if complete := n.asm.Offer(c); complete != nil {
		if n.cur == nil || complete.ID > n.cur.ID {
			n.cur = complete
		}
		// Stop gossiping superseded generations, in key order: each
		// Trickle.Remove re-arms the shared timer, so the purge
		// sequence must not depend on map iteration order.
		for _, k := range sortedChunkKeys(n.chunks) {
			if n.chunks[k].IndexID < n.cur.ID {
				delete(n.chunks, k)
				n.mapGos.Remove(k)
			}
		}
	}
}

// sendChunk is the mapping-Trickle transmit callback. Wall time
// attributes to the chunk-dissemination phase.
func (n *Node) sendChunk(key trickle.Key) {
	prev := n.cfg.Prof.Enter(prof.PhaseChunk)
	n.sendChunkNow(key)
	n.cfg.Prof.Exit(prev)
}

func (n *Node) sendChunkNow(key trickle.Key) {
	c, ok := n.chunks[key]
	if !ok {
		return
	}
	n.cfg.Trace.Emit(trace.Event{Kind: trace.ChunkSent, Node: uint16(n.api.ID()),
		ID: c.IndexID, Value: int64(c.Num)})
	m := &MappingMsg{Chunk: c}
	n.api.Broadcast(&netsim.Packet{
		Class:        metrics.Mapping,
		Origin:       n.api.ID(),
		OriginParent: n.tree.Parent(),
		Size:         mappingSize(m),
		Payload:      m,
	})
}

// onQuery processes a query packet: feed Trickle suppression, decide
// whether to re-broadcast (Scoop's selective dissemination uses the
// bitmap plus the neighbor and descendants lists, paper §5.5), and
// answer if targeted.
func (n *Node) onQuery(q *QueryMsg) {
	key := queryKey(q.ID)
	if int(q.ID) < len(n.queries) && n.queries[q.ID] != nil {
		n.qGos.Heard(key)
		return
	}
	n.queries = dense.Grow(n.queries, int(q.ID))
	n.queries[q.ID] = q
	if n.shouldRelay(&q.Bitmap) {
		n.qGos.Add(key)
	}
	n.answered = dense.Grow(n.answered, int(q.ID))
	if q.Bitmap.Has(n.api.ID()) && !n.answered[q.ID] {
		n.answered[q.ID] = true
		n.stats.QueriesHeard++
		// Jitter the reply so a widely-targeted query does not trigger
		// a synchronized reply storm (the paper notes it takes several
		// seconds for the first replies to come back).
		qc := q
		n.api.SetTimer(timerReply, netsim.Time(50+n.api.RandIntn(int(4*netsim.Second))))
		n.pendingAnswers = append(n.pendingAnswers, qc)
	}
}

// shouldRelay reports whether this node re-broadcasts a (tuple or
// aggregate) query: only when some targeted node other than itself is
// plausibly reachable through it (a known neighbor or recorded
// descendant). Iterates the bitmap words directly — at 1000 nodes a
// materialised ID slice per received query is real garbage.
func (n *Node) shouldRelay(bm *Bitmap) bool {
	me := n.api.ID()
	for wi, w := range bm.Words() {
		for w != 0 {
			id := netsim.NodeID(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
			if id == me {
				continue
			}
			if n.tree.Neighbors.Contains(id) {
				return true
			}
			if _, ok := n.tree.Descendants.NextHop(id); ok {
				return true
			}
		}
	}
	return false
}

// sendQuery is the query-Trickle transmit callback; tuple and
// aggregate queries share the basestation's ID space, so the key
// resolves in exactly one of the two maps.
func (n *Node) sendQuery(key trickle.Key) {
	if qid := int(key); qid < len(n.queries) && n.queries[qid] != nil {
		q := n.queries[qid]
		n.api.Broadcast(&netsim.Packet{
			Class:        metrics.Query,
			Origin:       n.api.ID(),
			OriginParent: n.tree.Parent(),
			Size:         querySize(q),
			Payload:      q,
		})
		return
	}
	if qid := int(key); qid < len(n.aggQueries) && n.aggQueries[qid] != nil {
		q := n.aggQueries[qid]
		n.api.Broadcast(&netsim.Packet{
			Class:        metrics.Query,
			Origin:       n.api.ID(),
			OriginParent: n.tree.Parent(),
			Size:         aggQuerySize(q),
			Payload:      q,
		})
	}
}

// answer linearly scans the data buffer (paper §5.5) and sends a reply
// toward the basestation — "even if no tuples matched the query".
func (n *Node) answer(q *QueryMsg) {
	var matches []storage.Reading
	n.store.Scan(func(r storage.Reading) bool {
		if r.Time < int64(q.TimeLo) || r.Time > int64(q.TimeHi) {
			return true
		}
		if q.wantsValues() && (r.Value < q.ValueLo || r.Value > q.ValueHi) {
			return true
		}
		matches = append(matches, r)
		return true
	})
	carried := matches
	if len(carried) > n.cfg.ReplyMaxReadings {
		carried = carried[:n.cfg.ReplyMaxReadings]
	}
	m := &ReplyMsg{QueryID: q.ID, Node: n.api.ID(), Count: len(matches), Readings: carried}
	n.cfg.Trace.Emit(trace.Event{Kind: trace.QueryAnswered, Node: uint16(n.api.ID()),
		ID: q.ID, Value: int64(len(matches))})
	if !n.tree.HasRoute() {
		return
	}
	n.stats.RepliesSent++
	n.api.Send(&netsim.Packet{
		Class:        metrics.Reply,
		Dst:          n.tree.Parent(),
		Origin:       n.api.ID(),
		OriginParent: n.tree.Parent(),
		Size:         replySize(m),
		Payload:      m,
	}, nil)
}
