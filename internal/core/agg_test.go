package core

import (
	"math"
	"testing"

	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/query"
	"scoop/internal/storage"
)

// aggGroundTruth merges every reading currently stored anywhere in
// the network (node stores plus the basestation's) that matches the
// value and time ranges — the oracle an exact aggregate plan must hit.
func aggGroundTruth(tn *testNet, vlo, vhi int, tlo, thi netsim.Time) query.Partial {
	var p query.Partial
	scan := func(buf *storage.DataBuffer) {
		buf.Scan(func(r storage.Reading) bool {
			if r.Time >= int64(tlo) && r.Time <= int64(thi) && r.Value >= vlo && r.Value <= vhi {
				p.Add(r.Value)
			}
			return true
		})
	}
	scan(tn.base.Store())
	for _, n := range tn.nodes[1:] {
		scan(n.Store())
	}
	return p
}

// aggTestConfig shortens batching so a quiesced time window exists
// shortly after issue time.
func aggTestConfig() Config {
	cfg := testConfig()
	cfg.BatchTimeout = 10 * netsim.Second
	return cfg
}

// The headline acceptance test: the same AVG-over-range query on the
// same seed and topology, answered once by the in-network aggregation
// plan and once by tuple return. The aggregate plan must match ground
// truth exactly and spend at least 3x fewer reply-path bytes.
func TestAggAvgInNetworkBeatsTupleBytes(t *testing.T) {
	run := func(force query.Plan) (ans float64, gt query.Partial, replyBytes int64, tn *testNet) {
		cfg := aggTestConfig()
		cfg.AggForcePlan = force
		// Perfect links: the answer must be bit-exact, so no reading
		// may be duplicated by ack-loss retransmission.
		tn = newTestNet(t, chainTopo(5, 1.0), cfg, nil, 42)
		tn.sim.Run(10 * netsim.Minute)
		now := tn.sim.Now()
		// The window starts after the first index generation (built
		// ~2:40) so it is index-covered, and ends 30s ago so it is
		// quiescent: batches flush within 10s, every matching reading
		// has settled into a store.
		q := query.AggQuery{
			Op: query.OpAvg, ValueLo: 0, ValueHi: 20,
			TimeLo: 4 * netsim.Minute, TimeHi: now - 30*netsim.Second,
		}
		gt = aggGroundTruth(tn, q.ValueLo, q.ValueHi, q.TimeLo, q.TimeHi)
		dec := tn.base.IssueAgg(q)
		if dec.Plan != force {
			t.Fatalf("forced %v, planner executed %v", force, dec.Plan)
		}
		tn.sim.Run(now + 30*netsim.Second)
		v, plan, ok := tn.base.AggAnswer(tn.base.LastQueryID())
		if !ok {
			t.Fatalf("plan %v produced no answer", plan)
		}
		bytes := tn.ctr.SentBytesClass(metrics.Reply) + tn.ctr.SentBytesClass(metrics.AggReply)
		return v, gt, bytes, tn
	}

	contribs := func(tn *testNet) (int, int) {
		return tn.base.AggContribs(tn.base.LastQueryID())
	}

	aggAns, aggGT, aggBytes, aggNet := run(query.PlanAgg)
	tupAns, _, tupBytes, _ := run(query.PlanTuple)

	want, ok := aggGT.Answer(query.OpAvg)
	if !ok {
		t.Fatal("ground truth empty")
	}
	if math.Abs(aggAns-want) > 1e-9 {
		t.Fatalf("in-network AVG = %v, ground truth %v", aggAns, want)
	}
	if aggBytes == 0 || tupBytes == 0 {
		t.Fatalf("reply bytes agg=%d tuple=%d; a plan sent nothing", aggBytes, tupBytes)
	}
	if tupBytes < 3*aggBytes {
		t.Fatalf("tuple plan spent %d reply bytes vs agg %d: less than the required 3x win",
			tupBytes, aggBytes)
	}
	// The tuple answer drifts once per-node truncation kicks in; it
	// must still be in the right ballpark, underscoring why the agg
	// plan is both cheaper AND exact.
	if math.Abs(tupAns-want) > float64(want) {
		t.Fatalf("tuple AVG %v wildly off ground truth %v", tupAns, want)
	}
	if got, exp := contribs(aggNet); exp == 0 || got < exp {
		t.Fatalf("only %d of %d targeted nodes contributed", got, exp)
	}
}

// COUNT and SUM also come back exact through in-network combining,
// and intermediate chain nodes actually combine (fewer partials reach
// the base than nodes answered).
func TestAggCountSumExactWithCombining(t *testing.T) {
	cfg := aggTestConfig()
	cfg.AggForcePlan = query.PlanAgg
	tn := newTestNet(t, chainTopo(6, 1.0), cfg, nil, 7)
	tn.sim.Run(10 * netsim.Minute)
	now := tn.sim.Now()
	vlo, vhi := 0, 20
	tlo, thi := 4*netsim.Minute, now-30*netsim.Second
	gt := aggGroundTruth(tn, vlo, vhi, tlo, thi)

	for _, op := range []query.Op{query.OpCount, query.OpSum} {
		tn.base.IssueAgg(query.AggQuery{Op: op, ValueLo: vlo, ValueHi: vhi, TimeLo: tlo, TimeHi: thi})
		qid := tn.base.LastQueryID()
		tn.sim.Run(tn.sim.Now() + 30*netsim.Second)
		got, _, ok := tn.base.AggAnswer(qid)
		want, _ := gt.Answer(op)
		if !ok || math.Abs(got-want) > 1e-9 {
			t.Fatalf("%v = %v (ok=%v), ground truth %v", op, got, ok, want)
		}
	}
	if tn.stats.AggCombined == 0 {
		t.Fatal("no in-network combining happened on a 5-hop chain")
	}
	if tn.stats.AggPartialsReceived >= tn.stats.AggRepliesSent {
		t.Fatalf("combining saved nothing: %d partials at base, %d flushes sent",
			tn.stats.AggPartialsReceived, tn.stats.AggRepliesSent)
	}
}

// Planner integration: a generous accuracy budget turns the query
// into a zero-cost summary answer whose error bound is honoured; a
// zero budget forces an exact network plan.
func TestAggPlannerSelectsSummaryWithinBudget(t *testing.T) {
	tn := newTestNet(t, meshTopo(5, 0.95), aggTestConfig(), nil, 9)
	tn.sim.Run(10 * netsim.Minute)
	now := tn.sim.Now()
	q := query.AggQuery{
		Op: query.OpAvg, ValueLo: 0, ValueHi: 20,
		TimeLo: 3 * netsim.Minute, TimeHi: now,
		ErrBudget: 2.0,
	}
	queriesBefore := tn.ctr.Sent(metrics.Query)
	dec := tn.base.IssueAgg(q)
	if dec.Plan != query.PlanSummary {
		t.Fatalf("generous budget chose %v, want summary", dec.Plan)
	}
	if dec.EstError > q.ErrBudget {
		t.Fatalf("summary decision error bound %v exceeds budget %v", dec.EstError, q.ErrBudget)
	}
	ans, _, ok := tn.base.AggAnswer(tn.base.LastQueryID())
	if !ok {
		t.Fatal("summary plan has no immediate answer")
	}
	// The error bound must actually hold against ground truth.
	gt := aggGroundTruth(tn, q.ValueLo, q.ValueHi, q.TimeLo, q.TimeHi)
	want, _ := gt.Answer(query.OpAvg)
	if want > 0 && math.Abs(ans-want)/want > dec.EstError+0.5 {
		t.Fatalf("summary answer %v vs truth %v breaks bound %v", ans, want, dec.EstError)
	}
	tn.sim.Run(tn.sim.Now() + 10*netsim.Second)
	if got := tn.ctr.Sent(metrics.Query); got != queriesBefore {
		t.Fatalf("summary plan cost %d query packets", got-queriesBefore)
	}
	if tn.stats.PlanSummaryChosen != 1 {
		t.Fatalf("PlanSummaryChosen = %d", tn.stats.PlanSummaryChosen)
	}

	// Exactness required: the planner must pick a network plan.
	q.ErrBudget = 0
	dec = tn.base.IssueAgg(q)
	if dec.Plan == query.PlanSummary {
		t.Fatal("zero budget still served from summaries")
	}
	if dec.EstError != 0 {
		t.Fatalf("exact plan carries error bound %v", dec.EstError)
	}
}

// A window reaching back before the first index generation cannot be
// index-routed: the planner floods.
func TestAggFloodsUncoveredWindow(t *testing.T) {
	tn := newTestNet(t, meshTopo(5, 0.95), aggTestConfig(), nil, 11)
	tn.sim.Run(8 * netsim.Minute)
	dec := tn.base.IssueAgg(query.AggQuery{
		Op: query.OpCount, ValueLo: 0, ValueHi: 20,
		TimeLo: 0, TimeHi: tn.sim.Now(), // t=0 predates any index
	})
	if dec.Plan != query.PlanFlood {
		t.Fatalf("uncovered window planned %v, want flood", dec.Plan)
	}
	tn.sim.Run(tn.sim.Now() + 30*netsim.Second)
	got, exp := tn.base.AggContribs(tn.base.LastQueryID())
	if exp != 4 || got < exp {
		t.Fatalf("flood reached %d of %d nodes", got, exp)
	}
}

// Quantile queries: within budget they are served from summaries for
// free; with a zero budget they ship tuples and the base computes the
// quantile over the returned set — never an in-network plan, whose
// partials cannot carry a quantile.
func TestAggQuantilePlans(t *testing.T) {
	tn := newTestNet(t, meshTopo(5, 0.95), aggTestConfig(), nil, 13)
	tn.sim.Run(10 * netsim.Minute)
	q := query.AggQuery{
		Op: query.OpQuantile, Quantile: 0.5,
		ValueLo: 0, ValueHi: 20,
		TimeLo: 3 * netsim.Minute, TimeHi: tn.sim.Now(),
		ErrBudget: 3.0,
	}
	dec := tn.base.IssueAgg(q)
	if dec.Plan != query.PlanSummary {
		t.Fatalf("quantile planned %v, want summary", dec.Plan)
	}
	ans, _, ok := tn.base.AggAnswer(tn.base.LastQueryID())
	if !ok || ans < 0 || ans > 20 {
		t.Fatalf("median estimate %v (ok=%v) outside domain", ans, ok)
	}

	q.ErrBudget = 0
	q.TimeHi = tn.sim.Now()
	dec = tn.base.IssueAgg(q)
	if dec.Plan != query.PlanTuple {
		t.Fatalf("exact quantile planned %v, want tuple", dec.Plan)
	}
	qid := tn.base.LastQueryID()
	tn.sim.Run(tn.sim.Now() + 30*netsim.Second)
	ans, _, ok = tn.base.AggAnswer(qid)
	if !ok || ans < 0 || ans > 20 {
		t.Fatalf("tuple-plan median %v (ok=%v) outside domain", ans, ok)
	}
}

// Retransmitted partial-aggregate messages (same sender, query, seq)
// must not double count, and over-TTL partials are dropped.
func TestAggPartialDedupAndTTL(t *testing.T) {
	cfg := aggTestConfig()
	tn := newTestNet(t, chainTopo(3, 0.95), cfg, nil, 17)
	tn.sim.Run(3 * netsim.Minute)
	n1 := tn.nodes[1]
	m := &AggReplyMsg{QueryID: 500, Node: 2, Seq: 0, Contribs: 1,
		Part: query.Partial{Count: 4, Sum: 40, Min: 5, Max: 15}}
	n1.onAggPartial(m)
	n1.onAggPartial(m) // retransmission duplicate
	if e := n1.aggPending[500]; e == nil || e.part.Count != 4 || e.contribs != 1 {
		t.Fatalf("dedup failed: %+v", n1.aggPending[500])
	}
	over := &AggReplyMsg{QueryID: 501, Node: 2, Seq: 0, Contribs: 1,
		Part: query.Partial{Count: 1, Sum: 1}, Hops: uint8(cfg.MaxHops + 1)}
	n1.onAggPartial(over)
	if 501 < len(n1.aggPending) && n1.aggPending[501] != nil {
		t.Fatal("over-TTL partial accepted")
	}
}

// Duplicate aggregate query packets produce exactly one local answer.
func TestDuplicateAggQueriesAnsweredOnce(t *testing.T) {
	tn := newTestNet(t, meshTopo(3, 0.95), aggTestConfig(), nil, 19)
	tn.sim.Run(6 * netsim.Minute)
	q := &AggQueryMsg{ID: 600, Op: query.OpCount, ValueLo: 0, ValueHi: 20,
		TimeLo: 0, TimeHi: tn.sim.Now()}
	q.Bitmap.Set(1)
	tn.nodes[1].onAggQuery(q)
	tn.nodes[1].onAggQuery(q)
	tn.nodes[1].onAggQuery(q)
	tn.sim.Run(tn.sim.Now() + 30*netsim.Second)
	if tn.stats.AggQueriesHeard != 1 {
		t.Fatalf("node heard the same agg query %d times", tn.stats.AggQueriesHeard)
	}
	if tn.stats.AggRepliesSent != 1 {
		t.Fatalf("node flushed %d replies to one agg query", tn.stats.AggRepliesSent)
	}
}
