package core

import (
	"testing"

	"scoop/internal/index"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/storage"
	"scoop/internal/workload"
)

// ownersConst builds a dense owner slice with a single owner.
func ownersConst(n int, o netsim.NodeID) []netsim.NodeID {
	out := make([]netsim.NodeID, n)
	for i := range out {
		out[i] = o
	}
	return out
}

// oneReading wraps a single reading for hand-crafted data messages.
func oneReading(v int, producer uint16, t netsim.Time) []storage.Reading {
	return []storage.Reading{{Producer: producer, Value: v, Time: int64(t)}}
}

// testNet wires a base plus nodes over a given topology with perfect
// deterministic control. sampler may be nil (nodes produce their ID).
type testNet struct {
	sim   *netsim.Simulator
	net   *netsim.Network
	ctr   *metrics.Counters
	base  *Base
	nodes []*Node // index 0 unused
	stats *RunStats
	cfg   Config
}

func idSampler(id netsim.NodeID, _ netsim.Time) int { return int(id) }

// chainTopo builds a perfect-link chain 0—1—2—…—(n-1).
func chainTopo(n int, q float64) *netsim.Topology {
	t := netsim.NewTopology(n)
	t.Pos = make([]netsim.Point, n)
	for i := range t.Pos {
		t.Pos[i] = netsim.Point{X: float64(i)}
	}
	for i := 0; i+1 < n; i++ {
		t.Quality[i][i+1], t.Quality[i+1][i] = q, q
	}
	return t
}

// meshTopo builds a full mesh with uniform quality.
func meshTopo(n int, q float64) *netsim.Topology {
	t := netsim.NewTopology(n)
	t.Pos = make([]netsim.Point, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				t.Quality[i][j] = q
			}
		}
	}
	return t
}

func newTestNet(t *testing.T, topo *netsim.Topology, cfg Config, sample Sampler, seed int64) *testNet {
	t.Helper()
	if sample == nil {
		sample = idSampler
	}
	tn := &testNet{
		sim:   netsim.NewSimulator(seed),
		ctr:   metrics.NewCounters(),
		stats: &RunStats{},
		cfg:   cfg,
	}
	tn.net = netsim.NewNetwork(tn.sim, topo, tn.ctr, netsim.DefaultParams())
	tn.base = NewBase(cfg, tn.stats, 2*netsim.Minute)
	tn.net.Attach(0, tn.base)
	tn.nodes = make([]*Node, topo.N)
	for i := 1; i < topo.N; i++ {
		tn.nodes[i] = NewNode(cfg, tn.stats, sample, 2*netsim.Minute)
		tn.net.Attach(netsim.NodeID(i), tn.nodes[i])
	}
	tn.net.Start()
	return tn
}

func testConfig() Config {
	cfg := DefaultConfig(0, 20)
	// Faster cadence so tests converge quickly.
	cfg.SampleInterval = 5 * netsim.Second
	cfg.SummaryInterval = 30 * netsim.Second
	cfg.RemapInterval = 60 * netsim.Second
	return cfg
}

func TestSummariesReachBase(t *testing.T) {
	tn := newTestNet(t, chainTopo(4, 0.95), testConfig(), nil, 1)
	tn.sim.Run(6 * netsim.Minute)
	if tn.base.SummaryCount() < 3 {
		t.Fatalf("base has summaries from %d nodes, want 3", tn.base.SummaryCount())
	}
	if tn.stats.SummariesReceived == 0 {
		t.Fatal("no summaries received")
	}
}

func TestIndexBuiltAndDisseminated(t *testing.T) {
	tn := newTestNet(t, chainTopo(4, 0.95), testConfig(), nil, 2)
	tn.sim.Run(8 * netsim.Minute)
	if tn.base.CurrentIndex() == nil {
		t.Fatal("base never built an index")
	}
	for i := 1; i < 4; i++ {
		ix := tn.nodes[i].CurrentIndex()
		if ix == nil {
			t.Fatalf("node %d never assembled an index", i)
		}
		if ix.ID == 0 {
			t.Fatalf("node %d has zero index ID", i)
		}
	}
}

func TestUniqueWorkloadMapsProducersToThemselves(t *testing.T) {
	// With each node producing its own ID and no queries, the index
	// must assign node i the value i (paper property P3).
	tn := newTestNet(t, meshTopo(5, 0.9), testConfig(), nil, 3)
	tn.sim.Run(10 * netsim.Minute)
	ix := tn.base.CurrentIndex()
	if ix == nil {
		t.Fatal("no index")
	}
	for i := netsim.NodeID(1); i < 5; i++ {
		if o, ok := ix.Owner(int(i)); !ok || o != i {
			t.Fatalf("value %d owned by %d (ok=%v), want producer", i, o, ok)
		}
	}
	// Consequently, nearly all readings store locally.
	if tn.stats.StoredLocal < tn.stats.Produced/2 {
		t.Fatalf("local stores %d of %d produced; locality not exploited",
			tn.stats.StoredLocal, tn.stats.Produced)
	}
}

func TestDataRoutedToOwner(t *testing.T) {
	// All nodes produce value 7 whose owner will be the dominant
	// producer; other nodes must route readings to it.
	sample := func(netsim.NodeID, netsim.Time) int { return 7 }
	tn := newTestNet(t, meshTopo(4, 0.9), testConfig(), sample, 4)
	tn.sim.Run(12 * netsim.Minute)
	ix := tn.base.CurrentIndex()
	if ix == nil {
		t.Fatal("no index")
	}
	owner, ok := ix.Owner(7)
	if !ok {
		t.Fatal("value 7 unmapped")
	}
	if owner != 0 {
		if tn.stats.StoredAtOwner == 0 {
			t.Fatal("no readings stored at the owner")
		}
		// The owner's buffer holds readings from other producers.
		foreign := 0
		tn.nodes[owner].Store().Scan(func(r storage.Reading) bool {
			if netsim.NodeID(r.Producer) != owner {
				foreign++
			}
			return true
		})
		if foreign == 0 {
			t.Fatal("owner holds no foreign readings")
		}
	}
}

func TestValueQueryEndToEnd(t *testing.T) {
	cfg := testConfig()
	tn := newTestNet(t, meshTopo(5, 0.95), cfg, nil, 5)
	tn.sim.Run(10 * netsim.Minute)
	// Query the whole domain over recent history.
	now := tn.sim.Now()
	targets := tn.base.IssueQuery(workload.Query{
		ValueLo: 0, ValueHi: 20,
		TimeLo: 2 * netsim.Minute, TimeHi: now,
	})
	if len(targets) == 0 {
		t.Fatal("full-domain query targeted nobody")
	}
	tn.sim.Run(now + netsim.Minute)
	if tn.stats.RepliesReceived == 0 {
		t.Fatal("no replies arrived")
	}
	if tn.stats.TuplesReturned == 0 {
		t.Fatal("no tuples returned")
	}
}

func TestNodeListQuery(t *testing.T) {
	tn := newTestNet(t, meshTopo(5, 0.95), testConfig(), nil, 6)
	tn.sim.Run(8 * netsim.Minute)
	now := tn.sim.Now()
	targets := tn.base.IssueQuery(workload.Query{
		Nodes:  []netsim.NodeID{2, 3},
		TimeLo: 0, TimeHi: now,
	})
	if len(targets) != 2 {
		t.Fatalf("targets = %v, want [2 3]", targets)
	}
	tn.sim.Run(now + netsim.Minute)
	if tn.stats.RepliesReceived < 1 {
		t.Fatal("node-list query got no replies")
	}
}

func TestQueryBeforeFirstIndexTargetsEveryone(t *testing.T) {
	tn := newTestNet(t, meshTopo(5, 0.95), testConfig(), nil, 7)
	tn.sim.Run(3 * netsim.Minute) // before first remap
	targets := tn.base.IssueQuery(workload.Query{
		ValueLo: 0, ValueHi: 20,
		TimeLo: 2 * netsim.Minute, TimeHi: tn.sim.Now(),
	})
	if len(targets) != 4 {
		t.Fatalf("pre-index query targeted %d nodes, want all 4", len(targets))
	}
}

func TestPreloadedLocalIndexFloodsQueries(t *testing.T) {
	cfg := testConfig()
	cfg.Preload = index.NewLocal(1)
	cfg.DisableSummaries = true
	cfg.DisableRemap = true
	tn := newTestNet(t, meshTopo(5, 0.95), cfg, nil, 8)
	tn.sim.Run(6 * netsim.Minute)
	// All data stays local.
	if tn.stats.StoredLocal != tn.stats.Produced {
		t.Fatalf("local policy stored %d of %d locally", tn.stats.StoredLocal, tn.stats.Produced)
	}
	if tn.ctr.Sent(metrics.Data) != 0 {
		t.Fatal("local policy sent data messages")
	}
	targets := tn.base.IssueQuery(workload.Query{
		ValueLo: 0, ValueHi: 20, TimeLo: 0, TimeHi: tn.sim.Now(),
	})
	if len(targets) != 4 {
		t.Fatalf("local query targeted %d, want all", len(targets))
	}
}

func TestPreloadedBaseIndexSendsAllToBase(t *testing.T) {
	cfg := testConfig()
	owners := make([]netsim.NodeID, 21)
	cfg.Preload = index.New(1, 0, owners)
	cfg.DisableSummaries = true
	cfg.DisableRemap = true
	cfg.BatchSize = 1
	tn := newTestNet(t, chainTopo(4, 0.95), cfg, nil, 9)
	tn.sim.Run(8 * netsim.Minute)
	if tn.base.Store().Len() == 0 {
		t.Fatal("base stored nothing")
	}
	if tn.stats.StoredLocal != 0 {
		t.Fatal("send-to-base stored data on nodes")
	}
	// Queries cost nothing: answered from the base's store.
	n := tn.base.AnswerFromStore(workload.Query{
		ValueLo: 0, ValueHi: 20, TimeLo: 0, TimeHi: tn.sim.Now(),
	})
	if n == 0 {
		t.Fatal("base store answered no tuples")
	}
	if tn.ctr.Sent(metrics.Query) != 0 {
		t.Fatal("BASE policy sent query messages")
	}
}

func TestAnswerFromStoreNodeFilter(t *testing.T) {
	cfg := testConfig()
	owners := make([]netsim.NodeID, 21)
	cfg.Preload = index.New(1, 0, owners)
	cfg.DisableSummaries = true
	cfg.DisableRemap = true
	cfg.BatchSize = 1
	tn := newTestNet(t, meshTopo(4, 0.95), cfg, nil, 10)
	tn.sim.Run(8 * netsim.Minute)
	all := tn.base.AnswerFromStore(workload.Query{
		ValueLo: 0, ValueHi: 20, TimeLo: 0, TimeHi: tn.sim.Now(),
	})
	one := tn.base.AnswerFromStore(workload.Query{
		Nodes: []netsim.NodeID{2}, TimeLo: 0, TimeHi: tn.sim.Now(),
	})
	if one == 0 || one >= all {
		t.Fatalf("node filter returned %d of %d tuples", one, all)
	}
}

func TestQueryMaxFromSummaries(t *testing.T) {
	tn := newTestNet(t, meshTopo(5, 0.95), testConfig(), nil, 11)
	tn.sim.Run(8 * netsim.Minute)
	sent := tn.ctr.Sent(metrics.Query)
	max, ok := tn.base.QueryMax(0, tn.sim.Now())
	if !ok {
		t.Fatal("QueryMax found no summaries")
	}
	// UNIQUE-style sampler: max must be the largest node ID heard.
	if max < 1 || max > 4 {
		t.Fatalf("max = %d, want within [1,4]", max)
	}
	if tn.ctr.Sent(metrics.Query) != sent {
		t.Fatal("QueryMax cost network traffic")
	}
	if tn.stats.SummaryAnswered != 1 {
		t.Fatalf("SummaryAnswered = %d", tn.stats.SummaryAnswered)
	}
	if _, ok := tn.base.QueryMax(0, netsim.Time(1)); ok {
		t.Fatal("QueryMax answered for a window before any summary")
	}
}

func TestSummaryShortcutDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.SummaryShortcut = false
	tn := newTestNet(t, meshTopo(4, 0.95), cfg, nil, 12)
	tn.sim.Run(8 * netsim.Minute)
	if _, ok := tn.base.QueryMax(0, tn.sim.Now()); ok {
		t.Fatal("QueryMax answered despite disabled shortcut")
	}
}

func TestBatchingReducesDataMessages(t *testing.T) {
	// All nodes produce a constant owned by one node; with batching 5
	// the number of data messages must be far below the reading count.
	sample := func(netsim.NodeID, netsim.Time) int { return 3 }
	cfg := testConfig()
	cfg.Preload = index.New(1, 0, ownersConst(21, 1)) // node 1 owns all
	cfg.DisableSummaries = true
	cfg.DisableRemap = true
	tn := newTestNet(t, meshTopo(4, 0.95), cfg, sample, 13)
	tn.sim.Run(15 * netsim.Minute)
	readingsRouted := tn.stats.StoredAtOwner
	msgs := tn.ctr.Sent(metrics.Data)
	if readingsRouted == 0 {
		t.Fatal("nothing stored at owner")
	}
	// Mesh: one hop; ~1 message per 5 readings plus retries.
	if float64(msgs) > 0.6*float64(readingsRouted) {
		t.Fatalf("%d data msgs for %d routed readings; batching ineffective", msgs, readingsRouted)
	}
}

func TestBatchingDisabled(t *testing.T) {
	sample := func(netsim.NodeID, netsim.Time) int { return 3 }
	cfg := testConfig()
	cfg.Preload = index.New(1, 0, ownersConst(21, 1))
	cfg.DisableSummaries = true
	cfg.DisableRemap = true
	cfg.BatchSize = 1
	tn := newTestNet(t, meshTopo(4, 0.95), cfg, sample, 13)
	tn.sim.Run(15 * netsim.Minute)
	msgs := tn.ctr.Sent(metrics.Data)
	if float64(msgs) < 0.9*float64(tn.stats.StoredAtOwner) {
		t.Fatalf("unbatched run sent only %d msgs for %d readings", msgs, tn.stats.StoredAtOwner)
	}
}

func TestRule1RewritesInFlight(t *testing.T) {
	// A node holding an older index forwards data; a downstream node
	// with a newer index must redirect it.
	cfg := testConfig()
	tn := newTestNet(t, chainTopo(4, 0.95), cfg, nil, 14)
	tn.sim.Run(2 * netsim.Minute)
	// Hand node 3 (deep) an old index mapping everything to node 1;
	// hand node 2 (on the path) a newer index mapping everything to 2.
	old := index.New(5, 0, ownersConst(21, 1))
	newer := index.New(6, 0, ownersConst(21, 2))
	tn.nodes[3].cur = old
	tn.nodes[2].cur = newer
	tn.nodes[1].cur = newer
	// Node 3 produces value 9: old index says owner 1 (via 2); node 2
	// rewrites to itself and stores.
	tn.nodes[3].handleData(&DataMsg{
		Readings: oneReading(9, 3, tn.sim.Now()), Owner: 1, SID: 5,
	})
	tn.sim.Run(tn.sim.Now() + 30*netsim.Second)
	found := false
	tn.nodes[2].Store().Scan(func(r storage.Reading) bool {
		if r.Value == 9 && r.Producer == 3 {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("rule 1 did not redirect the reading to the newer owner")
	}
}

func TestDataTTLDropsLoopingPackets(t *testing.T) {
	cfg := testConfig()
	tn := newTestNet(t, chainTopo(3, 0.95), cfg, nil, 15)
	tn.sim.Run(2 * netsim.Minute)
	lost := tn.stats.LostData
	tn.nodes[1].handleData(&DataMsg{
		Readings: oneReading(4, 2, tn.sim.Now()),
		Owner:    2, SID: 1, Hops: uint8(cfg.MaxHops + 1),
	})
	if tn.stats.LostData != lost+1 {
		t.Fatal("over-TTL packet not dropped")
	}
}

func TestIndexSimilaritySuppression(t *testing.T) {
	// A stable workload must make the base suppress most regenerations.
	tn := newTestNet(t, meshTopo(5, 0.95), testConfig(), nil, 16)
	tn.sim.Run(20 * netsim.Minute)
	if tn.stats.IndexesBuilt < 5 {
		t.Fatalf("built only %d indexes", tn.stats.IndexesBuilt)
	}
	if tn.stats.IndexesSuppressed == 0 {
		t.Fatal("no suppression despite a stationary workload")
	}
	if len(tn.base.IndexHistory()) >= int(tn.stats.IndexesBuilt) {
		t.Fatal("history grew despite suppression")
	}
}

func TestNodeDeathDoesNotStallOthers(t *testing.T) {
	tn := newTestNet(t, meshTopo(6, 0.9), testConfig(), nil, 17)
	tn.sim.Run(6 * netsim.Minute)
	tn.net.Kill(2)
	tn.sim.Run(tn.sim.Now() + 10*netsim.Minute)
	// The rest of the network keeps producing and storing.
	if tn.stats.DataSuccessRate() < 0.5 {
		t.Fatalf("data success %.2f after one node death", tn.stats.DataSuccessRate())
	}
	if tn.base.CurrentIndex() == nil {
		t.Fatal("index construction stalled")
	}
}

func TestBitmap(t *testing.T) {
	var b Bitmap
	if b.Count() != 0 {
		t.Fatal("zero bitmap non-empty")
	}
	b.Set(0)
	b.Set(7)
	b.Set(127)
	if !b.Has(0) || !b.Has(7) || !b.Has(127) || b.Has(1) {
		t.Fatal("bitmap membership wrong")
	}
	if b.Has(200) {
		t.Fatal("out-of-range ID reported present")
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	ids := b.IDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 7 || ids[2] != 127 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestRunStatsRates(t *testing.T) {
	s := &RunStats{}
	if s.DataSuccessRate() != 0 || s.QuerySuccessRate() != 0 || s.OwnerHitRate() != 0 {
		t.Fatal("zero stats produced nonzero rates")
	}
	s.Produced = 10
	if !s.MarkStored(1, 100) {
		t.Fatal("first store not unique")
	}
	if s.MarkStored(1, 100) {
		t.Fatal("duplicate store counted unique")
	}
	if !s.MarkStored(2, 100) {
		t.Fatal("different producer considered duplicate")
	}
	if s.StoredUnique != 2 {
		t.Fatalf("unique = %d", s.StoredUnique)
	}
	if s.DataSuccessRate() != 0.2 {
		t.Fatalf("rate = %f", s.DataSuccessRate())
	}
	s.StoredAtOwner, s.StoredAtBase = 85, 15
	if s.OwnerHitRate() != 0.85 {
		t.Fatalf("owner hit = %f", s.OwnerHitRate())
	}
}

// The system-level version of property P2: hammering a value band with
// queries makes the next remap move that band's ownership to the
// basestation (the adaptivity that gives the paper its title).
func TestAdaptationToQueryStorm(t *testing.T) {
	tn := newTestNet(t, meshTopo(6, 0.9), testConfig(), nil, 20)
	tn.sim.Run(10 * netsim.Minute)
	ix := tn.base.CurrentIndex()
	if ix == nil {
		t.Fatal("no index")
	}
	// Quiet phase: values live on their producers, not the base.
	if o, _ := ix.Owner(3); o == 0 {
		t.Skip("value already at base without queries; topology too small")
	}
	// Storm: query a hot band hard for several remap cycles. The band
	// must be wide enough that the regenerated index differs from the
	// active one by more than the similarity-suppression threshold —
	// a single changed value would be (correctly) suppressed.
	for i := 0; i < 150; i++ {
		tn.base.IssueQuery(workload.Query{
			ValueLo: 1, ValueHi: 5,
			TimeLo: tn.sim.Now() - netsim.Minute, TimeHi: tn.sim.Now(),
		})
		tn.sim.Run(tn.sim.Now() + 4*netsim.Second)
	}
	ix = tn.base.CurrentIndex()
	moved := 0
	for v := 1; v <= 5; v++ {
		if o, ok := ix.Owner(v); ok && o == 0 {
			moved++
		}
	}
	if moved < 3 {
		t.Fatalf("only %d/5 hot values moved to the basestation", moved)
	}
}

// The query profile drives targeting: after the storm the queried
// value is answered by the base alone, costing no reply traffic.
func TestQueryStatsTracked(t *testing.T) {
	tn := newTestNet(t, meshTopo(5, 0.95), testConfig(), nil, 21)
	tn.sim.Run(8 * netsim.Minute)
	for i := 0; i < 40; i++ {
		tn.base.IssueQuery(workload.Query{
			ValueLo: 2, ValueHi: 4,
			TimeLo: tn.sim.Now() - netsim.Minute, TimeHi: tn.sim.Now(),
		})
		tn.sim.Run(tn.sim.Now() + 5*netsim.Second)
	}
	tn.base.Remap()
	tn.sim.Run(tn.sim.Now() + netsim.Minute)
	targets := tn.base.IssueQuery(workload.Query{
		ValueLo: 2, ValueHi: 4,
		TimeLo: tn.sim.Now() - 30*netsim.Second, TimeHi: tn.sim.Now(),
	})
	// The hot range should now be concentrated on very few nodes
	// (ideally just the base).
	if len(targets) > 2 {
		t.Fatalf("hot range still scattered over %d nodes", len(targets))
	}
}

// Paper §5.3: "mapping packets may get lost, leaving nodes with
// incomplete storage indices. In that case, nodes continue to use the
// older complete storage index they have."
func TestIncompleteIndexKeepsOlderGeneration(t *testing.T) {
	tn := newTestNet(t, meshTopo(4, 0.95), testConfig(), nil, 30)
	tn.sim.Run(8 * netsim.Minute)
	node := tn.nodes[2]
	old := node.CurrentIndex()
	if old == nil {
		t.Fatal("no index adopted")
	}
	// Hand-craft a newer generation (alternating owners so it spans
	// several chunks) but deliver only its first chunk.
	owners := make([]netsim.NodeID, 21)
	for i := range owners {
		owners[i] = netsim.NodeID(1 + i%3)
	}
	newer := index.New(old.ID+10, 0, owners)
	chunks := newer.Chunks(2)
	if len(chunks) < 2 {
		t.Fatalf("test index too small to chunk (%d)", len(chunks))
	}
	node.onChunk(chunks[0])
	if node.CurrentIndex().ID != old.ID {
		t.Fatal("node adopted an incomplete index")
	}
	// Delivering the rest completes the switch.
	for _, c := range chunks[1:] {
		node.onChunk(c)
	}
	if node.CurrentIndex().ID != newer.ID {
		t.Fatal("node did not adopt the completed index")
	}
}

// A network-wide interference blackout must not wedge the protocol:
// once links return, summaries flow and new indices disseminate.
func TestBlackoutRecovery(t *testing.T) {
	tn := newTestNet(t, meshTopo(5, 0.95), testConfig(), nil, 31)
	tn.sim.Run(8 * netsim.Minute)
	if tn.base.CurrentIndex() == nil {
		t.Fatal("no index before blackout")
	}
	tn.net.ScaleAllLinks(0)
	tn.sim.Run(tn.sim.Now() + 4*netsim.Minute)
	received := tn.stats.SummariesReceived
	tn.net.ScaleAllLinks(1)
	tn.sim.Run(tn.sim.Now() + 6*netsim.Minute)
	if tn.stats.SummariesReceived <= received {
		t.Fatal("no summaries after the blackout lifted")
	}
	// Queries work again end to end.
	before := tn.stats.RepliesReceived
	tn.base.IssueQuery(workload.Query{
		ValueLo: 0, ValueHi: 20,
		TimeLo: tn.sim.Now() - 2*netsim.Minute, TimeHi: tn.sim.Now(),
	})
	tn.sim.Run(tn.sim.Now() + netsim.Minute)
	if tn.stats.RepliesReceived <= before {
		t.Fatal("no replies after recovery")
	}
}

// Out-of-domain values (possible when the configured domain is
// narrower than what a sensor emits) fall back to local storage
// rather than being dropped.
func TestOutOfDomainValuesStoredLocally(t *testing.T) {
	sample := func(netsim.NodeID, netsim.Time) int { return 500 } // outside [0,20]
	cfg := testConfig()
	cfg.Preload = index.New(1, 0, ownersConst(21, 1))
	cfg.DisableSummaries = true
	cfg.DisableRemap = true
	tn := newTestNet(t, meshTopo(3, 0.95), cfg, sample, 32)
	tn.sim.Run(8 * netsim.Minute)
	if tn.stats.StoredLocal != tn.stats.Produced {
		t.Fatalf("out-of-domain readings: local=%d produced=%d",
			tn.stats.StoredLocal, tn.stats.Produced)
	}
}

// Duplicate query packets (Trickle re-broadcasts) must produce exactly
// one reply per node.
func TestDuplicateQueriesAnsweredOnce(t *testing.T) {
	tn := newTestNet(t, meshTopo(3, 0.95), testConfig(), nil, 33)
	tn.sim.Run(6 * netsim.Minute)
	q := &QueryMsg{ID: 77, ValueLo: 0, ValueHi: 20, TimeLo: 0, TimeHi: tn.sim.Now()}
	q.Bitmap.Set(1)
	tn.nodes[1].onQuery(q)
	tn.nodes[1].onQuery(q)
	tn.nodes[1].onQuery(q)
	tn.sim.Run(tn.sim.Now() + 30*netsim.Second)
	if tn.stats.RepliesSent != 1 {
		t.Fatalf("node replied %d times to one query", tn.stats.RepliesSent)
	}
}
