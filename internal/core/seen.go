package core

import (
	"scoop/internal/dense"
	"scoop/internal/netsim"
)

// seenRow is one origin's dedup history: an append-only key list plus
// the maximum key seen, which gives an O(1) fast path for the common
// case — per-origin keys (summary timestamps, query IDs, flush
// sequence numbers) arrive in increasing order, so a fresh key is
// usually above every key recorded before and needs no scan at all.
type seenRow struct {
	keys []uint64
	max  uint64
	any  bool
}

// seenTable is the forwarding-dedup store: per-origin rows replacing
// the old flat hash maps on the per-delivery path (DESIGN.md §12).
// Rows are indexed by dense node ID. New in-order keys append without
// scanning; duplicates (link-layer retransmissions) and the rare
// out-of-order key scan the row backwards, where recent keys cluster.
type seenTable struct {
	rows []seenRow
}

// Seen reports whether (origin, key) was recorded before, recording it
// if not (check-and-mark).
func (s *seenTable) Seen(origin netsim.NodeID, key uint64) bool {
	i := int(origin)
	s.rows = dense.Grow(s.rows, i)
	r := &s.rows[i]
	if !r.any || key > r.max {
		r.keys = append(r.keys, key)
		r.max, r.any = key, true
		return false
	}
	for k := len(r.keys) - 1; k >= 0; k-- {
		if r.keys[k] == key {
			return true
		}
	}
	r.keys = append(r.keys, key)
	return false
}

// reset forgets everything (the reboot path: dedup state is RAM).
func (s *seenTable) reset() { s.rows = nil }
