// Package core implements the Scoop protocol itself: the per-node
// state machine (sampling, summary reporting, the six data-routing
// rules, batching, storage-index assembly, query answering) and the
// basestation (statistics collection, cost-based index construction,
// Trickle dissemination, query dissemination and reply collection).
// It composes the substrates: netsim for the radio, routing for the
// tree, trickle for dissemination, histogram/index/storage for state.
package core

import (
	"sync"

	"scoop/internal/index"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/prof"
	"scoop/internal/query"
	"scoop/internal/routing"
	"scoop/internal/storage"
	"scoop/internal/trace"
	"scoop/internal/trickle"
)

// Timer identifiers shared by node and basestation applications.
const (
	timerSample   = 1  // node: take a sensor sample
	timerSummary  = 2  // node: send a summary message
	timerTree     = 3  // both: routing-tree maintenance/beacons
	timerMapping  = 4  // both: mapping-chunk Trickle
	timerQuery    = 5  // both: query Trickle
	timerBatch    = 6  // node: flush a stale data batch
	timerRemap    = 7  // base: recompute the storage index
	timerReply    = 8  // node: send jittered query replies
	timerAggFlush = 9  // node: flush combined partial aggregates upward
	timerRel      = 10 // base: earliest pending-query deadline (reliability layer)
)

// Config carries every protocol parameter. Defaults (DefaultConfig)
// are the paper's experimental settings (§6 table and in-text values).
type Config struct {
	// SampleInterval is the sensor sampling period (paper: 15 s).
	SampleInterval netsim.Time
	// SummaryInterval is the summary-message period (paper: 110 s).
	SummaryInterval netsim.Time
	// RemapInterval is the storage-index recomputation period
	// (paper: 240 s).
	RemapInterval netsim.Time

	// RecentBufSize is the recent-readings ring size (paper: 30).
	RecentBufSize int
	// DataBufCap bounds each node's Flash data buffer, in readings.
	DataBufCap int
	// NBins is the summary histogram resolution (paper: 10).
	NBins int
	// NeighborReport is how many best neighbors a summary carries
	// (paper: 12).
	NeighborReport int
	// BatchSize is the max readings per data message (paper: 5).
	BatchSize int
	// BatchTimeout flushes a pending batch even without an owner
	// change, so readings are not held arbitrarily long.
	BatchTimeout netsim.Time
	// MaxHops is the data-message TTL guarding against transient
	// routing loops.
	MaxHops int

	// ChunkEntries is the number of index entries per mapping message.
	ChunkEntries int
	// SimilaritySuppress suppresses dissemination of a new index whose
	// per-value agreement with the current one is at least this
	// fraction (paper §5.3: suppress "if it is very similar").
	SimilaritySuppress float64
	// StoreLocalFallback enables the basestation's store-local cost
	// comparison (paper §4). The paper's experiments disable it.
	StoreLocalFallback bool
	// NeighborShortcut enables routing rule 3 (direct send to a
	// neighbor, bypassing the tree). On by default; ablation knob.
	NeighborShortcut bool
	// SummaryShortcut lets the basestation answer suitable aggregate
	// queries straight from stored summaries (paper §5.5).
	SummaryShortcut bool

	// StatStaleAfter, when > 0, makes index construction ignore node
	// summaries older than this: a dead or partitioned node stops
	// reporting, its statistics age out, and the next epoch's index
	// stops assigning it ownership. 0 keeps every last-known summary
	// forever (the paper's static-membership behaviour); churn
	// experiments set it to a few summary intervals.
	StatStaleAfter netsim.Time

	// ReindexEpsilon is the relative change below which the
	// incremental index builder treats contributor weights, query
	// probabilities and xmits entries as unchanged between rebuilds
	// (index.Builder.DirtyEpsilon). 0 — the default, and what every
	// committed baseline runs — means exact: incremental rebuilds are
	// bit-identical to from-scratch ones. Positive values trade that
	// exactness for fewer recomputations under noisy link estimators.
	ReindexEpsilon float64

	// ReplyMaxReadings caps readings carried in one reply message.
	ReplyMaxReadings int
	// QueryStatsWindow is how many recent queries feed the query
	// profile used by index construction.
	QueryStatsWindow int

	// AggCombineWindow spreads the answer wave of an aggregate query:
	// a targeted node at depth h computes its local partial after
	// roughly AggCombineWindow/(1+h), so deep nodes answer first and
	// their parents fold the partials in before forwarding.
	AggCombineWindow netsim.Time
	// AggFlushDelay is how long a node holds a freshly merged partial
	// for further combining before flushing it toward the base.
	AggFlushDelay netsim.Time
	// AggForcePlan pins the aggregate planner's physical plan
	// (ablation figures and tests); query.PlanAuto lets it choose.
	AggForcePlan query.Plan

	// DomainMin/DomainMax bound the attribute value domain the
	// basestation indexes (from the workload source).
	DomainMin, DomainMax int

	// QueryDeadline, when > 0, enables the basestation's query
	// reliability layer (DESIGN.md §19): every issued tuple or
	// aggregate query gets a reply deadline; owners still silent when
	// it expires are re-asked with a narrowed bitmap under exponential
	// backoff, and when the retry budget runs out the query settles to
	// an explicit terminal verdict (complete/partial/degraded/failed).
	// 0 — the default and what every pre-§19 baseline runs — disables
	// the layer entirely: no deadlines, no retries, no verdict state,
	// and zero additional allocations on the query path.
	QueryDeadline netsim.Time
	// QueryRetryMax caps re-issues per query (attempt k waits
	// QueryDeadline << k). Only read when QueryDeadline > 0.
	QueryRetryMax int

	// Preload, when non-nil, installs a fixed storage index on every
	// node and the basestation at time zero and skips dissemination.
	// The comparator policies are exactly this: LOCAL preloads a
	// store-local index, BASE preloads an all-values→base index, and
	// the simulated HASH extension preloads a static hash index.
	Preload *index.Index
	// DisableSummaries turns off statistics reporting (comparator
	// policies have no summaries).
	DisableSummaries bool
	// DisableRemap turns off periodic index recomputation.
	DisableRemap bool
	// RemapLimit, when > 0, stops scheduling index recomputations
	// after that many have run. RemapLimit 1 builds the first index
	// from post-warm-up statistics and then freezes it — the ablation
	// that shows what the adaptive loop buys under drift and churn.
	// 0 means unlimited.
	RemapLimit int

	// Trace, when non-nil, receives flight-recorder events from every
	// protocol decision point: reading lifecycle, query planning and
	// answering, aggregate combining, chunk dissemination and index
	// adoption (DESIGN.md §16). One recorder per simulation run; nil
	// disables tracing at the cost of one branch per site.
	Trace *trace.Recorder

	// Prof, when non-nil, attributes the wall time of the protocol
	// hot paths — packet handling, reindexing, planning, aggregate
	// combining, chunk dissemination — to the profiler's phase
	// taxonomy (DESIGN.md §17). Wall time never feeds back into
	// behaviour; nil disables profiling at the cost of one branch per
	// instrumented span.
	Prof *prof.Profiler

	// Tree configures the routing-tree substrate.
	Tree routing.Config
	// MappingTrickle configures mapping-chunk dissemination.
	MappingTrickle trickle.Config
	// QueryTrickle configures query dissemination.
	QueryTrickle trickle.Config
}

// DefaultConfig returns the paper's experimental parameters for a
// value domain of [lo,hi].
func DefaultConfig(lo, hi int) Config {
	return Config{
		SampleInterval:  15 * netsim.Second,
		SummaryInterval: 110 * netsim.Second,
		RemapInterval:   240 * netsim.Second,

		RecentBufSize:  30,
		DataBufCap:     4096,
		NBins:          10,
		NeighborReport: 12,
		BatchSize:      5,
		BatchTimeout:   120 * netsim.Second,
		MaxHops:        32,

		ChunkEntries:       6,
		SimilaritySuppress: 0.90,
		StoreLocalFallback: false,
		NeighborShortcut:   true,
		SummaryShortcut:    true,

		ReplyMaxReadings: 20,
		QueryStatsWindow: 100,

		AggCombineWindow: 4 * netsim.Second,
		AggFlushDelay:    700 * netsim.Millisecond,

		DomainMin: lo,
		DomainMax: hi,

		Tree: routing.DefaultConfig(),
		MappingTrickle: trickle.Config{
			TauLow:    500 * netsim.Millisecond,
			TauHigh:   16 * netsim.Second,
			K:         1,
			MaxRounds: 6,
		},
		QueryTrickle: trickle.Config{
			TauLow:    200 * netsim.Millisecond,
			TauHigh:   2 * netsim.Second,
			K:         1,
			MaxRounds: 4,
		},
	}
}

// ReadingProbe observes the life of every reading — production,
// storage events, loss-accounted drops — so an external checker can
// assert conservation (internal/invariant). Probes are test harness
// machinery: a nil Probe costs one predictable branch per event.
type ReadingProbe interface {
	ProducedReading(producer uint16, t int64)
	StoredReading(producer uint16, t int64)
	LostReading(producer uint16, t int64, reason string)
}

// SharedRunState is the cross-region slice of reading accounting for
// region-parallel runs: the per-reading storage dedup table and the
// invariant probe see events from every region (a reading produced in
// one region is stored at an owner in another), so they live behind
// one mutex instead of in any single region's RunStats shard. Both
// accounts are set-valued — a reading's first-storage bit and its
// probe lifecycle flags — so the cross-region arrival order the mutex
// admits cannot change totals or verdicts, only interleaving.
type SharedRunState struct {
	mu    sync.Mutex
	seen  seenTable
	probe ReadingProbe
}

// NewSharedRunState builds the shared slice; probe may be nil.
func NewSharedRunState(probe ReadingProbe) *SharedRunState {
	return &SharedRunState{probe: probe}
}

// RunStats aggregates end-to-end delivery outcomes across a run, the
// numbers behind the paper's "93% of data messages stored" and "78% of
// query results retrieved" and the 85%-found-owner routing result.
// One RunStats is shared by all nodes of a simulation when serial; a
// region-parallel run gives every region its own shard (all counters
// are plain int64 adds, so shards merge by field-wise sum) linked to
// one SharedRunState for the cross-region dedup and probe state.
type RunStats struct {
	// Probe, when non-nil, observes per-reading events (invariant
	// checking). Set before the simulation starts. When Shared is set,
	// the shared probe is used instead and this field must be nil.
	Probe ReadingProbe

	// Shared, when non-nil, routes per-reading dedup and probe traffic
	// through the mutex-protected cross-region state (region-parallel
	// runs). Serial runs leave it nil and pay no lock.
	Shared *SharedRunState

	Produced      int64 // readings sampled
	StoredLocal   int64 // readings stored by their producer
	StoredAtOwner int64 // readings stored at the correct owner
	StoredAtBase  int64 // readings that fell back to the base (owner not found)
	LostData      int64 // sender-perceived losses (ack never seen)

	// storedSeen deduplicates storage events per reading, so the
	// success rate is not inflated by at-least-once retransmission
	// duplicates (an ack loss makes the sender retry a reading the
	// receiver already stored). Sample times per producer are almost
	// always observed in increasing order, so the seenTable's
	// max-key fast path makes this O(1) per store event (DESIGN.md
	// §12), where the pre-scale-tier code paid a hash-map hit.
	storedSeen seenTable
	// StoredUnique counts distinct readings stored at least once.
	StoredUnique      int64
	QueriesIssued     int64
	RepliesExpected   int64 // targeted nodes across all queries
	QueriesHeard      int64 // query packets first heard by a targeted node
	RepliesSent       int64 // replies launched by targeted nodes
	RepliesForwarded  int64 // reply hop-forwards at intermediate nodes
	RepliesReceived   int64
	TuplesReturned    int64
	SummariesSent     int64
	SummariesReceived int64 // summaries that reached the base
	IndexesBuilt      int64
	IndexesSuppressed int64
	SummaryAnswered   int64 // queries answered from summaries alone

	// Reindex cost probe (index.BuildStats, summed across rebuilds):
	// how much work the basestation's index-construction pipeline
	// actually did. ReindexWallNanos is wall-clock (machine-dependent,
	// operator visibility only — it must never enter a committed
	// artifact); the other counters are deterministic.
	ReindexValues     int64 // value-domain entries across all rebuilds
	ReindexRecomputed int64 // values whose best-owner search re-ran
	ReindexSPTSources int64 // Dijkstra sources relaxed (0 when links were stable)
	ReindexFull       int64 // rebuilds that ran without usable incremental state
	ReindexWallNanos  int64 // wall-clock spent building indexes

	// Aggregate query engine counters.
	AggQueriesIssued    int64 // aggregate queries issued at the base
	AggQueriesHeard     int64 // agg query packets first heard by a targeted node
	AggRepliesSent      int64 // partial-aggregate flushes launched by nodes
	AggPartialsReceived int64 // partial-aggregate messages reaching the base
	AggCombined         int64 // descendant partials merged at intermediate nodes
	AggContributors     int64 // distinct nodes folded into answers at the base
	AggAnswered         int64 // agg queries with at least one partial back
	AggFirstAnswerMS    int64 // summed time-to-first-partial, virtual ms
	PlanSummaryChosen   int64 // per-plan decision counts
	PlanAggChosen       int64
	PlanTupleChosen     int64
	PlanFloodChosen     int64

	// Query reliability layer counters (DESIGN.md §19). All zero when
	// Config.QueryDeadline is 0.
	QueryRetries         int64 // deadline-driven re-issues (tuple + agg)
	QueryVerdictComplete int64 // queries settled with every owner heard
	QueryVerdictPartial  int64 // settled with some replies but no bound
	QueryVerdictDegraded int64 // settled from summaries with an error bound
	QueryVerdictFailed   int64 // settled with nothing to answer from
	DegradedAnswers      int64 // answers served via summary degradation
}

// MarkStored records that the reading (producer, sampled at time t)
// was stored somewhere, and reports whether this is its first storage
// event. Nodes call it on every store; duplicates return false.
func (s *RunStats) MarkStored(producer uint16, t int64) bool {
	if sh := s.Shared; sh != nil {
		sh.mu.Lock()
		if sh.probe != nil {
			sh.probe.StoredReading(producer, t)
		}
		dup := sh.seen.Seen(netsim.NodeID(producer), uint64(t))
		sh.mu.Unlock()
		if dup {
			return false
		}
		s.StoredUnique++
		return true
	}
	if s.Probe != nil {
		s.Probe.StoredReading(producer, t)
	}
	if s.storedSeen.Seen(netsim.NodeID(producer), uint64(t)) {
		return false
	}
	s.StoredUnique++
	return true
}

// noteProduced accounts one sampled reading.
func (s *RunStats) noteProduced(producer uint16, t int64) {
	s.Produced++
	if sh := s.Shared; sh != nil {
		if sh.probe != nil {
			sh.mu.Lock()
			sh.probe.ProducedReading(producer, t)
			sh.mu.Unlock()
		}
		return
	}
	if s.Probe != nil {
		s.Probe.ProducedReading(producer, t)
	}
}

// probeActive reports whether a conservation probe is attached,
// directly or through the shared cross-region state. Code outside the
// counter methods must use this (never s.Probe directly): in
// region-parallel runs the probe lives behind Shared and the direct
// field is nil.
func (s *RunStats) probeActive() bool {
	if sh := s.Shared; sh != nil {
		return sh.probe != nil
	}
	return s.Probe != nil
}

// probeLostReading reports one lost reading to the probe (if any)
// without touching the deterministic counters — the reboot-purge path,
// where LostData deliberately counts only radio-side losses.
func (s *RunStats) probeLostReading(producer uint16, t int64, reason string) {
	if sh := s.Shared; sh != nil {
		if sh.probe != nil {
			sh.mu.Lock()
			sh.probe.LostReading(producer, t, reason)
			sh.mu.Unlock()
		}
		return
	}
	if s.Probe != nil {
		s.Probe.LostReading(producer, t, reason)
	}
}

// loseReadings accounts a batch of readings as lost for the given
// cause (sender-perceived: an ack loss can mark a reading lost that
// was in fact stored; conservation checkers treat the accounts as
// at-least-once).
func (s *RunStats) loseReadings(rs []storage.Reading, cause metrics.DropCause) {
	s.LostData += int64(len(rs))
	if sh := s.Shared; sh != nil {
		if sh.probe != nil {
			sh.mu.Lock()
			reason := cause.String()
			for _, r := range rs {
				sh.probe.LostReading(r.Producer, r.Time, reason)
			}
			sh.mu.Unlock()
		}
		return
	}
	if s.Probe != nil {
		reason := cause.String()
		for _, r := range rs {
			s.Probe.LostReading(r.Producer, r.Time, reason)
		}
	}
}

// Stored returns all storage events (including retransmission
// duplicates); see StoredUnique for the deduplicated count.
func (s *RunStats) Stored() int64 { return s.StoredLocal + s.StoredAtOwner + s.StoredAtBase }

// DataSuccessRate returns the fraction of produced readings stored at
// least once — the paper's "data messages are successfully stored
// about 93% of the time".
func (s *RunStats) DataSuccessRate() float64 {
	if s.Produced == 0 {
		return 0
	}
	return float64(s.StoredUnique) / float64(s.Produced)
}

// OwnerHitRate returns the fraction of routed (non-local) readings
// that reached their designated owner rather than falling back to the
// base — the paper's "about 85% of the time, the appropriate
// destination node is found".
func (s *RunStats) OwnerHitRate() float64 {
	routed := s.StoredAtOwner + s.StoredAtBase
	if routed == 0 {
		return 0
	}
	return float64(s.StoredAtOwner) / float64(routed)
}

// QuerySuccessRate returns the fraction of targeted nodes whose
// replies made it back to the basestation.
func (s *RunStats) QuerySuccessRate() float64 {
	if s.RepliesExpected == 0 {
		return 0
	}
	return float64(s.RepliesReceived) / float64(s.RepliesExpected)
}
