package core

import (
	"scoop/internal/dense"
	"scoop/internal/netsim"
	"scoop/internal/query"
	"scoop/internal/trace"
	"scoop/internal/workload"
)

// This file is the basestation's query reliability layer (DESIGN.md
// §19). When Config.QueryDeadline > 0 every issued tuple or aggregate
// query carries a reply deadline; owners still silent when it expires
// are re-asked under exponential backoff with a bitmap narrowed to
// exactly the silent set, and when the retry budget runs out the query
// settles to an explicit terminal verdict — falling back to the
// retained summaries (with a widened error bound) when they can still
// answer. With QueryDeadline == 0 none of this state exists and the
// query path is byte-for-byte the pre-§19 protocol.

// Verdict is the terminal state of one issued query. Every query
// reaches exactly one verdict (the invariant checker enforces it); the
// lattice orders answer quality Complete > Degraded > Partial >
// Failed.
type Verdict uint8

const (
	// VerdictOpen is the non-terminal zero value: replies are still
	// being collected (or the reliability layer is disabled and the
	// query never settles).
	VerdictOpen Verdict = iota
	// VerdictComplete: every targeted owner was heard.
	VerdictComplete
	// VerdictPartial: some owners stayed silent and no summary
	// estimate could bound the gap; the answer is the partial result.
	VerdictPartial
	// VerdictDegraded: owners stayed silent but the retained summaries
	// answer with an explicit error bound (query.Degrade).
	VerdictDegraded
	// VerdictFailed: nothing came back and no estimate exists.
	VerdictFailed
	numVerdicts
)

var verdictNames = [numVerdicts]string{
	VerdictOpen:     "open",
	VerdictComplete: "complete",
	VerdictPartial:  "partial",
	VerdictDegraded: "degraded",
	VerdictFailed:   "failed",
}

func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "unknown"
}

// ParseVerdict resolves a verdict name (CLI filters).
func ParseVerdict(s string) (Verdict, bool) {
	for v, name := range verdictNames {
		if name == s {
			return Verdict(v), true
		}
	}
	return VerdictOpen, false
}

// AllVerdicts lists the terminal verdicts in lattice order
// (reporting).
func AllVerdicts() []Verdict {
	return []Verdict{VerdictComplete, VerdictDegraded, VerdictPartial, VerdictFailed}
}

// VerdictRecord is one settled query in the basestation's durable
// verdict log: what the query reached, how many of its targeted
// owners were heard, and — for degraded answers — the served error
// bound next to the raw summary bound it widened (the invariant
// checker asserts ErrBound >= SummaryBound).
type VerdictRecord struct {
	QID          uint16
	Verdict      Verdict
	Got          int
	Expected     int
	ErrBound     float64
	SummaryBound float64
}

// openQuery is one entry of the basestation's durable query journal:
// enough to re-issue the query after a basestation restart wipes the
// in-RAM pending state. Settling marks it closed.
type openQuery struct {
	qid     uint16
	agg     bool
	plan    query.Plan
	wq      workload.Query // tuple queries
	aq      query.AggQuery // aggregate queries
	attempt int
	closed  bool
}

// relOn reports whether the reliability layer is enabled.
func (b *Base) relOn() bool { return b.cfg.QueryDeadline > 0 }

// VerdictLog exposes the durable verdict records in settle order.
func (b *Base) VerdictLog() []VerdictRecord { return b.verdicts }

// QueryJournalLen reports how many queries the reliability layer has
// journalled — the number that must reach a terminal verdict.
func (b *Base) QueryJournalLen() int { return len(b.openLog) }

// PendingOpen counts queries still holding live collection state
// (reply tables, deadline clocks). The regression hook for the
// unbounded pending-state fix: with the reliability layer on, every
// query eventually settles and evicts, so this returns to zero even
// under 100% reply loss.
func (b *Base) PendingOpen() int {
	n := 0
	for _, pq := range b.pending {
		if pq != nil && pq.replied != nil {
			n++
		}
	}
	for _, pa := range b.pendingAgg {
		if pa != nil && pa.deadline != 0 && pa.verdict == VerdictOpen {
			n++
		}
	}
	return n
}

// relArm arms (or pulls forward) the shared deadline timer.
func (b *Base) relArm(at netsim.Time) {
	if b.relNextAt != 0 && b.relNextAt <= at {
		return
	}
	b.relNextAt = at
	b.api.SetTimer(timerRel, at-b.api.Now())
}

// relRegisterTuple attaches reliability state to a freshly issued
// tuple query: journal it, and either settle immediately (nothing to
// wait for) or start the deadline clock.
func (b *Base) relRegisterTuple(msg *QueryMsg, pq *pendingQuery, wq workload.Query) {
	if !b.relOn() {
		return
	}
	pq.msg = msg
	pq.logIdx = len(b.openLog) + 1
	b.openLog = append(b.openLog, openQuery{qid: msg.ID, plan: query.PlanTuple, wq: wq})
	if pq.expected == 0 {
		b.settleTuple(msg.ID, pq, true)
		return
	}
	pq.deadline = b.api.Now() + b.cfg.QueryDeadline
	b.relArm(pq.deadline)
}

// relRegisterAgg is relRegisterTuple's aggregate twin. Summary-plan
// queries are answered at issue time and settle complete on the spot.
func (b *Base) relRegisterAgg(qid uint16, pa *pendingAgg) {
	if !b.relOn() {
		return
	}
	pa.logIdx = len(b.openLog) + 1
	b.openLog = append(b.openLog, openQuery{qid: qid, agg: true, plan: pa.plan, aq: pa.q})
	if pa.plan == query.PlanSummary || pa.expected == 0 {
		b.settleAgg(qid, pa, true)
		return
	}
	pa.deadline = b.api.Now() + b.cfg.QueryDeadline
	b.relArm(pa.deadline)
}

// resolveWire maps a reply's wire query ID back to the original query
// it retries (identity for first-issue IDs).
func (b *Base) resolveWire(qid uint16) uint16 {
	if int(qid) < len(b.retryOf) && b.retryOf[qid] != 0 {
		return b.retryOf[qid]
	}
	return qid
}

// relTimer fires at the earliest pending deadline: retry or settle
// every due query, then re-arm for the next one. Both pending tables
// are dense by query ID, so the walk order — and therefore the retry
// wire-ID assignment — is deterministic.
func (b *Base) relTimer() {
	now := b.api.Now()
	b.relNextAt = 0
	var next netsim.Time
	note := func(at netsim.Time) {
		if next == 0 || at < next {
			next = at
		}
	}
	for id := range b.pending {
		pq := b.pending[id]
		if pq == nil || pq.verdict != VerdictOpen || pq.deadline == 0 {
			continue
		}
		if now < pq.deadline {
			note(pq.deadline)
			continue
		}
		b.tupleDeadline(uint16(id), pq)
		if pq.verdict == VerdictOpen {
			note(pq.deadline)
		}
	}
	for id := range b.pendingAgg {
		pa := b.pendingAgg[id]
		if pa == nil || pa.verdict != VerdictOpen || pa.deadline == 0 {
			continue
		}
		if now < pa.deadline {
			note(pa.deadline)
			continue
		}
		b.aggDeadline(uint16(id), pa)
		if pa.verdict == VerdictOpen {
			note(pa.deadline)
		}
	}
	if next != 0 {
		b.relArm(next)
	}
}

// tupleDeadline handles one expired tuple-query deadline: re-ask the
// silent owners if budget remains, otherwise settle.
func (b *Base) tupleDeadline(qid uint16, pq *pendingQuery) {
	if pq.got >= pq.expected || pq.attempt >= b.cfg.QueryRetryMax {
		b.settleTuple(qid, pq, true)
		return
	}
	var silent Bitmap
	cnt := 0
	for _, id := range pq.msg.Bitmap.IDs() {
		if !pq.replied[id] {
			silent.Set(id)
			cnt++
		}
	}
	if cnt == 0 {
		b.settleTuple(qid, pq, true)
		return
	}
	pq.attempt++
	b.qidNext++
	wire := b.qidNext
	m := &QueryMsg{
		ID: wire, Bitmap: silent,
		ValueLo: pq.msg.ValueLo, ValueHi: pq.msg.ValueHi,
		TimeLo: pq.msg.TimeLo, TimeHi: pq.msg.TimeHi,
	}
	b.retryOf = dense.Grow(b.retryOf, int(wire))
	b.retryOf[wire] = qid
	pq.wires = append(pq.wires, wire)
	b.queriesOut = dense.Grow(b.queriesOut, int(wire))
	b.queriesOut[wire] = m
	b.relLaunchRetry(qid, wire, cnt, pq.attempt)
	pq.deadline = b.api.Now() + b.cfg.QueryDeadline<<uint(pq.attempt)
	if pq.logIdx > 0 {
		b.openLog[pq.logIdx-1].attempt = pq.attempt
	}
}

// aggDeadline is tupleDeadline's aggregate twin; the silent set comes
// from the contributor bitmaps Track queries collect.
func (b *Base) aggDeadline(qid uint16, pa *pendingAgg) {
	if pa.nodes.Count() >= pa.expected || pa.attempt >= b.cfg.QueryRetryMax {
		b.settleAgg(qid, pa, true)
		return
	}
	silent := pa.targets.AndNot(&pa.nodes)
	cnt := silent.Count()
	if cnt == 0 {
		b.settleAgg(qid, pa, true)
		return
	}
	pa.attempt++
	b.qidNext++
	wire := b.qidNext
	m := &AggQueryMsg{
		ID: wire, Bitmap: silent, Op: pa.q.Op,
		ValueLo: pa.q.ValueLo, ValueHi: pa.q.ValueHi,
		TimeLo: pa.q.TimeLo, TimeHi: pa.q.TimeHi,
		Track: true,
	}
	b.retryOf = dense.Grow(b.retryOf, int(wire))
	b.retryOf[wire] = qid
	pa.wires = append(pa.wires, wire)
	b.aggOut = dense.Grow(b.aggOut, int(wire))
	b.aggOut[wire] = m
	b.relLaunchRetry(qid, wire, cnt, pa.attempt)
	pa.deadline = b.api.Now() + b.cfg.QueryDeadline<<uint(pa.attempt)
	if pa.logIdx > 0 {
		b.openLog[pa.logIdx-1].attempt = pa.attempt
	}
}

// relLaunchRetry pushes one registered retry packet into query gossip
// and accounts it. Retries ride fresh wire IDs: nodes answer each
// query ID exactly once, so re-asking under the original ID would be
// suppressed everywhere.
func (b *Base) relLaunchRetry(qid, wire uint16, silent, attempt int) {
	b.qGos.Add(queryKey(wire))
	b.sendQuery(queryKey(wire))
	b.qGos.Heard(queryKey(wire)) // count our own broadcast
	b.stats.QueryRetries++
	b.cfg.Trace.Emit(trace.Event{Kind: trace.QueryRetry, Node: uint16(b.api.ID()),
		ID: qid, Value: int64(silent), Aux: int64(attempt)})
}

// settleTuple assigns a tuple query its terminal verdict and evicts
// its collection state. The collected readings stay (QueryResults and
// tuple-plan aggregate answers read them); the replied table, retry
// mappings and gossip entries go.
func (b *Base) settleTuple(qid uint16, pq *pendingQuery, emit bool) {
	var v Verdict
	var errB, sumB float64
	var pa *pendingAgg
	if int(qid) < len(b.pendingAgg) {
		pa = b.pendingAgg[qid]
	}
	switch {
	case pq.got >= pq.expected:
		v = VerdictComplete
	case pa != nil && pa.est.Valid:
		v = VerdictDegraded
		sumB = pa.est.ErrBound
		pa.est = query.Degrade(pa.est, float64(pq.got)/float64(pq.expected))
		errB = pa.est.ErrBound
	case pq.got > 0 || pq.total > 0:
		v = VerdictPartial
	default:
		v = VerdictFailed
	}
	pq.verdict = v
	if pa != nil {
		pa.verdict = v
	}
	b.settleVerdict(qid, v, pq.got, pq.expected, errB, sumB, pq.logIdx, emit)
	pq.replied = nil
	pq.msg = nil
	b.relDropWire(qid)
	for _, w := range pq.wires {
		b.relDropWire(w)
	}
	pq.wires = nil
}

// settleAgg assigns an aggregate query its terminal verdict. A
// degraded verdict swaps the answer to the widened summary estimate
// (AggAnswer serves est.Value with its error bound).
func (b *Base) settleAgg(qid uint16, pa *pendingAgg, emit bool) {
	heard := pa.nodes.Count()
	var v Verdict
	var errB, sumB float64
	switch {
	case heard >= pa.expected:
		v = VerdictComplete
	case pa.est.Valid:
		v = VerdictDegraded
		sumB = pa.est.ErrBound
		pa.est = query.Degrade(pa.est, float64(heard)/float64(pa.expected))
		errB = pa.est.ErrBound
		if !pa.answered {
			pa.answered = true
			b.stats.AggAnswered++
		}
	case pa.contribs > 0:
		v = VerdictPartial
	default:
		v = VerdictFailed
	}
	pa.verdict = v
	b.settleVerdict(qid, v, heard, pa.expected, errB, sumB, pa.logIdx, emit)
	b.relDropWire(qid)
	for _, w := range pa.wires {
		b.relDropWire(w)
	}
	pa.wires = nil
}

// settleVerdict is the shared settle tail: counters, the optional
// trace event, the durable verdict record, and journal closure.
func (b *Base) settleVerdict(qid uint16, v Verdict, got, expected int, errB, sumB float64, logIdx int, emit bool) {
	switch v {
	case VerdictComplete:
		b.stats.QueryVerdictComplete++
	case VerdictPartial:
		b.stats.QueryVerdictPartial++
	case VerdictDegraded:
		b.stats.QueryVerdictDegraded++
		b.stats.DegradedAnswers++
	case VerdictFailed:
		b.stats.QueryVerdictFailed++
	}
	if emit {
		b.cfg.Trace.Emit(trace.Event{Kind: trace.QueryVerdict, Node: uint16(b.api.ID()),
			Flag: uint8(v), ID: qid, Value: int64(got), Aux: int64(expected)})
	}
	b.verdicts = append(b.verdicts, VerdictRecord{
		QID: qid, Verdict: v, Got: got, Expected: expected,
		ErrBound: errB, SummaryBound: sumB,
	})
	if logIdx > 0 {
		b.openLog[logIdx-1].closed = true
	}
}

// relDropWire evicts one wire query ID from the outbound tables and
// query gossip — the fix for the unbounded pending-state growth the
// pre-§19 base suffered under reply loss.
func (b *Base) relDropWire(w uint16) {
	if int(w) < len(b.queriesOut) && b.queriesOut[w] != nil {
		b.queriesOut[w] = nil
		b.qGos.Remove(queryKey(w))
	}
	if int(w) < len(b.aggOut) && b.aggOut[w] != nil {
		b.aggOut[w] = nil
		b.qGos.Remove(queryKey(w))
	}
	if int(w) < len(b.retryOf) {
		b.retryOf[w] = 0
	}
}

// FinalizeVerdicts settles every still-open query — the harness calls
// it once after the simulator stops, so queries issued too late for
// their deadline still reach a terminal verdict exactly once. It runs
// post-run and therefore emits no trace events (region-parallel trace
// merge is closed by then); counters and the verdict log are enough.
func (b *Base) FinalizeVerdicts() {
	if !b.relOn() {
		return
	}
	for id := range b.pending {
		pq := b.pending[id]
		if pq != nil && pq.deadline != 0 && pq.verdict == VerdictOpen {
			b.settleTuple(uint16(id), pq, false)
		}
	}
	for id := range b.pendingAgg {
		pa := b.pendingAgg[id]
		if pa != nil && pa.deadline != 0 && pa.verdict == VerdictOpen {
			b.settleAgg(uint16(id), pa, false)
		}
	}
}

// recoverOpenQueries rebuilds pending-query state from the durable
// journal after a basestation restart: every journalled query not yet
// settled is re-registered with a fresh deadline, and the ordinary
// deadline machinery re-asks its owners. Replies addressed to
// pre-restart retry wire IDs are dropped — the retry mapping was RAM.
func (b *Base) recoverOpenQueries() {
	if !b.relOn() {
		return
	}
	now := b.api.Now()
	for i := range b.openLog {
		e := &b.openLog[i]
		if e.closed {
			continue
		}
		if e.agg {
			targets, _ := b.rangeTargets(e.aq.ValueLo, e.aq.ValueHi, e.aq.TimeLo, e.aq.TimeHi)
			pa := &pendingAgg{
				q: e.aq, plan: e.plan, issued: now,
				attempt: e.attempt, logIdx: i + 1,
			}
			pa.est = query.EstimateFromSummaries(e.aq, b.summarySnapshots())
			for _, id := range targets {
				if id == b.api.ID() {
					continue
				}
				pa.targets.Set(id)
				pa.expected++
			}
			b.pendingAgg = dense.Grow(b.pendingAgg, int(e.qid))
			b.pendingAgg[e.qid] = pa
			if pa.expected == 0 {
				b.settleAgg(e.qid, pa, true)
				continue
			}
			pa.deadline = now + b.cfg.QueryDeadline
			b.relArm(pa.deadline)
			continue
		}
		targets := b.targets(e.wq)
		msg := &QueryMsg{ID: e.qid, TimeLo: e.wq.TimeLo, TimeHi: e.wq.TimeHi}
		if e.wq.IsNodeQuery() {
			msg.ValueLo, msg.ValueHi = 1, 0
		} else {
			msg.ValueLo, msg.ValueHi = e.wq.ValueLo, e.wq.ValueHi
		}
		expected := 0
		for _, id := range targets {
			if id == b.api.ID() {
				continue
			}
			msg.Bitmap.Set(id)
			expected++
		}
		pq := &pendingQuery{
			expected: expected, replied: make([]bool, b.api.N()),
			msg: msg, attempt: e.attempt, logIdx: i + 1,
		}
		b.pending = dense.Grow(b.pending, int(e.qid))
		b.pending[e.qid] = pq
		if expected == 0 {
			b.settleTuple(e.qid, pq, true)
			continue
		}
		pq.deadline = now + b.cfg.QueryDeadline
		b.relArm(pq.deadline)
	}
}
