package core

import (
	"sort"

	"scoop/internal/dense"
	"scoop/internal/index"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/prof"
	"scoop/internal/query"
	"scoop/internal/routing"
	"scoop/internal/storage"
	"scoop/internal/trace"
	"scoop/internal/trickle"
	"scoop/internal/workload"
)

// indexRecord remembers when an index generation became active, so
// historical queries can locate the data stored under it (paper §5.5:
// "unlike nodes, the basestation never discards old storage indices").
type indexRecord struct {
	ix *index.Index
	at netsim.Time
}

// loggedQuery feeds the query-statistics profile.
type loggedQuery struct {
	at     netsim.Time
	lo, hi int
	ranged bool
}

// pendingQuery tracks reply collection for one issued query. replied
// is dense by node ID (sized to the network), part of the scale tier's
// no-hot-path-maps convention.
type pendingQuery struct {
	expected int
	replied  []bool
	readings []storage.Reading // tuples carried back (reply payloads are capped)
	total    int               // total matches reported (uncapped node counts)

	// Reliability layer state (DESIGN.md §19); all zero when
	// Config.QueryDeadline is 0.
	msg      *QueryMsg   // the issued packet (retries narrow its bitmap)
	deadline netsim.Time // next retry/settle point
	attempt  int         // re-issues so far
	got      int         // distinct owners heard (across attempts)
	verdict  Verdict     // terminal verdict once settled
	wires    []uint16    // retry wire IDs mapping back to this query
	logIdx   int         // 1+index into the durable journal; 0 = none
}

// Base is the Scoop basestation application (node 0). The paper runs
// it on a PC attached to a mote; it has ample CPU/memory.
type Base struct {
	api   *netsim.NodeAPI
	cfg   Config
	stats *RunStats
	start netsim.Time // when indexing begins (after warm-up)

	tree  *routing.Tree
	store *storage.DataBuffer

	latest  []*SummaryMsg // last summary per node, dense by node ID
	latestN int           // nodes with at least one summary
	history []*SummaryMsg // never discarded (paper §5.5)

	cur        *index.Index
	records    []indexRecord
	nextID     uint16
	chunks     map[trickle.Key]index.Chunk
	mapGos     *trickle.Trickle
	qGos       *trickle.Trickle
	queriesOut []*QueryMsg // dense by query ID

	queryLog []loggedQuery
	pending  []*pendingQuery // dense by query ID
	qidNext  uint16
	remaps   int // scheduled remaps run so far (RemapLimit bookkeeping)

	// Reliability layer (DESIGN.md §19). retryOf and relNextAt are RAM
	// (lost on restart); openLog and verdicts are journal state that
	// survives like the query log does.
	retryOf   []uint16    // dense wire ID -> original query ID; 0 = none
	relNextAt netsim.Time // armed deadline of timerRel; 0 = unarmed
	verdicts  []VerdictRecord
	openLog   []openQuery

	// Reindex pipeline state, reused across rebuilds: the link-quality
	// graph (Reset each epoch), the incremental index builder with its
	// solver/contributor/owner scratch, and the per-node statistics
	// slice buildInput refills.
	graph      *index.Graph
	builder    index.Builder
	statsInput []index.NodeStat
	profProb   []float64

	// Aggregate query engine: outstanding agg queries under gossip,
	// per-query answer assembly, and partial-message dedup.
	aggOut       []*AggQueryMsg // dense by query ID
	pendingAgg   []*pendingAgg  // dense by query ID
	seenAggParts seenTable
}

// NewBase creates the basestation; index construction begins at the
// absolute virtual time startAt plus one remap interval.
func NewBase(cfg Config, stats *RunStats, startAt netsim.Time) *Base {
	return &Base{cfg: cfg, stats: stats, start: startAt}
}

// CurrentIndex exposes the active storage index (nil before the first
// build). Test/diagnostic accessor.
func (b *Base) CurrentIndex() *index.Index { return b.cur }

// IndexHistory exposes all disseminated index generations with their
// activation times.
func (b *Base) IndexHistory() []*index.Index {
	out := make([]*index.Index, len(b.records))
	for i, r := range b.records {
		out[i] = r.ix
	}
	return out
}

// SummaryCount reports how many nodes the base holds a summary for.
func (b *Base) SummaryCount() int { return b.latestN }

// Store exposes the basestation's local data store for tests.
func (b *Base) Store() *storage.DataBuffer { return b.store }

// Init implements netsim.App.
func (b *Base) Init(api *netsim.NodeAPI) {
	b.api = api
	b.tree = routing.NewTree(api, true, b.cfg.Tree)
	b.store = storage.NewDataBuffer(1 << 18)
	b.latest = make([]*SummaryMsg, api.N())
	b.latestN = 0
	b.chunks = make(map[trickle.Key]index.Chunk)
	b.queriesOut = nil
	b.pending = nil
	b.aggOut = nil
	b.pendingAgg = nil
	b.seenAggParts.reset()
	b.retryOf = nil
	b.relNextAt = 0
	b.graph = index.NewGraph(api.N())
	b.builder = index.Builder{DirtyEpsilon: b.cfg.ReindexEpsilon, Trace: b.cfg.Trace}
	b.statsInput = make([]index.NodeStat, api.N())
	b.profProb = make([]float64, b.cfg.DomainMax-b.cfg.DomainMin+1)
	b.mapGos = trickle.New(api, timerMapping, b.cfg.MappingTrickle, b.sendChunk)
	b.qGos = trickle.New(api, timerQuery, b.cfg.QueryTrickle, b.sendQuery)
	if b.cfg.Preload != nil {
		b.cur = b.cfg.Preload
		b.records = append(b.records, indexRecord{ix: b.cfg.Preload, at: 0})
	}
	b.tree.Start(timerTree)
	if !b.cfg.DisableRemap {
		// First remap one summary interval after sampling starts, so
		// the first wave of statistics has arrived; then every
		// RemapInterval. A restart mid-run realigns to the next remap
		// boundary instead of scheduling into the past.
		first := b.start + b.cfg.SummaryInterval + 10*netsim.Second
		delay := first - api.Now()
		if delay < 0 {
			delay = b.cfg.RemapInterval - (api.Now()-first)%b.cfg.RemapInterval
		}
		api.SetTimer(timerRemap, delay)
	}
	b.recoverOpenQueries()
}

// Timer implements netsim.App.
func (b *Base) Timer(id int) {
	switch id {
	case timerTree:
		b.tree.OnTimer()
	case timerRemap:
		b.Remap()
		b.remaps++
		if b.cfg.RemapLimit == 0 || b.remaps < b.cfg.RemapLimit {
			b.api.SetTimer(timerRemap, b.cfg.RemapInterval)
		}
	case timerMapping:
		b.mapGos.OnTimer()
	case timerQuery:
		b.qGos.OnTimer()
	case timerRel:
		b.relTimer()
	}
}

// Receive implements netsim.App. Wall time spent here attributes to
// the base-recv phase (nested reindex/agg/chunk spans re-attribute
// themselves).
func (b *Base) Receive(p *netsim.Packet) {
	prev := b.cfg.Prof.Enter(prof.PhaseBaseRecv)
	b.receive(p)
	b.cfg.Prof.Exit(prev)
}

func (b *Base) receive(p *netsim.Packet) {
	b.tree.Observe(p)
	switch m := p.Payload.(type) {
	case *SummaryMsg:
		b.tree.RecordUpstream(p.Origin, p.Src)
		b.onSummary(m)
	case *DataMsg:
		b.tree.RecordUpstream(p.Origin, p.Src)
		b.onData(m)
	case *ReplyMsg:
		b.tree.RecordUpstream(p.Origin, p.Src)
		b.onReply(m)
	case *AggReplyMsg:
		b.tree.RecordUpstream(p.Origin, p.Src)
		b.onAggReply(m)
	case *MappingMsg:
		b.mapGos.Heard(mapKey(m.Chunk.IndexID, m.Chunk.Num))
	case *QueryMsg:
		b.qGos.Heard(queryKey(m.ID))
	case *AggQueryMsg:
		b.qGos.Heard(queryKey(m.ID))
	}
}

// Snoop implements netsim.App.
func (b *Base) Snoop(p *netsim.Packet) { b.tree.Observe(p) }

func (b *Base) onSummary(m *SummaryMsg) {
	b.stats.SummariesReceived++
	if b.latest[m.Node] == nil {
		b.latestN++
	}
	b.latest[m.Node] = m
	b.history = append(b.history, m)
	// Trickle inconsistency detection: a summary advertising an
	// outdated index (a rebooted node reports 0) restarts fast gossip
	// of the current generation's chunks, which would otherwise have
	// retired after MaxRounds and left the node index-less forever.
	if b.cur != nil && m.LastIndexID < b.cur.ID {
		resetChunks(b.chunks, b.cur.ID, b.mapGos)
	}
}

// resetChunks drops every mapping chunk of generation curID back to
// the fast Trickle interval, in key order (each reset draws
// randomness, so iteration must be deterministic). Shared by the base
// and node inconsistency-detection paths so the Trickle rule cannot
// drift between them.
// sortedChunkKeys returns the chunk map's keys in ascending order.
// Chunk purges call Trickle.Remove per key and each call re-arms the
// shared timer, so the iteration must be deterministic (DESIGN.md §2);
// base.Remap and node.onChunk share this helper so the rule cannot
// drift between them.
func sortedChunkKeys(chunks map[trickle.Key]index.Chunk) []trickle.Key {
	ks := make([]trickle.Key, 0, len(chunks))
	for k := range chunks {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func resetChunks(chunks map[trickle.Key]index.Chunk, curID uint16, g *trickle.Trickle) {
	var ks []trickle.Key
	for k, c := range chunks {
		if c.IndexID == curID {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	for _, k := range ks {
		g.Reset(k)
	}
}

// onData implements routing rule 4: data arriving at the basestation
// is stored here, never routed back down.
func (b *Base) onData(m *DataMsg) {
	for _, r := range m.Readings {
		b.store.Store(r)
		b.stats.MarkStored(r.Producer, r.Time)
		site := trace.StoreOwner
		if m.Owner == b.api.ID() {
			b.stats.StoredAtOwner++
		} else {
			// The network failed to find the owner; the reading washed
			// up at the root (the paper's ~15% case).
			b.stats.StoredAtBase++
			site = trace.StoreBase
		}
		b.cfg.Trace.Emit(trace.Event{Kind: trace.ReadingStored, Node: uint16(b.api.ID()),
			Flag: site, Producer: r.Producer, SampleT: r.Time, Value: int64(r.Value)})
	}
}

func (b *Base) onReply(m *ReplyMsg) {
	qid := b.resolveWire(m.QueryID)
	if int(qid) >= len(b.pending) {
		return
	}
	pq := b.pending[qid]
	// A nil replied table means the query already settled and was
	// evicted (reliability layer); late replies are dropped.
	if pq == nil || pq.replied == nil || pq.replied[m.Node] {
		return
	}
	pq.replied[m.Node] = true
	pq.got++
	pq.readings = append(pq.readings, m.Readings...)
	pq.total += m.Count
	b.stats.RepliesReceived++
	b.stats.TuplesReturned += int64(m.Count)
	if rec := b.cfg.Trace; rec != nil {
		for _, r := range m.Readings {
			rec.Emit(trace.Event{Kind: trace.ReadingDelivered, Node: uint16(b.api.ID()),
				ID: qid, Producer: r.Producer, SampleT: r.Time, Value: int64(r.Value)})
		}
	}
	if pq.deadline != 0 && pq.got >= pq.expected {
		// Every owner heard: settle complete without waiting for the
		// deadline, freeing the collection state immediately.
		b.settleTuple(qid, pq, true)
	}
}

// LastQueryID returns the ID of the most recently issued query.
func (b *Base) LastQueryID() uint16 { return b.qidNext }

// QueryResults returns the tuples collected so far for the query
// (replies carry at most ReplyMaxReadings tuples each, so large result
// sets are truncated per responding node, as on real motes).
func (b *Base) QueryResults(qid uint16) []storage.Reading {
	if int(qid) < len(b.pending) && b.pending[qid] != nil {
		return b.pending[qid].readings
	}
	return nil
}

// Remap recomputes the storage index from current statistics and
// disseminates it unless it is too similar to the active one
// (paper §4 and §5.3). Exposed for tests and adaptive experiments.
// Wall time attributes to the reindex phase.
func (b *Base) Remap() {
	prev := b.cfg.Prof.Enter(prof.PhaseReindex)
	b.remap()
	b.cfg.Prof.Exit(prev)
}

func (b *Base) remap() {
	in := b.buildInput()
	b.stats.IndexesBuilt++
	id := b.nextID + 1
	var ix *index.Index
	if b.cfg.StoreLocalFallback {
		ix = b.builder.ChooseIndex(id, &in)
	} else {
		ix = b.builder.Build(id, &in)
	}
	bs := b.builder.LastStats()
	b.stats.ReindexValues += int64(bs.Values)
	b.stats.ReindexRecomputed += int64(bs.Recomputed)
	b.stats.ReindexSPTSources += int64(bs.SPTSources)
	if bs.FullRebuild {
		b.stats.ReindexFull++
	}
	b.stats.ReindexWallNanos += bs.WallNanos
	if b.cur != nil && index.Similarity(ix, b.cur) >= b.cfg.SimilaritySuppress {
		b.stats.IndexesSuppressed++
		b.cfg.Trace.Emit(trace.Event{Kind: trace.IndexSuppressed, Node: uint16(b.api.ID()), ID: id})
		return
	}
	b.nextID = id
	b.cur = ix
	b.records = append(b.records, indexRecord{ix: ix, at: b.api.Now()})
	// Replace the gossip set with the new generation's chunks, in key
	// order: each Trickle.Remove re-arms the shared timer, so the
	// purge sequence must not depend on map iteration order.
	for _, k := range sortedChunkKeys(b.chunks) {
		delete(b.chunks, k)
		b.mapGos.Remove(k)
	}
	chunks := ix.Chunks(b.cfg.ChunkEntries)
	for _, c := range chunks {
		k := mapKey(c.IndexID, c.Num)
		b.chunks[k] = c
		b.mapGos.Add(k)
	}
	b.cfg.Trace.Emit(trace.Event{Kind: trace.IndexAdopted, Node: uint16(b.api.ID()),
		ID: id, Value: int64(len(chunks))})
}

// buildInput assembles the indexing algorithm's input from the latest
// summaries (histograms, rates, link qualities) and the query log.
// Every buffer it touches — the link graph, the per-node statistics
// slice, the query-probability row — is basestation-owned scratch
// reused across rebuilds, so the steady-state reindex loop stays off
// the allocator.
func (b *Base) buildInput() index.BuildInput {
	n := b.api.N()
	g := b.graph
	g.Reset()
	// Summaries older than StatStaleAfter are excluded: their nodes
	// have stopped reporting (dead, partitioned), so the next index
	// epoch must neither trust their links nor assign them ownership.
	// With no fresh statistics and no reported links, such a node's
	// ownership cost is infinite and the algorithm routes around it.
	cutoff := netsim.Time(-1)
	if b.cfg.StatStaleAfter > 0 {
		cutoff = b.api.Now() - b.cfg.StatStaleAfter
	}
	fresh := func(s *SummaryMsg) bool { return cutoff < 0 || s.SentAt >= cutoff }
	// Link qualities from summary topology sections…
	for _, s := range b.latest {
		if s == nil || !fresh(s) {
			continue
		}
		for _, nb := range s.Neighbors {
			g.Report(nb.ID, s.Node, nb.Quality)
		}
	}
	// …and from the base's own neighbor table.
	for _, nb := range b.tree.Neighbors.Best(n) {
		g.Report(nb.ID, b.api.ID(), nb.Quality)
	}
	nodes := b.statsInput
	for i := range nodes {
		nodes[i] = index.NodeStat{}
	}
	for id, s := range b.latest {
		if s == nil || !fresh(s) {
			continue
		}
		nodes[id] = index.NodeStat{Hist: s.Hist, Rate: s.Rate}
	}
	return index.BuildInput{
		N:        n,
		Base:     b.api.ID(),
		Nodes:    nodes,
		Query:    b.queryProfile(),
		Graph:    g, // the builder runs the sparse shortest-path pass
		MinValue: b.cfg.DomainMin,
		MaxValue: b.cfg.DomainMax,
	}
}

// queryProfile derives P(user queries v) and the query rate from the
// sliding window of recent queries (paper §5.5).
func (b *Base) queryProfile() index.QueryProfile {
	window := b.queryLog
	if len(window) > b.cfg.QueryStatsWindow {
		window = window[len(window)-b.cfg.QueryStatsWindow:]
	}
	for i := range b.profProb {
		b.profProb[i] = 0
	}
	prof := index.QueryProfile{
		MinValue: b.cfg.DomainMin,
		Prob:     b.profProb,
	}
	if len(window) == 0 {
		return prof
	}
	ranged := 0
	for _, q := range window {
		if !q.ranged {
			continue
		}
		ranged++
		for v := q.lo; v <= q.hi && v <= b.cfg.DomainMax; v++ {
			if v >= b.cfg.DomainMin {
				prof.Prob[v-b.cfg.DomainMin]++
			}
		}
	}
	if ranged > 0 {
		for i := range prof.Prob {
			prof.Prob[i] /= float64(ranged)
		}
	}
	span := b.api.Now() - window[0].at
	if span > 0 {
		prof.Rate = float64(len(window)) / (float64(span) / float64(netsim.Second))
	}
	return prof
}

// IssueQuery disseminates a user query and registers reply tracking.
// It returns the set of targeted nodes (diagnostics/tests).
func (b *Base) IssueQuery(q workload.Query) []netsim.NodeID {
	b.stats.QueriesIssued++
	lg := loggedQuery{at: b.api.Now()}
	if !q.IsNodeQuery() {
		lg.lo, lg.hi, lg.ranged = q.ValueLo, q.ValueHi, true
	}
	b.queryLog = append(b.queryLog, lg)
	return b.issueTupleQuery(q, b.targets(q))
}

// issueTupleQuery builds, registers and disseminates the tuple-return
// query packet for an already-computed target set (shared by
// IssueQuery and the aggregate planner's tuple plan).
func (b *Base) issueTupleQuery(q workload.Query, targets []netsim.NodeID) []netsim.NodeID {
	b.qidNext++
	msg := &QueryMsg{
		ID:     b.qidNext,
		TimeLo: q.TimeLo,
		TimeHi: q.TimeHi,
	}
	if q.IsNodeQuery() {
		msg.ValueLo, msg.ValueHi = 1, 0 // no value constraint
	} else {
		msg.ValueLo, msg.ValueHi = q.ValueLo, q.ValueHi
	}
	expected := 0
	for _, id := range targets {
		if id == b.api.ID() {
			continue
		}
		msg.Bitmap.Set(id)
		expected++
	}
	pq := &pendingQuery{expected: expected, replied: make([]bool, b.api.N())}
	b.pending = dense.Grow(b.pending, int(msg.ID))
	b.pending[msg.ID] = pq
	b.cfg.Trace.Emit(trace.Event{Kind: trace.QueryIssued, Node: uint16(b.api.ID()),
		Flag: uint8(query.PlanTuple), ID: msg.ID, Value: int64(expected)})
	// The base also scans its own store (readings it owns plus
	// washed-up data) at no message cost.
	b.scanLocal(msg, pq)
	b.relRegisterTuple(msg, pq, q)
	if expected == 0 {
		return targets
	}
	b.stats.RepliesExpected += int64(expected)
	b.queriesOut = dense.Grow(b.queriesOut, int(msg.ID))
	b.queriesOut[msg.ID] = msg
	b.qGos.Add(queryKey(msg.ID))
	// Kick off dissemination immediately rather than waiting for the
	// first Trickle fire.
	b.sendQuery(queryKey(msg.ID))
	b.qGos.Heard(queryKey(msg.ID)) // count our own broadcast
	return targets
}

// AnswerFromStore resolves a query entirely against the basestation's
// local store, costing zero network traffic — how the send-to-base
// (BASE) policy answers every query. It returns the match count. The
// query is recorded into the statistics profile exactly like
// IssueQuery, so BASE-policy runs feed index construction the same
// workload signal.
func (b *Base) AnswerFromStore(q workload.Query) int {
	b.stats.QueriesIssued++
	lg := loggedQuery{at: b.api.Now()}
	if !q.IsNodeQuery() {
		lg.lo, lg.hi, lg.ranged = q.ValueLo, q.ValueHi, true
	}
	b.queryLog = append(b.queryLog, lg)
	var wanted map[netsim.NodeID]bool
	if q.IsNodeQuery() {
		wanted = make(map[netsim.NodeID]bool, len(q.Nodes))
		for _, id := range q.Nodes {
			wanted[id] = true
		}
	}
	count := 0
	b.store.Scan(func(r storage.Reading) bool {
		if r.Time < int64(q.TimeLo) || r.Time > int64(q.TimeHi) {
			return true
		}
		if wanted == nil && (r.Value < q.ValueLo || r.Value > q.ValueHi) {
			return true
		}
		if wanted != nil && !wanted[netsim.NodeID(r.Producer)] {
			return true
		}
		count++
		return true
	})
	b.stats.TuplesReturned += int64(count)
	b.cfg.Trace.Emit(trace.Event{Kind: trace.QueryAnswered, Node: uint16(b.api.ID()),
		Value: int64(count)})
	return count
}

func (b *Base) scanLocal(q *QueryMsg, pq *pendingQuery) {
	count := 0
	b.store.Scan(func(r storage.Reading) bool {
		if r.Time < int64(q.TimeLo) || r.Time > int64(q.TimeHi) {
			return true
		}
		if q.wantsValues() && (r.Value < q.ValueLo || r.Value > q.ValueHi) {
			return true
		}
		count++
		pq.readings = append(pq.readings, r)
		return true
	})
	pq.total += count
	b.stats.TuplesReturned += int64(count)
}

// targets computes the node set a query must contact: the queried
// node list, or the owners of the value range under every index
// generation active in the query's time window (paper §5.5). Time
// ranges predating the first index — or overlapping a store-local
// generation — involve every node.
func (b *Base) targets(q workload.Query) []netsim.NodeID {
	if q.IsNodeQuery() {
		return q.Nodes
	}
	ids, _ := b.rangeTargets(q.ValueLo, q.ValueHi, q.TimeLo, q.TimeHi)
	return ids
}

// allNodes returns every non-base node ID.
func (b *Base) allNodes() []netsim.NodeID {
	n := b.api.N()
	out := make([]netsim.NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, netsim.NodeID(i))
	}
	return out
}

// rangeTargets resolves a value range over a time window to the owner
// node set, and reports whether index generations with non-local
// mappings cover the whole window. An uncovered window (pre-first-
// index time, or a store-local generation in range) targets every
// node.
func (b *Base) rangeTargets(vlo, vhi int, tlo, thi netsim.Time) ([]netsim.NodeID, bool) {
	if len(b.records) == 0 || tlo < b.records[0].at {
		// Data from before the first index is stored locally on every
		// node.
		return b.allNodes(), false
	}
	seen := make(map[netsim.NodeID]bool)
	var out []netsim.NodeID
	for i, rec := range b.records {
		end := netsim.Time(1 << 62)
		if i+1 < len(b.records) {
			end = b.records[i+1].at
		}
		// A small slack covers asynchronous adoption: data produced
		// just after a new generation may still be placed by the old
		// one on laggard nodes.
		start := rec.at
		if i+1 < len(b.records) {
			end += 30 * netsim.Second
		}
		if end < tlo || start > thi {
			continue
		}
		if rec.ix.Local {
			return b.allNodes(), false
		}
		for _, o := range rec.ix.Owners(vlo, vhi) {
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// QueryMax answers "maximum value in [t0,t1]" directly from stored
// summary messages, costing zero network traffic (paper §5.5's
// optimisation; the base never discards summaries). ok is false when
// no summary covers the window.
func (b *Base) QueryMax(t0, t1 netsim.Time) (int, bool) {
	if !b.cfg.SummaryShortcut {
		return 0, false
	}
	best, found := 0, false
	for _, s := range b.history {
		if s.SentAt < t0 || s.SentAt > t1 {
			continue
		}
		if !found || s.Max > best {
			best, found = s.Max, true
		}
	}
	if found {
		b.stats.SummaryAnswered++
	}
	return best, found
}

// sendChunk is the mapping-Trickle transmit callback. Wall time
// attributes to the chunk-dissemination phase.
func (b *Base) sendChunk(key trickle.Key) {
	prev := b.cfg.Prof.Enter(prof.PhaseChunk)
	b.sendChunkNow(key)
	b.cfg.Prof.Exit(prev)
}

func (b *Base) sendChunkNow(key trickle.Key) {
	c, ok := b.chunks[key]
	if !ok {
		return
	}
	m := &MappingMsg{Chunk: c}
	b.cfg.Trace.Emit(trace.Event{Kind: trace.ChunkSent, Node: uint16(b.api.ID()),
		ID: c.IndexID, Value: int64(c.Num)})
	b.api.Broadcast(&netsim.Packet{
		Class:        metrics.Mapping,
		Origin:       b.api.ID(),
		OriginParent: netsim.NoNode,
		Size:         mappingSize(m),
		Payload:      m,
	})
}

// sendQuery is the query-Trickle transmit callback; tuple and
// aggregate queries share the ID space, so the key resolves in
// exactly one of the two outbound tables.
func (b *Base) sendQuery(key trickle.Key) {
	if qid := int(key); qid < len(b.queriesOut) && b.queriesOut[qid] != nil {
		q := b.queriesOut[qid]
		b.api.Broadcast(&netsim.Packet{
			Class:        metrics.Query,
			Origin:       b.api.ID(),
			OriginParent: netsim.NoNode,
			Size:         querySize(q),
			Payload:      q,
		})
		return
	}
	b.sendAggQuery(key)
}
