package core

import (
	"math/bits"

	"scoop/internal/dense"
	"scoop/internal/histogram"
	"scoop/internal/index"
	"scoop/internal/netsim"
	"scoop/internal/query"
	"scoop/internal/routing"
	"scoop/internal/storage"
)

// SummaryMsg is the periodic statistics report every node sends up the
// routing tree (paper §5.2): a coarse histogram over recent readings,
// min/max/sum of those readings, the node's production rate, its
// best-connected neighbors, and the ID of the last complete storage
// index it holds.
type SummaryMsg struct {
	Node          netsim.NodeID
	Hist          histogram.Histogram
	Min, Max, Sum int
	Rate          float64 // readings per second over the recent window
	Neighbors     []routing.NeighborInfo
	LastIndexID   uint16
	SentAt        netsim.Time
	Hops          uint8 // forwarding TTL
}

// summarySize approximates the on-air bytes of a summary message:
// histogram bins (2 B each), min/max/sum, rate, per-neighbor 3 B,
// plus the Scoop header.
func summarySize(m *SummaryMsg) int {
	return 14 + 2*len(m.Hist.Counts) + 3*len(m.Neighbors)
}

// DataMsg carries batched readings toward their owner (paper §5.4).
// Owner and SID may be rewritten in flight by nodes holding a newer
// storage index (routing rule 1). Hops is a TTL against transient
// routing loops.
type DataMsg struct {
	Readings []storage.Reading
	Owner    netsim.NodeID
	SID      uint16
	Hops     uint8
}

func dataSize(m *DataMsg) int { return 10 + 4*len(m.Readings) }

// MappingMsg is one storage-index chunk under Trickle dissemination
// (paper §5.3).
type MappingMsg struct {
	Chunk index.Chunk
}

func mappingSize(m *MappingMsg) int { return 12 + 5*len(m.Chunk.Entries) }

// QueryMsg is a query packet (paper §5.5): a bitmap of nodes expected
// to answer, plus the value and time ranges of interest. A node-list
// query has ValueLo > ValueHi (no value constraint).
type QueryMsg struct {
	ID               uint16
	Bitmap           Bitmap
	ValueLo, ValueHi int
	TimeLo, TimeHi   netsim.Time
}

// wantsValues reports whether the query constrains values.
func (q *QueryMsg) wantsValues() bool { return q.ValueLo <= q.ValueHi }

func querySize(q *QueryMsg) int { return q.Bitmap.Bytes() + 14 }

// ReplyMsg carries a node's matching tuples back to the basestation.
// Count is the total number of matches; Readings is capped at
// ReplyMaxReadings (packet size), as a mote reply would be.
type ReplyMsg struct {
	QueryID  uint16
	Node     netsim.NodeID
	Count    int
	Readings []storage.Reading
	Hops     uint8 // forwarding TTL
}

func replySize(m *ReplyMsg) int { return 8 + 4*len(m.Readings) }

// AggQueryMsg is an aggregate query packet: like QueryMsg it carries
// the bitmap of nodes expected to answer and the value/time ranges of
// interest, plus the aggregate operator. Targeted nodes reply with
// partial-aggregate state instead of tuples; intermediate nodes
// combine partials on the way up (TAG-style in-network aggregation).
type AggQueryMsg struct {
	ID               uint16
	Bitmap           Bitmap
	Op               query.Op
	ValueLo, ValueHi int
	TimeLo, TimeHi   netsim.Time
	// Track asks targeted nodes to carry a contributor bitmap in their
	// partials so the base can tell which owners a combined partial
	// folds in — the reliability layer's retry targeting needs it. Off
	// (the pre-§19 wire format) unless Config.QueryDeadline > 0.
	Track bool
}

// aggQuerySize mirrors querySize plus one operator byte; the Track
// flag costs one more byte only when set.
func aggQuerySize(q *AggQueryMsg) int {
	n := q.Bitmap.Bytes() + 14 + 1
	if q.Track {
		n++
	}
	return n
}

// AggReplyMsg carries mergeable partial-aggregate state one hop
// toward the basestation. Node is the sender of this (possibly
// combined) partial; Seq distinguishes successive flushes by the same
// sender so retransmitted duplicates are dropped without double
// counting; Contribs counts the distinct targeted nodes folded into
// Part; Hops is the largest hop count any merged partial has
// travelled, a TTL against transient routing loops.
type AggReplyMsg struct {
	QueryID  uint16
	Node     netsim.NodeID
	Seq      uint8
	Contribs uint16
	Part     query.Partial
	Hops     uint8
	// Nodes is the contributor bitmap: which targeted nodes this
	// partial folds in. Carried only for Track queries; empty (and
	// free on the air) otherwise.
	Nodes Bitmap
}

// aggReplySize is a fixed 22 bytes — ids/seq/contribs header plus the
// 14-byte partial (count, sum, min, max), a fraction of a tuple reply,
// which is the whole point — plus the contributor bitmap when the
// query asked for tracking.
func aggReplySize(m *AggReplyMsg) int {
	n := 8 + 14
	if !m.Nodes.Empty() {
		n += m.Nodes.Bytes()
	}
	return n
}

// Bitmap is the node bitmap in query packets. The paper's fixed
// 128-bit field "puts an upper bound to the size of the sensor
// network; 128 nodes in our current implementation" (paper §5.5); the
// scale tier (DESIGN.md §12) replaces it with a variable-length bitmap
// whose on-air size (Bytes) keeps the paper's 16-byte floor — so
// query packets at N ≤ 128 are byte-for-byte the paper's — and grows
// with the highest targeted node beyond that.
type Bitmap struct {
	w []uint64
}

// Set marks node id, growing the bitmap as needed.
func (b *Bitmap) Set(id netsim.NodeID) {
	wi := int(id) >> 6
	b.w = dense.Grow(b.w, wi)
	b.w[wi] |= 1 << (uint(id) & 63)
}

// Has reports whether node id is marked.
func (b *Bitmap) Has(id netsim.NodeID) bool {
	wi := int(id) >> 6
	if wi >= len(b.w) {
		return false
	}
	return b.w[wi]&(1<<(uint(id)&63)) != 0
}

// Words exposes the raw bitmap words (64 node IDs per word, ascending)
// so hot paths can iterate marked nodes without allocating.
func (b *Bitmap) Words() []uint64 { return b.w }

// Bytes returns the field's on-air size: the paper's 16-byte bitmap
// for networks of up to 128 nodes, one byte per 8 nodes beyond that
// (sized by the highest targeted node, as a wire encoding would be).
func (b *Bitmap) Bytes() int {
	for wi := len(b.w) - 1; wi >= 0; wi-- {
		if w := b.w[wi]; w != 0 {
			hi := wi*64 + 63 - bits.LeadingZeros64(w)
			if n := hi/8 + 1; n > 16 {
				return n
			}
			return 16
		}
	}
	return 16
}

// Count returns the number of marked nodes.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no node is marked.
func (b *Bitmap) Empty() bool {
	for _, w := range b.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Or folds other's marked nodes into b.
func (b *Bitmap) Or(other *Bitmap) {
	if len(other.w) > 0 {
		b.w = dense.Grow(b.w, len(other.w)-1)
	}
	for i, w := range other.w {
		b.w[i] |= w
	}
}

// Intersects reports whether b and other share any marked node.
func (b *Bitmap) Intersects(other *Bitmap) bool {
	n := len(b.w)
	if len(other.w) < n {
		n = len(other.w)
	}
	for i := 0; i < n; i++ {
		if b.w[i]&other.w[i] != 0 {
			return true
		}
	}
	return false
}

// AndNot returns the nodes marked in b but not in other — the silent
// set the reliability layer re-asks.
func (b *Bitmap) AndNot(other *Bitmap) Bitmap {
	var out Bitmap
	for i, w := range b.w {
		if i < len(other.w) {
			w &^= other.w[i]
		}
		if w != 0 {
			out.w = dense.Grow(out.w, i)
			out.w[i] = w
		}
	}
	return out
}

// IDs returns all marked nodes in ascending order.
func (b *Bitmap) IDs() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, b.Count())
	for wi, w := range b.w {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, netsim.NodeID(wi*64+bit))
			w &= w - 1
		}
	}
	return out
}
