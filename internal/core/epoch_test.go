package core

import (
	"testing"

	"scoop/internal/netsim"
)

// RemapLimit 1 builds exactly one index and then freezes: no further
// remap timer fires, however long the run.
func TestRemapLimitFreezesIndex(t *testing.T) {
	cfg := testConfig()
	cfg.RemapLimit = 1
	tn := newTestNet(t, chainTopo(4, 0.95), cfg, nil, 41)
	tn.sim.Run(20 * netsim.Minute)
	if tn.stats.IndexesBuilt != 1 {
		t.Fatalf("indexes built = %d, want exactly 1", tn.stats.IndexesBuilt)
	}
	if tn.base.CurrentIndex() == nil {
		t.Fatal("the single allowed remap never produced an index")
	}

	// Unlimited control: the same run keeps rebuilding.
	cfg.RemapLimit = 0
	tn2 := newTestNet(t, chainTopo(4, 0.95), cfg, nil, 41)
	tn2.sim.Run(20 * netsim.Minute)
	if tn2.stats.IndexesBuilt <= 1 {
		t.Fatalf("unlimited remaps built %d indexes, want several", tn2.stats.IndexesBuilt)
	}
}

// With StatStaleAfter set, a node that stops reporting ages out of
// index construction: the rebuilt index assigns it no values.
func TestStaleSummariesAgeOutOfIndex(t *testing.T) {
	cfg := testConfig()
	cfg.StatStaleAfter = 3 * cfg.SummaryInterval
	tn := newTestNet(t, meshTopo(4, 0.95), cfg, nil, 42)
	tn.sim.Run(8 * netsim.Minute)
	ix := tn.base.CurrentIndex()
	if ix == nil {
		t.Fatal("no index built")
	}
	owned := func() bool {
		// Node 3 produces value 3 (idSampler), so a fresh index
		// assigns it at least its own value.
		o, ok := ix.Owner(3)
		return ok && o == 3
	}
	if !owned() {
		t.Fatalf("live node 3 does not own its value in %v", ix)
	}

	// Kill node 3; after its statistics exceed the staleness horizon,
	// the next rebuild must stop assigning it anything.
	tn.net.Kill(3)
	tn.sim.Run(tn.sim.Now() + 6*netsim.Minute)
	ix = tn.base.CurrentIndex()
	for v := 0; v <= 20; v++ {
		if o, ok := ix.Owner(v); ok && o == 3 {
			t.Fatalf("dead node 3 still owns value %d after staleness horizon", v)
		}
	}

	// Control: without the staleness horizon the dead node keeps its
	// last-known statistics and can keep winning ownership.
	cfg.StatStaleAfter = 0
	tn2 := newTestNet(t, meshTopo(4, 0.95), cfg, nil, 42)
	tn2.sim.Run(8 * netsim.Minute)
	tn2.net.Kill(3)
	tn2.sim.Run(tn2.sim.Now() + 6*netsim.Minute)
	ix2 := tn2.base.CurrentIndex()
	if o, ok := ix2.Owner(3); !ok || o != 3 {
		t.Fatalf("without staleness, dead node 3 should retain value 3 (got %v, %v)", o, ok)
	}
}

// A killed-then-restarted node rejoins the protocol: it re-forms a
// route, resumes sampling, and its summaries reach the base again.
func TestRestartedNodeRejoins(t *testing.T) {
	cfg := testConfig()
	tn := newTestNet(t, meshTopo(4, 0.95), cfg, nil, 43)
	tn.sim.Run(8 * netsim.Minute)
	produced := tn.stats.Produced
	if produced == 0 {
		t.Fatal("nothing produced before the kill")
	}

	tn.net.Kill(3)
	tn.sim.Run(tn.sim.Now() + 3*netsim.Minute)
	tn.net.Restart(3)
	// A reboot loses RAM: the node must come back index-less and
	// re-learn the current generation from Trickle redissemination.
	if tn.nodes[3].CurrentIndex() != nil {
		t.Fatal("restarted node kept its pre-crash index")
	}
	tn.sim.Run(tn.sim.Now() + 5*netsim.Minute)

	if tn.nodes[3].CurrentIndex() == nil {
		t.Fatal("restarted node never re-assembled an index")
	}
	if !tn.nodes[3].Tree().HasRoute() {
		t.Fatal("restarted node never re-formed a route")
	}
	if tn.stats.Produced <= produced {
		t.Fatal("restarted node is not sampling")
	}
}
