package exp

import (
	"testing"
	"time"

	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// TestScaleTier1000 is the scale-tier acceptance run: a full
// 1000-node, 40-virtual-minute SCOOP experiment on a multi-hop grid,
// executed under the invariant checker (TestMain force-enables it).
// The wall-clock budget is asserted loosely — the CI target is ≤ 60 s
// and the hot-path overhaul runs it in well under 15 s on 2024
// hardware, so a 5-minute failure means an order-of-magnitude
// regression, not noise.
func TestScaleTier1000(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node full-length run")
	}
	cfg := Default()
	cfg.Policy = policy.Scoop
	cfg.N = 1000
	cfg.Topology = "grid"
	cfg.Duration = 40 * netsim.Minute
	cfg.Warmup = 10 * netsim.Minute
	cfg.Trials = 1
	cfg.Seed = 1
	start := time.Now()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	t.Logf("N=1000 40min: wall=%.1fs (%.0f sim-s/wall-s), msgs=%.0f, delivery=%.1f%%",
		wall.Seconds(), 2400/wall.Seconds(), res.Breakdown.Total(),
		100*res.Stats.DataSuccessRate())
	if wall > 5*time.Minute {
		t.Fatalf("1000-node run took %.0fs — order-of-magnitude hot-path regression", wall.Seconds())
	}
	if res.Stats.Produced == 0 || res.Breakdown.Total() == 0 {
		t.Fatal("scale run produced no traffic")
	}
	// The funnel toward the basestation saturates at this scale;
	// delivery is expected to degrade, but the network must still
	// store a non-trivial share end to end.
	if got := res.Stats.DataSuccessRate(); got < 0.05 {
		t.Fatalf("delivery collapsed to %.1f%%", 100*got)
	}
}

// TestScaleTier250 keeps a mid-tier point in the -short suite so the
// lifted node bound is exercised on every test run, not only in CI's
// full pass — and runs it on both engines, so the serial/4-region
// identity is re-proven at a scale the quick differential scenarios
// do not reach.
func TestScaleTier250(t *testing.T) {
	cfg := Default()
	cfg.Policy = policy.Scoop
	cfg.N = 250
	cfg.Topology = "grid"
	cfg.Duration = 12 * netsim.Minute
	cfg.Warmup = 4 * netsim.Minute
	cfg.Trials = 1
	cfg.Seed = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StoredUnique == 0 {
		t.Fatal("no readings stored at 250 nodes")
	}
	cfg.Regions = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sref, spar := statsFields(&res.Stats), statsFields(&par.Stats)
	for name, want := range sref {
		if got := spar[name]; got != want {
			t.Errorf("RunStats.%s = %d on 4 regions, serial %d", name, got, want)
		}
	}
	if res.Breakdown != par.Breakdown {
		t.Errorf("breakdown %+v on 4 regions, serial %+v", par.Breakdown, res.Breakdown)
	}
}
