package exp

import (
	"testing"

	"scoop/internal/netsim"
	"scoop/internal/policy"
	"scoop/internal/query"
)

// quickAgg returns a shortened all-aggregate configuration.
func quickAgg() Config {
	cfg := Default()
	cfg.N = 16
	cfg.AggRatio = 1
	Quick.apply(&cfg)
	if testing.Short() {
		cfg.Duration = 12 * netsim.Minute
		cfg.Warmup = 4 * netsim.Minute
	}
	return cfg
}

// End-to-end: an all-aggregate workload runs through the planner,
// answers arrive, and answer errors stay moderate.
func TestAggWorkloadEndToEnd(t *testing.T) {
	res, err := Run(quickAgg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Issued == 0 {
		t.Fatal("no aggregate queries issued")
	}
	if res.Agg.Answered < res.Agg.Issued/2 {
		t.Fatalf("only %d of %d aggregates answered", res.Agg.Answered, res.Agg.Issued)
	}
	if res.Stats.AggQueriesIssued == 0 {
		t.Fatal("core stats saw no aggregate queries")
	}
	// The auto planner must exercise more than one physical plan over
	// a 1-5%-width random-range workload (narrow ranges tuple, wider
	// or uncovered ones aggregate/flood/summary).
	plans := 0
	for _, n := range []int{res.Agg.PlanSummary, res.Agg.PlanAgg,
		res.Agg.PlanTuple, res.Agg.PlanFlood} {
		if n > 0 {
			plans++
		}
	}
	if plans < 2 {
		t.Fatalf("planner used %d plan kinds: %+v", plans, res.Agg)
	}
	if res.Agg.MeanErr() > 1.0 {
		t.Fatalf("mean answer error %.2f implausibly large", res.Agg.MeanErr())
	}
}

// The exactness trade between the forced plans on identical seeds:
// in-network combining answers wide aggregates exactly, tuple return
// accumulates truncation/loss error, and combining must not pay more
// than a modest byte premium for it under the lossy radio (the big
// byte wins live in the long-window few-owner regime, pinned by
// core's TestAggAvgInNetworkBeatsTupleBytes).
func TestAggPlanExactnessTrade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full simulations")
	}
	run := func(force query.Plan) Result {
		cfg := quickAgg()
		cfg.QueryWidth = 0.5 // wide aggregates: large result sets
		cfg.AggOps = []query.Op{query.OpCount, query.OpSum, query.OpAvg,
			query.OpMin, query.OpMax}
		cfg.AggForce = force
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	agg := run(query.PlanAgg)
	tup := run(query.PlanTuple)
	if agg.Agg.Answered == 0 || tup.Agg.Answered == 0 {
		t.Fatalf("unanswered: agg=%d tuple=%d", agg.Agg.Answered, tup.Agg.Answered)
	}
	if agg.Agg.ErrSum > tup.Agg.ErrSum {
		t.Fatalf("in-network answers less exact than tuple return: %v vs %v",
			agg.Agg.ErrSum, tup.Agg.ErrSum)
	}
	aggReply := agg.ReplyBytes + agg.AggReplyBytes
	tupReply := tup.ReplyBytes + tup.AggReplyBytes
	if aggReply > 2*tupReply {
		t.Fatalf("combining paid >2x reply bytes: agg %.0f vs tuple %.0f", aggReply, tupReply)
	}
}

// The BASE policy keeps its zero-cost store answers even under an
// aggregate mix (aggregates are meaningless there), and node-list
// workloads ignore the ratio.
func TestAggRatioIgnoredWhereMeaningless(t *testing.T) {
	cfg := quickAgg()
	cfg.Policy = policy.Base
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Issued != 0 || res.Breakdown.Query != 0 {
		t.Fatalf("BASE policy issued aggregates: %+v", res.Agg)
	}
	cfg = quickAgg()
	cfg.NodePct = 0.2
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Issued != 0 {
		t.Fatal("node-list workload issued aggregates")
	}
}

func TestValidateRejectsBadAggConfig(t *testing.T) {
	for _, mod := range []func(*Config){
		func(c *Config) { c.AggRatio = -0.1 },
		func(c *Config) { c.AggRatio = 1.5 },
		func(c *Config) { c.AggErrBudget = -1 },
		func(c *Config) { c.AggForce = query.PlanFlood + 1 },
	} {
		cfg := Default()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config accepted: %+v", cfg)
		}
	}
}
