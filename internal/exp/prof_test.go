package exp

import (
	"reflect"
	"testing"

	"scoop/internal/policy"
	"scoop/internal/prof"
)

// profQuick returns a small single-trial config for profiler tests.
func profQuick() Config {
	cfg := Default()
	cfg.Policy = policy.Scoop
	cfg.Source = "real"
	cfg.N = 20
	Quick.apply(&cfg)
	cfg.Trials = 1
	return cfg
}

// Profiling is observation-only: every simulation outcome must be
// identical with it on or off.
func TestProfileDoesNotChangeOutcome(t *testing.T) {
	off := profQuick()
	on := profQuick()
	on.Profile = true

	ro, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ro.Breakdown, rp.Breakdown) {
		t.Fatalf("breakdown diverged:\noff %+v\non  %+v", ro.Breakdown, rp.Breakdown)
	}
	// ReindexWallNanos is a wall-clock measurement and differs across
	// any two runs; everything else must match exactly.
	so, sp := ro.Stats, rp.Stats
	so.ReindexWallNanos, sp.ReindexWallNanos = 0, 0
	if !reflect.DeepEqual(so, sp) {
		t.Fatalf("run stats diverged:\noff %+v\non  %+v", so, sp)
	}
	if ro.RootSent != rp.RootSent || ro.RootRecv != rp.RootRecv {
		t.Fatalf("root traffic diverged: off %v/%v, on %v/%v",
			ro.RootSent, ro.RootRecv, rp.RootSent, rp.RootRecv)
	}

	if ro.PerTrial[0].Prof != nil {
		t.Fatal("unprofiled trial carries a snapshot")
	}
	snap := rp.PerTrial[0].Prof
	if snap == nil {
		t.Fatal("profiled trial missing its snapshot")
	}
	if snap.Events == 0 || snap.LoopNs <= 0 {
		t.Fatalf("empty snapshot: events=%d loop=%dns", snap.Events, snap.LoopNs)
	}
	if cov := snap.Coverage(); cov < prof.MinCoverage {
		t.Fatalf("coverage %.3f below %.2f", cov, prof.MinCoverage)
	}
	// A real SCOOP run exercises radio delivery, MAC steps, node and
	// base receive paths.
	for _, ph := range []prof.Phase{prof.PhaseRadio, prof.PhaseMAC, prof.PhaseNodeRecv, prof.PhaseBaseRecv} {
		if snap.Count[ph] == 0 {
			t.Fatalf("phase %s never attributed: counts %v", ph, snap.Count)
		}
	}
}
