package exp

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"scoop/internal/core"
	"scoop/internal/dynamics"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/trace"
)

// This file is the cross-engine differential harness for the parallel
// region-partitioned event loop (DESIGN.md §18). The serial simulator
// (Regions ≤ 1) is the specification; the conservatively synchronised
// K-region engine is an implementation that must be *indistinguishable*
// from it. Every scenario class runs at K ∈ {1,2,4,8} under
// GOMAXPROCS ∈ {1,8}, and the harness asserts that three independent
// artifacts are identical:
//
//   - every exported deterministic counter of core.RunStats
//     (field-by-field via reflection, so a new counter is compared the
//     day it is added — ReindexWallNanos alone is skipped, as the one
//     wall-clock field);
//   - the per-class transmission breakdown and root-load figures;
//   - the flight-recorder JSONL stream, byte for byte.
//
// Invariant checking stays on, so conservation violations fail the run
// itself, not just the comparison.

// diffArtifacts is everything one run exposes that the differential
// harness compares.
type diffArtifacts struct {
	stats     map[string]int64
	breakdown metrics.Breakdown
	rootSent  float64
	rootRecv  float64
	agg       AggEval
	trace     []byte
}

// statsFields flattens the exported deterministic int64 counters of a
// RunStats via reflection. ReindexWallNanos is excluded: it is the one
// machine-dependent field (wall-clock observability, never part of a
// committed artifact).
func statsFields(s *core.RunStats) map[string]int64 {
	out := map[string]int64{}
	v := reflect.ValueOf(s).Elem()
	tp := v.Type()
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Int64 || f.Name == "ReindexWallNanos" {
			continue
		}
		out[f.Name] = v.Field(i).Int()
	}
	return out
}

// runDifferential executes one cell with the flight recorder streaming
// trial 0 to a buffer and returns the comparison artifacts.
func runDifferential(t *testing.T, cfg Config) diffArtifacts {
	t.Helper()
	var buf bytes.Buffer
	cfg.Trace = true
	cfg.TraceSinks = func(trial int) []trace.Sink {
		if trial != 0 {
			return nil
		}
		return []trace.Sink{trace.NewJSONL(&buf)}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return diffArtifacts{
		stats:     statsFields(&res.Stats),
		breakdown: res.Breakdown,
		rootSent:  res.RootSent,
		rootRecv:  res.RootRecv,
		agg:       res.Agg,
		trace:     buf.Bytes(),
	}
}

// compareArtifacts reports every way got diverges from want.
func compareArtifacts(t *testing.T, label string, want, got diffArtifacts) {
	t.Helper()
	names := make([]string, 0, len(want.stats))
	for name := range want.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if want.stats[name] != got.stats[name] {
			t.Errorf("%s: RunStats.%s = %d, serial reference %d", label, name, got.stats[name], want.stats[name])
		}
	}
	if want.breakdown != got.breakdown {
		t.Errorf("%s: breakdown %+v, serial reference %+v", label, got.breakdown, want.breakdown)
	}
	if want.rootSent != got.rootSent || want.rootRecv != got.rootRecv {
		t.Errorf("%s: root load (%v,%v), serial reference (%v,%v)",
			label, got.rootSent, got.rootRecv, want.rootSent, want.rootRecv)
	}
	if want.agg != got.agg {
		t.Errorf("%s: agg eval %+v, serial reference %+v", label, got.agg, want.agg)
	}
	if !bytes.Equal(want.trace, got.trace) {
		a := bytes.Split(want.trace, []byte("\n"))
		b := bytes.Split(got.trace, []byte("\n"))
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(a[i], b[i]) {
				t.Errorf("%s: trace diverges at line %d (%d vs %d lines):\nref: %s\ngot: %s",
					label, i, len(a), len(b), a[i], b[i])
				return
			}
		}
		t.Errorf("%s: trace line counts differ: ref %d, got %d", label, len(a), len(b))
	}
}

// differentialScenarios enumerates one cell per scenario class the
// repo's experiments exercise: churn (node reboot/rejoin), data drift
// with reindexing, a pure aggregate-query mix, a larger scale-tier
// grid, and the full fault campaign with the reliability layer armed.
// Each runs a single trial under the invariant checker.
func differentialScenarios() []struct {
	name string
	cfg  Config
} {
	base := func() Config {
		cfg := Default()
		cfg.N = 20
		cfg.Duration = 6 * netsim.Minute
		cfg.Warmup = 2 * netsim.Minute
		cfg.Trials = 1
		cfg.CheckInvariants = true
		return cfg
	}
	churn := base()
	{
		s := dynamics.Standard(churn.N, churn.Warmup, churn.Duration, 0.25, 0, 7)
		churn.Dynamics = &s
		churn.ReindexInterval = 2 * netsim.Minute
	}
	drift := base()
	{
		s := dynamics.Standard(drift.N, drift.Warmup, drift.Duration, 0, 0.5, 11)
		drift.Dynamics = &s
		drift.ReindexInterval = 2 * netsim.Minute
	}
	agg := base()
	agg.AggRatio = 1
	agg.QueryWidth = 0.4
	agg.AggErrBudget = 0.25
	scale := base()
	scale.N = 100
	scale.Topology = "grid"
	scale.Duration = 5 * netsim.Minute
	scale.Seed = 3
	faults := base()
	faults.Faults = "campaign"
	faults.LinkLoss = 0.3
	faults.QueryDeadline = 12 * netsim.Second
	faults.QueryRetryMax = 3
	faults.AggRatio = 0.5
	faults.QueryWidth = 0.4
	faults.AggErrBudget = 0.25
	return []struct {
		name string
		cfg  Config
	}{
		{"churn", churn},
		{"drift", drift},
		{"agg", agg},
		{"scale", scale},
		{"faults", faults},
	}
}

// TestDifferentialRegions is the tentpole proof: for every scenario
// class, every region count K ∈ {1,2,4,8} under both GOMAXPROCS 1 and
// 8 reproduces the serial engine's artifacts exactly. GOMAXPROCS is
// process-global state, so the matrix runs sequentially.
func TestDifferentialRegions(t *testing.T) {
	kset := []int{1, 2, 4, 8}
	procs := []int{1, 8}
	if testing.Short() {
		kset = []int{1, 4}
		procs = []int{8}
	}
	for _, sc := range differentialScenarios() {
		sc := sc
		if testing.Short() && sc.name == "scale" {
			continue
		}
		t.Run(sc.name, func(t *testing.T) {
			ref := runDifferential(t, sc.cfg)
			if len(ref.trace) == 0 {
				t.Fatal("serial reference produced no trace events")
			}
			for _, p := range procs {
				for _, k := range kset {
					cfg := sc.cfg
					cfg.Regions = k
					prev := runtime.GOMAXPROCS(p)
					got := runDifferential(t, cfg)
					runtime.GOMAXPROCS(prev)
					compareArtifacts(t, fmt.Sprintf("K=%d GOMAXPROCS=%d", k, p), ref, got)
				}
			}
		})
	}
}
