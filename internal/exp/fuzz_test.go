package exp

import (
	"testing"

	"scoop/internal/dynamics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// TestSeedFuzz is a seed-randomised cross-engine differential fuzz:
// short churn, drift and aggregate-mix runs across many seeds, each
// executed under the invariant checker on BOTH engines — the serial
// event loop and the 4-region parallel one — with every exported
// deterministic RunStats counter compared field-by-field. It exists to
// catch two bug classes at once: state-machine paths that only a
// particular interleaving of churn, retransmission and reindexing hits
// (any panic or conservation violation fails the specific (config,
// seed) pair by name), and parallel-engine divergences that the
// hand-picked differential scenarios happen not to reach.
func TestSeedFuzz(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	scenarios := []struct {
		name string
		mut  func(cfg *Config, seed int64)
	}{
		{"churn", func(cfg *Config, seed int64) {
			script := dynamics.Standard(cfg.N, cfg.Warmup, cfg.Duration, 0.25, 0, seed+3)
			cfg.Dynamics = &script
			cfg.ReindexInterval = 2 * netsim.Minute
		}},
		{"drift", func(cfg *Config, seed int64) {
			script := dynamics.Standard(cfg.N, cfg.Warmup, cfg.Duration, 0, 0.5, seed+5)
			cfg.Dynamics = &script
			cfg.ReindexInterval = 2 * netsim.Minute
		}},
		{"agg", func(cfg *Config, seed int64) {
			cfg.AggRatio = 1
			cfg.QueryWidth = 0.4
			cfg.AggErrBudget = 0.25
		}},
		{"faults", func(cfg *Config, seed int64) {
			cfg.Faults = "campaign"
			cfg.LinkLoss = 0.3
			cfg.QueryDeadline = 12 * netsim.Second
			cfg.QueryRetryMax = 3
			cfg.AggRatio = 0.5
			cfg.QueryWidth = 0.4
			cfg.AggErrBudget = 0.25
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < seeds; i++ {
				seed := int64(1000 + 7919*i)
				cfg := Default()
				cfg.Policy = policy.Scoop
				cfg.N = 16
				cfg.Duration = 10 * netsim.Minute
				cfg.Warmup = 3 * netsim.Minute
				cfg.Trials = 1
				cfg.Seed = seed
				cfg.CheckInvariants = true
				sc.mut(&cfg, seed)
				serial, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s seed %d: %v", sc.name, seed, err)
				}
				cfg.Regions = 4
				par, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s seed %d (4 regions): %v", sc.name, seed, err)
				}
				sref, spar := statsFields(&serial.Stats), statsFields(&par.Stats)
				for name, want := range sref {
					if got := spar[name]; got != want {
						t.Errorf("%s seed %d: RunStats.%s = %d on 4 regions, serial %d",
							sc.name, seed, name, got, want)
					}
				}
				if serial.Breakdown != par.Breakdown {
					t.Errorf("%s seed %d: breakdown %+v on 4 regions, serial %+v",
						sc.name, seed, par.Breakdown, serial.Breakdown)
				}
			}
		})
	}
}

// TestInvariantCheckerAcrossPolicies runs every simulated policy once
// under the checker: the conservation bookkeeping has to understand
// preloaded-index comparators, not just Scoop.
func TestInvariantCheckerAcrossPolicies(t *testing.T) {
	for _, p := range []policy.Name{policy.Scoop, policy.Local, policy.Base, policy.HashSim} {
		cfg := quick(p, "real")
		cfg.CheckInvariants = true
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}
