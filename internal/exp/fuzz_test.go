package exp

import (
	"testing"

	"scoop/internal/dynamics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// TestSeedFuzz is a seed-randomised smoke test: short churn, drift and
// aggregate-mix runs across many seeds, each executed under the
// invariant checker. It exists to catch the class of state-machine bug
// the reboot-state fixes of the dynamics PR were — paths that only a
// particular interleaving of churn, retransmission and reindexing
// hits — without waiting for a full-scale sweep to wander into them.
// Any panic or conservation violation fails the specific (config,
// seed) pair by name.
func TestSeedFuzz(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	scenarios := []struct {
		name string
		mut  func(cfg *Config, seed int64)
	}{
		{"churn", func(cfg *Config, seed int64) {
			script := dynamics.Standard(cfg.N, cfg.Warmup, cfg.Duration, 0.25, 0, seed+3)
			cfg.Dynamics = &script
			cfg.ReindexInterval = 2 * netsim.Minute
		}},
		{"drift", func(cfg *Config, seed int64) {
			script := dynamics.Standard(cfg.N, cfg.Warmup, cfg.Duration, 0, 0.5, seed+5)
			cfg.Dynamics = &script
			cfg.ReindexInterval = 2 * netsim.Minute
		}},
		{"agg", func(cfg *Config, seed int64) {
			cfg.AggRatio = 1
			cfg.QueryWidth = 0.4
			cfg.AggErrBudget = 0.25
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < seeds; i++ {
				seed := int64(1000 + 7919*i)
				cfg := Default()
				cfg.Policy = policy.Scoop
				cfg.N = 16
				cfg.Duration = 10 * netsim.Minute
				cfg.Warmup = 3 * netsim.Minute
				cfg.Trials = 1
				cfg.Seed = seed
				cfg.CheckInvariants = true
				sc.mut(&cfg, seed)
				if _, err := Run(cfg); err != nil {
					t.Fatalf("%s seed %d: %v", sc.name, seed, err)
				}
			}
		})
	}
}

// TestInvariantCheckerAcrossPolicies runs every simulated policy once
// under the checker: the conservation bookkeeping has to understand
// preloaded-index comparators, not just Scoop.
func TestInvariantCheckerAcrossPolicies(t *testing.T) {
	for _, p := range []policy.Name{policy.Scoop, policy.Local, policy.Base, policy.HashSim} {
		cfg := quick(p, "real")
		cfg.CheckInvariants = true
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}
