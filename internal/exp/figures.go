package exp

import (
	"fmt"
	"strings"
	"time"

	"scoop/internal/dynamics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
	"scoop/internal/query"
)

// Table is one reproduced figure/table: a title, column header and
// formatted rows, printed the way the paper reports its results.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// Scale shrinks experiments for fast test runs. Full reproduces the
// paper's parameters; Quick runs one short trial per cell.
type Scale int

// Experiment scales.
const (
	Quick Scale = iota
	Full
)

func (s Scale) apply(cfg *Config) {
	if s == Quick {
		cfg.Trials = 1
		cfg.Duration = 22 * netsim.Minute
		cfg.Warmup = 6 * netsim.Minute
	}
}

func breakdownRow(label string, r Result) []string {
	b := r.Breakdown
	return []string{
		label,
		fmt.Sprintf("%.0f", b.Total()),
		fmt.Sprintf("%.0f", b.Data),
		fmt.Sprintf("%.0f", b.Summary),
		fmt.Sprintf("%.0f", b.Mapping),
		fmt.Sprintf("%.0f", b.Query),
		fmt.Sprintf("%.0f", b.Reply),
	}
}

var breakdownHeader = []string{"case", "total", "data", "summary", "mapping", "query", "reply"}

// Figure3Left reproduces the paper's Figure 3 (left): per-policy
// message breakdowns on the testbed topology — scoop/unique,
// scoop/gaussian, local/gaussian, base/gaussian.
func Figure3Left(scale Scale, seed int64) (Table, []Result) {
	cells := []struct {
		policy policy.Name
		source string
	}{
		{policy.Scoop, "unique"},
		{policy.Scoop, "gaussian"},
		{policy.Local, "gaussian"},
		{policy.Base, "gaussian"},
	}
	t := Table{
		Title:  "Figure 3 (left): testbed message breakdown by storage method/data source",
		Header: breakdownHeader,
	}
	var results []Result
	for _, c := range cells {
		cfg := Default()
		cfg.Topology = "testbed"
		cfg.Policy = c.policy
		cfg.Source = c.source
		cfg.Seed = seed
		scale.apply(&cfg)
		r := MustRun(cfg)
		results = append(results, r)
		t.Rows = append(t.Rows, breakdownRow(fmt.Sprintf("%s/%s", c.policy, c.source), r))
	}
	return t, results
}

// Figure3Middle reproduces Figure 3 (middle): SCOOP vs LOCAL vs HASH
// vs BASE over the REAL trace in simulation.
func Figure3Middle(scale Scale, seed int64) (Table, []Result) {
	t := Table{
		Title:  "Figure 3 (middle): simulation, REAL trace, by storage method",
		Header: breakdownHeader,
	}
	var results []Result
	for _, p := range policy.Names() {
		cfg := Default()
		cfg.Policy = p
		cfg.Seed = seed
		scale.apply(&cfg)
		r := MustRun(cfg)
		results = append(results, r)
		t.Rows = append(t.Rows, breakdownRow(string(p), r))
	}
	return t, results
}

// Figure3Right reproduces Figure 3 (right): SCOOP over the five data
// sources in simulation.
func Figure3Right(scale Scale, seed int64) (Table, []Result) {
	t := Table{
		Title:  "Figure 3 (right): simulation, SCOOP by data source",
		Header: breakdownHeader,
	}
	var results []Result
	for _, src := range []string{"unique", "equal", "real", "gaussian", "random"} {
		cfg := Default()
		cfg.Source = src
		cfg.Seed = seed
		scale.apply(&cfg)
		r := MustRun(cfg)
		results = append(results, r)
		t.Rows = append(t.Rows, breakdownRow(src, r))
	}
	return t, results
}

// Figure4 reproduces Figure 4: total cost vs percentage of nodes
// queried for SCOOP, LOCAL and BASE over REAL data.
func Figure4(scale Scale, seed int64) (Table, map[policy.Name][]Result) {
	pcts := []float64{0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 1.00}
	t := Table{
		Title:  "Figure 4: total messages vs % nodes queried (REAL, simulation)",
		Header: []string{"% nodes", "SCOOP", "LOCAL", "BASE"},
	}
	byPolicy := make(map[policy.Name][]Result)
	for _, pct := range pcts {
		row := []string{fmt.Sprintf("%.0f%%", pct*100)}
		for _, p := range []policy.Name{policy.Scoop, policy.Local, policy.Base} {
			cfg := Default()
			cfg.Policy = p
			cfg.NodePct = pct
			cfg.Seed = seed
			scale.apply(&cfg)
			r := MustRun(cfg)
			byPolicy[p] = append(byPolicy[p], r)
			row = append(row, fmt.Sprintf("%.0f", r.Breakdown.Total()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, byPolicy
}

// Figure5 reproduces Figure 5: total cost vs query interval for SCOOP,
// LOCAL and BASE over REAL data.
func Figure5(scale Scale, seed int64) (Table, map[policy.Name][]Result) {
	intervals := []netsim.Time{5 * netsim.Second, 10 * netsim.Second, 15 * netsim.Second,
		25 * netsim.Second, 45 * netsim.Second}
	t := Table{
		Title:  "Figure 5: total messages vs query interval (REAL, simulation)",
		Header: []string{"interval", "SCOOP", "LOCAL", "BASE"},
	}
	byPolicy := make(map[policy.Name][]Result)
	for _, iv := range intervals {
		row := []string{fmt.Sprintf("%ds", iv/netsim.Second)}
		for _, p := range []policy.Name{policy.Scoop, policy.Local, policy.Base} {
			cfg := Default()
			cfg.Policy = p
			cfg.QueryInterval = iv
			cfg.Seed = seed
			scale.apply(&cfg)
			r := MustRun(cfg)
			byPolicy[p] = append(byPolicy[p], r)
			row = append(row, fmt.Sprintf("%.0f", r.Breakdown.Total()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, byPolicy
}

// SampleIntervalSweep reproduces the paper's "other experiments" sweep:
// SCOOP cost by data source as the sample interval grows; differences
// between sources shrink as fixed costs dominate.
func SampleIntervalSweep(scale Scale, seed int64) (Table, map[string][]Result) {
	intervals := []netsim.Time{15 * netsim.Second, 30 * netsim.Second,
		60 * netsim.Second, 120 * netsim.Second}
	sources := []string{"unique", "real", "random"}
	t := Table{
		Title:  "Sample-interval sweep: SCOOP total messages by data source",
		Header: append([]string{"interval"}, sources...),
	}
	bySource := make(map[string][]Result)
	for _, iv := range intervals {
		row := []string{fmt.Sprintf("%ds", iv/netsim.Second)}
		for _, src := range sources {
			cfg := Default()
			cfg.Source = src
			cfg.SampleInterval = iv
			cfg.Seed = seed
			scale.apply(&cfg)
			r := MustRun(cfg)
			bySource[src] = append(bySource[src], r)
			row = append(row, fmt.Sprintf("%.0f", r.Breakdown.Total()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, bySource
}

// LossRates reproduces the paper's delivery measurements: ~93% of data
// stored, ~78% of query results retrieved, ~85% of routed readings
// reaching their owner, on the testbed.
func LossRates(scale Scale, seed int64) (Table, Result) {
	cfg := Default()
	cfg.Topology = "testbed"
	cfg.Seed = seed
	scale.apply(&cfg)
	r := MustRun(cfg)
	t := Table{
		Title:  "Loss rates (SCOOP, testbed)",
		Header: []string{"metric", "measured", "paper"},
		Rows: [][]string{
			{"data stored", fmt.Sprintf("%.0f%%", 100*r.Stats.DataSuccessRate()), "93%"},
			{"query results retrieved", fmt.Sprintf("%.0f%%", 100*r.Stats.QuerySuccessRate()), "78%"},
			{"owner found (routed data)", fmt.Sprintf("%.0f%%", 100*r.Stats.OwnerHitRate()), "85%"},
		},
	}
	return t, r
}

// RootSkew reproduces the root-load comparison: messages sent and
// received by the root under SCOOP, BASE and LOCAL with the REAL
// workload.
func RootSkew(scale Scale, seed int64) (Table, []Result) {
	t := Table{
		Title:  "Root-node load (REAL, simulation)",
		Header: []string{"policy", "root sent", "root received", "network total"},
	}
	var results []Result
	for _, p := range []policy.Name{policy.Scoop, policy.Base, policy.Local} {
		cfg := Default()
		cfg.Policy = p
		cfg.Seed = seed
		scale.apply(&cfg)
		r := MustRun(cfg)
		results = append(results, r)
		t.Rows = append(t.Rows, []string{
			string(p),
			fmt.Sprintf("%.0f", r.RootSent),
			fmt.Sprintf("%.0f", r.RootRecv),
			fmt.Sprintf("%.0f", r.Breakdown.Total()),
		})
	}
	return t, results
}

// Scaling reproduces the network-size experiment: SCOOP scales to 100
// nodes, with RANDOM more sensitive to size than localized sources.
func Scaling(scale Scale, seed int64) (Table, map[string][]Result) {
	sizes := []int{26, 63, 101}
	sources := []string{"real", "random"}
	t := Table{
		Title:  "Scaling: SCOOP total messages by network size",
		Header: []string{"nodes", "real", "random", "real/node", "random/node"},
	}
	bySource := make(map[string][]Result)
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		var totals []float64
		for _, src := range sources {
			cfg := Default()
			cfg.N = n
			cfg.Source = src
			cfg.Seed = seed
			scale.apply(&cfg)
			r := MustRun(cfg)
			bySource[src] = append(bySource[src], r)
			totals = append(totals, r.Breakdown.Total())
			row = append(row, fmt.Sprintf("%.0f", r.Breakdown.Total()))
		}
		for _, tot := range totals {
			row = append(row, fmt.Sprintf("%.0f", tot/float64(n)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, bySource
}

// FigureChurn is an extension figure (not in the paper): SCOOP versus
// the simulated HASH and LOCAL baselines under mid-run membership
// churn and data drift. The paper's static indices cannot adapt — a
// dead HASH owner keeps its value ranges, a drifted distribution
// lands on owners placed for the old one — while Scoop's periodic
// rebuilds re-place ownership from fresh statistics (§5). Reported
// per scenario: total messages and end-to-end data delivery.
func FigureChurn(scale Scale, seed int64) (Table, map[string][]Result) {
	scenarios := []struct {
		name         string
		churn, drift float64
	}{
		{"steady", 0, 0},
		{"churn", 0.10, 0},
		{"drift", 0, 0.4},
		{"churn+drift", 0.10, 0.4},
	}
	pols := []policy.Name{policy.Scoop, policy.HashSim, policy.Local}
	t := Table{
		Title:  "Churn/drift: SCOOP vs simulated HASH vs LOCAL (REAL, simulation)",
		Header: []string{"scenario", "scoop", "hashsim", "local", "scoop-deliv", "hashsim-deliv", "local-deliv"},
	}
	byScenario := make(map[string][]Result)
	for _, sc := range scenarios {
		row := []string{sc.name}
		var deliv []string
		for _, p := range pols {
			cfg := Default()
			cfg.Policy = p
			cfg.Seed = seed
			scale.apply(&cfg)
			// Adapt faster than the default 240 s epoch so recovery
			// fits inside the run.
			cfg.ReindexInterval = 2 * netsim.Minute
			if sc.churn > 0 || sc.drift != 0 {
				script := dynamics.Standard(cfg.N, cfg.Warmup, cfg.Duration,
					sc.churn, sc.drift, seed+17)
				cfg.Dynamics = &script
			}
			r := MustRun(cfg)
			byScenario[sc.name] = append(byScenario[sc.name], r)
			row = append(row, fmt.Sprintf("%.0f", r.Breakdown.Total()))
			deliv = append(deliv, fmt.Sprintf("%.0f%%", 100*r.Stats.DataSuccessRate()))
		}
		t.Rows = append(t.Rows, append(row, deliv...))
	}
	return t, byScenario
}

// FigureAgg is an extension figure (not in the paper): bytes per
// answered aggregate for the three physical plans — tuple return,
// in-network partial-aggregate combining, and summary-only answering
// — across network size and link loss, over an all-aggregate workload
// (the §5.5 / TAG-lineage motivation for the query planner). The mean
// absolute relative answer error is reported alongside, showing what
// each plan trades for its bytes.
func FigureAgg(scale Scale, seed int64) (Table, map[string][]Result) {
	variants := []struct {
		name   string
		force  query.Plan
		budget float64
	}{
		{"tuple", query.PlanTuple, 0},
		{"agg", query.PlanAgg, 0},
		{"summary", query.PlanSummary, 1e9},
	}
	sizes := []int{16, 32}
	losses := []float64{0, 0.2}
	t := Table{
		Title: "Aggregate engine: bytes per answer by physical plan (REAL, simulation)",
		Header: []string{"nodes", "loss", "tuple B/ans", "agg B/ans", "summary B/ans",
			"tuple err", "agg err", "summary err"},
	}
	byVariant := make(map[string][]Result)
	for _, n := range sizes {
		for _, loss := range losses {
			row := []string{fmt.Sprintf("%d", n), fmt.Sprintf("%g", loss)}
			var errs []string
			for _, v := range variants {
				cfg := Default()
				cfg.N = n
				cfg.LinkLoss = loss
				cfg.AggRatio = 1
				// Half-domain aggregates: the large-result regime the
				// planner routes to in-network combining. Exact
				// operators only, so every variant can execute its
				// forced plan (quantiles are summary-only).
				cfg.QueryWidth = 0.5
				cfg.AggOps = []query.Op{query.OpCount, query.OpSum,
					query.OpAvg, query.OpMin, query.OpMax}
				cfg.AggErrBudget = v.budget
				cfg.AggForce = v.force
				cfg.Seed = seed
				scale.apply(&cfg)
				r := MustRun(cfg)
				byVariant[v.name] = append(byVariant[v.name], r)
				row = append(row, fmt.Sprintf("%.0f", r.BytesPerAnswer()))
				errs = append(errs, fmt.Sprintf("%.3f", r.Agg.MeanErr()))
			}
			t.Rows = append(t.Rows, append(row, errs...))
		}
	}
	return t, byVariant
}

// FigureScale is the scale-tier extension figure (not in the paper,
// which stops at ~100 nodes): SCOOP versus the analytical HASH
// baseline on multi-hop grid topologies up to 1000 nodes — the
// GHT/TAG regime. Reported per cell: total messages, messages per
// node, end-to-end data delivery, and the simulator's own throughput
// (wall-clock seconds and virtual-seconds-per-wall-second), which is
// the number BENCH_scale.json tracks over time. Delivery degrading as
// N grows is the finding, not a bug: the protocol's funnel toward one
// basestation saturates the fixed-capacity MAC exactly as the paper's
// saturation discussion predicts.
func FigureScale(scale Scale, seed int64) (Table, map[int][]Result) {
	sizes := []int{65, 250, 1000}
	t := Table{
		Title: "Scale tier: SCOOP vs analytical HASH on grids up to 1000 nodes",
		Header: []string{"nodes", "scoop msgs", "msgs/node", "delivery",
			"hash msgs", "wall s", "sim-s/wall-s"},
	}
	byN := make(map[int][]Result)
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		var scoopRes, hashRes Result
		wall, simSec := 0.0, 0.0
		for _, p := range []policy.Name{policy.Scoop, policy.Hash} {
			cfg := Default()
			cfg.Policy = p
			cfg.N = n
			cfg.Topology = "grid"
			cfg.Seed = seed
			scale.apply(&cfg)
			start := time.Now() //scoop:allow walltime scale-figure throughput probe, printed to the operator only
			r := MustRun(cfg)
			if p == policy.Scoop {
				wall = time.Since(start).Seconds() //scoop:allow walltime scale-figure throughput probe, printed to the operator only
				// Trials run concurrently, so the throughput column is
				// aggregate virtual seconds simulated per wall second.
				simSec = float64(cfg.Duration) / 1000 * float64(cfg.Trials)
				scoopRes = r
			} else {
				hashRes = r
			}
			byN[n] = append(byN[n], r)
		}
		rate := 0.0
		if wall > 0 {
			rate = simSec / wall
		}
		row = append(row,
			fmt.Sprintf("%.0f", scoopRes.Breakdown.Total()),
			fmt.Sprintf("%.1f", scoopRes.Breakdown.Total()/float64(n)),
			fmt.Sprintf("%.0f%%", 100*scoopRes.Stats.DataSuccessRate()),
			fmt.Sprintf("%.0f", hashRes.Breakdown.Total()),
			fmt.Sprintf("%.1f", wall),
			fmt.Sprintf("%.0f", rate),
		)
		t.Rows = append(t.Rows, row)
	}
	return t, byN
}

// EnergyTable reproduces the paper's energy comparison (§6): "if a
// node running LOCAL can last for one month using a small battery, an
// average SCOOP node would last for about three months, although the
// battery on the root in SCOOP would have to be replaced every two
// weeks." Lifetimes are extrapolated from measured radio traffic under
// the Mica2-era energy model.
func EnergyTable(scale Scale, seed int64) (Table, []Result) {
	t := Table{
		Title:  "Energy: extrapolated battery lifetimes (REAL, simulation)",
		Header: []string{"policy", "avg node J", "avg node days", "root J", "root days", "comms share"},
	}
	var results []Result
	for _, p := range []policy.Name{policy.Scoop, policy.Local, policy.Base} {
		cfg := Default()
		cfg.Policy = p
		cfg.Seed = seed
		scale.apply(&cfg)
		r := MustRun(cfg)
		results = append(results, r)
		e := r.Energy
		t.Rows = append(t.Rows, []string{
			string(p),
			fmt.Sprintf("%.1f", e.AvgNodeJ),
			fmt.Sprintf("%.0f", e.AvgNodeDays),
			fmt.Sprintf("%.1f", e.RootJ),
			fmt.Sprintf("%.0f", e.RootDays),
			fmt.Sprintf("%.0f%%", 100*e.CommsFraction),
		})
	}
	return t, results
}
