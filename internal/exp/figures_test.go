package exp

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := Table{
		Title:  "T",
		Header: []string{"case", "value"},
		Rows:   [][]string{{"alpha", "1"}, {"b", "22222"}},
	}
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + two rows
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "T" {
		t.Fatalf("title line %q", lines[0])
	}
	// Columns align: the value column starts at the same offset in the
	// header and every row ("alpha" is the widest first column).
	off := strings.Index(lines[1], "value")
	if off < 0 {
		t.Fatal("header missing")
	}
	if len(lines[2]) <= off || lines[2][off] != '1' {
		t.Fatalf("misaligned row: %q", lines[2])
	}
	if len(lines[3]) <= off || lines[3][off] != '2' {
		t.Fatalf("misaligned row: %q", lines[3])
	}
}

func TestScaleApply(t *testing.T) {
	cfg := Default()
	Quick.apply(&cfg)
	if cfg.Trials != 1 || cfg.Duration >= Default().Duration {
		t.Fatalf("quick scale not applied: %+v", cfg)
	}
	cfg = Default()
	Full.apply(&cfg)
	if cfg.Trials != 3 || cfg.Duration != Default().Duration {
		t.Fatal("full scale must keep the paper's parameters")
	}
}

func TestLossRatesDriver(t *testing.T) {
	tb, r := LossRates(Quick, 2)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if r.Stats.Produced == 0 {
		t.Fatal("driver ran nothing")
	}
	if !strings.Contains(tb.String(), "93%") {
		t.Fatal("paper reference column missing")
	}
}

func TestEnergyTableDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("three full runs")
	}
	tb, results := EnergyTable(Quick, 2)
	if len(tb.Rows) != 3 || len(results) != 3 {
		t.Fatalf("rows = %d results = %d", len(tb.Rows), len(results))
	}
	for _, r := range results {
		if r.Energy.RootJ <= 0 || r.Energy.AvgNodeJ <= 0 {
			t.Fatal("missing energy accounting")
		}
	}
}

func TestFigure3LeftDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("four full runs")
	}
	tb, results := Figure3Left(Quick, 2)
	if len(tb.Rows) != 4 || len(results) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// scoop/unique must be the cheapest cell, as in the paper.
	unique := results[0].Breakdown.Total()
	for i, r := range results[1:] {
		if unique >= r.Breakdown.Total() {
			t.Fatalf("scoop/unique (%.0f) not below cell %d (%.0f)",
				unique, i+1, r.Breakdown.Total())
		}
	}
}
