package exp

import (
	"testing"

	"scoop/internal/core"
	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// quick returns a shortened single-trial configuration. Under -short
// the runs shrink further (the full suite simulates ~18s of wall
// time), keeping only warm-up plus enough active time for the
// cross-policy assertions to stay robust.
func quick(p policy.Name, source string) Config {
	cfg := Default()
	cfg.Policy = p
	cfg.Source = source
	Quick.apply(&cfg)
	if testing.Short() {
		cfg.Duration = 12 * netsim.Minute
		cfg.Warmup = 4 * netsim.Minute
	}
	return cfg
}

func total(t *testing.T, cfg Config) float64 {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Breakdown.Total()
}

// The paper's headline comparison (Figure 3, middle): under the
// default workload SCOOP beats both send-to-base and store-local.
func TestPolicyOrderingOnReal(t *testing.T) {
	scoop := total(t, quick(policy.Scoop, "real"))
	local := total(t, quick(policy.Local, "real"))
	base := total(t, quick(policy.Base, "real"))
	if scoop >= base {
		t.Fatalf("SCOOP (%.0f) not cheaper than BASE (%.0f)", scoop, base)
	}
	if scoop >= local {
		t.Fatalf("SCOOP (%.0f) not cheaper than LOCAL (%.0f)", scoop, local)
	}
	// The paper reports SCOOP at roughly a quarter of the baselines'
	// cost; require at least a 1.4× win in the shortened runs.
	if base/scoop < 1.4 {
		t.Fatalf("SCOOP/BASE improvement only %.2fx", base/scoop)
	}
}

// Figure 3 (right): UNIQUE is SCOOP's best case (perfect locality);
// GAUSSIAN — spatially uncorrelated producers — is the worst of the
// localized sources. REAL vs RANDOM is within single-trial noise at
// this scale, so only the robust orderings are asserted; EXPERIMENTS.md
// records the full-scale picture.
func TestSourceOrdering(t *testing.T) {
	unique := total(t, quick(policy.Scoop, "unique"))
	real := total(t, quick(policy.Scoop, "real"))
	random := total(t, quick(policy.Scoop, "random"))
	gaussian := total(t, quick(policy.Scoop, "gaussian"))
	if unique >= random {
		t.Fatalf("UNIQUE (%.0f) not cheaper than RANDOM (%.0f)", unique, random)
	}
	if unique >= real {
		t.Fatalf("UNIQUE (%.0f) not cheaper than REAL (%.0f)", unique, real)
	}
	if real >= gaussian {
		t.Fatalf("REAL (%.0f) not cheaper than GAUSSIAN (%.0f)", real, gaussian)
	}
}

// EQUAL's index never changes, so mapping dissemination is almost
// entirely suppressed (paper: "very few mapping messages").
func TestEqualSuppressesMappings(t *testing.T) {
	requal, err := Run(quick(policy.Scoop, "equal"))
	if err != nil {
		t.Fatal(err)
	}
	rreal, err := Run(quick(policy.Scoop, "real"))
	if err != nil {
		t.Fatal(err)
	}
	if requal.Breakdown.Mapping*5 > rreal.Breakdown.Mapping {
		t.Fatalf("EQUAL mapping cost %.0f not far below REAL's %.0f",
			requal.Breakdown.Mapping, rreal.Breakdown.Mapping)
	}
	if requal.Stats.IndexesSuppressed == 0 {
		t.Fatal("EQUAL never suppressed an index regeneration")
	}
}

// Comparator sanity: LOCAL sends no data or statistics traffic; BASE
// sends nothing but data.
func TestPolicyTrafficShapes(t *testing.T) {
	rl, err := Run(quick(policy.Local, "real"))
	if err != nil {
		t.Fatal(err)
	}
	if rl.Breakdown.Data != 0 || rl.Breakdown.Summary != 0 || rl.Breakdown.Mapping != 0 {
		t.Fatalf("LOCAL sent non-query traffic: %+v", rl.Breakdown)
	}
	rb, err := Run(quick(policy.Base, "real"))
	if err != nil {
		t.Fatal(err)
	}
	if rb.Breakdown.Query != 0 || rb.Breakdown.Reply != 0 ||
		rb.Breakdown.Summary != 0 || rb.Breakdown.Mapping != 0 {
		t.Fatalf("BASE sent non-data traffic: %+v", rb.Breakdown)
	}
}

// The analytical HASH model produces data-dominated cost with
// symmetric query/reply terms and no statistics traffic.
func TestAnalyticalHash(t *testing.T) {
	r, err := Run(quick(policy.Hash, "real"))
	if err != nil {
		t.Fatal(err)
	}
	b := r.Breakdown
	if b.Data == 0 {
		t.Fatal("hash has no data cost")
	}
	if b.Summary != 0 || b.Mapping != 0 {
		t.Fatal("hash has statistics overhead")
	}
	if b.Query != b.Reply {
		t.Fatalf("hash round trips not split evenly: %f vs %f", b.Query, b.Reply)
	}
}

// The simulated HASH extension runs and stores data across the network.
func TestSimulatedHash(t *testing.T) {
	r, err := Run(quick(policy.HashSim, "real"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Breakdown.Data == 0 {
		t.Fatal("hashsim moved no data")
	}
	if r.Stats.StoredAtOwner == 0 {
		t.Fatal("hashsim stored nothing at hash owners")
	}
}

// Paper delivery bands, with slack for the harsher simulated radio:
// the paper reports 93% data stored / 85% owner hit / 78% replies.
func TestDeliveryBands(t *testing.T) {
	r, err := Run(quick(policy.Scoop, "real"))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats.DataSuccessRate(); got < 0.75 {
		t.Fatalf("data success %.2f below band", got)
	}
	if got := r.Stats.OwnerHitRate(); got < 0.6 {
		t.Fatalf("owner hit rate %.2f below band", got)
	}
	if got := r.Stats.QuerySuccessRate(); got < 0.25 {
		t.Fatalf("query success %.2f below band", got)
	}
}

// Figure 4's two fixed points: LOCAL's cost is flat in the queried
// fraction, and SCOOP beats BASE when few nodes are queried.
func TestFigure4Endpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep")
	}
	lo := quick(policy.Scoop, "real")
	lo.NodePct = 0.05
	scoopLo := total(t, lo)

	baseCfg := quick(policy.Base, "real")
	baseCfg.NodePct = 0.05
	baseTotal := total(t, baseCfg)

	if scoopLo >= baseTotal {
		t.Fatalf("SCOOP at 5%% (%.0f) not cheaper than BASE (%.0f)", scoopLo, baseTotal)
	}

	l1 := quick(policy.Local, "real")
	l1.NodePct = 0.10
	l2 := quick(policy.Local, "real")
	l2.NodePct = 0.90
	a, b := total(t, l1), total(t, l2)
	ratio := a / b
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("LOCAL cost varies %.2fx across queried fractions; should be flat", ratio)
	}
}

// Figure 5's fixed point: LOCAL benefits most from a falling query
// rate (it has no other cost).
func TestFigure5LocalSlope(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep")
	}
	fast := quick(policy.Local, "real")
	fast.QueryInterval = 5 * netsim.Second
	slow := quick(policy.Local, "real")
	slow.QueryInterval = 45 * netsim.Second
	f, s := total(t, fast), total(t, slow)
	if s >= f {
		t.Fatalf("LOCAL at 45s (%.0f) not cheaper than at 5s (%.0f)", s, f)
	}
	if f/s < 2 {
		t.Fatalf("LOCAL only %.1fx cheaper at 9x lower query rate", f/s)
	}
}

func TestScalesTo100Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("large topology")
	}
	cfg := quick(policy.Scoop, "real")
	cfg.N = 101
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.DataSuccessRate() < 0.6 {
		t.Fatalf("data success %.2f at 100 nodes", r.Stats.DataSuccessRate())
	}
}

func TestTrialsRunConcurrentlyAndMerge(t *testing.T) {
	cfg := quick(policy.Scoop, "real")
	cfg.Trials = 3
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerTrial) != 3 {
		t.Fatalf("per-trial results: %d", len(r.PerTrial))
	}
	var sum float64
	for _, tr := range r.PerTrial {
		sum += tr.Breakdown.Total()
	}
	if diff := r.Breakdown.Total() - sum/3; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("mean mismatch: %.2f vs %.2f", r.Breakdown.Total(), sum/3)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := quick(policy.Scoop, "real")
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Breakdown.Total() != b.Breakdown.Total() {
		t.Fatalf("same seed, different totals: %.0f vs %.0f",
			a.Breakdown.Total(), b.Breakdown.Total())
	}
}

func TestModifyHook(t *testing.T) {
	cfg := quick(policy.Scoop, "real")
	called := false
	cfg.Modify = func(c *core.Config) {
		called = true
		c.BatchSize = 1
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("Modify hook not invoked")
	}
}

func TestUnknownConfigsRejected(t *testing.T) {
	cfg := quick(policy.Scoop, "nope")
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown source accepted")
	}
	cfg = quick(policy.Scoop, "real")
	cfg.Topology = "torus"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown topology accepted")
	}
	cfg = quick("teleport", "real")
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRootSkewShape(t *testing.T) {
	if testing.Short() {
		t.Skip("three full runs")
	}
	_, results := RootSkew(Quick, 1)
	scoopR, baseR, localR := results[0], results[1], results[2]
	// BASE: the root transmits almost nothing but receives everything.
	if baseR.RootSent > baseR.RootRecv/5 {
		t.Fatalf("BASE root sent %.0f vs received %.0f; should be receive-dominated",
			baseR.RootSent, baseR.RootRecv)
	}
	// SCOOP's root sends mapping/query traffic, unlike BASE's.
	if scoopR.RootSent == 0 {
		t.Fatal("SCOOP root sent nothing")
	}
	_ = localR
}

// The paper's energy discussion (§6). Two parts are robustly
// reproducible under a byte-accurate radio-energy model: the SCOOP
// root's always-on radio drains its battery in about two weeks
// ("the battery on the root in SCOOP would have to be replaced every
// two weeks"), far ahead of duty-cycled nodes; and communication
// dominates node energy ("up to 90% … due to communication"). The
// paper's 3× node-lifetime gap between SCOOP and LOCAL does not
// emerge from byte counts (LOCAL's replies are mostly empty and
// small) — see EXPERIMENTS.md.
func TestEnergyShape(t *testing.T) {
	scoop, err := Run(quick(policy.Scoop, "real"))
	if err != nil {
		t.Fatal(err)
	}
	e := scoop.Energy
	if e.RootDays < 10 || e.RootDays > 22 {
		t.Fatalf("root lifetime %.1f days; paper says about two weeks", e.RootDays)
	}
	if e.RootDays*5 >= e.AvgNodeDays {
		t.Fatalf("root (%.0f d) should drain far ahead of the average node (%.0f d)",
			e.RootDays, e.AvgNodeDays)
	}
	if e.CommsFraction < 0.5 {
		t.Fatalf("comms share %.2f; paper says communication dominates", e.CommsFraction)
	}
}
