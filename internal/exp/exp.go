// Package exp is the experiment harness: it assembles a topology, a
// radio network, a workload and a storage policy into a runnable
// trial, repeats trials concurrently, and provides one driver per
// table/figure of the paper's evaluation (§6).
package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"scoop/internal/core"
	"scoop/internal/dynamics"
	"scoop/internal/invariant"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
	"scoop/internal/prof"
	"scoop/internal/query"
	"scoop/internal/storage"
	"scoop/internal/trace"
	"scoop/internal/workload"
)

// Config describes one experiment cell (a policy × workload × sweep
// point). Zero value is unusable; start from Default.
type Config struct {
	Policy   policy.Name
	Source   string // workload source name
	N        int    // network size including the basestation
	Topology string // "uniform" (paper's simulation), "testbed", "grid"

	Duration netsim.Time // total run length (paper: 40 min)
	Warmup   netsim.Time // tree-stabilisation period (paper: 10 min)

	SampleInterval netsim.Time // paper: 15 s
	QueryInterval  netsim.Time // paper: 15 s; 0 disables queries
	// NodePct, when >= 0, switches to node-list queries over this
	// fraction of nodes (the Figure 4 sweep); < 0 uses value-range
	// queries of 1–5% of the domain (the paper's default).
	NodePct float64

	// QueryWidth, when > 0, fixes every value-range query's width to
	// this fraction of the domain instead of the paper's random 1–5%.
	// Wide ranges produce the large result sets where in-network
	// aggregation pays off.
	QueryWidth float64

	// AggRatio, in [0,1], lifts this fraction of value-range queries
	// into aggregate queries (COUNT/SUM/AVG/MIN/MAX/quantile rotation)
	// answered by the cost-based query planner. 0 keeps the pure
	// tuple-return workload. Ignored for node-list workloads and the
	// BASE policy (whose queries are free at the basestation).
	AggRatio float64
	// AggErrBudget is the relative accuracy budget attached to every
	// aggregate query; generous budgets let the planner answer from
	// retained summaries at zero radio cost.
	AggErrBudget float64
	// AggForce pins the aggregate planner's physical plan (ablation
	// figures); query.PlanAuto lets it choose per query.
	AggForce query.Plan
	// AggOps overrides the aggregate-operator rotation (nil: the
	// default COUNT/SUM/AVG/MIN/MAX/quantile cycle). Plan-comparison
	// figures restrict it to the exactly-mergeable operators so
	// summary-only quantiles don't force floods into every variant.
	AggOps []query.Op

	// LinkLoss, in [0,1), degrades every directed link's delivery
	// probability by this fraction for the whole run, modelling a
	// network-wide interference floor on top of the topology's
	// per-link qualities. 0 is the paper's radio model.
	LinkLoss float64

	// Dynamics, when non-nil, is a timeline of mid-run perturbations
	// — node churn, loss ramps, data/query drift — scheduled into
	// every trial (each trial applies the same script; churn scripts
	// should be built from the cell seed so runs stay reproducible).
	Dynamics *dynamics.Script

	// Faults, when non-empty, names a dynamics.FaultScenario (regional
	// blackout, partition, correlated burst loss, basestation restart,
	// or the composed "campaign") resolved per trial from the trial
	// seed and appended to Dynamics — the reliability campaign's fault
	// axis (DESIGN.md §19).
	Faults string

	// QueryDeadline, when > 0, enables the basestation's query
	// reliability layer (deadline retries with narrowed bitmaps,
	// terminal verdicts, graceful degradation — DESIGN.md §19);
	// QueryRetryMax caps re-issues per query. Both map straight onto
	// the core.Config knobs of the same names.
	QueryDeadline netsim.Time
	QueryRetryMax int

	// ReindexInterval overrides how often the basestation rebuilds
	// the storage index from fresh statistics and redisseminates it
	// (the adaptive epoch length; core default 240 s). 0 keeps the
	// default.
	ReindexInterval netsim.Time
	// DisableReindex freezes the storage index after its first build:
	// the basestation still constructs and disseminates one index
	// from post-warm-up statistics, but never adapts it again — the
	// ablation that shows what the adaptive loop buys under drift and
	// churn.
	DisableReindex bool

	// WindowInterval is the transition-metrics sampling width: run
	// statistics are snapshotted into fixed windows of this length
	// (starting after warm-up) so reconvergence and during/after
	// delivery can be computed. 0 defaults to 30 s when Dynamics is
	// set and disables the timeline otherwise.
	WindowInterval netsim.Time

	// Regions partitions every trial's radio network into this many
	// spatially contiguous regions, each advanced by its own worker
	// goroutine under the conservative lookahead coordinator
	// (DESIGN.md §18). Results are bit-identical for every value: 0 or
	// 1 keeps the serial single-heap engine, and the differential
	// harness holds K>1 to byte-equality with it.
	Regions int

	Trials int
	Seed   int64

	// CheckInvariants attaches the internal/invariant whole-run
	// checker to every trial: conservation of readings, no aggregate
	// double-count, index-generation monotonicity. A violation fails
	// the run with a descriptive error. Tests-only machinery — it
	// keeps per-reading state, so leave it off for benchmarks and
	// artifact sweeps.
	CheckInvariants bool

	// Trace switches on the flight recorder: every trial gets its own
	// trace.Recorder clocked by the trial's simulator, threaded
	// through the network, the protocol stack and the dynamics
	// scheduler. With no TraceSinks factory, events land in a bounded
	// in-memory ring surfaced as TrialResult.Trace.
	Trace bool
	// TraceSinks, when non-nil, builds the sink set for one trial
	// (called once per trial, concurrently across trials). Returning
	// an empty set disables tracing for that trial — the usual way to
	// trace only trial 0 of a multi-trial cell. Ignored unless Trace.
	TraceSinks func(trial int) []trace.Sink
	// TraceReading, when non-nil, narrows the trace to the lifecycle
	// of matching readings (see trace.Recorder.Follow).
	TraceReading *trace.ReadingID

	// Profile attaches a wall-clock attribution profiler to every
	// trial's event loop and protocol hot paths (internal/prof,
	// DESIGN.md §17). The snapshot lands in TrialResult.Prof.
	// Profiling is observation-only: simulation outcomes are
	// byte-identical with it on or off.
	Profile bool

	// Modify, when non-nil, adjusts the derived core configuration —
	// the hook ablation benches use (batching off, shortcut off, …).
	Modify func(*core.Config)
}

// traceRingCap bounds the default in-memory trace ring per trial.
const traceRingCap = 4096

// ForceInvariants turns invariant checking on for every Run in the
// process regardless of Config, so a test binary can assert the whole
// suite's runs are conservation-clean from one TestMain. Set before
// the first Run; never set it in production binaries.
var ForceInvariants bool

// Default returns the paper's default parameters (§6 table): 62 nodes
// + base, REAL data, 15 s sample and query intervals, 40-minute runs
// with a 10-minute warm-up, 3 trials.
func Default() Config {
	return Config{
		Policy:         policy.Scoop,
		Source:         "real",
		N:              63,
		Topology:       "uniform",
		Duration:       40 * netsim.Minute,
		Warmup:         10 * netsim.Minute,
		SampleInterval: 15 * netsim.Second,
		QueryInterval:  15 * netsim.Second,
		NodePct:        -1,
		Trials:         3,
		Seed:           1,
	}
}

// Validate rejects configurations that would otherwise yield silent
// nonsense runs (a negative loss rate, a warm-up longer than the run).
// Run calls it; drivers building configs by hand can call it early.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("exp: network size %d too small (need the basestation plus at least one node)", c.N)
	}
	if c.LinkLoss < 0 || c.LinkLoss >= 1 {
		return fmt.Errorf("exp: link loss %v outside [0,1)", c.LinkLoss)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("exp: non-positive duration %v", c.Duration)
	}
	if c.Warmup < 0 || c.Warmup >= c.Duration {
		return fmt.Errorf("exp: warmup %v must lie in [0, duration %v)", c.Warmup, c.Duration)
	}
	if c.SampleInterval <= 0 {
		return fmt.Errorf("exp: non-positive sample interval %v", c.SampleInterval)
	}
	if c.QueryInterval < 0 {
		return fmt.Errorf("exp: negative query interval %v", c.QueryInterval)
	}
	if c.NodePct > 1 {
		return fmt.Errorf("exp: node-query fraction %v exceeds 1", c.NodePct)
	}
	if c.QueryWidth < 0 || c.QueryWidth > 1 {
		return fmt.Errorf("exp: query width %v outside [0,1]", c.QueryWidth)
	}
	if c.AggRatio < 0 || c.AggRatio > 1 {
		return fmt.Errorf("exp: aggregate ratio %v outside [0,1]", c.AggRatio)
	}
	if c.AggErrBudget < 0 {
		return fmt.Errorf("exp: negative aggregate error budget %v", c.AggErrBudget)
	}
	if c.AggForce > query.PlanFlood {
		return fmt.Errorf("exp: unknown forced plan %d", c.AggForce)
	}
	if c.ReindexInterval < 0 {
		return fmt.Errorf("exp: negative reindex interval %v", c.ReindexInterval)
	}
	if c.WindowInterval < 0 {
		return fmt.Errorf("exp: negative window interval %v", c.WindowInterval)
	}
	if c.Regions < 0 {
		return fmt.Errorf("exp: negative region count %d", c.Regions)
	}
	if c.QueryDeadline < 0 {
		return fmt.Errorf("exp: negative query deadline %v", c.QueryDeadline)
	}
	if c.QueryRetryMax < 0 {
		return fmt.Errorf("exp: negative query retry budget %d", c.QueryRetryMax)
	}
	if c.Faults != "" {
		// Resolve once with the base seed purely to validate the name
		// and shape; trials re-resolve with their own seeds.
		if _, err := dynamics.FaultScenario(c.Faults, c.N, c.Warmup, c.Duration, c.Seed); err != nil {
			return err
		}
	}
	if err := c.Dynamics.Validate(c.N, c.Duration); err != nil {
		return err
	}
	if c.Policy == policy.Hash && (!c.Dynamics.Empty() || c.Faults != "") {
		// The paper's HASH is evaluated analytically; there is no
		// simulation to perturb, and silently reporting unperturbed
		// numbers under a churn/drift label would poison baselines.
		// Use the simulated "hashsim" policy for dynamics runs.
		return fmt.Errorf("exp: the analytical hash policy cannot run a dynamics script (use hashsim)")
	}
	return nil
}

// AggEval accounts the aggregate query engine's end-to-end quality
// for one trial: how many aggregates were issued and answered, the
// summed absolute relative error against ground truth (computed by
// scanning every store at issue time), and the planner's decisions.
type AggEval struct {
	Issued      int
	Answered    int
	ErrSum      float64
	PlanSummary int
	PlanAgg     int
	PlanTuple   int
	PlanFlood   int
}

// MeanErr returns the mean absolute relative answer error.
func (e AggEval) MeanErr() float64 {
	if e.Answered == 0 {
		return 0
	}
	return e.ErrSum / float64(e.Answered)
}

func (e *AggEval) add(o AggEval) {
	e.Issued += o.Issued
	e.Answered += o.Answered
	e.ErrSum += o.ErrSum
	e.PlanSummary += o.PlanSummary
	e.PlanAgg += o.PlanAgg
	e.PlanTuple += o.PlanTuple
	e.PlanFlood += o.PlanFlood
}

// TrialResult captures one trial's outcome.
type TrialResult struct {
	Breakdown metrics.Breakdown
	Stats     core.RunStats
	RootSent  int64 // root transmissions (non-beacon)
	RootRecv  int64 // root receptions (non-beacon)
	Energy    metrics.EnergyReport
	// Timeline holds windowed transition metrics and perturbation
	// marks; empty unless the config enabled windowed sampling.
	Timeline metrics.Timeline
	// Agg holds aggregate-engine accounting (zero when AggRatio is 0).
	Agg AggEval
	// Per-class sent bytes on the query path, for bytes-per-answer
	// comparisons across physical plans.
	QueryBytes    int64
	ReplyBytes    int64
	AggReplyBytes int64
	// Trace holds the last traceRingCap flight-recorder events when
	// the config enabled tracing without a custom sink set.
	Trace *trace.Ring
	// Prof holds the wall-clock attribution snapshot when the config
	// enabled profiling.
	Prof *prof.Snapshot
}

// Result aggregates an experiment cell.
type Result struct {
	Config    Config
	PerTrial  []TrialResult
	Breakdown metrics.Breakdown    // mean across trials
	Stats     core.RunStats        // summed across trials
	RootSent  float64              // mean
	RootRecv  float64              // mean
	Energy    metrics.EnergyReport // mean across trials
	Agg       AggEval              // summed across trials
	// Mean per-class sent bytes across trials.
	QueryBytes    float64
	ReplyBytes    float64
	AggReplyBytes float64
}

// BytesPerAnswer returns the mean reply-path bytes (tuple replies
// plus combined partials) each answered aggregate cost. Query
// dissemination is excluded: it is plan-invariant (every plan gossips
// the same one query packet), so the reply path is where the physical
// plans actually differ. 0 when nothing was answered.
func (r Result) BytesPerAnswer() float64 {
	if r.Agg.Answered == 0 {
		return 0
	}
	total := (r.ReplyBytes + r.AggReplyBytes) * float64(len(r.PerTrial))
	return total / float64(r.Agg.Answered)
}

// Run executes the experiment: Trials independent simulations (run
// concurrently on separate goroutines, each with its own simulator,
// counters and RNG streams) whose results are averaged.
func Run(cfg Config) (Result, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Policy == policy.Hash {
		return runAnalyticalHash(cfg)
	}
	res := Result{Config: cfg, PerTrial: make([]TrialResult, cfg.Trials)}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Trials)
	for t := 0; t < cfg.Trials; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			res.PerTrial[t], errs[t] = runTrial(cfg, t)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	var sum metrics.Breakdown
	for _, tr := range res.PerTrial {
		sum = sum.Add(tr.Breakdown)
		addStats(&res.Stats, &tr.Stats)
		res.Agg.add(tr.Agg)
		res.QueryBytes += float64(tr.QueryBytes)
		res.ReplyBytes += float64(tr.ReplyBytes)
		res.AggReplyBytes += float64(tr.AggReplyBytes)
		res.RootSent += float64(tr.RootSent)
		res.RootRecv += float64(tr.RootRecv)
		res.Energy.AvgNodeJ += tr.Energy.AvgNodeJ
		res.Energy.RootJ += tr.Energy.RootJ
		res.Energy.AvgNodeDays += tr.Energy.AvgNodeDays
		res.Energy.RootDays += tr.Energy.RootDays
		res.Energy.CommsFraction += tr.Energy.CommsFraction
		res.Energy.TotalNetworkJ += tr.Energy.TotalNetworkJ
	}
	f := 1.0 / float64(cfg.Trials)
	res.Breakdown = sum.Scale(f)
	res.QueryBytes *= f
	res.ReplyBytes *= f
	res.AggReplyBytes *= f
	res.RootSent *= f
	res.RootRecv *= f
	res.Energy.AvgNodeJ *= f
	res.Energy.RootJ *= f
	res.Energy.AvgNodeDays *= f
	res.Energy.RootDays *= f
	res.Energy.CommsFraction *= f
	res.Energy.TotalNetworkJ *= f
	return res, nil
}

// MustRun is Run for drivers with static, known-good configs.
func MustRun(cfg Config) Result {
	res, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}

func runTrial(cfg Config, trial int) (TrialResult, error) {
	seed := cfg.Seed + int64(trial)*7919
	topo, err := buildTopology(cfg.Topology, cfg.N, seed)
	if err != nil {
		return TrialResult{}, err
	}
	sim := netsim.NewSimulator(seed ^ 0x53c00b)
	ctr := metrics.NewCounters()
	net := netsim.NewNetwork(sim, topo, ctr, netsim.DefaultParams())
	if cfg.LinkLoss > 0 {
		net.ScaleAllLinks(1 - cfg.LinkLoss)
	}

	// The fault axis resolves per trial (seeded window jitter) and
	// rides the same control-plane timeline as any other dynamics.
	dyn := cfg.Dynamics
	if cfg.Faults != "" {
		fs, err := dynamics.FaultScenario(cfg.Faults, cfg.N, cfg.Warmup, cfg.Duration, seed+211)
		if err != nil {
			return TrialResult{}, err
		}
		var merged dynamics.Script
		if dyn != nil {
			merged.Append(*dyn)
		}
		merged.Append(fs)
		dyn = &merged
	}

	src, err := workload.NewSource(cfg.Source, cfg.N, seed+13)
	if err != nil {
		return TrialResult{}, err
	}
	lo, hi := src.Domain()
	// A script with data-distribution shifts samples through a drift
	// wrapper whose offset the scheduled events move.
	sampler := src
	var drift *workload.Drift
	if dyn.HasData() {
		drift = workload.NewDrift(src)
		sampler = drift
	}
	ccfg, err := policy.Config(cfg.Policy, cfg.N, lo, hi)
	if err != nil {
		return TrialResult{}, err
	}
	ccfg.SampleInterval = cfg.SampleInterval
	if cfg.ReindexInterval > 0 {
		ccfg.RemapInterval = cfg.ReindexInterval
	}
	if cfg.DisableReindex {
		// Build the first index from post-warm-up statistics as
		// usual, then freeze it: the network keeps a plausible static
		// index, it just never adapts. (DisableRemap would never
		// build one at all, degenerating into store-local.)
		ccfg.RemapLimit = 1
	}
	if dyn.HasChurn() && ccfg.StatStaleAfter == 0 {
		// Under churn, dead nodes must age out of index construction.
		ccfg.StatStaleAfter = 3 * ccfg.SummaryInterval
	}
	ccfg.AggForcePlan = cfg.AggForce
	ccfg.QueryDeadline = cfg.QueryDeadline
	ccfg.QueryRetryMax = cfg.QueryRetryMax
	if cfg.Modify != nil {
		cfg.Modify(&ccfg)
	}

	// Flight recorder: one recorder per trial, clocked by this trial's
	// simulator, fanned out to the configured sinks (default: a
	// bounded in-memory ring handed back on the TrialResult).
	var rec *trace.Recorder
	var ring *trace.Ring
	if cfg.Trace {
		var sinks []trace.Sink
		if cfg.TraceSinks != nil {
			sinks = cfg.TraceSinks(trial)
		} else {
			ring = trace.NewRing(traceRingCap)
			sinks = []trace.Sink{ring}
		}
		if len(sinks) > 0 {
			rec = trace.New(func() int64 { return int64(sim.Now()) }, sinks...)
			rec.Follow(cfg.TraceReading)
		} else {
			ring = nil
		}
	}
	net.Trace = rec
	ccfg.Trace = rec

	// Region partitioning must happen after the trace recorder is in
	// place (the parallel engine forks it per region) and before apps
	// attach, so every node binds to its region's simulator.
	if cfg.Regions > 1 {
		net.SetRegions(cfg.Regions)
	}
	nreg := net.Regions()

	// Wall-clock attribution profiler: observation-only, so it hangs
	// off the simulators and config without touching protocol state.
	// Region-parallel runs profile every region's event loop plus the
	// control plane and merge the snapshots.
	var pr *prof.Profiler
	var regProfs []*prof.Profiler
	if cfg.Profile {
		pr = prof.New()
		sim.SetProfiler(pr)
		ccfg.Prof = pr
		rec.SetProfiler(pr)
		if nreg > 1 {
			regProfs = make([]*prof.Profiler, nreg)
			for r := range regProfs {
				regProfs[r] = prof.New()
				net.RegionSim(r).SetProfiler(regProfs[r])
			}
		}
	}

	// Run statistics: one RunStats when serial; per-region shards
	// (merged field-wise on read) plus one SharedRunState for the
	// cross-region dedup table and invariant probe when parallel.
	stats := &core.RunStats{}
	var chk *invariant.Checker
	if cfg.CheckInvariants || ForceInvariants {
		chk = invariant.New()
		net.OnPurge = func(id netsim.NodeID, p *netsim.Packet) {
			// A reboot drains the send queue; batched readings in it
			// are RAM losses the radio-side accounting never sees.
			if dm, ok := p.Payload.(*core.DataMsg); ok {
				for _, r := range dm.Readings {
					chk.LostReading(r.Producer, r.Time, "reboot-queue")
				}
			}
		}
	}
	shards := []*core.RunStats{stats}
	rcfgs := []core.Config{ccfg}
	if nreg > 1 {
		// The typed-nil trap: a nil *invariant.Checker must not become a
		// non-nil ReadingProbe interface.
		var probe core.ReadingProbe
		if chk != nil {
			probe = chk
		}
		shared := core.NewSharedRunState(probe)
		shards = make([]*core.RunStats, nreg)
		rcfgs = make([]core.Config, nreg)
		for r := 0; r < nreg; r++ {
			shards[r] = &core.RunStats{Shared: shared}
			rcfgs[r] = ccfg
			rcfgs[r].Trace = net.RegionTrace(r)
			if regProfs != nil {
				rcfgs[r].Prof = regProfs[r]
			}
		}
	} else if chk != nil {
		stats.Probe = chk
	}
	// readStats returns the live merged view; under parallelism it is
	// only callable from control-plane events (regions quiesce at
	// barriers) and after the run.
	readStats := func() core.RunStats {
		if nreg <= 1 {
			return *stats
		}
		var m core.RunStats
		for _, sh := range shards {
			addStats(&m, sh)
		}
		return m
	}
	baseReg := net.RegionOf(0)
	base := core.NewBase(rcfgs[baseReg], shards[baseReg], cfg.Warmup)
	net.Attach(0, base)
	nodes := make([]*core.Node, cfg.N)
	for i := 1; i < cfg.N; i++ {
		r := net.RegionOf(netsim.NodeID(i))
		nodes[i] = core.NewNode(rcfgs[r], shards[r], sampler.Next, cfg.Warmup)
		net.Attach(netsim.NodeID(i), nodes[i])
	}
	net.Start()

	var gen workload.Generator
	if cfg.QueryInterval > 0 {
		if cfg.NodePct >= 0 {
			gen = workload.NewNodePctGen(cfg.N, cfg.NodePct, seed+29)
		} else {
			rg := workload.NewRangeGen(lo, hi, seed+29)
			if cfg.QueryWidth > 0 {
				rg.WidthLo, rg.WidthHi = cfg.QueryWidth, cfg.QueryWidth
			}
			gen = rg
		}
	}

	tr := TrialResult{}
	if !dyn.Empty() {
		tg := dynamics.Targets{
			Net:      net,
			LossBase: 1 - cfg.LinkLoss,
			Trace:    rec,
			Observer: func(ev dynamics.Event) {
				tr.Timeline.AddMark(int64(sim.Now()), ev.Kind.String())
			},
		}
		if drift != nil {
			tg.Data = drift
		}
		if rg, ok := gen.(*workload.RangeGen); ok {
			tg.Query = rg
		}
		dyn.Attach(sim, tg)
	}

	if win := cfg.windowInterval(); win > 0 {
		prevStats := readStats()
		prevB := net.CountersBreakdown()
		var tickW func()
		tickW = func() {
			cur := readStats()
			b := net.CountersBreakdown()
			now := sim.Now()
			tr.Timeline.Windows = append(tr.Timeline.Windows, metrics.TransitionWindow{
				Start:           int64(now - win),
				End:             int64(now),
				Produced:        cur.Produced - prevStats.Produced,
				StoredUnique:    cur.StoredUnique - prevStats.StoredUnique,
				StoredAtOwner:   cur.StoredAtOwner - prevStats.StoredAtOwner,
				StoredAtBase:    cur.StoredAtBase - prevStats.StoredAtBase,
				RepliesExpected: cur.RepliesExpected - prevStats.RepliesExpected,
				RepliesReceived: cur.RepliesReceived - prevStats.RepliesReceived,
				Msgs:            b.Total() - prevB.Total(),
				Data:            b.Data - prevB.Data,
			})
			prevStats, prevB = cur, b
			if now+win <= cfg.Duration {
				sim.After(win, tickW)
			}
		}
		sim.At(cfg.Warmup+win, tickW)
	}

	// The aggregate mix applies to value-range workloads on policies
	// that actually issue network queries.
	var mixed *workload.MixedGen
	if cfg.QueryInterval > 0 && cfg.AggRatio > 0 && cfg.NodePct < 0 &&
		cfg.Policy != policy.Base {
		mixed = workload.NewMixedGen(gen, cfg.AggRatio, cfg.AggErrBudget, seed+31)
		mixed.Ops = cfg.AggOps
	}
	type aggIssued struct {
		qid     uint16
		op      query.Op
		gt      float64
		gtValid bool
	}
	var aggLog []aggIssued

	if cfg.QueryInterval > 0 {
		var tick func()
		tick = func() {
			var req workload.Request
			if mixed != nil {
				req = mixed.NextRequest(sim.Now())
			} else {
				req = workload.Request{Query: gen.Next(sim.Now())}
			}
			q := req.Query
			if cfg.Policy == policy.Local && q.IsNodeQuery() {
				// Figure 4 semantics: under LOCAL the basestation
				// cannot know which nodes hold the data of interest,
				// so every query floods all nodes regardless of the
				// queried fraction (paper: "LOCAL is unaffected …
				// since it has to always query all nodes").
				q = workload.Query{ValueLo: lo, ValueHi: hi,
					TimeLo: q.TimeLo, TimeHi: q.TimeHi}
			}
			// Queries never reach back before sampling started.
			if q.TimeLo < cfg.Warmup {
				q.TimeLo = cfg.Warmup
			}
			switch {
			case cfg.Policy == policy.Base:
				// Send-to-base answers queries from its local store at
				// zero network cost (paper §6: "queries have no
				// associated cost" for BASE).
				base.AnswerFromStore(q)
			case req.Agg != nil:
				aq := *req.Agg
				if aq.TimeLo < cfg.Warmup {
					aq.TimeLo = cfg.Warmup
				}
				rec := aggIssued{op: aq.Op}
				rec.gt, rec.gtValid = aggGroundTruth(base, nodes, aq)
				dec := base.IssueAgg(aq)
				rec.qid = base.LastQueryID()
				tr.Agg.Issued++
				switch dec.Plan {
				case query.PlanSummary:
					tr.Agg.PlanSummary++
				case query.PlanAgg:
					tr.Agg.PlanAgg++
				case query.PlanTuple:
					tr.Agg.PlanTuple++
				case query.PlanFlood:
					tr.Agg.PlanFlood++
				}
				aggLog = append(aggLog, rec)
			default:
				base.IssueQuery(q)
			}
			if sim.Now()+cfg.QueryInterval <= cfg.Duration {
				sim.After(cfg.QueryInterval, tick)
			}
		}
		sim.At(cfg.Warmup+cfg.QueryInterval, tick)
	}

	net.Run(cfg.Duration)

	// Settle every still-open query to its terminal verdict before the
	// stats shards are merged and read (no trace events are emitted
	// post-run, so region-parallel byte identity is preserved).
	base.FinalizeVerdicts()

	if rec != nil {
		if err := rec.Close(); err != nil {
			return TrialResult{}, fmt.Errorf("exp: closing trace sinks (trial %d): %w", trial, err)
		}
		tr.Trace = ring
	}
	if pr != nil {
		s := pr.Snapshot()
		for _, rp := range regProfs {
			s.Merge(rp.Snapshot())
		}
		tr.Prof = &s
	}
	if nreg > 1 {
		// Fold the per-region shards into the merged views the rest of
		// the accounting below reads.
		merged := readStats()
		*stats = merged
		net.MergeCounters(ctr)
	}

	// Settle the aggregate answers against ground truth captured at
	// issue time. An aggregate over an empty match set has no defined
	// answer; when ground truth agrees nothing matched, that is a
	// correct (error-free) outcome, not a missing one.
	for _, rec := range aggLog {
		ans, _, ok := base.AggAnswer(rec.qid)
		switch {
		case ok && rec.gtValid:
			tr.Agg.Answered++
			den := math.Abs(rec.gt)
			if den < 1 {
				den = 1
			}
			tr.Agg.ErrSum += math.Abs(ans-rec.gt) / den
		case ok, !rec.gtValid:
			tr.Agg.Answered++
		}
	}

	if chk != nil {
		// Conservation needs to know what is legitimately still in
		// flight: batch buffers, send queues, frames on the air.
		for _, nd := range nodes {
			if nd == nil {
				continue
			}
			for _, r := range nd.PendingBatchReadings() {
				chk.InFlightReading(r.Producer, r.Time)
			}
		}
		inFlight := func(p *netsim.Packet) {
			if dm, ok := p.Payload.(*core.DataMsg); ok {
				for _, r := range dm.Readings {
					chk.InFlightReading(r.Producer, r.Time)
				}
			}
		}
		net.ForEachQueued(func(_ netsim.NodeID, p *netsim.Packet) { inFlight(p) })
		net.ForEachInFlight(inFlight)
		hist := base.IndexHistory()
		ids := make([]uint16, len(hist))
		for i, ix := range hist {
			ids[i] = ix.ID
		}
		chk.RecordIndexIDs(ids)
		for _, rec := range aggLog {
			got, expected := base.AggContribs(rec.qid)
			chk.AggResult(rec.qid, got, expected)
		}
		if cfg.QueryDeadline > 0 {
			// Reliability-layer contracts: every issued query settles to
			// a terminal verdict exactly once, and degraded answers never
			// report tighter bounds than the summary math allows.
			recs := base.VerdictLog()
			infos := make([]invariant.VerdictInfo, len(recs))
			for i, r := range recs {
				infos[i] = invariant.VerdictInfo{
					QID:          r.QID,
					Terminal:     r.Verdict != core.VerdictOpen,
					Degraded:     r.Verdict == core.VerdictDegraded,
					ErrBound:     r.ErrBound,
					SummaryBound: r.SummaryBound,
				}
			}
			chk.QueryVerdicts(base.QueryJournalLen(), infos)
		}
		if vs := chk.Violations(); len(vs) != 0 {
			return TrialResult{}, fmt.Errorf("exp: invariant violations (policy %s, trial %d, seed %d):\n  %s",
				cfg.Policy, trial, seed, strings.Join(vs, "\n  "))
		}
	}

	tr.Breakdown = ctr.Snapshot()
	tr.Stats = *stats
	tr.QueryBytes = ctr.SentBytesClass(metrics.Query)
	tr.ReplyBytes = ctr.SentBytesClass(metrics.Reply)
	tr.AggReplyBytes = ctr.SentBytesClass(metrics.AggReply)
	tr.Energy = metrics.DefaultEnergyModel().Energy(ctr, cfg.N, float64(cfg.Duration)/1000)
	for _, c := range metrics.Classes() {
		if c == metrics.Beacon {
			continue
		}
		tr.RootSent += ctr.SentBy(0, c)
		tr.RootRecv += ctr.ReceivedBy(0, c)
	}
	return tr, nil
}

// aggGroundTruth evaluates the aggregate's true answer over every
// reading currently stored anywhere (node stores plus the base's)
// matching the value and time ranges. ok is false when nothing
// matches (and for COUNT the zero answer is still valid).
func aggGroundTruth(base *core.Base, nodes []*core.Node, q query.AggQuery) (float64, bool) {
	var part query.Partial
	var values []int
	wantValues := q.Op == query.OpQuantile
	scan := func(buf *storage.DataBuffer) {
		buf.Scan(func(r storage.Reading) bool {
			if r.Time < int64(q.TimeLo) || r.Time > int64(q.TimeHi) ||
				r.Value < q.ValueLo || r.Value > q.ValueHi {
				return true
			}
			part.Add(r.Value)
			if wantValues {
				values = append(values, r.Value)
			}
			return true
		})
	}
	scan(base.Store())
	for _, n := range nodes {
		if n != nil {
			scan(n.Store())
		}
	}
	if wantValues {
		if len(values) == 0 {
			return 0, false
		}
		sort.Ints(values)
		idx := int(q.Quantile * float64(len(values)))
		if idx >= len(values) {
			idx = len(values) - 1
		}
		return float64(values[idx]), true
	}
	return part.Answer(q.Op)
}

// windowInterval resolves the effective transition-metrics sampling
// width: the explicit setting, or 30 s when a dynamics script is
// present, else 0 (no timeline).
func (c Config) windowInterval() netsim.Time {
	if c.WindowInterval > 0 {
		return c.WindowInterval
	}
	if !c.Dynamics.Empty() || c.Faults != "" {
		return 30 * netsim.Second
	}
	return 0
}

func buildTopology(name string, n int, seed int64) (*netsim.Topology, error) {
	switch name {
	case "", "uniform":
		side := math.Sqrt(float64(n)) * 1.008
		return netsim.UniformTopology(n, side, 3.5, seed), nil
	case "testbed":
		return netsim.TestbedTopology(n, seed), nil
	case "grid":
		return netsim.GridTopology(n, 2.5, seed), nil
	}
	return nil, fmt.Errorf("exp: unknown topology %q", name)
}

// runAnalyticalHash evaluates the HASH policy analytically over the
// same topologies and workload volumes, as the paper does ("we
// evaluate the cost of this HASH approach analytically"). The pure
// ETX model knows nothing about retransmissions, collisions or queue
// drops, so its raw numbers are not comparable with simulated
// policies; a simulated BASE run over the same topology calibrates
// the radio-inflation factor, exactly as the paper's analytical HASH
// lived inside its simulator's cost conditions.
func runAnalyticalHash(cfg Config) (Result, error) {
	res := Result{Config: cfg}
	src, err := workload.NewSource(cfg.Source, cfg.N, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	lo, hi := src.Domain()
	active := cfg.Duration - cfg.Warmup
	w := policy.HashWorkload{
		SamplesPerNode: float64(active) / float64(cfg.SampleInterval),
		QueryWidth:     0.03 * float64(hi-lo+1), // mean of the 1–5% widths
	}
	if cfg.QueryInterval > 0 {
		w.Queries = float64(active) / float64(cfg.QueryInterval)
	}
	// Calibration run: simulated BASE under identical conditions.
	baseCfg := cfg
	baseCfg.Policy = policy.Base
	baseRes, err := Run(baseCfg)
	if err != nil {
		return Result{}, err
	}
	var sum metrics.Breakdown
	for t := 0; t < cfg.Trials; t++ {
		topo, err := buildTopology(cfg.Topology, cfg.N, cfg.Seed+int64(t)*7919)
		if err != nil {
			return Result{}, err
		}
		b := policy.AnalyticalHash(topo, w)
		factor := 1.0
		if ab := policy.AnalyticalBaseData(topo, w); ab > 0 && t < len(baseRes.PerTrial) {
			factor = baseRes.PerTrial[t].Breakdown.Data / ab
		}
		b = b.Scale(factor)
		res.PerTrial = append(res.PerTrial, TrialResult{Breakdown: b})
		sum = sum.Add(b)
	}
	res.Breakdown = sum.Scale(1.0 / float64(cfg.Trials))
	return res, nil
}

func addStats(dst, src *core.RunStats) {
	dst.Produced += src.Produced
	dst.StoredLocal += src.StoredLocal
	dst.StoredAtOwner += src.StoredAtOwner
	dst.StoredAtBase += src.StoredAtBase
	dst.LostData += src.LostData
	dst.StoredUnique += src.StoredUnique
	dst.QueriesIssued += src.QueriesIssued
	dst.RepliesExpected += src.RepliesExpected
	dst.QueriesHeard += src.QueriesHeard
	dst.RepliesSent += src.RepliesSent
	dst.RepliesForwarded += src.RepliesForwarded
	dst.RepliesReceived += src.RepliesReceived
	dst.TuplesReturned += src.TuplesReturned
	dst.SummariesSent += src.SummariesSent
	dst.SummariesReceived += src.SummariesReceived
	dst.IndexesBuilt += src.IndexesBuilt
	dst.IndexesSuppressed += src.IndexesSuppressed
	dst.SummaryAnswered += src.SummaryAnswered
	dst.ReindexValues += src.ReindexValues
	dst.ReindexRecomputed += src.ReindexRecomputed
	dst.ReindexSPTSources += src.ReindexSPTSources
	dst.ReindexFull += src.ReindexFull
	dst.ReindexWallNanos += src.ReindexWallNanos
	dst.AggQueriesIssued += src.AggQueriesIssued
	dst.AggQueriesHeard += src.AggQueriesHeard
	dst.AggRepliesSent += src.AggRepliesSent
	dst.AggPartialsReceived += src.AggPartialsReceived
	dst.AggCombined += src.AggCombined
	dst.AggContributors += src.AggContributors
	dst.AggAnswered += src.AggAnswered
	dst.AggFirstAnswerMS += src.AggFirstAnswerMS
	dst.PlanSummaryChosen += src.PlanSummaryChosen
	dst.PlanAggChosen += src.PlanAggChosen
	dst.PlanTupleChosen += src.PlanTupleChosen
	dst.PlanFloodChosen += src.PlanFloodChosen
	dst.QueryRetries += src.QueryRetries
	dst.QueryVerdictComplete += src.QueryVerdictComplete
	dst.QueryVerdictPartial += src.QueryVerdictPartial
	dst.QueryVerdictDegraded += src.QueryVerdictDegraded
	dst.QueryVerdictFailed += src.QueryVerdictFailed
	dst.DegradedAnswers += src.DegradedAnswers
}
