package exp

import (
	"os"
	"testing"
)

// TestMain force-enables the whole-run invariant checker
// (internal/invariant) for every experiment this test binary runs —
// conservation of readings, no aggregate double-count, index
// monotonicity — so each existing exp test doubles as an invariant
// test. Violations surface as Run errors and fail whichever test
// triggered them.
func TestMain(m *testing.M) {
	ForceInvariants = true
	os.Exit(m.Run())
}
