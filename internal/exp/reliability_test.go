package exp

import (
	"testing"

	"scoop/internal/netsim"
)

// completeness is the fraction of settled queries that produced a
// usable answer: fully collected (complete) or answered from retained
// summaries with an honest error bound (degraded). The invariant
// checker guarantees every journalled query settles exactly once, so
// the verdict counters sum to the number of issued queries.
func completeness(r Result) float64 {
	good := r.Stats.QueryVerdictComplete + r.Stats.QueryVerdictDegraded
	total := good + r.Stats.QueryVerdictPartial + r.Stats.QueryVerdictFailed
	if total == 0 {
		return 0
	}
	return float64(good) / float64(total)
}

// TestReliabilityAcceptance is the headline robustness claim of
// DESIGN.md §19: under 40% ambient link loss plus a regional blackout
// (a quarter of the run with a third of the network unreachable), the
// deadline-retry and summary-degradation machinery lifts query
// completeness to at least 0.95, at no more than 2x the query-class
// bytes of the fault-free run in the same lossy environment. A third
// run with the reliability layer disabled pins the counterfactual: the
// same faults without retries deliver barely two thirds of the
// expected replies.
func TestReliabilityAcceptance(t *testing.T) {
	base := Default()
	base.N = 20
	base.Duration = 30 * netsim.Minute
	base.Warmup = 2 * netsim.Minute
	base.Trials = 1
	base.Seed = 17
	base.CheckInvariants = true
	base.AggRatio = 0.5
	base.LinkLoss = 0.4
	base.QueryDeadline = 8 * netsim.Second
	base.QueryRetryMax = 7

	faulted := base
	faulted.Faults = "blackout"

	rel, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if c := completeness(rel); c < 0.95 {
		t.Errorf("completeness %.3f under loss+blackout, want >= 0.95 "+
			"(complete=%d partial=%d degraded=%d failed=%d)",
			c, rel.Stats.QueryVerdictComplete, rel.Stats.QueryVerdictPartial,
			rel.Stats.QueryVerdictDegraded, rel.Stats.QueryVerdictFailed)
	}
	if rel.Stats.QueryRetries == 0 {
		t.Error("no retries fired under 40% loss plus blackout")
	}

	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Breakdown.Query <= 0 {
		t.Fatal("fault-free run sent no query bytes")
	}
	if ratio := rel.Breakdown.Query / clean.Breakdown.Query; ratio > 2 {
		t.Errorf("query-class bytes %.0f are %.2fx the fault-free %.0f, budget is 2x",
			rel.Breakdown.Query, ratio, clean.Breakdown.Query)
	}

	noRetry := faulted
	noRetry.QueryDeadline = 0
	noRetry.QueryRetryMax = 0
	off, err := Run(noRetry)
	if err != nil {
		t.Fatal(err)
	}
	lossy := float64(off.Stats.RepliesReceived) / float64(off.Stats.RepliesExpected)
	lifted := float64(rel.Stats.RepliesReceived) / float64(rel.Stats.RepliesExpected)
	if lifted <= lossy {
		t.Errorf("retries did not lift reply delivery: %.3f with reliability vs %.3f without",
			lifted, lossy)
	}
}
