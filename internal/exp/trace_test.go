package exp

import (
	"bytes"
	"runtime"
	"testing"

	"scoop/internal/dynamics"
	"scoop/internal/netsim"
	"scoop/internal/trace"
)

// tracedConfig is a small cell exercising every emission site: agg
// queries (planner verdicts, combining), churn (reboot purges,
// node-down/restart), reindexing and chunk dissemination.
func tracedConfig() Config {
	cfg := Default()
	cfg.N = 20
	cfg.Duration = 6 * netsim.Minute
	cfg.Warmup = 2 * netsim.Minute
	cfg.Trials = 2
	cfg.AggRatio = 0.5
	s := dynamics.Standard(cfg.N, cfg.Warmup, cfg.Duration, 0.15, 0.3, 7)
	cfg.Dynamics = &s
	return cfg
}

// traceRun executes the cell with a JSONL sink on trial 0 and returns
// the exact bytes written.
func traceRun(t *testing.T, cfg Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg.Trace = true
	cfg.TraceSinks = func(trial int) []trace.Sink {
		if trial != 0 {
			return nil
		}
		return []trace.Sink{trace.NewJSONL(&buf)}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceByteIdentical pins the flight recorder's determinism
// contract: the JSONL stream is a pure function of the configuration
// and seed — identical across repeated runs and across GOMAXPROCS
// settings (trial goroutine interleaving must not leak into trial 0's
// single-threaded event order).
func TestTraceByteIdentical(t *testing.T) {
	cfg := tracedConfig()
	first := traceRun(t, cfg)
	if len(first) == 0 {
		t.Fatal("traced run produced no events")
	}
	if again := traceRun(t, cfg); !bytes.Equal(first, again) {
		t.Fatal("trace differs between identical runs")
	}
	prev := runtime.GOMAXPROCS(1)
	serial := traceRun(t, cfg)
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(first, serial) {
		t.Fatal("trace differs between GOMAXPROCS settings")
	}
}

// TestTraceRingDefault checks the no-sink path: events land in the
// per-trial ring surfaced on the TrialResult.
func TestTraceRingDefault(t *testing.T) {
	cfg := tracedConfig()
	cfg.Trials = 1
	cfg.Trace = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring := res.PerTrial[0].Trace
	if ring == nil || ring.Total() == 0 {
		t.Fatal("default trace ring missing or empty")
	}
	evs := ring.Events()
	if len(evs) == 0 {
		t.Fatal("ring returned no events")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatalf("ring events out of time order at %d: %d < %d", i, evs[i].T, evs[i-1].T)
		}
	}
}

// TestTraceReadingFollow narrows a traced run to one producer's
// readings and checks nothing else leaks through.
func TestTraceReadingFollow(t *testing.T) {
	cfg := tracedConfig()
	cfg.Trials = 1
	cfg.Trace = true
	cfg.TraceReading = &trace.ReadingID{Producer: 3, Time: -1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs := res.PerTrial[0].Trace.Events()
	if len(evs) == 0 {
		t.Fatal("follow filter dropped everything")
	}
	for _, e := range evs {
		if !e.Kind.CarriesReading() || e.Producer != 3 {
			t.Fatalf("non-matching event passed the follow filter: %+v", e)
		}
	}
}
