package exp

import (
	"strings"
	"testing"

	"scoop/internal/dynamics"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
)

// driftConfig is the shared shape of the drift-recovery experiments:
// UNIQUE data (node i produces value i) with the whole distribution
// abruptly shifted 30% of the domain up at minute 15. Pre-drift the
// index stores everything at its producer; post-drift every reading's
// value belongs to a different node under the frozen index, so data
// cost jumps and stays up — unless periodic reindexing re-places
// ownership from the post-drift statistics.
func driftConfig(disableReindex bool) Config {
	cfg := Default()
	cfg.Source = "unique"
	cfg.N = 32
	cfg.Trials = 1
	cfg.Duration = 32 * netsim.Minute
	cfg.Warmup = 5 * netsim.Minute
	cfg.ReindexInterval = 2 * netsim.Minute
	cfg.DisableReindex = disableReindex
	cfg.WindowInterval = 2 * netsim.Minute
	cfg.Seed = 6
	script := dynamics.DataDrift(15*netsim.Minute, 15*netsim.Minute, 1, 0.30)
	cfg.Dynamics = &script
	return cfg
}

// The acceptance experiment for the dynamics subsystem: with drift
// enabled and ReindexInterval set, Scoop's post-drift data cost
// measurably recovers toward its pre-drift level; with reindexing
// disabled (the first index frozen) it does not. Fully deterministic
// for the fixed seed.
func TestDriftRecoveryWithReindex(t *testing.T) {
	run := func(disable bool) metrics.Timeline {
		res, err := Run(driftConfig(disable))
		if err != nil {
			t.Fatal(err)
		}
		return res.PerTrial[0].Timeline
	}
	adaptive := run(false)
	frozen := run(true)

	cost := metrics.TransitionWindow.CostPerReading
	// Steady pre-drift baseline: windows after the first index is up
	// (≈ minute 9) and before the drift at minute 15.
	pre := adaptive.MeanOver(int64(9*netsim.Minute), int64(15*netsim.Minute), cost)
	adaptiveTail := adaptive.TailMean(3, cost)
	frozenTail := frozen.TailMean(3, cost)
	t.Logf("cost/reading: pre=%.3f adaptiveTail=%.3f frozenTail=%.3f", pre, adaptiveTail, frozenTail)

	// Reindexing pulls the tail back near the pre-drift level…
	if adaptiveTail > pre+0.15 {
		t.Errorf("adaptive tail cost %.3f did not recover toward pre-drift %.3f", adaptiveTail, pre)
	}
	// …while the frozen index stays expensive.
	if frozenTail < 2*adaptiveTail {
		t.Errorf("frozen tail cost %.3f not clearly above adaptive %.3f", frozenTail, adaptiveTail)
	}
	if frozenTail < pre+0.2 {
		t.Errorf("frozen tail cost %.3f unexpectedly recovered (pre %.3f)", frozenTail, pre)
	}

	// Misroutes: the adaptive run re-learns ownership, the frozen run
	// keeps washing readings up at the base.
	mis := metrics.TransitionWindow.MisrouteRatio
	if a := adaptive.TailMean(3, mis); a > 0.1 {
		t.Errorf("adaptive tail misroute ratio %.3f, want ~0", a)
	}
	if f := frozen.TailMean(3, mis); f < 0.25 {
		t.Errorf("frozen tail misroute ratio %.3f, want elevated", f)
	}

	// The summaries agree: only the adaptive run reconverges.
	sa, ok := adaptive.Summarize(0.05)
	if !ok {
		t.Fatal("adaptive timeline did not summarize")
	}
	if sa.ReconvergenceMS < 0 {
		t.Error("adaptive run never reconverged")
	}
	sf, ok := frozen.Summarize(0.05)
	if !ok {
		t.Fatal("frozen timeline did not summarize")
	}
	if sf.CostAfter <= sa.CostAfter {
		t.Errorf("frozen post-drift cost %.3f not above adaptive %.3f", sf.CostAfter, sa.CostAfter)
	}
}

// Membership churn: nodes die and reboot mid-run; the run must
// complete, record the perturbation marks, and keep delivering data
// after the churn window closes.
func TestChurnRunsAndRecovers(t *testing.T) {
	cfg := Default()
	cfg.Source = "real"
	cfg.N = 24
	cfg.Trials = 1
	cfg.Duration = 26 * netsim.Minute
	cfg.Warmup = 5 * netsim.Minute
	cfg.ReindexInterval = 2 * netsim.Minute
	cfg.Seed = 6
	script := dynamics.Churn(cfg.N, 10*netsim.Minute, 16*netsim.Minute,
		90*netsim.Second, 45*netsim.Second, 0.15, 99)
	cfg.Dynamics = &script
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := res.PerTrial[0].Timeline
	if len(tl.Marks) != len(script.Events) {
		t.Fatalf("marks = %d, want %d (every churn event applied)", len(tl.Marks), len(script.Events))
	}
	if len(tl.Windows) == 0 {
		t.Fatal("no transition windows recorded")
	}
	s, ok := tl.Summarize(0.10)
	if !ok {
		t.Fatal("timeline did not summarize")
	}
	if s.DeliveryBefore < 0.7 {
		t.Fatalf("pre-churn delivery %.2f implausibly low", s.DeliveryBefore)
	}
	// After the churn window the network must deliver again.
	if s.DeliveryAfter < 0.75*s.DeliveryBefore {
		t.Errorf("post-churn delivery %.2f never recovered (before %.2f)", s.DeliveryAfter, s.DeliveryBefore)
	}
	if res.Stats.Produced == 0 {
		t.Fatal("no readings produced")
	}
}

// Perturbed runs stay deterministic for a fixed seed — the whole
// point of scripting dynamics instead of randomizing them inline.
func TestDynamicsDeterministic(t *testing.T) {
	run := func() Result {
		cfg := driftConfig(false)
		cfg.Duration = 20 * netsim.Minute
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Breakdown != b.Breakdown {
		t.Fatalf("breakdowns differ: %v vs %v", a.Breakdown, b.Breakdown)
	}
	ta, tb := a.PerTrial[0].Timeline, b.PerTrial[0].Timeline
	if len(ta.Windows) != len(tb.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(ta.Windows), len(tb.Windows))
	}
	for i := range ta.Windows {
		if ta.Windows[i] != tb.Windows[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, ta.Windows[i], tb.Windows[i])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"small-n", func(c *Config) { c.N = 1 }, "too small"},
		{"loss-low", func(c *Config) { c.LinkLoss = -0.1 }, "link loss"},
		{"loss-high", func(c *Config) { c.LinkLoss = 1 }, "link loss"},
		{"no-duration", func(c *Config) { c.Duration = 0 }, "duration"},
		{"warmup-exceeds", func(c *Config) { c.Warmup = c.Duration }, "warmup"},
		{"no-sample", func(c *Config) { c.SampleInterval = 0 }, "sample interval"},
		{"neg-query", func(c *Config) { c.QueryInterval = -1 }, "query interval"},
		{"nodepct-high", func(c *Config) { c.NodePct = 1.5 }, "node-query"},
		{"neg-reindex", func(c *Config) { c.ReindexInterval = -1 }, "reindex"},
		{"neg-window", func(c *Config) { c.WindowInterval = -1 }, "window"},
		{"bad-script", func(c *Config) {
			s := dynamics.Script{Events: []dynamics.Event{{At: 0, Kind: dynamics.NodeDown, Node: 0}}}
			c.Dynamics = &s
		}, "non-base"},
		{"hash-dynamics", func(c *Config) {
			c.Policy = policy.Hash
			s := dynamics.DataDrift(c.Warmup, c.Warmup, 1, 0.3)
			c.Dynamics = &s
		}, "hashsim"},
	}
	for _, c := range bad {
		cfg := Default()
		c.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: error expected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		// Run must reject it too, not silently simulate nonsense.
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", c.name)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}
