package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"scoop/internal/metrics"
)

// This file is a minimal, dependency-free Prometheus text-exposition
// writer (version 0.0.4 of the format). Output ordering is fully
// deterministic — families sort by name, samples by their rendered
// label signature — so expositions diff cleanly across runs and can be
// committed as test goldens.

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one metric line: the owning family's name plus labels and
// a value.
type Sample struct {
	Labels []Label
	Value  float64
}

// Family is one metric family: a # HELP / # TYPE header followed by
// its samples.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | untyped
	Samples []Sample
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline only.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// signature renders a sample's label set as it will appear on the
// wire, which doubles as its deterministic sort key.
func (s *Sample) signature() string {
	if len(s.Labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteExposition renders the families in Prometheus text format.
// Families are sorted by name and samples by label signature, so the
// output is byte-stable regardless of construction order.
func WriteExposition(out io.Writer, families []Family) error {
	fams := make([]Family, len(families))
	copy(fams, families)
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	for _, f := range fams {
		typ := f.Type
		if typ == "" {
			typ = "untyped"
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(out, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(out, "# TYPE %s %s\n", f.Name, typ); err != nil {
			return err
		}
		samples := make([]Sample, len(f.Samples))
		copy(samples, f.Samples)
		sort.SliceStable(samples, func(i, j int) bool {
			return samples[i].signature() < samples[j].signature()
		})
		for i := range samples {
			s := &samples[i]
			if _, err := fmt.Fprintf(out, "%s%s %s\n", f.Name, s.signature(), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// counterFamily builds a single-sample unlabelled counter family.
func counterFamily(name, help string, v int64) Family {
	return Family{Name: name, Help: help, Type: "counter",
		Samples: []Sample{{Value: float64(v)}}}
}

// Families aggregates the series' windows into Prometheus counter
// families under the given name prefix (e.g. "scoop_"). Per-class and
// per-cause breakdowns become labelled samples; zero-valued labelled
// samples are omitted so expositions stay small, but unlabelled totals
// always appear.
func (s *Series) Families(prefix string) []Family {
	var total Window
	for i := range s.windows {
		w := &s.windows[i]
		for c := 0; c < metrics.NumClasses; c++ {
			total.SentByClass[c] += w.SentByClass[c]
			total.BytesByClass[c] += w.BytesByClass[c]
		}
		for c := 0; c < metrics.NumDropCauses; c++ {
			total.DropsByCause[c] += w.DropsByCause[c]
		}
		total.Received += w.Received
		total.Snoops += w.Snoops
		total.Sampled += w.Sampled
		total.Stored += w.Stored
		total.Lost += w.Lost
		total.Delivered += w.Delivered
		total.QueriesIssued += w.QueriesIssued
		total.QueriesAnswered += w.QueriesAnswered
		total.Reindexes += w.Reindexes
		total.ReindexValues += w.ReindexValues
		total.ReindexRecomputed += w.ReindexRecomputed
	}

	sent := Family{Name: prefix + "packets_sent_total",
		Help: "Transmission attempts by message class.", Type: "counter"}
	bytes := Family{Name: prefix + "bytes_sent_total",
		Help: "Transmitted bytes by message class.", Type: "counter"}
	for _, c := range metrics.Classes() {
		if v := total.SentByClass[c]; v != 0 {
			sent.Samples = append(sent.Samples,
				Sample{Labels: []Label{{"class", c.String()}}, Value: float64(v)})
		}
		if v := total.BytesByClass[c]; v != 0 {
			bytes.Samples = append(bytes.Samples,
				Sample{Labels: []Label{{"class", c.String()}}, Value: float64(v)})
		}
	}
	drops := Family{Name: prefix + "packet_drops_total",
		Help: "Packets dropped by cause.", Type: "counter"}
	for _, c := range metrics.AllDropCauses() {
		if v := total.DropsByCause[c]; v != 0 {
			drops.Samples = append(drops.Samples,
				Sample{Labels: []Label{{"cause", c.String()}}, Value: float64(v)})
		}
	}

	return []Family{
		sent,
		bytes,
		counterFamily(prefix+"packets_received_total",
			"Link-layer deliveries to addressees.", total.Received),
		counterFamily(prefix+"packets_snooped_total",
			"Frames overheard by non-addressees.", total.Snoops),
		drops,
		counterFamily(prefix+"readings_sampled_total",
			"Sensor readings sampled.", total.Sampled),
		counterFamily(prefix+"readings_stored_total",
			"Reading storage events.", total.Stored),
		counterFamily(prefix+"readings_lost_total",
			"Readings loss-accounted.", total.Lost),
		counterFamily(prefix+"readings_delivered_total",
			"Readings carried to the base by replies.", total.Delivered),
		counterFamily(prefix+"queries_issued_total",
			"Queries issued by the basestation.", total.QueriesIssued),
		counterFamily(prefix+"queries_answered_total",
			"Queries answered.", total.QueriesAnswered),
		counterFamily(prefix+"reindexes_total",
			"Basestation index rebuilds.", total.Reindexes),
		counterFamily(prefix+"reindex_values_total",
			"Value-domain entries examined across rebuilds.", total.ReindexValues),
		counterFamily(prefix+"reindex_recomputed_total",
			"Best-owner searches re-run across rebuilds.", total.ReindexRecomputed),
	}
}
