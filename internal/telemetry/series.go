// Package telemetry aggregates flight-recorder events into fixed-width
// sim-time windows: delivery rate, bytes by message class, drops by
// cause, reading throughput and reindex cost per window. A Series is a
// trace.Sink, so it can ride a live simulation next to other sinks; it
// is also the substrate a streaming exporter (ROADMAP item 3, scoopd)
// can publish from, since every window is a plain counter snapshot.
//
// Everything here is deterministic: windows are keyed by integer
// division of the virtual timestamp, counters are integers, and
// rendering iterates slices in index order.
package telemetry

import (
	"fmt"
	"io"

	"scoop/internal/metrics"
	"scoop/internal/trace"
)

// Window accumulates counters for one [Start,End) sim-time interval.
type Window struct {
	Start int64 // inclusive, virtual ms
	End   int64 // exclusive, virtual ms

	SentByClass  [metrics.NumClasses]int64 // transmissions per class
	BytesByClass [metrics.NumClasses]int64 // transmitted bytes per class
	Received     int64                     // link-layer deliveries to addressees
	Snoops       int64                     // frames overheard by non-addressees

	DropsByCause [metrics.NumDropCauses]int64

	Sampled   int64 // readings sampled
	Stored    int64 // reading storage events
	Lost      int64 // readings loss-accounted
	Delivered int64 // readings carried to the base by replies

	QueriesIssued   int64
	QueriesAnswered int64

	Reindexes         int64 // index rebuilds finishing in this window
	ReindexValues     int64 // value-domain entries examined
	ReindexRecomputed int64 // best-owner searches re-run
}

// Sent returns total transmissions in the window (all classes).
func (w *Window) Sent() int64 {
	var t int64
	for c := 0; c < metrics.NumClasses; c++ {
		t += w.SentByClass[c]
	}
	return t
}

// Bytes returns total transmitted bytes in the window.
func (w *Window) Bytes() int64 {
	var t int64
	for c := 0; c < metrics.NumClasses; c++ {
		t += w.BytesByClass[c]
	}
	return t
}

// Drops returns total packet drops in the window.
func (w *Window) Drops() int64 {
	var t int64
	for c := 0; c < metrics.NumDropCauses; c++ {
		t += w.DropsByCause[c]
	}
	return t
}

// DeliveryRate returns addressee deliveries per transmission — the
// link-layer delivery ratio for the window (0 when nothing was sent).
func (w *Window) DeliveryRate() float64 {
	sent := w.Sent()
	if sent == 0 {
		return 0
	}
	return float64(w.Received) / float64(sent)
}

// Series buckets trace events into contiguous windows of fixed width.
// The zero value is not usable; use NewSeries.
type Series struct {
	width   int64
	windows []Window
}

// NewSeries returns a Series with the given window width in virtual
// milliseconds (minimum 1).
func NewSeries(width int64) *Series {
	if width < 1 {
		width = 1
	}
	return &Series{width: width}
}

// Width returns the window width in virtual milliseconds.
func (s *Series) Width() int64 { return s.width }

// window returns the bucket covering time t, growing the series (with
// empty intermediate windows) as needed.
func (s *Series) window(t int64) *Window {
	if t < 0 {
		t = 0
	}
	idx := int(t / s.width)
	for len(s.windows) <= idx {
		start := int64(len(s.windows)) * s.width
		s.windows = append(s.windows, Window{Start: start, End: start + s.width})
	}
	return &s.windows[idx]
}

// Record implements trace.Sink.
func (s *Series) Record(e trace.Event) {
	w := s.window(e.T)
	switch e.Kind {
	case trace.PacketSend:
		w.SentByClass[e.Class]++
		w.BytesByClass[e.Class] += int64(e.Size)
	case trace.PacketRecv:
		w.Received++
	case trace.PacketSnoop:
		w.Snoops++
	case trace.PacketDrop, trace.PacketPurge:
		w.DropsByCause[e.Cause]++
	case trace.ReadingSampled:
		w.Sampled++
	case trace.ReadingStored:
		w.Stored++
	case trace.ReadingLost:
		w.Lost++
	case trace.ReadingDelivered:
		w.Delivered++
	case trace.QueryIssued:
		w.QueriesIssued++
	case trace.QueryAnswered:
		w.QueriesAnswered++
	case trace.ReindexEnd:
		w.Reindexes++
		w.ReindexValues += int64(e.Size)
		w.ReindexRecomputed += e.Value
	}
}

// Close implements trace.Sink.
func (s *Series) Close() error { return nil }

// Windows returns the accumulated windows in time order. The slice is
// the Series' own backing store; callers must not mutate it.
func (s *Series) Windows() []Window { return s.windows }

// WriteTable renders the series as an aligned text table, one row per
// window — the scoopflight -window view.
func (s *Series) WriteTable(out io.Writer) error {
	if _, err := fmt.Fprintf(out, "%10s %7s %7s %6s %7s %9s %7s %7s %7s %7s %8s\n",
		"window", "sent", "recv", "rate", "drops", "bytes", "sampled", "stored", "lost", "deliv", "reindex"); err != nil {
		return err
	}
	for i := range s.windows {
		w := &s.windows[i]
		if _, err := fmt.Fprintf(out, "%9ds %7d %7d %6.2f %7d %9d %7d %7d %7d %7d %8d\n",
			w.Start/1000, w.Sent(), w.Received, w.DeliveryRate(), w.Drops(),
			w.Bytes(), w.Sampled, w.Stored, w.Lost, w.Delivered, w.ReindexRecomputed); err != nil {
			return err
		}
	}
	return nil
}
