package telemetry

import (
	"strings"
	"testing"

	"scoop/internal/metrics"
	"scoop/internal/trace"
)

func TestWriteExpositionDeterministicOrder(t *testing.T) {
	fams := []Family{
		{Name: "zebra_total", Type: "counter", Samples: []Sample{{Value: 1}}},
		{Name: "alpha_total", Help: "first", Type: "counter", Samples: []Sample{
			{Labels: []Label{{"class", "query"}}, Value: 2},
			{Labels: []Label{{"class", "data"}}, Value: 7},
		}},
	}
	render := func() string {
		var sb strings.Builder
		if err := WriteExposition(&sb, fams); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	got := render()
	want := `# HELP alpha_total first
# TYPE alpha_total counter
alpha_total{class="data"} 7
alpha_total{class="query"} 2
# TYPE zebra_total counter
zebra_total 1
`
	if got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}
	// Re-rendering must be byte-identical, and must not have mutated
	// the caller's slices.
	if again := render(); again != got {
		t.Fatalf("second render differs:\n%s", again)
	}
	if fams[0].Name != "zebra_total" || fams[1].Samples[0].Labels[0].Value != "query" {
		t.Fatal("WriteExposition mutated its input")
	}
}

func TestWriteExpositionEscaping(t *testing.T) {
	fams := []Family{{
		Name: "m", Help: "line1\nline2 back\\slash", Type: "gauge",
		Samples: []Sample{{Labels: []Label{{"path", "a\\b\"c\nd"}}, Value: 0.5}},
	}}
	var sb strings.Builder
	if err := WriteExposition(&sb, fams); err != nil {
		t.Fatal(err)
	}
	want := "# HELP m line1\\nline2 back\\\\slash\n# TYPE m gauge\n" +
		"m{path=\"a\\\\b\\\"c\\nd\"} 0.5\n"
	if sb.String() != want {
		t.Fatalf("exposition:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestSeriesFamilies(t *testing.T) {
	s := NewSeries(1000)
	s.Record(trace.Event{T: 10, Kind: trace.PacketSend, Class: metrics.Data, Size: 30})
	s.Record(trace.Event{T: 1500, Kind: trace.PacketSend, Class: metrics.Data, Size: 12})
	s.Record(trace.Event{T: 1600, Kind: trace.PacketRecv})
	s.Record(trace.Event{T: 1700, Kind: trace.PacketDrop, Cause: metrics.DropQueue})
	s.Record(trace.Event{T: 1800, Kind: trace.ReadingSampled})
	s.Record(trace.Event{T: 1900, Kind: trace.QueryIssued})

	var sb strings.Builder
	if err := WriteExposition(&sb, s.Families("scoop_")); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`scoop_packets_sent_total{class="data"} 2`,
		`scoop_bytes_sent_total{class="data"} 42`,
		`scoop_packets_received_total 1`,
		`scoop_packet_drops_total{cause="queue"} 1`,
		`scoop_readings_sampled_total 1`,
		`scoop_queries_issued_total 1`,
		`scoop_queries_answered_total 0`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
	// Zero-valued labelled samples are omitted entirely.
	if strings.Contains(out, `class="beacon"`) {
		t.Fatalf("zero-valued labelled sample present:\n%s", out)
	}
}
