package telemetry

import (
	"strings"
	"testing"

	"scoop/internal/metrics"
	"scoop/internal/trace"
)

func TestSeriesBucketsByWindow(t *testing.T) {
	s := NewSeries(1000)
	s.Record(trace.Event{T: 10, Kind: trace.PacketSend, Class: metrics.Data, Size: 30})
	s.Record(trace.Event{T: 900, Kind: trace.PacketRecv, Class: metrics.Data, Size: 30})
	s.Record(trace.Event{T: 2500, Kind: trace.PacketSend, Class: metrics.Query, Size: 24})
	s.Record(trace.Event{T: 2600, Kind: trace.PacketDrop, Cause: metrics.DropCollision})
	ws := s.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3 (contiguous with gap filled)", len(ws))
	}
	if ws[0].Start != 0 || ws[0].End != 1000 || ws[2].Start != 2000 {
		t.Fatalf("window bounds wrong: %+v", ws)
	}
	if ws[0].SentByClass[metrics.Data] != 1 || ws[0].Received != 1 {
		t.Fatalf("window 0 = %+v", ws[0])
	}
	if ws[1].Sent() != 0 {
		t.Fatal("gap window not empty")
	}
	if ws[2].SentByClass[metrics.Query] != 1 || ws[2].DropsByCause[metrics.DropCollision] != 1 {
		t.Fatalf("window 2 = %+v", ws[2])
	}
	if ws[2].Bytes() != 24 || ws[2].Drops() != 1 {
		t.Fatalf("window 2 totals wrong: bytes=%d drops=%d", ws[2].Bytes(), ws[2].Drops())
	}
}

func TestSeriesReadingAndReindexCounters(t *testing.T) {
	s := NewSeries(60_000)
	s.Record(trace.Event{T: 1, Kind: trace.ReadingSampled, Producer: 3, SampleT: 1})
	s.Record(trace.Event{T: 2, Kind: trace.ReadingStored, Producer: 3, SampleT: 1})
	s.Record(trace.Event{T: 3, Kind: trace.ReadingLost, Producer: 4, SampleT: 2})
	s.Record(trace.Event{T: 4, Kind: trace.ReadingDelivered, Producer: 3, SampleT: 1})
	s.Record(trace.Event{T: 5, Kind: trace.QueryIssued, ID: 1})
	s.Record(trace.Event{T: 6, Kind: trace.QueryAnswered, ID: 1, Value: 2})
	s.Record(trace.Event{T: 7, Kind: trace.ReindexEnd, Size: 100, Value: 17, Aux: 3})
	w := s.Windows()[0]
	if w.Sampled != 1 || w.Stored != 1 || w.Lost != 1 || w.Delivered != 1 {
		t.Fatalf("reading counters = %+v", w)
	}
	if w.QueriesIssued != 1 || w.QueriesAnswered != 1 {
		t.Fatalf("query counters = %+v", w)
	}
	if w.Reindexes != 1 || w.ReindexValues != 100 || w.ReindexRecomputed != 17 {
		t.Fatalf("reindex counters = %+v", w)
	}
}

func TestDeliveryRate(t *testing.T) {
	s := NewSeries(1000)
	var w Window
	if w.DeliveryRate() != 0 {
		t.Fatal("empty window rate must be 0")
	}
	s.Record(trace.Event{T: 0, Kind: trace.PacketSend, Class: metrics.Data, Size: 30})
	s.Record(trace.Event{T: 1, Kind: trace.PacketSend, Class: metrics.Data, Size: 30})
	s.Record(trace.Event{T: 2, Kind: trace.PacketRecv, Class: metrics.Data, Size: 30})
	if got := s.Windows()[0].DeliveryRate(); got != 0.5 {
		t.Fatalf("rate = %v, want 0.5", got)
	}
}

func TestSeriesAsRecorderSink(t *testing.T) {
	s := NewSeries(1000)
	clock := int64(0)
	rec := trace.New(func() int64 { return clock }, s)
	rec.Emit(trace.Event{Kind: trace.PacketSend, Node: 1, Class: metrics.Beacon, Size: 12})
	clock = 1500
	rec.Emit(trace.Event{Kind: trace.PacketSnoop, Node: 2, Peer: 1, Class: metrics.Beacon, Size: 12})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	ws := s.Windows()
	if len(ws) != 2 || ws[0].SentByClass[metrics.Beacon] != 1 || ws[1].Snoops != 1 {
		t.Fatalf("windows = %+v", ws)
	}
}

// Windows are [Start,End): an event stamped exactly on a window
// boundary belongs to the later window.
func TestSeriesWindowBoundary(t *testing.T) {
	s := NewSeries(1000)
	s.Record(trace.Event{T: 999, Kind: trace.PacketRecv})
	s.Record(trace.Event{T: 1000, Kind: trace.PacketRecv}) // exactly on the edge
	ws := s.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if ws[0].Received != 1 || ws[1].Received != 1 {
		t.Fatalf("boundary event in wrong window: %+v", ws)
	}
	if ws[1].Start != 1000 || ws[1].End != 2000 {
		t.Fatalf("window 1 bounds = [%d,%d), want [1000,2000)", ws[1].Start, ws[1].End)
	}
	// Negative timestamps clamp into the first window rather than
	// panicking or growing backwards.
	s.Record(trace.Event{T: -5, Kind: trace.PacketRecv})
	if got := s.Windows()[0].Received; got != 2 {
		t.Fatalf("negative-T event not clamped to window 0: %d", got)
	}
}

// A late event materialises every intermediate window, empty but with
// correct contiguous bounds — consumers may rely on index i covering
// [i*width, (i+1)*width).
func TestSeriesEmptyIntermediateWindows(t *testing.T) {
	s := NewSeries(500)
	s.Record(trace.Event{T: 0, Kind: trace.PacketRecv})
	s.Record(trace.Event{T: 2600, Kind: trace.PacketRecv})
	ws := s.Windows()
	if len(ws) != 6 {
		t.Fatalf("windows = %d, want 6", len(ws))
	}
	for i := 1; i < 5; i++ {
		w := ws[i]
		if w.Received != 0 || w.Sent() != 0 || w.Drops() != 0 {
			t.Fatalf("intermediate window %d not empty: %+v", i, w)
		}
		if w.Start != int64(i)*500 || w.End != int64(i+1)*500 {
			t.Fatalf("window %d bounds = [%d,%d)", i, w.Start, w.End)
		}
	}
	if ws[5].Received != 1 {
		t.Fatalf("late event missing from window 5: %+v", ws[5])
	}
}

func TestWriteTable(t *testing.T) {
	s := NewSeries(1000)
	s.Record(trace.Event{T: 100, Kind: trace.PacketSend, Class: metrics.Data, Size: 30})
	var sb strings.Builder
	if err := s.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "window") || !strings.Contains(out, "rate") {
		t.Fatalf("missing header: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("want header + 1 row:\n%s", out)
	}
}
