// Package routing implements the multihop routing-tree substrate Scoop
// runs on (paper §2.2 and §5.1): a spanning tree rooted at the
// basestation built from periodic beacons, Woo-style snoop-based link
// quality estimation, a bounded neighbor table, and a bounded
// descendants list used to route packets down the tree.
//
// Both bounded tables are small flat arrays maintained in place
// (DESIGN.md §12): an Observe on the per-delivery hot path is a linear
// scan of at most the capacity (32 in the paper's experiments), with
// no hashing, no allocation and no rebuild-from-scratch — at 1000
// nodes every delivered or snooped frame lands here.
package routing

import (
	"sort"

	"scoop/internal/netsim"
)

// NeighborInfo is one entry of a node's neighbor table, and also the
// per-neighbor record shipped to the basestation inside summary
// messages ("a list of the node's n best connected neighbors, sorted
// by link-quality", paper §5.2).
type NeighborInfo struct {
	ID      netsim.NodeID
	Quality float64 // estimated delivery probability neighbor→me
}

type neighborState struct {
	id        netsim.NodeID
	lastSeq   uint32
	received  int
	missed    int
	lastHeard netsim.Time
}

// quality returns the received/(received+missed) estimate the paper
// describes: neighbours put a monotonically increasing number in every
// packet header, and gaps count as losses. A small pessimistic prior
// keeps one lucky reception from reading as a perfect link — routing
// over such phantom links is how congestion hubs form.
func (s *neighborState) quality() float64 {
	total := s.received + s.missed
	if total == 0 {
		return 0
	}
	return float64(s.received) / float64(total+2)
}

// NeighborTable tracks the nodes a mote can hear, estimating per-link
// quality from sequence-number gaps. Capacity is bounded (32 in the
// paper's experiments); the stalest entry is evicted when full, and
// entries not heard from for evictAfter are dropped, "thus adapting to
// changes in network connectivity". Entries live in a flat bounded
// slice in insertion order, compacted in place on eviction.
type NeighborTable struct {
	cap        int
	evictAfter netsim.Time
	entries    []neighborState
}

// NewNeighborTable returns a table bounded to capacity entries.
func NewNeighborTable(capacity int, evictAfter netsim.Time) *NeighborTable {
	if capacity <= 0 {
		panic("routing: non-positive neighbor table capacity")
	}
	return &NeighborTable{
		cap:        capacity,
		evictAfter: evictAfter,
		entries:    make([]neighborState, 0, capacity),
	}
}

// find returns the index of id's entry, or -1.
func (t *NeighborTable) find(id netsim.NodeID) int {
	for i := range t.entries {
		if t.entries[i].id == id {
			return i
		}
	}
	return -1
}

// Observe records that a packet with sequence number seq was heard from
// id at time now.
func (t *NeighborTable) Observe(id netsim.NodeID, seq uint32, now netsim.Time) {
	i := t.find(id)
	if i < 0 {
		if len(t.entries) >= t.cap {
			t.evictStalest(now)
			if len(t.entries) >= t.cap {
				return // table still full of fresher entries
			}
		}
		t.entries = append(t.entries, neighborState{
			id: id, lastSeq: seq, received: 1, lastHeard: now,
		})
		return
	}
	s := &t.entries[i]
	if seq > s.lastSeq {
		miss := int(seq-s.lastSeq) - 1
		if miss > 16 {
			miss = 16 // a long silence is staleness, not 100 losses
		}
		s.missed += miss
		s.lastSeq = seq
		s.received++
	} else {
		// Reordered or duplicate frame: count the reception, no gap.
		s.received++
	}
	s.lastHeard = now
	// Window the counters so the estimate tracks current conditions.
	if s.received+s.missed > 64 {
		s.received = (s.received + 1) / 2
		s.missed = s.missed / 2
	}
}

// evictStalest drops the least recently heard entry. Ties break toward
// the earliest-inserted entry — a fixed, deterministic rule where the
// old map-backed table left the victim to random iteration order.
func (t *NeighborTable) evictStalest(now netsim.Time) {
	victim := -1
	oldest := netsim.Time(1<<62 - 1)
	for i := range t.entries {
		if t.entries[i].lastHeard < oldest {
			oldest, victim = t.entries[i].lastHeard, i
		}
	}
	if victim >= 0 && (t.evictAfter == 0 || now-oldest >= 0) {
		t.remove(victim)
	}
}

// remove deletes entry i, preserving insertion order.
func (t *NeighborTable) remove(i int) {
	t.entries = append(t.entries[:i], t.entries[i+1:]...)
}

// Expire drops entries not heard from within the eviction window.
func (t *NeighborTable) Expire(now netsim.Time) {
	if t.evictAfter <= 0 {
		return
	}
	kept := t.entries[:0]
	for _, s := range t.entries {
		if now-s.lastHeard <= t.evictAfter {
			kept = append(kept, s)
		}
	}
	t.entries = kept
}

// Quality returns the current link-quality estimate for id (0 when
// unknown).
func (t *NeighborTable) Quality(id netsim.NodeID) float64 {
	if i := t.find(id); i >= 0 {
		return t.entries[i].quality()
	}
	return 0
}

// Contains reports whether id is currently tracked.
func (t *NeighborTable) Contains(id netsim.NodeID) bool { return t.find(id) >= 0 }

// Len reports the number of tracked neighbors.
func (t *NeighborTable) Len() int { return len(t.entries) }

// best orders entries by descending quality, then ascending ID.
func best(a, b NeighborInfo) bool {
	if a.Quality != b.Quality {
		return a.Quality > b.Quality
	}
	return a.ID < b.ID
}

// Best returns up to n entries sorted by descending quality, the list
// shipped in summary messages (12 in the paper's experiments). The
// result is freshly allocated — callers embed it in message payloads
// that outlive the table state — but the selection is an incremental
// top-n insertion over the bounded table, not a full sort of a
// rebuilt copy.
func (t *NeighborTable) Best(n int) []NeighborInfo {
	if n > len(t.entries) {
		n = len(t.entries)
	}
	out := make([]NeighborInfo, 0, n)
	for i := range t.entries {
		cand := NeighborInfo{ID: t.entries[i].id, Quality: t.entries[i].quality()}
		if len(out) == n {
			if n == 0 || !best(cand, out[n-1]) {
				continue
			}
			out = out[:n-1]
		}
		// Insertion into the (short) sorted prefix.
		k := len(out)
		out = append(out, cand)
		for k > 0 && best(out[k], out[k-1]) {
			out[k], out[k-1] = out[k-1], out[k]
			k--
		}
	}
	return out
}

// IDs returns all tracked neighbor IDs in ascending order.
func (t *NeighborTable) IDs() []netsim.NodeID {
	ids := make([]netsim.NodeID, 0, len(t.entries))
	for i := range t.entries {
		ids = append(ids, t.entries[i].id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// descendant is one DescendantSet entry: origin is reached via child.
type descendant struct {
	origin  netsim.NodeID
	child   netsim.NodeID
	touched netsim.Time
}

// DescendantSet maps descendants to the child branch they are reached
// through, learned by tracking the origin of packets routed up the
// tree (paper §5.1). Bounded capacity (32 in the experiments) with
// stalest-entry eviction; overflow merely degrades routing, it never
// breaks it (packets fall back to the parent path). Entries live in a
// flat bounded slice like the neighbor table's.
type DescendantSet struct {
	cap     int
	entries []descendant
}

// NewDescendantSet returns a set bounded to capacity entries.
func NewDescendantSet(capacity int) *DescendantSet {
	if capacity <= 0 {
		panic("routing: non-positive descendant set capacity")
	}
	return &DescendantSet{cap: capacity, entries: make([]descendant, 0, capacity)}
}

func (d *DescendantSet) find(origin netsim.NodeID) int {
	for i := range d.entries {
		if d.entries[i].origin == origin {
			return i
		}
	}
	return -1
}

// Record notes that packets from origin arrive via child, i.e. origin
// is in child's subtree.
func (d *DescendantSet) Record(origin, child netsim.NodeID, now netsim.Time) {
	i := d.find(origin)
	if i < 0 {
		if len(d.entries) >= d.cap {
			victim, oldest := 0, netsim.Time(1<<62-1)
			for k := range d.entries {
				if d.entries[k].touched < oldest {
					oldest, victim = d.entries[k].touched, k
				}
			}
			d.entries = append(d.entries[:victim], d.entries[victim+1:]...)
		}
		d.entries = append(d.entries, descendant{origin: origin, child: child, touched: now})
		return
	}
	d.entries[i].child = child
	d.entries[i].touched = now
}

// NextHop returns the child branch leading to dst, if known.
func (d *DescendantSet) NextHop(dst netsim.NodeID) (netsim.NodeID, bool) {
	if i := d.find(dst); i >= 0 {
		return d.entries[i].child, true
	}
	return 0, false
}

// Forget drops a descendant (e.g. when delivery via its branch fails).
func (d *DescendantSet) Forget(dst netsim.NodeID) {
	if i := d.find(dst); i >= 0 {
		d.entries = append(d.entries[:i], d.entries[i+1:]...)
	}
}

// Len reports the number of tracked descendants.
func (d *DescendantSet) Len() int { return len(d.entries) }

// IDs returns all descendants in ascending order.
func (d *DescendantSet) IDs() []netsim.NodeID {
	ids := make([]netsim.NodeID, 0, len(d.entries))
	for i := range d.entries {
		ids = append(ids, d.entries[i].origin)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
