// Package routing implements the multihop routing-tree substrate Scoop
// runs on (paper §2.2 and §5.1): a spanning tree rooted at the
// basestation built from periodic beacons, Woo-style snoop-based link
// quality estimation, a bounded neighbor table, and a bounded
// descendants list used to route packets down the tree.
package routing

import (
	"sort"

	"scoop/internal/netsim"
)

// NeighborInfo is one entry of a node's neighbor table, and also the
// per-neighbor record shipped to the basestation inside summary
// messages ("a list of the node's n best connected neighbors, sorted
// by link-quality", paper §5.2).
type NeighborInfo struct {
	ID      netsim.NodeID
	Quality float64 // estimated delivery probability neighbor→me
}

type neighborState struct {
	lastSeq   uint32
	received  int
	missed    int
	lastHeard netsim.Time
}

// quality returns the received/(received+missed) estimate the paper
// describes: neighbours put a monotonically increasing number in every
// packet header, and gaps count as losses. A small pessimistic prior
// keeps one lucky reception from reading as a perfect link — routing
// over such phantom links is how congestion hubs form.
func (s *neighborState) quality() float64 {
	total := s.received + s.missed
	if total == 0 {
		return 0
	}
	return float64(s.received) / float64(total+2)
}

// NeighborTable tracks the nodes a mote can hear, estimating per-link
// quality from sequence-number gaps. Capacity is bounded (32 in the
// paper's experiments); the stalest entry is evicted when full, and
// entries not heard from for evictAfter are dropped, "thus adapting to
// changes in network connectivity".
type NeighborTable struct {
	cap        int
	evictAfter netsim.Time
	entries    map[netsim.NodeID]*neighborState
}

// NewNeighborTable returns a table bounded to capacity entries.
func NewNeighborTable(capacity int, evictAfter netsim.Time) *NeighborTable {
	if capacity <= 0 {
		panic("routing: non-positive neighbor table capacity")
	}
	return &NeighborTable{
		cap:        capacity,
		evictAfter: evictAfter,
		entries:    make(map[netsim.NodeID]*neighborState),
	}
}

// Observe records that a packet with sequence number seq was heard from
// id at time now.
func (t *NeighborTable) Observe(id netsim.NodeID, seq uint32, now netsim.Time) {
	s, ok := t.entries[id]
	if !ok {
		if len(t.entries) >= t.cap {
			t.evictStalest(now)
			if len(t.entries) >= t.cap {
				return // table still full of fresher entries
			}
		}
		s = &neighborState{lastSeq: seq, received: 1, lastHeard: now}
		t.entries[id] = s
		return
	}
	if seq > s.lastSeq {
		miss := int(seq-s.lastSeq) - 1
		if miss > 16 {
			miss = 16 // a long silence is staleness, not 100 losses
		}
		s.missed += miss
		s.lastSeq = seq
		s.received++
	} else {
		// Reordered or duplicate frame: count the reception, no gap.
		s.received++
	}
	s.lastHeard = now
	// Window the counters so the estimate tracks current conditions.
	if s.received+s.missed > 64 {
		s.received = (s.received + 1) / 2
		s.missed = s.missed / 2
	}
}

func (t *NeighborTable) evictStalest(now netsim.Time) {
	var victim netsim.NodeID
	oldest := netsim.Time(1<<62 - 1)
	found := false
	for id, s := range t.entries {
		if s.lastHeard < oldest {
			oldest, victim, found = s.lastHeard, id, true
		}
	}
	if found && (t.evictAfter == 0 || now-oldest >= 0) {
		delete(t.entries, victim)
	}
}

// Expire drops entries not heard from within the eviction window.
func (t *NeighborTable) Expire(now netsim.Time) {
	if t.evictAfter <= 0 {
		return
	}
	for id, s := range t.entries {
		if now-s.lastHeard > t.evictAfter {
			delete(t.entries, id)
		}
	}
}

// Quality returns the current link-quality estimate for id (0 when
// unknown).
func (t *NeighborTable) Quality(id netsim.NodeID) float64 {
	if s, ok := t.entries[id]; ok {
		return s.quality()
	}
	return 0
}

// Contains reports whether id is currently tracked.
func (t *NeighborTable) Contains(id netsim.NodeID) bool {
	_, ok := t.entries[id]
	return ok
}

// Len reports the number of tracked neighbors.
func (t *NeighborTable) Len() int { return len(t.entries) }

// Best returns up to n entries sorted by descending quality, the list
// shipped in summary messages (12 in the paper's experiments).
func (t *NeighborTable) Best(n int) []NeighborInfo {
	all := make([]NeighborInfo, 0, len(t.entries))
	for id, s := range t.entries {
		all = append(all, NeighborInfo{ID: id, Quality: s.quality()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Quality != all[j].Quality {
			return all[i].Quality > all[j].Quality
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// IDs returns all tracked neighbor IDs in ascending order.
func (t *NeighborTable) IDs() []netsim.NodeID {
	ids := make([]netsim.NodeID, 0, len(t.entries))
	for id := range t.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// DescendantSet maps descendants to the child branch they are reached
// through, learned by tracking the origin of packets routed up the
// tree (paper §5.1). Bounded capacity (32 in the experiments) with
// stalest-entry eviction; overflow merely degrades routing, it never
// breaks it (packets fall back to the parent path).
type DescendantSet struct {
	cap     int
	via     map[netsim.NodeID]netsim.NodeID
	touched map[netsim.NodeID]netsim.Time
}

// NewDescendantSet returns a set bounded to capacity entries.
func NewDescendantSet(capacity int) *DescendantSet {
	if capacity <= 0 {
		panic("routing: non-positive descendant set capacity")
	}
	return &DescendantSet{
		cap:     capacity,
		via:     make(map[netsim.NodeID]netsim.NodeID),
		touched: make(map[netsim.NodeID]netsim.Time),
	}
}

// Record notes that packets from origin arrive via child, i.e. origin
// is in child's subtree.
func (d *DescendantSet) Record(origin, child netsim.NodeID, now netsim.Time) {
	if _, ok := d.via[origin]; !ok && len(d.via) >= d.cap {
		var victim netsim.NodeID
		oldest := netsim.Time(1<<62 - 1)
		for id, t := range d.touched {
			if t < oldest {
				oldest, victim = t, id
			}
		}
		delete(d.via, victim)
		delete(d.touched, victim)
	}
	d.via[origin] = child
	d.touched[origin] = now
}

// NextHop returns the child branch leading to dst, if known.
func (d *DescendantSet) NextHop(dst netsim.NodeID) (netsim.NodeID, bool) {
	c, ok := d.via[dst]
	return c, ok
}

// Forget drops a descendant (e.g. when delivery via its branch fails).
func (d *DescendantSet) Forget(dst netsim.NodeID) {
	delete(d.via, dst)
	delete(d.touched, dst)
}

// Len reports the number of tracked descendants.
func (d *DescendantSet) Len() int { return len(d.via) }

// IDs returns all descendants in ascending order.
func (d *DescendantSet) IDs() []netsim.NodeID {
	ids := make([]netsim.NodeID, 0, len(d.via))
	for id := range d.via {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
