package routing

import (
	"testing"
	"testing/quick"

	"scoop/internal/metrics"
	"scoop/internal/netsim"
)

func TestNeighborTableQualityFromGaps(t *testing.T) {
	nt := NewNeighborTable(8, 0)
	// Hear seq 1,2,4,5: one gap of one → 4 received, 1 missed.
	for _, s := range []uint32{1, 2, 4, 5} {
		nt.Observe(3, s, 0)
	}
	// 4 received, 1 missed, +2 pessimistic prior → 4/7.
	q := nt.Quality(3)
	if q < 0.570 || q > 0.572 {
		t.Fatalf("quality = %f, want 4/7", q)
	}
}

func TestNeighborTableReorderTolerated(t *testing.T) {
	nt := NewNeighborTable(8, 0)
	for _, s := range []uint32{1, 3, 2, 4} {
		nt.Observe(3, s, 0)
	}
	// Gap 1→3 counts one miss; the late 2 still counts as received:
	// 4 received, 1 missed, +2 prior → 4/7.
	q := nt.Quality(3)
	if q < 0.570 || q > 0.572 {
		t.Fatalf("quality = %f, want 4/7", q)
	}
}

func TestNeighborTableCapacityEviction(t *testing.T) {
	nt := NewNeighborTable(4, 0)
	for i := 0; i < 6; i++ {
		nt.Observe(netsim.NodeID(i), 1, netsim.Time(i))
	}
	if nt.Len() > 4 {
		t.Fatalf("table grew to %d, cap 4", nt.Len())
	}
	// The stalest (earliest-heard) entries should have been evicted.
	if nt.Contains(0) {
		t.Fatal("stalest entry not evicted")
	}
	if !nt.Contains(5) {
		t.Fatal("newest entry missing")
	}
}

func TestNeighborTableExpire(t *testing.T) {
	nt := NewNeighborTable(8, 100)
	nt.Observe(1, 1, 0)
	nt.Observe(2, 1, 90)
	nt.Expire(150)
	if nt.Contains(1) {
		t.Fatal("stale neighbor not expired")
	}
	if !nt.Contains(2) {
		t.Fatal("fresh neighbor expired")
	}
}

func TestNeighborTableBestSorted(t *testing.T) {
	nt := NewNeighborTable(8, 0)
	// Node 1: perfect. Node 2: 50%.
	for s := uint32(1); s <= 10; s++ {
		nt.Observe(1, s, 0)
	}
	for _, s := range []uint32{2, 4, 6, 8, 10} {
		nt.Observe(2, s, 0)
	}
	best := nt.Best(12)
	if len(best) != 2 || best[0].ID != 1 || best[1].ID != 2 {
		t.Fatalf("best = %+v", best)
	}
	if best[0].Quality <= best[1].Quality {
		t.Fatal("best not sorted by quality")
	}
	if got := nt.Best(1); len(got) != 1 {
		t.Fatalf("Best(1) returned %d entries", len(got))
	}
}

func TestNeighborTableWindowing(t *testing.T) {
	nt := NewNeighborTable(4, 0)
	// Long perfect run, then a bad patch: quality must drop below a
	// pure all-time average.
	for s := uint32(1); s <= 60; s++ {
		nt.Observe(7, s, 0)
	}
	// Now lose 3 of every 4.
	for s := uint32(64); s <= 160; s += 4 {
		nt.Observe(7, s, 0)
	}
	q := nt.Quality(7)
	if q > 0.6 {
		t.Fatalf("quality = %f; windowing should track the bad patch", q)
	}
}

func TestDescendantSetRecordAndNextHop(t *testing.T) {
	d := NewDescendantSet(8)
	d.Record(9, 3, 0)
	d.Record(10, 3, 1)
	d.Record(11, 4, 2)
	if hop, ok := d.NextHop(10); !ok || hop != 3 {
		t.Fatalf("NextHop(10) = %d,%v", hop, ok)
	}
	if _, ok := d.NextHop(99); ok {
		t.Fatal("unknown descendant resolved")
	}
	d.Forget(10)
	if _, ok := d.NextHop(10); ok {
		t.Fatal("forgotten descendant still resolves")
	}
}

func TestDescendantSetBounded(t *testing.T) {
	d := NewDescendantSet(3)
	for i := 0; i < 10; i++ {
		d.Record(netsim.NodeID(i), 1, netsim.Time(i))
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d, want 3", d.Len())
	}
	// Most recent three survive.
	for _, id := range []netsim.NodeID{7, 8, 9} {
		if _, ok := d.NextHop(id); !ok {
			t.Fatalf("recent descendant %d evicted", id)
		}
	}
}

// Property: the descendant set never exceeds its capacity and always
// resolves the most recently recorded origin.
func TestDescendantSetCapacityProperty(t *testing.T) {
	f := func(origins []uint8, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		d := NewDescendantSet(capacity)
		for i, o := range origins {
			d.Record(netsim.NodeID(o), 1, netsim.Time(i))
			if d.Len() > capacity {
				return false
			}
			if _, ok := d.NextHop(netsim.NodeID(o)); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// treeApp wires a Tree directly to the simulator for protocol tests.
type treeApp struct {
	tree *Tree
	base bool
}

const beaconTimer = 1

func (a *treeApp) Init(api *netsim.NodeAPI) {
	a.tree = NewTree(api, a.base, DefaultConfig())
	a.tree.Start(beaconTimer)
}
func (a *treeApp) Receive(p *netsim.Packet) { a.tree.Observe(p) }
func (a *treeApp) Snoop(p *netsim.Packet)   { a.tree.Observe(p) }
func (a *treeApp) Timer(id int) {
	if id == beaconTimer {
		a.tree.OnTimer()
	}
}

func buildTreeNetwork(topo *netsim.Topology, seed int64) ([]*treeApp, *netsim.Simulator) {
	sim := netsim.NewSimulator(seed)
	net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
	apps := make([]*treeApp, topo.N)
	for i := range apps {
		apps[i] = &treeApp{base: i == 0}
		net.Attach(netsim.NodeID(i), apps[i])
	}
	net.Start()
	return apps, sim
}

func TestTreeFormsOnRealTopology(t *testing.T) {
	topo := netsim.UniformTopology(30, 6, 3.2, 21)
	apps, sim := buildTreeNetwork(topo, 21)
	sim.Run(5 * netsim.Minute)
	joined := 0
	for i := 1; i < topo.N; i++ {
		if apps[i].tree.HasRoute() {
			joined++
		}
	}
	if joined < topo.N-3 {
		t.Fatalf("only %d/%d nodes joined the tree", joined, topo.N-1)
	}
}

func TestTreeAcyclicAndRooted(t *testing.T) {
	topo := netsim.UniformTopology(40, 7, 3.2, 22)
	apps, sim := buildTreeNetwork(topo, 22)
	sim.Run(5 * netsim.Minute)
	// Follow parent pointers from each node; must reach the base
	// without revisiting a node.
	for i := 1; i < topo.N; i++ {
		if !apps[i].tree.HasRoute() {
			continue
		}
		seen := map[netsim.NodeID]bool{}
		cur := netsim.NodeID(i)
		for cur != 0 {
			if seen[cur] {
				t.Fatalf("cycle through node %d", cur)
			}
			seen[cur] = true
			cur = apps[cur].tree.Parent()
			if cur == netsim.NoNode {
				t.Fatalf("node %d path dead-ends", i)
			}
		}
	}
}

func TestTreeIsMultihop(t *testing.T) {
	// On a 40-node topology with limited radio range the tree must be
	// genuinely multihop, not a star.
	topo := netsim.UniformTopology(40, 7, 3.2, 23)
	apps, sim := buildTreeNetwork(topo, 23)
	sim.Run(5 * netsim.Minute)
	deep := 0
	for i := 1; i < topo.N; i++ {
		tr := apps[i].tree
		if tr.HasRoute() && tr.Parent() != 0 {
			deep++
		}
	}
	if deep == 0 {
		t.Fatal("tree collapsed to a star; expected multihop paths")
	}
}

func TestTreePathsTerminateAtBase(t *testing.T) {
	// Parent estimates drift between beacons, so strict per-edge
	// monotonicity is not an invariant; bounded-length termination of
	// every parent path is.
	topo := netsim.UniformTopology(40, 7, 3.2, 24)
	apps, sim := buildTreeNetwork(topo, 24)
	sim.Run(5 * netsim.Minute)
	for i := 1; i < topo.N; i++ {
		tr := apps[i].tree
		if !tr.HasRoute() {
			continue
		}
		if tr.ETX() < 1 {
			t.Fatalf("node %d ETX %f below one hop", i, tr.ETX())
		}
		cur, steps := netsim.NodeID(i), 0
		for cur != 0 {
			cur = apps[cur].tree.Parent()
			steps++
			if cur == netsim.NoNode || steps > topo.N {
				t.Fatalf("node %d parent path does not reach base (steps=%d)", i, steps)
			}
		}
	}
}

func TestTreeReformsAfterParentDeath(t *testing.T) {
	// A 4-node diamond: 0-1, 0-2, 1-3, 2-3. Kill 3's parent; after a
	// few beacon rounds 3 must re-parent through the other branch.
	topo := netsim.NewTopology(4)
	topo.Pos = make([]netsim.Point, 4)
	set := func(i, j int, q float64) {
		topo.Quality[i][j], topo.Quality[j][i] = q, q
	}
	set(0, 1, 0.7)
	set(0, 2, 0.6)
	set(1, 3, 0.7)
	set(2, 3, 0.6)
	sim := netsim.NewSimulator(7)
	net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
	apps := make([]*treeApp, 4)
	for i := range apps {
		apps[i] = &treeApp{base: i == 0}
		net.Attach(netsim.NodeID(i), apps[i])
	}
	net.Start()
	sim.Run(3 * netsim.Minute)
	first := apps[3].tree.Parent()
	if first == netsim.NoNode {
		t.Fatal("node 3 never joined")
	}
	net.Kill(first)
	sim.Run(sim.Now() + 6*netsim.Minute)
	second := apps[3].tree.Parent()
	if second == first {
		t.Fatalf("node 3 still routes via dead parent %d", first)
	}
	if second == netsim.NoNode {
		t.Fatal("node 3 lost its route entirely")
	}
}

func TestBaseNeverPicksParent(t *testing.T) {
	topo := netsim.UniformTopology(10, 4, 3.2, 25)
	apps, sim := buildTreeNetwork(topo, 25)
	sim.Run(2 * netsim.Minute)
	if apps[0].tree.Parent() != netsim.NoNode {
		t.Fatal("basestation picked a parent")
	}
	if apps[0].tree.ETX() != 0 {
		t.Fatalf("base ETX = %f", apps[0].tree.ETX())
	}
}

func TestNewNeighborTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNeighborTable(0, 0)
}

func TestNewDescendantSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDescendantSet(0)
}

// Cycle detection must only trust a parent's own beacon advertisement.
// On forwarded traffic OriginParent describes the packet's origin, not
// the link-layer sender, so a parent relaying a grandchild's summary
// (Src=parent, OriginParent=me) is normal traffic — not a cycle.
func TestCycleDetectionIgnoresForwardedTraffic(t *testing.T) {
	topo := netsim.NewTopology(4)
	topo.Pos = make([]netsim.Point, 4)
	for i := range topo.Pos {
		topo.Pos[i] = netsim.Point{X: float64(i)}
	}
	for i := 0; i+1 < 4; i++ {
		topo.Quality[i][i+1], topo.Quality[i+1][i] = 1.0, 1.0
	}
	apps, sim := buildTreeNetwork(topo, 31)
	sim.Run(2 * netsim.Minute)
	tr := apps[2].tree
	if tr.Parent() != 1 {
		t.Fatalf("node 2 parent = %d, want 1", tr.Parent())
	}
	// Node 1 forwards node 3's summary upward: Src=1, OriginParent=2.
	tr.Observe(&netsim.Packet{
		Class:        metrics.Summary,
		Src:          1,
		Origin:       3,
		OriginParent: 2,
	})
	if tr.Parent() != 1 {
		t.Fatal("node 2 detached on a forwarded summary: cycle check misfired")
	}
	// But node 1's own beacon claiming node 2 as its parent IS a cycle.
	tr.Observe(&netsim.Packet{
		Class:        metrics.Beacon,
		Src:          1,
		Origin:       1,
		OriginParent: 2,
	})
	if tr.Parent() != netsim.NoNode {
		t.Fatal("node 2 kept its parent despite a beacon-advertised cycle")
	}
}
