package routing

import (
	"scoop/internal/metrics"
	"scoop/internal/netsim"
)

// Beacon is the payload of tree-join messages "repeatedly broadcast
// from the root down the tree" (paper §2.2). ETX advertises the
// sender's expected transmission count to reach the basestation, the
// path metric of De Couto et al. that Woo-style trees use.
//
// Estimates carries the sender's inbound link-quality estimates for
// its best neighbors. Radios only measure how well they *hear* a
// neighbor; to route data the sender needs the reverse direction —
// how well the neighbor hears *it* — so estimates are exchanged in
// beacons, exactly as Woo et al.'s link estimator and CTP do.
type Beacon struct {
	Round     uint32  // dissemination round, incremented by the base
	Hops      uint8   // sender's tree depth
	ETX       float64 // sender's expected transmissions to the base
	Estimates []NeighborInfo
}

// Config tunes the tree protocol. Zero value is unusable; use
// DefaultConfig.
type Config struct {
	BeaconInterval netsim.Time // base's beacon period
	NeighborCap    int         // neighbor table bound (paper: 32)
	DescendantCap  int         // descendants list bound (paper: 32)
	EvictAfter     netsim.Time // neighbor staleness bound
	MinQuality     float64     // links below this are not parent candidates
}

// DefaultConfig returns the parameters used in the paper's experiments.
func DefaultConfig() Config {
	return Config{
		BeaconInterval: 10 * netsim.Second,
		NeighborCap:    32,
		DescendantCap:  32,
		EvictAfter:     90 * netsim.Second,
		MinQuality:     0.25,
	}
}

// Tree is the per-node routing-tree state machine. It is composed into
// a node application: the application forwards heard beacons and timer
// ticks, and consults the tree for parent/descendant/neighbor routing
// decisions.
type Tree struct {
	api    *netsim.NodeAPI
	cfg    Config
	isBase bool

	Neighbors   *NeighborTable
	Descendants *DescendantSet

	parent    netsim.NodeID
	hops      uint8
	etx       float64
	round     uint32 // highest round seen (base: last round sent)
	rebroadct uint32 // last round this node re-broadcast
	timerID   int

	// outEst[k] is how well k hears us (our outbound delivery
	// probability to k), learned from k's beacon estimate exchange.
	// Dense by node ID (with a known-flag array), consulted on every
	// routed data message.
	outEst []float64
	outSet []bool
}

// NewTree creates the routing state for one node. isBase marks the
// tree root (node 0 in Scoop).
func NewTree(api *netsim.NodeAPI, isBase bool, cfg Config) *Tree {
	t := &Tree{
		api:         api,
		cfg:         cfg,
		isBase:      isBase,
		Neighbors:   NewNeighborTable(cfg.NeighborCap, cfg.EvictAfter),
		Descendants: NewDescendantSet(cfg.DescendantCap),
		parent:      netsim.NoNode,
		outEst:      make([]float64, api.N()),
		outSet:      make([]bool, api.N()),
	}
	if isBase {
		t.etx = 0
		t.hops = 0
	} else {
		t.etx = 1e9
		t.hops = 0xFF
	}
	return t
}

// Start arms the tree timer. The composing application must call
// OnTimer when the timer with timerID fires.
func (t *Tree) Start(timerID int) {
	t.timerID = timerID
	if t.isBase {
		// Early first beacon so trees form during the warm-up period.
		t.api.SetTimer(timerID, netsim.Time(1+t.api.RandIntn(200)))
	} else {
		t.api.SetTimer(timerID, t.cfg.BeaconInterval+netsim.Time(t.api.RandIntn(2000)))
	}
}

// OnTimer runs periodic tree maintenance. The base starts a new beacon
// round; other nodes expire stale neighbors, abandon parents they have
// not heard from, and re-broadcast the current round's beacon at most
// once (the fast path is scheduled by onBeacon when a new round
// arrives, so the wave propagates quickly).
func (t *Tree) OnTimer() {
	if t.isBase {
		t.round++
		t.broadcastBeacon()
		t.api.SetTimer(t.timerID, t.cfg.BeaconInterval)
		return
	}
	t.Neighbors.Expire(t.api.Now())
	if t.parent != netsim.NoNode && !t.Neighbors.Contains(t.parent) {
		// Parent fell silent: detach and wait for the next beacon wave.
		t.parent = netsim.NoNode
		t.etx = 1e9
		t.hops = 0xFF
	}
	if t.HasRoute() && t.rebroadct < t.round {
		t.rebroadct = t.round
		t.broadcastBeacon()
	}
	t.api.SetTimer(t.timerID, t.cfg.BeaconInterval+netsim.Time(t.api.RandIntn(2000)))
}

func (t *Tree) broadcastBeacon() {
	est := t.Neighbors.Best(8)
	t.api.Broadcast(&netsim.Packet{
		Class:        metrics.Beacon,
		Origin:       t.api.ID(),
		OriginParent: t.parent,
		Size:         12 + 3*len(est),
		Payload:      Beacon{Round: t.round, Hops: t.hops, ETX: t.etx, Estimates: est},
	})
}

// Observe must be called for every packet heard (received or snooped),
// so link qualities stay current and beacons drive parent selection.
func (t *Tree) Observe(p *netsim.Packet) {
	t.Neighbors.Observe(p.Src, p.Seq, t.api.Now())
	if !t.isBase && p.Class == metrics.Beacon && p.Src == t.parent &&
		p.OriginParent == t.api.ID() && t.api.ID() > p.Src {
		// Our parent's own beacon advertises us as *its* parent: a
		// two-node routing cycle born from stale advertisements. The
		// higher ID detaches and rejoins on the next beacon wave. Only
		// beacons count — on forwarded traffic OriginParent describes
		// the packet's origin, not the sender, so a parent relaying a
		// grandchild's summary would otherwise look like a cycle.
		t.parent = netsim.NoNode
		t.etx = 1e9
		t.hops = 0xFF
	}
	if b, ok := p.Payload.(Beacon); ok && p.Class == metrics.Beacon {
		t.onBeacon(p.Src, b)
	}
}

// onBeacon runs parent selection: pick the neighbor minimising
// advertised ETX plus the local inbound-link ETX. Ties and loops are
// avoided by requiring strictly better cost and a shallower advertised
// round path.
func (t *Tree) onBeacon(from netsim.NodeID, b Beacon) {
	// Harvest the estimate exchange: if the sender reports hearing us
	// with quality q, that is our outbound delivery probability to it.
	me := t.api.ID()
	for _, e := range b.Estimates {
		if e.ID == me {
			t.outEst[from] = e.Quality
			t.outSet[from] = true
		}
	}
	if t.isBase {
		return
	}
	if b.Round > t.round {
		t.round = b.Round
	}
	q := t.OutQuality(from)
	if q < t.cfg.MinQuality {
		return
	}
	cand := b.ETX + 1.0/q
	refresh := from == t.parent
	// Hysteresis: switching to a different parent requires a clearly
	// better path, or oscillating estimates create transient parent
	// cycles that amplify forwarded traffic.
	better := cand < t.etx*0.85
	if t.parent == netsim.NoNode {
		better = cand < t.etx
	}
	if better || refresh {
		if refresh {
			// Track our parent's current cost, better or worse.
			t.etx = cand
			t.hops = b.Hops + 1
		} else {
			t.parent = from
			t.etx = cand
			t.hops = b.Hops + 1
		}
		// Schedule our own (once-per-round) re-broadcast with generous
		// jitter so the wave propagates down the tree without a
		// synchronised collision storm every beacon round.
		if t.rebroadct < t.round {
			t.api.SetTimer(t.timerID, netsim.Time(50+t.api.RandIntn(5000)))
		}
	}
}

// OutQuality estimates this node's outbound delivery probability to
// neighbor id: the neighbor's advertised estimate when available,
// otherwise the inbound estimate discounted for asymmetry.
func (t *Tree) OutQuality(id netsim.NodeID) float64 {
	if t.outSet[id] {
		return t.outEst[id]
	}
	return t.Neighbors.Quality(id) * 0.8
}

// HasRoute reports whether this node has joined the tree.
func (t *Tree) HasRoute() bool { return t.isBase || t.parent != netsim.NoNode }

// Parent returns the current parent (NoNode before joining).
func (t *Tree) Parent() netsim.NodeID { return t.parent }

// Hops returns the node's tree depth estimate.
func (t *Tree) Hops() uint8 { return t.hops }

// ETX returns the node's expected-transmissions-to-base estimate.
func (t *Tree) ETX() float64 { return t.etx }

// Round returns the latest beacon round seen.
func (t *Tree) Round() uint32 { return t.round }

// RecordUpstream notes that a packet from origin was routed through us
// by child, updating the descendants list.
func (t *Tree) RecordUpstream(origin, child netsim.NodeID) {
	if origin == t.api.ID() {
		return
	}
	t.Descendants.Record(origin, child, t.api.Now())
}
