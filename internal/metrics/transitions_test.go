package metrics

import "testing"

func win(start, end, produced, stored, atOwner, atBase int64, data float64) TransitionWindow {
	return TransitionWindow{
		Start: start, End: end,
		Produced: produced, StoredUnique: stored,
		StoredAtOwner: atOwner, StoredAtBase: atBase,
		Data: data, Msgs: data,
	}
}

func TestWindowRatios(t *testing.T) {
	w := win(0, 100, 50, 45, 30, 10, 100)
	if got := w.DeliveryRatio(); got != 0.9 {
		t.Fatalf("delivery = %v", got)
	}
	if got := w.MisrouteRatio(); got != 0.25 {
		t.Fatalf("misroute = %v", got)
	}
	if got := w.CostPerReading(); got != 2 {
		t.Fatalf("cost = %v", got)
	}
	var zero TransitionWindow
	if zero.DeliveryRatio() != 0 || zero.MisrouteRatio() != 0 || zero.CostPerReading() != 0 {
		t.Fatal("zero window must not divide by zero")
	}
	w.RepliesExpected, w.RepliesReceived = 4, 3
	if got := w.QueryDeliveryRatio(); got != 0.75 {
		t.Fatalf("query delivery = %v", got)
	}
}

func TestSummarizeSpans(t *testing.T) {
	tl := Timeline{Windows: []TransitionWindow{
		win(0, 100, 10, 10, 0, 0, 10),   // before
		win(100, 200, 10, 10, 0, 0, 10), // before
		win(200, 300, 10, 5, 2, 2, 30),  // during (overlaps marks at 250, 350)
		win(300, 400, 10, 6, 2, 2, 30),  // during
		win(400, 500, 10, 7, 4, 1, 20),  // after (dip below floor)
		win(500, 600, 10, 10, 5, 0, 12), // after, recovered
		win(600, 700, 10, 10, 5, 0, 11), // after, stays recovered
	}}
	tl.AddMark(250, "data-shift")
	tl.AddMark(350, "node-down")

	s, ok := tl.Summarize(0.05)
	if !ok {
		t.Fatal("summarize failed")
	}
	if s.DeliveryBefore != 1.0 {
		t.Fatalf("before = %v", s.DeliveryBefore)
	}
	if s.DeliveryDuring != 0.55 {
		t.Fatalf("during = %v", s.DeliveryDuring)
	}
	if got := s.DeliveryAfter; got < 0.899 || got > 0.901 {
		t.Fatalf("after = %v", got)
	}
	// Recovery floor is 0.95: window [400,500) at 0.7 fails, [500,600)
	// onward holds, so reconvergence is 500-350.
	if s.ReconvergenceMS != 150 {
		t.Fatalf("reconvergence = %v, want 150", s.ReconvergenceMS)
	}
	if s.CostBefore != 1.0 || s.CostDuring != 3.0 {
		t.Fatalf("costs = %v / %v", s.CostBefore, s.CostDuring)
	}
}

func TestSummarizeNeverRecovers(t *testing.T) {
	tl := Timeline{Windows: []TransitionWindow{
		win(0, 100, 10, 10, 0, 0, 10),
		win(100, 200, 10, 4, 1, 3, 30),
		win(200, 300, 10, 5, 1, 3, 30),
	}}
	tl.AddMark(100, "data-shift")
	s, ok := tl.Summarize(0.05)
	if !ok {
		t.Fatal("summarize failed")
	}
	if s.ReconvergenceMS != -1 {
		t.Fatalf("reconvergence = %v, want -1", s.ReconvergenceMS)
	}
}

func TestSummarizeNeedsMarksAndBaseline(t *testing.T) {
	var tl Timeline
	if _, ok := tl.Summarize(0.05); ok {
		t.Fatal("empty timeline must not summarize")
	}
	tl.Windows = []TransitionWindow{win(0, 100, 10, 10, 0, 0, 10)}
	if _, ok := tl.Summarize(0.05); ok {
		t.Fatal("no marks: must not summarize")
	}
	tl.AddMark(50, "x") // mark before any complete window
	if _, ok := tl.Summarize(0.05); ok {
		t.Fatal("no pre-mark window: must not summarize")
	}
}

func TestMeanOverAndTailMean(t *testing.T) {
	tl := Timeline{Windows: []TransitionWindow{
		win(0, 100, 10, 10, 0, 0, 10),
		win(100, 200, 10, 10, 0, 0, 20),
		win(200, 300, 10, 10, 0, 0, 30),
	}}
	cost := TransitionWindow.CostPerReading
	if got := tl.MeanOver(0, 200, cost); got != 1.5 {
		t.Fatalf("mean [0,200) = %v", got)
	}
	if got := tl.MeanOver(500, 600, cost); got != 0 {
		t.Fatalf("empty span mean = %v", got)
	}
	if got := tl.TailMean(2, cost); got != 2.5 {
		t.Fatalf("tail mean = %v", got)
	}
	if got := tl.TailMean(10, cost); got != 2.0 {
		t.Fatalf("oversized tail mean = %v", got)
	}
}
