package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersSendReceive(t *testing.T) {
	m := NewCounters()
	m.CountSend(1, Data, 10)
	m.CountSend(1, Data, 10)
	m.CountSend(2, Query, 10)
	m.CountReceive(0, Data, 10)
	if m.Sent(Data) != 2 || m.Sent(Query) != 1 || m.Sent(Reply) != 0 {
		t.Fatalf("sent counts wrong: %d %d", m.Sent(Data), m.Sent(Query))
	}
	if m.Received(Data) != 1 {
		t.Fatalf("received = %d", m.Received(Data))
	}
	if m.SentBy(1, Data) != 2 || m.SentBy(2, Query) != 1 || m.SentBy(3, Data) != 0 {
		t.Fatal("per-node sends wrong")
	}
	if m.ReceivedBy(0, Data) != 1 || m.ReceivedBy(1, Data) != 0 {
		t.Fatal("per-node receives wrong")
	}
}

func TestTotalExcludesBeacons(t *testing.T) {
	m := NewCounters()
	m.CountSend(1, Data, 10)
	m.CountSend(1, Beacon, 10)
	m.CountSend(1, Beacon, 10)
	if m.Total() != 1 {
		t.Fatalf("total = %d, want beacons excluded", m.Total())
	}
	if m.TotalWithBeacons() != 3 {
		t.Fatalf("total with beacons = %d", m.TotalWithBeacons())
	}
	if m.TotalSentBy(1) != 1 {
		t.Fatalf("per-node total = %d", m.TotalSentBy(1))
	}
}

func TestDrops(t *testing.T) {
	m := NewCounters()
	m.CountDrop(DropCollision)
	m.CountDrop(DropCollision)
	m.CountDrop(DropQueue)
	if m.Drops(DropCollision) != 2 || m.Drops(DropQueue) != 1 || m.Drops(DropRetries) != 0 {
		t.Fatal("drop counts wrong")
	}
	causes := m.DropCauses()
	if len(causes) != 2 || causes[0] != DropCollision || causes[1] != DropQueue {
		t.Fatalf("causes = %v", causes)
	}
}

func TestDropCauseStrings(t *testing.T) {
	for _, c := range AllDropCauses() {
		got, ok := ParseDropCause(c.String())
		if !ok || got != c {
			t.Fatalf("ParseDropCause(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseDropCause("nonsense"); ok {
		t.Fatal("parsed a bogus cause")
	}
	if DropCause(99).String() == "" {
		t.Fatal("unknown cause has empty name")
	}
	if len(AllDropCauses()) != NumDropCauses {
		t.Fatalf("AllDropCauses = %v", AllDropCauses())
	}
}

func TestParseClass(t *testing.T) {
	for _, c := range Classes() {
		got, ok := ParseClass(c.String())
		if !ok || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseClass("nonsense"); ok {
		t.Fatal("parsed a bogus class")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.CountSend(1, Data, 10)
	b.CountSend(1, Data, 10)
	b.CountSend(2, Summary, 10)
	b.CountReceive(0, Summary, 10)
	b.CountDrop(DropQueue)
	a.Merge(b)
	if a.Sent(Data) != 2 || a.Sent(Summary) != 1 {
		t.Fatal("merged sends wrong")
	}
	if a.SentBy(1, Data) != 2 || a.SentBy(2, Summary) != 1 {
		t.Fatal("merged per-node sends wrong")
	}
	if a.Received(Summary) != 1 || a.Drops(DropQueue) != 1 {
		t.Fatal("merged receives/drops wrong")
	}
}

// TestMergeBytesAndDrops covers the byte-tally and per-cause merge
// paths the sweep engine relies on when folding per-trial counters.
func TestMergeBytesAndDrops(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.CountSend(1, Data, 100)
	a.CountSnoop(2, 40)
	a.CountDrop(DropRetries)
	b.CountSend(3, Reply, 60)
	b.CountReceive(1, Reply, 60)
	b.CountSnoop(2, 10)
	b.CountDrop(DropRetries)
	b.CountDrop(DropTTL)
	a.Merge(b)
	if a.SentBytes() != 160 || a.SentBytesClass(Data) != 100 || a.SentBytesClass(Reply) != 60 {
		t.Fatalf("merged sent bytes: total=%d data=%d reply=%d",
			a.SentBytes(), a.SentBytesClass(Data), a.SentBytesClass(Reply))
	}
	if a.ReceivedBytes() != 60 || a.ReceivedBytesBy(1) != 60 {
		t.Fatalf("merged recv bytes: %d / %d", a.ReceivedBytes(), a.ReceivedBytesBy(1))
	}
	if a.SnoopedBytes() != 50 || a.SnoopedBytesBy(2) != 50 {
		t.Fatalf("merged snoop bytes: %d / %d", a.SnoopedBytes(), a.SnoopedBytesBy(2))
	}
	if a.SentBytesBy(1) != 100 || a.SentBytesBy(3) != 60 {
		t.Fatalf("merged per-node sent bytes: %d / %d", a.SentBytesBy(1), a.SentBytesBy(3))
	}
	if a.Drops(DropRetries) != 2 || a.Drops(DropTTL) != 1 {
		t.Fatalf("merged drops: retries=%d ttl=%d", a.Drops(DropRetries), a.Drops(DropTTL))
	}
	if got := a.DropCauses(); len(got) != 2 || got[0] != DropRetries || got[1] != DropTTL {
		t.Fatalf("merged causes = %v", got)
	}
}

// TestMergeGrowsDense verifies Merge grows the destination's per-node
// tables when the source saw higher node IDs than the destination.
func TestMergeGrowsDense(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.CountSend(1, Data, 10)
	b.CountSend(40, Query, 25)
	b.CountReceive(41, Query, 25)
	b.CountSnoop(42, 25)
	a.Merge(b)
	if a.SentBy(40, Query) != 1 || a.ReceivedBy(41, Query) != 1 {
		t.Fatal("merge did not grow per-node count tables")
	}
	if a.SentBytesBy(40) != 25 || a.ReceivedBytesBy(41) != 25 || a.SnoopedBytesBy(42) != 25 {
		t.Fatal("merge did not grow per-node byte tables")
	}
}

func TestSnapshotAndBreakdown(t *testing.T) {
	m := NewCounters()
	for i := 0; i < 3; i++ {
		m.CountSend(1, Data, 10)
	}
	m.CountSend(1, Reply, 10)
	m.CountSend(1, Beacon, 10)
	b := m.Snapshot()
	if b.Data != 3 || b.Reply != 1 || b.Beacon != 1 {
		t.Fatalf("snapshot = %+v", b)
	}
	if b.Total() != 4 {
		t.Fatalf("breakdown total = %f", b.Total())
	}
	sum := b.Add(b)
	if sum.Data != 6 || sum.Total() != 8 {
		t.Fatalf("add = %+v", sum)
	}
	half := b.Scale(0.5)
	if half.Data != 1.5 {
		t.Fatalf("scale = %+v", half)
	}
	if !strings.Contains(b.String(), "data=3") {
		t.Fatalf("string = %q", b.String())
	}
}

// TestBreakdownAddScale pins every field of the element-wise Add and
// Scale used when the sweep engine averages per-trial breakdowns.
func TestBreakdownAddScale(t *testing.T) {
	a := Breakdown{Data: 1, Summary: 2, Mapping: 3, Query: 4, Reply: 5, AggReply: 6, Beacon: 7}
	b := Breakdown{Data: 10, Summary: 20, Mapping: 30, Query: 40, Reply: 50, AggReply: 60, Beacon: 70}
	sum := a.Add(b)
	want := Breakdown{Data: 11, Summary: 22, Mapping: 33, Query: 44, Reply: 55, AggReply: 66, Beacon: 77}
	if sum != want {
		t.Fatalf("Add = %+v, want %+v", sum, want)
	}
	if sum.Total() != 11+22+33+44+55+66 {
		t.Fatalf("Add total = %f (beacons must stay excluded)", sum.Total())
	}
	scaled := want.Scale(0.5)
	wantScaled := Breakdown{Data: 5.5, Summary: 11, Mapping: 16.5, Query: 22, Reply: 27.5, AggReply: 33, Beacon: 38.5}
	if scaled != wantScaled {
		t.Fatalf("Scale = %+v, want %+v", scaled, wantScaled)
	}
	if (Breakdown{}).Add(Breakdown{}) != (Breakdown{}) {
		t.Fatal("zero Add not zero")
	}
}

func TestClassStrings(t *testing.T) {
	names := map[Class]string{
		Data: "data", Summary: "summary", Mapping: "mapping",
		Query: "query", Reply: "reply", AggReply: "aggreply", Beacon: "beacon",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%v.String() = %q", uint8(c), c.String())
		}
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class has empty name")
	}
	if len(Classes()) != 7 {
		t.Fatalf("classes = %v", Classes())
	}
}

// Property: Merge is equivalent to counting everything on one counter.
func TestMergeEquivalenceProperty(t *testing.T) {
	f := func(events []uint16) bool {
		single, a, b := NewCounters(), NewCounters(), NewCounters()
		for i, e := range events {
			node := uint16(e % 8)
			class := Class(e % uint16(numClasses))
			single.CountSend(node, class, 10)
			if i%2 == 0 {
				a.CountSend(node, class, 10)
			} else {
				b.CountSend(node, class, 10)
			}
		}
		a.Merge(b)
		for c := Class(0); c < numClasses; c++ {
			if single.Sent(c) != a.Sent(c) {
				return false
			}
		}
		return single.TotalWithBeacons() == a.TotalWithBeacons()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
