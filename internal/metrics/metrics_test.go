package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersSendReceive(t *testing.T) {
	m := NewCounters()
	m.CountSend(1, Data, 10)
	m.CountSend(1, Data, 10)
	m.CountSend(2, Query, 10)
	m.CountReceive(0, Data, 10)
	if m.Sent(Data) != 2 || m.Sent(Query) != 1 || m.Sent(Reply) != 0 {
		t.Fatalf("sent counts wrong: %d %d", m.Sent(Data), m.Sent(Query))
	}
	if m.Received(Data) != 1 {
		t.Fatalf("received = %d", m.Received(Data))
	}
	if m.SentBy(1, Data) != 2 || m.SentBy(2, Query) != 1 || m.SentBy(3, Data) != 0 {
		t.Fatal("per-node sends wrong")
	}
	if m.ReceivedBy(0, Data) != 1 || m.ReceivedBy(1, Data) != 0 {
		t.Fatal("per-node receives wrong")
	}
}

func TestTotalExcludesBeacons(t *testing.T) {
	m := NewCounters()
	m.CountSend(1, Data, 10)
	m.CountSend(1, Beacon, 10)
	m.CountSend(1, Beacon, 10)
	if m.Total() != 1 {
		t.Fatalf("total = %d, want beacons excluded", m.Total())
	}
	if m.TotalWithBeacons() != 3 {
		t.Fatalf("total with beacons = %d", m.TotalWithBeacons())
	}
	if m.TotalSentBy(1) != 1 {
		t.Fatalf("per-node total = %d", m.TotalSentBy(1))
	}
}

func TestDrops(t *testing.T) {
	m := NewCounters()
	m.CountDrop("collision")
	m.CountDrop("collision")
	m.CountDrop("queue")
	if m.Drops("collision") != 2 || m.Drops("queue") != 1 || m.Drops("none") != 0 {
		t.Fatal("drop counts wrong")
	}
	causes := m.DropCauses()
	if len(causes) != 2 || causes[0] != "collision" || causes[1] != "queue" {
		t.Fatalf("causes = %v", causes)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.CountSend(1, Data, 10)
	b.CountSend(1, Data, 10)
	b.CountSend(2, Summary, 10)
	b.CountReceive(0, Summary, 10)
	b.CountDrop("queue")
	a.Merge(b)
	if a.Sent(Data) != 2 || a.Sent(Summary) != 1 {
		t.Fatal("merged sends wrong")
	}
	if a.SentBy(1, Data) != 2 || a.SentBy(2, Summary) != 1 {
		t.Fatal("merged per-node sends wrong")
	}
	if a.Received(Summary) != 1 || a.Drops("queue") != 1 {
		t.Fatal("merged receives/drops wrong")
	}
}

func TestSnapshotAndBreakdown(t *testing.T) {
	m := NewCounters()
	for i := 0; i < 3; i++ {
		m.CountSend(1, Data, 10)
	}
	m.CountSend(1, Reply, 10)
	m.CountSend(1, Beacon, 10)
	b := m.Snapshot()
	if b.Data != 3 || b.Reply != 1 || b.Beacon != 1 {
		t.Fatalf("snapshot = %+v", b)
	}
	if b.Total() != 4 {
		t.Fatalf("breakdown total = %f", b.Total())
	}
	sum := b.Add(b)
	if sum.Data != 6 || sum.Total() != 8 {
		t.Fatalf("add = %+v", sum)
	}
	half := b.Scale(0.5)
	if half.Data != 1.5 {
		t.Fatalf("scale = %+v", half)
	}
	if !strings.Contains(b.String(), "data=3") {
		t.Fatalf("string = %q", b.String())
	}
}

func TestClassStrings(t *testing.T) {
	names := map[Class]string{
		Data: "data", Summary: "summary", Mapping: "mapping",
		Query: "query", Reply: "reply", AggReply: "aggreply", Beacon: "beacon",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%v.String() = %q", uint8(c), c.String())
		}
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class has empty name")
	}
	if len(Classes()) != 7 {
		t.Fatalf("classes = %v", Classes())
	}
}

// Property: Merge is equivalent to counting everything on one counter.
func TestMergeEquivalenceProperty(t *testing.T) {
	f := func(events []uint16) bool {
		single, a, b := NewCounters(), NewCounters(), NewCounters()
		for i, e := range events {
			node := uint16(e % 8)
			class := Class(e % uint16(numClasses))
			single.CountSend(node, class, 10)
			if i%2 == 0 {
				a.CountSend(node, class, 10)
			} else {
				b.CountSend(node, class, 10)
			}
		}
		a.Merge(b)
		for c := Class(0); c < numClasses; c++ {
			if single.Sent(c) != a.Sent(c) {
				return false
			}
		}
		return single.TotalWithBeacons() == a.TotalWithBeacons()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
