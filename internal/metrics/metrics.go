// Package metrics provides message accounting for sensor-network
// simulations. The Scoop paper's cost metric is the total number of
// messages nodes collectively send, broken down by message class
// (data, summary, mapping, query, reply, beacon), so every transmission
// in the simulator is recorded here.
//
// Counters are plain in-memory tallies owned by a single simulation run;
// they are not safe for concurrent use. Experiment harnesses that run
// trials in parallel give each trial its own Counters and merge afterwards.
package metrics

import (
	"fmt"
	"strings"

	"scoop/internal/dense"
)

// Class identifies the protocol role of a message, mirroring the
// breakdown in Figure 3 of the paper.
type Class uint8

// Message classes. Beacon traffic (tree maintenance) exists in all
// storage policies and is reported separately, as the paper's counts
// exclude routing-tree heartbeats from the per-policy comparison.
const (
	Data Class = iota
	Summary
	Mapping
	Query
	Reply
	AggReply // combined partial-aggregate replies (in-network aggregation)
	Beacon
	numClasses
)

// String returns the lower-case class name used in reports.
func (c Class) String() string {
	switch c {
	case Data:
		return "data"
	case Summary:
		return "summary"
	case Mapping:
		return "mapping"
	case Query:
		return "query"
	case Reply:
		return "reply"
	case AggReply:
		return "aggreply"
	case Beacon:
		return "beacon"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classes lists all message classes in display order.
func Classes() []Class {
	return []Class{Data, Summary, Mapping, Query, Reply, AggReply, Beacon}
}

// NumClasses is the number of message classes, for observers that keep
// per-class tables (telemetry windows, trace summaries).
const NumClasses = int(numClasses)

// ParseClass maps a class name (as produced by Class.String) back to
// the Class, reporting whether the name was recognised.
func ParseClass(s string) (Class, bool) {
	for c := Class(0); c < numClasses; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// DropCause identifies why a packet or reading was lost. A closed enum
// (rather than the free strings it replaced) means a typo'd cause can
// no longer silently split a counter, and trace events share the same
// values.
type DropCause uint8

// Drop causes. The packet-level causes (collision, queue, retries) are
// counted by the MAC in Counters; the reading-level causes (ttl,
// noroute, radio, reboot) account end-to-end data loss in core and
// feed reading-loss trace events and invariant probes.
const (
	DropCollision DropCause = iota // frame destroyed by an overlapping transmission
	DropQueue                      // send queue full (saturation)
	DropRetries                    // unicast gave up after MaxAttempts
	DropTTL                        // data message exceeded MaxHops
	DropNoRoute                    // no parent/owner route available
	DropRadio                      // link-layer send failed (ack never seen)
	DropReboot                     // state lost to a node reboot
	DropBlackout                   // link inside a scripted regional blackout
	DropPartition                  // link across a scripted partition cut
	DropBurst                      // correlated burst-loss window degraded the link
	numDropCauses
)

// NumDropCauses is the number of drop causes, for per-cause tables.
const NumDropCauses = int(numDropCauses)

// String returns the lower-case cause name used in reports and traces.
func (c DropCause) String() string {
	switch c {
	case DropCollision:
		return "collision"
	case DropQueue:
		return "queue"
	case DropRetries:
		return "retries"
	case DropTTL:
		return "ttl"
	case DropNoRoute:
		return "noroute"
	case DropRadio:
		return "radio"
	case DropReboot:
		return "reboot"
	case DropBlackout:
		return "blackout"
	case DropPartition:
		return "partition"
	case DropBurst:
		return "burst"
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// ParseDropCause maps a cause name (as produced by DropCause.String)
// back to the DropCause, reporting whether the name was recognised.
func ParseDropCause(s string) (DropCause, bool) {
	for c := DropCause(0); c < numDropCauses; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// AllDropCauses lists every drop cause in enum order.
func AllDropCauses() []DropCause {
	return []DropCause{DropCollision, DropQueue, DropRetries, DropTTL, DropNoRoute, DropRadio, DropReboot,
		DropBlackout, DropPartition, DropBurst}
}

// Counters accumulates per-class and per-node message counts for one
// simulation run. Per-node tallies live in flat slices keyed by dense
// node ID (grown on demand), so the per-transmission and per-delivery
// counting paths do no hashing and no steady-state allocation — at
// 1000 nodes these are among the hottest calls in the simulator.
type Counters struct {
	sent     [numClasses]int64 // transmissions, including retries
	received [numClasses]int64 // link-layer deliveries to the addressee
	sentBy   []int64           // [id*numClasses + class]
	recvBy   []int64           // [id*numClasses + class]

	// Byte tallies feed the energy model (radio cost is per bit).
	// Snooped bytes are frames overheard by non-addressees — they cost
	// the same reception energy, and in dense networks dominate it.
	// Per-class sent bytes feed the query engine's bytes-per-answer
	// accounting (tuple return vs in-network aggregation).
	sentBytes    int64
	sentBytesC   [numClasses]int64
	recvBytes    int64
	snoopBytes   int64
	sentBytesBy  []int64
	recvBytesBy  []int64
	snoopBytesBy []int64

	// Delivery bookkeeping for loss-rate experiments, keyed by the
	// closed DropCause enum.
	dropped [numDropCauses]int64
}

// NewCounters returns empty counters ready for use. Per-node tables
// grow to the highest node ID observed.
func NewCounters() *Counters {
	return &Counters{}
}

// CountSend records one transmission of class c and the given frame
// size by node id.
func (m *Counters) CountSend(id uint16, c Class, bytes int) {
	m.sent[c]++
	i := int(id)
	m.sentBy = dense.Grow(m.sentBy, (i+1)*int(numClasses)-1)
	m.sentBy[i*int(numClasses)+int(c)]++
	m.sentBytesBy = dense.Grow(m.sentBytesBy, i)
	m.sentBytesBy[i] += int64(bytes)
	m.sentBytes += int64(bytes)
	m.sentBytesC[c] += int64(bytes)
}

// CountReceive records one successful delivery of class c and frame
// size to node id.
func (m *Counters) CountReceive(id uint16, c Class, bytes int) {
	m.received[c]++
	i := int(id)
	m.recvBy = dense.Grow(m.recvBy, (i+1)*int(numClasses)-1)
	m.recvBy[i*int(numClasses)+int(c)]++
	m.recvBytes += int64(bytes)
	m.recvBytesBy = dense.Grow(m.recvBytesBy, i)
	m.recvBytesBy[i] += int64(bytes)
}

// CountSnoop records bytes a non-addressee overheard.
func (m *Counters) CountSnoop(id uint16, bytes int) {
	m.snoopBytes += int64(bytes)
	m.snoopBytesBy = dense.Grow(m.snoopBytesBy, int(id))
	m.snoopBytesBy[id] += int64(bytes)
}

// SnoopedBytes returns the total bytes overheard by non-addressees.
func (m *Counters) SnoopedBytes() int64 { return m.snoopBytes }

// SnoopedBytesBy returns the bytes node id overheard.
func (m *Counters) SnoopedBytesBy(id uint16) int64 { return at(m.snoopBytesBy, int(id)) }

// at reads s[i], treating out-of-range as zero (a node that never
// triggered growth has no tallies).
func at(s []int64, i int) int64 {
	if i < len(s) {
		return s[i]
	}
	return 0
}

// SentBytes returns the total bytes transmitted (all nodes).
func (m *Counters) SentBytes() int64 { return m.sentBytes }

// SentBytesClass returns the bytes transmitted carrying class c.
func (m *Counters) SentBytesClass(c Class) int64 { return m.sentBytesC[c] }

// ReceivedBytes returns the total bytes delivered to addressees.
func (m *Counters) ReceivedBytes() int64 { return m.recvBytes }

// SentBytesBy returns the bytes node id transmitted.
func (m *Counters) SentBytesBy(id uint16) int64 { return at(m.sentBytesBy, int(id)) }

// ReceivedBytesBy returns the bytes delivered to node id.
func (m *Counters) ReceivedBytesBy(id uint16) int64 { return at(m.recvBytesBy, int(id)) }

// CountDrop records a lost packet under the given cause.
func (m *Counters) CountDrop(cause DropCause) { m.dropped[cause]++ }

// Sent returns the number of transmissions of class c across all nodes.
func (m *Counters) Sent(c Class) int64 { return m.sent[c] }

// Received returns the number of deliveries of class c across all nodes.
func (m *Counters) Received(c Class) int64 { return m.received[c] }

// SentBy returns the number of transmissions of class c by node id.
func (m *Counters) SentBy(id uint16, c Class) int64 {
	return at(m.sentBy, int(id)*int(numClasses)+int(c))
}

// ReceivedBy returns the number of deliveries of class c to node id.
func (m *Counters) ReceivedBy(id uint16, c Class) int64 {
	return at(m.recvBy, int(id)*int(numClasses)+int(c))
}

// TotalSentBy returns all transmissions by node id, excluding beacons.
func (m *Counters) TotalSentBy(id uint16) int64 {
	var t int64
	for c := Class(0); c < numClasses; c++ {
		if c == Beacon {
			continue
		}
		t += m.SentBy(id, c)
	}
	return t
}

// Total returns all transmissions excluding beacon (tree-maintenance)
// traffic: the paper's comparison metric.
func (m *Counters) Total() int64 {
	var t int64
	for c := Class(0); c < numClasses; c++ {
		if c == Beacon {
			continue
		}
		t += m.sent[c]
	}
	return t
}

// TotalWithBeacons returns all transmissions including beacons.
func (m *Counters) TotalWithBeacons() int64 {
	var t int64
	for c := Class(0); c < numClasses; c++ {
		t += m.sent[c]
	}
	return t
}

// Drops returns the drop count recorded under the given cause.
func (m *Counters) Drops(cause DropCause) int64 { return m.dropped[cause] }

// DropCauses returns all causes with nonzero drops, in enum order.
func (m *Counters) DropCauses() []DropCause {
	causes := make([]DropCause, 0, NumDropCauses)
	for c := DropCause(0); c < numDropCauses; c++ {
		if m.dropped[c] != 0 {
			causes = append(causes, c)
		}
	}
	return causes
}

// addInto element-wise adds src into dst, growing dst as needed.
func addInto(dst, src []int64) []int64 {
	dst = dense.Grow(dst, len(src)-1)
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Merge adds other's counts into m. Useful when averaging trials.
func (m *Counters) Merge(other *Counters) {
	for c := Class(0); c < numClasses; c++ {
		m.sent[c] += other.sent[c]
		m.received[c] += other.received[c]
	}
	m.sentBy = addInto(m.sentBy, other.sentBy)
	m.recvBy = addInto(m.recvBy, other.recvBy)
	m.sentBytes += other.sentBytes
	for c := Class(0); c < numClasses; c++ {
		m.sentBytesC[c] += other.sentBytesC[c]
	}
	m.recvBytes += other.recvBytes
	m.snoopBytes += other.snoopBytes
	m.sentBytesBy = addInto(m.sentBytesBy, other.sentBytesBy)
	m.recvBytesBy = addInto(m.recvBytesBy, other.recvBytesBy)
	m.snoopBytesBy = addInto(m.snoopBytesBy, other.snoopBytesBy)
	for c := DropCause(0); c < numDropCauses; c++ {
		m.dropped[c] += other.dropped[c]
	}
}

// Breakdown is a fixed snapshot of per-class transmission counts, the
// unit the figures in the paper plot.
type Breakdown struct {
	Data     float64
	Summary  float64
	Mapping  float64
	Query    float64
	Reply    float64
	AggReply float64
	Beacon   float64
}

// Snapshot extracts a Breakdown from the counters.
func (m *Counters) Snapshot() Breakdown {
	return Breakdown{
		Data:     float64(m.sent[Data]),
		Summary:  float64(m.sent[Summary]),
		Mapping:  float64(m.sent[Mapping]),
		Query:    float64(m.sent[Query]),
		Reply:    float64(m.sent[Reply]),
		AggReply: float64(m.sent[AggReply]),
		Beacon:   float64(m.sent[Beacon]),
	}
}

// Total returns the comparison-metric total (beacons excluded).
func (b Breakdown) Total() float64 {
	return b.Data + b.Summary + b.Mapping + b.Query + b.Reply + b.AggReply
}

// Add returns the element-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Data:     b.Data + o.Data,
		Summary:  b.Summary + o.Summary,
		Mapping:  b.Mapping + o.Mapping,
		Query:    b.Query + o.Query,
		Reply:    b.Reply + o.Reply,
		AggReply: b.AggReply + o.AggReply,
		Beacon:   b.Beacon + o.Beacon,
	}
}

// Scale returns the breakdown multiplied by f (e.g. 1/trials).
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		Data:     b.Data * f,
		Summary:  b.Summary * f,
		Mapping:  b.Mapping * f,
		Query:    b.Query * f,
		Reply:    b.Reply * f,
		AggReply: b.AggReply * f,
		Beacon:   b.Beacon * f,
	}
}

// String renders the breakdown as a compact single-line report.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total=%.0f data=%.0f summary=%.0f mapping=%.0f query=%.0f reply=%.0f aggreply=%.0f",
		b.Total(), b.Data, b.Summary, b.Mapping, b.Query, b.Reply, b.AggReply)
	return sb.String()
}
