package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestByteAccounting(t *testing.T) {
	m := NewCounters()
	m.CountSend(1, Data, 30)
	m.CountSend(1, Data, 20)
	m.CountReceive(2, Data, 30)
	if m.SentBytes() != 50 || m.SentBytesBy(1) != 50 || m.SentBytesBy(2) != 0 {
		t.Fatalf("sent bytes: total=%d by1=%d", m.SentBytes(), m.SentBytesBy(1))
	}
	if m.ReceivedBytes() != 30 || m.ReceivedBytesBy(2) != 30 {
		t.Fatal("received bytes wrong")
	}
	other := NewCounters()
	other.CountSend(1, Data, 5)
	m.Merge(other)
	if m.SentBytes() != 55 || m.SentBytesBy(1) != 55 {
		t.Fatal("merged bytes wrong")
	}
}

func TestNodeEnergyComposition(t *testing.T) {
	e := DefaultEnergyModel()
	m := NewCounters()
	m.CountSend(1, Data, 100)
	m.CountReceive(1, Data, 50)
	const secs = 1000.0
	got := e.NodeEnergy(m, 1, secs, false)
	want := 100*e.TxPerByte + 50*e.RxPerByte + secs*e.IdleDutyCycle*e.IdlePerSec
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("energy = %g, want %g", got, want)
	}
	// The root listens continuously: strictly more idle cost.
	root := e.NodeEnergy(m, 1, secs, true)
	if root <= got {
		t.Fatal("always-on root not more expensive than duty-cycled node")
	}
}

func TestLifetimeDays(t *testing.T) {
	e := DefaultEnergyModel()
	// Constant 1 W drain: lifetime = capacity seconds.
	days := e.LifetimeDays(3600, 3600) // 1 W for an hour
	want := e.BatteryJ / 86400
	if math.Abs(days-want) > 1e-9 {
		t.Fatalf("lifetime = %f days, want %f", days, want)
	}
	if e.LifetimeDays(0, 100) != 0 || e.LifetimeDays(1, 0) != 0 {
		t.Fatal("degenerate inputs not zero")
	}
}

func TestEnergyReport(t *testing.T) {
	e := DefaultEnergyModel()
	m := NewCounters()
	// Root receives a lot; node 2 transmits a lot; node 1 idles.
	m.CountReceive(0, Data, 10000)
	m.CountSend(2, Data, 8000)
	r := e.Energy(m, 3, 2400)
	if r.RootJ <= r.AvgNodeJ {
		t.Fatal("always-on receiving root should dominate")
	}
	if r.MostLoadedNode != 2 {
		t.Fatalf("most loaded = %d, want 2", r.MostLoadedNode)
	}
	if r.AvgNodeDays <= 0 || r.RootDays <= 0 {
		t.Fatal("non-positive lifetimes")
	}
	if r.RootDays >= r.AvgNodeDays {
		t.Fatal("root should run out first")
	}
	if r.CommsFraction <= 0 || r.CommsFraction >= 1 {
		t.Fatalf("comms fraction = %f", r.CommsFraction)
	}
	if !strings.Contains(r.String(), "root") {
		t.Fatal("report string malformed")
	}
	if r.TotalNetworkJ < r.RootJ {
		t.Fatal("total below root alone")
	}
}
