package metrics

// Transition metrics: how a run behaves *through* a perturbation, not
// just on average. The experiment harness samples cumulative run
// statistics into fixed-width windows and marks each injected
// perturbation; this file turns those into the numbers the dynamics
// experiments report — delivery ratio before/during/after the
// perturbed span, staleness-induced misroutes, data cost per reading,
// and reconvergence time (how long after the last perturbation the
// network takes to deliver like it did before the first).
//
// Times are virtual milliseconds as plain int64: this package must
// not import netsim (netsim imports metrics).

// TransitionWindow is one fixed-width sample of run statistics: the
// deltas of the cumulative counters over [Start,End).
type TransitionWindow struct {
	Start, End int64

	Produced      int64 // readings sampled
	StoredUnique  int64 // distinct readings stored at least once
	StoredAtOwner int64 // routed readings that reached their owner
	StoredAtBase  int64 // routed readings that washed up at the base

	RepliesExpected int64 // targeted nodes across queries issued
	RepliesReceived int64 // their replies that made it back

	Msgs float64 // transmissions, beacons excluded
	Data float64 // data-class transmissions
}

// DeliveryRatio is the fraction of produced readings stored at least
// once during the window.
func (w TransitionWindow) DeliveryRatio() float64 {
	if w.Produced == 0 {
		return 0
	}
	return float64(w.StoredUnique) / float64(w.Produced)
}

// QueryDeliveryRatio is the fraction of expected query replies that
// arrived during the window.
func (w TransitionWindow) QueryDeliveryRatio() float64 {
	if w.RepliesExpected == 0 {
		return 0
	}
	return float64(w.RepliesReceived) / float64(w.RepliesExpected)
}

// MisrouteRatio is the fraction of routed readings that missed their
// owner and washed up at the base — under a stale index this is what
// rises first.
func (w TransitionWindow) MisrouteRatio() float64 {
	routed := w.StoredAtOwner + w.StoredAtBase
	if routed == 0 {
		return 0
	}
	return float64(w.StoredAtBase) / float64(routed)
}

// CostPerReading is data-class transmissions per produced reading —
// the per-window view of the paper's cost metric, and the number the
// drift-recovery experiments watch.
func (w TransitionWindow) CostPerReading() float64 {
	if w.Produced == 0 {
		return 0
	}
	return w.Data / float64(w.Produced)
}

// Mark is one applied perturbation.
type Mark struct {
	At   int64
	Kind string
}

// Timeline is a run's transition record: windows plus perturbation
// marks, both in time order.
type Timeline struct {
	Windows []TransitionWindow
	Marks   []Mark
}

// AddMark records a perturbation applied at virtual time at.
func (t *Timeline) AddMark(at int64, kind string) {
	t.Marks = append(t.Marks, Mark{At: at, Kind: kind})
}

// span returns the first and last mark times (ok=false without marks).
func (t *Timeline) span() (first, last int64, ok bool) {
	if len(t.Marks) == 0 {
		return 0, 0, false
	}
	first, last = t.Marks[0].At, t.Marks[0].At
	for _, m := range t.Marks[1:] {
		if m.At < first {
			first = m.At
		}
		if m.At > last {
			last = m.At
		}
	}
	return first, last, true
}

// MeanOver averages f over the windows fully inside [from,to). It
// returns 0 when no window qualifies.
func (t *Timeline) MeanOver(from, to int64, f func(TransitionWindow) float64) float64 {
	sum, n := 0.0, 0
	for _, w := range t.Windows {
		if w.Start >= from && w.End <= to {
			sum += f(w)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TailMean averages f over the last k windows (all windows when k
// exceeds their number).
func (t *Timeline) TailMean(k int, f func(TransitionWindow) float64) float64 {
	ws := t.Windows
	if k < len(ws) {
		ws = ws[len(ws)-k:]
	}
	sum := 0.0
	for _, w := range ws {
		sum += f(w)
	}
	if len(ws) == 0 {
		return 0
	}
	return sum / float64(len(ws))
}

// TransitionSummary condenses a timeline around its perturbed span.
type TransitionSummary struct {
	// Delivery ratios before the first mark, between first and last
	// mark (inclusive of overlapping windows), and after the last.
	DeliveryBefore, DeliveryDuring, DeliveryAfter float64
	// Misroute ratios over the same three spans.
	MisrouteBefore, MisrouteDuring, MisrouteAfter float64
	// Data cost per reading over the same three spans.
	CostBefore, CostDuring, CostAfter float64
	// ReconvergenceMS is the virtual time from the last mark until the
	// start of the first window (at or after it) from which delivery
	// stays within tol of DeliveryBefore; -1 when delivery never
	// recovers within the recorded timeline.
	ReconvergenceMS int64
}

// Summarize computes the transition summary with the given relative
// delivery tolerance (e.g. 0.05: recovered means within 5% of the
// pre-perturbation delivery ratio). ok is false when the timeline has
// no marks or no windows before the first mark.
func (t *Timeline) Summarize(tol float64) (TransitionSummary, bool) {
	first, last, ok := t.span()
	if !ok || len(t.Windows) == 0 {
		return TransitionSummary{}, false
	}
	var s TransitionSummary
	var before, during, after []TransitionWindow
	for _, w := range t.Windows {
		switch {
		case w.End <= first:
			before = append(before, w)
		case w.Start >= last:
			after = append(after, w)
		default:
			during = append(during, w)
		}
	}
	if len(before) == 0 {
		return TransitionSummary{}, false
	}
	mean := func(ws []TransitionWindow, f func(TransitionWindow) float64) float64 {
		if len(ws) == 0 {
			return 0
		}
		sum := 0.0
		for _, w := range ws {
			sum += f(w)
		}
		return sum / float64(len(ws))
	}
	s.DeliveryBefore = mean(before, TransitionWindow.DeliveryRatio)
	s.DeliveryDuring = mean(during, TransitionWindow.DeliveryRatio)
	s.DeliveryAfter = mean(after, TransitionWindow.DeliveryRatio)
	s.MisrouteBefore = mean(before, TransitionWindow.MisrouteRatio)
	s.MisrouteDuring = mean(during, TransitionWindow.MisrouteRatio)
	s.MisrouteAfter = mean(after, TransitionWindow.MisrouteRatio)
	s.CostBefore = mean(before, TransitionWindow.CostPerReading)
	s.CostDuring = mean(during, TransitionWindow.CostPerReading)
	s.CostAfter = mean(after, TransitionWindow.CostPerReading)

	s.ReconvergenceMS = -1
	floor := s.DeliveryBefore * (1 - tol)
	// Reconvergence: the first post-perturbation window from which
	// delivery never drops below the floor again.
	for i, w := range t.Windows {
		if w.Start < last {
			continue
		}
		good := true
		for _, later := range t.Windows[i:] {
			if later.DeliveryRatio() < floor {
				good = false
				break
			}
		}
		if good {
			s.ReconvergenceMS = w.Start - last
			if s.ReconvergenceMS < 0 {
				s.ReconvergenceMS = 0
			}
			break
		}
	}
	return s, true
}
