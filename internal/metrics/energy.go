package metrics

import "fmt"

// EnergyModel converts radio activity into Joules, using the hardware
// numbers from the paper's §2.1: radio around 700 nJ per transmitted
// bit (two orders of magnitude above Flash), reception of comparable
// order, and — dominating everything on nodes that must keep their
// radio powered — idle listening. The paper's energy discussion ("up
// to 90% of the energy consumption … is due to communication", "the
// radio must be on at all times" for the root) follows directly from
// these constants.
type EnergyModel struct {
	TxPerByte  float64 // J per transmitted byte
	RxPerByte  float64 // J per received byte
	IdlePerSec float64 // J per second of idle listening (radio on)
	// IdleDutyCycle is the fraction of time a non-root node keeps its
	// radio on (low-power listening); the root listens continuously.
	IdleDutyCycle float64
	// BatteryJ is the usable battery capacity (2×AA ≈ 20 kJ usable).
	BatteryJ float64
}

// DefaultEnergyModel returns Mica2-era constants: 700 nJ/bit radio
// (paper §2.1), reception at ~60% of transmit cost, ~15 mW listening
// (the paper's "current generation 802.15.4 radios consume about 15 mJ
// of power per second"), 10% duty-cycled listening on regular nodes.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		TxPerByte:     700e-9 * 8,
		RxPerByte:     420e-9 * 8,
		IdlePerSec:    15e-3,
		IdleDutyCycle: 0.01,
		BatteryJ:      20e3,
	}
}

// NodeEnergy reports node id's energy use over a run of the given
// duration (seconds): transmit + receive + idle listening.
func (e EnergyModel) NodeEnergy(m *Counters, id uint16, seconds float64, isRoot bool) float64 {
	duty := e.IdleDutyCycle
	if isRoot {
		duty = 1 // the root's radio is always on (paper §6)
	}
	return float64(m.SentBytesBy(id))*e.TxPerByte +
		float64(m.ReceivedBytesBy(id)+m.SnoopedBytesBy(id))*e.RxPerByte +
		seconds*duty*e.IdlePerSec
}

// LifetimeDays extrapolates how long the battery lasts if the run's
// average power draw continued indefinitely.
func (e EnergyModel) LifetimeDays(energyJ, seconds float64) float64 {
	if energyJ <= 0 || seconds <= 0 {
		return 0
	}
	watts := energyJ / seconds
	return e.BatteryJ / watts / 86400
}

// EnergyReport summarises a run's energy picture: the mean non-root
// node and the root, both in Joules over the run and extrapolated
// battery-lifetime days — the quantities behind the paper's "one
// month vs three months, root every two weeks" comparison.
type EnergyReport struct {
	AvgNodeJ       float64
	RootJ          float64
	AvgNodeDays    float64
	RootDays       float64
	CommsFraction  float64 // share of non-idle (radio tx+rx) energy on the avg node
	TotalNetworkJ  float64
	MostLoadedNode uint16
	MostLoadedJ    float64
}

// Energy computes the report for an n-node run of the given duration
// in virtual seconds, with node 0 as root.
func (e EnergyModel) Energy(m *Counters, n int, seconds float64) EnergyReport {
	var r EnergyReport
	var sum float64
	for id := 1; id < n; id++ {
		j := e.NodeEnergy(m, uint16(id), seconds, false)
		sum += j
		if j > r.MostLoadedJ {
			r.MostLoadedJ, r.MostLoadedNode = j, uint16(id)
		}
	}
	r.AvgNodeJ = sum / float64(n-1)
	r.RootJ = e.NodeEnergy(m, 0, seconds, true)
	r.TotalNetworkJ = sum + r.RootJ
	r.AvgNodeDays = e.LifetimeDays(r.AvgNodeJ, seconds)
	r.RootDays = e.LifetimeDays(r.RootJ, seconds)
	comms := float64(m.SentBytes()-m.SentBytesBy(0))*e.TxPerByte +
		float64(m.ReceivedBytes()-m.ReceivedBytesBy(0))*e.RxPerByte +
		float64(m.SnoopedBytes()-m.SnoopedBytesBy(0))*e.RxPerByte
	idle := seconds * e.IdlePerSec * e.IdleDutyCycle * float64(n-1)
	if comms+idle > 0 {
		r.CommsFraction = comms / (comms + idle)
	}
	return r
}

// String renders the report compactly.
func (r EnergyReport) String() string {
	return fmt.Sprintf("avg-node %.1f J (%.0f days), root %.1f J (%.0f days), comms share %.0f%%",
		r.AvgNodeJ, r.AvgNodeDays, r.RootJ, r.RootDays, 100*r.CommsFraction)
}
