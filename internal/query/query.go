// Package query implements Scoop's aggregate query engine: the
// aggregate operator model (COUNT/SUM/MIN/MAX/AVG plus approximate
// quantiles), the mergeable partial-aggregate state that flows up the
// routing tree TAG-style (Madden et al.), the summary-based estimator
// that answers aggregates at the basestation with an error bound, and
// the cost-based planner that picks the cheapest physical plan per
// query.
//
// The package is deliberately protocol-agnostic: internal/core adapts
// its messages and node state to these types, and the experiment
// harness consumes the planner's decisions for accounting. Nothing
// here touches the radio.
package query

import (
	"fmt"

	"scoop/internal/netsim"
)

// Op is an aggregate operator. OpSelect is the degenerate "SELECT *"
// tuple-return operator kept so one query model covers both workloads.
type Op uint8

// Aggregate operators.
const (
	OpSelect Op = iota // return matching tuples (no aggregation)
	OpCount
	OpSum
	OpMin
	OpMax
	OpAvg
	OpQuantile // approximate quantile, served from summaries only
	numOps
)

// String returns the lower-case operator name.
func (o Op) String() string {
	switch o {
	case OpSelect:
		return "select"
	case OpCount:
		return "count"
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpAvg:
		return "avg"
	case OpQuantile:
		return "quantile"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Aggregate reports whether the operator reduces tuples to a scalar
// (everything but OpSelect).
func (o Op) Aggregate() bool { return o != OpSelect }

// Exact reports whether the operator can be computed exactly from
// mergeable partial state flowing up the tree. Quantiles cannot (they
// would need full histograms per packet), so they are summary-only.
func (o Op) Exact() bool { return o.Aggregate() && o != OpQuantile }

// AggQuery is one aggregate user request: an operator over a value
// range and time window, with an accuracy budget that tells the
// planner how much approximation the user tolerates.
type AggQuery struct {
	Op               Op
	Quantile         float64 // in (0,1); used by OpQuantile only
	ValueLo, ValueHi int
	TimeLo, TimeHi   netsim.Time
	// ErrBudget is the largest relative error the user accepts from an
	// approximate (summary-served) answer. 0 demands an exact plan.
	ErrBudget float64
}

// Partial is the mergeable partial-aggregate state one node (or one
// combined subtree) contributes: enough to answer COUNT, SUM, MIN,
// MAX and AVG exactly after any merge order. The zero value is the
// empty partial.
type Partial struct {
	Count    int64
	Sum      int64
	Min, Max int
}

// Empty reports whether the partial summarises no readings.
func (p Partial) Empty() bool { return p.Count == 0 }

// Add folds one reading value into the partial.
func (p *Partial) Add(v int) {
	if p.Count == 0 {
		p.Min, p.Max = v, v
	} else {
		if v < p.Min {
			p.Min = v
		}
		if v > p.Max {
			p.Max = v
		}
	}
	p.Count++
	p.Sum += int64(v)
}

// Merge folds another partial into p. Merging is commutative and
// associative, so any combining tree yields the same answer.
func (p *Partial) Merge(o Partial) {
	if o.Count == 0 {
		return
	}
	if p.Count == 0 {
		*p = o
		return
	}
	p.Count += o.Count
	p.Sum += o.Sum
	if o.Min < p.Min {
		p.Min = o.Min
	}
	if o.Max > p.Max {
		p.Max = o.Max
	}
}

// Answer evaluates the operator over the merged partial. ok is false
// when no readings matched (COUNT still answers 0, true).
func (p Partial) Answer(op Op) (float64, bool) {
	if op == OpCount {
		return float64(p.Count), true
	}
	if p.Count == 0 {
		return 0, false
	}
	switch op {
	case OpSum:
		return float64(p.Sum), true
	case OpMin:
		return float64(p.Min), true
	case OpMax:
		return float64(p.Max), true
	case OpAvg:
		return float64(p.Sum) / float64(p.Count), true
	}
	return 0, false
}
