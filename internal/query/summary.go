package query

import (
	"math"

	"scoop/internal/histogram"
	"scoop/internal/netsim"
)

// SummarySnapshot is the estimator's view of one retained summary
// message: who reported, when, and what their recent readings looked
// like. internal/core adapts its SummaryMsg history to this.
type SummarySnapshot struct {
	Node          uint16
	SentAt        netsim.Time
	Min, Max, Sum int
	Rate          float64 // readings per second
	Hist          histogram.Histogram
}

// Estimate is a summary-served answer with an error bound. ErrBound is
// a relative bound: the true answer is believed to lie within
// Value*(1±ErrBound) (for near-zero answers the bound is absolute-ish;
// callers compare it against the query's ErrBudget).
type Estimate struct {
	Valid    bool
	Value    float64
	ErrBound float64
}

// rangeMass returns the histogram probability mass inside [lo,hi] as
// (estimated, lower bound, upper bound): bins fully inside count for
// all three, partially overlapped bins contribute their overlap
// fraction to the estimate, nothing to the lower bound and everything
// to the upper bound — the bin-boundary uncertainty the error bound
// reports.
func rangeMass(h histogram.Histogram, lo, hi int) (est, lob, hib float64) {
	if h.Empty() {
		return 0, 0, 0
	}
	total := h.Total()
	if total == 0 {
		return 0, 0, 0
	}
	w := h.BinWidth()
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		blo := h.Min + i*w
		bhi := blo + w - 1
		if i == len(h.Counts)-1 && h.Max > bhi {
			bhi = h.Max // last bin absorbs the integer-rounding spill
		}
		if bhi < lo || blo > hi {
			continue
		}
		frac := float64(c) / float64(total)
		olo, ohi := blo, bhi
		if lo > olo {
			olo = lo
		}
		if hi < ohi {
			ohi = hi
		}
		overlap := float64(ohi-olo+1) / float64(bhi-blo+1)
		est += frac * overlap
		hib += frac
		if overlap >= 1 {
			lob += frac
		}
	}
	return est, lob, hib
}

// rangeMean returns the expected reading value inside [lo,hi] under
// the histogram's uniform-within-bin assumption, and the half bin
// width as its absolute uncertainty.
func rangeMean(h histogram.Histogram, lo, hi int) (mean, halfW float64, ok bool) {
	if h.Empty() || h.Total() == 0 {
		return 0, 0, false
	}
	w := h.BinWidth()
	var mass, weighted float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		blo := h.Min + i*w
		bhi := blo + w - 1
		if bhi < lo || blo > hi {
			continue
		}
		olo, ohi := blo, bhi
		if lo > olo {
			olo = lo
		}
		if hi < ohi {
			ohi = hi
		}
		m := float64(c) * float64(ohi-olo+1) / float64(bhi-blo+1)
		mass += m
		weighted += m * (float64(olo) + float64(ohi)) / 2
	}
	if mass == 0 {
		return 0, 0, false
	}
	return weighted / mass, float64(w) / 2, true
}

// latestPerNode reduces a summary history to each node's freshest
// snapshot inside the query's time window, in ascending node order.
// The order is load-bearing: estimates sum floating-point mass across
// nodes, and iterating a map here made the final bits of aggregate
// answers depend on Go's randomized map order — the one nondeterminism
// ever observed in committed sweep artifacts (DESIGN.md §2, §9).
func latestPerNode(snaps []SummarySnapshot, t0, t1 netsim.Time) []SummarySnapshot {
	byNode := make(map[uint16]SummarySnapshot)
	maxNode := uint16(0)
	for _, s := range snaps {
		if s.SentAt < t0 || s.SentAt > t1 {
			continue
		}
		if cur, ok := byNode[s.Node]; !ok || s.SentAt > cur.SentAt {
			byNode[s.Node] = s
			if s.Node > maxNode {
				maxNode = s.Node
			}
		}
	}
	out := make([]SummarySnapshot, 0, len(byNode))
	for id := uint16(0); len(out) < len(byNode); id++ {
		if s, ok := byNode[id]; ok {
			out = append(out, s)
		}
		if id == maxNode {
			break
		}
	}
	return out
}

// relErr converts an absolute uncertainty into the relative bound the
// planner compares against the budget; near-zero estimates use an
// absolute floor of 1 so the bound stays finite.
func relErr(absErr, est float64) float64 {
	den := math.Abs(est)
	if den < 1 {
		den = 1
	}
	return absErr / den
}

// extrapolationFloor is the irreducible relative uncertainty of
// rate-extrapolated counting estimates: histograms cover only the
// recent-readings buffer, so scaling their mass by rate×window can
// never be exact even when no bin is partially covered. A zero
// ErrBudget therefore always forces an exact network plan.
const extrapolationFloor = 0.10

func withFloor(bound float64) float64 {
	if bound < extrapolationFloor {
		return extrapolationFloor
	}
	return bound
}

// EstimateFromSummaries answers q approximately from retained summary
// snapshots, at zero radio cost. The estimate is invalid when no
// summary falls inside the query window or the operator cannot be
// served (OpSelect). Counting operators scale histogram mass by each
// node's reported production rate over the window, so the estimate
// tracks the true population even though each histogram only covers
// the recent-readings buffer.
func EstimateFromSummaries(q AggQuery, snaps []SummarySnapshot) Estimate {
	if !q.Op.Aggregate() {
		return Estimate{}
	}
	latest := latestPerNode(snaps, q.TimeLo, q.TimeHi)
	if len(latest) == 0 {
		return Estimate{}
	}
	windowSec := float64(q.TimeHi-q.TimeLo) / float64(netsim.Second)
	if windowSec <= 0 {
		return Estimate{}
	}

	switch q.Op {
	case OpCount, OpSum, OpAvg:
		var cnt, cntLo, cntHi, sum, sumAbsErr float64
		for _, s := range latest {
			est, lob, hib := rangeMass(s.Hist, q.ValueLo, q.ValueHi)
			if hib == 0 {
				continue
			}
			readings := s.Rate * windowSec
			cnt += est * readings
			cntLo += lob * readings
			cntHi += hib * readings
			if mean, halfW, ok := rangeMean(s.Hist, q.ValueLo, q.ValueHi); ok {
				sum += est * readings * mean
				sumAbsErr += (hib - lob) * readings * math.Abs(mean)
				sumAbsErr += est * readings * halfW
			}
		}
		if cntHi == 0 {
			// Summaries agree the range is empty: exact zero.
			if q.Op == OpCount {
				return Estimate{Valid: true, Value: 0, ErrBound: 0}
			}
			return Estimate{}
		}
		cntAbsErr := math.Max(cnt-cntLo, cntHi-cnt)
		switch q.Op {
		case OpCount:
			return Estimate{Valid: true, Value: cnt, ErrBound: withFloor(relErr(cntAbsErr, cnt))}
		case OpSum:
			return Estimate{Valid: true, Value: sum, ErrBound: withFloor(relErr(sumAbsErr, sum))}
		default: // OpAvg
			if cnt == 0 {
				return Estimate{}
			}
			avg := sum / cnt
			bound := withFloor(relErr(sumAbsErr, sum) + relErr(cntAbsErr, cnt))
			return Estimate{Valid: true, Value: avg, ErrBound: bound}
		}

	case OpMin, OpMax:
		best, bestW, found := 0.0, 0.0, false
		for _, s := range latest {
			v, w, ok := extremeInRange(s.Hist, q.ValueLo, q.ValueHi, q.Op == OpMax)
			if !ok {
				continue
			}
			if !found || (q.Op == OpMax && v > best) || (q.Op == OpMin && v < best) {
				best, bestW, found = v, w, true
			}
		}
		if !found {
			return Estimate{}
		}
		return Estimate{Valid: true, Value: best, ErrBound: relErr(bestW, best)}

	case OpQuantile:
		return quantileFromSummaries(q, latest, windowSec)
	}
	return Estimate{}
}

// extremeInRange locates the largest (or smallest) occupied histogram
// bin intersecting [lo,hi] and returns the range-clamped bin edge as
// the estimate with the bin width as absolute uncertainty.
func extremeInRange(h histogram.Histogram, lo, hi int, wantMax bool) (v, absErr float64, ok bool) {
	if h.Empty() || h.Total() == 0 {
		return 0, 0, false
	}
	w := h.BinWidth()
	found := false
	var best int
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		blo := h.Min + i*w
		bhi := blo + w - 1
		if i == len(h.Counts)-1 && h.Max > bhi {
			bhi = h.Max
		}
		if bhi < lo || blo > hi {
			continue
		}
		edge := bhi
		if !wantMax {
			edge = blo
		}
		if edge > hi {
			edge = hi
		}
		if edge < lo {
			edge = lo
		}
		if !found || (wantMax && edge > best) || (!wantMax && edge < best) {
			best, found = edge, true
		}
	}
	if !found {
		return 0, 0, false
	}
	return float64(best), float64(w), true
}

// quantileFromSummaries merges per-node histogram mass into one value
// CDF over the query range and reads the q-quantile off it. The error
// bound is the widest contributing bin relative to the answer.
func quantileFromSummaries(q AggQuery, latest []SummarySnapshot, windowSec float64) Estimate {
	frac := q.Quantile
	if frac <= 0 || frac >= 1 {
		return Estimate{}
	}
	if q.ValueHi < q.ValueLo {
		return Estimate{}
	}
	span := q.ValueHi - q.ValueLo + 1
	if span > 1<<16 {
		return Estimate{} // refuse absurd dense-CDF domains
	}
	mass := make([]float64, span)
	maxW, total := 0.0, 0.0
	for _, s := range latest {
		if s.Hist.Empty() || s.Hist.Total() == 0 {
			continue
		}
		weight := s.Rate * windowSec
		if weight <= 0 {
			continue
		}
		if w := float64(s.Hist.BinWidth()); w > maxW {
			maxW = w
		}
		for v := q.ValueLo; v <= q.ValueHi; v++ {
			m := s.Hist.Prob(v) * weight
			mass[v-q.ValueLo] += m
			total += m
		}
	}
	if total == 0 {
		return Estimate{}
	}
	target := frac * total
	cum := 0.0
	for i, m := range mass {
		cum += m
		if cum >= target {
			v := float64(q.ValueLo + i)
			return Estimate{Valid: true, Value: v, ErrBound: relErr(maxW, v)}
		}
	}
	v := float64(q.ValueHi)
	return Estimate{Valid: true, Value: v, ErrBound: relErr(maxW, v)}
}
