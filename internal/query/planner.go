package query

import (
	"fmt"

	"scoop/internal/trace"
)

// Plan is a physical query plan.
type Plan uint8

// Physical plans, cheapest-possible first.
const (
	// PlanAuto lets the planner choose (the zero value, so a zero
	// Config forces nothing).
	PlanAuto Plan = iota
	// PlanSummary answers at the basestation from retained summaries:
	// zero radio cost, approximate, with an error bound.
	PlanSummary
	// PlanAgg routes the query to the value range's owner nodes and
	// combines partial aggregates in-network up the routing tree.
	PlanAgg
	// PlanTuple is the classic owner scan with tuple return (the only
	// plan for SELECT *).
	PlanTuple
	// PlanFlood asks every node, used when no index generation covers
	// the query window.
	PlanFlood
)

// String returns the lower-case plan name.
func (p Plan) String() string {
	switch p {
	case PlanAuto:
		return "auto"
	case PlanSummary:
		return "summary"
	case PlanAgg:
		return "agg"
	case PlanTuple:
		return "tuple"
	case PlanFlood:
		return "flood"
	}
	return fmt.Sprintf("plan(%d)", uint8(p))
}

// On-air cost constants, mirroring internal/core's message sizing: a
// combined partial-aggregate reply, a tuple-reply header, one carried
// tuple, and a query packet.
const (
	aggReplyCost    = 22
	replyHeaderCost = 8
	tupleCost       = 4
	queryCost       = 30
)

// PlanInput is everything the planner needs to cost one query.
type PlanInput struct {
	Op Op
	// N is the network size including the basestation.
	N int
	// Targets is how many owner nodes the index routes the query to
	// (when no generation covers the window, pass N-1).
	Targets int
	// Covered reports whether index generations cover the whole query
	// window with non-local mappings; false forces flooding for
	// network plans.
	Covered bool
	// AvgDepth is the mean routing-tree depth of the targets in hops
	// (>= 1); the tuple plan pays it per tuple, the agg plan amortises
	// it through combining.
	AvgDepth float64
	// ExpTuples is the expected number of matching tuples across the
	// network (from the same statistics the estimator uses).
	ExpTuples float64
	// MaxTuplesPerReply caps tuples one reply message carries.
	MaxTuplesPerReply int
	// Est is the summary-served estimate for this query, if any.
	Est Estimate
	// ErrBudget is the query's accuracy budget (relative).
	ErrBudget float64
	// Force pins the physical plan (tests, ablation figures); the
	// planner still refuses a summary plan with no valid estimate and
	// an aggregate plan for OpSelect, falling back to its own choice.
	Force Plan
	// Trace, when non-nil, receives a QueryPlanned event for every
	// Choose call: Flag is the chosen plan, Value the predicted
	// on-air bytes (truncated), Aux the target count.
	Trace *trace.Recorder
}

// Decision is the planner's verdict: the chosen plan, its predicted
// on-air cost in bytes, and the error bound the answer will carry
// (zero for exact plans).
type Decision struct {
	Plan     Plan
	EstBytes float64
	EstError float64
}

// Choose picks the cheapest eligible physical plan for the query. The
// summary plan is eligible only when its error bound fits the budget;
// in-network aggregation requires an exactly-mergeable operator and a
// covering index; SELECT * always ships tuples, and quantiles outside
// their summary budget ship tuples too (computed at the base from the
// returned, possibly truncated, tuple set — partials cannot carry a
// quantile).
func Choose(in PlanInput) Decision {
	d := choose(in)
	in.Trace.Emit(trace.Event{Kind: trace.QueryPlanned, Flag: uint8(d.Plan),
		Value: int64(d.EstBytes), Aux: int64(in.Targets)})
	return d
}

func choose(in PlanInput) Decision {
	if in.AvgDepth < 1 {
		in.AvgDepth = 1
	}
	if in.Targets < 0 {
		in.Targets = 0
	}
	nodes := in.N - 1
	if nodes < 1 {
		nodes = 1
	}
	disseminate := float64(in.N) * queryCost
	flood := Decision{
		Plan:     PlanFlood,
		EstBytes: disseminate + (float64(nodes)+in.AvgDepth)*aggReplyCost,
	}

	candidates := make([]Decision, 0, 3)
	if in.Op.Aggregate() && in.Est.Valid && in.Est.ErrBound <= in.ErrBudget {
		candidates = append(candidates, Decision{Plan: PlanSummary, EstBytes: 0, EstError: in.Est.ErrBound})
	}
	if in.Op.Exact() {
		if in.Covered {
			candidates = append(candidates, Decision{
				Plan:     PlanAgg,
				EstBytes: disseminate + (float64(in.Targets)+in.AvgDepth)*aggReplyCost,
			})
		} else {
			candidates = append(candidates, flood)
		}
	}
	// Tuple return: every hop re-forwards the full payload, so the
	// byte cost multiplies by depth; per-node truncation caps it.
	tuples := in.ExpTuples
	if in.MaxTuplesPerReply > 0 {
		if lim := float64(in.Targets * in.MaxTuplesPerReply); tuples > lim {
			tuples = lim
		}
	}
	candidates = append(candidates, Decision{
		Plan:     PlanTuple,
		EstBytes: disseminate + in.AvgDepth*(float64(in.Targets)*replyHeaderCost+tuples*tupleCost),
	})

	if in.Force != PlanAuto {
		for _, c := range candidates {
			if c.Plan == in.Force {
				return c
			}
		}
		// The two in-network plans are each other's fallback: forcing
		// the indexed plan over an uncovered window floods (still
		// combining partials), and forcing flood over a covered window
		// asks everyone.
		if in.Op.Exact() && (in.Force == PlanAgg || in.Force == PlanFlood) {
			return flood
		}
	}

	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.EstBytes < best.EstBytes {
			best = c
		}
	}
	return best
}
