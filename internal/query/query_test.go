package query

import (
	"math"
	"testing"

	"scoop/internal/histogram"
	"scoop/internal/netsim"
)

func TestPartialMergeOrderIndependent(t *testing.T) {
	vals := []int{5, 9, 2, 14, 7, 7, 3}
	var all Partial
	for _, v := range vals {
		all.Add(v)
	}
	var left, right Partial
	for i, v := range vals {
		if i%2 == 0 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	merged := left
	merged.Merge(right)
	if merged != all {
		t.Fatalf("merged %+v != direct %+v", merged, all)
	}
	// Merging an empty partial is a no-op in both directions.
	var empty Partial
	merged.Merge(empty)
	if merged != all {
		t.Fatalf("merging empty changed state: %+v", merged)
	}
	empty.Merge(all)
	if empty != all {
		t.Fatalf("empty.Merge(all) = %+v", empty)
	}
}

func TestPartialAnswers(t *testing.T) {
	var p Partial
	if v, ok := p.Answer(OpCount); !ok || v != 0 {
		t.Fatalf("empty COUNT = %v,%v", v, ok)
	}
	if _, ok := p.Answer(OpAvg); ok {
		t.Fatal("empty AVG answered")
	}
	for _, v := range []int{10, 20, 30} {
		p.Add(v)
	}
	cases := []struct {
		op   Op
		want float64
	}{
		{OpCount, 3}, {OpSum, 60}, {OpMin, 10}, {OpMax, 30}, {OpAvg, 20},
	}
	for _, c := range cases {
		got, ok := p.Answer(c.op)
		if !ok || got != c.want {
			t.Fatalf("%v = %v,%v want %v", c.op, got, ok, c.want)
		}
	}
}

func TestOpProperties(t *testing.T) {
	if OpSelect.Aggregate() {
		t.Fatal("SELECT is not an aggregate")
	}
	if !OpQuantile.Aggregate() || OpQuantile.Exact() {
		t.Fatal("quantile must be aggregate but inexact")
	}
	for _, op := range []Op{OpCount, OpSum, OpMin, OpMax, OpAvg} {
		if !op.Exact() {
			t.Fatalf("%v not exact", op)
		}
	}
}

// snap builds a snapshot whose histogram summarises the given values.
func snap(node uint16, at netsim.Time, rate float64, values []int) SummarySnapshot {
	h := histogram.Build(values, 10)
	min, max, sum := values[0], values[0], 0
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return SummarySnapshot{Node: node, SentAt: at, Min: min, Max: max, Sum: sum,
		Rate: rate, Hist: h}
}

func TestEstimateCountScalesWithRate(t *testing.T) {
	// One node producing uniformly over [0,99] at 1 reading/s; a query
	// over the full domain and a 100 s window expects ~100 readings.
	vals := make([]int, 100)
	for i := range vals {
		vals[i] = i
	}
	q := AggQuery{Op: OpCount, ValueLo: 0, ValueHi: 99,
		TimeLo: 0, TimeHi: 100 * netsim.Second}
	est := EstimateFromSummaries(q, []SummarySnapshot{snap(1, 50*netsim.Second, 1, vals)})
	if !est.Valid {
		t.Fatal("estimate invalid")
	}
	if math.Abs(est.Value-100) > 1 {
		t.Fatalf("count estimate %v, want ~100", est.Value)
	}
	if est.ErrBound > extrapolationFloor {
		t.Fatalf("full-range count bound %v above the extrapolation floor", est.ErrBound)
	}
}

func TestEstimatePartialBinWidensBound(t *testing.T) {
	vals := make([]int, 100)
	for i := range vals {
		vals[i] = i
	}
	full := AggQuery{Op: OpCount, ValueLo: 0, ValueHi: 99,
		TimeLo: 0, TimeHi: 100 * netsim.Second}
	// [0,4] covers half of the first 10-wide bin: the mass of that bin
	// is entirely uncertain, so the bound must be substantial.
	narrow := full
	narrow.ValueLo, narrow.ValueHi = 0, 4
	snaps := []SummarySnapshot{snap(1, 50*netsim.Second, 1, vals)}
	ef := EstimateFromSummaries(full, snaps)
	en := EstimateFromSummaries(narrow, snaps)
	if !ef.Valid || !en.Valid {
		t.Fatal("estimates invalid")
	}
	if en.ErrBound <= ef.ErrBound {
		t.Fatalf("partial-bin bound %v not wider than full-range %v", en.ErrBound, ef.ErrBound)
	}
	if math.Abs(en.Value-5) > 1.5 {
		t.Fatalf("narrow count %v, want ~5", en.Value)
	}
}

func TestEstimateAvgAndExtremes(t *testing.T) {
	vals := make([]int, 100)
	for i := range vals {
		vals[i] = i
	}
	snaps := []SummarySnapshot{snap(1, 50*netsim.Second, 1, vals)}
	q := AggQuery{ValueLo: 0, ValueHi: 99, TimeLo: 0, TimeHi: 100 * netsim.Second}

	q.Op = OpAvg
	if est := EstimateFromSummaries(q, snaps); !est.Valid || math.Abs(est.Value-49.5) > 5 {
		t.Fatalf("avg estimate %+v, want ~49.5", est)
	}
	q.Op = OpMax
	if est := EstimateFromSummaries(q, snaps); !est.Valid || est.Value < 90 || est.Value > 99 {
		t.Fatalf("max estimate %+v, want in [90,99]", est)
	}
	q.Op = OpMin
	if est := EstimateFromSummaries(q, snaps); !est.Valid || est.Value > 9 {
		t.Fatalf("min estimate %+v, want <= 9", est)
	}
	q.Op = OpQuantile
	q.Quantile = 0.5
	if est := EstimateFromSummaries(q, snaps); !est.Valid || math.Abs(est.Value-50) > 10 {
		t.Fatalf("median estimate %+v, want ~50", est)
	}
}

func TestEstimateInvalidOutsideWindow(t *testing.T) {
	vals := []int{1, 2, 3}
	snaps := []SummarySnapshot{snap(1, 500*netsim.Second, 1, vals)}
	q := AggQuery{Op: OpCount, ValueLo: 0, ValueHi: 10,
		TimeLo: 0, TimeHi: 100 * netsim.Second}
	if est := EstimateFromSummaries(q, snaps); est.Valid {
		t.Fatalf("estimate from out-of-window summary: %+v", est)
	}
	if est := EstimateFromSummaries(AggQuery{Op: OpSelect}, snaps); est.Valid {
		t.Fatal("SELECT served from summaries")
	}
}

func TestEstimateEmptyRangeIsExactZero(t *testing.T) {
	// All mass in [0,9]; querying [500,600] must answer 0 exactly.
	vals := []int{1, 3, 5, 7, 9}
	snaps := []SummarySnapshot{snap(1, 50*netsim.Second, 1, vals)}
	q := AggQuery{Op: OpCount, ValueLo: 500, ValueHi: 600,
		TimeLo: 0, TimeHi: 100 * netsim.Second}
	est := EstimateFromSummaries(q, snaps)
	if !est.Valid || est.Value != 0 || est.ErrBound != 0 {
		t.Fatalf("empty-range count %+v, want exact 0", est)
	}
}
