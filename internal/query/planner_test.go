package query

import "testing"

func baseInput() PlanInput {
	return PlanInput{
		Op:                OpAvg,
		N:                 32,
		Targets:           4,
		Covered:           true,
		AvgDepth:          3,
		ExpTuples:         400,
		MaxTuplesPerReply: 20,
		ErrBudget:         0,
	}
}

func TestPlannerPrefersSummaryWithinBudget(t *testing.T) {
	in := baseInput()
	in.Est = Estimate{Valid: true, Value: 42, ErrBound: 0.08}
	in.ErrBudget = 0.15
	d := Choose(in)
	if d.Plan != PlanSummary {
		t.Fatalf("plan = %v, want summary", d.Plan)
	}
	if d.EstBytes != 0 || d.EstError != 0.08 {
		t.Fatalf("summary decision %+v", d)
	}
}

func TestPlannerRejectsSummaryOverBudget(t *testing.T) {
	in := baseInput()
	in.Est = Estimate{Valid: true, Value: 42, ErrBound: 0.3}
	in.ErrBudget = 0.1
	d := Choose(in)
	if d.Plan == PlanSummary {
		t.Fatal("summary plan chosen above error budget")
	}
}

func TestPlannerPicksAggOverTupleForLargeResults(t *testing.T) {
	in := baseInput() // 400 expected tuples across 4 targets
	d := Choose(in)
	if d.Plan != PlanAgg {
		t.Fatalf("plan = %v, want agg", d.Plan)
	}
	if d.EstError != 0 {
		t.Fatalf("agg plan carries error %v", d.EstError)
	}
}

func TestPlannerPicksTupleForTinyResults(t *testing.T) {
	in := baseInput()
	in.ExpTuples = 1
	in.Targets = 1
	in.AvgDepth = 1
	d := Choose(in)
	if d.Plan != PlanTuple {
		t.Fatalf("plan = %v, want tuple (1 expected tuple)", d.Plan)
	}
}

func TestPlannerSelectAlwaysTuples(t *testing.T) {
	in := baseInput()
	in.Op = OpSelect
	in.Est = Estimate{Valid: true, ErrBound: 0}
	in.ErrBudget = 1
	if d := Choose(in); d.Plan != PlanTuple {
		t.Fatalf("SELECT plan = %v", d.Plan)
	}
}

func TestPlannerFloodsUncoveredWindows(t *testing.T) {
	in := baseInput()
	in.Covered = false
	in.Targets = in.N - 1
	d := Choose(in)
	if d.Plan != PlanFlood {
		t.Fatalf("plan = %v, want flood", d.Plan)
	}
}

func TestPlannerQuantilePlans(t *testing.T) {
	in := baseInput()
	in.Op = OpQuantile
	in.Est = Estimate{Valid: true, Value: 50, ErrBound: 0.1}
	in.ErrBudget = 0.2
	if d := Choose(in); d.Plan != PlanSummary {
		t.Fatalf("quantile within budget: plan = %v", d.Plan)
	}
	// No usable estimate: ship tuples and compute the quantile at the
	// base — never an in-network plan, whose partials cannot carry a
	// quantile and so could never answer.
	in.Est = Estimate{}
	if d := Choose(in); d.Plan != PlanTuple {
		t.Fatalf("quantile without estimate: plan = %v", d.Plan)
	}
	in.Force = PlanAgg
	if d := Choose(in); d.Plan == PlanAgg || d.Plan == PlanFlood {
		t.Fatalf("forced in-network quantile chose unanswerable plan %v", d.Plan)
	}
}

func TestPlannerForceOverrides(t *testing.T) {
	in := baseInput()
	in.Force = PlanTuple
	if d := Choose(in); d.Plan != PlanTuple {
		t.Fatalf("forced tuple, got %v", d.Plan)
	}
	in.Force = PlanFlood
	if d := Choose(in); d.Plan != PlanFlood {
		t.Fatalf("forced flood, got %v", d.Plan)
	}
	// Forcing an ineligible summary plan falls back to the auto choice.
	in.Force = PlanSummary
	if d := Choose(in); d.Plan == PlanSummary {
		t.Fatal("forced summary without a valid estimate")
	}
	// Forcing the indexed in-network plan over an uncovered window
	// floods (its in-network sibling), never tuple-return.
	in.Force = PlanAgg
	in.Covered = false
	if d := Choose(in); d.Plan != PlanFlood {
		t.Fatalf("forced agg on uncovered window chose %v, want flood", d.Plan)
	}
}

func TestPlanStrings(t *testing.T) {
	want := map[Plan]string{PlanAuto: "auto", PlanSummary: "summary",
		PlanAgg: "agg", PlanTuple: "tuple", PlanFlood: "flood"}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q", p, p.String())
		}
	}
	opWant := map[Op]string{OpSelect: "select", OpCount: "count", OpSum: "sum",
		OpMin: "min", OpMax: "max", OpAvg: "avg", OpQuantile: "quantile"}
	for o, s := range opWant {
		if o.String() != s {
			t.Fatalf("%d.String() = %q", o, o.String())
		}
	}
}
