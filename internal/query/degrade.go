package query

// Degrade widens a summary estimate into a degraded answer: the value
// the retained summaries predict, with an error bound that can never
// be tighter than the summary math allows (est.ErrBound), never
// tighter than the fraction of targeted owners that stayed silent,
// and never below the extrapolation floor. The basestation serves it
// when a query's retry budget runs out with owners still unheard
// (DESIGN.md §19): an explicit bounded answer instead of a silently
// truncated one.
func Degrade(est Estimate, completeness float64) Estimate {
	if !est.Valid {
		return Estimate{}
	}
	if completeness < 0 {
		completeness = 0
	} else if completeness > 1 {
		completeness = 1
	}
	bound := est.ErrBound
	if miss := 1 - completeness; miss > bound {
		bound = miss
	}
	if bound < extrapolationFloor {
		bound = extrapolationFloor
	}
	return Estimate{Valid: true, Value: est.Value, ErrBound: bound}
}
