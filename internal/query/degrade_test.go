package query

import "testing"

func TestDegradeWidensBounds(t *testing.T) {
	est := Estimate{Valid: true, Value: 40, ErrBound: 0.2}
	cases := []struct {
		completeness float64
		want         float64
	}{
		{1.0, 0.2},  // nothing missing: the summary bound stands
		{0.9, 0.2},  // missing less than the summary bound: unchanged
		{0.5, 0.5},  // half the owners silent dominates
		{0.0, 1.0},  // nothing heard
		{-0.5, 1.0}, // clamped
		{1.5, 0.2},  // clamped
	}
	for _, c := range cases {
		d := Degrade(est, c.completeness)
		if !d.Valid || d.Value != est.Value {
			t.Fatalf("Degrade(%v) lost the estimate: %+v", c.completeness, d)
		}
		if d.ErrBound != c.want {
			t.Fatalf("Degrade(completeness=%v).ErrBound = %v, want %v", c.completeness, d.ErrBound, c.want)
		}
		if d.ErrBound < est.ErrBound {
			t.Fatalf("degraded bound %v tighter than the summary bound %v", d.ErrBound, est.ErrBound)
		}
	}
}

func TestDegradeFloorsAndInvalid(t *testing.T) {
	tight := Estimate{Valid: true, Value: 7, ErrBound: 0.01}
	if d := Degrade(tight, 1.0); d.ErrBound != extrapolationFloor {
		t.Fatalf("degraded bound %v below the extrapolation floor %v", d.ErrBound, extrapolationFloor)
	}
	if d := Degrade(Estimate{}, 0.5); d.Valid {
		t.Fatal("degrading an invalid estimate produced a valid one")
	}
}
