package workload

import (
	"bytes"
	"strings"
	"testing"

	"scoop/internal/netsim"
)

func TestReplayPlaysBackInOrder(t *testing.T) {
	r := NewReplay("t", [][]int{{}, {10, 20, 30}, {5}})
	got := []int{
		r.Next(1, 0), r.Next(1, 0), r.Next(1, 0), r.Next(1, 0),
	}
	want := []int{10, 20, 30, 10} // wraps around
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
	if v := r.Next(2, 0); v != 5 {
		t.Fatalf("node 2 read %d", v)
	}
}

func TestReplayDomain(t *testing.T) {
	r := NewReplay("t", [][]int{{}, {10, 20}, {3, 99}})
	lo, hi := r.Domain()
	if lo != 3 || hi != 99 {
		t.Fatalf("domain [%d,%d]", lo, hi)
	}
	if r.Name() != "t" {
		t.Fatalf("name %q", r.Name())
	}
}

func TestReplayPanicsOnMissingSeries(t *testing.T) {
	r := NewReplay("t", [][]int{{}, {1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Next(0, 0)
}

func TestParseReplayRoundTrip(t *testing.T) {
	src := "\n10 20 30\n5 5\n"
	r, err := ParseReplay("f", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Next(1, 0); v != 10 {
		t.Fatalf("first read %d", v)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := ParseReplay("f2", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if a, b := r.Next(2, 0), r2.Next(2, 0); a != b {
			t.Fatalf("round trip diverged: %d vs %d", a, b)
		}
	}
}

func TestParseReplayErrors(t *testing.T) {
	if _, err := ParseReplay("e", strings.NewReader("1 x 3\n")); err == nil {
		t.Fatal("accepted non-numeric trace")
	}
	if _, err := ParseReplay("e", strings.NewReader("")); err == nil {
		t.Fatal("accepted empty trace")
	}
}

func TestRecordFreezesSource(t *testing.T) {
	a := Record(NewReal(10, 42), 10, 50)
	b := Record(NewReal(10, 42), 10, 50)
	for id := netsim.NodeID(1); id < 10; id++ {
		for k := 0; k < 50; k++ {
			va, vb := a.Next(id, 0), b.Next(id, 0)
			if va != vb {
				t.Fatal("recordings of identical sources differ")
			}
		}
	}
	lo, hi := a.Domain()
	if lo < 0 || hi > RealMax {
		t.Fatalf("recorded domain [%d,%d] escapes source domain", lo, hi)
	}
}
