package workload

import (
	"math/rand"

	"scoop/internal/netsim"
	"scoop/internal/query"
)

// Request is one generated user request: always a range/time query,
// optionally lifted to an aggregate. Agg is nil for plain tuple
// requests ("SELECT *").
type Request struct {
	Query Query
	Agg   *query.AggQuery
}

// DefaultAggOps is the operator rotation mixed streams cycle through:
// the exact aggregates first, then one approximate quantile.
var DefaultAggOps = []query.Op{
	query.OpCount, query.OpSum, query.OpAvg,
	query.OpMin, query.OpMax, query.OpQuantile,
}

// MixedGen lifts a tuple-query generator into a mixed tuple/aggregate
// stream: each request is an aggregate with probability AggRatio,
// cycling deterministically through Ops so every operator appears in
// long runs. The wrapped generator supplies the value/time ranges, so
// hot-range dynamics and width settings keep working unchanged.
type MixedGen struct {
	rng *rand.Rand
	// Tuple produces the underlying range queries.
	Tuple Generator
	// AggRatio is the fraction of requests lifted to aggregates.
	AggRatio float64
	// Ops is the aggregate-operator rotation (DefaultAggOps when nil).
	Ops []query.Op
	// ErrBudget is the accuracy budget attached to every aggregate.
	ErrBudget float64
	// Quantile is the fraction OpQuantile requests ask for.
	Quantile float64

	next int
}

// NewMixedGen wraps tuple so a fraction aggRatio of requests are
// aggregates carrying the given error budget.
func NewMixedGen(tuple Generator, aggRatio, errBudget float64, seed int64) *MixedGen {
	return &MixedGen{
		rng:       rand.New(rand.NewSource(seed)),
		Tuple:     tuple,
		AggRatio:  aggRatio,
		ErrBudget: errBudget,
		Quantile:  0.5,
	}
}

// NextRequest returns the request issued at time now.
func (g *MixedGen) NextRequest(now netsim.Time) Request {
	q := g.Tuple.Next(now)
	if g.rng.Float64() >= g.AggRatio {
		return Request{Query: q}
	}
	ops := g.Ops
	if len(ops) == 0 {
		ops = DefaultAggOps
	}
	op := ops[g.next%len(ops)]
	g.next++
	aq := &query.AggQuery{
		Op:        op,
		ValueLo:   q.ValueLo,
		ValueHi:   q.ValueHi,
		TimeLo:    q.TimeLo,
		TimeHi:    q.TimeHi,
		ErrBudget: g.ErrBudget,
	}
	if op == query.OpQuantile {
		aq.Quantile = g.Quantile
	}
	return Request{Query: q, Agg: aq}
}
