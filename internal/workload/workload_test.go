package workload

import (
	"math"
	"testing"

	"scoop/internal/netsim"
)

func TestNewSourceNames(t *testing.T) {
	for _, name := range SourceNames() {
		s, err := NewSource(name, 63, 1)
		if err != nil {
			t.Fatalf("NewSource(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("source %q reports name %q", name, s.Name())
		}
		lo, hi := s.Domain()
		if hi <= lo {
			t.Fatalf("source %q has empty domain [%d,%d]", name, lo, hi)
		}
	}
	if _, err := NewSource("bogus", 63, 1); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestAllSourcesStayInDomain(t *testing.T) {
	for _, name := range SourceNames() {
		s, _ := NewSource(name, 63, 7)
		lo, hi := s.Domain()
		for i := 0; i < 2000; i++ {
			id := netsim.NodeID(i % 63)
			v := s.Next(id, netsim.Time(i)*15*netsim.Second)
			if v < lo || v > hi {
				t.Fatalf("source %q emitted %d outside [%d,%d]", name, v, lo, hi)
			}
		}
	}
}

func TestUniqueIsNodeID(t *testing.T) {
	s := NewUnique(63)
	for id := netsim.NodeID(0); id < 63; id++ {
		if v := s.Next(id, 0); v != int(id) {
			t.Fatalf("unique(%d) = %d", id, v)
		}
	}
}

func TestEqualIsConstant(t *testing.T) {
	s := NewEqual()
	for i := 0; i < 100; i++ {
		if s.Next(netsim.NodeID(i%5), netsim.Time(i)) != EqualValue {
			t.Fatal("EQUAL emitted a different value")
		}
	}
}

func TestRandomCoversDomain(t *testing.T) {
	s := NewRandom(16, 3)
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		seen[s.Next(1, 0)] = true
	}
	if len(seen) < 90 {
		t.Fatalf("random hit only %d distinct values", len(seen))
	}
}

func TestGaussianCentersOnMean(t *testing.T) {
	s := NewGaussian(10, 5)
	for id := netsim.NodeID(0); id < 10; id++ {
		sum := 0.0
		const samples = 500
		for i := 0; i < samples; i++ {
			sum += float64(s.Next(id, 0))
		}
		mean := sum / samples
		want := s.Mean(id)
		// Clamping skews edge means slightly; tolerate 3 units.
		if math.Abs(mean-want) > 3 {
			t.Fatalf("node %d sample mean %f, node mean %f", id, mean, want)
		}
	}
}

func TestGaussianVarianceRoughlyTen(t *testing.T) {
	s := NewGaussian(1, 6)
	// Pick a node whose mean is interior so clamping is negligible.
	if s.Mean(0) < 20 || s.Mean(0) > 80 {
		s = NewGaussian(1, 8)
	}
	var sum, sq float64
	const n = 4000
	for i := 0; i < n; i++ {
		v := float64(s.Next(0, 0))
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 6 || variance > 15 {
		t.Fatalf("variance = %f, want ≈10", variance)
	}
}

// The REAL substitute must exhibit the two properties the paper's
// evaluation depends on: temporal self-correlation (a node's next
// value is near its last) and spatial correlation (same-cluster nodes
// are closer in value than cross-cluster nodes on average).
func TestRealTemporalCorrelation(t *testing.T) {
	s := NewReal(63, 9)
	var diffSelf, diffRand float64
	prev := map[netsim.NodeID]int{}
	rnd := NewRandom(63, 10)
	prevRand := 0
	n := 0
	for i := 0; i < 2000; i++ {
		tm := netsim.Time(i) * 15 * netsim.Second
		id := netsim.NodeID(i % 63)
		v := s.Next(id, tm)
		if p, ok := prev[id]; ok {
			diffSelf += math.Abs(float64(v - p))
			rv := rnd.Next(id, tm)
			diffRand += math.Abs(float64(rv - prevRand))
			prevRand = rv
			n++
		}
		prev[id] = v
	}
	if diffSelf/float64(n) >= diffRand/float64(n) {
		t.Fatalf("REAL self-step %.1f not smaller than RANDOM's %.1f",
			diffSelf/float64(n), diffRand/float64(n))
	}
}

func TestRealSpatialCorrelation(t *testing.T) {
	s := NewReal(64, 11)
	// Sample all nodes at one instant several times; same-cluster
	// pairs must be closer on average than random pairs.
	var same, cross float64
	var nSame, nCross int
	for round := 0; round < 30; round++ {
		tm := netsim.Time(round) * 15 * netsim.Second
		vals := make([]int, 64)
		for id := 0; id < 64; id++ {
			vals[id] = s.Next(netsim.NodeID(id), tm)
		}
		for i := 0; i < 64; i++ {
			for j := i + 1; j < 64; j++ {
				d := math.Abs(float64(vals[i] - vals[j]))
				if i/s.ClusterSize == j/s.ClusterSize {
					same += d
					nSame++
				} else {
					cross += d
					nCross++
				}
			}
		}
	}
	if same/float64(nSame) >= cross/float64(nCross) {
		t.Fatalf("same-cluster distance %.1f not below cross-cluster %.1f",
			same/float64(nSame), cross/float64(nCross))
	}
}

func TestRealDeterminism(t *testing.T) {
	a, b := NewReal(10, 42), NewReal(10, 42)
	for i := 0; i < 200; i++ {
		id := netsim.NodeID(i % 10)
		tm := netsim.Time(i) * netsim.Second
		if a.Next(id, tm) != b.Next(id, tm) {
			t.Fatal("REAL not deterministic for equal seeds")
		}
	}
}

func TestRangeGenWidths(t *testing.T) {
	g := NewRangeGen(0, 149, 1)
	for i := 0; i < 500; i++ {
		q := g.Next(10 * netsim.Minute)
		if q.IsNodeQuery() {
			t.Fatal("range generator produced node query")
		}
		w := q.ValueHi - q.ValueLo + 1
		if w < 1 || w > 8 { // 5% of 150 = 7.5
			t.Fatalf("width %d outside 1..8", w)
		}
		if q.ValueLo < 0 || q.ValueHi > 149 {
			t.Fatalf("range [%d,%d] outside domain", q.ValueLo, q.ValueHi)
		}
		if q.TimeHi != 10*netsim.Minute || q.TimeLo >= q.TimeHi {
			t.Fatalf("bad time range [%d,%d]", q.TimeLo, q.TimeHi)
		}
	}
}

func TestRangeGenEarlyTimesClamp(t *testing.T) {
	g := NewRangeGen(0, 100, 2)
	q := g.Next(netsim.Second)
	if q.TimeLo != 0 {
		t.Fatalf("TimeLo = %d, want clamp to 0", q.TimeLo)
	}
}

func TestNodePctGen(t *testing.T) {
	g := NewNodePctGen(63, 0.25, 3)
	q := g.Next(10 * netsim.Minute)
	if !q.IsNodeQuery() {
		t.Fatal("node generator produced range query")
	}
	want := int(62*0.25 + 0.5)
	if len(q.Nodes) != want {
		t.Fatalf("queried %d nodes, want %d", len(q.Nodes), want)
	}
	seen := map[netsim.NodeID]bool{}
	for _, id := range q.Nodes {
		if id == 0 {
			t.Fatal("basestation in node query")
		}
		if seen[id] {
			t.Fatal("duplicate node in query")
		}
		seen[id] = true
	}
}

func TestNodePctGenBounds(t *testing.T) {
	if got := len(NewNodePctGen(63, 0, 4).Next(0).Nodes); got != 1 {
		t.Fatalf("pct 0 queried %d nodes, want 1 minimum", got)
	}
	if got := len(NewNodePctGen(63, 1.5, 5).Next(0).Nodes); got != 62 {
		t.Fatalf("pct >1 queried %d nodes, want all 62", got)
	}
}
