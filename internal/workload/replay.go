package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scoop/internal/netsim"
)

// Replay is a Source that plays back an explicit per-node series of
// readings, the way the paper's REAL source replays the Intel-lab
// trace file: "each time a node needs to produce a value, it reads
// the next number from this trace". When a node exhausts its series
// it wraps around, matching the paper's fixed-length trace behaviour
// over long runs.
type Replay struct {
	series [][]int
	next   []int
	lo, hi int
	name   string
}

// NewReplay builds a replay source from one reading series per node.
// Node 0 (the basestation) may have an empty series. All series must
// be non-empty for sampled nodes; Next panics otherwise.
func NewReplay(name string, series [][]int) *Replay {
	r := &Replay{series: series, next: make([]int, len(series)), name: name}
	first := true
	for _, s := range series {
		for _, v := range s {
			if first || v < r.lo {
				r.lo = v
			}
			if first || v > r.hi {
				r.hi = v
			}
			first = false
		}
	}
	if first {
		r.hi = 1 // avoid a degenerate [0,0] domain
	}
	return r
}

// ParseReplay reads a whitespace-separated trace: one line per node,
// each line the node's reading series in sample order. Empty lines
// are empty series. This is the on-disk format cmd tools and tests
// use for captured or hand-made traces.
func ParseReplay(name string, rd io.Reader) (*Replay, error) {
	var series [][]int
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		row := make([]int, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: %v", line, err)
			}
			row = append(row, v)
		}
		series = append(series, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return NewReplay(name, series), nil
}

// Next implements Source.
func (r *Replay) Next(id netsim.NodeID, _ netsim.Time) int {
	i := int(id)
	if i >= len(r.series) || len(r.series[i]) == 0 {
		panic(fmt.Sprintf("workload: replay has no series for node %d", i))
	}
	v := r.series[i][r.next[i]%len(r.series[i])]
	r.next[i]++
	return v
}

// Domain implements Source.
func (r *Replay) Domain() (int, int) { return r.lo, r.hi }

// Name implements Source.
func (r *Replay) Name() string { return r.name }

// Record captures the output of another source into a replayable
// trace: n nodes, samples readings each. Useful for freezing a
// synthetic workload into a deterministic fixture.
func Record(src Source, n, samples int) *Replay {
	series := make([][]int, n)
	for i := 0; i < n; i++ {
		series[i] = make([]int, samples)
		for k := 0; k < samples; k++ {
			series[i][k] = src.Next(netsim.NodeID(i), netsim.Time(k)*15000)
		}
	}
	return NewReplay("replay:"+src.Name(), series)
}

// WriteTo serialises the trace in ParseReplay's format.
func (r *Replay) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, row := range r.series {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = strconv.Itoa(v)
		}
		n, err := fmt.Fprintln(w, strings.Join(parts, " "))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// NumNodes returns how many node series the trace holds.
func (r *Replay) NumNodes() int { return len(r.series) }

// SeriesLen returns the length of node id's series (0 if absent).
func (r *Replay) SeriesLen(id int) int {
	if id < 0 || id >= len(r.series) {
		return 0
	}
	return len(r.series[id])
}

// Series returns a copy of node id's reading series.
func (r *Replay) Series(id int) []int {
	if id < 0 || id >= len(r.series) {
		return nil
	}
	return append([]int(nil), r.series[id]...)
}
