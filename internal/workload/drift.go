package workload

import (
	"math"

	"scoop/internal/netsim"
)

// Drift wraps a Source with a controllable offset — the knob dynamics
// scripts turn to walk a data distribution across the value domain
// mid-run (a GAUSSIAN mean migrating, a light level rising). The
// offset is a signed fraction of the domain width; shifted samples
// clamp at the domain edges, so a large shift piles mass up at one
// end, exactly the regime a frozen index handles worst.
type Drift struct {
	Source
	lo, hi int
	offset int
}

// NewDrift wraps src with a zero initial offset.
func NewDrift(src Source) *Drift {
	lo, hi := src.Domain()
	return &Drift{Source: src, lo: lo, hi: hi}
}

// SetShift sets the offset to frac of the domain width (implements
// dynamics.DataShifter).
func (d *Drift) SetShift(frac float64) {
	d.offset = int(math.Round(frac * float64(d.hi-d.lo)))
}

// Shift returns the current offset in domain units (for tests).
func (d *Drift) Shift() int { return d.offset }

// Next implements Source: the wrapped sample plus the current offset,
// clamped to the domain.
func (d *Drift) Next(id netsim.NodeID, t netsim.Time) int {
	return clamp(d.Source.Next(id, t)+d.offset, d.lo, d.hi)
}
