package workload

import (
	"math/rand"

	"scoop/internal/netsim"
)

// Query is one user request issued at the basestation (paper §5.5):
// either a value range over the indexed attribute, or an explicit list
// of nodes, always with a time range of interest.
type Query struct {
	// Value range (used when Nodes is empty).
	ValueLo, ValueHi int
	// Node-list alternative ("a user can query values from one or
	// more specific nodes").
	Nodes []netsim.NodeID
	// Time range of interest, virtual ms.
	TimeLo, TimeHi netsim.Time
}

// IsNodeQuery reports whether the query targets explicit nodes rather
// than a value range.
func (q Query) IsNodeQuery() bool { return len(q.Nodes) > 0 }

// Generator produces the query stream for a run.
type Generator interface {
	// Next returns the query issued at time now.
	Next(now netsim.Time) Query
}

// RangeGen issues value-range queries of random width between WidthLo
// and WidthHi fractions of the attribute domain (paper default: 1–5%),
// placed uniformly at random, over the trailing HistoryWindow of time.
type RangeGen struct {
	rng              *rand.Rand
	domainLo         int
	domainHi         int
	WidthLo, WidthHi float64
	HistoryWindow    netsim.Time

	// Hot-range mode: when hotCenter >= 0, query placement is no
	// longer uniform but normally distributed around the center (a
	// fraction of the domain), with hotSpread (also a fraction)
	// standard deviation. Dynamics scripts migrate the center mid-run
	// to model a shifting query workload.
	hotCenter float64
	hotSpread float64
}

// NewRangeGen returns the paper's default query generator over the
// given value domain.
func NewRangeGen(domainLo, domainHi int, seed int64) *RangeGen {
	return &RangeGen{
		rng:           rand.New(rand.NewSource(seed)),
		domainLo:      domainLo,
		domainHi:      domainHi,
		WidthLo:       0.01,
		WidthHi:       0.05,
		HistoryWindow: 2 * netsim.Minute,
		hotCenter:     -1,
		hotSpread:     0.06,
	}
}

// SetHotCenter switches the generator to hot-range placement around
// frac of the domain (implements dynamics.QueryShifter). A negative
// frac restores uniform placement.
func (g *RangeGen) SetHotCenter(frac float64) { g.hotCenter = frac }

// SetHotSpread sets the hot-range standard deviation as a fraction of
// the domain.
func (g *RangeGen) SetHotSpread(frac float64) { g.hotSpread = frac }

// Next implements Generator.
func (g *RangeGen) Next(now netsim.Time) Query {
	domain := g.domainHi - g.domainLo + 1
	wf := g.WidthLo + g.rng.Float64()*(g.WidthHi-g.WidthLo)
	width := int(float64(domain) * wf)
	if width < 1 {
		width = 1
	}
	var lo int
	if g.hotCenter >= 0 {
		center := g.hotCenter + g.rng.NormFloat64()*g.hotSpread
		lo = g.domainLo + int(center*float64(domain)) - width/2
		if lo < g.domainLo {
			lo = g.domainLo
		}
		if lo > g.domainHi-width+1 {
			lo = g.domainHi - width + 1
		}
	} else {
		lo = g.domainLo + g.rng.Intn(domain-width+1)
	}
	tlo := now - g.HistoryWindow
	if tlo < 0 {
		tlo = 0
	}
	return Query{ValueLo: lo, ValueHi: lo + width - 1, TimeLo: tlo, TimeHi: now}
}

// NodePctGen issues node-list queries covering a fixed percentage of
// the non-base nodes, drawn at random per query — the Figure 4 sweep.
type NodePctGen struct {
	rng           *rand.Rand
	n             int // network size including base
	Pct           float64
	HistoryWindow netsim.Time
}

// NewNodePctGen returns a generator querying pct (0..1) of the n-1
// non-base nodes each time.
func NewNodePctGen(n int, pct float64, seed int64) *NodePctGen {
	return &NodePctGen{
		rng:           rand.New(rand.NewSource(seed)),
		n:             n,
		Pct:           pct,
		HistoryWindow: 5 * netsim.Minute,
	}
}

// Next implements Generator.
func (g *NodePctGen) Next(now netsim.Time) Query {
	count := int(float64(g.n-1)*g.Pct + 0.5)
	if count < 1 {
		count = 1
	}
	if count > g.n-1 {
		count = g.n - 1
	}
	perm := g.rng.Perm(g.n - 1)
	nodes := make([]netsim.NodeID, count)
	for i := 0; i < count; i++ {
		nodes[i] = netsim.NodeID(perm[i] + 1) // skip the base (node 0)
	}
	tlo := now - g.HistoryWindow
	if tlo < 0 {
		tlo = 0
	}
	return Query{Nodes: nodes, TimeLo: tlo, TimeHi: now}
}
