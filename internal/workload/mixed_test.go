package workload

import (
	"testing"

	"scoop/internal/netsim"
	"scoop/internal/query"
)

func TestMixedGenRatioAndRotation(t *testing.T) {
	g := NewMixedGen(NewRangeGen(0, 100, 3), 0.5, 0.2, 9)
	aggs, tuples := 0, 0
	var ops []query.Op
	for i := 0; i < 400; i++ {
		r := g.NextRequest(netsim.Time(i) * netsim.Minute)
		if r.Agg != nil {
			aggs++
			ops = append(ops, r.Agg.Op)
			if r.Agg.ErrBudget != 0.2 {
				t.Fatalf("budget = %v", r.Agg.ErrBudget)
			}
			if r.Agg.ValueLo != r.Query.ValueLo || r.Agg.TimeHi != r.Query.TimeHi {
				t.Fatal("aggregate ranges diverge from the underlying query")
			}
			if r.Agg.Op == query.OpQuantile && r.Agg.Quantile != 0.5 {
				t.Fatalf("quantile = %v", r.Agg.Quantile)
			}
		} else {
			tuples++
		}
	}
	if aggs < 140 || aggs > 260 {
		t.Fatalf("agg ratio off: %d aggregates of 400", aggs)
	}
	if tuples == 0 {
		t.Fatal("no tuple requests in a 0.5 mix")
	}
	// The rotation must walk DefaultAggOps in order.
	for i, op := range ops {
		if op != DefaultAggOps[i%len(DefaultAggOps)] {
			t.Fatalf("op %d = %v, want %v", i, op, DefaultAggOps[i%len(DefaultAggOps)])
		}
	}
}

func TestMixedGenExtremes(t *testing.T) {
	all := NewMixedGen(NewRangeGen(0, 100, 3), 1.0, 0, 9)
	for i := 0; i < 20; i++ {
		if r := all.NextRequest(netsim.Minute); r.Agg == nil {
			t.Fatal("ratio 1.0 produced a tuple request")
		}
	}
	none := NewMixedGen(NewRangeGen(0, 100, 3), 0, 0, 9)
	for i := 0; i < 20; i++ {
		if r := none.NextRequest(netsim.Minute); r.Agg != nil {
			t.Fatal("ratio 0 produced an aggregate")
		}
	}
}

func TestMixedGenDeterministic(t *testing.T) {
	a := NewMixedGen(NewRangeGen(0, 100, 3), 0.4, 0.1, 77)
	b := NewMixedGen(NewRangeGen(0, 100, 3), 0.4, 0.1, 77)
	for i := 0; i < 100; i++ {
		ra := a.NextRequest(netsim.Time(i) * netsim.Second)
		rb := b.NextRequest(netsim.Time(i) * netsim.Second)
		if (ra.Agg == nil) != (rb.Agg == nil) ||
			ra.Query.ValueLo != rb.Query.ValueLo || ra.Query.ValueHi != rb.Query.ValueHi ||
			ra.Query.TimeLo != rb.Query.TimeLo || ra.Query.TimeHi != rb.Query.TimeHi {
			t.Fatalf("request %d diverged", i)
		}
		if ra.Agg != nil && *ra.Agg != *rb.Agg {
			t.Fatalf("aggregate %d diverged", i)
		}
	}
}
