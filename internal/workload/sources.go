// Package workload generates the sensor-data distributions and query
// streams used in the paper's evaluation (§6): the REAL, UNIQUE,
// EQUAL, RANDOM and GAUSSIAN data sources, value-range query
// generators (1–5% of the attribute domain by default) and node-list
// query generators (the Figure 4 "% nodes queried" sweep).
//
// The paper's REAL source replays a light trace from a 50-node indoor
// deployment (the Intel lab dataset), whose relevant properties are
// strong temporal self-correlation per node and geographic correlation
// between nearby nodes. That trace file is not bundled here, so REAL
// is a synthetic generator with exactly those two properties: a shared
// slow diurnal component, per-cluster offsets, a per-node AR(1) noise
// process and occasional step events (lights switching). DESIGN.md
// documents this substitution.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"scoop/internal/netsim"
)

// Source produces the value a node samples at a virtual time. Sources
// are stateful (AR noise, spikes); all per-node state, including the
// random stream it evolves by, is confined to that node — so a node's
// sample sequence depends only on its own sampling history, never on
// how other nodes' samples interleave. That is the region-parallel
// determinism contract (DESIGN.md §18): concurrent Next calls for
// nodes in different regions are safe and K-independent. Construction
// (cluster layout, means) draws from a separate constructor stream.
type Source interface {
	// Next returns node id's sample at virtual time t.
	Next(id netsim.NodeID, t netsim.Time) int
	// Domain returns the inclusive value domain the source emits in.
	Domain() (min, max int)
	// Name returns the paper's name for the source.
	Name() string
}

// NewSource builds the named source ("real", "unique", "equal",
// "random", "gaussian") for an n-node network.
func NewSource(name string, n int, seed int64) (Source, error) {
	switch name {
	case "real":
		return NewReal(n, seed), nil
	case "unique":
		return NewUnique(n), nil
	case "equal":
		return NewEqual(), nil
	case "random":
		return NewRandom(n, seed), nil
	case "gaussian":
		return NewGaussian(n, seed), nil
	}
	return nil, fmt.Errorf("workload: unknown source %q", name)
}

// SourceNames lists all sources in the paper's display order
// (Figure 3, right).
func SourceNames() []string {
	return []string{"unique", "equal", "real", "gaussian", "random"}
}

// Unique makes every node produce its own node ID for the whole run —
// the best case for Scoop's locality exploitation.
type Unique struct{ n int }

// NewUnique returns the UNIQUE source for an n-node network.
func NewUnique(n int) *Unique { return &Unique{n: n} }

// Next implements Source.
func (u *Unique) Next(id netsim.NodeID, _ netsim.Time) int { return int(id) }

// Domain implements Source.
func (u *Unique) Domain() (int, int) { return 0, u.n - 1 }

// Name implements Source.
func (u *Unique) Name() string { return "unique" }

// Equal makes every node produce the same constant value.
type Equal struct{}

// NewEqual returns the EQUAL source.
func NewEqual() *Equal { return &Equal{} }

// EqualValue is the constant all nodes produce under EQUAL.
const EqualValue = 50

// Next implements Source.
func (e *Equal) Next(netsim.NodeID, netsim.Time) int { return EqualValue }

// Domain implements Source. The domain is the full [0,100] range the
// paper's other synthetic sources use, so the index covers it.
func (e *Equal) Domain() (int, int) { return 0, 100 }

// Name implements Source.
func (e *Equal) Name() string { return "equal" }

// Random makes every node produce uniform values in [0,100]: no
// predictability for Scoop to exploit (paper: "degenerates into
// performance equivalent to BASE or HASH").
type Random struct{ rngs []*rand.Rand }

// NewRandom returns the RANDOM source for an n-node network.
func NewRandom(n int, seed int64) *Random {
	return &Random{rngs: nodeStreams(n, seed)}
}

// Next implements Source.
func (r *Random) Next(id netsim.NodeID, _ netsim.Time) int { return r.rngs[id].Intn(101) }

// Domain implements Source.
func (r *Random) Domain() (int, int) { return 0, 100 }

// Name implements Source.
func (r *Random) Name() string { return "random" }

// Gaussian gives each node i a mean µ_i drawn uniformly from [0,100]
// at construction; samples come from N(µ_i, 10) (variance 10, paper
// §6), clamped to the domain. Models independent stationary sensors.
type Gaussian struct {
	rngs  []*rand.Rand
	means []float64
}

// NewGaussian returns the GAUSSIAN source for an n-node network.
func NewGaussian(n int, seed int64) *Gaussian {
	rng := rand.New(rand.NewSource(seed)) // constructor stream: means only
	g := &Gaussian{rngs: nodeStreams(n, seed), means: make([]float64, n)}
	for i := range g.means {
		g.means[i] = rng.Float64() * 100
	}
	return g
}

// Next implements Source.
func (g *Gaussian) Next(id netsim.NodeID, _ netsim.Time) int {
	v := g.means[id] + g.rngs[id].NormFloat64()*math.Sqrt(10)
	return clamp(int(math.Round(v)), 0, 100)
}

// Domain implements Source.
func (g *Gaussian) Domain() (int, int) { return 0, 100 }

// Name implements Source.
func (g *Gaussian) Name() string { return "gaussian" }

// Mean exposes node id's mean (for tests).
func (g *Gaussian) Mean(id netsim.NodeID) float64 { return g.means[id] }

// Real is the synthetic stand-in for the paper's indoor light trace.
// Node values combine a shared slow "daylight" drift, a fixed offset
// per spatial cluster (nearby nodes see similar light), a per-node
// AR(1) noise process (temporal self-correlation), and occasional
// multi-sample step events (lights toggling). Domain [0,150], V≈150,
// matching the paper's "V was at about 150".
type Real struct {
	rngs     []*rand.Rand
	offsets  []float64 // per-node cluster offset
	noise    []float64 // per-node AR(1) state
	spikeFor []int     // samples remaining in a step event
	spikeAmp []float64
	// knobs for ablation experiments
	ClusterSize int
	ARCoeff     float64
	SpikeProb   float64
}

// RealMax is the top of the REAL source's value domain.
const RealMax = 150

// NewReal returns the REAL source for an n-node network.
func NewReal(n int, seed int64) *Real {
	rng := rand.New(rand.NewSource(seed)) // constructor stream: cluster layout only
	r := &Real{
		rngs:        nodeStreams(n, seed),
		offsets:     make([]float64, n),
		noise:       make([]float64, n),
		spikeFor:    make([]int, n),
		spikeAmp:    make([]float64, n),
		ClusterSize: 8,
		ARCoeff:     0.9,
		SpikeProb:   0.004,
	}
	// Cluster offsets: consecutive node IDs sit in the same office in
	// testbed layouts, so they share an offset. Clusters are spread
	// into distinct bands — a corridor office is dim, a window office
	// bright — which is what gives the Intel-lab trace its geographic
	// differentiation (without it every node produces the same values
	// and there is no locality for an index to exploit).
	nClusters := (n + r.ClusterSize - 1) / r.ClusterSize
	clusterOffsets := make([]float64, nClusters)
	for i := range clusterOffsets {
		centered := float64(i) - float64(nClusters-1)/2
		clusterOffsets[i] = centered*22 + rng.NormFloat64()*4
	}
	for i := range r.offsets {
		r.offsets[i] = clusterOffsets[i/r.ClusterSize]
	}
	return r
}

// Next implements Source.
func (r *Real) Next(id netsim.NodeID, t netsim.Time) int {
	// Slow shared drift: one gentle cycle per hour, so a 40-minute run
	// sees meaningful but unhurried change without erasing the
	// per-cluster bands.
	base := 75 + 12*math.Sin(2*math.Pi*float64(t)/float64(60*netsim.Minute))
	// AR(1) temporal noise.
	i := int(id)
	rng := r.rngs[i]
	r.noise[i] = r.ARCoeff*r.noise[i] + rng.NormFloat64()*3
	// Step events.
	if r.spikeFor[i] > 0 {
		r.spikeFor[i]--
	} else if rng.Float64() < r.SpikeProb {
		r.spikeFor[i] = 3 + rng.Intn(8)
		r.spikeAmp[i] = 25 + rng.Float64()*25
	}
	spike := 0.0
	if r.spikeFor[i] > 0 {
		spike = r.spikeAmp[i]
	}
	v := base + r.offsets[i] + r.noise[i] + spike
	return clamp(int(math.Round(v)), 0, RealMax)
}

// Domain implements Source.
func (r *Real) Domain() (int, int) { return 0, RealMax }

// Name implements Source.
func (r *Real) Name() string { return "real" }

// nodeStreams derives one independent random substream per node from a
// source seed (splitmix64, matching netsim's per-node substream
// scheme), so each node's draw sequence is its own.
func nodeStreams(n int, seed int64) []*rand.Rand {
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		z := uint64(seed) + (uint64(i)+1)*0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		rngs[i] = rand.New(rand.NewSource(int64(z ^ (z >> 31))))
	}
	return rngs
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
