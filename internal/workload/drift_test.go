package workload

import (
	"testing"

	"scoop/internal/netsim"
)

func TestDriftOffsetsAndClamps(t *testing.T) {
	d := NewDrift(NewUnique(32)) // domain [0,31]
	if got := d.Next(5, 0); got != 5 {
		t.Fatalf("zero-shift sample = %d, want 5", got)
	}
	d.SetShift(0.30)
	if d.Shift() != 9 {
		t.Fatalf("offset = %d, want 9 (30%% of 31)", d.Shift())
	}
	if got := d.Next(5, 0); got != 14 {
		t.Fatalf("shifted sample = %d, want 14", got)
	}
	if got := d.Next(30, 0); got != 31 {
		t.Fatalf("clamped sample = %d, want 31", got)
	}
	d.SetShift(-0.30)
	if got := d.Next(5, 0); got != 0 {
		t.Fatalf("down-clamped sample = %d, want 0", got)
	}
	// Domain and name pass through.
	if lo, hi := d.Domain(); lo != 0 || hi != 31 {
		t.Fatalf("domain = [%d,%d]", lo, hi)
	}
	if d.Name() != "unique" {
		t.Fatalf("name = %q", d.Name())
	}
}

func TestRangeGenHotCenterMigrates(t *testing.T) {
	mean := func(g *RangeGen, n int) float64 {
		sum := 0.0
		for i := 0; i < n; i++ {
			q := g.Next(netsim.Time(i) * netsim.Second)
			sum += float64(q.ValueLo+q.ValueHi) / 2
		}
		return sum / float64(n)
	}
	g := NewRangeGen(0, 100, 7)
	uniform := mean(g, 400)
	if uniform < 35 || uniform > 65 {
		t.Fatalf("uniform mean center = %.1f, want ~50", uniform)
	}
	g.SetHotCenter(0.2)
	low := mean(g, 400)
	if low > 30 {
		t.Fatalf("hot-range at 0.2 yields mean center %.1f, want ~20", low)
	}
	g.SetHotCenter(0.85)
	high := mean(g, 400)
	if high < 70 {
		t.Fatalf("hot-range at 0.85 yields mean center %.1f, want ~85", high)
	}
	// Queries stay inside the domain.
	g.SetHotCenter(1.0)
	for i := 0; i < 200; i++ {
		q := g.Next(0)
		if q.ValueLo < 0 || q.ValueHi > 100 || q.ValueLo > q.ValueHi {
			t.Fatalf("query [%d,%d] outside domain", q.ValueLo, q.ValueHi)
		}
	}
	// Negative center restores uniform placement.
	g.SetHotCenter(-1)
	if back := mean(g, 400); back < 35 || back > 65 {
		t.Fatalf("restored uniform mean center = %.1f", back)
	}
}
