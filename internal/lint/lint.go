// Package lint implements scooplint, the repo's own static-analysis
// suite. It turns the determinism and hot-path contracts of
// DESIGN.md §2 and §12 — prose and benchmark gates until now — into
// machine-checked invariants that run in CI before any sweep gate.
//
// The suite is stdlib-only by construction (go/parser + go/types with
// a source importer); the module has zero dependencies and must stay
// that way. Six analyzers encode the contracts:
//
//   - maprange: no `for range` over a map in deterministic packages
//     unless the body provably only collects keys for sorting (or
//     clears the map).
//   - floatfold: no floating-point accumulation across a map-range
//     loop anywhere in the module — the exact query.latestPerNode bug
//     class that once flipped aggErr bits in committed artifacts.
//   - walltime: no time.Now/Since/Until outside the wall-clock
//     accounting packages (perfbench, sweep) — simulations are pure
//     functions of their seed.
//   - globalrand: no process-global math/rand draws or
//     constant-seeded sources in deterministic packages — randomness
//     must flow from the per-trial seeded stream.
//   - packetretain: a *netsim.Packet received via Receive/Snoop is
//     simulator-owned and valid only during the callback — copy,
//     never retain.
//   - goroutine: no `go` statement in deterministic packages without
//     a reviewed confinement argument — the region scheduler's
//     barrier-synchronised workers are the sanctioned exception.
//
// A finding is suppressed by an annotation on the same line or the
// line above:
//
//	//scoop:allow <rule> <reason>
//
// The reason is mandatory: every surviving allow is a reviewed,
// documented decision (DESIGN.md §15). A malformed or unknown-rule
// allow is itself a finding (rule "allow") and cannot be suppressed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// deterministicDirs lists the module-relative package directories
// bound by the DESIGN.md §2 determinism contract: their code runs
// inside simulations, so map order, wall clocks and global randomness
// must never leak into behaviour.
var deterministicDirs = map[string]bool{
	"internal/core":      true,
	"internal/netsim":    true,
	"internal/index":     true,
	"internal/routing":   true,
	"internal/trickle":   true,
	"internal/query":     true,
	"internal/workload":  true,
	"internal/dynamics":  true,
	"internal/histogram": true,
	"internal/storage":   true,
	"internal/policy":    true,
	"internal/trace":     true,
	"internal/telemetry": true,
}

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path, e.g. "scoop/internal/core"
	Rel   string // module-relative directory, e.g. "internal/core"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Deterministic marks the package as bound by the DESIGN.md §2
	// contract. The loader derives it from deterministicDirs; the
	// fixture harness forces it so testdata packages can exercise
	// deterministic-only rules.
	Deterministic bool
}

// Diagnostic is one finding, positioned in the file set the package
// was parsed with.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one named rule. Run inspects the package behind the
// pass and reports findings; suppression and ordering are handled by
// the runner.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass gives an analyzer access to one package plus a report sink.
type Pass struct {
	*Package
	rule   string
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers is the full scooplint suite, in reporting order.
var Analyzers = []*Analyzer{Maprange, Floatfold, Walltime, Globalrand, Packetretain, Goroutine}

// AllowRule is the pseudo-rule under which malformed //scoop:allow
// annotations are reported. It cannot be suppressed.
const AllowRule = "allow"

// Run applies the analyzers to every package, drops findings covered
// by a well-formed //scoop:allow, and returns the survivors (plus any
// malformed-allow findings) sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows, allowDiags := collectAllows(pkg, known)
		out = append(out, allowDiags...)
		for _, a := range analyzers {
			pass := &Pass{
				Package: pkg,
				rule:    a.Name,
				report: func(d Diagnostic) {
					if !allows.suppressed(d) {
						out = append(out, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	// Nested walks (floatfold revisits inner map ranges) can produce
	// exact duplicates; keep one.
	dedup := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}

// allowIndex maps file -> line -> rules allowed on that line. An
// annotation covers the line it sits on and the line below, so both
// trailing comments and own-line comments above the finding work.
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) suppressed(d Diagnostic) bool {
	return ai[d.Pos.Filename][d.Pos.Line][d.Rule]
}

const allowPrefix = "scoop:allow"

// collectAllows parses every //scoop:allow annotation in the package.
// Grammar: `//scoop:allow <rule> <reason...>` — the rule must be one
// of the analyzers in force (or "allow" is never valid) and the
// reason must be non-empty. Violations of the grammar are findings
// themselves.
func collectAllows(pkg *Package, known map[string]bool) (allowIndex, []Diagnostic) {
	idx := allowIndex{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				bad := func(format string, args ...any) {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    AllowRule,
						Message: fmt.Sprintf(format, args...),
					})
				}
				if len(fields) == 0 {
					bad("scoop:allow needs a rule and a reason: //scoop:allow <rule> <reason>")
					continue
				}
				rule := fields[0]
				if rule == AllowRule || !known[rule] {
					bad("scoop:allow names unknown rule %q", rule)
					continue
				}
				if len(fields) < 2 {
					bad("scoop:allow %s needs a non-empty reason — every allow is a reviewed decision (DESIGN.md §15)", rule)
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					idx[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][rule] = true
				}
			}
		}
	}
	return idx, diags
}
