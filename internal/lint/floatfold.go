package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatfold bans floating-point accumulation across map iteration
// order, module-wide. This is the exact bug class of the one
// nondeterminism ever shipped: query.latestPerNode folded histogram
// mass over a randomly-ordered Go map, flipping the last bits of
// aggErr between runs of the same seed (DESIGN.md §2). Float addition
// is not associative, so a fold whose accumulator outlives the loop
// body produces order-dependent bits even when every other rule is
// obeyed — and unlike maprange this can corrupt artifacts from any
// package, so the rule has no deterministic-package carve-out.
var Floatfold = &Analyzer{
	Name: "floatfold",
	Doc:  "floating-point accumulation inside a map-range loop (the query.latestPerNode bug class)",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !mapRange(pass.Info, rs) {
					return true
				}
				ast.Inspect(rs.Body, func(m ast.Node) bool {
					if inner, ok := m.(*ast.RangeStmt); ok && inner != rs && mapRange(pass.Info, inner) {
						// The nested map range gets its own visit with
						// its own (tighter) accumulator scope.
						return false
					}
					as, ok := m.(*ast.AssignStmt)
					if !ok {
						return true
					}
					checkFold(pass, rs, as)
					return true
				})
				return true
			})
		}
	},
}

// checkFold flags `acc op= x` and `acc = acc op x` when acc is
// floating-point and declared outside the map-range body (so the
// accumulation crosses iteration order).
func checkFold(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) {
	fold := false
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		fold = true
	case token.ASSIGN:
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					lhs := types.ExprString(as.Lhs[0])
					fold = types.ExprString(bin.X) == lhs || types.ExprString(bin.Y) == lhs
				}
			}
		}
	}
	if !fold || len(as.Lhs) != 1 {
		return
	}
	lhs := as.Lhs[0]
	t := pass.Info.TypeOf(lhs)
	if t == nil || !isFloat(t) {
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := pass.Info.ObjectOf(root)
	if obj == nil || declaredWithin(obj, rs.Body) {
		// A per-iteration accumulator resets each pass; only folds
		// that survive across iterations see the map's order.
		return
	}
	pass.Reportf(as.Pos(), "floating-point accumulation into %s across map iteration order: float addition is not associative, so the result's bits depend on Go's randomized map order (the query.latestPerNode bug, DESIGN.md §2) — iterate sorted keys", types.ExprString(lhs))
}
