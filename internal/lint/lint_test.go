package lint_test

import (
	"strings"
	"testing"

	"scoop/internal/lint"
)

// The five analyzers each get a want-comment fixture package:
// seeded true positives line-matched via `// want "re"` comments,
// clean negatives that must stay silent, and a //scoop:allow
// exercising suppression through the full pipeline.

func TestMaprange(t *testing.T) {
	lint.AnalyzerTest(t, "testdata/src/maprange", true, lint.Maprange)
}

func TestFloatfold(t *testing.T) {
	lint.AnalyzerTest(t, "testdata/src/floatfold", false, lint.Floatfold)
}

func TestWalltime(t *testing.T) {
	lint.AnalyzerTest(t, "testdata/src/walltime", false, lint.Walltime)
}

// The walltime exemption is a directory quarantine: profiler-shaped
// code outside internal/prof is still flagged...
func TestWalltimeQuarantineBoundary(t *testing.T) {
	lint.AnalyzerTest(t, "testdata/src/wallprof", false, lint.Walltime)
}

// ...while internal/prof itself — whose subject matter is wall time —
// loads with zero findings and no //scoop:allow comments.
func TestWalltimeExemptsProf(t *testing.T) {
	pkgs, err := lint.Load("../prof", ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Rel != "internal/prof" {
		t.Fatalf("loaded %d packages, want internal/prof", len(pkgs))
	}
	for _, d := range lint.Run(pkgs, []*lint.Analyzer{lint.Walltime}) {
		t.Errorf("internal/prof: unexpected walltime finding: %s", d.Message)
	}
}

func TestGlobalrand(t *testing.T) {
	lint.AnalyzerTest(t, "testdata/src/globalrand", true, lint.Globalrand)
}

func TestPacketretain(t *testing.T) {
	lint.AnalyzerTest(t, "testdata/src/packetretain", false, lint.Packetretain)
}

// TestMaprangeNotDeterministic pins the deterministic-package gate:
// the same fixture, loaded without the flag, must be silent.
func TestMaprangeNotDeterministic(t *testing.T) {
	pkgs, err := lint.Load("testdata/src/maprange", ".")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.Run(pkgs, []*lint.Analyzer{lint.Maprange}); len(diags) != 0 {
		t.Fatalf("maprange fired outside a deterministic package: %v", diags)
	}
}

// TestAllowGrammar checks the //scoop:allow contract: rule mandatory,
// rule must exist, reason mandatory — and a malformed allow does not
// suppress the finding next to it. (These land on the comment's own
// line, so they are asserted directly rather than via want comments.)
func TestAllowGrammar(t *testing.T) {
	pkgs, err := lint.Load("testdata/src/allowgrammar", ".")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, lint.Analyzers)
	var allowMsgs []string
	walltime := 0
	for _, d := range diags {
		switch d.Rule {
		case lint.AllowRule:
			allowMsgs = append(allowMsgs, d.Message)
		case "walltime":
			walltime++
		default:
			t.Errorf("unexpected rule %q: %s", d.Rule, d)
		}
	}
	wantAllows := []string{"needs a rule", "unknown rule", "non-empty reason"}
	if len(allowMsgs) != len(wantAllows) {
		t.Fatalf("got %d allow findings %v, want %d", len(allowMsgs), allowMsgs, len(wantAllows))
	}
	for _, frag := range wantAllows {
		found := false
		for _, msg := range allowMsgs {
			if strings.Contains(msg, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("no allow finding mentions %q in %v", frag, allowMsgs)
		}
	}
	// Exactly one of the two time.Now sites is validly suppressed.
	if walltime != 1 {
		t.Errorf("got %d walltime findings, want 1 (the reasonless allow must not suppress)", walltime)
	}
}

// TestLoadDeterministicFlag pins the deterministic-package list the
// loader derives from import paths — the set the DESIGN.md §2
// contract names.
func TestLoadDeterministicFlag(t *testing.T) {
	for rel, want := range map[string]bool{
		"../core":      true,
		"../trickle":   true,
		"../netsim":    true,
		"../sweep":     false,
		"../perfbench": false,
	} {
		pkgs, err := lint.Load(rel, ".")
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		if len(pkgs) != 1 {
			t.Fatalf("%s: got %d packages", rel, len(pkgs))
		}
		if pkgs[0].Deterministic != want {
			t.Errorf("%s: Deterministic=%v, want %v", pkgs[0].Path, pkgs[0].Deterministic, want)
		}
	}
}

// TestLoadRecursive checks ./... expansion skips testdata and finds
// the real packages.
func TestLoadRecursive(t *testing.T) {
	pkgs, err := lint.Load("../..", "./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.Rel] = true
		if strings.Contains(p.Rel, "testdata") {
			t.Errorf("recursive load descended into %s", p.Rel)
		}
	}
	for _, want := range []string{"internal/core", "internal/lint", "internal/netsim", "internal/sweep"} {
		if !seen[want] {
			t.Errorf("recursive load missed %s (got %v)", want, seen)
		}
	}
}

func TestGoroutine(t *testing.T) {
	lint.AnalyzerTest(t, "testdata/src/goroutine", true, lint.Goroutine)
}

// TestGoroutineNotDeterministic pins the deterministic-package gate:
// operator tooling (sweep, exp, cmd) may use goroutines freely.
func TestGoroutineNotDeterministic(t *testing.T) {
	pkgs, err := lint.Load("testdata/src/goroutine", ".")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.Run(pkgs, []*lint.Analyzer{lint.Goroutine}); len(diags) != 0 {
		t.Fatalf("goroutine fired outside a deterministic package: %v", diags)
	}
}
