package lint

import (
	"go/ast"
)

// globalrandCtors are the math/rand package-level functions that do
// NOT draw from the process-global source: they build explicit,
// seedable generators, which is exactly how randomness is supposed to
// flow here.
var globalrandCtors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *rand.Rand
}

// Globalrand enforces the DESIGN.md §2 randomness contract in
// deterministic packages: every random draw must come from the
// per-trial seeded stream (a *rand.Rand constructed from a seed that
// flows in as a parameter — netsim.Simulator.Rand, workload
// generators, dynamics scripts). Two things break that:
//
//   - package-level math/rand functions (rand.Intn, rand.Shuffle,
//     rand.Float64, …), which draw from the process-global source and
//     make runs depend on whatever else used it;
//   - rand.NewSource with a constant seed, which silently decouples a
//     component from the trial seed — two trials of different seeds
//     would share its stream.
//
// Method calls on an explicit *rand.Rand are always fine.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "process-global or constant-seeded math/rand in a deterministic package (DESIGN.md §2)",
	Run: func(pass *Pass) {
		if !pass.Deterministic {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := pkgFunc(pass.Info, sel)
				if fn == nil || fn.Pkg().Path() != "math/rand" {
					return true
				}
				if !globalrandCtors[fn.Name()] {
					pass.Reportf(sel.Pos(), "math/rand.%s draws from the process-global source: randomness must flow from the per-trial seeded stream (DESIGN.md §2)", fn.Name())
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := pkgFunc(pass.Info, sel)
				if fn == nil || fn.Pkg().Path() != "math/rand" || fn.Name() != "NewSource" {
					return true
				}
				if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil {
					pass.Reportf(call.Pos(), "rand.NewSource with a constant seed decouples this stream from the trial seed: derive it from the seed that flows in (DESIGN.md §2)")
				}
				return true
			})
		}
	},
}
