package lint

import "go/ast"

// Goroutine flags every `go` statement in a deterministic package.
// Simulation code is single-goroutine by contract: event-loop state,
// per-node RNG streams and trace recorders are all unsynchronised, so
// an unreviewed goroutine is a data race and a determinism hole at
// once. The one sanctioned exception is the region scheduler
// (netsim's parallel event loop), where every spawned worker is
// confined to its own regionState and synchronised through barrier
// channels — those sites carry a //scoop:allow goroutine annotation
// naming that argument, which is exactly the review this rule forces.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "goroutine spawned in a deterministic package without a reviewed confinement argument (DESIGN.md §18)",
	Run: func(pass *Pass) {
		if !pass.Deterministic {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "go statement in a deterministic package: simulation state is unsynchronised, so concurrency needs a reviewed confinement argument (DESIGN.md §18)")
				}
				return true
			})
		}
	},
}
