package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The standard library is type-checked from source (the module must
// stay dependency-free, so there is no export-data toolchain to lean
// on). That work is identical for every Load call, so one importer —
// and the file set its positions live in — is shared process-wide.
// loadMu serializes Loads: the importer's cache is not safe for
// concurrent type-checking.
var (
	loadMu     sync.Mutex
	sharedFset = token.NewFileSet()
	sharedStd  = importer.ForCompiler(sharedFset, "source", nil)
)

// Load parses and type-checks the packages matching patterns,
// resolved relative to baseDir. Patterns are directory paths
// ("./internal/core") or recursive globs ("./..."); recursive
// expansion skips testdata, hidden and underscore directories, the
// same way the go tool does. Test files are not loaded — the
// contracts bind simulation code, and tests are free to use wall
// clocks and unsorted maps.
//
// Imports inside the module are type-checked from source through the
// same loader (cached, so each package is checked once per Load);
// everything else — the standard library — goes through the shared
// go/importer source importer. Nothing outside the module and std is
// importable: the module has zero dependencies and scooplint keeps it
// that way by construction.
func Load(baseDir string, patterns ...string) ([]*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	absBase, err := filepath.Abs(baseDir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(absBase)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    sharedFset,
		modDir:  modDir,
		modPath: modPath,
		std:     sharedStd,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	var dirs []string
	for _, pat := range patterns {
		expanded, err := expand(absBase, pat)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, expanded...)
	}
	sort.Strings(dirs)
	var out []*Package
	seen := map[string]bool{}
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns
// the module root and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// expand resolves one pattern to a list of package directories.
func expand(base, pat string) ([]string, error) {
	recursive := false
	if pat == "..." || strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		if pat == "" {
			pat = "."
		}
	}
	root := pat
	if !filepath.IsAbs(root) {
		root = filepath.Join(base, root)
	}
	if !recursive {
		if ok, err := isPackageDir(root); err != nil {
			return nil, err
		} else if !ok {
			return nil, fmt.Errorf("lint: no Go files in %s", root)
		}
		return []string{root}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if ok, err := isPackageDir(path); err != nil {
			return err
		} else if ok {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func isPackageDir(dir string) (bool, error) {
	names, err := goFiles(dir)
	return len(names) > 0, err
}

// goFiles lists the non-test Go files of dir, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// loader type-checks module packages on demand, serving as the
// importer for intra-module imports.
type loader struct {
	fset    *token.FileSet
	modDir  string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

func (l *loader) loadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.modDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.modDir)
	}
	rel = filepath.ToSlash(rel)
	path := l.modPath
	if rel != "." {
		path += "/" + rel
	}
	return l.check(path)
}

// Import implements types.Importer: module-internal paths load
// through the cache, everything else through the std source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) check(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.modDir, filepath.FromSlash(rel))
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:          path,
		Rel:           rel,
		Dir:           dir,
		Fset:          l.fset,
		Files:         files,
		Types:         tpkg,
		Info:          info,
		Deterministic: deterministicDirs[rel],
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
