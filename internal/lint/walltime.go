package lint

import (
	"go/ast"
)

// walltimeExempt lists the module-relative directories whose whole
// job is wall-clock accounting: the perf harness measures real time
// by definition, sweep reports grid wall time to the operator, and
// prof is the wall-clock attribution profiler — wall time is its
// subject matter, quarantined behind its nil-Profiler default
// (DESIGN.md §17). Everywhere else the simulation clock (netsim.Time)
// is the only time; a stray time.Now in protocol code would tie
// behaviour — and committed artifacts — to the machine, not the seed.
var walltimeExempt = map[string]bool{
	"internal/perfbench": true,
	"internal/prof":      true,
	"internal/sweep":     true,
}

// walltimeFuncs are the time-package functions that read the wall
// clock. Constructors like time.Duration arithmetic and formatting
// are fine — only sampling the clock is banned.
var walltimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// Walltime bans wall-clock reads outside the accounting packages and
// tests (test files are never loaded). Measurement-only uses that
// demonstrably never reach artifacts — index.BuildStats wall probes,
// CLI progress lines — carry a //scoop:allow walltime <reason>.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "wall-clock read (time.Now/Since/Until) in simulation code (DESIGN.md §2)",
	Run: func(pass *Pass) {
		if walltimeExempt[pass.Rel] {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := pkgFunc(pass.Info, sel)
				if fn == nil || fn.Pkg().Path() != "time" || !walltimeFuncs[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(), "wall-clock time.%s: a simulation is a pure function of its seed, so behaviour must only read the virtual clock (DESIGN.md §2); wall time lives in the quarantined measurement packages (internal/prof, internal/perfbench, internal/sweep — DESIGN.md §17), and other measurement-only code needs //scoop:allow walltime <reason>", fn.Name())
				return true
			})
		}
	},
}
