package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// This file is a hand-rolled stand-in for x/tools analysistest (the
// module stays dependency-free): fixture packages under
// testdata/src/<rule>/ carry `// want "regexp"` comments on the lines
// where an analyzer must report, and the harness checks findings and
// expectations match one-to-one. Clean negative cases simply carry no
// want comment — an unexpected finding there fails the test.

// TB is the subset of *testing.T the harness needs; taking the
// interface keeps package testing out of the scooplint binary.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// AnalyzerTest loads the fixture package in dir, forces its
// Deterministic flag to det (fixture paths are not in
// deterministicDirs, so rules with a deterministic-package gate need
// it on), runs the analyzers through the full pipeline — including
// //scoop:allow suppression — and matches the findings against the
// fixture's want comments.
func AnalyzerTest(t TB, dir string, det bool, analyzers ...*Analyzer) {
	t.Helper()
	pkgs, err := Load(dir, ".")
	if err != nil {
		t.Errorf("loading fixture %s: %v", dir, err)
		return
	}
	for _, p := range pkgs {
		p.Deterministic = det
	}
	wants := collectWants(t, pkgs)
	diags := Run(pkgs, analyzers)
	for _, d := range diags {
		if !wants.match(d) {
			t.Errorf("%s: unexpected finding: [%s] %s", posString(d.Pos), d.Rule, d.Message)
		}
	}
	wants.reportUnmatched(t)
}

type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

type wantSet struct {
	byLine map[string][]*want // "file:line" -> expectations
}

func wantKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// match consumes the first unmatched expectation on the finding's
// line whose regexp matches the message.
func (ws *wantSet) match(d Diagnostic) bool {
	for _, w := range ws.byLine[wantKey(d.Pos.Filename, d.Pos.Line)] {
		if !w.matched && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) reportUnmatched(t TB) {
	t.Helper()
	for _, line := range ws.byLine {
		for _, w := range line {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", posString(w.pos), w.re)
			}
		}
	}
}

var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

// collectWants parses every `// want "re" "re" ...` comment. Each
// quoted chunk (double quotes with Go escapes, or backquotes) is a
// regexp matched against finding messages on that comment's line.
func collectWants(t TB, pkgs []*Package) *wantSet {
	t.Helper()
	ws := &wantSet{byLine: map[string][]*want{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					quoted := wantQuoted.FindAllString(rest, -1)
					if len(quoted) == 0 {
						t.Errorf("%s: malformed want comment %q", posString(pos), c.Text)
						continue
					}
					for _, q := range quoted {
						var pat string
						if q[0] == '`' {
							pat = q[1 : len(q)-1]
						} else {
							var err error
							pat, err = strconv.Unquote(q)
							if err != nil {
								t.Errorf("%s: bad want string %s: %v", posString(pos), q, err)
								continue
							}
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", posString(pos), pat, err)
							continue
						}
						key := wantKey(pos.Filename, pos.Line)
						ws.byLine[key] = append(ws.byLine[key], &want{pos: pos, re: re})
					}
				}
			}
		}
	}
	return ws
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
