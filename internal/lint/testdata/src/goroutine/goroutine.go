// Package goroutine is a scooplint fixture: goroutines spawned in
// deterministic packages. Loaded with the deterministic flag forced
// on.
package goroutine

// spawn leaks a goroutine into simulation code: event-loop state is
// unsynchronised, so this is a race and a determinism hole.
func spawn(work func()) {
	go work() // want `go statement in a deterministic package`
}

// spawnLoop is the fan-out variant of the same defect.
func spawnLoop(n int, work func(int)) {
	for i := 0; i < n; i++ {
		go func(i int) { // want `go statement in a deterministic package`
			work(i)
		}(i)
	}
}

// deferred closures and function values are fine — only the `go`
// keyword hands work to another goroutine.
func notSpawned(work func()) {
	defer work()
	f := work
	f()
}

// regionWorker is the blessed pattern: a reviewed confinement
// argument on the spawn site, as the netsim region scheduler does.
func regionWorker(run func()) {
	//scoop:allow goroutine worker confined to its own regionState; barrier channels carry the happens-before edges
	go run()
}
