// Package floatfold is a scooplint fixture: the query.latestPerNode
// bug class — floating-point folds whose accumulator survives a
// map-range loop. Loaded without the deterministic flag: the rule is
// module-wide because any package can corrupt artifacts this way.
package floatfold

import "sort"

type stats struct{ total float64 }

// sum is the shipped bug, verbatim in shape: summing float mass over
// a randomly-ordered map flips the result's last bits between runs.
func sum(m map[uint16]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `floating-point accumulation`
	}
	return s
}

// expanded spells the fold as x = x + v; same defect.
func expanded(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation`
	}
	return total
}

// product folds multiplicatively — also non-associative in floats.
func product(m map[int]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `floating-point accumulation`
	}
	return p
}

// fields and elements escape too, not just plain locals.
func intoField(m map[int]float64, st *stats) {
	for _, v := range m {
		st.total += v // want `floating-point accumulation`
	}
}

func intoSlice(m map[int]float64, acc []float64) {
	for k, v := range m {
		acc[k%len(acc)] += v // want `floating-point accumulation`
	}
}

// intSum is exact integer arithmetic: commutative, associative,
// order-free. Never flagged.
func intSum(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// perEntry accumulates into a variable scoped inside the map range:
// it resets every iteration, so no fold crosses the map's order.
func perEntry(m map[int][]float64) []float64 {
	var outs []float64
	for _, vs := range m { // (maprange would flag this; floatfold must not)
		s := 0.0
		for _, v := range vs {
			s += v
		}
		outs = append(outs, s)
	}
	return outs
}

// sortedFold is the fix for sum: iterate sorted keys, then the fold
// order is deterministic. Range is over a slice, so nothing fires.
func sortedFold(m map[int]float64) float64 {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var s float64
	for _, k := range ks {
		s += m[k]
	}
	return s
}

// allowed shows the reviewed escape hatch: counting by 1.0 is exact
// in float64 (no rounding below 2^53), hence order-free — which the
// analyzer cannot prove on its own.
func allowed(m map[int]float64) float64 {
	n := 0.0
	for range m {
		n += 1 //scoop:allow floatfold counting by 1.0 is exact in float64, order-free
	}
	return n
}
