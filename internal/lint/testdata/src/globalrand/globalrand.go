// Package globalrand is a scooplint fixture: process-global and
// constant-seeded randomness in deterministic packages. Loaded with
// the deterministic flag forced on.
package globalrand

import "math/rand"

// draw uses the process-global source: two trials sharing the
// process would perturb each other's streams.
func draw() int {
	return rand.Intn(10) // want `process-global source`
}

// shuffle is the same defect through a different entry point.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `process-global source`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// value without a call is still a reference to the global source.
func picker() func() float64 {
	return rand.Float64 // want `process-global source`
}

// fixedSeed decouples this stream from the trial seed: every trial,
// whatever its seed, gets the same sequence here.
func fixedSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `constant seed`
}

// derivedConst is still a compile-time constant underneath.
func derivedConst() *rand.Rand {
	const base = 6
	return rand.New(rand.NewSource(base * 7)) // want `constant seed`
}

// seeded is the blessed pattern: the seed flows in from the trial.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// derived seeds (per-cell offsets) are fine too — not constants.
func derived(seed int64, cell int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000 + int64(cell)))
}

// explicit streams are the whole point: methods on *rand.Rand are
// never flagged.
func use(r *rand.Rand) int {
	return r.Intn(10) + int(r.Int63n(5))
}

// allowedJitter is a reviewed exception (e.g. non-simulation tooling
// living in a deterministic package for packaging reasons).
func allowedJitter() float64 {
	return rand.Float64() //scoop:allow globalrand operator-facing jitter, never inside a trial
}
