// Package walltime is a scooplint fixture: wall-clock reads in
// simulation code. Loaded without the deterministic flag — the rule
// binds every package except the wall-clock accounting ones
// (perfbench, sweep) and tests.
package walltime

import "time"

// stamp reads the wall clock — the canonical violation: behaviour now
// depends on the machine, not the seed.
func stamp() time.Time {
	return time.Now() // want `wall-clock time\.Now`
}

// elapsed uses the Since sugar; same clock underneath.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time\.Since`
}

// deadline uses Until; still the wall clock.
func deadline(t1 time.Time) time.Duration {
	return time.Until(t1) // want `wall-clock time\.Until`
}

// indirect takes the function value without calling it — flagged all
// the same (it will be called somewhere).
func indirect() func() time.Time {
	return time.Now // want `wall-clock time\.Now`
}

// arithmetic on durations and explicit times never reads the clock.
func clean(d time.Duration) time.Duration {
	return 3*time.Second + d.Round(time.Millisecond)
}

// allowedProbe is a reviewed measurement-only read, like the
// index.BuildStats wall probe that never enters artifacts.
func allowedProbe() time.Time {
	return time.Now() //scoop:allow walltime measurement-only probe, never enters artifacts
}
