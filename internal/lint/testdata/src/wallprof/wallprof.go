// Package wallprof is a scooplint fixture pinning the wall-time
// quarantine's boundary: the walltime exemption is keyed on the
// module-relative directory internal/prof, not on package names or
// profiler-shaped code. A look-alike profiler anywhere else still
// violates the rule — otherwise any package could opt out by calling
// itself a profiler.
package wallprof

import "time"

// Profiler mimics internal/prof's shape outside the quarantine.
type Profiler struct {
	base time.Time
}

// New stamps the epoch — a wall-clock read, flagged here even though
// the identical line inside internal/prof is exempt.
func New() *Profiler {
	return &Profiler{base: time.Now()} // want `wall-clock time\.Now`
}

// nanotime is the profiler's clock primitive; outside internal/prof
// it is a determinism hazard like any other time.Since.
func (p *Profiler) nanotime() int64 {
	return int64(time.Since(p.base)) // want `wall-clock time\.Since`
}
