// Package packetretain is a scooplint fixture: every way a
// simulator-owned *netsim.Packet can escape a Receive/Snoop callback.
// Since the §12 pooling overhaul the packet lives in a pool and is
// recycled the moment the callback returns — a retained pointer reads
// someone else's packet later.
package packetretain

import (
	"scoop/internal/metrics"
	"scoop/internal/netsim"
)

type app struct {
	last     *netsim.Packet
	log      []*netsim.Packet
	ch       chan *netsim.Packet
	cb       func()
	pair     pair
	snapshot netsim.Packet
	kind     metrics.Class
}

type pair struct{ p *netsim.Packet }

func (a *app) Receive(p *netsim.Packet) {
	a.last = p               // want `storing in a\.last`
	a.log = append(a.log, p) // want `appending to a slice`
	a.ch <- p                // want `sending on a channel`
	a.pair = pair{p: p}      // want `storing in a composite literal`
	a.cb = func() {
		observe(p) // want `capturing in a closure`
	}

	q := p     // local alias: tracked, not yet a violation
	a.last = q // want `storing in a\.last`

	// The legal patterns: copy the struct, read the fields.
	a.snapshot = *p
	a.kind = p.Class
	observe(p)                    // passing down the stack stays inside the callback
	func() { a.kind = p.Class }() // immediately-invoked literal runs inside the callback
}

func (a *app) Snoop(p *netsim.Packet) {
	stash = p // want `assigning to stash`
}

var stash *netsim.Packet

// helper is not a Receive/Snoop callback: its packets are its
// caller's business, so nothing here is flagged.
func helper(p *netsim.Packet) *netsim.Packet {
	return p
}

// allowedKeep is a reviewed retention — e.g. code that provably
// copies before the next simulator step.
type keeper struct{ seen *netsim.Packet }

func (k *keeper) Receive(p *netsim.Packet) {
	k.seen = p //scoop:allow packetretain consumed synchronously before returning, reviewed
	k.consume()
}

func (k *keeper) consume() { k.seen = nil }

func observe(p *netsim.Packet) { _ = p.Size }
