// Package maprange is a scooplint fixture: the harness loads it with
// the deterministic-package flag forced on and checks the maprange
// analyzer's findings against the want comments line by line.
package maprange

import "sort"

// seed returns something map-order-dependent: the first key Go's
// randomized iteration happens to yield.
func seed(m map[int]int) int {
	for k := range m { // want `map iteration order is randomized`
		return k
	}
	return 0
}

// values feeds map-ordered values into a slice — classic violation.
func values(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // want `map iteration order is randomized`
		out = append(out, v)
	}
	return out
}

// sortedKeys is the blessed idiom (trickle.OnTimer): the body only
// collects keys, which are then sorted before use.
func sortedKeys(m map[int]float64) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// filteredKeys collects keys behind a call-free condition — still
// provably order-independent (core.resetChunks does this).
func filteredKeys(m map[int]int, want int) []int {
	var ks []int
	for k, v := range m {
		if v == want {
			ks = append(ks, k)
		}
	}
	sort.Ints(ks)
	return ks
}

// clearAll deletes every key from the ranged map itself — clearing is
// order-independent.
func clearAll(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// filteredCall guards the append with a condition that calls a
// function: no longer provably pure, so it is flagged.
func filteredCall(m map[int]int) []int {
	var ks []int
	for k, v := range m { // want `map iteration order is randomized`
		if expensive(v) {
			ks = append(ks, k)
		}
	}
	sort.Ints(ks)
	return ks
}

func expensive(v int) bool { return v > 0 }

// counted is order-independent in fact (integer count) but not in any
// form the analyzer proves, so it carries a reviewed allow.
func counted(m map[int]int) int {
	n := 0
	//scoop:allow maprange integer count is order-independent
	for range m {
		n++
	}
	return n
}

// slices and channels are never flagged.
func overSlice(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}
