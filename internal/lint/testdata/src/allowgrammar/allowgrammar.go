// Package allowgrammar is a scooplint fixture for the //scoop:allow
// grammar itself: the rule is mandatory, the rule must exist, the
// reason must be non-empty — and a malformed allow never suppresses
// the finding it sits next to. Checked programmatically (not via want
// comments: the grammar findings land on the comment's own line).
package allowgrammar

import "time"

//scoop:allow

//scoop:allow nosuchrule the reason is fine but the rule is not

// unsuppressed carries a reasonless allow: both the grammar finding
// and the underlying walltime finding must survive.
func unsuppressed() time.Time {
	//scoop:allow walltime
	return time.Now()
}

// suppressed is the well-formed counterpart.
func suppressed() time.Time {
	//scoop:allow walltime fixture: demonstrates a well-formed allow
	return time.Now()
}
