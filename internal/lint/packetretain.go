package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Packetretain enforces the §12 copy-never-retain rule: since the
// scale-tier pooling overhaul, one transmission schedules one pooled
// delivery task carrying one shared packet clone for all receivers,
// so the *netsim.Packet handed to App.Receive/App.Snoop is
// simulator-owned and valid only during the callback. Retaining the
// pointer — storing it in a field or slice, sending it on a channel,
// or capturing it in a closure that outlives the callback — reads
// whatever the pool recycles into it next.
//
// The analyzer tracks the packet parameters of any method or function
// named Receive or Snoop (plus local aliases of them) outside
// package netsim itself, which owns the pool and may do as it
// pleases. Reading fields and copying the struct (cp := *p) are fine.
var Packetretain = &Analyzer{
	Name: "packetretain",
	Doc:  "retaining a simulator-owned *netsim.Packet past the Receive/Snoop callback (DESIGN.md §12)",
	Run: func(pass *Pass) {
		if strings.HasSuffix(pass.Rel, "internal/netsim") {
			return
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if name := fd.Name.Name; name != "Receive" && name != "Snoop" {
					continue
				}
				tracked := packetParams(pass, fd)
				if len(tracked) > 0 {
					checkRetention(pass, fd, tracked)
				}
			}
		}
	},
}

// isPacketPtr reports whether t is *netsim.Packet.
func isPacketPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Packet" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/netsim")
}

// packetParams collects the *netsim.Packet parameters of fd.
func packetParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	tracked := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil && isPacketPtr(obj.Type()) {
				tracked[obj] = true
			}
		}
	}
	return tracked
}

// checkRetention walks the callback body flagging every way the bare
// tracked pointer can outlive the call.
func checkRetention(pass *Pass, fd *ast.FuncDecl, tracked map[types.Object]bool) {
	info := pass.Info
	isTracked := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && tracked[info.ObjectOf(id)]
	}
	// FuncLits that are invoked on the spot run inside the callback;
	// any other literal may be stored or scheduled and outlive it.
	immediate := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				immediate[lit] = true
			}
		}
		return true
	})
	report := func(n ast.Node, how string) {
		pass.Reportf(n.Pos(), "%s retains a simulator-owned *netsim.Packet: it is valid only during the %s callback — copy the struct, never the pointer (DESIGN.md §12)", how, fd.Name.Name)
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isTracked(rhs) {
					continue
				}
				if i >= len(n.Lhs) {
					continue
				}
				lhs := n.Lhs[i]
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					// p, q = f() shape can't have a tracked bare RHS.
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					obj := info.ObjectOf(id)
					if declaredWithin(obj, fd.Body) {
						// Local alias: track it too.
						tracked[obj] = true
						continue
					}
					report(n, "assigning to "+types.ExprString(lhs))
					continue
				}
				report(n, "storing in "+types.ExprString(lhs))
			}
		case *ast.CallExpr:
			if builtinName(info, n) == "append" {
				for _, arg := range n.Args[1:] {
					if isTracked(arg) {
						report(arg, "appending to a slice")
					}
				}
			}
		case *ast.SendStmt:
			if isTracked(n.Value) {
				report(n, "sending on a channel")
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isTracked(v) {
					report(v, "storing in a composite literal")
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isTracked(r) {
					report(r, "returning the pointer")
				}
			}
		case *ast.FuncLit:
			if immediate[n] {
				return true // runs inside the callback; keep walking
			}
			captured := false
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if captured {
					return false
				}
				if id, ok := m.(*ast.Ident); ok && tracked[info.ObjectOf(id)] {
					report(id, "capturing in a closure that may outlive the callback")
					captured = true
					return false
				}
				return true
			})
			return false // inner uses already reported once
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}
