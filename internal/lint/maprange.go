package lint

import (
	"go/ast"
	"go/types"
)

// Maprange bans `for range` over maps in deterministic packages
// (DESIGN.md §2): Go randomizes map iteration order, so any map range
// whose body feeds floats, randomness, messages or artifacts makes
// the simulation depend on the runtime, not the seed. The §12
// hot-path rules push per-event state into dense slices anyway; the
// maps that survive live on cold paths, and even those must iterate
// deterministically.
//
// Two body shapes are provably order-independent and exempt:
// collecting keys into a slice (for sorting — the idiom
// trickle.OnTimer uses) and deleting keys from the ranged map itself
// (clearing). Anything else needs sorted keys or a reviewed
// //scoop:allow maprange <reason>.
var Maprange = &Analyzer{
	Name: "maprange",
	Doc:  "range over a map in a deterministic package (DESIGN.md §2)",
	Run: func(pass *Pass) {
		if !pass.Deterministic {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !mapRange(pass.Info, rs) {
					return true
				}
				if collectOnly(pass.Info, rs) {
					return true
				}
				pass.Reportf(rs.For, "map iteration order is randomized: range over %s must collect+sort keys in a deterministic package (DESIGN.md §2), or carry //scoop:allow maprange <reason>", types.ExprString(rs.X))
				return true
			})
		}
	},
}

// collectOnly reports whether the range body provably only collects
// keys for sorting or clears the map: every statement is an append of
// the key to a slice, a delete of the key from the ranged map, a
// continue/break, or an if (with a call-free condition) over the
// same statement forms.
func collectOnly(info *types.Info, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	keyObj := info.ObjectOf(key)
	if keyObj == nil {
		return false
	}
	rangedX := types.ExprString(rs.X)
	var stmtsOK func(stmts []ast.Stmt) bool
	stmtOK := func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.AssignStmt:
			// keys = append(keys, k)
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || builtinName(info, call) != "append" || len(call.Args) != 2 {
				return false
			}
			arg, ok := call.Args[1].(*ast.Ident)
			return ok && info.ObjectOf(arg) == keyObj &&
				types.ExprString(call.Args[0]) == types.ExprString(s.Lhs[0])
		case *ast.ExprStmt:
			// delete(m, k) on the ranged map itself
			call, ok := s.X.(*ast.CallExpr)
			if !ok || builtinName(info, call) != "delete" || len(call.Args) != 2 {
				return false
			}
			arg, ok := call.Args[1].(*ast.Ident)
			return ok && info.ObjectOf(arg) == keyObj &&
				types.ExprString(call.Args[0]) == rangedX
		case *ast.BranchStmt:
			return s.Label == nil
		case *ast.IfStmt:
			if s.Init != nil || hasCall(s.Cond) {
				return false
			}
			if !stmtsOK(s.Body.List) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
				return true
			case *ast.BlockStmt:
				return stmtsOK(e.List)
			case *ast.IfStmt:
				return stmtsOK([]ast.Stmt{e})
			default:
				return false
			}
		default:
			return false
		}
	}
	stmtsOK = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			if !stmtOK(s) {
				return false
			}
		}
		return true
	}
	return stmtsOK(rs.Body.List)
}
