package lint

import (
	"go/ast"
	"go/types"
)

// mapRange reports whether rs ranges over a map.
func mapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// builtinName returns the builtin a call invokes ("append", "delete",
// …) or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// pkgFunc resolves a selector expression to a package-level function
// (not a method) and returns it, or nil.
func pkgFunc(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// rootIdent strips selectors, indexing, stars and parens off an
// assignable expression and returns the base identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isFloat reports whether t's underlying type accumulates
// floating-point error (floats and complex numbers).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// declaredWithin reports whether obj is declared inside node's source
// range.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// hasCall reports whether the expression contains any function call —
// used to keep "provably pure" escapes honest.
func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
