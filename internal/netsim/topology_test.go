package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridTopologyBasics(t *testing.T) {
	topo := GridTopology(63, 2.5, 1)
	if topo.N != 63 {
		t.Fatalf("N = %d", topo.N)
	}
	for i := 0; i < topo.N; i++ {
		if topo.Quality[i][i] != 0 {
			t.Fatalf("self-link at %d", i)
		}
	}
}

func TestTopologyQualityRange(t *testing.T) {
	for _, topo := range []*Topology{
		GridTopology(63, 2.5, 2),
		UniformTopology(63, 8, 3.2, 2),
		TestbedTopology(63, 2),
	} {
		for i := 0; i < topo.N; i++ {
			for j := 0; j < topo.N; j++ {
				q := topo.Quality[i][j]
				if q < 0 || q > 1 {
					t.Fatalf("quality out of range: %f", q)
				}
			}
		}
	}
}

func TestTopologyLossBand(t *testing.T) {
	// Audible links span from near-deaf (90% loss) to reliable
	// close-range pairs (10% loss), with most mass in between.
	topo := UniformTopology(63, 8, 3.2, 5)
	for i := 0; i < topo.N; i++ {
		for j := 0; j < topo.N; j++ {
			q := topo.Quality[i][j]
			if q != 0 && (q < 0.09 || q > 0.91) {
				t.Fatalf("audible link quality %f outside band", q)
			}
		}
	}
}

func TestTopologyConnectivityFraction(t *testing.T) {
	// Paper: on average a node hears ~20% of the network. Accept a
	// generous band; the shape of results tolerates it.
	topo := UniformTopology(63, 8, 3.2, 7)
	frac := topo.AvgDegreeFraction()
	if frac < 0.08 || frac > 0.45 {
		t.Fatalf("avg degree fraction %f outside plausible band", frac)
	}
}

func TestTopologyConnected(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, topo := range []*Topology{
			GridTopology(63, 2.5, seed),
			UniformTopology(63, 8, 3.2, seed),
			TestbedTopology(63, seed),
			UniformTopology(101, 10, 3.2, seed),
		} {
			if !biconnectedToBase(topo) {
				t.Fatalf("seed %d: topology not connected to base", seed)
			}
		}
	}
}

// biconnectedToBase checks every node reaches node 0 over links usable
// in both directions (needed for ack-based unicast).
func biconnectedToBase(topo *Topology) bool {
	reach := make([]bool, topo.N)
	reach[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for j := 0; j < topo.N; j++ {
			if !reach[j] && topo.Quality[i][j] > 0 && topo.Quality[j][i] > 0 {
				reach[j] = true
				queue = append(queue, j)
			}
		}
	}
	for _, r := range reach {
		if !r {
			return false
		}
	}
	return true
}

func TestTopologyAsymmetry(t *testing.T) {
	topo := UniformTopology(63, 8, 3.2, 9)
	asym := 0
	links := 0
	for i := 0; i < topo.N; i++ {
		for j := i + 1; j < topo.N; j++ {
			if topo.Quality[i][j] > 0 && topo.Quality[j][i] > 0 {
				links++
				if math.Abs(topo.Quality[i][j]-topo.Quality[j][i]) > 1e-9 {
					asym++
				}
			}
		}
	}
	if links == 0 {
		t.Fatal("no links")
	}
	if float64(asym)/float64(links) < 0.5 {
		t.Fatalf("only %d/%d links asymmetric; topology should be slightly asymmetric", asym, links)
	}
}

func TestTopologyDeterminism(t *testing.T) {
	a := UniformTopology(63, 8, 3.2, 11)
	b := UniformTopology(63, 8, 3.2, 11)
	for i := 0; i < a.N; i++ {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("positions differ at %d", i)
		}
		for j := 0; j < a.N; j++ {
			if a.Quality[i][j] != b.Quality[i][j] {
				t.Fatalf("quality differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestTestbedMutualAudibility(t *testing.T) {
	topo := TestbedTopology(63, 4)
	for i := 0; i < topo.N; i++ {
		for j := 0; j < topo.N; j++ {
			if (topo.Quality[i][j] > 0) != (topo.Quality[j][i] > 0) {
				t.Fatalf("one-way audibility between %d and %d", i, j)
			}
		}
	}
}

func TestNewTopologyBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized topology")
		}
	}()
	NewTopology(MaxNodes + 1)
}

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("dist = %f", d)
	}
}

// Property: link quality is always 0 beyond radio range and within
// [0.10, 0.75] when nonzero.
func TestLinkQualityProperty(t *testing.T) {
	f := func(dSeed uint32) bool {
		r := newTestRand(int64(dSeed))
		d := float64(dSeed%600) / 100.0 // 0..6
		q := linkQuality(d, 3.0, r)
		if d >= 3.0 {
			return q == 0
		}
		return q == 0 || (q >= 0.10 && q <= 0.90)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsListsAudible(t *testing.T) {
	topo := UniformTopology(40, 7, 3.2, 13)
	for i := 0; i < topo.N; i++ {
		for _, nb := range topo.Neighbors(NodeID(i)) {
			if topo.Quality[i][nb] == 0 {
				t.Fatalf("neighbor %d of %d has zero quality", nb, i)
			}
			if nb == NodeID(i) {
				t.Fatal("node listed as own neighbor")
			}
		}
	}
}
