package netsim

import (
	"math/rand"
	"testing"

	"scoop/internal/metrics"
)

// newTestRand gives topology property tests a seeded random stream.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// recorder is a minimal App capturing deliveries for tests. Delivered
// packets are owned by the simulator and recycled after the callback
// returns, so the recorder keeps copies.
type recorder struct {
	api      *NodeAPI
	received []*Packet
	snooped  []*Packet
	timers   []int
}

func (r *recorder) Init(api *NodeAPI) { r.api = api }
func (r *recorder) Receive(p *Packet) { cp := *p; r.received = append(r.received, &cp) }
func (r *recorder) Snoop(p *Packet)   { cp := *p; r.snooped = append(r.snooped, &cp) }
func (r *recorder) Timer(id int)      { r.timers = append(r.timers, id) }

// pairTopology builds a 3-node chain 0—1—2 with given qualities.
func pairTopology(q01, q10, q12, q21 float64) *Topology {
	t := NewTopology(3)
	t.Pos = []Point{{0, 0}, {1, 0}, {2, 0}}
	t.Quality[0][1], t.Quality[1][0] = q01, q10
	t.Quality[1][2], t.Quality[2][1] = q12, q21
	return t
}

func newTestNet(topo *Topology, seed int64) (*Network, []*recorder, *metrics.Counters) {
	sim := NewSimulator(seed)
	ctr := metrics.NewCounters()
	net := NewNetwork(sim, topo, ctr, DefaultParams())
	recs := make([]*recorder, topo.N)
	for i := range recs {
		recs[i] = &recorder{}
		net.Attach(NodeID(i), recs[i])
	}
	net.Start()
	return net, recs, ctr
}

func TestUnicastPerfectLink(t *testing.T) {
	net, recs, ctr := newTestNet(pairTopology(1, 1, 0, 0), 1)
	delivered := false
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, func(ok bool) { delivered = ok })
	net.Sim.Run(Minute)
	if !delivered {
		t.Fatal("send callback reported failure on perfect link")
	}
	if len(recs[1].received) != 1 {
		t.Fatalf("node 1 received %d packets, want 1", len(recs[1].received))
	}
	if got := ctr.Sent(metrics.Data); got != 1 {
		t.Fatalf("counted %d data transmissions, want 1", got)
	}
	if ctr.Received(metrics.Data) != 1 {
		t.Fatalf("counted %d data receives, want 1", ctr.Received(metrics.Data))
	}
}

func TestUnicastRetransmitsOnLoss(t *testing.T) {
	// A very lossy forward link forces retries; across many trials the
	// mean attempts must exceed 1.
	var attempts, successes int64
	for seed := int64(0); seed < 40; seed++ {
		net, _, ctr := newTestNet(pairTopology(0.3, 0.9, 0, 0), seed)
		ok := false
		net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, func(b bool) { ok = b })
		net.Sim.Run(Minute)
		attempts += ctr.Sent(metrics.Data)
		if ok {
			successes++
		}
	}
	if attempts <= 40 {
		t.Fatalf("no retransmissions observed (attempts=%d)", attempts)
	}
	if successes < 20 {
		t.Fatalf("too few successes on 0.3 link with 3 attempts: %d/40", successes)
	}
}

func TestUnicastRespectsMaxAttempts(t *testing.T) {
	topo := pairTopology(0.0001, 0.9, 0, 0) // effectively dead link
	sim := NewSimulator(3)
	ctr := metrics.NewCounters()
	p := DefaultParams()
	p.MaxAttempts = 3
	net := NewNetwork(sim, topo, ctr, p)
	for i := 0; i < 3; i++ {
		net.Attach(NodeID(i), &recorder{})
	}
	net.Start()
	var done, ok bool
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, func(b bool) { done, ok = true, b })
	sim.Run(Minute)
	if !done || ok {
		t.Fatalf("done=%v ok=%v; want done and failed", done, ok)
	}
	if got := ctr.Sent(metrics.Data); got != 3 {
		t.Fatalf("attempts = %d, want exactly MaxAttempts=3", got)
	}
	if ctr.Drops(metrics.DropRetries) != 1 {
		t.Fatalf("retries drop not recorded")
	}
}

func TestBroadcastNoRetry(t *testing.T) {
	net, recs, ctr := newTestNet(pairTopology(1, 1, 1, 1), 4)
	net.api[1].Broadcast(&Packet{Class: metrics.Query, Size: 30})
	net.Sim.Run(Minute)
	if got := ctr.Sent(metrics.Query); got != 1 {
		t.Fatalf("broadcast sent %d times, want 1", got)
	}
	if len(recs[0].received) != 1 || len(recs[2].received) != 1 {
		t.Fatalf("broadcast deliveries: node0=%d node2=%d, want 1 each",
			len(recs[0].received), len(recs[2].received))
	}
}

func TestSnoopOnOverhear(t *testing.T) {
	// 0 sends unicast to 1; node 2 hears 0 as well and must snoop.
	topo := NewTopology(3)
	topo.Pos = make([]Point, 3)
	topo.Quality[0][1], topo.Quality[1][0] = 1, 1
	topo.Quality[0][2], topo.Quality[2][0] = 1, 1
	net, recs, _ := newTestNet(topo, 5)
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, nil)
	net.Sim.Run(Minute)
	if len(recs[2].received) != 0 {
		t.Fatal("non-addressee got Receive")
	}
	if len(recs[2].snooped) != 1 {
		t.Fatalf("node 2 snooped %d packets, want 1", len(recs[2].snooped))
	}
	if recs[2].snooped[0].Src != 0 {
		t.Fatal("snooped packet has wrong source")
	}
}

func TestDeadNodeNeitherSendsNorReceives(t *testing.T) {
	net, recs, ctr := newTestNet(pairTopology(1, 1, 0, 0), 6)
	net.Kill(1)
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, nil)
	net.Sim.Run(Minute)
	if len(recs[1].received) != 0 {
		t.Fatal("dead node received a packet")
	}
	// Sender still spends transmissions trying.
	if ctr.Sent(metrics.Data) == 0 {
		t.Fatal("sender did not transmit")
	}
	net.Revive(1)
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, nil)
	net.Sim.Run(2 * Minute)
	if len(recs[1].received) != 1 {
		t.Fatalf("revived node received %d, want 1", len(recs[1].received))
	}
}

func TestDeadSenderDropsPacket(t *testing.T) {
	net, recs, _ := newTestNet(pairTopology(1, 1, 0, 0), 6)
	net.Kill(0)
	var done, ok bool
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, func(b bool) { done, ok = true, b })
	net.Sim.Run(Minute)
	if !done || ok {
		t.Fatalf("dead sender: done=%v ok=%v, want done && !ok", done, ok)
	}
	if len(recs[1].received) != 0 {
		t.Fatal("packet delivered from dead sender")
	}
}

func TestScaleLinkBlocksDelivery(t *testing.T) {
	net, recs, _ := newTestNet(pairTopology(1, 1, 0, 0), 7)
	net.ScaleLink(0, 1, 0)
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, nil)
	net.Sim.Run(Minute)
	if len(recs[1].received) != 0 {
		t.Fatal("delivery over zero-scaled link")
	}
	net.ScaleLink(0, 1, 1)
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, nil)
	net.Sim.Run(2 * Minute)
	if len(recs[1].received) != 1 {
		t.Fatal("delivery failed after restoring link")
	}
}

func TestScaleAllLinksBlackout(t *testing.T) {
	net, recs, _ := newTestNet(pairTopology(1, 1, 1, 1), 8)
	net.ScaleAllLinks(0)
	net.api[0].Broadcast(&Packet{Class: metrics.Query, Size: 20})
	net.Sim.Run(Minute)
	if len(recs[1].received) != 0 {
		t.Fatal("delivery during blackout")
	}
}

func TestTimersFireAndCancel(t *testing.T) {
	net, recs, _ := newTestNet(pairTopology(1, 1, 0, 0), 9)
	net.api[0].SetTimer(7, 100)
	net.api[0].SetTimer(8, 200)
	net.api[0].CancelTimer(8)
	net.Sim.Run(Second)
	if len(recs[0].timers) != 1 || recs[0].timers[0] != 7 {
		t.Fatalf("timers fired: %v, want [7]", recs[0].timers)
	}
}

func TestTimerReplacement(t *testing.T) {
	net, recs, _ := newTestNet(pairTopology(1, 1, 0, 0), 10)
	net.api[0].SetTimer(1, 100)
	net.api[0].SetTimer(1, 500) // replaces the first
	net.Sim.Run(Second)
	if len(recs[0].timers) != 1 {
		t.Fatalf("replaced timer fired %d times, want 1", len(recs[0].timers))
	}
}

func TestSequenceNumbersDistinct(t *testing.T) {
	// Each transmission carries a fresh per-sender sequence number;
	// deliveries may reorder (random backoff) but never duplicate.
	net, recs, _ := newTestNet(pairTopology(1, 1, 0, 0), 11)
	for i := 0; i < 5; i++ {
		net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 10}, nil)
	}
	net.Sim.Run(Minute)
	if len(recs[1].received) != 5 {
		t.Fatalf("received %d, want 5", len(recs[1].received))
	}
	seen := map[uint32]bool{}
	var max uint32
	for _, p := range recs[1].received {
		if seen[p.Seq] {
			t.Fatalf("duplicate sequence number %d", p.Seq)
		}
		seen[p.Seq] = true
		if p.Seq > max {
			max = p.Seq
		}
	}
	if max != 5 {
		t.Fatalf("max seq = %d, want 5 (no loss on perfect link)", max)
	}
}

func TestCollisionsDropOverlapping(t *testing.T) {
	// Hidden-terminal setup: 0 and 2 both transmit to 1 but cannot
	// hear each other, so carrier sense cannot help. With many
	// simultaneous sends some must collide.
	var collisions int64
	for seed := int64(0); seed < 30; seed++ {
		topo := pairTopology(1, 1, 0, 0)
		topo.Quality[2][1], topo.Quality[1][2] = 1, 1
		sim := NewSimulator(seed)
		ctr := metrics.NewCounters()
		p := DefaultParams()
		p.MaxAttempts = 1
		net := NewNetwork(sim, topo, ctr, p)
		for i := 0; i < 3; i++ {
			net.Attach(NodeID(i), &recorder{})
		}
		net.Start()
		for i := 0; i < 10; i++ {
			net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 200}, nil)
			net.api[2].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 200}, nil)
		}
		sim.Run(Minute)
		collisions += ctr.Drops(metrics.DropCollision)
	}
	if collisions == 0 {
		t.Fatal("no collisions under heavy hidden-terminal load")
	}
}

func TestCollisionsDisabled(t *testing.T) {
	topo := pairTopology(1, 1, 0, 0)
	topo.Quality[2][1], topo.Quality[1][2] = 1, 1
	sim := NewSimulator(5)
	ctr := metrics.NewCounters()
	p := DefaultParams()
	p.Collisions = false
	p.CarrierSense = false
	net := NewNetwork(sim, topo, ctr, p)
	for i := 0; i < 3; i++ {
		net.Attach(NodeID(i), &recorder{})
	}
	net.Start()
	for i := 0; i < 10; i++ {
		net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 200}, nil)
		net.api[2].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 200}, nil)
	}
	sim.Run(Minute)
	if ctr.Drops(metrics.DropCollision) != 0 {
		t.Fatal("collisions recorded while disabled")
	}
}

func TestSendToBroadcastPanics(t *testing.T) {
	net, _, _ := newTestNet(pairTopology(1, 1, 0, 0), 12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: Broadcast}, nil)
}

func TestAttachAfterStartPanics(t *testing.T) {
	net, _, _ := newTestNet(pairTopology(1, 1, 0, 0), 13)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Attach(0, &recorder{})
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() int64 {
		topo := UniformTopology(20, 5, 3.0, 99)
		sim := NewSimulator(42)
		ctr := metrics.NewCounters()
		net := NewNetwork(sim, topo, ctr, DefaultParams())
		recs := make([]*recorder, topo.N)
		for i := range recs {
			recs[i] = &recorder{}
			net.Attach(NodeID(i), recs[i])
		}
		net.Start()
		for i := 1; i < topo.N; i++ {
			for k := 0; k < 3; k++ {
				net.api[i].Send(&Packet{Class: metrics.Data, Dst: 0, Size: 36}, nil)
			}
		}
		sim.Run(Minute)
		return ctr.Sent(metrics.Data)*1000 + ctr.Received(metrics.Data)
	}
	if run() != run() {
		t.Fatal("identical seeds produced different traffic")
	}
}

func TestQueueCapDropsOnOverflow(t *testing.T) {
	topo := pairTopology(0.9, 0.9, 0, 0)
	sim := NewSimulator(21)
	ctr := metrics.NewCounters()
	p := DefaultParams()
	p.QueueCap = 4
	net := NewNetwork(sim, topo, ctr, p)
	for i := 0; i < 3; i++ {
		net.Attach(NodeID(i), &recorder{})
	}
	net.Start()
	// Enqueue far more than the cap in one instant.
	for i := 0; i < 20; i++ {
		net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, nil)
	}
	sim.Run(Minute)
	if ctr.Drops(metrics.DropQueue) == 0 {
		t.Fatal("no queue drops despite 20 sends into a 4-deep queue")
	}
	// But the queue keeps draining: some packets were sent.
	if ctr.Sent(metrics.Data) == 0 {
		t.Fatal("nothing transmitted")
	}
}

func TestSerializedTransmission(t *testing.T) {
	// A node transmits one frame at a time: with two queued packets
	// their airtimes must not overlap.
	topo := pairTopology(1, 1, 0, 0)
	net, recs, _ := newTestNet(topo, 22)
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 200}, nil)
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 200}, nil)
	net.Sim.Run(Minute)
	if len(recs[1].received) != 2 {
		t.Fatalf("received %d", len(recs[1].received))
	}
}

func TestCarrierSenseDefers(t *testing.T) {
	// Nodes 0 and 2 can hear each other and both want to talk to 1:
	// carrier sense must avoid most overlap, so deliveries succeed.
	topo := NewTopology(3)
	topo.Pos = make([]Point, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				topo.Quality[i][j] = 0.95
			}
		}
	}
	sim := NewSimulator(23)
	ctr := metrics.NewCounters()
	p := DefaultParams()
	p.MaxAttempts = 1 // no retries: success requires collision avoidance
	net := NewNetwork(sim, topo, ctr, p)
	for i := 0; i < 3; i++ {
		net.Attach(NodeID(i), &recorder{})
	}
	net.Start()
	ok := 0
	for i := 0; i < 20; i++ {
		net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 150}, func(b bool) {
			if b {
				ok++
			}
		})
		net.api[2].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 150}, func(b bool) {
			if b {
				ok++
			}
		})
	}
	sim.Run(Minute)
	if ok < 25 { // 40 sends on 0.95 links; CSMA should save most
		t.Fatalf("only %d/40 delivered with carrier sense", ok)
	}
}

func TestDeadNodeDrainsQueue(t *testing.T) {
	topo := pairTopology(0.9, 0.9, 0, 0)
	net, _, _ := newTestNet(topo, 24)
	results := 0
	for i := 0; i < 5; i++ {
		net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, func(bool) { results++ })
	}
	net.Kill(0)
	net.Sim.Run(Minute)
	if results != 5 {
		t.Fatalf("only %d/5 callbacks fired after death", results)
	}
}
