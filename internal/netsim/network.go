package netsim

import (
	"fmt"
	"math/rand"

	"scoop/internal/dense"
	"scoop/internal/metrics"
	"scoop/internal/prof"
	"scoop/internal/trace"
)

// App is the protocol logic running on one simulated node. All methods
// are invoked from the node's region event loop (never concurrently
// with each other; in a region-parallel run, different regions' apps
// run concurrently but an app only ever runs on its own region's
// goroutine).
type App interface {
	// Init is called once before the simulation starts.
	Init(api *NodeAPI)
	// Receive is called when a packet addressed to this node (or to
	// Broadcast) is successfully delivered. The packet is only valid
	// for the duration of the call (see Packet ownership).
	Receive(p *Packet)
	// Snoop is called when this node overhears a packet addressed to
	// someone else, the mechanism Scoop uses to estimate link quality.
	// The packet is only valid for the duration of the call.
	Snoop(p *Packet)
	// Timer is called when a timer set via NodeAPI.SetTimer fires.
	Timer(id int)
}

// Params tunes the MAC and radio model. The zero value is not usable;
// start from DefaultParams.
type Params struct {
	// MaxAttempts bounds unicast transmissions per packet, including
	// the first (Woo-style link-layer retransmission).
	MaxAttempts int
	// AckQualityBonus scales the reverse-link probability when
	// modelling acknowledgements (short ack frames survive better
	// than full packets).
	AckQualityBonus float64
	// BackoffMin/BackoffMax bound the random CSMA delay before each
	// transmission attempt.
	BackoffMin, BackoffMax Time
	// RetryDelayMin/Max bound the delay before a retransmission.
	RetryDelayMin, RetryDelayMax Time
	// BitsPerMs is the raw channel bit rate (Mica2 CC1000: 38.6 kbps).
	// Channel-acquisition and header overheads are modelled separately
	// via TxOverhead and the CSMA backoff, which together yield the
	// paper's ~10 kbps usable application throughput.
	BitsPerMs float64
	// TxOverhead is fixed per-packet airtime (preamble, channel
	// acquisition). It doubles as the radio's detection latency: a
	// transmission becomes visible to carrier sense and the collision
	// model from the next TxOverhead grid point after it starts (the
	// region-parallel lookahead window, DESIGN.md §18).
	TxOverhead Time
	// Collisions enables the overlapping-transmission collision model.
	Collisions bool
	// CarrierSense enables CSMA deferral when the channel is audibly
	// busy at the sender.
	CarrierSense bool
	// MaxDefers bounds consecutive carrier-sense deferrals; after that
	// the node transmits anyway (real CSMA gives up too).
	MaxDefers int
	// QueueCap bounds each node's outstanding outgoing packets. New
	// sends are dropped when the queue is full, modelling the small
	// TinyOS send queue — this is what the paper means by "the network
	// may become saturated …, resulting in high loss".
	QueueCap int
}

// DefaultParams returns the parameters used in all paper-reproduction
// experiments.
func DefaultParams() Params {
	return Params{
		MaxAttempts:     6,
		AckQualityBonus: 1.4,
		BackoffMin:      5 * Millisecond,
		BackoffMax:      80 * Millisecond,
		RetryDelayMin:   60 * Millisecond,
		RetryDelayMax:   250 * Millisecond,
		BitsPerMs:       38.6,
		TxOverhead:      8 * Millisecond,
		Collisions:      true,
		CarrierSense:    true,
		MaxDefers:       10,
		QueueCap:        32,
	}
}

// transmission records an in-flight frame for the collision model.
type transmission struct {
	src        NodeID
	start, end Time
}

// interferer is one candidate colliding frame during the collision
// fold, keyed for the deterministic (src, start) fold order.
type interferer struct {
	src   NodeID
	start Time
	qi    float64
}

// outDelivery is one cross-region packet delivery waiting for the next
// barrier: the coordinator converts it into a pooled delivery task in
// the target region's heap. It carries the same canonical (origin,
// oseq) key as the sender-region copy, so the merged trace interleaves
// all of a transmission's receiver callbacks in global slot order.
type outDelivery struct {
	to     int32 // target region
	at     Time  // end of airtime
	origin NodeID
	oseq   uint64
	p      Packet
	recv   []recvSlot
}

// regionState is one region of the (possibly K=1) partitioned engine:
// its event heap and clock, its counters and trace shard, its share of
// the radio state, and its task pools. With K=1 the single region
// aliases the Network's own simulator, counters and recorder, so the
// serial engine is byte-for-byte the pre-partition code path.
type regionState struct {
	id       int
	sim      *Simulator
	counters *metrics.Counters
	trace    *trace.Recorder

	active []transmission // frames transmitted by this region's nodes
	remote []transmission // ghost frames published by other regions
	ghosts []transmission // local frames started since the last barrier
	outbox []outDelivery  // cross-region deliveries since the last barrier

	delivPool []*delivery
	timerPool []*timerTask
	stepPool  []*stepTask
	inflight  []*delivery  // scheduled, not yet run (in-air frames)
	scratch   []interferer // collision-fold gather buffer
}

func (r *regionState) pruneActive(now Time) {
	kept := r.active[:0]
	for _, tx := range r.active {
		if tx.end > now {
			kept = append(kept, tx)
		}
	}
	r.active = kept
	if len(r.remote) > 0 {
		keptR := r.remote[:0]
		for _, tx := range r.remote {
			if tx.end > now {
				keptR = append(keptR, tx)
			}
		}
		r.remote = keptR
	}
}

// Network binds a topology, a simulator, per-node applications and the
// message counters into one runnable radio network.
//
// The per-event hot path is allocation-free in steady state (DESIGN.md
// §12): link tables are flat slices keyed by dense node index, each
// transmission schedules a single pooled delivery task shared by every
// receiver, and the cloned packet it carries is recycled after the
// last callback returns.
type Network struct {
	Sim      *Simulator
	Topo     *Topology
	Counters *metrics.Counters
	Params   Params

	// OnPurge, when non-nil, is called for every queued packet a node
	// loses to a reboot (Network.Restart drains the send queue without
	// running completion callbacks — a rebooted mote forgets its RAM).
	// Invariant-checking harnesses use it to keep loss accounting
	// conservative.
	OnPurge func(id NodeID, p *Packet)

	// Trace, when non-nil, receives a flight-recorder event for every
	// transmission, delivery, snoop, drop, purge and node kill/restart.
	// Hot-path emission sites are guarded by a nil check, so the
	// disabled path costs one branch and zero allocations. Set before
	// Start (and before SetRegions when partitioning).
	Trace *trace.Recorder

	apps      []App
	api       []*NodeAPI
	dead      []bool
	linkScale []float64 // flat N×N link degradation factors
	blockMask []uint8   // flat N×N fault-blocked link bits, lazily allocated
	burstLoss float64   // correlated burst-loss fraction (0: no burst window active)
	qualFlat  []float64 // flat copy of Topo.Quality, built at Start
	txSeq     []uint32
	nextOseq  []uint64 // per-origin canonical schedule counters
	started   bool

	nregions int // requested K (0/1: serial)
	part     *Partition
	regs     []*regionState
	window   Time // visibility grid pitch = conservative lookahead
}

// NewNetwork creates a network over topo driven by sim. counters may be
// shared with other observers but must only be used from this
// simulation's goroutine.
func NewNetwork(sim *Simulator, topo *Topology, counters *metrics.Counters, params Params) *Network {
	n := &Network{
		Sim:       sim,
		Topo:      topo,
		Counters:  counters,
		Params:    params,
		apps:      make([]App, topo.N),
		api:       make([]*NodeAPI, topo.N),
		dead:      make([]bool, topo.N),
		txSeq:     make([]uint32, topo.N),
		nextOseq:  make([]uint64, topo.N),
		linkScale: make([]float64, topo.N*topo.N),
	}
	for i := range n.linkScale {
		n.linkScale[i] = 1
	}
	return n
}

// SetRegions partitions the network into k parallel regions (DESIGN.md
// §18) and builds the per-region engines immediately, so callers can
// wire per-region observers (stats shards, profilers) before attaching
// apps. k ≤ 1 — the default for networks that never call SetRegions —
// keeps the serial single-heap engine. Call after setting Trace and
// before Attach/Start.
func (n *Network) SetRegions(k int) {
	if n.started {
		panic("netsim: SetRegions after Start")
	}
	if n.regs != nil {
		panic("netsim: SetRegions called twice")
	}
	n.nregions = k
	n.buildRegions()
}

func (n *Network) buildRegions() {
	k := n.nregions
	if k < 1 {
		k = 1
	}
	n.window = LookaheadWindow(n.Params)
	n.part = PartitionTopology(n.Topo, k)
	k = n.part.K
	n.regs = make([]*regionState, k)
	if k == 1 {
		n.regs[0] = &regionState{id: 0, sim: n.Sim, counters: n.Counters, trace: n.Trace}
	} else {
		if n.Trace != nil {
			// Parallel tracing: the shared recorder switches to stamped
			// buffering, each region emits through its own fork, and
			// Close merge-sorts everything into canonical order.
			n.Trace.Buffer()
		}
		for r := 0; r < k; r++ {
			reg := &regionState{
				id:       r,
				counters: metrics.NewCounters(),
				sim:      NewSimulator(substreamSeed(n.Sim.Seed(), NodeID(n.Topo.N+r))),
			}
			if n.Trace != nil {
				sim := reg.sim
				reg.trace = n.Trace.Fork(func() int64 { return int64(sim.Now()) })
			}
			n.regs[r] = reg
		}
	}
	for i, a := range n.api {
		if a != nil {
			a.reg = n.regs[n.part.region[i]]
			a.sim = a.reg.sim
		}
	}
}

// Regions returns the effective region count (1 until SetRegions asks
// for more).
func (n *Network) Regions() int {
	if n.regs == nil {
		return 1
	}
	return len(n.regs)
}

// RegionOf returns the region node id belongs to (0 when serial).
func (n *Network) RegionOf(id NodeID) int {
	if n.part == nil {
		return 0
	}
	return n.part.RegionOf(id)
}

// RegionSim returns region r's simulator (the control simulator when
// serial). Per-region profilers attach here.
func (n *Network) RegionSim(r int) *Simulator { return n.regs[r].sim }

// RegionTrace returns region r's trace recorder fork (the shared
// recorder when serial, nil when tracing is off). Apps in region r
// must emit through it.
func (n *Network) RegionTrace(r int) *trace.Recorder { return n.regs[r].trace }

// MergeCounters folds every region's counter shard into dst. Serial
// runs count directly into the Network's shared Counters, so there is
// nothing to fold.
func (n *Network) MergeCounters(dst *metrics.Counters) {
	if len(n.regs) <= 1 {
		return
	}
	for _, reg := range n.regs {
		dst.Merge(reg.counters)
	}
}

// CountersBreakdown returns the live merged per-class breakdown across
// all regions. Callable from the control plane at barriers (windowed
// telemetry); equals Counters.Snapshot when serial.
func (n *Network) CountersBreakdown() metrics.Breakdown {
	if len(n.regs) <= 1 {
		return n.Counters.Snapshot()
	}
	var b metrics.Breakdown
	for _, reg := range n.regs {
		b = b.Add(reg.counters.Snapshot())
	}
	return b
}

// Attach installs app on node id. Must be called before Start.
func (n *Network) Attach(id NodeID, app App) {
	if n.started {
		panic("netsim: Attach after Start")
	}
	n.apps[id] = app
	a := &NodeAPI{net: n, id: id,
		rng: rand.New(rand.NewSource(substreamSeed(n.Sim.Seed(), id)))}
	if n.regs != nil {
		a.reg = n.regs[n.part.region[id]]
		a.sim = a.reg.sim
	}
	n.api[id] = a
}

// App returns the application attached to id (nil if none).
func (n *Network) App(id NodeID) App { return n.apps[id] }

// Start initialises all attached applications. Nodes without an app
// are inert (they neither send nor receive).
func (n *Network) Start() {
	if n.started {
		panic("netsim: double Start")
	}
	n.started = true
	if n.regs == nil {
		n.buildRegions()
	}
	// Freeze the link tables: force the topology's out-link lists and
	// take a flat copy of the quality matrix for O(1) pair lookups.
	nn := n.Topo.N
	n.qualFlat = make([]float64, nn*nn)
	for i := 0; i < nn; i++ {
		copy(n.qualFlat[i*nn:(i+1)*nn], n.Topo.Quality[i])
	}
	n.Topo.OutLinks(0)
	for i, app := range n.apps {
		if app != nil {
			app.Init(n.api[i])
		}
	}
}

// Run drives the simulation to `until`: the serial event loop when the
// network is unpartitioned, the windowed region coordinator otherwise
// (parallel.go). Events scheduled exactly at `until` still run.
func (n *Network) Run(until Time) {
	if len(n.regs) <= 1 {
		n.Sim.Run(until)
		return
	}
	n.runParallel(until)
}

// Kill marks a node dead: it stops sending, receiving and firing
// timers. Used for failure-injection experiments. Control-plane only
// (between events when serial, at barriers when parallel).
func (n *Network) Kill(id NodeID) {
	n.dead[id] = true
	n.Trace.Emit(trace.Event{Kind: trace.NodeDown, Node: uint16(id)})
}

// Revive brings a dead node back (its protocol state is whatever the
// app retained).
func (n *Network) Revive(id NodeID) { n.dead[id] = false }

// Restart revives a dead node and reboots its application from
// scratch: the send queue is drained, pending timers and in-flight
// transmission attempts are invalidated, and the app's Init runs
// again — a rebooted mote rejoins with fresh protocol state (routing
// table, storage index, RAM buffers), which is what churn-injection
// experiments need. Contrast Revive, which resumes the old state but
// leaves timers dead.
func (n *Network) Restart(id NodeID) {
	n.dead[id] = false
	a := n.api[id]
	if a == nil {
		return
	}
	if n.OnPurge != nil {
		for _, j := range a.queue {
			n.OnPurge(id, j.p)
		}
	}
	if n.Trace != nil {
		for _, j := range a.queue {
			n.Trace.Emit(trace.Event{Kind: trace.PacketPurge, Node: uint16(id),
				Class: j.p.Class, Cause: metrics.DropReboot, Size: int32(j.p.Size)})
		}
		n.Trace.Emit(trace.Event{Kind: trace.NodeRestart, Node: uint16(id)})
	}
	a.queue = nil
	a.busy = false
	a.jobGen++
	for t := range a.timerGen {
		a.timerGen[t]++
	}
	if n.apps[id] != nil {
		n.apps[id].Init(a)
	}
}

// Dead reports whether id is currently dead.
func (n *Network) Dead(id NodeID) bool { return n.dead[id] }

// ScaleLink multiplies the delivery probability of the directed link
// src→dst by f (clamped to [0,1] at use). Used to inject interference.
func (n *Network) ScaleLink(src, dst NodeID, f float64) {
	n.linkScale[int(src)*n.Topo.N+int(dst)] = f
}

// ScaleAllLinks applies ScaleLink to every directed link, modelling a
// network-wide interference epoch.
func (n *Network) ScaleAllLinks(f float64) {
	for i := range n.linkScale {
		n.linkScale[i] = f
	}
}

// Fault-primitive block bits (Network.blockMask). A link is blocked
// while any bit is set; the bit identifies which primitive to charge a
// typed drop to (blackout wins when both overlap).
const (
	blockBlackout uint8 = 1 << iota
	blockPartition
)

func (n *Network) ensureBlockMask() []uint8 {
	if n.blockMask == nil {
		n.blockMask = make([]uint8, n.Topo.N*n.Topo.N)
	}
	return n.blockMask
}

// SetBlackout switches a regional blackout over the node stripe
// [lo, hi] on or off: every directed link into or out of the stripe is
// blocked while the window is active. Blocked links lose frames before
// any random draw, so the sender's substream advances identically for
// every region count. Control-plane only (dynamics events at barriers);
// windows of the same primitive must not overlap.
func (n *Network) SetBlackout(lo, hi NodeID, on bool) {
	mask := n.ensureBlockMask()
	nn := n.Topo.N
	for i := 0; i < nn; i++ {
		inStripe := NodeID(i) >= lo && NodeID(i) <= hi
		row := i * nn
		for j := 0; j < nn; j++ {
			if !inStripe && !(NodeID(j) >= lo && NodeID(j) <= hi) {
				continue
			}
			if on {
				mask[row+j] |= blockBlackout
			} else {
				mask[row+j] &^= blockBlackout
			}
		}
	}
}

// SetPartition switches a network partition on or off: every directed
// link between the node sets {id < boundary} and {id >= boundary} is
// blocked while the cut is active. Control-plane only; cut windows must
// not overlap.
func (n *Network) SetPartition(boundary NodeID, on bool) {
	mask := n.ensureBlockMask()
	nn := n.Topo.N
	for i := 0; i < nn; i++ {
		row := i * nn
		for j := 0; j < nn; j++ {
			if (NodeID(i) < boundary) == (NodeID(j) < boundary) {
				continue
			}
			if on {
				mask[row+j] |= blockPartition
			} else {
				mask[row+j] &^= blockPartition
			}
		}
	}
}

// SetBurst sets the correlated burst-loss fraction: while f > 0, every
// link's delivery probability is multiplied by (1-f) on top of scripted
// loss scaling — the whole channel degrades at once, unlike the
// independent per-link ScaleLink model. f = 0 ends the window.
// Control-plane only.
func (n *Network) SetBurst(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	n.burstLoss = f
}

// dropCause classifies a retry-exhaustion drop on the path src→dst: a
// loss inside an active fault window is charged to the fault primitive
// (blackout over partition when both cover the link), everything else
// to plain retry exhaustion.
func (n *Network) dropCause(src, dst NodeID) metrics.DropCause {
	if n.blockMask != nil && int(dst) < n.Topo.N {
		switch m := n.blockMask[int(src)*n.Topo.N+int(dst)]; {
		case m&blockBlackout != 0:
			return metrics.DropBlackout
		case m&blockPartition != 0:
			return metrics.DropPartition
		}
	}
	if n.burstLoss > 0 {
		return metrics.DropBurst
	}
	return metrics.DropRetries
}

// quality returns the effective delivery probability src→dst now.
func (n *Network) quality(src, dst NodeID) float64 {
	i := int(src)*n.Topo.N + int(dst)
	var base float64
	if n.qualFlat != nil {
		base = n.qualFlat[i]
	} else {
		base = n.Topo.Quality[src][dst] // pre-Start (tests poking directly)
	}
	if n.blockMask != nil && n.blockMask[i] != 0 {
		return 0
	}
	q := base * n.linkScale[i]
	if n.burstLoss > 0 {
		q *= 1 - n.burstLoss
	}
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

func (n *Network) txDuration(size int) Time {
	d := n.Params.TxOverhead + Time(float64(size*8)/n.Params.BitsPerMs)
	if d < Millisecond {
		d = Millisecond
	}
	return d
}

// oseqNext allocates the next canonical schedule-sequence value for
// events originated by node id. All of id's scheduling happens on id's
// region goroutine (or the control plane at a barrier), so the counter
// needs no lock.
func (n *Network) oseqNext(id NodeID) uint64 {
	n.nextOseq[id]++
	return n.nextOseq[id]
}

// visible reports whether tx is visible to carrier sense and the
// collision model at virtual time `floor` = gridFloor(now): radios
// detect a frame only from the next visibility grid point after it
// starts. The rule depends on the fixed grid alone, so every region —
// having exchanged ghost transmissions at the barrier on or before
// that grid point — computes the same answer regardless of K.
func visible(tx transmission, floor Time) bool { return tx.start < floor }

// channelBusyAt reports whether any visible in-flight transmission is
// audible at node id right now (for carrier sense). The sense
// threshold is deliberately lower than the interference threshold:
// radios detect energy from transmissions too weak to decode.
func (n *Network) channelBusyAt(reg *regionState, id NodeID, now Time) bool {
	floor := gridFloor(now, n.window)
	for _, tx := range reg.active {
		if visible(tx, floor) && tx.end > now && tx.src != id && n.quality(tx.src, id) > 0.08 {
			return true
		}
	}
	for _, tx := range reg.remote {
		if visible(tx, floor) && tx.end > now && tx.src != id && n.quality(tx.src, id) > 0.08 {
			return true
		}
	}
	return false
}

// collided reports whether a frame from src spanning [start,end) is
// destroyed at receiver dst by other visible overlapping frames.
// Destruction is probabilistic, scaled by each interferer's signal at
// the receiver, with a capture effect: a clearly stronger frame
// survives interference from a much weaker one, as real narrow-band
// radios do. The per-interferer destruction probabilities fold into
// one compound survival product in deterministic (src, start) order —
// one random draw from the sender's stream per receiver — so the
// outcome is independent of the order interference state accumulated
// in (the region-parallel determinism contract).
func (n *Network) collided(reg *regionState, rng *rand.Rand, src, dst NodeID, start, end Time) bool {
	if !n.Params.Collisions {
		return false
	}
	qs := n.quality(src, dst)
	floor := gridFloor(start, n.window)
	sc := reg.scratch[:0]
	gather := func(txs []transmission) {
		for _, tx := range txs {
			if tx.src == src || tx.src == dst {
				continue
			}
			if !visible(tx, floor) || tx.end <= start {
				continue
			}
			qi := n.quality(tx.src, dst)
			if qi <= 0.1 || qs >= 2*qi {
				continue // captured: interferer too weak to matter
			}
			sc = append(sc, interferer{src: tx.src, start: tx.start, qi: qi})
		}
	}
	gather(reg.active)
	gather(reg.remote)
	reg.scratch = sc[:0]
	if len(sc) == 0 {
		return false
	}
	// Insertion sort by (src, start): a node transmits one frame at a
	// time, so the key is unique; the list is tiny.
	for i := 1; i < len(sc); i++ {
		for j := i; j > 0 && (sc[j].src < sc[j-1].src ||
			(sc[j].src == sc[j-1].src && sc[j].start < sc[j-1].start)); j-- {
			sc[j], sc[j-1] = sc[j-1], sc[j]
		}
	}
	survive := 1.0
	for _, in := range sc {
		survive *= 1 - 0.7*in.qi
	}
	return rng.Float64() < 1-survive
}

// recvSlot is one receiver of an in-air frame. gi is the receiver's
// index in the sender's out-link list — the global slot order, which
// stamps parallel trace emissions so merged traces reproduce the
// serial fan-out order.
type recvSlot struct {
	dst       NodeID
	gi        int32
	addressee bool
}

// delivery is the pooled end-of-airtime task for one transmission: a
// single cloned packet fanned out to every receiver in its region.
// Replacing the per-receiver clone + closure of the original design,
// it is what makes delivery allocation-free in steady state. A
// transmission heard across region boundaries becomes one delivery per
// region, all sharing the sender's canonical (origin, oseq) key.
type delivery struct {
	net  *Network
	reg  *regionState
	p    Packet // header copy taken at transmit time
	recv []recvSlot
	idx  int // position in reg.inflight
}

// Run implements Task: deliver to every receiver, in the ascending
// slot order recorded at transmit time (identical to the per-receiver
// event order of the pre-pooling design), then recycle.
func (d *delivery) Run() {
	n := d.net
	reg := d.reg
	tr := reg.trace
	for _, s := range d.recv {
		if n.dead[s.dst] {
			continue // died mid-air; misses the frame
		}
		if tr != nil {
			tr.SetSub(s.gi)
		}
		if s.addressee {
			reg.counters.CountReceive(uint16(s.dst), d.p.Class, d.p.Size)
			if tr != nil {
				tr.Emit(trace.Event{Kind: trace.PacketRecv, Node: uint16(s.dst),
					Peer: uint16(d.p.Src), Class: d.p.Class, Size: int32(d.p.Size)})
			}
			n.apps[s.dst].Receive(&d.p)
		} else {
			reg.counters.CountSnoop(uint16(s.dst), d.p.Size)
			if tr != nil {
				tr.Emit(trace.Event{Kind: trace.PacketSnoop, Node: uint16(s.dst),
					Peer: uint16(d.p.Src), Class: d.p.Class, Size: int32(d.p.Size)})
			}
			n.apps[s.dst].Snoop(&d.p)
		}
	}
	reg.releaseDelivery(d)
}

func (r *regionState) newDelivery(n *Network, p *Packet) *delivery {
	var d *delivery
	if k := len(r.delivPool); k > 0 {
		d = r.delivPool[k-1]
		r.delivPool = r.delivPool[:k-1]
	} else {
		d = &delivery{net: n, reg: r}
	}
	d.p = *p
	d.recv = d.recv[:0]
	d.idx = len(r.inflight)
	r.inflight = append(r.inflight, d)
	return d
}

func (r *regionState) releaseDelivery(d *delivery) {
	// Swap-remove from the in-flight list.
	last := len(r.inflight) - 1
	r.inflight[d.idx] = r.inflight[last]
	r.inflight[d.idx].idx = d.idx
	r.inflight = r.inflight[:last]
	d.p = Packet{}
	r.delivPool = append(r.delivPool, d)
}

// ForEachInFlight visits the header copy of every frame currently on
// the air (transmitted, not yet delivered). Diagnostic/invariant use;
// control-plane only.
func (n *Network) ForEachInFlight(fn func(p *Packet)) {
	for _, reg := range n.regs {
		for _, d := range reg.inflight {
			fn(&d.p)
		}
	}
}

// ForEachQueued visits every packet waiting in any node's send queue,
// including the head job whose transmission attempts are in progress.
// Diagnostic/invariant use; control-plane only.
func (n *Network) ForEachQueued(fn func(id NodeID, p *Packet)) {
	for i, a := range n.api {
		if a == nil {
			continue
		}
		for _, j := range a.queue {
			fn(NodeID(i), j.p)
		}
	}
}

// transmit puts one frame on the air from a's node and returns whether
// dst received it (for unicast ack modelling). It fans the frame out
// to every audible neighbour — same-region receivers onto one pooled
// delivery task, cross-region receivers into per-region outbox entries
// the coordinator schedules at the next barrier. Every random draw
// (per-link loss, collision folds, the ack) comes from the sender's
// substream, in out-link order, so the resolution is identical for
// every K.
func (n *Network) transmit(a *NodeAPI, p *Packet, requireAck bool) bool {
	src := a.id
	reg := a.reg
	n.txSeq[src]++
	p.Seq = n.txSeq[src]
	now := a.sim.Now()
	reg.pruneActive(now)
	dur := n.txDuration(p.Size)
	tx := transmission{src: src, start: now, end: now + dur}

	reg.counters.CountSend(uint16(src), p.Class, p.Size)
	if reg.trace != nil {
		reg.trace.Emit(trace.Event{Kind: trace.PacketSend, Node: uint16(src),
			Peer: uint16(p.Dst), Class: p.Class, Size: int32(p.Size)})
	}

	delivered := false
	rng := a.rng
	parallel := len(n.regs) > 1
	var d *delivery
	var oseq uint64
	rowBase := int(src) * n.Topo.N
	for gi, lk := range n.Topo.OutLinks(src) {
		dst := lk.Dst
		j := int(dst)
		if n.dead[j] || n.apps[j] == nil {
			continue
		}
		if n.blockMask != nil && n.blockMask[rowBase+j] != 0 {
			// Fault-blocked link: the frame dies before the per-link
			// draw, exactly like a q=0 link, so the sender's substream
			// advances identically whether or not a window is active
			// elsewhere.
			continue
		}
		q := lk.Quality * n.linkScale[rowBase+j]
		if n.burstLoss > 0 {
			q *= 1 - n.burstLoss
		}
		if q > 1 {
			q = 1
		}
		if q <= 0 || rng.Float64() >= q {
			continue
		}
		if n.collided(reg, rng, src, dst, tx.start, tx.end) {
			reg.counters.CountDrop(metrics.DropCollision)
			if reg.trace != nil {
				reg.trace.Emit(trace.Event{Kind: trace.PacketDrop, Node: uint16(dst),
					Peer: uint16(src), Class: p.Class, Cause: metrics.DropCollision,
					Size: int32(p.Size)})
			}
			continue
		}
		isAddressee := p.Dst == Broadcast || p.Dst == dst
		slot := recvSlot{dst: dst, gi: int32(gi), addressee: isAddressee}
		if oseq == 0 {
			// One canonical key per transmission, shared by the local
			// delivery and every cross-region copy: the copies live in
			// different heaps, so the duplicate key never collides, and
			// the shared key lets the trace merge restore slot order.
			oseq = n.oseqNext(src)
		}
		if rd := n.RegionOf(dst); parallel && rd != reg.id {
			reg.addOutSlot(int32(rd), tx.end, src, oseq, p, slot)
		} else {
			if d == nil {
				d = reg.newDelivery(n, p)
			}
			d.recv = append(d.recv, slot)
		}
		if isAddressee && p.Dst == dst {
			// Model the link-layer ack on the reverse link; ack frames
			// are short and more robust than data frames.
			aq := n.quality(dst, src) * n.Params.AckQualityBonus
			if aq > 1 {
				aq = 1
			}
			if !requireAck || rng.Float64() < aq {
				delivered = true
			}
		}
		if isAddressee && p.Dst == Broadcast {
			delivered = true
		}
	}
	reg.active = append(reg.active, tx)
	if parallel {
		reg.ghosts = append(reg.ghosts, tx)
	}
	if d != nil {
		// Deliver at end of airtime; a node that dies mid-air misses it.
		a.sim.scheduleOrigin(tx.end, src, oseq, d, prof.PhaseRadio)
	}
	return delivered
}

// addOutSlot appends one cross-region receiver slot, reusing the
// window's outbox entry for the same transmission and target region.
func (r *regionState) addOutSlot(to int32, at Time, origin NodeID, oseq uint64, p *Packet, slot recvSlot) {
	for i := len(r.outbox) - 1; i >= 0; i-- {
		e := &r.outbox[i]
		if e.oseq == oseq && e.origin == origin {
			if e.to == to {
				e.recv = append(e.recv, slot)
				return
			}
			continue
		}
		break
	}
	r.outbox = append(r.outbox, outDelivery{
		to: to, at: at, origin: origin, oseq: oseq, p: *p,
		recv: append(make([]recvSlot, 0, 4), slot),
	})
}

// sendJob is one queued outgoing frame.
type sendJob struct {
	p          *Packet
	requireAck bool
	done       func(bool)
}

// timerTask is the pooled scheduled form of one armed timer.
type timerTask struct {
	a   *NodeAPI
	id  int
	gen uint64
}

func (t *timerTask) Run() {
	a, id, gen := t.a, t.id, t.gen
	a.reg.timerPool = append(a.reg.timerPool, t)
	if gen != a.timerGen[id] || a.net.dead[a.id] {
		return
	}
	a.net.apps[a.id].Timer(id)
}

// stepTask is the pooled scheduled form of one MAC attempt step
// (backoff expiry, carrier-sense re-check, or retransmission).
type stepTask struct {
	a           *NodeAPI
	gen         uint64
	try, defers int
}

func (s *stepTask) Run() {
	a, gen, try, defers := s.a, s.gen, s.try, s.defers
	a.reg.stepPool = append(a.reg.stepPool, s)
	a.step(gen, try, defers)
}

// NodeAPI is the interface a node application uses to interact with
// the radio and the virtual clock. One NodeAPI exists per node.
//
// Outgoing packets pass through a bounded FIFO send queue and are
// transmitted strictly one at a time, like a mote's single radio and
// small TinyOS message queue: the node backs off (CSMA), transmits,
// waits for the ack, retries up to MaxAttempts, then moves to the next
// queued frame. A full queue drops new sends — the saturation loss the
// paper describes.
type NodeAPI struct {
	net      *Network
	reg      *regionState
	sim      *Simulator // the node's region clock (== net.Sim when serial)
	id       NodeID
	rng      *rand.Rand // per-node substream: all protocol randomness
	timerGen []uint64   // per-timer-ID arm generation, grown on demand
	queue    []sendJob
	busy     bool
	jobGen   uint64 // invalidates in-flight attempt events on job change
}

// ID returns this node's identifier.
func (a *NodeAPI) ID() NodeID { return a.id }

// N returns the network size (including the basestation).
func (a *NodeAPI) N() int { return a.net.Topo.N }

// Now returns the current virtual time (the node's region clock).
func (a *NodeAPI) Now() Time {
	if a.sim != nil {
		return a.sim.Now()
	}
	return a.net.Sim.Now()
}

// Rand exposes this node's deterministic random substream. Draw order
// within the substream is fixed by the node's own event order, never
// by global interleaving — the region-parallel determinism contract.
func (a *NodeAPI) Rand() func() float64 { return a.rng.Float64 }

// RandIntn returns a deterministic uniform int in [0,n) from the
// node's substream.
func (a *NodeAPI) RandIntn(n int) int { return a.rng.Intn(n) }

// Send enqueues p for unicast to p.Dst with CSMA backoff, link-layer
// acks and bounded retransmission. Every transmission attempt is
// counted as one message of p.Class (the paper's cost metric counts
// transmissions). The done callback, if non-nil, reports eventual
// link-layer success.
func (a *NodeAPI) Send(p *Packet, done func(ok bool)) {
	if p.Dst == Broadcast {
		panic("netsim: Send with broadcast destination; use Broadcast")
	}
	p.Src = a.id
	a.enqueue(sendJob{p: p, requireAck: true, done: done})
}

// Broadcast enqueues p for a single transmission to every audible
// neighbour, with CSMA backoff but no acknowledgement or retry.
func (a *NodeAPI) Broadcast(p *Packet) {
	p.Src = a.id
	p.Dst = Broadcast
	a.enqueue(sendJob{p: p, requireAck: false})
}

func (a *NodeAPI) enqueue(j sendJob) {
	if len(a.queue) >= a.net.Params.QueueCap {
		a.reg.counters.CountDrop(metrics.DropQueue)
		if a.reg.trace != nil {
			a.reg.trace.Emit(trace.Event{Kind: trace.PacketDrop, Node: uint16(a.id),
				Peer: uint16(j.p.Dst), Class: j.p.Class, Cause: metrics.DropQueue,
				Size: int32(j.p.Size)})
		}
		if j.done != nil {
			j.done(false)
		}
		return
	}
	a.queue = append(a.queue, j)
	if !a.busy {
		a.busy = true
		a.attempt(1, 0)
	}
}

// jobDone completes the head-of-queue job and starts the next one.
func (a *NodeAPI) jobDone(ok bool) {
	j := a.queue[0]
	a.queue = a.queue[1:]
	a.jobGen++
	if len(a.queue) == 0 {
		a.busy = false
	} else {
		a.attempt(1, 0)
	}
	if j.done != nil {
		j.done(ok)
	}
}

// scheduleStep arms one pooled MAC step after delay d.
func (a *NodeAPI) scheduleStep(d Time, gen uint64, try, defers int) {
	reg := a.reg
	var s *stepTask
	if k := len(reg.stepPool); k > 0 {
		s = reg.stepPool[k-1]
		reg.stepPool = reg.stepPool[:k-1]
	} else {
		s = &stepTask{}
	}
	s.a, s.gen, s.try, s.defers = a, gen, try, defers
	a.sim.scheduleOrigin(a.sim.Now()+d, a.id, a.net.oseqNext(a.id), s, prof.PhaseMAC)
}

// attempt drives the head-of-queue job through backoff, carrier sense,
// transmission and retries. Scheduled steps carry the job generation
// so a drained or completed job's stale events are inert.
func (a *NodeAPI) attempt(try, defers int) {
	backoff := a.randBetween(a.net.Params.BackoffMin, a.net.Params.BackoffMax)
	a.scheduleStep(backoff, a.jobGen, try, defers)
}

func (a *NodeAPI) step(gen uint64, try, defers int) {
	net := a.net
	if gen != a.jobGen || len(a.queue) == 0 {
		return
	}
	if net.dead[a.id] {
		// Drain the whole queue: a dead mote delivers nothing.
		for len(a.queue) > 0 {
			a.jobDone(false)
		}
		return
	}
	j := a.queue[0]
	if net.Params.CarrierSense && defers < net.Params.MaxDefers &&
		net.channelBusyAt(a.reg, a.id, a.sim.Now()) {
		// Channel busy: defer without spending a transmission.
		a.scheduleStep(a.randBetween(net.Params.BackoffMin, net.Params.BackoffMax),
			gen, try, defers+1)
		return
	}
	ok := net.transmit(a, j.p, j.requireAck)
	if !j.requireAck || ok {
		a.jobDone(true)
		return
	}
	if try >= net.Params.MaxAttempts {
		cause := net.dropCause(a.id, j.p.Dst)
		a.reg.counters.CountDrop(cause)
		if a.reg.trace != nil {
			a.reg.trace.Emit(trace.Event{Kind: trace.PacketDrop, Node: uint16(a.id),
				Peer: uint16(j.p.Dst), Class: j.p.Class, Cause: cause,
				Size: int32(j.p.Size)})
		}
		a.jobDone(false)
		return
	}
	a.scheduleStep(a.randBetween(net.Params.RetryDelayMin, net.Params.RetryDelayMax),
		gen, try+1, defers)
}

// SetTimer schedules Timer(id) to fire after d, replacing any pending
// timer with the same id.
func (a *NodeAPI) SetTimer(id int, d Time) {
	a.timerGen = dense.Grow(a.timerGen, id)
	a.timerGen[id]++
	reg := a.reg
	var t *timerTask
	if k := len(reg.timerPool); k > 0 {
		t = reg.timerPool[k-1]
		reg.timerPool = reg.timerPool[:k-1]
	} else {
		t = &timerTask{}
	}
	t.a, t.id, t.gen = a, id, a.timerGen[id]
	a.sim.scheduleOrigin(a.sim.Now()+d, a.id, a.net.oseqNext(a.id), t, prof.PhaseMAC)
}

// CancelTimer drops any pending timer with the given id.
func (a *NodeAPI) CancelTimer(id int) {
	if id < len(a.timerGen) {
		a.timerGen[id]++
	}
}

func (a *NodeAPI) randBetween(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(a.rng.Int63n(int64(hi-lo)))
}

func (a *NodeAPI) String() string { return fmt.Sprintf("node(%d)", a.id) }
