package netsim

import (
	"fmt"

	"scoop/internal/dense"
	"scoop/internal/metrics"
	"scoop/internal/prof"
	"scoop/internal/trace"
)

// App is the protocol logic running on one simulated node. All methods
// are invoked from the simulator's event loop (never concurrently).
type App interface {
	// Init is called once before the simulation starts.
	Init(api *NodeAPI)
	// Receive is called when a packet addressed to this node (or to
	// Broadcast) is successfully delivered. The packet is only valid
	// for the duration of the call (see Packet ownership).
	Receive(p *Packet)
	// Snoop is called when this node overhears a packet addressed to
	// someone else, the mechanism Scoop uses to estimate link quality.
	// The packet is only valid for the duration of the call.
	Snoop(p *Packet)
	// Timer is called when a timer set via NodeAPI.SetTimer fires.
	Timer(id int)
}

// Params tunes the MAC and radio model. The zero value is not usable;
// start from DefaultParams.
type Params struct {
	// MaxAttempts bounds unicast transmissions per packet, including
	// the first (Woo-style link-layer retransmission).
	MaxAttempts int
	// AckQualityBonus scales the reverse-link probability when
	// modelling acknowledgements (short ack frames survive better
	// than full packets).
	AckQualityBonus float64
	// BackoffMin/BackoffMax bound the random CSMA delay before each
	// transmission attempt.
	BackoffMin, BackoffMax Time
	// RetryDelayMin/Max bound the delay before a retransmission.
	RetryDelayMin, RetryDelayMax Time
	// BitsPerMs is the raw channel bit rate (Mica2 CC1000: 38.6 kbps).
	// Channel-acquisition and header overheads are modelled separately
	// via TxOverhead and the CSMA backoff, which together yield the
	// paper's ~10 kbps usable application throughput.
	BitsPerMs float64
	// TxOverhead is fixed per-packet airtime (preamble, channel
	// acquisition).
	TxOverhead Time
	// Collisions enables the overlapping-transmission collision model.
	Collisions bool
	// CarrierSense enables CSMA deferral when the channel is audibly
	// busy at the sender.
	CarrierSense bool
	// MaxDefers bounds consecutive carrier-sense deferrals; after that
	// the node transmits anyway (real CSMA gives up too).
	MaxDefers int
	// QueueCap bounds each node's outstanding outgoing packets. New
	// sends are dropped when the queue is full, modelling the small
	// TinyOS send queue — this is what the paper means by "the network
	// may become saturated …, resulting in high loss".
	QueueCap int
}

// DefaultParams returns the parameters used in all paper-reproduction
// experiments.
func DefaultParams() Params {
	return Params{
		MaxAttempts:     6,
		AckQualityBonus: 1.4,
		BackoffMin:      5 * Millisecond,
		BackoffMax:      80 * Millisecond,
		RetryDelayMin:   60 * Millisecond,
		RetryDelayMax:   250 * Millisecond,
		BitsPerMs:       38.6,
		TxOverhead:      8 * Millisecond,
		Collisions:      true,
		CarrierSense:    true,
		MaxDefers:       10,
		QueueCap:        32,
	}
}

// transmission records an in-flight frame for the collision model.
type transmission struct {
	src        NodeID
	start, end Time
}

// Network binds a topology, a simulator, per-node applications and the
// message counters into one runnable radio network.
//
// The per-event hot path is allocation-free in steady state (DESIGN.md
// §12): link tables are flat slices keyed by dense node index, each
// transmission schedules a single pooled delivery task shared by every
// receiver, and the cloned packet it carries is recycled after the
// last callback returns.
type Network struct {
	Sim      *Simulator
	Topo     *Topology
	Counters *metrics.Counters
	Params   Params

	// OnPurge, when non-nil, is called for every queued packet a node
	// loses to a reboot (Network.Restart drains the send queue without
	// running completion callbacks — a rebooted mote forgets its RAM).
	// Invariant-checking harnesses use it to keep loss accounting
	// conservative.
	OnPurge func(id NodeID, p *Packet)

	// Trace, when non-nil, receives a flight-recorder event for every
	// transmission, delivery, snoop, drop, purge and node kill/restart.
	// Hot-path emission sites are guarded by a nil check, so the
	// disabled path costs one branch and zero allocations. Set before
	// Start.
	Trace *trace.Recorder

	apps      []App
	api       []*NodeAPI
	dead      []bool
	linkScale []float64 // flat N×N link degradation factors
	qualFlat  []float64 // flat copy of Topo.Quality, built at Start
	active    []transmission
	txSeq     []uint32
	started   bool

	delivPool []*delivery
	timerPool []*timerTask
	stepPool  []*stepTask
	inflight  []*delivery // scheduled, not yet run (in-air frames)
}

// NewNetwork creates a network over topo driven by sim. counters may be
// shared with other observers but must only be used from this
// simulation's goroutine.
func NewNetwork(sim *Simulator, topo *Topology, counters *metrics.Counters, params Params) *Network {
	n := &Network{
		Sim:       sim,
		Topo:      topo,
		Counters:  counters,
		Params:    params,
		apps:      make([]App, topo.N),
		api:       make([]*NodeAPI, topo.N),
		dead:      make([]bool, topo.N),
		txSeq:     make([]uint32, topo.N),
		linkScale: make([]float64, topo.N*topo.N),
	}
	for i := range n.linkScale {
		n.linkScale[i] = 1
	}
	return n
}

// Attach installs app on node id. Must be called before Start.
func (n *Network) Attach(id NodeID, app App) {
	if n.started {
		panic("netsim: Attach after Start")
	}
	n.apps[id] = app
	n.api[id] = &NodeAPI{net: n, id: id}
}

// App returns the application attached to id (nil if none).
func (n *Network) App(id NodeID) App { return n.apps[id] }

// Start initialises all attached applications. Nodes without an app
// are inert (they neither send nor receive).
func (n *Network) Start() {
	if n.started {
		panic("netsim: double Start")
	}
	n.started = true
	// Freeze the link tables: force the topology's out-link lists and
	// take a flat copy of the quality matrix for O(1) pair lookups.
	nn := n.Topo.N
	n.qualFlat = make([]float64, nn*nn)
	for i := 0; i < nn; i++ {
		copy(n.qualFlat[i*nn:(i+1)*nn], n.Topo.Quality[i])
	}
	n.Topo.OutLinks(0)
	for i, app := range n.apps {
		if app != nil {
			app.Init(n.api[i])
		}
	}
}

// Kill marks a node dead: it stops sending, receiving and firing
// timers. Used for failure-injection experiments.
func (n *Network) Kill(id NodeID) {
	n.dead[id] = true
	n.Trace.Emit(trace.Event{Kind: trace.NodeDown, Node: uint16(id)})
}

// Revive brings a dead node back (its protocol state is whatever the
// app retained).
func (n *Network) Revive(id NodeID) { n.dead[id] = false }

// Restart revives a dead node and reboots its application from
// scratch: the send queue is drained, pending timers and in-flight
// transmission attempts are invalidated, and the app's Init runs
// again — a rebooted mote rejoins with fresh protocol state (routing
// table, storage index, RAM buffers), which is what churn-injection
// experiments need. Contrast Revive, which resumes the old state but
// leaves timers dead.
func (n *Network) Restart(id NodeID) {
	n.dead[id] = false
	a := n.api[id]
	if a == nil {
		return
	}
	if n.OnPurge != nil {
		for _, j := range a.queue {
			n.OnPurge(id, j.p)
		}
	}
	if n.Trace != nil {
		for _, j := range a.queue {
			n.Trace.Emit(trace.Event{Kind: trace.PacketPurge, Node: uint16(id),
				Class: j.p.Class, Cause: metrics.DropReboot, Size: int32(j.p.Size)})
		}
		n.Trace.Emit(trace.Event{Kind: trace.NodeRestart, Node: uint16(id)})
	}
	a.queue = nil
	a.busy = false
	a.jobGen++
	for t := range a.timerGen {
		a.timerGen[t]++
	}
	if n.apps[id] != nil {
		n.apps[id].Init(a)
	}
}

// Dead reports whether id is currently dead.
func (n *Network) Dead(id NodeID) bool { return n.dead[id] }

// ScaleLink multiplies the delivery probability of the directed link
// src→dst by f (clamped to [0,1] at use). Used to inject interference.
func (n *Network) ScaleLink(src, dst NodeID, f float64) {
	n.linkScale[int(src)*n.Topo.N+int(dst)] = f
}

// ScaleAllLinks applies ScaleLink to every directed link, modelling a
// network-wide interference epoch.
func (n *Network) ScaleAllLinks(f float64) {
	for i := range n.linkScale {
		n.linkScale[i] = f
	}
}

// quality returns the effective delivery probability src→dst now.
func (n *Network) quality(src, dst NodeID) float64 {
	i := int(src)*n.Topo.N + int(dst)
	var base float64
	if n.qualFlat != nil {
		base = n.qualFlat[i]
	} else {
		base = n.Topo.Quality[src][dst] // pre-Start (tests poking directly)
	}
	q := base * n.linkScale[i]
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

func (n *Network) txDuration(size int) Time {
	d := n.Params.TxOverhead + Time(float64(size*8)/n.Params.BitsPerMs)
	if d < Millisecond {
		d = Millisecond
	}
	return d
}

// channelBusyAt reports whether any in-flight transmission is audible
// at node id right now (for carrier sense). The sense threshold is
// deliberately lower than the interference threshold: radios detect
// energy from transmissions too weak to decode.
func (n *Network) channelBusyAt(id NodeID, now Time) bool {
	for _, tx := range n.active {
		if tx.end > now && tx.src != id && n.quality(tx.src, id) > 0.08 {
			return true
		}
	}
	return false
}

// collided reports whether a frame from src spanning [start,end) is
// destroyed at receiver dst by another overlapping audible frame.
// Destruction is probabilistic, scaled by the interferer's signal at
// the receiver, with a capture effect: a clearly stronger frame
// survives interference from a much weaker one, as real narrow-band
// radios do.
func (n *Network) collided(src, dst NodeID, start, end Time) bool {
	if !n.Params.Collisions {
		return false
	}
	qs := n.quality(src, dst)
	rng := n.Sim.Rand()
	for _, tx := range n.active {
		if tx.src == src || tx.src == dst {
			continue
		}
		if tx.start >= end || tx.end <= start {
			continue
		}
		qi := n.quality(tx.src, dst)
		if qi <= 0.1 || qs >= 2*qi {
			continue // captured: interferer too weak to matter
		}
		if rng.Float64() < 0.7*qi {
			return true
		}
	}
	return false
}

func (n *Network) pruneActive(now Time) {
	kept := n.active[:0]
	for _, tx := range n.active {
		if tx.end > now {
			kept = append(kept, tx)
		}
	}
	n.active = kept
}

// recvSlot is one receiver of an in-air frame.
type recvSlot struct {
	dst       NodeID
	addressee bool
}

// delivery is the pooled end-of-airtime task for one transmission: a
// single cloned packet fanned out to every node that will hear it.
// Replacing the per-receiver clone + closure of the original design,
// it is what makes delivery allocation-free in steady state.
type delivery struct {
	net  *Network
	p    Packet // header copy taken at transmit time
	recv []recvSlot
	idx  int // position in net.inflight
}

// Run implements Task: deliver to every receiver, in the ascending-ID
// order the slots were recorded in (identical to the per-receiver
// event order of the pre-pooling design), then recycle.
func (d *delivery) Run() {
	n := d.net
	for _, s := range d.recv {
		if n.dead[s.dst] {
			continue // died mid-air; misses the frame
		}
		if s.addressee {
			n.Counters.CountReceive(uint16(s.dst), d.p.Class, d.p.Size)
			if n.Trace != nil {
				n.Trace.Emit(trace.Event{Kind: trace.PacketRecv, Node: uint16(s.dst),
					Peer: uint16(d.p.Src), Class: d.p.Class, Size: int32(d.p.Size)})
			}
			n.apps[s.dst].Receive(&d.p)
		} else {
			n.Counters.CountSnoop(uint16(s.dst), d.p.Size)
			if n.Trace != nil {
				n.Trace.Emit(trace.Event{Kind: trace.PacketSnoop, Node: uint16(s.dst),
					Peer: uint16(d.p.Src), Class: d.p.Class, Size: int32(d.p.Size)})
			}
			n.apps[s.dst].Snoop(&d.p)
		}
	}
	n.releaseDelivery(d)
}

func (n *Network) newDelivery(p *Packet) *delivery {
	var d *delivery
	if k := len(n.delivPool); k > 0 {
		d = n.delivPool[k-1]
		n.delivPool = n.delivPool[:k-1]
	} else {
		d = &delivery{net: n}
	}
	d.p = *p
	d.recv = d.recv[:0]
	d.idx = len(n.inflight)
	n.inflight = append(n.inflight, d)
	return d
}

func (n *Network) releaseDelivery(d *delivery) {
	// Swap-remove from the in-flight list.
	last := len(n.inflight) - 1
	n.inflight[d.idx] = n.inflight[last]
	n.inflight[d.idx].idx = d.idx
	n.inflight = n.inflight[:last]
	d.p = Packet{}
	n.delivPool = append(n.delivPool, d)
}

// ForEachInFlight visits the header copy of every frame currently on
// the air (transmitted, not yet delivered). Diagnostic/invariant use.
func (n *Network) ForEachInFlight(fn func(p *Packet)) {
	for _, d := range n.inflight {
		fn(&d.p)
	}
}

// ForEachQueued visits every packet waiting in any node's send queue,
// including the head job whose transmission attempts are in progress.
// Diagnostic/invariant use.
func (n *Network) ForEachQueued(fn func(id NodeID, p *Packet)) {
	for i, a := range n.api {
		if a == nil {
			continue
		}
		for _, j := range a.queue {
			fn(NodeID(i), j.p)
		}
	}
}

// transmit puts one frame on the air from src and returns whether dst
// received it (for unicast ack modelling). It fans the frame out to
// every audible neighbour and schedules one delivery task at end of
// airtime.
func (n *Network) transmit(p *Packet, requireAck bool) bool {
	src := p.Src
	n.txSeq[src]++
	p.Seq = n.txSeq[src]
	now := n.Sim.Now()
	n.pruneActive(now)
	dur := n.txDuration(p.Size)
	tx := transmission{src: src, start: now, end: now + dur}

	n.Counters.CountSend(uint16(src), p.Class, p.Size)
	if n.Trace != nil {
		n.Trace.Emit(trace.Event{Kind: trace.PacketSend, Node: uint16(src),
			Peer: uint16(p.Dst), Class: p.Class, Size: int32(p.Size)})
	}

	delivered := false
	rng := n.Sim.Rand()
	var d *delivery
	rowBase := int(src) * n.Topo.N
	for _, lk := range n.Topo.OutLinks(src) {
		dst := lk.Dst
		j := int(dst)
		if n.dead[j] || n.apps[j] == nil {
			continue
		}
		q := lk.Quality * n.linkScale[rowBase+j]
		if q > 1 {
			q = 1
		}
		if q <= 0 || rng.Float64() >= q {
			continue
		}
		if n.collided(src, dst, tx.start, tx.end) {
			n.Counters.CountDrop(metrics.DropCollision)
			if n.Trace != nil {
				n.Trace.Emit(trace.Event{Kind: trace.PacketDrop, Node: uint16(dst),
					Peer: uint16(src), Class: p.Class, Cause: metrics.DropCollision,
					Size: int32(p.Size)})
			}
			continue
		}
		isAddressee := p.Dst == Broadcast || p.Dst == dst
		if d == nil {
			d = n.newDelivery(p)
		}
		d.recv = append(d.recv, recvSlot{dst: dst, addressee: isAddressee})
		if isAddressee && p.Dst == dst {
			// Model the link-layer ack on the reverse link; ack frames
			// are short and more robust than data frames.
			aq := n.quality(dst, src) * n.Params.AckQualityBonus
			if aq > 1 {
				aq = 1
			}
			if !requireAck || rng.Float64() < aq {
				delivered = true
			}
		}
		if isAddressee && p.Dst == Broadcast {
			delivered = true
		}
	}
	n.active = append(n.active, tx)
	if d != nil {
		// Deliver at end of airtime; a node that dies mid-air misses it.
		n.Sim.atTaskPhase(tx.end, d, prof.PhaseRadio)
	}
	return delivered
}

// sendJob is one queued outgoing frame.
type sendJob struct {
	p          *Packet
	requireAck bool
	done       func(bool)
}

// timerTask is the pooled scheduled form of one armed timer.
type timerTask struct {
	a   *NodeAPI
	id  int
	gen uint64
}

func (t *timerTask) Run() {
	a, id, gen := t.a, t.id, t.gen
	net := a.net
	net.timerPool = append(net.timerPool, t)
	if gen != a.timerGen[id] || net.dead[a.id] {
		return
	}
	net.apps[a.id].Timer(id)
}

// stepTask is the pooled scheduled form of one MAC attempt step
// (backoff expiry, carrier-sense re-check, or retransmission).
type stepTask struct {
	a           *NodeAPI
	gen         uint64
	try, defers int
}

func (s *stepTask) Run() {
	a, gen, try, defers := s.a, s.gen, s.try, s.defers
	a.net.stepPool = append(a.net.stepPool, s)
	a.step(gen, try, defers)
}

// NodeAPI is the interface a node application uses to interact with
// the radio and the virtual clock. One NodeAPI exists per node.
//
// Outgoing packets pass through a bounded FIFO send queue and are
// transmitted strictly one at a time, like a mote's single radio and
// small TinyOS message queue: the node backs off (CSMA), transmits,
// waits for the ack, retries up to MaxAttempts, then moves to the next
// queued frame. A full queue drops new sends — the saturation loss the
// paper describes.
type NodeAPI struct {
	net      *Network
	id       NodeID
	timerGen []uint64 // per-timer-ID arm generation, grown on demand
	queue    []sendJob
	busy     bool
	jobGen   uint64 // invalidates in-flight attempt events on job change
}

// ID returns this node's identifier.
func (a *NodeAPI) ID() NodeID { return a.id }

// N returns the network size (including the basestation).
func (a *NodeAPI) N() int { return a.net.Topo.N }

// Now returns the current virtual time.
func (a *NodeAPI) Now() Time { return a.net.Sim.Now() }

// Rand exposes the simulation's deterministic random stream.
func (a *NodeAPI) Rand() func() float64 { return a.net.Sim.Rand().Float64 }

// RandIntn returns a deterministic uniform int in [0,n).
func (a *NodeAPI) RandIntn(n int) int { return a.net.Sim.Rand().Intn(n) }

// Send enqueues p for unicast to p.Dst with CSMA backoff, link-layer
// acks and bounded retransmission. Every transmission attempt is
// counted as one message of p.Class (the paper's cost metric counts
// transmissions). The done callback, if non-nil, reports eventual
// link-layer success.
func (a *NodeAPI) Send(p *Packet, done func(ok bool)) {
	if p.Dst == Broadcast {
		panic("netsim: Send with broadcast destination; use Broadcast")
	}
	p.Src = a.id
	a.enqueue(sendJob{p: p, requireAck: true, done: done})
}

// Broadcast enqueues p for a single transmission to every audible
// neighbour, with CSMA backoff but no acknowledgement or retry.
func (a *NodeAPI) Broadcast(p *Packet) {
	p.Src = a.id
	p.Dst = Broadcast
	a.enqueue(sendJob{p: p, requireAck: false})
}

func (a *NodeAPI) enqueue(j sendJob) {
	if len(a.queue) >= a.net.Params.QueueCap {
		a.net.Counters.CountDrop(metrics.DropQueue)
		if a.net.Trace != nil {
			a.net.Trace.Emit(trace.Event{Kind: trace.PacketDrop, Node: uint16(a.id),
				Peer: uint16(j.p.Dst), Class: j.p.Class, Cause: metrics.DropQueue,
				Size: int32(j.p.Size)})
		}
		if j.done != nil {
			j.done(false)
		}
		return
	}
	a.queue = append(a.queue, j)
	if !a.busy {
		a.busy = true
		a.attempt(1, 0)
	}
}

// jobDone completes the head-of-queue job and starts the next one.
func (a *NodeAPI) jobDone(ok bool) {
	j := a.queue[0]
	a.queue = a.queue[1:]
	a.jobGen++
	if len(a.queue) == 0 {
		a.busy = false
	} else {
		a.attempt(1, 0)
	}
	if j.done != nil {
		j.done(ok)
	}
}

// scheduleStep arms one pooled MAC step after delay d.
func (a *NodeAPI) scheduleStep(d Time, gen uint64, try, defers int) {
	net := a.net
	var s *stepTask
	if k := len(net.stepPool); k > 0 {
		s = net.stepPool[k-1]
		net.stepPool = net.stepPool[:k-1]
	} else {
		s = &stepTask{}
	}
	s.a, s.gen, s.try, s.defers = a, gen, try, defers
	net.Sim.atTaskPhase(net.Sim.Now()+d, s, prof.PhaseMAC)
}

// attempt drives the head-of-queue job through backoff, carrier sense,
// transmission and retries. Scheduled steps carry the job generation
// so a drained or completed job's stale events are inert.
func (a *NodeAPI) attempt(try, defers int) {
	backoff := a.randBetween(a.net.Params.BackoffMin, a.net.Params.BackoffMax)
	a.scheduleStep(backoff, a.jobGen, try, defers)
}

func (a *NodeAPI) step(gen uint64, try, defers int) {
	net := a.net
	if gen != a.jobGen || len(a.queue) == 0 {
		return
	}
	if net.dead[a.id] {
		// Drain the whole queue: a dead mote delivers nothing.
		for len(a.queue) > 0 {
			a.jobDone(false)
		}
		return
	}
	j := a.queue[0]
	if net.Params.CarrierSense && defers < net.Params.MaxDefers &&
		net.channelBusyAt(a.id, net.Sim.Now()) {
		// Channel busy: defer without spending a transmission.
		a.scheduleStep(a.randBetween(net.Params.BackoffMin, net.Params.BackoffMax),
			gen, try, defers+1)
		return
	}
	ok := net.transmit(j.p, j.requireAck)
	if !j.requireAck || ok {
		a.jobDone(true)
		return
	}
	if try >= net.Params.MaxAttempts {
		net.Counters.CountDrop(metrics.DropRetries)
		if net.Trace != nil {
			net.Trace.Emit(trace.Event{Kind: trace.PacketDrop, Node: uint16(a.id),
				Peer: uint16(j.p.Dst), Class: j.p.Class, Cause: metrics.DropRetries,
				Size: int32(j.p.Size)})
		}
		a.jobDone(false)
		return
	}
	a.scheduleStep(a.randBetween(net.Params.RetryDelayMin, net.Params.RetryDelayMax),
		gen, try+1, defers)
}

// SetTimer schedules Timer(id) to fire after d, replacing any pending
// timer with the same id.
func (a *NodeAPI) SetTimer(id int, d Time) {
	a.timerGen = dense.Grow(a.timerGen, id)
	a.timerGen[id]++
	net := a.net
	var t *timerTask
	if k := len(net.timerPool); k > 0 {
		t = net.timerPool[k-1]
		net.timerPool = net.timerPool[:k-1]
	} else {
		t = &timerTask{}
	}
	t.a, t.id, t.gen = a, id, a.timerGen[id]
	net.Sim.atTaskPhase(net.Sim.Now()+d, t, prof.PhaseMAC)
}

// CancelTimer drops any pending timer with the given id.
func (a *NodeAPI) CancelTimer(id int) {
	if id < len(a.timerGen) {
		a.timerGen[id]++
	}
}

func (a *NodeAPI) randBetween(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(a.net.Sim.Rand().Int63n(int64(hi-lo)))
}

func (a *NodeAPI) String() string { return fmt.Sprintf("node(%d)", a.id) }
