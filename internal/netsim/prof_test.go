package netsim

import (
	"testing"

	"scoop/internal/metrics"
	"scoop/internal/prof"
)

// A profiled run must execute the exact same event sequence as an
// unprofiled one: the profiler is observation-only.
func TestProfiledRunIdenticalOrder(t *testing.T) {
	run := func(p *prof.Profiler) []int {
		s := NewSimulator(7)
		if p != nil {
			s.SetProfiler(p)
		}
		var got []int
		s.At(30, func() { got = append(got, 3) })
		s.At(10, func() {
			got = append(got, 1)
			s.After(5, func() { got = append(got, 2) })
		})
		for i := 0; i < 4; i++ {
			i := i
			s.At(40, func() { got = append(got, 10+i) })
		}
		s.Run(100)
		return got
	}
	plain := run(nil)
	prof := run(prof.New())
	if len(plain) != len(prof) {
		t.Fatalf("profiled run fired %d events, unprofiled %d", len(prof), len(plain))
	}
	for i := range plain {
		if plain[i] != prof[i] {
			t.Fatalf("event order diverged at %d: profiled %v, plain %v", i, prof, plain)
		}
	}
}

// The simulator attributes every popped event to a phase and records
// scheduled→fired dwell and heap depth.
func TestProfilerAttributionAndDwell(t *testing.T) {
	p := prof.New()
	s := NewSimulator(1)
	s.SetProfiler(p)
	s.At(10, func() {})
	s.At(10, func() {
		s.After(25, func() {}) // dwell 25 ms
	})
	s.Run(100)

	snap := p.Snapshot()
	if snap.Events != 3 {
		t.Fatalf("profiled %d events, want 3", snap.Events)
	}
	// Plain At callbacks attribute to the harness phase.
	if got := snap.Count[prof.PhaseHarness]; got != 3 {
		t.Fatalf("harness phase count = %d, want 3", got)
	}
	if snap.Depth.Total() != 3 {
		t.Fatalf("depth samples = %d, want 3", snap.Depth.Total())
	}
	// Two events scheduled at sim start dwell 10 ms; the nested one
	// dwells 25 ms, so the max dwell bucket must cover 25.
	if max := snap.Dwell[prof.PhaseHarness].Max(); max != 25 {
		t.Fatalf("max dwell = %d ms, want 25", max)
	}
	if snap.LoopNs < snap.AttributedNs() {
		t.Fatalf("attributed %d ns exceeds loop %d ns", snap.AttributedNs(), snap.LoopNs)
	}
	if cov := snap.Coverage(); cov < 0.99 || cov > 1.01 {
		t.Fatalf("coverage = %v, want ≈1", cov)
	}
}

// Network-scheduled work lands in the radio and MAC phases.
func TestProfilerNetworkPhases(t *testing.T) {
	p := prof.New()
	net, _, _ := newTestNet(pairTopology(1, 1, 0, 0), 1)
	net.Sim.SetProfiler(p)
	net.api[1].SetTimer(1, 5)
	net.api[0].Send(&Packet{Class: metrics.Data, Dst: 1, Size: 30}, nil)
	net.Sim.Run(Second)

	snap := p.Snapshot()
	if snap.Count[prof.PhaseRadio] == 0 {
		t.Fatalf("no radio-phase events: counts %v", snap.Count)
	}
	if snap.Count[prof.PhaseMAC] == 0 {
		t.Fatalf("no mac-timer-phase events: counts %v", snap.Count)
	}
}
