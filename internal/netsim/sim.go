// Package netsim is a deterministic, packet-level discrete-event
// simulator for multihop wireless sensor networks. It stands in for the
// TOSSIM simulator and the 62-node mote testbed used in the Scoop paper:
// it models lossy asymmetric links, CSMA-style random backoff, collisions,
// link-layer acknowledgements with retransmission, and overhearing
// (snooping), and it accounts every transmission by message class so
// experiments can reproduce the paper's message-count figures.
//
// The simulator is single-threaded and fully deterministic for a given
// seed: all node logic runs as callbacks on one virtual clock. Experiment
// harnesses achieve parallelism by running independent trials (each with
// its own Simulator) on separate goroutines.
package netsim

import (
	"container/heap"
	"math/rand"
)

// Time is virtual simulation time in milliseconds.
type Time int64

// Convenient duration units in virtual milliseconds.
const (
	Millisecond Time = 1
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Seconds converts a floating-point second count to virtual Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is not usable; use NewSimulator.
type Simulator struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	halted bool
}

// NewSimulator returns a simulator whose random stream is seeded with
// seed. Two simulators with the same seed and the same schedule of
// callbacks produce identical runs.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random stream.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute virtual time t. Events scheduled
// in the past run immediately at the current time (never before it).
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d milliseconds from now.
func (s *Simulator) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Run processes events in time order until the clock reaches `until`
// or the queue drains. Events scheduled exactly at `until` still run.
func (s *Simulator) Run(until Time) {
	for len(s.events) > 0 && !s.halted {
		e := s.events[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Step runs the single earliest pending event, returning false if the
// queue is empty. Mainly useful in tests.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 || s.halted {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	e.fn()
	return true
}

// Halt stops the event loop after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// Pending reports the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }
