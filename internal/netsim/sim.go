// Package netsim is a deterministic, packet-level discrete-event
// simulator for multihop wireless sensor networks. It stands in for the
// TOSSIM simulator and the 62-node mote testbed used in the Scoop paper:
// it models lossy asymmetric links, CSMA-style random backoff, collisions,
// link-layer acknowledgements with retransmission, and overhearing
// (snooping), and it accounts every transmission by message class so
// experiments can reproduce the paper's message-count figures.
//
// The simulator is deterministic for a given seed, whether it runs
// serially (one event heap, one goroutine) or region-parallel
// (DESIGN.md §18): the topology is spatially partitioned into K
// regions, each with its own heap, clock and goroutine, advancing in
// conservative lookahead windows. Determinism across K rests on three
// K-independent conventions enforced here and in network.go:
//
//   - every event carries a canonical (time, origin, oseq) key, where
//     origin is the node whose state machine produced the event (-1
//     for control/harness events, which sort first at equal times) and
//     oseq is a per-origin schedule counter — heap order never depends
//     on which region popped what when;
//   - every random draw comes from the per-node substream of the node
//     whose protocol logic is drawing (Simulator.Rand is reserved for
//     the control plane), so draw order within a stream is fixed by
//     that node's own event order;
//   - radio visibility is windowed on a fixed time grid, so carrier
//     sense and interference depend only on transmissions begun before
//     the current grid point — state every region has seen at the last
//     barrier — never on same-window cross-region timing.
//
// The event loop is allocation-conscious (DESIGN.md §12): events live in
// a hand-rolled heap of plain structs (no interface boxing), and hot
// callers schedule pooled Task objects via AtTask/AfterTask instead of
// fresh closures.
package netsim

import (
	"math/rand"

	"scoop/internal/prof"
	"scoop/internal/trace"
)

// Time is virtual simulation time in milliseconds.
type Time int64

// Convenient duration units in virtual milliseconds.
const (
	Millisecond Time = 1
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Seconds converts a floating-point second count to virtual Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Task is a schedulable unit of work. Hot paths implement it on pooled
// structs so scheduling an event does not allocate a closure.
type Task interface{ Run() }

// ctlOrigin is the scheduling origin of control-plane events (the
// public At/After API: harness closures, dynamics, query ticks). It
// sorts before every node origin at equal times, matching the serial
// convention that control events scheduled for time t run before node
// events landing at t.
const ctlOrigin int32 = -1

type event struct {
	at     Time
	origin int32  // canonical tie-break: producing node, or ctlOrigin
	oseq   uint64 // per-origin schedule sequence (second tie-break)
	sched  Time   // when the event was scheduled (profiler dwell = at−sched)
	fn     func()
	task   Task
	phase  prof.Phase // wall-time attribution bucket for the event body
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.oseq < b.oseq
}

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is not usable; use NewSimulator.
type Simulator struct {
	now    Time
	events []event // binary min-heap ordered by (at, origin, oseq)
	seq    uint64  // control-plane oseq counter
	rng    *rand.Rand
	seed   int64
	halted bool
	prof   *prof.Profiler // nil: profiling off (the default)
}

// NewSimulator returns a simulator whose random stream is seeded with
// seed. Two simulators with the same seed and the same schedule of
// callbacks produce identical runs.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic control-plane random
// stream. Node protocol logic must not draw from it — NodeAPI exposes
// per-node substreams derived from Seed, so node draw order is
// independent of global event interleaving (the region-parallel
// determinism contract).
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Seed returns the seed this simulator (and its derived per-node
// substreams) was built from.
func (s *Simulator) Seed() int64 { return s.seed }

// SetProfiler attaches a wall-clock attribution profiler to the event
// loop (nil detaches). Profiling observes wall time only — scheduling,
// dispatch order and all simulation behaviour are identical with it on
// or off. Set before Run.
func (s *Simulator) SetProfiler(p *prof.Profiler) { s.prof = p }

// Profiler returns the attached profiler (nil when profiling is off).
func (s *Simulator) Profiler() *prof.Profiler { return s.prof }

// push inserts e into the event heap (sift-up on a plain slice; no
// container/heap interface boxing on this per-event path).
func (s *Simulator) push(e event) {
	h := append(s.events, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.events = h
}

// pop removes and returns the earliest event. Callers check emptiness.
func (s *Simulator) pop() event {
	h := s.events
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // drop fn/task references for the GC
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && eventLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < last && eventLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	s.events = h
	return top
}

// schedule enqueues one control-plane event. The phase tags the event
// body for wall-time attribution; it is carried unconditionally (one
// store) so attaching a profiler never changes the heap's contents.
func (s *Simulator) schedule(t Time, fn func(), task Task, ph prof.Phase) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(event{at: t, origin: ctlOrigin, oseq: s.seq, sched: s.now, fn: fn, task: task, phase: ph})
}

// scheduleOrigin enqueues a node-origin event carrying its canonical
// (origin, oseq) key. The caller owns oseq allocation: network.go hands
// out per-origin counters, and all scheduling for origin X happens in
// X's region, so the counters need no locking.
func (s *Simulator) scheduleOrigin(t Time, origin NodeID, oseq uint64, task Task, ph prof.Phase) {
	if t < s.now {
		t = s.now
	}
	s.push(event{at: t, origin: int32(origin), oseq: oseq, sched: s.now, task: task, phase: ph})
}

// At schedules fn to run at absolute virtual time t. Events scheduled
// in the past run immediately at the current time (never before it).
// Externally scheduled closures attribute to the harness phase.
func (s *Simulator) At(t Time, fn func()) { s.schedule(t, fn, nil, prof.PhaseHarness) }

// After schedules fn to run d milliseconds from now.
func (s *Simulator) After(d Time, fn func()) { s.At(s.now+d, fn) }

// AtTask schedules task.Run at absolute virtual time t, without
// allocating a closure. Semantics match At.
func (s *Simulator) AtTask(t Time, task Task) { s.schedule(t, nil, task, prof.PhaseHarness) }

// AfterTask schedules task.Run d milliseconds from now.
func (s *Simulator) AfterTask(d Time, task Task) { s.AtTask(s.now+d, task) }

func (e event) run() {
	if e.fn != nil {
		e.fn()
		return
	}
	e.task.Run()
}

// Run processes events in time order until the clock reaches `until`
// or the queue drains. Events scheduled exactly at `until` still run.
// If an event calls Halt, the loop stops with the clock at that event's
// time: later same-tick events never ran, so the clock must not claim
// the run reached `until`.
func (s *Simulator) Run(until Time) {
	if s.prof != nil {
		s.runProfiled(until)
	} else {
		for len(s.events) > 0 && !s.halted {
			if s.events[0].at > until {
				break
			}
			e := s.pop()
			s.now = e.at
			e.run()
		}
	}
	if !s.halted && s.now < until {
		s.now = until
	}
}

// runProfiled is Run's instrumented twin: identical event selection
// and dispatch, plus per-event attribution. Each pop records the heap
// depth (popped event included) and the event's scheduled→fired dwell,
// then the body accrues to the event's phase until EndEvent returns
// attribution to the heap phase.
func (s *Simulator) runProfiled(until Time) {
	p := s.prof
	p.LoopBegin()
	for len(s.events) > 0 && !s.halted {
		if s.events[0].at > until {
			break
		}
		e := s.pop()
		s.now = e.at
		p.BeginEvent(e.phase, len(s.events)+1, int64(e.at-e.sched))
		e.run()
		p.EndEvent()
	}
	p.LoopEnd()
}

// runWindow processes events strictly before end — the conservative
// lookahead window the parallel coordinator granted this region. The
// clock is left at the last executed event; the coordinator advances it
// to the barrier time after cross-region exchange. rec, when non-nil,
// is a buffering recorder that receives each event's canonical stamp
// before the body runs, so merged parallel traces reproduce the serial
// emission order. The caller brackets windows with the profiler's
// LoopBegin/LoopEnd.
func (s *Simulator) runWindow(end Time, rec *trace.Recorder) {
	p := s.prof
	for len(s.events) > 0 && !s.halted {
		if s.events[0].at >= end {
			break
		}
		e := s.pop()
		s.now = e.at
		if rec != nil {
			rec.SetStamp(e.origin, e.oseq)
		}
		if p != nil {
			p.BeginEvent(e.phase, len(s.events)+1, int64(e.at-e.sched))
			e.run()
			p.EndEvent()
		} else {
			e.run()
		}
	}
}

// Step runs the single earliest pending event, returning false if the
// queue is empty. Mainly useful in tests.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 || s.halted {
		return false
	}
	e := s.pop()
	s.now = e.at
	if p := s.prof; p != nil {
		p.LoopBegin()
		p.BeginEvent(e.phase, len(s.events)+1, int64(e.at-e.sched))
		e.run()
		p.EndEvent()
		p.LoopEnd()
	} else {
		e.run()
	}
	return true
}

// Halt stops the event loop after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// Halted reports whether Halt was called.
func (s *Simulator) Halted() bool { return s.halted }

// Pending reports the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }

// nextAt returns the earliest pending event time, or (0, false) when
// the queue is empty. Coordinator use.
func (s *Simulator) nextAt() (Time, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].at, true
}

// substreamSeed derives the per-node RNG substream seed for node id
// from a simulator seed, via one splitmix64 round: statistically
// independent streams, stable across K and GOMAXPROCS.
func substreamSeed(seed int64, id NodeID) int64 {
	z := uint64(seed) + (uint64(id)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
