package netsim

import "sort"

// Partition is a K-way spatial split of a topology for the
// region-parallel event loop (DESIGN.md §18). Each node belongs to
// exactly one region; regions are balanced contiguous stripes of the
// X-sorted node list, so nearby nodes — the ones whose radios interact
// — mostly share a region and cross-region traffic stays boundary
// traffic.
//
// The partition is deterministic in the topology alone (positions and
// IDs; no RNG), so every K and every GOMAXPROCS derives the same node→
// region map for a given topology.
type Partition struct {
	K      int
	region []int32 // node → region
	sizes  []int   // region → node count
}

// PartitionTopology splits topo into k balanced stripes by node
// position, sorted on (X, Y, id). k is clamped to [1, N]: asking for
// more regions than nodes degenerates to one node per region.
func PartitionTopology(topo *Topology, k int) *Partition {
	n := topo.N
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := topo.Pos[order[a]], topo.Pos[order[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return order[a] < order[b]
	})
	p := &Partition{K: k, region: make([]int32, n), sizes: make([]int, k)}
	// Balanced contiguous stripes: the first n%k stripes get one extra
	// node, so sizes differ by at most one.
	base, extra := n/k, n%k
	idx := 0
	for r := 0; r < k; r++ {
		sz := base
		if r < extra {
			sz++
		}
		for j := 0; j < sz; j++ {
			p.region[order[idx]] = int32(r)
			idx++
		}
		p.sizes[r] = sz
	}
	return p
}

// RegionOf returns the region node id belongs to.
func (p *Partition) RegionOf(id NodeID) int { return int(p.region[id]) }

// Size returns region r's node count.
func (p *Partition) Size(r int) int { return p.sizes[r] }

// BoundaryNodes returns, in ascending ID order, the nodes with at least
// one audible link (either direction) to a node in another region —
// the nodes whose transmissions become cross-region boundary events.
func (p *Partition) BoundaryNodes(topo *Topology) []NodeID {
	var out []NodeID
	for i := 0; i < topo.N; i++ {
		ri := p.region[i]
		boundary := false
		for j := 0; j < topo.N && !boundary; j++ {
			if p.region[j] != ri && (topo.Quality[i][j] > 0 || topo.Quality[j][i] > 0) {
				boundary = true
			}
		}
		if boundary {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// LookaheadWindow derives the conservative lookahead window from the
// radio parameters: the visibility grid pitch W = max(TxOverhead, 1ms).
// Every frame's airtime is at least TxOverhead (plus payload time), so
// a frame delivering inside the window [T, T+W) necessarily started
// before T — state all regions exchanged at the last barrier. The
// window depends only on Params, never on K, which is what keeps the
// windowed visibility rule (gridFloor below) K-independent.
func LookaheadWindow(p Params) Time {
	w := p.TxOverhead
	if w < Millisecond {
		w = Millisecond
	}
	return w
}

// gridFloor returns the latest visibility grid point at or before t
// for grid pitch w.
func gridFloor(t, w Time) Time { return t - t%w }

// gridNext returns the first grid point strictly after t.
func gridNext(t, w Time) Time { return gridFloor(t, w) + w }
