package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Point is a 2-D node position in meters.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Topology describes node placement and pairwise link quality.
//
// Quality[i][j] is the probability that a single transmission by i is
// heard by j (0 = no link). Links are asymmetric: Quality[i][j] need
// not equal Quality[j][i], matching the paper's simulated topology
// ("connections are slightly asymmetric, as in most real wireless
// networks"; audible pairs have loss rates from ~25% to ~90%).
//
// A topology is immutable once a Network starts on it: the per-node
// out-link lists (OutLinks) and the network's flattened quality table
// are derived from Quality exactly once, so the hot transmit fan-out
// never rescans the N×N matrix. Mutate Quality only before Start (or
// call InvalidateLinks after).
type Topology struct {
	N       int
	Pos     []Point
	Quality [][]float64

	// outLinks caches each node's audible out-links in ascending
	// destination order — built once, reused for every transmission
	// (the scale tier's dense-index convention, DESIGN.md §12). The
	// ascending order is also a determinism contract: the transmit
	// loop draws per-receiver randomness in exactly this order, so it
	// must match a fresh scan of Quality row by row.
	outLinks [][]Link
}

// Link is one directed audible link: the destination and the delivery
// probability of a single transmission.
type Link struct {
	Dst     NodeID
	Quality float64
}

// NewTopology allocates an n-node topology with no links.
func NewTopology(n int) *Topology {
	if n < 1 || n > MaxNodes {
		panic(fmt.Sprintf("netsim: topology size %d out of range [1,%d]", n, MaxNodes))
	}
	t := &Topology{N: n, Pos: make([]Point, n), Quality: make([][]float64, n)}
	for i := range t.Quality {
		t.Quality[i] = make([]float64, n)
	}
	return t
}

// OutLinks returns node i's audible out-links in ascending destination
// order. The lists for all nodes are built on first call and reused;
// call InvalidateLinks after mutating Quality by hand.
func (t *Topology) OutLinks(i NodeID) []Link {
	if t.outLinks == nil {
		t.buildOutLinks()
	}
	return t.outLinks[i]
}

func (t *Topology) buildOutLinks() {
	t.outLinks = make([][]Link, t.N)
	// One backing array for all lists keeps them cache-adjacent.
	total := 0
	for i := 0; i < t.N; i++ {
		for j := 0; j < t.N; j++ {
			if i != j && t.Quality[i][j] > 0 {
				total++
			}
		}
	}
	backing := make([]Link, 0, total)
	for i := 0; i < t.N; i++ {
		start := len(backing)
		for j := 0; j < t.N; j++ {
			if i != j && t.Quality[i][j] > 0 {
				backing = append(backing, Link{Dst: NodeID(j), Quality: t.Quality[i][j]})
			}
		}
		t.outLinks[i] = backing[start:len(backing):len(backing)]
	}
}

// InvalidateLinks drops the cached out-link lists; the next OutLinks
// call rebuilds them from Quality. Tests that edit Quality after
// first use need this — the stock generators never do.
func (t *Topology) InvalidateLinks() { t.outLinks = nil }

// Neighbors returns the nodes that can hear i at all.
func (t *Topology) Neighbors(i NodeID) []NodeID {
	links := t.OutLinks(i)
	out := make([]NodeID, len(links))
	for k, l := range links {
		out[k] = l.Dst
	}
	return out
}

// AvgDegreeFraction reports the mean fraction of other nodes each node
// can reach, the paper's "can communicate with 20% of the nodes" figure.
func (t *Topology) AvgDegreeFraction() float64 {
	if t.N <= 1 {
		return 0
	}
	var links int
	for i := 0; i < t.N; i++ {
		for j := 0; j < t.N; j++ {
			if i != j && t.Quality[i][j] > 0 {
				links++
			}
		}
	}
	return float64(links) / float64(t.N*(t.N-1))
}

// linkQuality derives the delivery probability of a directed link from
// distance, with lognormal-ish jitter and asymmetry. Pairs beyond
// rng*range have no link. Audible links are clamped into [minQ, maxQ],
// reproducing the paper's 25–90% loss band (quality 0.10–0.75).
func linkQuality(d, radioRange float64, r *rand.Rand) float64 {
	if d >= radioRange {
		return 0
	}
	// The bulk of audible pairs falls in the paper's 25–90% loss band,
	// but close-range links are reliable (loss ≤10%) — otherwise no
	// multihop protocol could deliver 93% of data, as the paper's
	// testbed does once routing picks the good links.
	const (
		minQ = 0.10 // 90% loss
		maxQ = 0.90 // 10% loss
	)
	// Base quality decays with distance; jitter models shadowing.
	base := 1.0 - math.Pow(d/radioRange, 1.5)
	q := base + r.NormFloat64()*0.12
	if q <= 0.02 {
		return 0 // effectively deaf pair despite being in range
	}
	if q < minQ {
		q = minQ
	}
	if q > maxQ {
		q = maxQ
	}
	return q
}

// fillLinks populates Quality for every pair from positions. Asymmetry
// is injected by drawing independent jitter per direction and then
// nudging one direction of each pair slightly ("slightly asymmetric").
func fillLinks(t *Topology, radioRange float64, r *rand.Rand) {
	for i := 0; i < t.N; i++ {
		for j := i + 1; j < t.N; j++ {
			d := t.Pos[i].Dist(t.Pos[j])
			qf := linkQuality(d, radioRange, r)
			qr := linkQuality(d, radioRange, r)
			// A pair is audible in both directions or neither; the
			// magnitude differs per direction.
			if qf == 0 || qr == 0 {
				continue
			}
			asym := 1.0 + (r.Float64()-0.5)*0.2
			qr *= asym
			if qr > 0.90 {
				qr = 0.90
			}
			if qr < 0.10 {
				qr = 0.10
			}
			t.Quality[i][j] = qf
			t.Quality[j][i] = qr
		}
	}
}

// ensureConnected raises the quality of the best dead link out of any
// node with no links toward the base component, so the routing tree can
// always form. Topology generators call this after the random draw.
func ensureConnected(t *Topology, r *rand.Rand) {
	for {
		reach := make([]bool, t.N)
		reach[0] = true
		queue := []int{0}
		for len(queue) > 0 {
			i := queue[0]
			queue = queue[1:]
			for j := 0; j < t.N; j++ {
				if !reach[j] && t.Quality[i][j] > 0 && t.Quality[j][i] > 0 {
					reach[j] = true
					queue = append(queue, j)
				}
			}
		}
		// Find the unreached node closest to any reached node.
		bestI, bestJ, bestD := -1, -1, math.MaxFloat64
		for j := 0; j < t.N; j++ {
			if reach[j] {
				continue
			}
			for i := 0; i < t.N; i++ {
				if !reach[i] {
					continue
				}
				if d := t.Pos[i].Dist(t.Pos[j]); d < bestD {
					bestI, bestJ, bestD = i, j, d
				}
			}
		}
		if bestJ < 0 {
			return // fully connected
		}
		q := 0.3 + r.Float64()*0.3
		t.Quality[bestI][bestJ] = q
		t.Quality[bestJ][bestI] = q * (0.9 + r.Float64()*0.2)
	}
}

// GridTopology places n nodes on a jittered grid with the basestation
// at one corner, the layout of typical indoor testbeds. radioRange is
// expressed in grid spacings (e.g. 2.5 means a node hears nodes up to
// 2.5 cells away).
func GridTopology(n int, radioRangeCells float64, seed int64) *Topology {
	r := rand.New(rand.NewSource(seed))
	t := NewTopology(n)
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	for i := 0; i < n; i++ {
		row, col := i/cols, i%cols
		t.Pos[i] = Point{
			X: float64(col) + (r.Float64()-0.5)*0.3,
			Y: float64(row) + (r.Float64()-0.5)*0.3,
		}
	}
	fillLinks(t, radioRangeCells, r)
	ensureConnected(t, r)
	return t
}

// UniformTopology scatters n nodes uniformly in a side×side square with
// the basestation nearest the corner, the paper's simulated layout.
//
// Node IDs are assigned in strip-major spatial order (as deployments
// number motes room by room), so consecutive IDs are physically close.
// The REAL workload's geographic value correlation keys off this,
// matching the Intel-lab trace where node numbering follows the
// floorplan.
func UniformTopology(n int, side, radioRange float64, seed int64) *Topology {
	r := rand.New(rand.NewSource(seed))
	t := NewTopology(n)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	// Strip-major order: walk ~2-unit-tall horizontal strips,
	// alternating direction (boustrophedon) so strip ends stay close.
	sort.Slice(pts, func(i, j int) bool {
		si, sj := int(pts[i].Y/2), int(pts[j].Y/2)
		if si != sj {
			return si < sj
		}
		if si%2 == 0 {
			return pts[i].X < pts[j].X
		}
		return pts[i].X > pts[j].X
	})
	copy(t.Pos, pts)
	// Move the node closest to the origin to index 0 (basestation).
	best, bestD := 0, math.MaxFloat64
	for i := 0; i < n; i++ {
		if d := t.Pos[i].Dist(Point{}); d < bestD {
			best, bestD = i, d
		}
	}
	t.Pos[0], t.Pos[best] = t.Pos[best], t.Pos[0]
	fillLinks(t, radioRange, r)
	ensureConnected(t, r)
	return t
}

// TestbedTopology models the paper's 62-node indoor office-floor
// testbed: an elongated floorplan (long corridor) with clustered
// offices, which yields deeper routing trees and different message
// breakdowns than the square simulated topology — the paper observes
// that testbed and simulation results differ only by such topology
// effects. The basestation sits at one end of the corridor.
func TestbedTopology(n int, seed int64) *Topology {
	r := rand.New(rand.NewSource(seed))
	t := NewTopology(n)
	// 4 rows of offices along a long corridor.
	rows := 4
	for i := 0; i < n; i++ {
		row, col := i%rows, i/rows
		t.Pos[i] = Point{
			X: float64(col)*1.2 + (r.Float64()-0.5)*0.4,
			Y: float64(row)*2.0 + (r.Float64()-0.5)*0.4,
		}
	}
	// Radio range chosen so that average connectivity lands near the
	// paper's ~20% of nodes.
	fillLinks(t, 4.0, r)
	// Interior walls: attenuate cross-row links a bit.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || t.Quality[i][j] == 0 {
				continue
			}
			if math.Abs(t.Pos[i].Y-t.Pos[j].Y) > 1.5 {
				t.Quality[i][j] *= 0.7
				if t.Quality[i][j] < 0.10 {
					t.Quality[i][j] = 0
				}
			}
		}
	}
	// Wall attenuation can produce one-way pairs; make audibility mutual.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if t.Quality[i][j] > 0 && t.Quality[j][i] == 0 {
				t.Quality[i][j] = 0
			}
		}
	}
	ensureConnected(t, r)
	return t
}
