package netsim

import "testing"

// TestOutLinksMatchQualityScan pins the determinism contract of the
// cached out-link lists: for every node they must enumerate exactly
// the audible destinations of a fresh Quality-row scan, in ascending
// destination order — the transmit loop draws per-receiver randomness
// in list order, so any deviation silently changes every simulation.
func TestOutLinksMatchQualityScan(t *testing.T) {
	for _, topo := range []*Topology{
		GridTopology(64, 2.5, 7),
		UniformTopology(63, 8, 3.5, 11),
		TestbedTopology(62, 3),
	} {
		for i := 0; i < topo.N; i++ {
			links := topo.OutLinks(NodeID(i))
			k := 0
			for j := 0; j < topo.N; j++ {
				if i == j || topo.Quality[i][j] <= 0 {
					continue
				}
				if k >= len(links) {
					t.Fatalf("node %d: out-link list too short (%d entries)", i, len(links))
				}
				if links[k].Dst != NodeID(j) || links[k].Quality != topo.Quality[i][j] {
					t.Fatalf("node %d link %d: got (%d,%v), want (%d,%v)",
						i, k, links[k].Dst, links[k].Quality, j, topo.Quality[i][j])
				}
				k++
			}
			if k != len(links) {
				t.Fatalf("node %d: %d extra out-links", i, len(links)-k)
			}
		}
	}
}

// TestOutLinksBuiltOnce verifies the lists are computed once and
// reused — the hot transmit path must not rescan the N×N matrix — and
// that InvalidateLinks forces a rebuild after a manual Quality edit.
func TestOutLinksBuiltOnce(t *testing.T) {
	topo := GridTopology(16, 2.5, 5)
	a := topo.OutLinks(1)
	b := topo.OutLinks(1)
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("OutLinks rebuilt between calls (lists must be cached)")
	}
	// Mutating Quality without invalidation keeps the stale cache (the
	// documented contract: topologies are immutable once in use) …
	dst := a[0].Dst
	topo.Quality[1][dst] = 0
	if got := topo.OutLinks(1); len(got) != len(a) {
		t.Fatal("cache unexpectedly rebuilt without InvalidateLinks")
	}
	// … and InvalidateLinks picks the edit up.
	topo.InvalidateLinks()
	if got := topo.OutLinks(1); len(got) != len(a)-1 {
		t.Fatalf("after invalidate: %d links, want %d", len(topo.OutLinks(1)), len(a)-1)
	}
}

// TestScaleTierTopologies exercises the lifted node bound: topologies
// up to MaxNodes build, stay connected, and keep bounded degree (the
// generators hold radio range constant as area grows, so per-node
// neighbourhoods — and therefore per-event cost — stay O(1) in N).
func TestScaleTierTopologies(t *testing.T) {
	for _, n := range []int{250, 1000} {
		topo := GridTopology(n, 2.5, 9)
		if topo.N != n {
			t.Fatalf("N = %d, want %d", topo.N, n)
		}
		maxDeg := 0
		for i := 0; i < n; i++ {
			if d := len(topo.OutLinks(NodeID(i))); d > maxDeg {
				maxDeg = d
			}
		}
		if maxDeg == 0 || maxDeg > 60 {
			t.Fatalf("n=%d: max degree %d outside (0,60] — radio range no longer local", n, maxDeg)
		}
	}
}
