package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 100 {
		t.Fatalf("clock = %d, want 100", s.Now())
	}
}

func TestSimulatorTieBreakFIFO(t *testing.T) {
	s := NewSimulator(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSimulatorPastEventRunsNow(t *testing.T) {
	s := NewSimulator(1)
	fired := Time(-1)
	s.At(50, func() {
		s.At(10, func() { fired = s.Now() }) // in the past
	})
	s.Run(100)
	if fired != 50 {
		t.Fatalf("past event fired at %d, want 50", fired)
	}
}

func TestSimulatorRunStopsAtBoundary(t *testing.T) {
	s := NewSimulator(1)
	var fired []Time
	s.At(10, func() { fired = append(fired, 10) })
	s.At(20, func() { fired = append(fired, 20) })
	s.At(30, func() { fired = append(fired, 30) })
	s.Run(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run(30)
	if len(fired) != 3 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
}

func TestSimulatorAfterNesting(t *testing.T) {
	s := NewSimulator(1)
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			s.After(100, tick)
		}
	}
	s.After(100, tick)
	s.Run(10 * Second)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

func TestSimulatorHalt(t *testing.T) {
	s := NewSimulator(1)
	var count int
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run(100)
	if count != 3 {
		t.Fatalf("ran %d events after halt, want 3", count)
	}
}

func TestSimulatorStep(t *testing.T) {
	s := NewSimulator(1)
	n := 0
	s.At(5, func() { n++ })
	s.At(6, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first step failed, n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second step failed, n=%d", n)
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := NewSimulator(seed)
		var draws []int64
		var tick func()
		tick = func() {
			draws = append(draws, s.Rand().Int63n(1000))
			if len(draws) < 20 {
				s.After(Time(s.Rand().Int63n(50)+1), tick)
			}
		}
		s.After(1, tick)
		s.Run(Minute)
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

// Property: events always run in non-decreasing time order, whatever
// the schedule.
func TestSimulatorMonotonicProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewSimulator(7)
		var times []Time
		for _, off := range offsets {
			at := Time(off)
			s.At(at, func() { times = append(times, s.Now()) })
		}
		s.Run(Time(1 << 17))
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %d", Seconds(1.5))
	}
	if Seconds(0) != 0 {
		t.Fatalf("Seconds(0) = %d", Seconds(0))
	}
}

func TestEventHeapOrdering(t *testing.T) {
	// Push events in random time order and verify the hand-rolled heap
	// pops them back sorted by (time, schedule order).
	s := NewSimulator(1)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		s.push(event{at: Time(r.Intn(100)), oseq: uint64(i)})
	}
	if s.Pending() != 50 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	var prev event
	for i := 0; i < 50; i++ {
		e := s.pop()
		if i > 0 && eventLess(e, prev) {
			t.Fatalf("pop %d out of order: %v after %v", i, e.at, prev.at)
		}
		prev = e
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", s.Pending())
	}
}
