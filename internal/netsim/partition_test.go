package netsim

import (
	"reflect"
	"testing"

	"scoop/internal/metrics"
)

// TestPartitionBalancedStripes checks the two structural guarantees of
// PartitionTopology on a realistic layout: region sizes differ by at
// most one, and regions are contiguous stripes of the X-sorted node
// order (region index is non-decreasing along the sort).
func TestPartitionBalancedStripes(t *testing.T) {
	topo := UniformTopology(63, 8, 3.5, 7)
	for _, k := range []int{1, 2, 3, 4, 8, 16} {
		p := PartitionTopology(topo, k)
		if p.K != k {
			t.Fatalf("k=%d: partition kept K=%d", k, p.K)
		}
		total := 0
		lo, hi := topo.N, 0
		for r := 0; r < k; r++ {
			sz := p.Size(r)
			total += sz
			if sz < lo {
				lo = sz
			}
			if sz > hi {
				hi = sz
			}
		}
		if total != topo.N {
			t.Fatalf("k=%d: region sizes sum to %d, want %d", k, total, topo.N)
		}
		if hi-lo > 1 {
			t.Fatalf("k=%d: unbalanced stripes: min %d, max %d", k, lo, hi)
		}
		// Contiguity: walk nodes in (X, Y, id) order; the region index
		// must never decrease.
		order := make([]int, topo.N)
		for i := range order {
			order[i] = i
		}
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				a, b := topo.Pos[order[i]], topo.Pos[order[j]]
				if b.X < a.X || (b.X == a.X && b.Y < a.Y) ||
					(b.X == a.X && b.Y == a.Y && order[j] < order[i]) {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		prev := 0
		for _, id := range order {
			r := p.RegionOf(NodeID(id))
			if r < prev {
				t.Fatalf("k=%d: region %d follows %d in X-sorted order (stripes not contiguous)", k, r, prev)
			}
			prev = r
		}
	}
}

// TestPartitionClamps pins the degenerate inputs: k below 1 collapses
// to one region, k above N caps at one node per region, and a
// single-node topology partitions without panicking.
func TestPartitionClamps(t *testing.T) {
	topo := UniformTopology(5, 3, 3.5, 1)
	if p := PartitionTopology(topo, 0); p.K != 1 || p.Size(0) != 5 {
		t.Fatalf("k=0: got K=%d size0=%d, want one region of 5", p.K, p.Size(0))
	}
	if p := PartitionTopology(topo, -3); p.K != 1 {
		t.Fatalf("k=-3: got K=%d, want 1", p.K)
	}
	p := PartitionTopology(topo, 12)
	if p.K != 5 {
		t.Fatalf("k=12 on 5 nodes: got K=%d, want 5", p.K)
	}
	for r := 0; r < p.K; r++ {
		if p.Size(r) != 1 {
			t.Fatalf("k>N: region %d has %d nodes, want 1", r, p.Size(r))
		}
	}
	one := NewTopology(1)
	one.Pos = []Point{{0, 0}}
	if p := PartitionTopology(one, 4); p.K != 1 || p.RegionOf(0) != 0 {
		t.Fatalf("single-node topology: K=%d region(0)=%d", p.K, p.RegionOf(0))
	}
}

// TestPartitionCoincidentPositions: all nodes at the same point (the
// worst case for a spatial sort) must still split deterministically —
// the (X, Y, id) order degrades to pure ID order.
func TestPartitionCoincidentPositions(t *testing.T) {
	topo := NewTopology(6)
	topo.Pos = make([]Point, 6)
	p := PartitionTopology(topo, 3)
	for i := 0; i < 6; i++ {
		want := i / 2 // ID-ordered stripes of two
		if got := p.RegionOf(NodeID(i)); got != want {
			t.Fatalf("coincident positions: node %d in region %d, want %d", i, got, want)
		}
	}
}

// TestPartitionDeterministic: the node→region map is a pure function
// of the topology — rebuilding it yields identical assignments.
func TestPartitionDeterministic(t *testing.T) {
	topo := UniformTopology(40, 7, 3.5, 11)
	a := PartitionTopology(topo, 4)
	b := PartitionTopology(topo, 4)
	if !reflect.DeepEqual(a.region, b.region) {
		t.Fatal("same topology, different partitions")
	}
}

// TestBoundaryNodes builds a 4-node chain split down the middle and
// checks that exactly the link-crossing nodes are reported, in ID
// order.
func TestBoundaryNodes(t *testing.T) {
	topo := NewTopology(4)
	topo.Pos = []Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	topo.Quality[0][1], topo.Quality[1][0] = 1, 1
	topo.Quality[1][2], topo.Quality[2][1] = 1, 1
	topo.Quality[2][3], topo.Quality[3][2] = 1, 1
	p := PartitionTopology(topo, 2)
	got := p.BoundaryNodes(topo)
	want := []NodeID{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("boundary nodes = %v, want %v", got, want)
	}
	// One-directional audibility still makes both endpoints boundary.
	topo.Quality[2][1] = 0
	got = p.BoundaryNodes(topo)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("asymmetric link: boundary nodes = %v, want %v", got, want)
	}
	// An isolated split (no cross links) has no boundary nodes.
	topo.Quality[1][2], topo.Quality[2][1] = 0, 0
	if got := p.BoundaryNodes(topo); len(got) != 0 {
		t.Fatalf("severed chain: boundary nodes = %v, want none", got)
	}
}

// TestLookaheadWindow pins the window derivation: the radio's fixed
// per-frame overhead, floored at one millisecond, independent of
// everything else in Params.
func TestLookaheadWindow(t *testing.T) {
	p := DefaultParams()
	if w := LookaheadWindow(p); w != p.TxOverhead {
		t.Fatalf("default window = %d, want TxOverhead %d", w, p.TxOverhead)
	}
	p.TxOverhead = 0
	if w := LookaheadWindow(p); w != Millisecond {
		t.Fatalf("zero-overhead window = %d, want the 1ms floor", w)
	}
	p.TxOverhead = 3 * Millisecond
	if w := LookaheadWindow(p); w != 3*Millisecond {
		t.Fatalf("window = %d, want 3ms", w)
	}
}

// TestGridMath checks the visibility-grid helpers across edges:
// gridFloor is the largest multiple of w at or before t, gridNext the
// first strictly after.
func TestGridMath(t *testing.T) {
	const w = 8 * Millisecond
	cases := []struct{ t, floor, next Time }{
		{0, 0, 8},
		{1, 0, 8},
		{7, 0, 8},
		{8, 8, 16},
		{9, 8, 16},
		{16, 16, 24},
		{8001, 8000, 8008},
	}
	for _, c := range cases {
		if got := gridFloor(c.t, w); got != c.floor {
			t.Errorf("gridFloor(%d) = %d, want %d", c.t, got, c.floor)
		}
		if got := gridNext(c.t, w); got != c.next {
			t.Errorf("gridNext(%d) = %d, want %d", c.t, got, c.next)
		}
	}
}

// edgeApp drives the window-edge delivery test: node 0 unicasts to a
// fixed destination at each listed time; every node logs (arrival
// time, packet size) for exact comparison across engines.
type edgeApp struct {
	api     *NodeAPI
	sendAt  []Time
	dst     NodeID
	arrived *[]arrival
}

type arrival struct {
	at   Time
	node NodeID
	size int
}

func (e *edgeApp) Init(api *NodeAPI) {
	e.api = api
	for i := range e.sendAt {
		api.SetTimer(i, e.sendAt[i])
	}
}

func (e *edgeApp) Timer(id int) {
	e.api.Send(&Packet{Class: metrics.Data, Dst: e.dst, Size: 10 + id}, nil)
}

func (e *edgeApp) Receive(p *Packet) {
	*e.arrived = append(*e.arrived, arrival{at: e.api.Now(), node: e.api.ID(), size: p.Size})
}

func (e *edgeApp) Snoop(*Packet) {}

// TestTwoRegionWindowEdgeDelivery is the sharpest conservative-engine
// edge: cross-region unicasts whose transmissions start just before,
// exactly at, and just after visibility-grid points. The delivery log
// (arrival time, receiver, size) must be identical between the serial
// engine and a 2-region split where sender and receiver are in
// different regions.
func TestTwoRegionWindowEdgeDelivery(t *testing.T) {
	w := LookaheadWindow(DefaultParams())
	// Send times straddling grid edges, plus a pair close enough to
	// serialise behind carrier sense across the region boundary.
	sendAt := []Time{w - 1, w, w + 1, 2*w - 1, 2 * w, 2*w + 1, 10*w - 1, 10 * w, 10*w + 2}
	run := func(regions int) []arrival {
		topo := NewTopology(2)
		topo.Pos = []Point{{0, 0}, {5, 0}}
		topo.Quality[0][1], topo.Quality[1][0] = 1, 1
		sim := NewSimulator(9)
		net := NewNetwork(sim, topo, metrics.NewCounters(), DefaultParams())
		if regions > 1 {
			net.SetRegions(regions)
		}
		var log []arrival
		net.Attach(0, &edgeApp{sendAt: sendAt, dst: 1, arrived: &log})
		net.Attach(1, &edgeApp{dst: 0, arrived: &log})
		net.Start()
		if regions > 1 {
			if net.Regions() != regions {
				t.Fatalf("wanted %d regions, got %d", regions, net.Regions())
			}
			if net.RegionOf(0) == net.RegionOf(1) {
				t.Fatal("both nodes landed in one region; the test needs a cross-region link")
			}
		}
		net.Run(Minute)
		return log
	}
	serial := run(1)
	if len(serial) != len(sendAt) {
		t.Fatalf("serial engine delivered %d of %d sends", len(serial), len(sendAt))
	}
	par := run(2)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("cross-region deliveries diverge at window edges:\nserial: %+v\n2-region: %+v", serial, par)
	}
}

// TestSimulatorHaltFreezesClock is the regression test for the latent
// Run edge: Halt() inside an event used to let Run's tail still fling
// the clock forward to `until`, so Now() after a mid-run halt lied
// about how far the simulation had advanced.
func TestSimulatorHaltFreezesClock(t *testing.T) {
	s := NewSimulator(1)
	s.At(10, func() { s.Halt() })
	s.Run(100)
	if s.Now() != 10 {
		t.Fatalf("clock advanced to %d after a halt at 10", s.Now())
	}
	if !s.Halted() {
		t.Fatal("Halted() = false after Halt")
	}
	// A halted simulator stays put even across further Run calls.
	s.Run(200)
	if s.Now() != 10 {
		t.Fatalf("halted clock moved to %d", s.Now())
	}
}
