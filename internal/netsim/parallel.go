package netsim

import "scoop/internal/prof"

// Region-parallel event loop (DESIGN.md §18).
//
// The coordinator advances all regions in conservative lookahead
// windows aligned to the visibility grid (pitch W = LookaheadWindow):
// each region's goroutine drains its own heap for events in [T, E),
// then the coordinator, alone, exchanges state at the barrier —
// publishing ghost transmissions, converting cross-region outbox
// entries into scheduled deliveries, and running due control-plane
// events — before granting the next window.
//
// Safety: every frame's airtime is ≥ W, so a cross-region delivery
// lands at or after the barrier that ships it, and the windowed
// visibility rule only ever consults frames begun before the current
// grid point — all exchanged at the previous barrier. No region can
// observe same-window cross-region timing, which is why K and
// GOMAXPROCS cannot change results.
//
// Memory model: workers only touch their own region between the
// channel sends that bracket a window, and the coordinator only
// touches region state while every worker is parked — each barrier's
// channel pair carries the happens-before edges both ways.

type regionWorker struct {
	end  chan Time
	done chan struct{}
}

// runParallel drives a K>1 network to `until` (events exactly at
// `until` still run, matching Simulator.Run).
func (n *Network) runParallel(until Time) {
	w := n.window
	ctl := n.Sim
	stamped := n.Trace != nil
	if p := ctl.Profiler(); p != nil {
		p.LoopBegin()
		defer p.LoopEnd()
	}

	workers := make([]regionWorker, len(n.regs))
	for i, reg := range n.regs {
		rw := regionWorker{end: make(chan Time), done: make(chan struct{})}
		workers[i] = rw
		//scoop:allow goroutine region worker: confined to its own regionState; barrier channels carry the happens-before edges
		go func(reg *regionState, rw regionWorker) {
			p := reg.sim.Profiler()
			for end := range rw.end {
				if p != nil {
					p.LoopBegin()
				}
				reg.sim.runWindow(end, reg.trace)
				if p != nil {
					p.LoopEnd()
				}
				rw.done <- struct{}{}
			}
		}(reg, rw)
	}
	defer func() {
		for _, rw := range workers {
			close(rw.end)
		}
	}()

	T := ctl.Now()
	for {
		// Run control events due at or before T. They execute with every
		// region quiesced at the barrier and, like the serial heap's
		// ctlOrigin ordering, before any node event at the same time.
		for !ctl.Halted() {
			tc, ok := ctl.nextAt()
			if !ok || tc > T || tc > until {
				break
			}
			n.runCtlEvent(stamped)
		}
		if ctl.Halted() || T > until {
			break
		}

		// The next control boundary: the earliest pending control event,
		// or until+1 so events landing exactly at `until` still run.
		next := until + 1
		if tc, ok := ctl.nextAt(); ok && tc <= until {
			next = tc
		}

		// Earliest pending node event across regions.
		var mr Time
		have := false
		for _, reg := range n.regs {
			if t, ok := reg.sim.nextAt(); ok && (!have || t < mr) {
				mr, have = t, true
			}
		}
		if !have || mr >= next {
			// No node work before the control boundary: jump straight to
			// it. Nothing transmits in between, so skipping the empty
			// grid windows exchanges nothing.
			if next > until {
				break
			}
			n.advanceRegions(next)
			T = next
			continue
		}
		if f := gridFloor(mr, w); f > T {
			T = f // skip grid windows with no events anywhere
		}
		E := gridNext(T, w)
		if next < E {
			E = next // a control event ends this window early
		}

		for _, rw := range workers {
			rw.end <- E
		}
		for _, rw := range workers {
			<-rw.done
		}
		n.exchange(E)
		T = E
	}
	n.advanceRegions(until)
	if !ctl.Halted() && ctl.Now() < until {
		ctl.now = until
	}
}

// runCtlEvent pops and runs one control-plane event, stamping every
// recorder with its canonical key first so trace emissions from
// control bodies (queries, dynamics, purges) merge into serial order.
func (n *Network) runCtlEvent(stamped bool) {
	s := n.Sim
	e := s.pop()
	s.now = e.at
	if stamped {
		n.Trace.SetStampCtl(e.origin, e.oseq)
	}
	if p := s.prof; p != nil {
		p.BeginEvent(e.phase, len(s.events)+1, int64(e.at-e.sched))
		e.run()
		p.EndEvent()
	} else {
		e.run()
	}
}

// exchange is the barrier body: runs with every worker parked.
func (n *Network) exchange(E Time) {
	// Ghost transmissions started this window become visible to every
	// other region's carrier sense and collision model from the next
	// grid point (ascending region order keeps remote lists, and the
	// sorted collision fold over them, deterministic).
	for _, reg := range n.regs {
		if len(reg.remote) > 0 {
			kept := reg.remote[:0]
			for _, tx := range reg.remote {
				if tx.end > E {
					kept = append(kept, tx)
				}
			}
			reg.remote = kept
		}
	}
	for _, reg := range n.regs {
		for _, tx := range reg.ghosts {
			if tx.end <= E {
				continue // already over; never visible off-region
			}
			for _, other := range n.regs {
				if other != reg {
					other.remote = append(other.remote, tx)
				}
			}
		}
		reg.ghosts = reg.ghosts[:0]
	}
	// Cross-region deliveries: schedule each outbox entry in its target
	// region under the sender's canonical key. Airtime ≥ window pitch
	// guarantees e.at ≥ E, so the insertion is conservative-safe.
	for _, reg := range n.regs {
		for i := range reg.outbox {
			e := &reg.outbox[i]
			tgt := n.regs[e.to]
			d := tgt.newDelivery(n, &e.p)
			d.recv = append(d.recv, e.recv...)
			tgt.sim.scheduleOrigin(e.at, e.origin, e.oseq, d, prof.PhaseRadio)
			e.recv = nil
		}
		reg.outbox = reg.outbox[:0]
	}
	n.advanceRegions(E)
}

// advanceRegions moves every region clock (and the control clock)
// forward to t, never past `until` handling aside, never backward.
func (n *Network) advanceRegions(t Time) {
	for _, reg := range n.regs {
		if reg.sim.now < t && !reg.sim.halted {
			reg.sim.now = t
		}
	}
	if n.Sim.now < t {
		n.Sim.now = t
	}
}
