package netsim

import "scoop/internal/metrics"

// NodeID identifies a node. The basestation is always node 0, matching
// the paper's single-basestation deployments.
type NodeID uint16

// Broadcast is the link-layer broadcast address.
const Broadcast NodeID = 0xFFFF

// NoNode marks an unset NodeID field (e.g. "no parent yet").
const NoNode NodeID = 0xFFFE

// MaxNodes is the largest supported network size. The paper's
// implementation bounds networks to 128 nodes via the fixed 128-bit
// query bitmap (paper §5.5); the scale tier (DESIGN.md §12) replaces
// that field with a variable-length bitmap sized to the network — its
// on-air size keeps the paper's 16-byte floor, so runs at or below
// 128 nodes are bit-for-bit unchanged — and raises the simulator
// bound to 1024 so GHT/TAG-regime experiments (hundreds to a
// thousand nodes) are runnable.
const MaxNodes = 1024

// Packet is a link-layer frame. Protocol layers attach their content
// as Payload; Size approximates the on-air byte count so the MAC can
// model airtime and collisions.
//
// Every outgoing packet carries Scoop's custom header fields: Origin
// (the node that created the packet) and OriginParent (that node's
// routing-tree parent), which the basestation uses to learn the tree
// (paper §5.2), plus a per-sender monotonically increasing sequence
// number that neighbours use to estimate link quality by counting gaps
// (paper §5.2, "snooping").
//
// Ownership: the *Packet passed to App.Receive and App.Snoop is owned
// by the simulator and recycled through a pool once the delivery
// callback returns. Applications must not retain or mutate it; copy
// the struct (payloads are immutable by convention and may be kept).
type Packet struct {
	Class metrics.Class // message class for accounting
	Src   NodeID        // link-layer sender of this transmission
	Dst   NodeID        // link-layer destination, or Broadcast

	Origin       NodeID // node that created the packet
	OriginParent NodeID // Origin's routing-tree parent at creation time
	Seq          uint32 // Src's link-layer sequence number (set by the MAC)

	Size    int // approximate bytes on air, including headers
	Payload any
}
