package netsim

import "scoop/internal/metrics"

// NodeID identifies a node. The basestation is always node 0, matching
// the paper's single-basestation deployments. The query bitmap in the
// Scoop header bounds networks to 128 nodes; the simulator enforces the
// same limit.
type NodeID uint16

// Broadcast is the link-layer broadcast address.
const Broadcast NodeID = 0xFFFF

// NoNode marks an unset NodeID field (e.g. "no parent yet").
const NoNode NodeID = 0xFFFE

// MaxNodes is the largest supported network size, bounded by the
// 128-bit query bitmap in Scoop's query packets (paper §5.5).
const MaxNodes = 128

// Packet is a link-layer frame. Protocol layers attach their content
// as Payload; Size approximates the on-air byte count so the MAC can
// model airtime and collisions.
//
// Every outgoing packet carries Scoop's custom header fields: Origin
// (the node that created the packet) and OriginParent (that node's
// routing-tree parent), which the basestation uses to learn the tree
// (paper §5.2), plus a per-sender monotonically increasing sequence
// number that neighbours use to estimate link quality by counting gaps
// (paper §5.2, "snooping").
type Packet struct {
	Class metrics.Class // message class for accounting
	Src   NodeID        // link-layer sender of this transmission
	Dst   NodeID        // link-layer destination, or Broadcast

	Origin       NodeID // node that created the packet
	OriginParent NodeID // Origin's routing-tree parent at creation time
	Seq          uint32 // Src's link-layer sequence number (set by the MAC)

	Size    int // approximate bytes on air, including headers
	Payload any
}

// clone returns a shallow copy, so each receiver gets an independent
// header (payloads are treated as immutable by convention).
func (p *Packet) clone() *Packet {
	q := *p
	return &q
}
