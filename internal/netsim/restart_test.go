package netsim

import (
	"testing"

	"scoop/internal/metrics"
)

// tickerApp arms a periodic timer on Init and counts fires and inits.
type tickerApp struct {
	api    *NodeAPI
	inits  int
	ticks  int
	period Time
}

func (a *tickerApp) Init(api *NodeAPI) {
	a.api = api
	a.inits++
	api.SetTimer(1, a.period)
}
func (a *tickerApp) Receive(*Packet) {}
func (a *tickerApp) Snoop(*Packet)   {}
func (a *tickerApp) Timer(id int) {
	a.ticks++
	a.api.SetTimer(1, a.period)
}

// Kill stops a node's timers for good; Restart re-runs Init so the
// timer loop (and everything an app arms there) resumes.
func TestRestartResumesTimers(t *testing.T) {
	topo := NewTopology(2)
	topo.Pos = make([]Point, 2)
	sim := NewSimulator(1)
	net := NewNetwork(sim, topo, metrics.NewCounters(), DefaultParams())
	app := &tickerApp{period: Second}
	net.Attach(1, app)
	net.Start()

	sim.Run(5 * Second)
	if app.ticks == 0 {
		t.Fatal("timer never fired")
	}
	net.Kill(1)
	atKill := app.ticks
	sim.Run(sim.Now() + 5*Second)
	if app.ticks != atKill {
		t.Fatalf("dead node ticked %d times", app.ticks-atKill)
	}
	// Revive alone must NOT resurrect the timer loop: the pending
	// fire was swallowed while dead.
	net.Revive(1)
	sim.Run(sim.Now() + 3*Second)
	if app.ticks != atKill {
		t.Fatalf("revive alone restarted timers (%d extra ticks)", app.ticks-atKill)
	}
	net.Kill(1)
	net.Restart(1)
	if app.inits != 2 {
		t.Fatalf("inits = %d, want 2", app.inits)
	}
	before := app.ticks
	sim.Run(sim.Now() + 5*Second)
	if app.ticks <= before {
		t.Fatal("restart did not resume the timer loop")
	}
}

// Restart drains the send queue: jobs queued before death must not
// transmit after the reboot.
func TestRestartDrainsSendQueue(t *testing.T) {
	topo := NewTopology(2)
	topo.Pos = make([]Point, 2)
	topo.Quality[0][1], topo.Quality[1][0] = 1, 1
	sim := NewSimulator(2)
	ctr := metrics.NewCounters()
	net := NewNetwork(sim, topo, ctr, DefaultParams())
	app := &tickerApp{period: Minute}
	net.Attach(0, app)
	net.Attach(1, &tickerApp{period: Minute})
	net.Start()

	for i := 0; i < 5; i++ {
		app.api.Send(&Packet{Class: metrics.Data, Dst: 1, Origin: 0, Size: 20}, nil)
	}
	net.Kill(0)
	net.Restart(0)
	sent := ctr.Sent(metrics.Data)
	sim.Run(sim.Now() + 10*Second)
	if got := ctr.Sent(metrics.Data); got != sent {
		t.Fatalf("stale queued frames transmitted after restart: %d", got-sent)
	}
}
