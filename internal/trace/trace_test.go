package trace

import (
	"bytes"
	"strings"
	"testing"

	"scoop/internal/metrics"
)

// fixedClock returns a clock that ticks forward one ms per call.
func fixedClock() func() int64 {
	t := int64(-1)
	return func() int64 { t++; return t }
}

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
		if k.String() == "invalid" {
			t.Fatalf("kind %d renders as invalid", k)
		}
	}
	if _, ok := ParseKind("nonsense"); ok {
		t.Fatal("parsed a bogus kind")
	}
	if Kind(200).String() != "invalid" {
		t.Fatal("out-of-range kind must render invalid")
	}
}

func TestRecorderStampsAndFansOut(t *testing.T) {
	a, b := NewRing(8), NewRing(8)
	rec := New(fixedClock(), a, b)
	rec.Emit(Event{Kind: PacketSend, Node: 3, Peer: 1, Class: metrics.Data, Size: 30})
	rec.Emit(Event{Kind: NodeDown, Node: 7})
	for _, r := range []*Ring{a, b} {
		evs := r.Events()
		if len(evs) != 2 {
			t.Fatalf("ring has %d events", len(evs))
		}
		if evs[0].T != 0 || evs[1].T != 1 {
			t.Fatalf("timestamps = %d,%d; want recorder-stamped 0,1", evs[0].T, evs[1].T)
		}
		if evs[0].Kind != PacketSend || evs[1].Kind != NodeDown {
			t.Fatal("event order wrong")
		}
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var rec *Recorder
	rec.Emit(Event{Kind: PacketSend, Node: 1}) // must not panic
	rec.Follow(&ReadingID{Producer: 1, Time: -1})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNilRecorderEmitAllocsZero(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Emit(Event{Kind: PacketSend, Node: 9, Peer: 2, Class: metrics.Reply, Size: 44})
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %v per op, want 0", allocs)
	}
}

func TestRingEnabledEmitAllocsZero(t *testing.T) {
	ring := NewRing(64)
	rec := New(fixedClock(), ring)
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Emit(Event{Kind: PacketRecv, Node: 4, Peer: 0, Class: metrics.Data, Size: 30})
	})
	if allocs != 0 {
		t.Fatalf("ring-sink Emit allocates %v per op, want 0", allocs)
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: PacketSend, Node: uint16(i)})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.Node != uint16(i+2) {
			t.Fatalf("evs[%d].Node = %d, want %d (oldest first)", i, e.Node, i+2)
		}
	}
}

// Overwrite order across several full laps: the ring must always
// retain exactly the last cap events, oldest first, including when the
// write count lands exactly on a capacity multiple (next == 0, where
// an off-by-one in the wrap split would surface).
func TestRingMultipleWrapsOverwriteOrder(t *testing.T) {
	const cap = 4
	r := NewRing(cap)
	check := func(written int) {
		t.Helper()
		if r.Total() != int64(written) {
			t.Fatalf("after %d writes: total = %d", written, r.Total())
		}
		evs := r.Events()
		want := written
		if want > cap {
			want = cap
		}
		if len(evs) != want {
			t.Fatalf("after %d writes: retained %d, want %d", written, len(evs), want)
		}
		for i, e := range evs {
			if wantNode := written - want + i; e.Node != uint16(wantNode) {
				t.Fatalf("after %d writes: evs[%d].Node = %d, want %d (oldest first)",
					written, i, e.Node, wantNode)
			}
		}
	}
	written := 0
	for lap := 0; lap < 3; lap++ {
		for k := 0; k < cap; k++ {
			r.Record(Event{Kind: PacketSend, Node: uint16(written)})
			written++
			check(written) // covers every phase offset, incl. next == 0
		}
	}
}

func TestFollowFiltersToOneReading(t *testing.T) {
	ring := NewRing(16)
	rec := New(fixedClock(), ring)
	rec.Follow(&ReadingID{Producer: 5, Time: 1500})
	rec.Emit(Event{Kind: ReadingSampled, Node: 5, Producer: 5, SampleT: 1500, Value: 42})
	rec.Emit(Event{Kind: ReadingSampled, Node: 5, Producer: 5, SampleT: 3000, Value: 43}) // other sample
	rec.Emit(Event{Kind: ReadingStored, Node: 8, Flag: StoreOwner, Producer: 5, SampleT: 1500, Value: 42})
	rec.Emit(Event{Kind: ReadingLost, Node: 2, Cause: metrics.DropTTL, Producer: 6, SampleT: 1500}) // other producer
	rec.Emit(Event{Kind: PacketSend, Node: 5, Class: metrics.Data, Size: 30})                       // not reading-scoped
	evs := ring.Events()
	if len(evs) != 2 || evs[0].Kind != ReadingSampled || evs[1].Kind != ReadingStored {
		t.Fatalf("filtered events = %+v", evs)
	}

	// Wildcard time follows every sample from the producer.
	ring2 := NewRing(16)
	rec2 := New(fixedClock(), ring2)
	rec2.Follow(&ReadingID{Producer: 5, Time: -1})
	rec2.Emit(Event{Kind: ReadingSampled, Node: 5, Producer: 5, SampleT: 1500})
	rec2.Emit(Event{Kind: ReadingSampled, Node: 5, Producer: 5, SampleT: 3000})
	if len(ring2.Events()) != 2 {
		t.Fatal("wildcard follow lost events")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: PacketSend, Node: 3, Peer: 0, Class: metrics.Summary, Size: 46},
		{Kind: PacketDrop, Node: 7, Peer: 3, Class: metrics.Data, Cause: metrics.DropCollision, Size: 30},
		{Kind: ReadingStored, Node: 9, Flag: StoreOwner, Producer: 4, SampleT: 615000, Value: -12},
		{Kind: QueryPlanned, Flag: 2, ID: 11, Value: 880, Aux: 3},
		{Kind: ReindexEnd, Flag: 1, Size: 100, Value: 100, Aux: 37},
		{Kind: NodeRestart, Node: 44},
	}
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	rec := New(fixedClock(), sink)
	for _, e := range events {
		rec.Emit(e)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i, e := range events {
		e.T = int64(i) // recorder stamped
		// Fields outside the kind's mask are not encoded; the decode
		// must still match because emission sites only set masked fields.
		if got[i] != e {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], e)
		}
	}
}

func TestJSONLEncodingIsStable(t *testing.T) {
	e := Event{T: 615001, Kind: PacketDrop, Node: 7, Peer: 3,
		Class: metrics.Data, Cause: metrics.DropRetries, Size: 30}
	want := `{"t":615001,"kind":"packet-drop","node":7,"peer":3,"class":"data","cause":"retries","size":30}`
	if got := string(AppendJSON(nil, e)); got != want {
		t.Fatalf("encoding changed:\n got %s\nwant %s", got, want)
	}
	// ReindexEnd omits reading identity but keeps stats fields.
	e2 := Event{T: 5, Kind: ReindexEnd, Flag: 0, Size: 100, Value: 100, Aux: 4}
	want2 := `{"t":5,"kind":"reindex-end","node":0,"flag":0,"size":100,"value":100,"aux":4}`
	if got := string(AppendJSON(nil, e2)); got != want2 {
		t.Fatalf("encoding changed:\n got %s\nwant %s", got, want2)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"t":1,"kind":"no-such-kind","node":0}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"t":1,"kind":"packet-send","node":0,"class":"bogus"}` + "\n")); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Blank lines are fine.
	evs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank stream: %v %v", evs, err)
	}
}
