package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"scoop/internal/metrics"
)

// AppendJSON appends e as one JSON object (no trailing newline) to b
// and returns the extended slice. The encoding is hand-rolled and
// fully deterministic: fixed field order, integer values only, and
// per-kind field presence (fields outside the kind's mask are
// omitted), so identical event streams produce byte-identical output.
func AppendJSON(b []byte, e Event) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, e.T, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	f := e.Kind.fields()
	if f&fPeer != 0 {
		b = append(b, `,"peer":`...)
		b = strconv.AppendInt(b, int64(e.Peer), 10)
	}
	if f&fClass != 0 {
		b = append(b, `,"class":"`...)
		b = append(b, e.Class.String()...)
		b = append(b, '"')
	}
	if f&fCause != 0 {
		b = append(b, `,"cause":"`...)
		b = append(b, e.Cause.String()...)
		b = append(b, '"')
	}
	if f&fFlag != 0 {
		b = append(b, `,"flag":`...)
		b = strconv.AppendInt(b, int64(e.Flag), 10)
	}
	if f&fSize != 0 {
		b = append(b, `,"size":`...)
		b = strconv.AppendInt(b, int64(e.Size), 10)
	}
	if f&fID != 0 {
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, int64(e.ID), 10)
	}
	if f&fReading != 0 {
		b = append(b, `,"producer":`...)
		b = strconv.AppendInt(b, int64(e.Producer), 10)
		b = append(b, `,"samplet":`...)
		b = strconv.AppendInt(b, e.SampleT, 10)
	}
	if f&fValue != 0 {
		b = append(b, `,"value":`...)
		b = strconv.AppendInt(b, e.Value, 10)
	}
	if f&fAux != 0 {
		b = append(b, `,"aux":`...)
		b = strconv.AppendInt(b, e.Aux, 10)
	}
	return append(b, '}')
}

// JSONL is a sink writing one JSON object per line. Writes are
// buffered; Close flushes. The first write error is retained and
// returned by Close (later records are dropped).
type JSONL struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONL returns a JSONL sink over w. The caller retains ownership
// of any underlying file: Close flushes but does not close it.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w), buf: make([]byte, 0, 160)}
}

// Record implements Sink.
func (s *JSONL) Record(e Event) {
	if s.err != nil {
		return
	}
	s.buf = AppendJSON(s.buf[:0], e)
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// Close implements Sink: flush buffered lines and report the first
// error seen.
func (s *JSONL) Close() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// jsonEvent is the decode shape for one JSONL line: enum fields travel
// as their wire names.
type jsonEvent struct {
	T        int64  `json:"t"`
	Kind     string `json:"kind"`
	Node     uint16 `json:"node"`
	Peer     uint16 `json:"peer"`
	Class    string `json:"class"`
	Cause    string `json:"cause"`
	Flag     uint8  `json:"flag"`
	Size     int32  `json:"size"`
	ID       uint16 `json:"id"`
	Producer uint16 `json:"producer"`
	SampleT  int64  `json:"samplet"`
	Value    int64  `json:"value"`
	Aux      int64  `json:"aux"`
}

// ParseLine decodes one JSONL line back into an Event.
func ParseLine(line []byte) (Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(line, &je); err != nil {
		return Event{}, err
	}
	k, ok := ParseKind(je.Kind)
	if !ok {
		return Event{}, fmt.Errorf("trace: unknown kind %q", je.Kind)
	}
	e := Event{
		T: je.T, Kind: k, Node: je.Node, Peer: je.Peer,
		Flag: je.Flag, Size: je.Size, ID: je.ID,
		Producer: je.Producer, SampleT: je.SampleT,
		Value: je.Value, Aux: je.Aux,
	}
	if je.Class != "" {
		c, ok := metrics.ParseClass(je.Class)
		if !ok {
			return Event{}, fmt.Errorf("trace: unknown class %q", je.Class)
		}
		e.Class = c
	}
	if je.Cause != "" {
		c, ok := metrics.ParseDropCause(je.Cause)
		if !ok {
			return Event{}, fmt.Errorf("trace: unknown cause %q", je.Cause)
		}
		e.Cause = c
	}
	return e, nil
}

// ReadJSONL decodes a whole JSONL stream (blank lines skipped).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		e, err := ParseLine(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
