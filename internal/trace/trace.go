// Package trace is the simulator's flight recorder: a deterministic,
// sim-time-only structured event layer threaded through the whole
// stack (netsim, core, index, dynamics). Emission sites hand typed
// Events to a per-run Recorder, which stamps the virtual clock and
// fans them out to pluggable sinks — a bounded in-memory ring, a
// deterministic JSONL writer, or a windowed telemetry aggregator.
//
// Determinism contract (DESIGN.md §16): every emission site runs on
// the simulation's single event-loop goroutine, event fields are
// integers only, and the JSONL encoding is hand-rolled with a fixed
// field order — so a fixed seed produces a byte-identical trace across
// runs and GOMAXPROCS settings. Timestamps are virtual milliseconds
// from the Recorder's injected clock; wall time never appears.
//
// Cost contract: a nil *Recorder is valid and means "tracing off".
// Emit on a nil Recorder returns immediately and Events are passed by
// value, so the disabled path does no allocation and no work beyond
// one branch — cheap enough to leave emission sites in the hot path
// unconditionally.
package trace

import (
	"sort"

	"scoop/internal/metrics"
	"scoop/internal/prof"
)

// Kind discriminates trace event types.
type Kind uint8

// Event kinds. The zero value is reserved so an uninitialised Event is
// visibly invalid.
const (
	KindInvalid Kind = iota

	// MAC / radio layer (emitted by netsim.Network).
	PacketSend  // one transmission attempt put on the air
	PacketRecv  // link-layer delivery to the addressee
	PacketSnoop // frame overheard by a non-addressee
	PacketDrop  // frame lost (Cause: collision, queue, retries)
	PacketPurge // queued frame discarded by a node reboot
	NodeDown    // node killed (churn injection)
	NodeRestart // node rebooted with fresh protocol state

	// Reading lifecycle (emitted by core node/base).
	ReadingSampled   // sensor sample taken at the producer
	ReadingStored    // reading stored (Flag: local/owner/base site)
	ReadingLost      // reading loss-accounted (Cause: ttl, noroute, radio, reboot)
	ReadingDelivered // reading carried back to the base by a query reply

	// Query engine (emitted by core base/node).
	QueryPlanned  // planner verdict for an aggregate query (Flag: plan)
	QueryIssued   // query launched into dissemination (Flag: plan)
	QueryAnswered // a targeted node (or the base itself) produced an answer

	// In-network aggregation (emitted by core nodes).
	AggCombined // a partial aggregate folded into the local combine buffer
	AggResent   // a partial-aggregate flush retransmitted upward

	// Index dissemination and reconstruction (core base + index.Builder).
	ChunkSent       // one mapping chunk broadcast (Trickle transmit)
	ReindexBegin    // basestation index recomputation started
	ReindexEnd      // recomputation finished (BuildStats in Size/Value/Aux/Flag)
	IndexAdopted    // the freshly built index replaced the current one
	IndexSuppressed // the freshly built index was too similar; kept the old one

	// Environment perturbations (emitted by dynamics).
	Perturb // interference/drift epoch applied (Flag: dynamics kind)

	// Query reliability layer (emitted by core base).
	QueryRetry   // deadline expired: re-issue to the silent owners (Aux: attempt)
	QueryVerdict // query reached a terminal verdict (Flag: verdict)

	numKinds
)

// kindNames maps kinds to their wire names (stable: part of the JSONL
// format).
var kindNames = [numKinds]string{
	KindInvalid:      "invalid",
	PacketSend:       "packet-send",
	PacketRecv:       "packet-recv",
	PacketSnoop:      "packet-snoop",
	PacketDrop:       "packet-drop",
	PacketPurge:      "packet-purge",
	NodeDown:         "node-down",
	NodeRestart:      "node-restart",
	ReadingSampled:   "reading-sampled",
	ReadingStored:    "reading-stored",
	ReadingLost:      "reading-lost",
	ReadingDelivered: "reading-delivered",
	QueryPlanned:     "query-planned",
	QueryIssued:      "query-issued",
	QueryAnswered:    "query-answered",
	AggCombined:      "agg-combined",
	AggResent:        "agg-resent",
	ChunkSent:        "chunk-sent",
	ReindexBegin:     "reindex-begin",
	ReindexEnd:       "reindex-end",
	IndexAdopted:     "index-adopted",
	IndexSuppressed:  "index-suppressed",
	Perturb:          "perturb",
	QueryRetry:       "query-retry",
	QueryVerdict:     "query-verdict",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "invalid"
}

// ParseKind maps a wire name back to its Kind, reporting whether the
// name was recognised.
func ParseKind(s string) (Kind, bool) {
	for k := Kind(1); k < numKinds; k++ {
		if kindNames[k] == s {
			return k, true
		}
	}
	return KindInvalid, false
}

// Kinds lists every valid kind in declaration order.
func Kinds() []Kind {
	ks := make([]Kind, 0, int(numKinds)-1)
	for k := Kind(1); k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

// Storage sites for ReadingStored's Flag field.
const (
	StoreLocal uint8 = iota // stored by its producer
	StoreOwner              // stored at the index-designated owner
	StoreBase               // fell back to the basestation
)

// Event is one structured trace record. All fields are integers so the
// JSONL encoding is exactly reproducible; which fields are meaningful
// depends on Kind (the schema table in DESIGN.md §16). The struct is
// always passed by value — emission sites build it on the stack and
// sinks copy what they keep.
type Event struct {
	T    int64 // virtual time, ms (stamped by the Recorder)
	Kind Kind

	Node uint16 // node where the event happened (base = 0)
	Peer uint16 // counterpart node (link peer, partial's sender, ...)

	Class metrics.Class     // packet events: message class
	Cause metrics.DropCause // drop/loss events: why
	Flag  uint8             // small discriminator (store site, plan, dynamics kind)

	Size int32  // packet events: frame bytes; ReindexEnd: value-domain size
	ID   uint16 // query ID or storage-index generation

	Producer uint16 // reading identity: producing node ...
	SampleT  int64  // ... and sample time (virtual ms)

	Value int64 // primary quantity (reading value, match count, chunk num)
	Aux   int64 // secondary quantity (attempt number, recompute count)
}

// Field presence masks: which Event fields each kind emits, driving
// both the JSONL encoder (fields outside the mask are omitted) and the
// Recorder's reading filter.
const (
	fPeer = 1 << iota
	fClass
	fCause
	fFlag
	fSize
	fID
	fReading // Producer + SampleT
	fValue
	fAux
)

var kindFields = [numKinds]uint16{
	PacketSend:       fPeer | fClass | fSize,
	PacketRecv:       fPeer | fClass | fSize,
	PacketSnoop:      fPeer | fClass | fSize,
	PacketDrop:       fPeer | fClass | fCause | fSize,
	PacketPurge:      fClass | fCause | fSize,
	NodeDown:         0,
	NodeRestart:      0,
	ReadingSampled:   fReading | fValue,
	ReadingStored:    fFlag | fReading | fValue,
	ReadingLost:      fCause | fReading | fValue,
	ReadingDelivered: fID | fReading | fValue,
	QueryPlanned:     fFlag | fID | fValue | fAux,
	QueryIssued:      fFlag | fID | fValue,
	QueryAnswered:    fID | fValue,
	AggCombined:      fPeer | fID | fValue,
	AggResent:        fID | fAux,
	ChunkSent:        fID | fValue,
	ReindexBegin:     fValue,
	ReindexEnd:       fFlag | fSize | fValue | fAux,
	IndexAdopted:     fID | fValue,
	IndexSuppressed:  fID,
	Perturb:          fFlag | fValue,
	QueryRetry:       fID | fValue | fAux,
	QueryVerdict:     fFlag | fID | fValue | fAux,
}

// Fields returns the presence mask for k (0 for invalid kinds).
func (k Kind) fields() uint16 {
	if k < numKinds {
		return kindFields[k]
	}
	return 0
}

// CarriesReading reports whether events of this kind identify a
// reading (Producer, SampleT) — the reading-lifecycle subset Follow
// and scoopflight's -reading filter operate on.
func (k Kind) CarriesReading() bool { return k.fields()&fReading != 0 }

// CarriesClass reports whether events of this kind carry a message
// class — the packet subset scoopflight's -class filter operates on.
func (k Kind) CarriesClass() bool { return k.fields()&fClass != 0 }

// Sink consumes recorded events. Record is called from the simulation
// goroutine only; Close flushes and releases resources.
type Sink interface {
	Record(e Event)
	Close() error
}

// ReadingID identifies one reading — the (producer, sample time) pair
// used across storage, invariant checking and tracing. A negative Time
// matches every reading the producer samples.
type ReadingID struct {
	Producer uint16
	Time     int64
}

// stampState is one canonical emission position for the region-parallel
// trace merge (DESIGN.md §18): the (origin, oseq) key of the simulator
// event being executed, the sub-slot within it (delivery fan-out index),
// and a running emission index within the (origin, oseq, sub) cell.
type stampState struct {
	origin int32
	oseq   uint64
	sub    int32
	idx    int32
}

// stamped is one buffered event plus its canonical merge key.
type stamped struct {
	st stampState
	e  Event
}

// family links a buffering parent Recorder with its per-region forks:
// they share the control-plane stamp (control events run at barriers
// and may emit through several recorders) and the parent's Close
// merge-sorts every member's buffer into the sinks.
type family struct {
	recs []*Recorder // parent first, then forks in creation order
	ctl  stampState  // shared stamp for control-plane events
}

// Recorder stamps events with the virtual clock and fans them out to
// its sinks. One Recorder belongs to one simulation run (single
// goroutine; not safe for concurrent use — but see Buffer/Fork, which
// give each parallel region its own fork to emit through). The nil
// Recorder is the disabled state: Emit returns immediately.
type Recorder struct {
	now    func() int64
	sinks  []Sink
	follow *ReadingID
	prof   *prof.Profiler

	fam    *family // non-nil: stamped buffering mode (region-parallel)
	buf    []stamped
	st     stampState
	useCtl bool // emissions stamp with the family's shared control stamp
}

// New builds a Recorder over the given virtual clock (milliseconds)
// and sinks.
func New(now func() int64, sinks ...Sink) *Recorder {
	return &Recorder{now: now, sinks: sinks}
}

// Follow restricts recording to the lifecycle of one reading: only
// reading-carrying events matching id pass; everything else is
// filtered. A nil id removes the filter.
func (r *Recorder) Follow(id *ReadingID) {
	if r != nil {
		r.follow = id
	}
}

// SetProfiler attributes the wall time of Emit (filtering, stamping,
// sink fan-out) to the trace-emit phase when a run is profiled. Safe
// on a nil Recorder; a nil profiler detaches.
func (r *Recorder) SetProfiler(p *prof.Profiler) {
	if r != nil {
		r.prof = p
	}
}

// Buffer switches the Recorder into stamped buffering mode for a
// region-parallel run: emissions (on this Recorder and on every Fork)
// are held with their canonical merge keys instead of streaming to the
// sinks, and Close replays them in canonical (time, origin, oseq, sub,
// idx) order — the serial engine's emission order — before closing the
// sinks. Call once, before Fork.
func (r *Recorder) Buffer() {
	if r == nil || r.fam != nil {
		return
	}
	r.fam = &family{recs: []*Recorder{r}}
}

// Fork returns a child Recorder for one region's goroutine, reading
// the region's clock. The child shares the parent's follow filter and
// buffers into the parent's merge; it has no sinks of its own. Buffer
// must have been called first.
func (r *Recorder) Fork(now func() int64) *Recorder {
	c := &Recorder{now: now, follow: r.follow, fam: r.fam}
	r.fam.recs = append(r.fam.recs, c)
	return c
}

// SetStamp positions this Recorder at the start of simulator event
// (origin, oseq): emissions until the next SetStamp carry that key.
// Called by the region event loop before each event body. No-op
// outside buffering mode.
func (r *Recorder) SetStamp(origin int32, oseq uint64) {
	if r == nil || r.fam == nil {
		return
	}
	r.st = stampState{origin: origin, oseq: oseq}
	r.useCtl = false
}

// SetStampCtl positions the whole family at a control-plane event:
// control bodies run at barriers and may emit through the parent and
// any region fork, so they share one stamp cell with one running
// index. Called on the parent only.
func (r *Recorder) SetStampCtl(origin int32, oseq uint64) {
	if r == nil || r.fam == nil {
		return
	}
	r.fam.ctl = stampState{origin: origin, oseq: oseq}
	for _, c := range r.fam.recs {
		c.useCtl = true
	}
}

// SetSub positions emissions within the current event at sub-slot sub
// (a delivery's fan-out index): a transmission split across regions
// keeps one canonical key, and the slot index restores the serial
// receiver order in the merge. No-op outside buffering mode.
func (r *Recorder) SetSub(sub int32) {
	if r == nil || r.fam == nil {
		return
	}
	st := &r.st
	if r.useCtl {
		st = &r.fam.ctl
	}
	st.sub = sub
	st.idx = 0
}

// Emit stamps e with the current virtual time and hands it to every
// sink (or, in buffering mode, to the stamped merge buffer). Safe (and
// free) on a nil Recorder.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	prev := r.prof.Enter(prof.PhaseTraceEmit)
	if f := r.follow; f != nil {
		if e.Kind.fields()&fReading == 0 || e.Producer != f.Producer ||
			(f.Time >= 0 && e.SampleT != f.Time) {
			r.prof.Exit(prev)
			return
		}
	}
	e.T = r.now()
	if r.fam != nil {
		st := &r.st
		if r.useCtl {
			st = &r.fam.ctl
		}
		r.buf = append(r.buf, stamped{st: *st, e: e})
		st.idx++
		r.prof.Exit(prev)
		return
	}
	for _, s := range r.sinks {
		s.Record(e)
	}
	r.prof.Exit(prev)
}

func stampedLess(a, b *stamped) bool {
	if a.e.T != b.e.T {
		return a.e.T < b.e.T
	}
	if a.st.origin != b.st.origin {
		return a.st.origin < b.st.origin
	}
	if a.st.oseq != b.st.oseq {
		return a.st.oseq < b.st.oseq
	}
	if a.st.sub != b.st.sub {
		return a.st.sub < b.st.sub
	}
	return a.st.idx < b.st.idx
}

// Close closes every sink, returning the first error. In buffering
// mode (the parent of a region-parallel family), it first merge-sorts
// every member's buffered events into canonical order and replays them
// through the sinks — producing the same sink byte stream as a serial
// run. Fork children close nothing.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	if f := r.fam; f != nil && f.recs[0] == r {
		total := 0
		for _, c := range f.recs {
			total += len(c.buf)
		}
		all := make([]stamped, 0, total)
		for _, c := range f.recs {
			all = append(all, c.buf...)
			c.buf = nil
		}
		// The canonical key is unique across the family (per-recorder
		// idx streams never share an (origin, oseq, sub) cell), so this
		// order is total and K-independent.
		sort.Slice(all, func(i, j int) bool { return stampedLess(&all[i], &all[j]) })
		for i := range all {
			for _, s := range r.sinks {
				s.Record(all[i].e)
			}
		}
	}
	var first error
	for _, s := range r.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Ring is a bounded in-memory sink keeping the most recent events.
type Ring struct {
	buf   []Event
	next  int
	wrap  bool
	total int64
}

// NewRing returns a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Record implements Sink.
func (r *Ring) Record(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.wrap = true
}

// Close implements Sink.
func (r *Ring) Close() error { return nil }

// Total returns how many events were recorded overall (including those
// the ring has since overwritten).
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events in emission order (a copy).
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if r.wrap {
		out = append(out, r.buf[r.next:]...)
		return append(out, r.buf[:r.next]...)
	}
	return append(out, r.buf...)
}
