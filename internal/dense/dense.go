// Package dense holds the one helper behind the scale tier's
// dense-index convention (DESIGN.md §12): grow-on-demand flat slices
// keyed by node or query ID, shared so the idiom cannot drift between
// packages.
package dense

// Grow returns s extended with zero values so index i is valid.
// Growth over-allocates ~1.5× so repeated one-past-the-end growth is
// amortised O(1).
func Grow[T any](s []T, i int) []T {
	if i < len(s) {
		return s
	}
	if cap(s) <= i {
		ns := make([]T, len(s), i+1+i/2)
		copy(ns, s)
		s = ns
	}
	var zero T
	for len(s) <= i {
		s = append(s, zero)
	}
	return s
}
