// Package trickle implements the Trickle gossip protocol (Levis et
// al., NSDI'04) that Scoop uses to disseminate storage-index chunks
// and, in a modified selective form, query packets (paper §5.3, §5.5).
//
// Each item under dissemination has its own Trickle timer: during an
// interval of length tau the node picks a random instant in the second
// half of the interval and broadcasts the item there unless it has
// already heard the same item at least K times this interval
// (suppression). At the end of each interval tau doubles, up to
// TauHigh; hearing an inconsistency resets tau to TauLow so new data
// spreads fast.
//
// The package is transport-agnostic: the owner supplies a Send
// callback that actually broadcasts the item (and may itself decline,
// as Scoop's bitmap-filtered query re-broadcast does).
package trickle

import (
	"sort"

	"scoop/internal/netsim"
)

// Key identifies one item under dissemination. Owners encode their own
// structure (e.g. index-id<<16 | chunk-no).
type Key uint64

// Config tunes Trickle. The zero value is unusable; use DefaultConfig.
type Config struct {
	TauLow  netsim.Time // initial/reset interval
	TauHigh netsim.Time // interval cap
	K       int         // redundancy constant (suppression threshold)
	// MaxRounds, when >0, retires an item after that many intervals.
	// Scoop retires query gossip quickly but keeps mapping chunks
	// gossiping slowly until superseded.
	MaxRounds int
}

// DefaultConfig returns the Trickle parameters used in the
// experiments: fast initial spread, one-minute steady state.
func DefaultConfig() Config {
	return Config{
		TauLow:    500 * netsim.Millisecond,
		TauHigh:   60 * netsim.Second,
		K:         1,
		MaxRounds: 0,
	}
}

type itemState struct {
	tau     netsim.Time
	heard   int // consistent transmissions heard this interval
	fireAt  netsim.Time
	endAt   netsim.Time
	fired   bool // sent (or suppressed) this interval already
	rounds  int
	retired bool
}

// Trickle multiplexes any number of per-item Trickle timers onto a
// single NodeAPI timer.
type Trickle struct {
	api     *netsim.NodeAPI
	cfg     Config
	timerID int
	send    func(Key)
	items   map[Key]*itemState
}

// New creates a Trickle instance. send is invoked from the timer
// context whenever an item's transmission is due and not suppressed.
// The owner must route the NodeAPI timer with timerID to OnTimer.
func New(api *netsim.NodeAPI, timerID int, cfg Config, send func(Key)) *Trickle {
	if cfg.K <= 0 || cfg.TauLow <= 0 || cfg.TauHigh < cfg.TauLow {
		panic("trickle: invalid config")
	}
	return &Trickle{
		api:     api,
		cfg:     cfg,
		timerID: timerID,
		send:    send,
		items:   make(map[Key]*itemState),
	}
}

// Add starts (or restarts) dissemination of key at the fast interval.
func (t *Trickle) Add(key Key) {
	st := &itemState{}
	t.items[key] = st
	t.startInterval(st, t.cfg.TauLow)
	t.rearm()
}

// Remove stops dissemination of key (e.g. the chunk belongs to a
// superseded storage index).
func (t *Trickle) Remove(key Key) {
	delete(t.items, key)
	t.rearm()
}

// Has reports whether key is currently under dissemination.
func (t *Trickle) Has(key Key) bool {
	_, ok := t.items[key]
	return ok
}

// Len reports the number of items under dissemination.
func (t *Trickle) Len() int { return len(t.items) }

// Heard records a consistent transmission of key overheard from a
// neighbor, feeding suppression.
func (t *Trickle) Heard(key Key) {
	if st, ok := t.items[key]; ok {
		st.heard++
	}
}

// Reset drops key's interval back to TauLow, used when an
// inconsistency is detected (a neighbor has older data).
func (t *Trickle) Reset(key Key) {
	if st, ok := t.items[key]; ok {
		st.rounds = 0
		st.retired = false
		t.startInterval(st, t.cfg.TauLow)
		t.rearm()
	}
}

func (t *Trickle) startInterval(st *itemState, tau netsim.Time) {
	if tau > t.cfg.TauHigh {
		tau = t.cfg.TauHigh
	}
	st.tau = tau
	st.heard = 0
	st.fired = false
	now := t.api.Now()
	// Fire at a uniform point in the second half of the interval.
	half := tau / 2
	st.fireAt = now + half + netsim.Time(t.api.RandIntn(int(half)+1))
	st.endAt = now + tau
}

// rearm schedules the shared timer for the earliest pending deadline.
func (t *Trickle) rearm() {
	var next netsim.Time = -1
	now := t.api.Now()
	//scoop:allow maprange pure min over virtual deadlines, order-independent (no RNG, no FP, no sends)
	for _, st := range t.items {
		if st.retired {
			continue
		}
		d := st.fireAt
		if st.fired {
			d = st.endAt
		}
		if next < 0 || d < next {
			next = d
		}
	}
	if next < 0 {
		t.api.CancelTimer(t.timerID)
		return
	}
	delay := next - now
	if delay < 1 {
		delay = 1
	}
	t.api.SetTimer(t.timerID, delay)
}

// OnTimer advances all items whose deadlines have passed; the owner
// must call it when the timer with the configured ID fires. Items are
// processed in key order: interval restarts draw from the shared
// random stream, so iteration order must be deterministic for
// simulations to be reproducible.
func (t *Trickle) OnTimer() {
	now := t.api.Now()
	keys := make([]Key, 0, len(t.items))
	for key := range t.items {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var due []Key
	for _, key := range keys {
		st := t.items[key]
		if st.retired {
			continue
		}
		if !st.fired && now >= st.fireAt {
			st.fired = true
			if st.heard < t.cfg.K {
				due = append(due, key)
			}
		}
		if now >= st.endAt {
			st.rounds++
			if t.cfg.MaxRounds > 0 && st.rounds >= t.cfg.MaxRounds {
				st.retired = true
				continue
			}
			t.startInterval(st, st.tau*2)
		}
	}
	t.rearm()
	// Send after rearming so a send callback that mutates the item set
	// (Add/Remove) sees a consistent timer.
	for _, key := range due {
		if _, ok := t.items[key]; ok {
			t.send(key)
		}
	}
}
