package trickle

import (
	"testing"

	"scoop/internal/metrics"
	"scoop/internal/netsim"
)

// gossiper is a minimal dissemination app: every held key is under
// Trickle; hearing a new key adopts it, hearing a held key feeds
// suppression. This is exactly the path new index epochs ride from
// the basestation across lossy links (core wraps the same package).
type gossiper struct {
	tr   *Trickle
	api  *netsim.NodeAPI
	cfg  Config
	held map[Key]bool
}

const gossipTimer = 7

type keyMsg struct{ k Key }

func newGossiper(cfg Config) *gossiper {
	return &gossiper{cfg: cfg, held: make(map[Key]bool)}
}

func (g *gossiper) Init(api *netsim.NodeAPI) {
	g.api = api
	g.tr = New(api, gossipTimer, g.cfg, func(k Key) {
		g.api.Broadcast(&netsim.Packet{
			Class:   metrics.Mapping,
			Origin:  g.api.ID(),
			Size:    24,
			Payload: &keyMsg{k: k},
		})
	})
}

func (g *gossiper) add(k Key) {
	g.held[k] = true
	g.tr.Add(k)
}

func (g *gossiper) Receive(p *netsim.Packet) {
	m, ok := p.Payload.(*keyMsg)
	if !ok {
		return
	}
	if g.held[m.k] {
		g.tr.Heard(m.k)
		return
	}
	g.add(m.k)
}

func (g *gossiper) Snoop(p *netsim.Packet) {}
func (g *gossiper) Timer(id int) {
	if id == gossipTimer {
		g.tr.OnTimer()
	}
}

// lossyLine builds a 0—1—…—(n-1) line whose every link delivers with
// probability q, and attaches a gossiper per node.
func lossyLine(n int, q float64, cfg Config, seed int64) (*netsim.Simulator, []*gossiper) {
	topo := netsim.NewTopology(n)
	topo.Pos = make([]netsim.Point, n)
	for i := range topo.Pos {
		topo.Pos[i] = netsim.Point{X: float64(i)}
	}
	for i := 0; i+1 < n; i++ {
		topo.Quality[i][i+1], topo.Quality[i+1][i] = q, q
	}
	sim := netsim.NewSimulator(seed)
	net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
	gs := make([]*gossiper, n)
	for i := range gs {
		gs[i] = newGossiper(cfg)
		net.Attach(netsim.NodeID(i), gs[i])
	}
	net.Start()
	return sim, gs
}

// A single item injected at one end of a lossy line reaches the far
// end: Trickle's periodic retransmission rides out per-broadcast
// loss. This is the redissemination property index epochs depend on.
func TestDisseminationSurvivesLinkLoss(t *testing.T) {
	cfg := Config{TauLow: 500 * netsim.Millisecond, TauHigh: 8 * netsim.Second, K: 1}
	sim, gs := lossyLine(5, 0.5, cfg, 11)
	gs[0].add(42)
	sim.Run(2 * netsim.Minute)
	for i, g := range gs {
		if !g.held[42] {
			t.Fatalf("node %d never received the item over 50%%-loss links", i)
		}
	}
}

// A second generation injected mid-run still propagates end to end
// under loss — the mid-run index-epoch scenario.
func TestNewGenerationPropagatesUnderLoss(t *testing.T) {
	cfg := Config{TauLow: 500 * netsim.Millisecond, TauHigh: 8 * netsim.Second, K: 1}
	sim, gs := lossyLine(5, 0.6, cfg, 12)
	gs[0].add(1)
	sim.Run(time90s())
	for i, g := range gs {
		if !g.held[1] {
			t.Fatalf("node %d missed generation 1", i)
		}
	}
	// New epoch appears at the source while the old one is in steady
	// state everywhere.
	gs[0].add(2)
	sim.Run(sim.Now() + time90s())
	for i, g := range gs {
		if !g.held[2] {
			t.Fatalf("node %d missed generation 2", i)
		}
	}
}

func time90s() netsim.Time { return 90 * netsim.Second }

// MaxRounds retires an item, and Reset revives it — the inconsistency
// path nodes use when a neighbor gossips a stale generation.
func TestResetRevivesRetiredItemUnderLoss(t *testing.T) {
	cfg := Config{TauLow: 250 * netsim.Millisecond, TauHigh: netsim.Second, K: 1, MaxRounds: 3}
	sim, gs := lossyLine(2, 1, cfg, 13)
	gs[0].add(9)
	sim.Run(30 * netsim.Second)
	if !gs[1].held[9] {
		t.Fatal("item never crossed a perfect link")
	}
	// Retired: long silence follows. Drop the receiver's copy and
	// reset the sender; the item must cross again despite loss.
	delete(gs[1].held, 9)
	gs[1].tr.Remove(9)
	gs[0].tr.Reset(9)
	sim.Run(sim.Now() + 30*netsim.Second)
	if !gs[1].held[9] {
		t.Fatal("reset did not redisseminate the retired item")
	}
}

// Suppression still works under loss: with K=1 and two senders on a
// good link, total transmissions stay near the lone-sender case
// rather than doubling.
func TestSuppressionUnderLoss(t *testing.T) {
	countSends := func(q float64, seed int64) int64 {
		topo := netsim.NewTopology(2)
		topo.Pos = make([]netsim.Point, 2)
		topo.Quality[0][1], topo.Quality[1][0] = q, q
		sim := netsim.NewSimulator(seed)
		ctr := metrics.NewCounters()
		net := netsim.NewNetwork(sim, topo, ctr, netsim.DefaultParams())
		cfg := Config{TauLow: 500 * netsim.Millisecond, TauHigh: 4 * netsim.Second, K: 1}
		a, b := newGossiper(cfg), newGossiper(cfg)
		net.Attach(0, a)
		net.Attach(1, b)
		net.Start()
		a.add(7)
		b.add(7)
		sim.Run(time90s())
		return ctr.Sent(metrics.Mapping)
	}
	good := countSends(1.0, 21)
	lossy := countSends(0.4, 22)
	if good <= 0 || lossy <= 0 {
		t.Fatal("no gossip traffic recorded")
	}
	// Under loss, suppression sees fewer copies and sends more — but
	// it must not collapse into unsuppressed flooding (>3x).
	if lossy > 3*good {
		t.Fatalf("loss destroyed suppression: %d sends vs %d on a clean link", lossy, good)
	}
}
