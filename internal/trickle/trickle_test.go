package trickle

import (
	"testing"

	"scoop/internal/metrics"
	"scoop/internal/netsim"
)

// harness runs one Trickle instance on node 0 of a 2-node network.
type harness struct {
	tr    *Trickle
	sends []Key
	cfg   Config
}

const trickleTimer = 9

func (h *harness) Init(api *netsim.NodeAPI) {
	h.tr = New(api, trickleTimer, h.cfg, func(k Key) { h.sends = append(h.sends, k) })
}
func (h *harness) Receive(p *netsim.Packet) {}
func (h *harness) Snoop(p *netsim.Packet)   {}
func (h *harness) Timer(id int) {
	if id == trickleTimer {
		h.tr.OnTimer()
	}
}

func newHarness(cfg Config, seed int64) (*harness, *netsim.Simulator) {
	topo := netsim.NewTopology(2)
	topo.Pos = make([]netsim.Point, 2)
	topo.Quality[0][1], topo.Quality[1][0] = 1, 1
	sim := netsim.NewSimulator(seed)
	net := netsim.NewNetwork(sim, topo, metrics.NewCounters(), netsim.DefaultParams())
	h := &harness{cfg: cfg}
	net.Attach(0, h)
	net.Attach(1, &harness{cfg: cfg})
	net.Start()
	return h, sim
}

func TestTrickleSendsOncePerInterval(t *testing.T) {
	cfg := Config{TauLow: netsim.Second, TauHigh: netsim.Second, K: 1}
	h, sim := newHarness(cfg, 1)
	h.tr.Add(5)
	sim.Run(10 * netsim.Second)
	// Fixed 1s intervals for 10s: roughly one send per interval.
	if len(h.sends) < 8 || len(h.sends) > 11 {
		t.Fatalf("sends = %d, want ~10", len(h.sends))
	}
	for _, k := range h.sends {
		if k != 5 {
			t.Fatalf("sent wrong key %d", k)
		}
	}
}

func TestTrickleIntervalDoubling(t *testing.T) {
	cfg := Config{TauLow: netsim.Second, TauHigh: 16 * netsim.Second, K: 1}
	h, sim := newHarness(cfg, 2)
	h.tr.Add(1)
	sim.Run(60 * netsim.Second)
	// Intervals: 1+2+4+8+16+16+... → far fewer than 60 sends.
	if len(h.sends) > 10 {
		t.Fatalf("sends = %d; interval doubling not slowing gossip", len(h.sends))
	}
	if len(h.sends) < 4 {
		t.Fatalf("sends = %d; gossip died prematurely", len(h.sends))
	}
}

func TestTrickleSuppression(t *testing.T) {
	cfg := Config{TauLow: netsim.Second, TauHigh: netsim.Second, K: 1}
	h, sim := newHarness(cfg, 3)
	h.tr.Add(1)
	// Simulate hearing the same item constantly: suppress every send.
	stop := false
	var feed func()
	feed = func() {
		if stop {
			return
		}
		h.tr.Heard(1)
		sim.After(100*netsim.Millisecond, feed)
	}
	sim.After(1, feed)
	sim.Run(10 * netsim.Second)
	stop = true
	if len(h.sends) > 1 {
		t.Fatalf("sends = %d despite constant hearing; suppression broken", len(h.sends))
	}
}

func TestTrickleKThreshold(t *testing.T) {
	// With K=2, hearing the item once per interval must NOT suppress.
	cfg := Config{TauLow: netsim.Second, TauHigh: netsim.Second, K: 2}
	h, sim := newHarness(cfg, 4)
	h.tr.Add(1)
	var feed func()
	feed = func() {
		h.tr.Heard(1)
		sim.After(netsim.Second, feed)
	}
	sim.After(1, feed)
	sim.Run(10 * netsim.Second)
	if len(h.sends) < 7 {
		t.Fatalf("sends = %d; K=2 should not suppress on single hearings", len(h.sends))
	}
}

func TestTrickleResetRestoresFastGossip(t *testing.T) {
	cfg := Config{TauLow: 500 * netsim.Millisecond, TauHigh: 32 * netsim.Second, K: 1}
	h, sim := newHarness(cfg, 5)
	h.tr.Add(1)
	sim.Run(40 * netsim.Second) // let it back off to TauHigh
	slowSends := len(h.sends)
	h.tr.Reset(1)
	sim.Run(sim.Now() + 4*netsim.Second)
	fastSends := len(h.sends) - slowSends
	if fastSends < 2 {
		t.Fatalf("only %d sends in 4s after reset; want fast gossip again", fastSends)
	}
}

func TestTrickleMaxRoundsRetires(t *testing.T) {
	cfg := Config{TauLow: netsim.Second, TauHigh: netsim.Second, K: 1, MaxRounds: 3}
	h, sim := newHarness(cfg, 6)
	h.tr.Add(1)
	sim.Run(20 * netsim.Second)
	if len(h.sends) > 3 {
		t.Fatalf("sends = %d; item should retire after 3 rounds", len(h.sends))
	}
}

func TestTrickleRemove(t *testing.T) {
	cfg := Config{TauLow: netsim.Second, TauHigh: netsim.Second, K: 1}
	h, sim := newHarness(cfg, 7)
	h.tr.Add(1)
	h.tr.Add(2)
	sim.Run(3 * netsim.Second)
	h.tr.Remove(1)
	if h.tr.Has(1) || !h.tr.Has(2) {
		t.Fatal("Remove removed the wrong item")
	}
	before := len(h.sends)
	sim.Run(sim.Now() + 5*netsim.Second)
	for _, k := range h.sends[before:] {
		if k == 1 {
			t.Fatal("removed item still gossiping")
		}
	}
	if h.tr.Len() != 1 {
		t.Fatalf("len = %d", h.tr.Len())
	}
}

func TestTrickleMultipleItemsIndependent(t *testing.T) {
	cfg := Config{TauLow: netsim.Second, TauHigh: netsim.Second, K: 1}
	h, sim := newHarness(cfg, 8)
	h.tr.Add(10)
	h.tr.Add(20)
	sim.Run(5 * netsim.Second)
	counts := map[Key]int{}
	for _, k := range h.sends {
		counts[k]++
	}
	if counts[10] < 3 || counts[20] < 3 {
		t.Fatalf("per-item sends %v; both items must gossip", counts)
	}
}

func TestTrickleHeardUnknownKeyIgnored(t *testing.T) {
	cfg := DefaultConfig()
	h, sim := newHarness(cfg, 9)
	h.tr.Heard(99) // must not panic
	h.tr.Reset(99)
	sim.Run(netsim.Second)
}

func TestTrickleInvalidConfigPanics(t *testing.T) {
	h, _ := newHarness(DefaultConfig(), 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = h
	New(nil, 1, Config{TauLow: 10, TauHigh: 5, K: 1}, nil)
}

func TestTrickleReAddRestartsFast(t *testing.T) {
	cfg := Config{TauLow: 500 * netsim.Millisecond, TauHigh: 32 * netsim.Second, K: 1}
	h, sim := newHarness(cfg, 11)
	h.tr.Add(1)
	sim.Run(40 * netsim.Second)
	n := len(h.sends)
	h.tr.Add(1) // re-add resets to TauLow
	sim.Run(sim.Now() + 3*netsim.Second)
	if len(h.sends)-n < 2 {
		t.Fatalf("re-Add did not restart fast gossip (%d new sends)", len(h.sends)-n)
	}
}
