package storage

import (
	"testing"
	"testing/quick"
)

func TestDataBufferStoreAndScan(t *testing.T) {
	b := NewDataBuffer(4)
	for i := 0; i < 3; i++ {
		b.Store(Reading{Producer: 1, Value: i, Time: int64(i)})
	}
	if b.Len() != 3 || b.Cap() != 4 {
		t.Fatalf("len=%d cap=%d", b.Len(), b.Cap())
	}
	var got []int
	b.Scan(func(r Reading) bool { got = append(got, r.Value); return true })
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
}

func TestDataBufferWrapAround(t *testing.T) {
	b := NewDataBuffer(3)
	for i := 0; i < 5; i++ {
		b.Store(Reading{Value: i, Time: int64(i)})
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d after wrap, want 3", b.Len())
	}
	if b.Overwritten() != 2 {
		t.Fatalf("overwritten = %d, want 2", b.Overwritten())
	}
	var got []int
	b.Scan(func(r Reading) bool { got = append(got, r.Value); return true })
	want := []int{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-wrap scan %v, want %v", got, want)
		}
	}
}

func TestDataBufferScanEarlyStop(t *testing.T) {
	b := NewDataBuffer(10)
	for i := 0; i < 10; i++ {
		b.Store(Reading{Value: i})
	}
	n := 0
	b.Scan(func(r Reading) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("visited %d, want 4", n)
	}
}

func TestDataBufferSelect(t *testing.T) {
	b := NewDataBuffer(100)
	for i := 0; i < 50; i++ {
		b.Store(Reading{Producer: uint16(i % 3), Value: i % 10, Time: int64(i * 100)})
	}
	got := b.Select(3, 5, 1000, 3000)
	for _, r := range got {
		if r.Value < 3 || r.Value > 5 {
			t.Fatalf("value %d outside range", r.Value)
		}
		if r.Time < 1000 || r.Time > 3000 {
			t.Fatalf("time %d outside range", r.Time)
		}
	}
	// Count expected matches directly.
	want := 0
	for i := 0; i < 50; i++ {
		v, tm := i%10, int64(i*100)
		if v >= 3 && v <= 5 && tm >= 1000 && tm <= 3000 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("select returned %d readings, want %d", len(got), want)
	}
}

func TestDataBufferSelectEmpty(t *testing.T) {
	b := NewDataBuffer(5)
	if got := b.Select(0, 100, 0, 100); len(got) != 0 {
		t.Fatalf("select on empty buffer returned %d readings", len(got))
	}
}

func TestNewDataBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDataBuffer(0)
}

// Property: after any sequence of stores, Scan yields exactly the last
// min(n, cap) values in insertion order.
func TestDataBufferWindowProperty(t *testing.T) {
	f := func(vals []int16, capSeed uint8) bool {
		capacity := int(capSeed%20) + 1
		b := NewDataBuffer(capacity)
		for i, v := range vals {
			b.Store(Reading{Value: int(v), Time: int64(i)})
		}
		var got []int
		b.Scan(func(r Reading) bool { got = append(got, r.Value); return true })
		start := 0
		if len(vals) > capacity {
			start = len(vals) - capacity
		}
		want := vals[start:]
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != int(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecentBufferRoundRobin(t *testing.T) {
	b := NewRecentBuffer(3)
	for i := 1; i <= 5; i++ {
		b.Add(i * 10)
	}
	vals := b.Values()
	want := []int{30, 40, 50}
	if len(vals) != 3 {
		t.Fatalf("len = %d", len(vals))
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("values %v, want %v", vals, want)
		}
	}
}

func TestRecentBufferMinMaxSum(t *testing.T) {
	b := NewRecentBuffer(10)
	if _, _, _, ok := b.MinMaxSum(); ok {
		t.Fatal("MinMaxSum on empty buffer reported ok")
	}
	for _, v := range []int{5, 2, 9, 2} {
		b.Add(v)
	}
	min, max, sum, ok := b.MinMaxSum()
	if !ok || min != 2 || max != 9 || sum != 18 {
		t.Fatalf("min=%d max=%d sum=%d ok=%v", min, max, sum, ok)
	}
}

func TestRecentBufferPartialFill(t *testing.T) {
	b := NewRecentBuffer(30)
	b.Add(7)
	if b.Len() != 1 {
		t.Fatalf("len = %d", b.Len())
	}
	if vals := b.Values(); len(vals) != 1 || vals[0] != 7 {
		t.Fatalf("values = %v", vals)
	}
}

func TestNewRecentBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecentBuffer(-1)
}

// Property: MinMaxSum agrees with a direct computation over Values().
func TestRecentBufferMinMaxSumProperty(t *testing.T) {
	f := func(vals []int16, size uint8) bool {
		n := int(size%30) + 1
		b := NewRecentBuffer(n)
		for _, v := range vals {
			b.Add(int(v))
		}
		min, max, sum, ok := b.MinMaxSum()
		vv := b.Values()
		if len(vv) == 0 {
			return !ok
		}
		wmin, wmax, wsum := vv[0], vv[0], 0
		for _, v := range vv {
			if v < wmin {
				wmin = v
			}
			if v > wmax {
				wmax = v
			}
			wsum += v
		}
		return ok && min == wmin && max == wmax && sum == wsum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
