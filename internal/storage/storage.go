// Package storage models a sensor node's Flash storage as the Scoop
// paper uses it: a fixed-capacity circular buffer of stored readings
// (the "data buffer", scanned linearly at query time) and a small
// round-robin buffer of the node's own most recent readings (the
// "recent-readings buffer", size 30 in the paper) from which summary
// histograms are built.
//
// A reading records who produced it and when, so time-ranged queries
// and owner re-assignment across storage-index generations both work.
package storage

// Reading is one stored sensor sample.
type Reading struct {
	Producer uint16 // node that sampled the value
	Value    int    // attribute value (paper: 12-bit readings)
	Time     int64  // virtual ms timestamp of the sample
}

// DataBuffer is the node's circular Flash data buffer. When full, new
// writes overwrite the oldest entries, like the paper's round-robin
// Flash log. The zero value is unusable; use NewDataBuffer.
type DataBuffer struct {
	buf   []Reading
	next  int
	count int
	wraps int64
}

// NewDataBuffer returns a buffer holding at most capacity readings.
func NewDataBuffer(capacity int) *DataBuffer {
	if capacity <= 0 {
		panic("storage: non-positive capacity")
	}
	return &DataBuffer{buf: make([]Reading, capacity)}
}

// Store appends r, overwriting the oldest reading when full.
func (b *DataBuffer) Store(r Reading) {
	if b.count == len(b.buf) {
		b.wraps++
	}
	b.buf[b.next] = r
	b.next = (b.next + 1) % len(b.buf)
	if b.count < len(b.buf) {
		b.count++
	}
}

// Len reports the number of readings currently stored.
func (b *DataBuffer) Len() int { return b.count }

// Cap reports the buffer capacity.
func (b *DataBuffer) Cap() int { return len(b.buf) }

// Overwritten reports how many readings have been lost to wrap-around,
// for storage-burden experiments.
func (b *DataBuffer) Overwritten() int64 { return b.wraps }

// Scan linearly visits all stored readings oldest-first, calling fn for
// each; fn returning false stops the scan. This mirrors the paper's
// linear Flash scan at query time.
func (b *DataBuffer) Scan(fn func(Reading) bool) {
	start := 0
	if b.count == len(b.buf) {
		start = b.next
	}
	for i := 0; i < b.count; i++ {
		if !fn(b.buf[(start+i)%len(b.buf)]) {
			return
		}
	}
}

// Select returns the stored readings with Value in [vmin,vmax] and
// Time in [tmin,tmax] (inclusive bounds).
func (b *DataBuffer) Select(vmin, vmax int, tmin, tmax int64) []Reading {
	var out []Reading
	b.Scan(func(r Reading) bool {
		if r.Value >= vmin && r.Value <= vmax && r.Time >= tmin && r.Time <= tmax {
			out = append(out, r)
		}
		return true
	})
	return out
}

// RecentBuffer is the fixed-size round-robin buffer of a node's own
// most recent readings (paper §5.2, size 30), the input to summary
// histograms.
type RecentBuffer struct {
	buf   []int
	next  int
	count int
}

// NewRecentBuffer returns a recent-readings buffer of the given size.
func NewRecentBuffer(size int) *RecentBuffer {
	if size <= 0 {
		panic("storage: non-positive recent-buffer size")
	}
	return &RecentBuffer{buf: make([]int, size)}
}

// Add records one reading, evicting the oldest when full.
func (b *RecentBuffer) Add(v int) {
	b.buf[b.next] = v
	b.next = (b.next + 1) % len(b.buf)
	if b.count < len(b.buf) {
		b.count++
	}
}

// Len reports how many readings are buffered.
func (b *RecentBuffer) Len() int { return b.count }

// Values returns the buffered readings oldest-first.
func (b *RecentBuffer) Values() []int {
	out := make([]int, 0, b.count)
	start := 0
	if b.count == len(b.buf) {
		start = b.next
	}
	for i := 0; i < b.count; i++ {
		out = append(out, b.buf[(start+i)%len(b.buf)])
	}
	return out
}

// MinMaxSum returns the smallest and largest buffered value and the sum
// of all buffered values — the extra summary-message fields the paper
// sends alongside the histogram. ok is false when the buffer is empty.
func (b *RecentBuffer) MinMaxSum() (min, max, sum int, ok bool) {
	if b.count == 0 {
		return 0, 0, 0, false
	}
	first := true
	for _, v := range b.Values() {
		if first {
			min, max = v, v
			first = false
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return min, max, sum, true
}
