// Factory monitoring: the paper's motivating application (§1). Battery
// powered motes on factory equipment classify vibration into classes
// 1–20; most machines hum along in low classes, while a couple of
// worn bearings produce high-class events. Maintenance staff
// occasionally ask "which machines vibrated in class ≥ 16 recently?"
//
// Scoop keeps the common low-class readings near (usually on) the
// machines that produce them and places rare high classes where the
// infrequent queries can reach them cheaply, instead of streaming
// every reading to the basestation.
//
//	go run ./examples/factory
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"scoop"
)

const (
	machines  = 40
	faulty1   = 7  // worn bearing: frequent high-class vibration
	faulty2   = 23 // intermittent fault
	highClass = 16
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Vibration classifier: class 1-20 per machine per sample window.
	sampler := func(node int, elapsed time.Duration) int {
		switch node {
		case faulty1:
			return 14 + rng.Intn(7) // 14..20, chronically bad
		case faulty2:
			if rng.Float64() < 0.3 {
				return highClass + rng.Intn(5)
			}
			return 3 + rng.Intn(4)
		default:
			// Healthy machines: low classes with occasional bumps.
			if rng.Float64() < 0.05 {
				return 8 + rng.Intn(5)
			}
			return 1 + rng.Intn(5)
		}
	}

	sim, err := scoop.NewSimulation(scoop.SimulationConfig{
		Nodes:          machines + 1, // + basestation
		Topology:       scoop.TopologyGrid,
		Warmup:         5 * time.Minute,
		Seed:           99,
		SampleInterval: 10 * time.Second,
		Sampler:        sampler,
		DomainLo:       1,
		DomainHi:       20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One shift of monitoring.
	sim.Run(25 * time.Minute)

	fmt.Println("== vibration-class index ==")
	for _, r := range sim.IndexRanges() {
		fmt.Printf("  classes %2d..%2d stored on machine %d\n", r.Lo, r.Hi, r.Owner)
	}

	// Maintenance query: high-class vibration in the last 10 minutes.
	res := sim.QueryValues(highClass, 20, 10*time.Minute, 30*time.Second)
	fmt.Printf("\n== query: class ≥ %d in the last 10 minutes ==\n", highClass)
	fmt.Printf("machines contacted: %d of %d (no flooding)\n", res.Targets, machines)
	fmt.Printf("alarm readings found: %d\n", res.Tuples)

	suspects := map[int]int{}
	for _, r := range res.Readings {
		suspects[r.Node]++
	}
	fmt.Println("machines with high-class vibration:")
	for m, c := range suspects {
		fmt.Printf("  machine %2d: %d readings carried back\n", m, c)
	}
	if _, ok := suspects[faulty1]; ok {
		fmt.Printf("→ machine %d correctly flagged (chronic fault)\n", faulty1)
	}

	st := sim.Stats()
	fmt.Printf("\nmessages spent: %.0f total for %d readings (%.2f msg/reading)\n",
		st.Breakdown.Total(), st.Produced, st.Breakdown.Total()/float64(st.Produced))
	fmt.Printf("readings stored without leaving their machine: %d of %d\n",
		st.Produced-int64(st.Breakdown.Data), st.Produced)
}
