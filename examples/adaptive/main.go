// Adaptivity: the core claim of the paper — the storage index follows
// the query/data rate balance. While queries are rare, values live on
// (or near) their producers; when the user starts querying hard, the
// basestation's next index pulls popular values toward itself
// (property P2), cutting query cost at the price of data movement.
//
// The demo runs one network through a quiet phase and a busy phase and
// prints how much of the value domain the basestation owns in each.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"scoop"
)

func main() {
	sim, err := scoop.NewSimulation(scoop.SimulationConfig{
		Nodes:  40,
		Source: scoop.SourceReal,
		Warmup: 5 * time.Minute,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// ---- Phase 1: data-dominated (no queries at all) ----
	sim.Run(20 * time.Minute)
	fmt.Println("phase 1: 15 minutes of sampling, zero queries")
	report(sim)

	// ---- Phase 2: query storm ----
	// Hammer the hot value band every few seconds for ten minutes; the
	// periodic remap sees the query statistics and re-places those
	// values closer to the basestation.
	fmt.Println("\nphase 2: querying [60,80] every 5 seconds for 10 minutes")
	for i := 0; i < 120; i++ {
		sim.QueryValues(60, 80, 2*time.Minute, 5*time.Second)
	}
	report(sim)
}

// report prints who owns the hot band and the basestation's share of
// the whole domain.
func report(sim *scoop.Simulation) {
	ranges := sim.IndexRanges()
	if ranges == nil {
		fmt.Println("  (no index yet)")
		return
	}
	baseOwned, domain := 0, 0
	hotAtBase, hotTotal := 0, 0
	for _, r := range ranges {
		width := r.Hi - r.Lo + 1
		domain += width
		if r.Owner == 0 {
			baseOwned += width
		}
		// Overlap with the hot band [60,80].
		lo, hi := max(r.Lo, 60), min(r.Hi, 80)
		if lo <= hi {
			hotTotal += hi - lo + 1
			if r.Owner == 0 {
				hotAtBase += hi - lo + 1
			}
		}
	}
	fmt.Printf("  basestation owns %d/%d of the domain; %d/%d of the hot band [60,80]\n",
		baseOwned, domain, hotAtBase, hotTotal)
	st := sim.Stats()
	fmt.Printf("  indexes built: %d (suppressed %d), messages so far: %.0f\n",
		st.IndexesBuilt, st.IndexSuppressed, st.Breakdown.Total())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
