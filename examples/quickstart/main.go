// Quickstart: bring up a simulated Scoop sensor network, let it build
// a storage index, and query a value range of interest.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"scoop"
)

func main() {
	// A 30-node network sampling the synthetic indoor light workload
	// (the paper's REAL trace substitute) every 15 seconds.
	sim, err := scoop.NewSimulation(scoop.SimulationConfig{
		Nodes:  30,
		Source: scoop.SourceReal,
		Warmup: 5 * time.Minute,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Let the routing tree form, statistics flow, and the basestation
	// build and disseminate its first storage indices.
	sim.Run(20 * time.Minute)

	fmt.Println("== storage index (value ranges → owner node) ==")
	for _, r := range sim.IndexRanges() {
		fmt.Printf("  [%3d..%3d] → node %d\n", r.Lo, r.Hi, r.Owner)
	}

	// Ask for bright readings from the last five minutes. Scoop
	// contacts only the owners of that value range instead of flooding
	// the network.
	res := sim.QueryValues(100, 150, 5*time.Minute, 30*time.Second)
	fmt.Printf("\n== query: values in [100,150] over the last 5 minutes ==\n")
	fmt.Printf("nodes contacted: %d of %d\n", res.Targets, sim.Nodes()-1)
	fmt.Printf("matching tuples: %d (carried back: %d)\n", res.Tuples, len(res.Readings))
	for i, r := range res.Readings {
		if i == 8 {
			fmt.Printf("  … and %d more\n", len(res.Readings)-8)
			break
		}
		fmt.Printf("  node %2d read %3d at t=%v\n", r.Node, r.Value, r.At.Sub(time.Time{}).Round(time.Second))
	}

	// A max-query is answered from collected summaries without any
	// radio traffic at all (paper §5.5).
	if max, ok := sim.QueryMax(10 * time.Minute); ok {
		fmt.Printf("\nmax value in last 10 min (from summaries, zero messages): %d\n", max)
	}

	st := sim.Stats()
	fmt.Printf("\n== run statistics ==\n")
	fmt.Printf("readings produced: %d, durably stored: %.0f%%\n", st.Produced, 100*st.DataSuccess)
	fmt.Printf("messages: %.0f (data %.0f, summary %.0f, mapping %.0f, query %.0f, reply %.0f)\n",
		st.Breakdown.Total(), st.Breakdown.Data, st.Breakdown.Summary,
		st.Breakdown.Mapping, st.Breakdown.Query, st.Breakdown.Reply)
}
