// Failover: sensor networks lose nodes. This example kills the node
// that owns the most of the value domain mid-run and shows that (a)
// the network keeps storing data — readings for the dead owner's
// values wash up at the basestation via routing rule 6 until the next
// remap, and (b) the next storage index stops assigning values to the
// dead node because its summaries stop arriving.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"scoop"
)

func main() {
	sim, err := scoop.NewSimulation(scoop.SimulationConfig{
		Nodes:  30,
		Source: scoop.SourceReal,
		Warmup: 5 * time.Minute,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(18 * time.Minute)

	victim, width := biggestOwner(sim)
	if victim <= 0 {
		log.Fatal("no non-base owner found")
	}
	before := sim.Stats()
	fmt.Printf("killing node %d, owner of %d values\n", victim, width)
	sim.KillNode(victim)

	// Run long enough for summaries to expire and several remaps.
	sim.Run(15 * time.Minute)

	after := sim.Stats()
	fmt.Printf("\nduring the outage the network kept working:\n")
	fmt.Printf("  readings produced: %d → %d\n", before.Produced, after.Produced)
	fmt.Printf("  data success rate: %.0f%% → %.0f%%\n",
		100*before.DataSuccess, 100*after.DataSuccess)

	if w := ownedBy(sim, victim); w == 0 {
		fmt.Printf("  new index assigns the dead node nothing ✓\n")
	} else {
		fmt.Printf("  dead node still owns %d values (stats not yet expired)\n", w)
	}

	// Queries still work: the owners that remain answer.
	res := sim.QueryValues(0, 150, 5*time.Minute, 30*time.Second)
	fmt.Printf("  full-domain query: %d targets, %d tuples\n", res.Targets, res.Tuples)
}

// biggestOwner returns the non-base node owning the widest slice of
// the domain under the current index.
func biggestOwner(sim *scoop.Simulation) (node, width int) {
	byOwner := map[int]int{}
	for _, r := range sim.IndexRanges() {
		if r.Owner != 0 {
			byOwner[r.Owner] += r.Hi - r.Lo + 1
		}
	}
	for n, w := range byOwner {
		if w > width {
			node, width = n, w
		}
	}
	return node, width
}

func ownedBy(sim *scoop.Simulation, node int) int {
	w := 0
	for _, r := range sim.IndexRanges() {
		if r.Owner == node {
			w += r.Hi - r.Lo + 1
		}
	}
	return w
}
