// Package scoop is a full reimplementation of Scoop, the adaptive
// indexing scheme for stored data in sensor networks by Gil & Madden
// (ICDE 2007 / MIT-CSAIL-TR-2006-077), together with the substrate it
// needs to run: a packet-level wireless network simulator, a
// Woo-style routing tree, Trickle dissemination, summary histograms,
// the cost-based storage-index construction algorithm, and the
// comparator storage policies (LOCAL, BASE, HASH) from the paper's
// evaluation.
//
// Two entry points cover most uses:
//
//   - RunExperiment runs a complete policy × workload experiment and
//     returns message breakdowns and delivery statistics, the unit of
//     the paper's figures.
//   - NewSimulation gives step-by-step control over one simulated
//     network: advance virtual time, issue queries, inspect the
//     storage index — the API the runnable examples build on.
//
// All radio, protocol and workload behaviour lives in internal/
// packages; this package is the stable facade.
package scoop

import (
	"fmt"
	"math"
	"os"
	"time"

	"scoop/internal/core"
	"scoop/internal/exp"
	"scoop/internal/metrics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
	"scoop/internal/trace"
	"scoop/internal/workload"
)

// Policy selects a storage policy.
type Policy string

// Storage policies. PolicyHash is the paper's analytical GHT-style
// baseline; PolicyHashSim is this implementation's fully simulated
// extension of it.
const (
	PolicyScoop   Policy = "scoop"
	PolicyLocal   Policy = "local"
	PolicyBase    Policy = "base"
	PolicyHash    Policy = "hash"
	PolicyHashSim Policy = "hashsim"
)

// Source selects a sensor-data workload from the paper's evaluation.
type Source string

// Data sources (paper §6).
const (
	SourceReal     Source = "real"
	SourceUnique   Source = "unique"
	SourceEqual    Source = "equal"
	SourceRandom   Source = "random"
	SourceGaussian Source = "gaussian"
)

// Topology selects a node layout.
type Topology string

// Topologies: Uniform is the paper's simulated layout, Testbed models
// the 62-node office-floor deployment, Grid is a jittered lab grid.
const (
	TopologyUniform Topology = "uniform"
	TopologyTestbed Topology = "testbed"
	TopologyGrid    Topology = "grid"
)

// ExperimentConfig describes one experiment. The zero value is not
// runnable; start from DefaultExperiment.
type ExperimentConfig struct {
	Policy   Policy
	Source   Source
	Topology Topology
	Nodes    int // network size including the basestation (≤ netsim.MaxNodes)

	Duration time.Duration // total virtual run time
	Warmup   time.Duration // tree stabilisation before sampling

	SampleInterval time.Duration
	QueryInterval  time.Duration // 0 disables queries
	// NodePercent, when ≥ 0, switches to node-list queries over this
	// fraction of nodes (the paper's Figure 4 sweep); negative uses
	// value-range queries over 1–5% of the attribute domain.
	NodePercent float64

	// AggregateRatio, in [0,1], lifts this fraction of value-range
	// queries into aggregate queries (COUNT/SUM/AVG/MIN/MAX/quantile)
	// answered by the cost-based query planner: from retained
	// summaries when the error budget permits, by in-network
	// partial-aggregate combining, by tuple return, or by flooding.
	AggregateRatio float64
	// AggregateErrBudget is the relative accuracy each aggregate
	// tolerates from an approximate summary-served answer; 0 demands
	// exact plans.
	AggregateErrBudget float64

	// TraceJSONL, when non-empty, switches on the flight recorder for
	// the first trial and streams its events to this file as JSONL —
	// one structured, sim-time-stamped event per line, byte-identical
	// across runs with the same configuration and seed. Inspect it
	// with cmd/scoopflight.
	TraceJSONL string

	// Regions, when > 1, runs each trial's network on a conservatively
	// synchronised parallel event loop with this many spatial regions.
	// It is a run-mode knob, not a model parameter: results are
	// bit-identical for every value (0 and 1 select the serial loop).
	Regions int

	Trials int
	Seed   int64
}

// DefaultExperiment returns the paper's default parameters: 62 nodes
// plus a basestation, REAL data, 15-second sample and query intervals,
// 40-minute runs with a 10-minute warm-up, three trials.
func DefaultExperiment() ExperimentConfig {
	return ExperimentConfig{
		Policy:         PolicyScoop,
		Source:         SourceReal,
		Topology:       TopologyUniform,
		Nodes:          63,
		Duration:       40 * time.Minute,
		Warmup:         10 * time.Minute,
		SampleInterval: 15 * time.Second,
		QueryInterval:  15 * time.Second,
		NodePercent:    -1,
		Trials:         3,
		Seed:           1,
	}
}

// Breakdown reports transmissions by message class, the paper's cost
// metric (routing-tree beacons are accounted separately since every
// policy pays them equally).
type Breakdown struct {
	Data     float64
	Summary  float64
	Mapping  float64
	Query    float64
	Reply    float64
	AggReply float64 // combined partial-aggregate replies
	Beacon   float64
}

// Total returns the comparison-metric total (beacons excluded), as in
// the paper's figures.
func (b Breakdown) Total() float64 {
	return b.Data + b.Summary + b.Mapping + b.Query + b.Reply + b.AggReply
}

// ExperimentResult aggregates an experiment's outcome across trials.
type ExperimentResult struct {
	Breakdown Breakdown // mean transmissions per trial

	// Delivery statistics summed over trials.
	Produced        int64
	StoredUnique    int64
	DataSuccess     float64 // fraction of readings durably stored
	OwnerHitRate    float64 // routed readings reaching their owner
	QuerySuccess    float64 // targeted nodes whose replies arrived
	QueriesIssued   int64
	TuplesReturned  int64
	IndexesBuilt    int64
	IndexSuppressed int64

	// Aggregate query engine outcomes (AggregateRatio > 0 runs).
	AggIssued   int64
	AggAnswered int64
	AggMeanErr  float64 // mean absolute relative answer error

	// Root-node load (mean per trial), for skew comparisons.
	RootSent, RootReceived float64
}

// RunExperiment executes the experiment (trials run concurrently) and
// returns aggregated results.
func RunExperiment(cfg ExperimentConfig) (ExperimentResult, error) {
	ec, err := toExpConfig(cfg)
	if err != nil {
		return ExperimentResult{}, err
	}
	var tf *os.File
	if cfg.TraceJSONL != "" {
		tf, err = os.Create(cfg.TraceJSONL)
		if err != nil {
			return ExperimentResult{}, fmt.Errorf("scoop: trace file: %w", err)
		}
		ec.Trace = true
		ec.TraceSinks = func(trial int) []trace.Sink {
			if trial != 0 {
				return nil // one deterministic event stream, not an interleaving
			}
			return []trace.Sink{trace.NewJSONL(tf)}
		}
	}
	res, err := exp.Run(ec)
	if tf != nil {
		if cerr := tf.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("scoop: trace file: %w", cerr)
		}
	}
	if err != nil {
		return ExperimentResult{}, err
	}
	return fromExpResult(res), nil
}

func toExpConfig(cfg ExperimentConfig) (exp.Config, error) {
	if cfg.Nodes < 2 || cfg.Nodes > netsim.MaxNodes {
		return exp.Config{}, fmt.Errorf("scoop: node count %d outside [2,%d]", cfg.Nodes, netsim.MaxNodes)
	}
	if cfg.Duration <= cfg.Warmup {
		return exp.Config{}, fmt.Errorf("scoop: duration %v must exceed warmup %v", cfg.Duration, cfg.Warmup)
	}
	return exp.Config{
		Policy:         policy.Name(cfg.Policy),
		Source:         string(cfg.Source),
		N:              cfg.Nodes,
		Topology:       string(cfg.Topology),
		Duration:       vt(cfg.Duration),
		Warmup:         vt(cfg.Warmup),
		SampleInterval: vt(cfg.SampleInterval),
		QueryInterval:  vt(cfg.QueryInterval),
		NodePct:        cfg.NodePercent,
		AggRatio:       cfg.AggregateRatio,
		AggErrBudget:   cfg.AggregateErrBudget,
		Regions:        cfg.Regions,
		Trials:         cfg.Trials,
		Seed:           cfg.Seed,
	}, nil
}

func fromExpResult(res exp.Result) ExperimentResult {
	s := res.Stats
	return ExperimentResult{
		Breakdown: Breakdown{
			Data:     res.Breakdown.Data,
			Summary:  res.Breakdown.Summary,
			Mapping:  res.Breakdown.Mapping,
			Query:    res.Breakdown.Query,
			Reply:    res.Breakdown.Reply,
			AggReply: res.Breakdown.AggReply,
			Beacon:   res.Breakdown.Beacon,
		},
		Produced:        s.Produced,
		StoredUnique:    s.StoredUnique,
		DataSuccess:     s.DataSuccessRate(),
		OwnerHitRate:    s.OwnerHitRate(),
		QuerySuccess:    s.QuerySuccessRate(),
		QueriesIssued:   s.QueriesIssued,
		TuplesReturned:  s.TuplesReturned,
		IndexesBuilt:    s.IndexesBuilt,
		IndexSuppressed: s.IndexesSuppressed,
		AggIssued:       int64(res.Agg.Issued),
		AggAnswered:     int64(res.Agg.Answered),
		AggMeanErr:      res.Agg.MeanErr(),
		RootSent:        res.RootSent,
		RootReceived:    res.RootRecv,
	}
}

// vt converts wall-style durations to virtual simulator time.
func vt(d time.Duration) netsim.Time { return netsim.Time(d.Milliseconds()) }

// Reading is one stored sensor sample returned by queries.
type Reading struct {
	Node  int       // producing node
	Value int       // attribute value
	At    time.Time // virtual timestamp, measured from the run start
}

// OwnerRange is one entry of the active storage index.
type OwnerRange struct {
	Lo, Hi int
	Owner  int
}

// SimulationConfig configures a hand-driven simulation.
type SimulationConfig struct {
	Source   Source
	Topology Topology
	Nodes    int
	Policy   Policy
	Warmup   time.Duration // sampling starts after this
	Seed     int64

	// SampleInterval defaults to the paper's 15 s when zero.
	SampleInterval time.Duration
	// Sampler, when non-nil, overrides Source with a custom per-node
	// value function (e.g. a domain-specific signal). It receives the
	// node ID and the virtual elapsed time.
	Sampler func(node int, elapsed time.Duration) int
	// Domain bounds the attribute values when Sampler is set
	// (inclusive); ignored otherwise.
	DomainLo, DomainHi int
}

// Simulation is a single simulated Scoop network under manual control.
// It is not safe for concurrent use.
type Simulation struct {
	sim   *netsim.Simulator
	net   *netsim.Network
	ctr   *metrics.Counters
	base  *core.Base
	stats *core.RunStats
	n     int
	qseq  int64
}

// NewSimulation builds a network ready to run. Defaults: REAL source,
// uniform topology, 63 nodes, Scoop policy, 10-minute warmup.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 63
	}
	if cfg.Nodes < 2 || cfg.Nodes > netsim.MaxNodes {
		return nil, fmt.Errorf("scoop: node count %d outside [2,%d]", cfg.Nodes, netsim.MaxNodes)
	}
	if cfg.Source == "" {
		cfg.Source = SourceReal
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyScoop
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 10 * time.Minute
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = 15 * time.Second
	}

	var topo *netsim.Topology
	switch cfg.Topology {
	case "", TopologyUniform:
		topo = netsim.UniformTopology(cfg.Nodes, sideFor(cfg.Nodes), 3.5, cfg.Seed)
	case TopologyTestbed:
		topo = netsim.TestbedTopology(cfg.Nodes, cfg.Seed)
	case TopologyGrid:
		topo = netsim.GridTopology(cfg.Nodes, 2.5, cfg.Seed)
	default:
		return nil, fmt.Errorf("scoop: unknown topology %q", cfg.Topology)
	}

	var sampler core.Sampler
	lo, hi := cfg.DomainLo, cfg.DomainHi
	if cfg.Sampler != nil {
		if hi <= lo {
			return nil, fmt.Errorf("scoop: custom sampler needs a domain [lo,hi]")
		}
		user := cfg.Sampler
		sampler = func(id netsim.NodeID, now netsim.Time) int {
			v := user(int(id), time.Duration(now)*time.Millisecond)
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			return v
		}
	} else {
		src, err := workload.NewSource(string(cfg.Source), cfg.Nodes, cfg.Seed+13)
		if err != nil {
			return nil, err
		}
		lo, hi = src.Domain()
		sampler = src.Next
	}

	ccfg, err := policy.Config(policy.Name(cfg.Policy), cfg.Nodes, lo, hi)
	if err != nil {
		return nil, err
	}
	ccfg.SampleInterval = vt(cfg.SampleInterval)

	s := &Simulation{
		sim:   netsim.NewSimulator(cfg.Seed ^ 0x53c00b),
		ctr:   metrics.NewCounters(),
		stats: &core.RunStats{},
		n:     cfg.Nodes,
	}
	s.net = netsim.NewNetwork(s.sim, topo, s.ctr, netsim.DefaultParams())
	s.base = core.NewBase(ccfg, s.stats, vt(cfg.Warmup))
	s.net.Attach(0, s.base)
	for i := 1; i < cfg.Nodes; i++ {
		s.net.Attach(netsim.NodeID(i), core.NewNode(ccfg, s.stats, sampler, vt(cfg.Warmup)))
	}
	s.net.Start()
	return s, nil
}

// Run advances virtual time by d.
func (s *Simulation) Run(d time.Duration) {
	s.sim.Run(s.sim.Now() + vt(d))
}

// Elapsed returns the virtual time since the simulation started.
func (s *Simulation) Elapsed() time.Duration {
	return time.Duration(s.sim.Now()) * time.Millisecond
}

// QueryResult reports one query's outcome.
type QueryResult struct {
	Targets  int       // nodes the basestation contacted
	Tuples   int       // total matches reported (counts, not payloads)
	Readings []Reading // tuples actually carried back (replies are capped)
}

// QueryValues asks for readings with values in [lo,hi] sampled within
// the trailing `window` of virtual time, then runs the network for
// `wait` to let replies arrive.
func (s *Simulation) QueryValues(lo, hi int, window, wait time.Duration) QueryResult {
	return s.query(workload.Query{ValueLo: lo, ValueHi: hi}, window, wait)
}

// QueryNodes asks the listed nodes for their readings within the
// trailing window, waiting `wait` for replies.
func (s *Simulation) QueryNodes(nodes []int, window, wait time.Duration) QueryResult {
	ids := make([]netsim.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = netsim.NodeID(n)
	}
	return s.query(workload.Query{Nodes: ids, ValueLo: 1, ValueHi: 0}, window, wait)
}

func (s *Simulation) query(q workload.Query, window, wait time.Duration) QueryResult {
	tlo := s.sim.Now() - vt(window)
	if tlo < 0 {
		tlo = 0
	}
	q.TimeLo, q.TimeHi = tlo, s.sim.Now()
	before := s.stats.TuplesReturned
	tg := s.base.IssueQuery(q)
	qid := s.base.LastQueryID()
	s.Run(wait)
	raw := s.base.QueryResults(qid)
	readings := make([]Reading, len(raw))
	for i, r := range raw {
		readings[i] = Reading{
			Node:  int(r.Producer),
			Value: r.Value,
			At:    time.Time{}.Add(time.Duration(r.Time) * time.Millisecond),
		}
	}
	return QueryResult{
		Targets:  len(tg),
		Tuples:   int(s.stats.TuplesReturned - before),
		Readings: readings,
	}
}

// QueryMax answers "largest value observed in the trailing window"
// from stored summaries at zero network cost (paper §5.5).
func (s *Simulation) QueryMax(window time.Duration) (int, bool) {
	tlo := s.sim.Now() - vt(window)
	if tlo < 0 {
		tlo = 0
	}
	return s.base.QueryMax(tlo, s.sim.Now())
}

// IndexRanges returns the active storage index as owner ranges, or nil
// before the first index (or under a store-local index).
func (s *Simulation) IndexRanges() []OwnerRange {
	ix := s.base.CurrentIndex()
	if ix == nil || ix.Local {
		return nil
	}
	out := make([]OwnerRange, len(ix.Entries))
	for i, e := range ix.Entries {
		out[i] = OwnerRange{Lo: e.Lo, Hi: e.Hi, Owner: int(e.Owner)}
	}
	return out
}

// Messages returns the current transmission breakdown.
func (s *Simulation) Messages() Breakdown {
	b := s.ctr.Snapshot()
	return Breakdown{Data: b.Data, Summary: b.Summary, Mapping: b.Mapping,
		Query: b.Query, Reply: b.Reply, Beacon: b.Beacon}
}

// Stats summarises delivery outcomes so far.
func (s *Simulation) Stats() ExperimentResult {
	st := s.stats
	return ExperimentResult{
		Breakdown:       s.Messages(),
		Produced:        st.Produced,
		StoredUnique:    st.StoredUnique,
		DataSuccess:     st.DataSuccessRate(),
		OwnerHitRate:    st.OwnerHitRate(),
		QuerySuccess:    st.QuerySuccessRate(),
		QueriesIssued:   st.QueriesIssued,
		TuplesReturned:  st.TuplesReturned,
		IndexesBuilt:    st.IndexesBuilt,
		IndexSuppressed: st.IndexesSuppressed,
	}
}

// KillNode fails a node (it stops sending and receiving), for
// failure-injection scenarios.
func (s *Simulation) KillNode(id int) { s.net.Kill(netsim.NodeID(id)) }

// ReviveNode brings a failed node back with whatever protocol state
// it retained; timers that lapsed while it was dead stay silent. For
// a realistic rejoin, use RestartNode.
func (s *Simulation) ReviveNode(id int) { s.net.Revive(netsim.NodeID(id)) }

// RestartNode reboots a failed node: it rejoins with fresh protocol
// state (routing table, storage index, buffers), like a power-cycled
// mote. This is what churn-injection scenarios use.
func (s *Simulation) RestartNode(id int) { s.net.Restart(netsim.NodeID(id)) }

// Nodes returns the network size including the basestation.
func (s *Simulation) Nodes() int { return s.n }

func sideFor(n int) float64 {
	// Matches the experiment harness: density comparable to the
	// paper's ~20%-connectivity layout.
	return 1.008 * math.Sqrt(float64(n))
}
