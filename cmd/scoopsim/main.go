// Command scoopsim runs a single Scoop experiment — one storage policy
// over one workload on a simulated sensor network — and prints the
// message breakdown and delivery statistics.
//
// Examples:
//
//	scoopsim                                    # paper defaults (SCOOP, REAL)
//	scoopsim -policy base -source gaussian
//	scoopsim -policy local -nodes 101 -trials 5
//	scoopsim -nodepct 0.4                       # Figure 4-style node queries
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scoop"
)

// parseFlags builds the experiment configuration from argv (without
// the program name). Separate from main so tests can drive it.
func parseFlags(args []string) (scoop.ExperimentConfig, error) {
	fs := flag.NewFlagSet("scoopsim", flag.ContinueOnError)
	var (
		policyF  = fs.String("policy", "scoop", "storage policy: scoop, local, base, hash, hashsim")
		source   = fs.String("source", "real", "data source: real, unique, equal, random, gaussian")
		topology = fs.String("topology", "uniform", "topology: uniform, testbed, grid")
		nodes    = fs.Int("nodes", 63, "network size including the basestation")
		duration = fs.Duration("duration", 40*time.Minute, "virtual run time")
		warmup   = fs.Duration("warmup", 10*time.Minute, "tree-stabilisation period")
		sample   = fs.Duration("sample", 15*time.Second, "sensor sampling interval")
		query    = fs.Duration("query", 15*time.Second, "query interval (0 disables)")
		nodePct  = fs.Float64("nodepct", -1, "node-list queries over this fraction of nodes (<0: value-range queries)")
		regions  = fs.Int("regions", 0, "parallel event-loop regions per trial (0/1: serial; results are identical for every value)")
		trials   = fs.Int("trials", 3, "independent trials to average")
		seed     = fs.Int64("seed", 1, "random seed")
		traceF   = fs.String("trace", "", "write the first trial's flight-recorder events to this JSONL file")
	)
	if err := fs.Parse(args); err != nil {
		return scoop.ExperimentConfig{}, err
	}
	return scoop.ExperimentConfig{
		Policy:         scoop.Policy(*policyF),
		Source:         scoop.Source(*source),
		Topology:       scoop.Topology(*topology),
		Nodes:          *nodes,
		Duration:       *duration,
		Warmup:         *warmup,
		SampleInterval: *sample,
		QueryInterval:  *query,
		NodePercent:    *nodePct,
		TraceJSONL:     *traceF,
		Regions:        *regions,
		Trials:         *trials,
		Seed:           *seed,
	}, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}
	res, err := scoop.RunExperiment(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoopsim:", err)
		os.Exit(1)
	}

	b := res.Breakdown
	fmt.Printf("policy=%s source=%s topology=%s nodes=%d trials=%d\n",
		cfg.Policy, cfg.Source, cfg.Topology, cfg.Nodes, cfg.Trials)
	fmt.Printf("messages (mean/trial): total=%.0f\n", b.Total())
	fmt.Printf("  data=%.0f summary=%.0f mapping=%.0f query=%.0f reply=%.0f (beacons=%.0f)\n",
		b.Data, b.Summary, b.Mapping, b.Query, b.Reply, b.Beacon)
	if res.Produced > 0 {
		fmt.Printf("data:   produced=%d stored=%d success=%.0f%% owner-hit=%.0f%%\n",
			res.Produced, res.StoredUnique, 100*res.DataSuccess, 100*res.OwnerHitRate)
	}
	if res.QueriesIssued > 0 {
		fmt.Printf("query:  issued=%d tuples=%d reply-success=%.0f%%\n",
			res.QueriesIssued, res.TuplesReturned, 100*res.QuerySuccess)
	}
	if res.IndexesBuilt > 0 {
		fmt.Printf("index:  built=%d suppressed=%d\n", res.IndexesBuilt, res.IndexSuppressed)
	}
	fmt.Printf("root:   sent=%.0f received=%.0f\n", res.RootSent, res.RootReceived)
}
