package main

import (
	"testing"
	"time"

	"scoop"
)

func TestParseFlagsDefaultsMatchPaper(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := scoop.DefaultExperiment()
	if cfg != want {
		t.Fatalf("flag defaults diverge from scoop.DefaultExperiment:\n got %+v\nwant %+v", cfg, want)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-policy", "base", "-source", "gaussian", "-nodes", "101",
		"-duration", "20m", "-query", "0", "-trials", "5", "-seed", "42",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != scoop.PolicyBase || cfg.Source != scoop.SourceGaussian ||
		cfg.Nodes != 101 || cfg.Duration != 20*time.Minute ||
		cfg.QueryInterval != 0 || cfg.Trials != 5 || cfg.Seed != 42 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
}

func TestParseFlagsRejectsGarbage(t *testing.T) {
	if _, err := parseFlags([]string{"-nodes", "many"}); err == nil {
		t.Fatal("non-numeric -nodes accepted")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
