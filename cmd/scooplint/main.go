// Command scooplint runs the repo's static-analysis suite
// (internal/lint) — the machine-checked form of the DESIGN.md §2
// determinism and §12 hot-path contracts.
//
// Usage:
//
//	scooplint [-C dir] [-json] [packages...]
//
// Packages default to ./... relative to -C (default: the current
// directory). Findings print one per line as
//
//	file:line: [rule] message
//
// and the exit status is 1 when there are findings, 2 on a load
// error. With -json the findings are emitted as a JSON array instead
// — CI uploads that as an artifact on failure (see .github/workflows/
// ci.yml and DESIGN.md §15).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"scoop/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json artifact schema: one object per finding,
// stable field names so CI tooling can rely on them.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scooplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (CI artifact mode)")
	dir := fs.String("C", ".", "directory to resolve package patterns from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "scooplint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, lint.Analyzers)
	base, err := filepath.Abs(*dir)
	if err != nil {
		base = *dir
	}
	if *jsonOut {
		findings := []jsonFinding{} // never null, even when clean
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:    relPath(base, d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "scooplint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", relPath(base, d.Pos.Filename), d.Pos.Line, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "scooplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relPath shortens file names relative to the invocation directory
// when possible, keeping output stable for humans and CI alike.
func relPath(base, name string) string {
	if rel, err := filepath.Rel(base, name); err == nil && !filepath.IsAbs(rel) && rel != "" && !isDotDot(rel) {
		return rel
	}
	return name
}

func isDotDot(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}
