package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRepoClean is the acceptance gate in test form: scooplint must
// exit 0 on the whole repo. Every genuine violation has been fixed
// and every surviving map range / wall-clock read carries a reviewed
// //scoop:allow, so a new finding here is a new contract violation.
func TestRepoClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("scooplint not clean on the repo (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run produced output:\n%s", stdout.String())
	}
}

// TestJSONFindings drives the -json artifact mode against a fixture
// package that is guaranteed dirty, and checks the schema CI relies
// on: a JSON array of {file,line,col,rule,message}, exit status 1.
func TestJSONFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "-json", "./internal/lint/testdata/src/walltime"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d on a dirty package, want 1; stderr:\n%s", code, stderr.String())
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings on the walltime fixture")
	}
	for _, f := range findings {
		if f.Rule != "walltime" {
			t.Errorf("unexpected rule %q in %+v", f.Rule, f)
		}
		if !strings.HasSuffix(f.File, "walltime.go") || f.Line == 0 || f.Col == 0 {
			t.Errorf("bad position in %+v", f)
		}
		if !strings.Contains(f.Message, "wall-clock") {
			t.Errorf("bad message in %+v", f)
		}
	}
}

// TestTextFindings pins the human-facing `file:line: [rule] message`
// line format and the nonzero exit.
func TestTextFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "./internal/lint/testdata/src/walltime"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d on a dirty package, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	for _, line := range lines {
		if !strings.Contains(line, "walltime.go:") || !strings.Contains(line, ": [walltime] ") {
			t.Errorf("line %q does not match file:line: [rule] message", line)
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("missing findings summary on stderr: %q", stderr.String())
	}
}

// TestBadPattern: load failures are distinguished from findings.
func TestBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d on a bad pattern, want 2", code)
	}
}
