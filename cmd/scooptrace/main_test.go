package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scoop/internal/workload"
)

// Generate a trace the way main does, then inspect it the way
// -inspect does: the full round trip through the replay format.
func TestGenerateInspectRoundTrip(t *testing.T) {
	src, err := workload.NewSource("real", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := workload.Record(src, 8, 20)

	path := filepath.Join(t.TempDir(), "real.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := inspectTrace(path, &sb); err != nil {
		t.Fatalf("inspectTrace: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "8 nodes") {
		t.Fatalf("inspect output missing node count:\n%s", out)
	}
	if !strings.Contains(out, "domain histogram: 160 readings") {
		t.Fatalf("inspect output missing domain histogram:\n%s", out)
	}
	// The peak bin renders a full-width bar.
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Fatalf("histogram bars missing:\n%s", out)
	}
}

func TestInspectMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := inspectTrace(filepath.Join(t.TempDir(), "absent.trace"), &sb); err == nil {
		t.Fatal("missing trace accepted")
	}
}
