package main

import (
	"os"
	"path/filepath"
	"testing"

	"scoop/internal/workload"
)

// Generate a trace the way main does, then inspect it the way
// -inspect does: the full round trip through the replay format.
func TestGenerateInspectRoundTrip(t *testing.T) {
	src, err := workload.NewSource("real", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := workload.Record(src, 8, 20)

	path := filepath.Join(t.TempDir(), "real.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := inspectTrace(path); err != nil {
		t.Fatalf("inspectTrace: %v", err)
	}
}

func TestInspectMissingFile(t *testing.T) {
	if err := inspectTrace(filepath.Join(t.TempDir(), "absent.trace")); err == nil {
		t.Fatal("missing trace accepted")
	}
}
