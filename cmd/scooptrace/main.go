// Command scooptrace generates, inspects and freezes sensor-data
// traces in the replayable format the workload package understands
// (one line per node, whitespace-separated readings in sample order —
// the role the Intel-lab trace file plays for the paper's REAL
// workload).
//
//	scooptrace -source real -nodes 63 -samples 160 > real.trace
//	scooptrace -inspect real.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"scoop/internal/workload"
)

func main() {
	var (
		source  = flag.String("source", "real", "source to freeze: real, unique, equal, random, gaussian")
		nodes   = flag.Int("nodes", 63, "nodes including the basestation")
		samples = flag.Int("samples", 160, "readings per node (paper: 30 min at 15 s)")
		seed    = flag.Int64("seed", 1, "random seed")
		inspect = flag.String("inspect", "", "summarise an existing trace file instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "scooptrace:", err)
			os.Exit(1)
		}
		return
	}

	src, err := workload.NewSource(*source, *nodes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scooptrace:", err)
		os.Exit(1)
	}
	rec := workload.Record(src, *nodes, *samples)
	if _, err := rec.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scooptrace:", err)
		os.Exit(1)
	}
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := workload.ParseReplay(path, f)
	if err != nil {
		return err
	}
	lo, hi := r.Domain()
	fmt.Printf("trace %s: %d nodes, domain [%d,%d]\n", path, r.NumNodes(), lo, hi)
	for id := 0; id < r.NumNodes(); id++ {
		series := r.Series(id)
		if len(series) == 0 {
			fmt.Printf("  node %3d: empty\n", id)
			continue
		}
		min, max, sum := series[0], series[0], 0
		for _, v := range series {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		fmt.Printf("  node %3d: n=%d mean=%.1f min=%d max=%d\n",
			id, len(series), float64(sum)/float64(len(series)), min, max)
	}
	return nil
}
