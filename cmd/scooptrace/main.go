// Command scooptrace generates, inspects and freezes sensor-data
// traces in the replayable format the workload package understands
// (one line per node, whitespace-separated readings in sample order —
// the role the Intel-lab trace file plays for the paper's REAL
// workload).
//
//	scooptrace -source real -nodes 63 -samples 160 > real.trace
//	scooptrace -inspect real.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"scoop/internal/histogram"
	"scoop/internal/workload"
)

func main() {
	var (
		source  = flag.String("source", "real", "source to freeze: real, unique, equal, random, gaussian")
		nodes   = flag.Int("nodes", 63, "nodes including the basestation")
		samples = flag.Int("samples", 160, "readings per node (paper: 30 min at 15 s)")
		seed    = flag.Int64("seed", 1, "random seed")
		inspect = flag.String("inspect", "", "summarise an existing trace file instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "scooptrace:", err)
			os.Exit(1)
		}
		return
	}

	src, err := workload.NewSource(*source, *nodes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scooptrace:", err)
		os.Exit(1)
	}
	rec := workload.Record(src, *nodes, *samples)
	if _, err := rec.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scooptrace:", err)
		os.Exit(1)
	}
}

func inspectTrace(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := workload.ParseReplay(path, f)
	if err != nil {
		return err
	}
	lo, hi := r.Domain()
	fmt.Fprintf(out, "trace %s: %d nodes, domain [%d,%d]\n", path, r.NumNodes(), lo, hi)
	var all []int
	for id := 0; id < r.NumNodes(); id++ {
		series := r.Series(id)
		all = append(all, series...)
		if len(series) == 0 {
			fmt.Fprintf(out, "  node %3d: empty\n", id)
			continue
		}
		min, max, sum := series[0], series[0], 0
		for _, v := range series {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		fmt.Fprintf(out, "  node %3d: n=%d mean=%.1f min=%d max=%d\n",
			id, len(series), float64(sum)/float64(len(series)), min, max)
	}
	writeDomainHistogram(out, all)
	return nil
}

// writeDomainHistogram renders the whole-trace value distribution with
// the same equal-width binning nodes use for summary messages, so the
// shape a basestation would infer is visible at a glance.
func writeDomainHistogram(out io.Writer, values []int) {
	h := histogram.Build(values, histogram.DefaultBins)
	if h.Empty() {
		return
	}
	fmt.Fprintf(out, "domain histogram: %d readings, bin width %d\n", h.Total(), h.BinWidth())
	peak := 0
	for _, c := range h.Counts {
		if int(c) > peak {
			peak = int(c)
		}
	}
	for i, c := range h.Counts {
		blo := h.Min + i*h.BinWidth()
		bhi := blo + h.BinWidth() - 1
		if i == len(h.Counts)-1 && bhi < h.Max {
			bhi = h.Max // integer-width rounding spills into the last bin
		}
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", int(c)*40/peak)
		}
		fmt.Fprintf(out, "  [%6d,%6d] %6d %s\n", blo, bhi, c, bar)
	}
}
