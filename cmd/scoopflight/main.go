// Command scoopflight replays and summarises flight-recorder traces —
// the JSONL event streams scoopsim -trace and exp.Config.TraceSinks
// write. It filters by node, message class, event kind, or one
// reading's lifecycle, prints matching events, and aggregates into
// windowed telemetry.
//
// Examples:
//
//	scoopflight trace.jsonl                      # whole-run summary
//	scoopflight -node 7 -print 20 trace.jsonl    # first 20 events on node 7
//	scoopflight -class data -window 60s trace.jsonl
//	scoopflight -reading 12@615001 -print -1 trace.jsonl
//	scoopflight -kind packet-drop trace.jsonl    # where frames died
//	scoopflight -dwell trace.jsonl               # sample→event lag histograms
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"scoop/internal/core"
	"scoop/internal/histogram"
	"scoop/internal/metrics"
	"scoop/internal/telemetry"
	"scoop/internal/trace"
)

// filter is the event predicate assembled from the flags.
type filter struct {
	node      int // -1: any
	class     metrics.Class
	byClass   bool
	kinds     map[trace.Kind]bool
	reading   *trace.ReadingID
	verdict   core.Verdict
	byVerdict bool
}

func (f *filter) keep(e trace.Event) bool {
	if f.node >= 0 && int(e.Node) != f.node {
		return false
	}
	if f.byClass && (!e.Kind.CarriesClass() || e.Class != f.class) {
		return false
	}
	if f.kinds != nil && !f.kinds[e.Kind] {
		return false
	}
	if f.byVerdict && (e.Kind != trace.QueryVerdict || core.Verdict(e.Flag) != f.verdict) {
		return false
	}
	if f.reading != nil {
		if !e.Kind.CarriesReading() || e.Producer != f.reading.Producer {
			return false
		}
		if f.reading.Time >= 0 && e.SampleT != f.reading.Time {
			return false
		}
	}
	return true
}

// parseReading parses "producer" or "producer@sampletime".
func parseReading(s string) (*trace.ReadingID, error) {
	prod, at, hasAt := strings.Cut(s, "@")
	p, err := strconv.ParseUint(prod, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("scoopflight: bad -reading producer %q", prod)
	}
	id := &trace.ReadingID{Producer: uint16(p), Time: -1}
	if hasAt {
		t, err := strconv.ParseInt(at, 10, 64)
		if err != nil || t < 0 {
			return nil, fmt.Errorf("scoopflight: bad -reading sample time %q", at)
		}
		id.Time = t
	}
	return id, nil
}

func parseKinds(s string) (map[trace.Kind]bool, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[trace.Kind]bool)
	for _, name := range strings.Split(s, ",") {
		k, ok := trace.ParseKind(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("scoopflight: unknown event kind %q", name)
		}
		out[k] = true
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scoopflight", flag.ContinueOnError)
	var (
		nodeF    = fs.Int("node", -1, "keep only events on this node (-1: all)")
		classF   = fs.String("class", "", "keep only packet events of this message class (data, summary, mapping, query, reply, aggreply, beacon)")
		kindF    = fs.String("kind", "", "keep only these event kinds (comma-separated wire names)")
		readingF = fs.String("reading", "", "follow one reading's lifecycle: producer[@sampletime]")
		windowF  = fs.Duration("window", 0, "aggregate kept events into windows of this (virtual) width and print the telemetry table")
		printF   = fs.Int("print", 0, "print this many kept events as JSONL (-1: all)")
		verdictF = fs.String("verdict", "", "keep only query-verdict events that settled this way (complete, partial, degraded, failed)")
		dwellF   = fs.Bool("dwell", false, "print per-kind sample→event dwell histograms (virtual ms from a reading's sample time to the event)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("scoopflight: want exactly one trace file, got %d args", fs.NArg())
	}

	flt := filter{node: *nodeF}
	if *classF != "" {
		c, ok := metrics.ParseClass(*classF)
		if !ok {
			return fmt.Errorf("scoopflight: unknown message class %q", *classF)
		}
		flt.class, flt.byClass = c, true
	}
	var err error
	if flt.kinds, err = parseKinds(*kindF); err != nil {
		return err
	}
	if *readingF != "" {
		if flt.reading, err = parseReading(*readingF); err != nil {
			return err
		}
	}
	if *verdictF != "" {
		v, ok := core.ParseVerdict(*verdictF)
		if !ok || v == core.VerdictOpen {
			return fmt.Errorf("scoopflight: unknown verdict %q (want complete, partial, degraded, failed)", *verdictF)
		}
		flt.verdict, flt.byVerdict = v, true
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}

	kept := events[:0:0]
	for _, e := range events {
		if flt.keep(e) {
			kept = append(kept, e)
		}
	}

	if *printF != 0 {
		n := *printF
		if n < 0 || n > len(kept) {
			n = len(kept)
		}
		var buf []byte
		for _, e := range kept[:n] {
			buf = trace.AppendJSON(buf[:0], e)
			buf = append(buf, '\n')
			if _, err := out.Write(buf); err != nil {
				return err
			}
		}
	}

	if *windowF > 0 {
		s := telemetry.NewSeries(windowMS(*windowF))
		for _, e := range kept {
			s.Record(e)
		}
		return s.WriteTable(out)
	}

	if *dwellF {
		return dwellTables(out, kept)
	}

	return summarise(out, events, kept)
}

// dwellTables renders one log2 histogram per reading-carrying kind of
// the lag from a reading's sample time to the event's own timestamp —
// how long readings dwell in the pipeline before being stored, lost or
// delivered.
func dwellTables(out io.Writer, kept []trace.Event) error {
	var hists [256]histogram.Log2
	for _, e := range kept {
		if !e.Kind.CarriesReading() {
			continue
		}
		hists[e.Kind].Record(e.T - e.SampleT)
	}
	any := false
	for _, k := range trace.Kinds() {
		h := &hists[k]
		if h.Total() == 0 {
			continue
		}
		any = true
		fmt.Fprintf(out, "%s dwell (ms):\n", k)
		h.WriteTable(out, "ms")
		fmt.Fprintln(out)
	}
	if !any {
		fmt.Fprintln(out, "no reading-carrying events kept")
	}
	return nil
}

// windowMS converts the -window duration to virtual milliseconds
// (minimum 1 ms, the trace clock's resolution).
func windowMS(d time.Duration) int64 {
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// summarise prints the whole-run digest: span, per-kind counts and the
// drop breakdown, over the kept subset.
func summarise(out io.Writer, all, kept []trace.Event) error {
	fmt.Fprintf(out, "events: %d kept of %d\n", len(kept), len(all))
	if len(kept) == 0 {
		return nil
	}
	fmt.Fprintf(out, "span:   t=%d..%d (%.1fs)\n",
		kept[0].T, kept[len(kept)-1].T, float64(kept[len(kept)-1].T-kept[0].T)/1000)

	var byKind [256]int64
	var drops [metrics.NumDropCauses]int64
	var verdicts [256]int64
	var settled, usable int64
	var bytes int64
	for _, e := range kept {
		byKind[e.Kind]++
		switch e.Kind {
		case trace.PacketDrop, trace.PacketPurge:
			drops[e.Cause]++
		case trace.PacketSend:
			bytes += int64(e.Size)
		case trace.QueryVerdict:
			verdicts[e.Flag]++
			settled++
			if v := core.Verdict(e.Flag); v == core.VerdictComplete || v == core.VerdictDegraded {
				usable++
			}
		}
	}
	for _, k := range trace.Kinds() {
		if n := byKind[k]; n > 0 {
			fmt.Fprintf(out, "  %-18s %d\n", k, n)
		}
	}
	if settled > 0 {
		// Completeness: the fraction of settled queries with a usable
		// answer (complete, or degraded with an honest bound).
		fmt.Fprintf(out, "queries: completeness %.3f over %d settled (", float64(usable)/float64(settled), settled)
		for i, v := range core.AllVerdicts() {
			if i > 0 {
				fmt.Fprint(out, " ")
			}
			fmt.Fprintf(out, "%s=%d", v, verdicts[v])
		}
		fmt.Fprintln(out, ")")
	}
	if bytes > 0 {
		fmt.Fprintf(out, "sent:   %d bytes on air\n", bytes)
	}
	for c := metrics.DropCause(0); int(c) < metrics.NumDropCauses; c++ {
		if drops[c] > 0 {
			fmt.Fprintf(out, "drops:  %-8s %d\n", c, drops[c])
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
