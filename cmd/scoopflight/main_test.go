package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scoop/internal/metrics"
	"scoop/internal/trace"
)

// writeTrace builds a small JSONL trace fixture on disk.
func writeTrace(t *testing.T, events []trace.Event) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewJSONL(f)
	for _, e := range events {
		sink.Record(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func fixture(t *testing.T) string {
	return writeTrace(t, []trace.Event{
		{T: 100, Kind: trace.PacketSend, Node: 1, Peer: 2, Class: metrics.Data, Size: 30},
		{T: 110, Kind: trace.PacketRecv, Node: 2, Peer: 1, Class: metrics.Data, Size: 30},
		{T: 120, Kind: trace.PacketDrop, Node: 3, Peer: 1, Class: metrics.Query, Cause: metrics.DropRetries, Size: 24},
		{T: 200, Kind: trace.ReadingSampled, Node: 4, Producer: 4, SampleT: 200, Value: 55},
		{T: 260, Kind: trace.ReadingStored, Node: 7, Flag: trace.StoreOwner, Producer: 4, SampleT: 200, Value: 55},
		{T: 70_000, Kind: trace.PacketSend, Node: 2, Peer: 1, Class: metrics.Reply, Size: 40},
	})
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestSummary(t *testing.T) {
	out := runCLI(t, fixture(t))
	for _, want := range []string{"events: 6 kept of 6", "packet-send", "reading-stored", "drops:  retries  1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestNodeFilter(t *testing.T) {
	out := runCLI(t, "-node", "2", fixture(t))
	if !strings.Contains(out, "events: 2 kept of 6") {
		t.Fatalf("node filter wrong:\n%s", out)
	}
}

func TestClassFilter(t *testing.T) {
	out := runCLI(t, "-class", "data", fixture(t))
	if !strings.Contains(out, "events: 2 kept of 6") {
		t.Fatalf("class filter wrong:\n%s", out)
	}
	// Class filtering excludes non-packet kinds even though their zero
	// Class field decodes as data.
	if strings.Contains(out, "reading-sampled") {
		t.Fatalf("class filter leaked a reading event:\n%s", out)
	}
}

func TestKindFilter(t *testing.T) {
	out := runCLI(t, "-kind", "packet-drop", fixture(t))
	if !strings.Contains(out, "events: 1 kept of 6") {
		t.Fatalf("kind filter wrong:\n%s", out)
	}
}

func TestReadingFilter(t *testing.T) {
	out := runCLI(t, "-reading", "4@200", "-print", "-1", fixture(t))
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 2 printed JSONL events + the summary block.
	if len(lines) < 3 || !strings.Contains(lines[0], `"kind":"reading-sampled"`) ||
		!strings.Contains(lines[1], `"kind":"reading-stored"`) {
		t.Fatalf("reading filter output wrong:\n%s", out)
	}
	if !strings.Contains(out, "events: 2 kept of 6") {
		t.Fatalf("reading filter count wrong:\n%s", out)
	}
}

func TestWindowTable(t *testing.T) {
	out := runCLI(t, "-window", "60s", fixture(t))
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 windows (0s, 60s)
		t.Fatalf("want header + 2 windows:\n%s", out)
	}
	if !strings.Contains(lines[0], "rate") || !strings.HasPrefix(strings.TrimSpace(lines[1]), "0s") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestDwellTables(t *testing.T) {
	path := writeTrace(t, []trace.Event{
		{T: 200, Kind: trace.ReadingSampled, Node: 4, Producer: 4, SampleT: 200, Value: 55},
		{T: 260, Kind: trace.ReadingStored, Node: 7, Flag: trace.StoreOwner, Producer: 4, SampleT: 200, Value: 55},
		{T: 1500, Kind: trace.ReadingStored, Node: 7, Flag: trace.StoreOwner, Producer: 4, SampleT: 500, Value: 56},
		{T: 900, Kind: trace.PacketSend, Node: 2, Peer: 1, Class: metrics.Data, Size: 40}, // no reading: ignored
	})
	out := runCLI(t, "-dwell", path)
	if !strings.Contains(out, "reading-stored dwell (ms):") ||
		!strings.Contains(out, "reading-sampled dwell (ms):") {
		t.Fatalf("missing per-kind dwell sections:\n%s", out)
	}
	// The stored lags are 60 and 1000 ms; the histogram footer carries
	// the exact max and sample count.
	if !strings.Contains(out, "samples=2 max=1000ms") {
		t.Fatalf("stored dwell stats wrong:\n%s", out)
	}
	// Filters compose: restricting to one kind drops the other table.
	out = runCLI(t, "-dwell", "-kind", "reading-stored", path)
	if strings.Contains(out, "reading-sampled dwell") {
		t.Fatalf("-kind filter ignored by -dwell:\n%s", out)
	}

	// A trace with no reading-carrying events says so instead of
	// printing nothing.
	empty := writeTrace(t, []trace.Event{
		{T: 100, Kind: trace.PacketSend, Node: 1, Peer: 2, Class: metrics.Data, Size: 30},
	})
	if out := runCLI(t, "-dwell", empty); !strings.Contains(out, "no reading-carrying events") {
		t.Fatalf("empty dwell output:\n%s", out)
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-class", "nope", "x.jsonl"},
		{"-kind", "nope", "x.jsonl"},
		{"-reading", "abc", "x.jsonl"},
		{},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted bad input", args)
		}
	}
}
